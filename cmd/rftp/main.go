// Command rftp is the RFTP client (data source): it connects to an
// rftpd server over the TCP-backed verbs fabric and transfers files
// using the paper's protocol — control messages on a dedicated queue
// pair, bulk payload via RDMA WRITE on parallel data channels, with
// proactive credit flow control.
//
// Usage:
//
//	rftp -server localhost:2811 -channels 2 -block 1M file1 [file2 ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/fabric/netfabric"
	"rftp/internal/storage"
	"rftp/internal/telemetry"
	"rftp/internal/trace"
	"rftp/internal/verbs"
)

func main() {
	server := flag.String("server", "localhost:2811", "rftpd address")
	channels := flag.Int("channels", 2, "parallel data channel queue pairs (must match the server)")
	blockStr := flag.String("block", "1M", "block size (e.g. 64K, 1M, 4M)")
	depth := flag.Int("depth", 16, "blocks kept in flight")
	loadDepth := flag.Int("load-depth", 0, "file reads kept in flight against storage (0 = -depth)")
	reactors := flag.Int("reactors", 1, "reactor shards driving the data channels, each on its own event loop (clamped to -channels)")
	mrCache := flag.Int("mr-cache", 0, "pin-down cache capacity in memory regions: block pools draw registrations from the cache and release them on close (0 = register directly)")
	zero := flag.String("zero", "", "memory-to-memory benchmark: send SIZE of synthetic zeros instead of files (e.g. -zero 1G)")
	sessions := flag.Int("sessions", 1, "concurrent sessions for -zero: split the payload into N tenant streams multiplexed over the one connection")
	imm := flag.Bool("imm", false, "notify block completions via RDMA WRITE WITH IMMEDIATE instead of control messages")
	mode := flag.String("mode", "push", "data path: push (RDMA WRITE from source), pull (sink fetches with RDMA READ), or hybrid (switch per session on source CPU load)")
	doTrace := flag.Bool("trace", false, "dump the protocol event trace when the transfer ends")
	traceOut := flag.String("trace-out", "", "write the protocol event trace to FILE as JSONL")
	doStats := flag.Bool("stats", false, "print a telemetry summary when the transfer ends")
	statsEvery := flag.Duration("stats-every", 0, "also print the telemetry summary at this interval (implies -stats)")
	httpAddr := flag.String("http", "", "serve live telemetry over HTTP on this address (GET /metrics for Prometheus, /debug/telemetry for JSON)")
	spanSample := flag.Int("span-sample", 16, "record the lifecycle span of 1 in N blocks (0 = off, 1 = every block)")
	spanOut := flag.String("span-out", "", "write completed block lifecycle spans to FILE as JSONL")
	flag.Parse()
	if flag.NArg() == 0 && *zero == "" {
		fmt.Fprintln(os.Stderr, "usage: rftp [flags] file...")
		fmt.Fprintln(os.Stderr, "       rftp [flags] -zero 1G")
		flag.PrintDefaults()
		os.Exit(2)
	}
	blockSize, err := parseSize(*blockStr)
	if err != nil {
		log.Fatalf("rftp: %v", err)
	}

	dev, err := netfabric.Dial(*server)
	if err != nil {
		log.Fatalf("rftp: dial: %v", err)
	}
	defer dev.Close()
	loop := chanfabric.NewLoop("rftp")
	defer loop.Stop()
	shards := *reactors
	if shards < 1 {
		shards = 1
	}
	if shards > *channels {
		shards = *channels
	}
	loops := []verbs.Loop{loop}
	for i := 1; i < shards; i++ {
		sl := chanfabric.NewLoop(fmt.Sprintf("rftp-shard%d", i))
		defer sl.Stop()
		loops = append(loops, sl)
	}

	// -sessions N multiplexes N tenant streams over this connection;
	// size the control receive ring for the SESSION_RESP / credit-grant
	// bursts they generate.
	ep, err := core.NewServiceEndpoint(dev, loops, *channels, *depth, *sessions)
	if err != nil {
		log.Fatalf("rftp: endpoint: %v", err)
	}
	var cache *verbs.MRCache
	if *mrCache > 0 {
		cache = verbs.NewMRCache(dev, *mrCache)
		ep.MRCache = cache
	}
	if err := dev.BindQP(ep.Ctrl, 0); err != nil {
		log.Fatalf("rftp: bind: %v", err)
	}
	for i, qp := range ep.Data {
		if err := dev.BindQP(qp, uint32(i+1)); err != nil {
			log.Fatalf("rftp: bind data %d: %v", i, err)
		}
	}
	cfg := core.DefaultConfig()
	cfg.BlockSize = blockSize
	cfg.Channels = *channels
	cfg.IODepth = *depth
	cfg.LoadDepth = *loadDepth
	cfg.NotifyViaImm = *imm
	cfg.TransferMode, err = core.ParseTransferMode(*mode)
	if err != nil {
		log.Fatalf("rftp: %v", err)
	}
	if cfg.TransferMode == core.ModeHybrid {
		cfg.LoadProbe = loadAvgProbe()
	}
	source, err := core.NewSource(ep, cfg)
	if err != nil {
		log.Fatalf("rftp: source: %v", err)
	}
	source.OnError = func(err error) { log.Printf("rftp: connection error: %v", err) }

	// The storage engine: a shared pool of reader workers sized to the
	// load depth, so file reads overlap each other and the network.
	workers := *loadDepth
	if workers <= 0 || workers > *depth {
		workers = *depth
	}
	eng := storage.NewEngine(workers)
	defer eng.Close()

	// Telemetry: source protocol metrics plus fabric WR/byte counters,
	// attached before negotiation so nothing is missed.
	var reg *telemetry.Registry
	if *doStats || *statsEvery > 0 || *httpAddr != "" || *spanOut != "" {
		reg = telemetry.NewRegistry("rftp")
		dev.Telemetry = telemetry.NewFabricMetrics(reg.Child("fabric"))
		source.AttachTelemetry(reg)
		source.AttachSpans(reg, *spanSample)
		eng.SetMetrics(core.NewIOMetrics(reg.Child("storage")))
		if cache != nil {
			telemetry.AttachMRCache(reg.Child("mrcache"), cache)
		}
	}
	if *httpAddr != "" {
		go func() {
			log.Printf("rftp: telemetry on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, telemetry.Handler(reg)); err != nil {
				log.Printf("rftp: telemetry http: %v", err)
			}
		}()
	}
	var ring *trace.Ring
	if *doTrace || *traceOut != "" {
		capacity := 4096
		if *traceOut != "" {
			capacity = 1 << 16 // exported traces want the full history
		}
		ring = trace.NewRing(capacity, nil)
		source.Trace = ring
	}
	defer func() {
		if *spanOut != "" {
			if err := writeSpanFile(*spanOut, loop, source); err != nil {
				log.Printf("rftp: span-out: %v", err)
			}
		}
		if ring != nil && *traceOut != "" {
			if err := writeTraceFile(*traceOut, ring); err != nil {
				log.Printf("rftp: trace-out: %v", err)
			}
		}
		if ring != nil && *doTrace {
			fmt.Fprintln(os.Stderr, "--- protocol trace ---")
			ring.Render(os.Stderr)
		}
		if reg != nil {
			fmt.Fprintln(os.Stderr, "--- telemetry ---")
			reg.Snapshot().WriteText(os.Stderr)
			if m := dev.Telemetry; m != nil && m.TxBatches() > 0 {
				log.Printf("rftp: control plane: %d ctrl msgs (%d B); %d vectored writes carried %d frames (%.1f frames/write)",
					m.CtrlMsgs(), m.CtrlBytes(), m.TxBatches(), m.TxFrames(),
					float64(m.TxFrames())/float64(m.TxBatches()))
			}
		}
	}()
	if reg != nil && *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				fmt.Fprintln(os.Stderr, "--- telemetry ---")
				reg.Snapshot().WriteText(os.Stderr)
			}
		}()
	}

	type result struct {
		name string
		r    core.TransferResult
		dur  time.Duration
	}
	nSess := *sessions
	if nSess < 1 {
		nSess = 1
	}
	bufDepth := flag.NArg()
	if nSess > bufDepth {
		bufDepth = nSess
	}
	// Buffered to the transfer count: onDone callbacks run on the
	// protocol loop and must never block on this channel.
	results := make(chan result, bufDepth)
	ready := make(chan error, 1)
	loop.Post(0, func() {
		source.Start(func(err error) { ready <- err })
	})
	if err := <-ready; err != nil {
		log.Fatalf("rftp: negotiation: %v", err)
	}
	log.Printf("rftp: negotiated block=%s channels=%d depth=%d load-depth=%d reactors=%d", *blockStr, *channels, *depth, workers, shards)

	if *zero != "" {
		// The paper's memory-to-memory test: /dev/zero at the source,
		// /dev/null at the sink (run rftpd with -devnull).
		n, err := parseSize(*zero)
		if err != nil {
			log.Fatalf("rftp: %v", err)
		}
		start := time.Now()
		// -sessions splits the payload into N tenant streams sharing the
		// connection's data channels; the sink's per-tenant scheduler
		// partitions the credit window between them.
		per := int64(n) / int64(nSess)
		for i := 0; i < nSess; i++ {
			sz := per
			if i == nSess-1 {
				sz = int64(n) - per*int64(nSess-1)
			}
			// The synthetic reader is serial, so the engine runs its
			// loads one at a time — but off the protocol loop.
			src := storage.NewAsyncSource(core.ReaderSource{R: io.LimitReader(zeroReader{}, sz)}, eng)
			loop.Post(0, func() {
				source.Transfer(src, sz,
					func(r core.TransferResult) {
						results <- result{name: "<zeros>", r: r, dur: time.Since(start)}
					})
			})
		}
		var aggBytes, aggBlocks int64
		var last time.Duration
		for i := 0; i < nSess; i++ {
			res := <-results
			if res.r.Err != nil {
				log.Fatalf("rftp: session %d: %v", res.r.Session, res.r.Err)
			}
			aggBytes += res.r.Bytes
			aggBlocks += res.r.Blocks
			if res.dur > last {
				last = res.dur
			}
			if nSess > 1 {
				gbps := float64(res.r.Bytes) * 8 / res.dur.Seconds() / 1e9
				log.Printf("rftp: session %d: %d bytes in %v (%.2f Gbps)",
					res.r.Session, res.r.Bytes, res.dur.Round(time.Millisecond), gbps)
			}
		}
		gbps := float64(aggBytes) * 8 / last.Seconds() / 1e9
		log.Printf("rftp: mem-to-mem %d bytes over %d session(s) in %v (%.2f Gbps, %d blocks)",
			aggBytes, nSess, last.Round(time.Millisecond), gbps, aggBlocks)
		loop.Post(0, source.Close)
		return
	}

	for _, name := range flag.Args() {
		name := name
		f, err := os.Open(name)
		if err != nil {
			log.Fatalf("rftp: %v", err)
		}
		st, err := f.Stat()
		if err != nil {
			log.Fatalf("rftp: %v", err)
		}
		start := time.Now()
		// Offset-addressed reads through the engine: the protocol keeps
		// -load-depth reads in flight against the file.
		src := storage.NewFileSource(f, st.Size(), eng)
		loop.Post(0, func() {
			source.Transfer(src, st.Size(), func(r core.TransferResult) {
				f.Close()
				results <- result{name: name, r: r, dur: time.Since(start)}
			})
		})
	}
	failed := false
	for range flag.Args() {
		res := <-results
		if res.r.Err != nil {
			log.Printf("rftp: %s: %v", res.name, res.r.Err)
			failed = true
			continue
		}
		gbps := float64(res.r.Bytes) * 8 / res.dur.Seconds() / 1e9
		log.Printf("rftp: %s: %d bytes in %v (%.2f Gbps, %d blocks, session %d)",
			res.name, res.r.Bytes, res.dur.Round(time.Millisecond), gbps, res.r.Blocks, res.r.Session)
	}
	loop.Post(0, source.Close)
	if failed {
		os.Exit(1)
	}
}

// writeSpanFile exports completed block lifecycle spans as JSONL. The
// span ring is owned by the protocol loop, so the dump runs there.
func writeSpanFile(path string, loop *chanfabric.Loop, source *core.Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	loop.Post(0, func() {
		if rec := source.Spans(); rec != nil {
			errc <- rec.WriteJSONL(f)
			return
		}
		errc <- nil
	})
	if err := <-errc; err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile exports the ring's retained events as JSONL.
func writeTraceFile(path string, ring *trace.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, ring.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// zeroReader yields an endless stream of zero bytes (/dev/zero).
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// parseSize parses 64K / 1M / 4M / plain-byte sizes.
func parseSize(s string) (int, error) {
	mult := 1
	up := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(up, "G"):
		mult, up = 1<<30, strings.TrimSuffix(up, "G")
	case strings.HasSuffix(up, "M"):
		mult, up = 1<<20, strings.TrimSuffix(up, "M")
	case strings.HasSuffix(up, "K"):
		mult, up = 1<<10, strings.TrimSuffix(up, "K")
	}
	n, err := strconv.Atoi(up)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// loadAvgProbe returns the hybrid controller's CPU-load signal for a
// real host: the 1-minute load average normalized by core count,
// sampled at most once per second so the control plane never touches
// the filesystem on a per-block basis. Hosts without /proc/loadavg
// (or with it unreadable) probe as idle, which degrades hybrid to
// push — the safe default.
func loadAvgProbe() func() float64 {
	cores := float64(runtime.NumCPU())
	var mu sync.Mutex
	var last float64
	var lastAt time.Time
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(lastAt) >= time.Second {
			lastAt = now
			if raw, err := os.ReadFile("/proc/loadavg"); err == nil {
				if fields := strings.Fields(string(raw)); len(fields) > 0 {
					if v, err := strconv.ParseFloat(fields[0], 64); err == nil {
						last = v / cores
					}
				}
			}
		}
		return last
	}
}
