// Command rftplint runs RFTP's custom static-analysis suite over the
// module: fsmtransition, spanstamp, bufownership, atomicmix, lockorder,
// loopconfine, and sessionaffinity (see internal/analysis for what each
// enforces and why).
//
// Usage:
//
//	rftplint [-tags taglist] [-allows] [-list] [packages...]
//
// Patterns default to ./... resolved against the current directory.
// Findings print as file:line:col: [pass] message and any finding makes
// the exit status 1. Suppressions (//lint:allow pass justification)
// drop the finding; -allows prints every suppression in force so stale
// ones stay visible.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rftp/internal/analysis"
)

func main() {
	var (
		tags   = flag.String("tags", "", "comma-separated build tags for loading (e.g. rftpdebug)")
		allows = flag.Bool("allows", false, "also print //lint:allow suppressions in force")
		list   = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rftplint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	pkgs, err := analysis.Load("", tagList, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *allows {
		for _, s := range res.Suppressions {
			reason := s.Reason
			if reason == "" {
				reason = "(no justification)"
			}
			fmt.Printf("%s: allow %s: %s\n", s.Pos, s.Analyzer, reason)
		}
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "rftplint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}
