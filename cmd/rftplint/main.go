// Command rftplint runs RFTP's custom static-analysis suite over the
// module: fsmtransition, spanstamp, bufownership, atomicmix, lockorder,
// loopconfine, sessionaffinity, blockleak, msgexhaustive, and fsmlive
// (see internal/analysis for what each enforces and why).
//
// Usage:
//
//	rftplint [-tags taglist] [-allows] [-strict-allows] [-json] [-list] [packages...]
//
// Patterns default to ./... resolved against the current directory.
// Findings print as file:line:col: [pass] message and any finding makes
// the exit status 1. Suppressions (//lint:allow pass justification)
// drop the finding; -allows prints every suppression in force so stale
// ones stay visible, and -strict-allows promotes stale suppressions —
// comments whose pass ran but matched nothing — to failures, so a
// fixed finding takes its excuse with it. -json emits the findings and
// suppressions as a JSON report on stdout for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rftp/internal/analysis"
)

// jsonReport is the -json output shape, consumed by CI.
type jsonReport struct {
	Findings     []jsonFinding     `json:"findings"`
	Suppressions []jsonSuppression `json:"suppressions"`
	Stale        []jsonSuppression `json:"stale_suppressions"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

func main() {
	var (
		tags    = flag.String("tags", "", "comma-separated build tags for loading (e.g. rftpdebug)")
		allows  = flag.Bool("allows", false, "also print //lint:allow suppressions in force")
		strict  = flag.Bool("strict-allows", false, "fail on stale suppressions (pass ran, nothing matched)")
		jsonOut = flag.Bool("json", false, "emit findings and suppressions as JSON on stdout")
		list    = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rftplint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	pkgs, err := analysis.Load("", tagList, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stale := res.Stale(analysis.All())

	if *jsonOut {
		rep := jsonReport{
			Findings:     []jsonFinding{},
			Suppressions: []jsonSuppression{},
			Stale:        []jsonSuppression{},
		}
		for _, f := range res.Findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: f.Analyzer, File: f.Pos.Filename,
				Line: f.Pos.Line, Col: f.Pos.Column, Message: f.Message,
			})
		}
		for _, s := range res.Suppressions {
			rep.Suppressions = append(rep.Suppressions, suppressionJSON(s))
		}
		for _, s := range stale {
			rep.Stale = append(rep.Stale, suppressionJSON(s))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		if *allows {
			for _, s := range res.Suppressions {
				reason := s.Reason
				if reason == "" {
					reason = "(no justification)"
				}
				fmt.Printf("%s: allow %s: %s\n", s.Pos, s.Analyzer, reason)
			}
		}
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if *strict {
			for _, s := range stale {
				fmt.Printf("%s: stale suppression: allow %s matched no finding (fix shipped? remove the comment)\n",
					s.Pos, s.Analyzer)
			}
		}
	}

	failed := len(res.Findings) > 0
	if *strict && len(stale) > 0 {
		failed = true
	}
	if failed {
		fmt.Fprintf(os.Stderr, "rftplint: %d finding(s), %d stale suppression(s)\n", len(res.Findings), len(stale))
		os.Exit(1)
	}
}

func suppressionJSON(s analysis.Suppression) jsonSuppression {
	return jsonSuppression{
		File: s.Pos.Filename, Line: s.Pos.Line,
		Analyzer: s.Analyzer, Reason: s.Reason, Used: s.Used,
	}
}
