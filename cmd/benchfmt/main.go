// Command benchfmt tees `go test -bench` output to stdout while
// collecting every benchmark result into a machine-readable JSON file,
// so `make bench` leaves a BENCH_<rev>.json snapshot that regression
// tooling can diff across revisions.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchfmt -rev $(git rev-parse --short HEAD)
//
// The output file name is BENCH_<rev>.json (override with -o). Lines
// that are not benchmark results pass through untouched.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, MB/s, or any custom
	// testing.B.ReportMetric unit) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file-level JSON document.
type Snapshot struct {
	Rev        string   `json:"rev"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	rev := flag.String("rev", "dev", "revision label recorded in the snapshot")
	out := flag.String("o", "", "output path (default BENCH_<rev>.json)")
	flag.Parse()

	snap := Snapshot{Rev: *rev, Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		}
		if r, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: read: %v\n", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *rev)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: wrote %d benchmarks to %s\n", len(snap.Benchmarks), path)
}

// parseBenchLine parses one `go test -bench` result line: the
// benchmark name, the iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
