// Command rftptop is a live terminal view of a running rftpd or rftp
// process: it polls the JSON telemetry endpoint served by their -http
// flag and redraws a compact frame every second — goodput, credit
// window, inflight loads/stores, the top pipeline stall cause, and the
// block critical-path decomposition from the span layer.
//
// Usage:
//
//	rftptop -addr localhost:6060
//	rftptop -addr http://localhost:6060/debug/telemetry -every 500ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"rftp/internal/telemetry"
	"rftp/internal/watch"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "telemetry endpoint (host:port or full URL)")
	every := flag.Duration("every", time.Second, "refresh interval")
	plain := flag.Bool("plain", false, "append frames instead of redrawing in place")
	flag.Parse()

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url, "/debug/") && !strings.HasSuffix(url, "/") {
		url += "/debug/telemetry"
	}

	client := &http.Client{Timeout: 5 * time.Second}
	fetch := func() (*telemetry.Snapshot, error) {
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return nil, nil // server up, telemetry not attached yet
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", url, resp.Status)
		}
		var snap telemetry.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return nil, fmt.Errorf("%s: %v", url, err)
		}
		return &snap, nil
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() { <-sig; close(done) }()

	r := watch.New()
	r.ANSI = !*plain
	fmt.Printf("rftptop: watching %s (refresh %v)\n", url, *every)
	if err := r.Run(os.Stdout, fetch, *every, done); err != nil {
		log.Fatalf("rftptop: %v", err)
	}
}
