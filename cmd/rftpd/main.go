// Command rftpd is the RFTP server (data sink): it accepts connections
// on the TCP-backed verbs fabric and stores each received session as a
// file.
//
// Usage:
//
//	rftpd -listen :2811 -dir ./received -channels 2
//
// The channel count must match the client's -channels flag (both sides
// pre-create their data queue pairs; the protocol's channel negotiation
// then confirms the counts agree).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/fabric/netfabric"
	"rftp/internal/storage"
	"rftp/internal/telemetry"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/watch"
)

// parseWeights turns "-tenant-weight 2,1" into the scheduler's weight
// vector; sessions map onto it round-robin by id.
func parseWeights(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	weights := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad weight %q", p)
		}
		if w < 1 {
			return nil, fmt.Errorf("weight %d out of range (must be >= 1)", w)
		}
		weights = append(weights, w)
	}
	return weights, nil
}

// serveOpts carries the observability configuration into each
// connection handler.
type serveOpts struct {
	dir         string
	channels    int
	depth       int
	storeDepth  int
	reactors    int
	mrCache     int
	creditBatch int
	creditFlush time.Duration
	creditWin   int
	maxSessions int
	sessQueue   int
	weights     []int
	mode        core.TransferMode
	devnull     bool
	stats       bool
	trace       bool
	traceOut    string
	spanSample  int
	root        *telemetry.Registry // nil when telemetry is off

	mu sync.Mutex // serializes trace-out appends across connections
}

func main() {
	listen := flag.String("listen", ":2811", "address to listen on")
	dir := flag.String("dir", ".", "directory to store received sessions in")
	channels := flag.Int("channels", 2, "number of data channel queue pairs")
	depth := flag.Int("depth", 16, "I/O depth (sink block pool = 2x)")
	storeDepth := flag.Int("store-depth", 0, "file writes kept in flight against storage (0 = -depth)")
	reactors := flag.Int("reactors", 1, "reactor shards driving the data channels, each on its own event loop (clamped to -channels)")
	mrCache := flag.Int("mr-cache", 0, "per-connection pin-down cache capacity in memory regions: the sink pool draws registrations from the cache and releases them on close (0 = register directly)")
	creditBatch := flag.Int("credit-batch", 0, "credits coalesced per grant message (0 = default, 1 = unbatched)")
	creditFlush := flag.Duration("credit-flush", 0, "credit coalescer flush timer (0 = adaptive from the measured arrival gap)")
	creditWin := flag.Int("credit-window", 0, "fixed credit window in blocks (0 = adaptive from measured RTT x delivery rate)")
	maxSessions := flag.Int("max-sessions", 0, "concurrently active sessions admitted per connection (0 = unbounded)")
	mode := flag.String("mode", "hybrid", "data paths served: push (refuse pull sessions), pull, or hybrid (accept either and follow the source's mode switches)")
	sessQueue := flag.Int("session-queue", 0, "session requests queued for a slot when -max-sessions is reached; beyond this they are rejected busy")
	tenantWeight := flag.String("tenant-weight", "", "comma-separated DRR weights assigned to sessions round-robin by id (e.g. 2,1; empty = equal shares)")
	once := flag.Bool("once", false, "serve a single connection, then exit")
	devnull := flag.Bool("devnull", false, "discard received data instead of writing files (memory-to-memory benchmark)")
	doStats := flag.Bool("stats", false, "print a telemetry summary when each connection ends")
	doTrace := flag.Bool("trace", false, "dump the protocol event trace when each connection ends")
	traceOut := flag.String("trace-out", "", "append each connection's protocol event trace to FILE as JSONL")
	httpAddr := flag.String("http", "", "serve live telemetry over HTTP on this address (GET /metrics for Prometheus, /debug/telemetry for JSON)")
	doPprof := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ on the -http address")
	doWatch := flag.Bool("watch", false, "redraw a live transfer view (goodput, credits, stalls) on stderr every second")
	spanSample := flag.Int("span-sample", 16, "record the lifecycle span of 1 in N blocks (0 = off, 1 = every block)")
	flag.Parse()

	if *doPprof && *httpAddr == "" {
		log.Fatalf("rftpd: -pprof requires -http to provide the listen address")
	}
	weights, err := parseWeights(*tenantWeight)
	if err != nil {
		log.Fatalf("rftpd: -tenant-weight: %v", err)
	}
	xferMode, err := core.ParseTransferMode(*mode)
	if err != nil {
		log.Fatalf("rftpd: %v", err)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("rftpd: %v", err)
	}
	ln, err := netfabric.Listen(*listen)
	if err != nil {
		log.Fatalf("rftpd: %v", err)
	}
	log.Printf("rftpd: listening on %s (channels=%d)", ln.Addr(), *channels)

	opts := &serveOpts{
		dir:         *dir,
		channels:    *channels,
		depth:       *depth,
		storeDepth:  *storeDepth,
		reactors:    *reactors,
		mrCache:     *mrCache,
		creditBatch: *creditBatch,
		creditFlush: *creditFlush,
		creditWin:   *creditWin,
		maxSessions: *maxSessions,
		sessQueue:   *sessQueue,
		weights:     weights,
		mode:        xferMode,
		devnull:     *devnull,
		stats:       *doStats,
		trace:       *doTrace,
		traceOut:    *traceOut,
		spanSample:  *spanSample,
	}
	if *doStats || *httpAddr != "" || *doWatch {
		opts.root = telemetry.NewRegistry("rftpd")
	}
	if *doWatch {
		r := watch.New()
		r.ANSI = true
		go r.Run(os.Stderr, func() (*telemetry.Snapshot, error) {
			return opts.root.Snapshot(), nil
		}, time.Second, nil)
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(opts.root))
		if *doPprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			log.Printf("rftpd: telemetry on http://%s/", *httpAddr)
			if *doPprof {
				log.Printf("rftpd: profiling on http://%s/debug/pprof/", *httpAddr)
			}
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("rftpd: telemetry http: %v", err)
			}
		}()
	}

	for conn := 1; ; conn++ {
		dev, err := ln.Accept()
		if err != nil {
			log.Fatalf("rftpd: accept: %v", err)
		}
		served := make(chan struct{})
		go serve(dev, conn, opts, served)
		if *once {
			<-served
			return
		}
	}
}

func serve(dev *netfabric.Device, conn int, opts *serveOpts, served chan<- struct{}) {
	defer close(served)
	defer dev.Close()
	dir, channels, depth, devnull := opts.dir, opts.channels, opts.depth, opts.devnull
	loop := chanfabric.NewLoop("rftpd")
	defer loop.Stop()
	shards := opts.reactors
	if shards < 1 {
		shards = 1
	}
	if shards > channels {
		shards = channels
	}
	loops := []verbs.Loop{loop}
	for i := 1; i < shards; i++ {
		sl := chanfabric.NewLoop(fmt.Sprintf("rftpd-shard%d", i))
		defer sl.Stop()
		loops = append(loops, sl)
	}

	// Size the control receive ring from the admission cap: a service
	// endpoint admitting -max-sessions tenants (plus the queued ones)
	// takes their SESSION_REQ / MR_INFO_REQUEST bursts on one ring.
	ep, err := core.NewServiceEndpoint(dev, loops, channels, depth, opts.maxSessions+opts.sessQueue)
	if err != nil {
		log.Printf("rftpd: endpoint: %v", err)
		return
	}
	var cache *verbs.MRCache
	if opts.mrCache > 0 {
		cache = verbs.NewMRCache(dev, opts.mrCache)
		ep.MRCache = cache
	}
	if err := dev.BindQP(ep.Ctrl, 0); err != nil {
		log.Printf("rftpd: bind: %v", err)
		return
	}
	for i, qp := range ep.Data {
		if err := dev.BindQP(qp, uint32(i+1)); err != nil {
			log.Printf("rftpd: bind data %d: %v", i, err)
			return
		}
	}
	cfg := core.DefaultConfig()
	cfg.Channels = channels
	cfg.IODepth = depth
	cfg.StoreDepth = opts.storeDepth
	if opts.creditBatch > 0 {
		cfg.CreditBatch = opts.creditBatch
	}
	cfg.CreditFlushInterval = opts.creditFlush
	cfg.CreditWindow = opts.creditWin
	cfg.MaxSessions = opts.maxSessions
	cfg.SessionQueue = opts.sessQueue
	cfg.TenantWeights = opts.weights
	cfg.TransferMode = opts.mode
	sink, err := core.NewSink(ep, cfg)
	if err != nil {
		log.Printf("rftpd: sink: %v", err)
		return
	}

	// The storage engine: a per-connection pool of writer workers sized
	// to the store depth, so positioned file writes overlap each other
	// and the network.
	workers := opts.storeDepth
	if workers <= 0 || workers > depth {
		workers = depth
	}
	eng := storage.NewEngine(workers)
	defer eng.Close()

	// Per-connection observability: a child registry under the shared
	// root (also visible over -http) and an optional trace ring.
	var reg *telemetry.Registry
	if opts.root != nil {
		reg = opts.root.Child(fmt.Sprintf("conn%d", conn))
		dev.Telemetry = telemetry.NewFabricMetrics(reg.Child("fabric"))
		sink.AttachTelemetry(reg)
		sink.AttachSpans(reg, opts.spanSample)
		eng.SetMetrics(core.NewIOMetrics(reg.Child("storage")))
		if cache != nil {
			telemetry.AttachMRCache(reg.Child("mrcache"), cache)
		}
	}
	var ring *trace.Ring
	if opts.trace || opts.traceOut != "" {
		ring = trace.NewRing(1<<16, nil)
		sink.Trace = ring
	}
	defer func() {
		if ring != nil && opts.traceOut != "" {
			if err := appendTraceFile(opts, ring); err != nil {
				log.Printf("rftpd: trace-out: %v", err)
			}
		}
		if ring != nil && opts.trace {
			fmt.Fprintf(os.Stderr, "--- protocol trace (conn %d) ---\n", conn)
			ring.Render(os.Stderr)
		}
		if reg != nil && opts.stats {
			fmt.Fprintf(os.Stderr, "--- telemetry (conn %d) ---\n", conn)
			reg.Snapshot().WriteText(os.Stderr)
		}
	}()

	connDone := make(chan struct{})
	dev.SetOnClose(func(error) { close(connDone) })

	files := map[uint32]*os.File{}
	sink.NewWriter = func(info core.SessionInfo) core.BlockSink {
		if devnull {
			log.Printf("rftpd: session %d -> /dev/null (%d bytes expected)", info.ID, info.Total)
			return core.DiscardSink{}
		}
		name := filepath.Join(dir, fmt.Sprintf("session-%d.dat", info.ID))
		f, err := os.Create(name)
		if err != nil {
			log.Printf("rftpd: create %s: %v", name, err)
			return core.DiscardSink{}
		}
		files[info.ID] = f
		log.Printf("rftpd: session %d -> %s (%d bytes expected, block %s)",
			info.ID, name, info.Total, sizeLabel(info.BlockSize))
		// Offset-addressed writes through the engine: arriving blocks
		// are stored immediately, -store-depth at a time.
		return storage.NewFileSink(f, eng)
	}
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) {
		if f := files[info.ID]; f != nil {
			if err := f.Sync(); err != nil {
				log.Printf("rftpd: sync session %d: %v", info.ID, err)
			}
			f.Close()
			delete(files, info.ID)
		}
		if r.Err != nil {
			log.Printf("rftpd: session %d failed: %v", info.ID, r.Err)
			return
		}
		log.Printf("rftpd: session %d complete: %d bytes in %d blocks", info.ID, r.Bytes, r.Blocks)
	}
	sink.OnError = func(err error) {
		log.Printf("rftpd: connection error: %v", err)
	}
	<-connDone
	loop.Post(0, sink.Close)
	log.Printf("rftpd: peer disconnected")
}

// appendTraceFile appends the ring's retained events to the shared
// trace-out file; JSONL concatenates cleanly across connections.
func appendTraceFile(opts *serveOpts, ring *trace.Ring) error {
	opts.mu.Lock()
	defer opts.mu.Unlock()
	f, err := os.OpenFile(opts.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, ring.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
