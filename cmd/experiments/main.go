// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated testbeds, plus the ablations
// catalogued in DESIGN.md.
//
// Usage:
//
//	experiments [-scale f] [-csv file] [-json file] <experiment>|all
//
// Experiments: table1, fig3a, fig3b, fig4a, fig4b, fig8, fig9, fig10,
// fig11, ablation-credit, ablation-qps, ablation-depth,
// ablation-loaddepth, ablation-ramp, ablation-creditbatch,
// ablation-pullmode.
//
// -scale 1.0 runs report-quality sizes (tens of GB per point; minutes of
// CPU); the default 0.25 keeps a full sweep under a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rftp/internal/bench"
)

var experimentNames = []string{
	"table1", "fig3a", "fig3b", "fig4a", "fig4b",
	"fig8", "fig9", "fig10", "fig11",
	"ablation-credit", "ablation-qps", "ablation-depth", "ablation-loaddepth", "ablation-ramp", "ablation-creditbatch",
	"ablation-notify", "ablation-threads", "ablation-reactors", "ablation-mrcache", "ablation-sessions",
	"ablation-pullmode",
	"cross-arch", "scale-out", "latency", "timeseries",
}

func main() {
	scale := flag.Float64("scale", 0.25, "experiment size scale factor (1.0 = report quality)")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <experiment>|all\nexperiments: %v\n", experimentNames)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := flag.Arg(0)
	sc := bench.Scale(*scale)

	var all []bench.Row
	run := func(name string) {
		rows, err := runExperiment(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if name == "table1" || name == "timeseries" {
			return // printed directly
		}
		fmt.Printf("\n== %s ==\n", name)
		bench.WriteTable(os.Stdout, rows)
		all = append(all, rows...)
	}

	if which == "all" {
		for _, name := range experimentNames {
			run(name)
		}
	} else {
		run(which)
	}

	if *csvPath != "" && len(all) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteCSV(f, all); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
	if *jsonPath != "" && len(all) > 0 {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteJSON(f, all); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nJSON written to %s\n", *jsonPath)
	}
}

func runExperiment(name string, sc bench.Scale) ([]bench.Row, error) {
	switch name {
	case "table1":
		fmt.Println("== Table I: testbed description ==")
		return nil, bench.WriteTable1(os.Stdout)
	case "fig3a":
		return bench.FigSemantics("fig3a", bench.RoCELAN(), 1, sc)
	case "fig3b":
		return bench.FigSemantics("fig3b", bench.RoCELAN(), 64, sc)
	case "fig4a":
		return bench.FigSemantics("fig4a", bench.IBLAN(), 1, sc)
	case "fig4b":
		return bench.FigSemantics("fig4b", bench.IBLAN(), 64, sc)
	case "fig8":
		return bench.FigComparison("fig8", bench.RoCELAN(), []int{1, 8}, sc)
	case "fig9":
		return bench.FigComparison("fig9", bench.IBLAN(), []int{1, 8}, sc)
	case "fig10":
		return bench.FigComparison("fig10", bench.RoCEWAN(), []int{1, 8}, sc)
	case "fig11":
		return bench.FigMemVsDisk(bench.RoCEWAN(), sc)
	case "ablation-credit":
		return bench.AblationCreditPolicy(sc)
	case "ablation-qps":
		return bench.AblationQPCount(bench.RoCEWAN(), sc)
	case "ablation-depth":
		return bench.AblationIODepth(bench.RoCEWAN(), sc)
	case "ablation-loaddepth":
		return bench.AblationLoadDepth(bench.RoCEWAN(), sc)
	case "ablation-ramp":
		return bench.AblationCreditRamp(bench.RoCEWAN(), sc)
	case "ablation-creditbatch":
		return bench.AblationCreditBatch(bench.RoCEWAN(), sc)
	case "ablation-notify":
		return bench.AblationNotify(bench.RoCEWAN(), sc)
	case "ablation-threads":
		return bench.AblationThreading(bench.RoCELAN(), sc)
	case "ablation-reactors":
		return bench.AblationReactors(sc)
	case "ablation-mrcache":
		return bench.AblationMRCache(sc)
	case "ablation-sessions":
		return bench.AblationSessions(sc)
	case "ablation-pullmode":
		return bench.AblationPullMode(sc)
	case "cross-arch":
		return bench.CrossArch(sc)
	case "scale-out":
		return bench.ScaleOut(sc)
	case "latency":
		return bench.LatencyTable(bench.RoCELAN(), sc)
	case "timeseries":
		fmt.Println("== bandwidth over time, cold start (RoCE WAN, 4M blocks, 4 streams) ==")
		ts, err := bench.TimeSeries(bench.RoCEWAN(), 10*time.Second, 500*time.Millisecond, 4<<20, 4)
		if err != nil {
			return nil, err
		}
		return nil, ts.Render(os.Stdout)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
