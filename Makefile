# RFTP reproduction — common tasks.

GO ?= go

.PHONY: all build vet test race bench experiments cover check clean

all: build vet test

# check is the pre-merge gate: vet, a full build, and the whole test
# suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/fabric/... ./internal/core ./internal/storage ./internal/trace

bench:
	$(GO) test -bench . -benchmem -benchtime 1x . ./internal/fabric/netfabric

# Report-quality regeneration of every table and figure (~1 minute).
experiments:
	$(GO) run ./cmd/experiments -scale 1.0 -csv results_full.csv all | tee results_full.txt

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
