# RFTP reproduction — common tasks.

GO ?= go

.PHONY: all build vet test race lint lint-json debugtest staticcheck vulncheck bench pullmode experiments cover check clean

all: build vet test

# check is the pre-merge gate: vet, the custom analyzer suite, a full
# build, the whole test suite under the race detector (via race, so the
# package list is defined once), and the external scanners when they
# are installed.
check: vet build race lint staticcheck vulncheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs every package under the race detector. check depends on
# this target instead of repeating the invocation.
race:
	$(GO) test -race ./...

# lint runs RFTP's own static-analysis passes (fsmtransition,
# bufownership, lockorder, the flow-sensitive blockleak/msgexhaustive/
# fsmlive trio, ... — see internal/analysis). Any finding fails the
# build, as does a stale //lint:allow whose pass matched nothing;
# suppress real exceptions with //lint:allow <pass> <why>.
lint:
	$(GO) run ./cmd/rftplint -strict-allows ./...

# lint-json leaves the machine-readable findings/suppressions report CI
# uploads next to the BENCH_<rev>.json snapshot.
lint-json:
	$(GO) run ./cmd/rftplint -strict-allows -json ./... > rftplint.json

# debugtest runs the suite with the rftpdebug invariant layer compiled
# in (credit ledgers, sequence monotonicity, gauge sanity, buffer
# poisoning — see internal/invariant) under the race detector.
debugtest:
	$(GO) test -race -tags rftpdebug ./...

# staticcheck / vulncheck run when the tools are on PATH (CI installs
# them; offline dev machines may not have them) and are skipped with a
# notice otherwise.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# bench runs the benchmark suite and, via benchfmt, leaves a
# machine-readable BENCH_<rev>.json snapshot alongside the usual text
# output for cross-revision regression diffing.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x . ./internal/fabric/netfabric \
		| $(GO) run ./cmd/benchfmt -rev $$(git rev-parse --short HEAD 2>/dev/null || echo dev)

# pullmode runs the pull-mode shape regression (pull >= push at a
# saturated source, hybrid within 5% of the best fixed mode) and
# leaves the ablation matrix as ablation-pullmode.json for CI to
# upload next to the BENCH_<rev>.json snapshot.
pullmode:
	$(GO) test -run TestAblationPullModeShape -v ./internal/bench
	$(GO) run ./cmd/experiments -scale 0.125 -json ablation-pullmode.json ablation-pullmode

# Report-quality regeneration of every table and figure (~1 minute).
experiments:
	$(GO) run ./cmd/experiments -scale 1.0 -csv results_full.csv all | tee results_full.txt

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
