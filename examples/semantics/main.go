// Semantics: the paper's Section III design-choice study in miniature —
// drive raw RDMA WRITE, RDMA READ, and SEND/RECV through the fio-style
// I/O engine on the simulated RoCE LAN and print the bandwidth/CPU/
// latency table that justified the hybrid protocol design (control
// messages via SEND/RECV, bulk data via RDMA WRITE).
//
//	go run ./examples/semantics
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"rftp/internal/bench"
	"rftp/internal/ioengine"
	"rftp/internal/verbs"
)

func main() {
	tb := bench.RoCELAN()
	fmt.Printf("RDMA semantics on %s (%.0f Gbps, RTT %v)\n\n", tb.Name, tb.Link.RateBps/1e9, tb.RTT)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tblock\tdepth\tGbps\tsrcCPU%\tsnkCPU%\tclat p50/p95 µs")
	ops := []struct {
		op   verbs.Opcode
		name string
	}{
		{verbs.OpWrite, "RDMA WRITE"},
		{verbs.OpRead, "RDMA READ"},
		{verbs.OpSend, "SEND/RECV"},
	}
	for _, depth := range []int{1, 64} {
		for _, bs := range []int{16 << 10, 128 << 10, 1 << 20} {
			for _, o := range ops {
				env := ioengine.NewEnv(1, tb.Link, tb.NIC, tb.NIC, tb.Host)
				res, err := ioengine.Run(env, ioengine.Params{
					Op: o.op, BlockSize: bs, Depth: depth, Duration: 100 * time.Millisecond,
				})
				if err != nil {
					log.Fatalf("semantics: %v", err)
				}
				fmt.Fprintf(tw, "%s\t%dK\t%d\t%.1f\t%.0f\t%.0f\t%.0f/%.0f\n",
					o.name, bs>>10, depth, res.BandwidthGbps,
					res.SourceCPU, res.SinkCPU, res.Latency.P50, res.Latency.P95)
			}
		}
		fmt.Fprintln(tw, "\t\t\t\t\t\t")
	}
	tw.Flush()

	fmt.Println("takeaways (the paper's Section III conclusions):")
	fmt.Println("  - high I/O depth is required to approach line rate")
	fmt.Println("  - SEND/RECV pays CPU at both ends; WRITE/READ only at the initiator")
	fmt.Println("  - READ trails WRITE under load (bounded outstanding requests)")
	fmt.Println("  => hybrid design: SEND/RECV for control, RDMA WRITE for bulk data")
}
