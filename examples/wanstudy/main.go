// Wanstudy: reproduce the paper's core wide-area argument on the
// simulated ANI testbed (10 Gbps, 49 ms RTT, ~2000 miles).
//
// Three sweeps, each a claim from the paper:
//
//  1. I/O depth: a shallow pipeline cannot cover the 61 MB
//     bandwidth-delay product, so bandwidth collapses (Section III:
//     "I/O depth should be set to a relatively large number").
//
//  2. Credit policy: the proactive active-feedback design removes the
//     one-RTT credit fetch that handicaps request-based designs like
//     RXIO (Section IV.A, optimization 3).
//
//  3. Credit ramp: granting two credits per consumed block gives the
//     TCP-slow-start-like exponential window growth the paper designed
//     for (Section IV.C).
//
//     go run ./examples/wanstudy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rftp/internal/bench"
	"rftp/internal/core"
)

func main() {
	tb := bench.RoCEWAN()
	const total = 4 << 30

	fmt.Printf("WAN study on %s: %.0f Gbps, RTT %v, BDP %.0f MB\n\n",
		tb.Name, tb.Link.RateBps/1e9, tb.RTT,
		tb.Link.RateBps/8*tb.RTT.Seconds()/1e6)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Fprintln(tw, "-- sweep 1: I/O depth (1 MiB blocks) --\t")
	fmt.Fprintln(tw, "depth\tin-flight\tGbps")
	for _, depth := range []int{2, 8, 32, 128} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = depth
		cfg.SinkBlocks = 2 * depth
		r, err := bench.RunRFTP(tb, bench.RFTPOptions{Config: cfg, TotalBytes: total})
		check(err)
		fmt.Fprintf(tw, "%d\t%d MiB\t%.2f\n", depth, depth, r.BandwidthGbps)
	}
	fmt.Fprintln(tw, "\t")

	fmt.Fprintln(tw, "-- sweep 2: credit policy (4 MiB blocks, depth 64) --\t")
	fmt.Fprintln(tw, "policy\tcredit stalls\tGbps")
	for _, policy := range []core.CreditPolicy{core.CreditProactive, core.CreditOnDemand} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 20
		cfg.IODepth = 64
		cfg.SinkBlocks = 128
		cfg.CreditPolicy = policy
		r, err := bench.RunRFTP(tb, bench.RFTPOptions{Config: cfg, TotalBytes: total})
		check(err)
		fmt.Fprintf(tw, "%v\t%d\t%.2f\n", policy, r.Stalls, r.BandwidthGbps)
	}
	fmt.Fprintln(tw, "\t")

	fmt.Fprintln(tw, "-- sweep 3: credit grant per consumed block (short transfer, ramp-bound) --\t")
	fmt.Fprintln(tw, "grant\tramp\tGbps")
	for _, grant := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = 128
		cfg.SinkBlocks = 256
		cfg.GrantPerConsume = grant
		cfg.NoGrantOnFree = true // isolate the paper's literal ramp rule
		r, err := bench.RunRFTP(tb, bench.RFTPOptions{Config: cfg, TotalBytes: 1 << 30})
		check(err)
		ramp := "linear"
		if grant > 1 {
			ramp = "exponential"
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\n", grant, ramp, r.BandwidthGbps)
	}
	tw.Flush()
}

func check(err error) {
	if err != nil {
		log.Fatalf("wanstudy: %v", err)
	}
}
