// Multisession: several concurrent dataset transfers multiplexed over
// one connection, reassembled independently at the sink.
//
// The paper's protocol tags every payload block with a session id and
// sequence number so "the application [can] issue multiple data transfer
// tasks simultaneously" over shared parallel queue pairs, and the sink
// can still deliver each dataset as an in-order stream. This example
// pushes three differently-sized datasets through four shared data
// channels at once and verifies each arrives intact and in order.
//
//	go run ./examples/multisession
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/wire"
)

func main() {
	fab := chanfabric.New()
	srcDev := fab.NewDevice("src")
	dstDev := fab.NewDevice("dst")
	// Shape the link mildly so the sessions genuinely interleave.
	fab.Connect(srcDev, dstDev, chanfabric.Shaping{Latency: 500 * time.Microsecond})

	srcLoop := chanfabric.NewLoop("source")
	dstLoop := chanfabric.NewLoop("sink")
	defer srcLoop.Stop()
	defer dstLoop.Stop()

	cfg := core.DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.Channels = 4
	cfg.IODepth = 32
	cfg.SinkBlocks = 64

	srcEP, err := core.NewEndpoint(srcDev, srcLoop, cfg.Channels, cfg.IODepth)
	check(err)
	dstEP, err := core.NewEndpoint(dstDev, dstLoop, cfg.Channels, cfg.IODepth)
	check(err)
	check(fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl))
	for i := range srcEP.Data {
		check(fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]))
	}

	sink, err := core.NewSink(dstEP, cfg)
	check(err)
	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	sink.NewWriter = func(info core.SessionInfo) core.BlockSink {
		mu.Lock()
		defer mu.Unlock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		fmt.Printf("sink: opened session %d (%d bytes expected)\n", info.ID, info.Total)
		return lockedSink{buf: buf, mu: &mu}
	}
	sinkDone := make(chan uint32, 8)
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) {
		check(r.Err)
		fmt.Printf("sink: session %d complete (%d blocks)\n", info.ID, r.Blocks)
		sinkDone <- info.ID
	}

	source, err := core.NewSource(srcEP, cfg)
	check(err)

	// Three datasets of different sizes, launched concurrently.
	sizes := []int{3 << 20, 11<<20 + 57, 7 << 20}
	inputs := make([][]byte, len(sizes))
	for i, n := range sizes {
		inputs[i] = make([]byte, n)
		rand.New(rand.NewSource(int64(i + 1))).Read(inputs[i])
	}
	srcDone := make(chan core.TransferResult, len(sizes))
	srcLoop.Post(0, func() {
		source.Start(func(err error) {
			check(err)
			for i := range inputs {
				data := inputs[i]
				source.Transfer(core.ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
					func(r core.TransferResult) { srcDone <- r })
			}
		})
	})

	for range sizes {
		r := <-srcDone
		check(r.Err)
		<-sinkDone
	}

	// Match outputs to inputs by content (session ids are assigned by
	// the sink in request order, but verify by hash to be strict).
	mu.Lock()
	defer mu.Unlock()
	matched := 0
	for id, buf := range outputs {
		for i, in := range inputs {
			if sha256.Sum256(buf.Bytes()) == sha256.Sum256(in) {
				fmt.Printf("verified: session %d == dataset %d (%d bytes)\n", id, i, len(in))
				matched++
			}
		}
	}
	if matched != len(sizes) {
		log.Fatalf("multisession: only %d/%d datasets verified", matched, len(sizes))
	}
	fmt.Println("all concurrent sessions reassembled correctly")
}

// lockedSink serializes writes into a shared map of buffers.
type lockedSink struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

// Store implements core.BlockSink.
func (s lockedSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	s.mu.Lock()
	_, err := s.buf.Write(payload)
	s.mu.Unlock()
	done(err)
}

func check(err error) {
	if err != nil {
		log.Fatalf("multisession: %v", err)
	}
}
