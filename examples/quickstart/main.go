// Quickstart: move bytes through the RFTP protocol core in-process.
//
// This wires a Source and Sink over the channel fabric (real goroutines,
// real bytes, no network), negotiates parameters, transfers 64 MiB, and
// verifies the SHA-256 of what arrived — the smallest end-to-end use of
// the public protocol API.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
)

func main() {
	// 1. A fabric with two devices, connected back to back.
	fab := chanfabric.New()
	srcDev := fab.NewDevice("src")
	dstDev := fab.NewDevice("dst")
	fab.Connect(srcDev, dstDev, chanfabric.Shaping{}) // unshaped: memory speed

	// 2. One event loop per host (the middleware's event-driven core).
	srcLoop := chanfabric.NewLoop("source")
	dstLoop := chanfabric.NewLoop("sink")
	defer srcLoop.Stop()
	defer dstLoop.Stop()

	// 3. Endpoints: a control QP plus data-channel QPs on each side.
	cfg := core.DefaultConfig()
	cfg.BlockSize = 1 << 20 // 1 MiB blocks
	cfg.Channels = 2        // two parallel data QPs
	cfg.IODepth = 16        // blocks in flight

	srcEP, err := core.NewEndpoint(srcDev, srcLoop, cfg.Channels, cfg.IODepth)
	check(err)
	dstEP, err := core.NewEndpoint(dstDev, dstLoop, cfg.Channels, cfg.IODepth)
	check(err)
	check(fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl))
	for i := range srcEP.Data {
		check(fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]))
	}

	// 4. The sink: collects payload, reports when the session finishes.
	sink, err := core.NewSink(dstEP, cfg)
	check(err)
	var received bytes.Buffer
	sinkDone := make(chan core.TransferResult, 1)
	sink.NewWriter = func(info core.SessionInfo) core.BlockSink {
		fmt.Printf("sink: accepted session %d (%d bytes incoming)\n", info.ID, info.Total)
		return core.WriterSink{W: &received}
	}
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) { sinkDone <- r }

	// 5. The source: negotiate, then transfer one dataset.
	source, err := core.NewSource(srcEP, cfg)
	check(err)
	payload := make([]byte, 64<<20)
	rand.New(rand.NewSource(7)).Read(payload)

	start := time.Now()
	srcDone := make(chan core.TransferResult, 1)
	srcLoop.Post(0, func() {
		source.Start(func(err error) {
			check(err)
			fmt.Println("source: negotiation complete (block size, channels, session)")
			source.Transfer(core.ReaderSource{R: bytes.NewReader(payload)}, int64(len(payload)),
				func(r core.TransferResult) { srcDone <- r })
		})
	})

	src := <-srcDone
	snk := <-sinkDone
	check(src.Err)
	check(snk.Err)
	elapsed := time.Since(start)

	if sha256.Sum256(received.Bytes()) != sha256.Sum256(payload) {
		log.Fatal("quickstart: payload corrupted in flight")
	}
	gbps := float64(src.Bytes) * 8 / elapsed.Seconds() / 1e9
	fmt.Printf("transferred %d MiB in %v (%.2f Gbps) across %d blocks — SHA-256 verified\n",
		src.Bytes>>20, elapsed.Round(time.Millisecond), gbps, src.Blocks)
	st := sourceStats(srcLoop, source)
	fmt.Printf("protocol: %d control messages, %d credit stalls\n", st.CtrlMsgs, st.CreditStalls)
}

// sourceStats reads stats on the source's own loop.
func sourceStats(loop *chanfabric.Loop, s *core.Source) core.Stats {
	ch := make(chan core.Stats, 1)
	loop.Post(0, func() { ch <- s.Stats() })
	return <-ch
}

func check(err error) {
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
}
