// Filetransfer: a complete two-endpoint file transfer over real TCP
// sockets using the netfabric verbs emulation — the same path the
// cmd/rftp and cmd/rftpd binaries use, condensed into one program.
//
// The example creates a temporary input file, starts a sink endpoint on
// a loopback listener, dials it, transfers the file through the RFTP
// protocol (RDMA WRITE data channels + control QP), and verifies the
// output byte for byte.
//
//	go run ./examples/filetransfer
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/fabric/netfabric"
	"rftp/internal/storage"
)

const fileSize = 32 << 20

func main() {
	dir, err := os.MkdirTemp("", "rftp-example")
	check(err)
	defer os.RemoveAll(dir)

	// Create the input file.
	input := filepath.Join(dir, "input.dat")
	data := make([]byte, fileSize)
	rand.New(rand.NewSource(99)).Read(data)
	check(os.WriteFile(input, data, 0o644))

	cfg := core.DefaultConfig()
	cfg.BlockSize = 256 << 10
	cfg.Channels = 2
	cfg.IODepth = 16
	cfg.LoadDepth = 8  // file reads kept in flight at the source
	cfg.StoreDepth = 8 // file writes kept in flight at the sink

	// ---- Server side (sink) ----
	ln, err := netfabric.Listen("127.0.0.1:0")
	check(err)
	defer ln.Close()
	output := filepath.Join(dir, "output.dat")
	serverUp := make(chan struct{})
	serverDone := make(chan error, 1)
	go func() {
		close(serverUp)
		dev, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer dev.Close()
		loop := chanfabric.NewLoop("server")
		defer loop.Stop()
		ep, err := core.NewEndpoint(dev, loop, cfg.Channels, cfg.IODepth)
		if err != nil {
			serverDone <- err
			return
		}
		check(dev.BindQP(ep.Ctrl, 0))
		for i, qp := range ep.Data {
			check(dev.BindQP(qp, uint32(i+1)))
		}
		sink, err := core.NewSink(ep, cfg)
		if err != nil {
			serverDone <- err
			return
		}
		var out *storage.FileSink
		sink.NewWriter = func(info core.SessionInfo) core.BlockSink {
			out, err = storage.OpenFileSink(output, cfg.StoreDepth)
			check(err)
			fmt.Printf("server: receiving session %d into %s\n", info.ID, output)
			return out
		}
		sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) {
			if out != nil {
				check(out.Close())
			}
			serverDone <- r.Err
		}
		<-time.After(time.Hour) // the main goroutine exits the process first
	}()
	<-serverUp

	// ---- Client side (source) ----
	dev, err := netfabric.Dial(ln.Addr().String())
	check(err)
	defer dev.Close()
	loop := chanfabric.NewLoop("client")
	defer loop.Stop()
	ep, err := core.NewEndpoint(dev, loop, cfg.Channels, cfg.IODepth)
	check(err)
	check(dev.BindQP(ep.Ctrl, 0))
	for i, qp := range ep.Data {
		check(dev.BindQP(qp, uint32(i+1)))
	}
	source, err := core.NewSource(ep, cfg)
	check(err)

	src, err := storage.OpenFileSource(input, cfg.LoadDepth)
	check(err)
	defer src.Close()

	start := time.Now()
	clientDone := make(chan core.TransferResult, 1)
	loop.Post(0, func() {
		source.Start(func(err error) {
			check(err)
			source.Transfer(src, src.Size(),
				func(r core.TransferResult) { clientDone <- r })
		})
	})
	res := <-clientDone
	check(res.Err)
	check(<-serverDone)
	elapsed := time.Since(start)

	got, err := os.ReadFile(output)
	check(err)
	if sha256.Sum256(got) != sha256.Sum256(data) || !bytes.Equal(got, data) {
		log.Fatal("filetransfer: output does not match input")
	}
	gbps := float64(res.Bytes) * 8 / elapsed.Seconds() / 1e9
	fmt.Printf("client: sent %d MiB in %v (%.2f Gbps, %d blocks) — verified byte-identical\n",
		res.Bytes>>20, elapsed.Round(time.Millisecond), gbps, res.Blocks)
}

func check(err error) {
	if err != nil {
		log.Fatalf("filetransfer: %v", err)
	}
}
