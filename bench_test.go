// Package rftp's top-level benchmarks regenerate every table and figure
// of the paper's evaluation section (one testing.B per artifact) at
// reduced scale, reporting the headline series as custom metrics.
// Report-quality runs: go run ./cmd/experiments -scale 1.0 all
package rftp

import (
	"fmt"
	"io"
	"testing"

	"rftp/internal/bench"
	"rftp/internal/core"
	"rftp/internal/diskmodel"
)

// reportRows publishes the key series of a figure as benchmark metrics.
func reportRows(b *testing.B, rows []bench.Row, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	var bestRFTP, bestGFTP, bestWrite, bestRead, bestSend float64
	for _, r := range rows {
		switch r.Tool {
		case "RFTP", "RFTP mem-to-mem", "RFTP mem-to-disk", "proactive", "write-with-imm":
			if r.Gbps > bestRFTP {
				bestRFTP = r.Gbps
			}
		case "GridFTP", "on-demand":
			if r.Gbps > bestGFTP {
				bestGFTP = r.Gbps
			}
		case "RDMA WRITE":
			if r.Gbps > bestWrite {
				bestWrite = r.Gbps
			}
		case "RDMA READ":
			if r.Gbps > bestRead {
				bestRead = r.Gbps
			}
		case "SEND/RECV":
			if r.Gbps > bestSend {
				bestSend = r.Gbps
			}
		}
	}
	if bestRFTP > 0 {
		b.ReportMetric(bestRFTP, "rftp-Gbps")
	}
	if bestGFTP > 0 {
		b.ReportMetric(bestGFTP, "baseline-Gbps")
	}
	if bestWrite > 0 {
		b.ReportMetric(bestWrite, "write-Gbps")
	}
	if bestRead > 0 {
		b.ReportMetric(bestRead, "read-Gbps")
	}
	if bestSend > 0 {
		b.ReportMetric(bestSend, "send-Gbps")
	}
}

func BenchmarkTable1Testbeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.WriteTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
		if len(bench.Testbeds()) != 3 {
			b.Fatal("testbed set incomplete")
		}
	}
}

func BenchmarkFig3aRoceLowDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigSemantics("fig3a", bench.RoCELAN(), 1, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig3bRoceHighDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigSemantics("fig3b", bench.RoCELAN(), 64, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig4aIBLowDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigSemantics("fig4a", bench.IBLAN(), 1, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig4bIBHighDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigSemantics("fig4b", bench.IBLAN(), 64, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig8RoceLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigComparison("fig8", bench.RoCELAN(), []int{1, 8}, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig9IBLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigComparison("fig9", bench.IBLAN(), []int{1, 8}, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig10WAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigComparison("fig10", bench.RoCEWAN(), []int{1, 8}, bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkFig11MemVsDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FigMemVsDisk(bench.RoCEWAN(), bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkAblationCreditPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationCreditPolicy(bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkAblationQPCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationQPCount(bench.RoCEWAN(), bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkAblationIODepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationIODepth(bench.RoCEWAN(), bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkAblationCreditRamp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationCreditRamp(bench.RoCEWAN(), bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkAblationNotify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationNotify(bench.RoCEWAN(), bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

func BenchmarkScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ScaleOut(bench.ScaleQuick)
		reportRows(b, rows, err)
	}
}

// BenchmarkRFTPSingleTransferWAN measures one full protocol transfer on
// the WAN testbed per iteration (end-to-end simulator throughput).
func BenchmarkRFTPSingleTransferWAN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 20
		cfg.IODepth = 64
		cfg.SinkBlocks = 128
		res, err := bench.RunRFTP(bench.RoCEWAN(), bench.RFTPOptions{Config: cfg, TotalBytes: 2 << 30})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BandwidthGbps, "rftp-Gbps")
	}
}

// BenchmarkGridFTPSingleTransferWAN is the baseline counterpart.
func BenchmarkGridFTPSingleTransferWAN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunGridFTP(bench.RoCEWAN(), bench.GridFTPOptions{
			Streams: 8, BlockSize: 4 << 20, TotalBytes: 2 << 30, UseTBCC: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BandwidthGbps, "baseline-Gbps")
	}
}

// BenchmarkPaperScale900GB runs the paper's headline workload — a
// 900 GB transfer (Section V.C) — over the simulated WAN in virtual
// time, end to end through the real protocol code.
func BenchmarkPaperScale900GB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 20
		cfg.IODepth = 64
		cfg.SinkBlocks = 128
		res, err := bench.RunRFTP(bench.RoCEWAN(), bench.RFTPOptions{
			Config: cfg, TotalBytes: 900 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BandwidthGbps, "rftp-Gbps")
		b.ReportMetric(res.Elapsed.Seconds(), "virtual-sec")
	}
}

// BenchmarkShardScaling sweeps the reactor-shard count on the 100G
// small-block workload, reporting per-point goodput. The single-reactor
// point is CPU-bound on one core; each added shard contributes its own
// post/completion budget (virtual cores in the host model), so goodput
// must rise monotonically until the wire binds.
func BenchmarkShardScaling(b *testing.B) {
	for _, n := range bench.ShardScaleReactorCounts {
		b.Run(fmt.Sprintf("reactors=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := bench.RunShardScalePoint(n, bench.ScaleQuick)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BandwidthGbps, "rftp-Gbps")
			}
		})
	}
}

// BenchmarkSessionScaling sweeps concurrent tenants multiplexed over
// one connection's shared data channels, reporting aggregate goodput,
// Jain's fairness index over per-tenant rates, and retained memory per
// tenant. The session manager's claims: aggregate stays near the
// single-session rate, fairness stays >= 0.95 at equal weights, and
// the shared pool amortizes (memory per tenant falls as tenants rise).
func BenchmarkSessionScaling(b *testing.B) {
	for _, n := range bench.SessionScaleCounts {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := bench.RunSessionScalePoint(n, nil, bench.ScaleQuick)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BandwidthGbps, "goodput-agg-Gbps")
				if n > 1 {
					b.ReportMetric(res.JainIndex, "jain-index")
					b.ReportMetric(res.MemPerSession, "mem-per-session-B")
				}
			}
		})
	}
}

// BenchmarkMRCacheRepeatedSessions drives 10 sequential connections
// through one shared pin-down cache per side: every connection after
// the first reuses the previous pools' registrations (>=90% hit rate).
func BenchmarkMRCacheRepeatedSessions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = 16
		cfg.SinkBlocks = 32
		_, rep, err := bench.RunRFTPRepeated(bench.RoCELAN(), bench.RFTPOptions{
			Config: cfg, TotalBytes: 256 << 20,
		}, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.HitRate, "mr-cache-hit-%")
	}
}

// BenchmarkRFTPMemToDisk exercises the direct-I/O disk path.
func BenchmarkRFTPMemToDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 20
		cfg.IODepth = 64
		cfg.SinkBlocks = 128
		res, err := bench.RunRFTP(bench.RoCEWAN(), bench.RFTPOptions{
			Config: cfg, TotalBytes: 1 << 30,
			Disk: true, DiskMode: diskmodel.ODirect,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BandwidthGbps, "rftp-Gbps")
	}
}
