package verbs

import (
	"testing"
	"time"
)

// syncLoop runs closures immediately (a trivial Loop for unit tests).
type syncLoop struct{ now time.Duration }

func (l *syncLoop) Now() time.Duration                 { return l.now }
func (l *syncLoop) Post(cost time.Duration, fn func()) { fn() }
func (l *syncLoop) After(d time.Duration, fn func())   { l.now += d; fn() }

func TestUpcallCQDispatch(t *testing.T) {
	loop := &syncLoop{}
	cq := NewUpcallCQ(loop)
	var got []WC
	cq.SetHandler(func(wc WC) { got = append(got, wc) })
	cq.Dispatch(0, WC{WRID: 1, Status: StatusSuccess})
	cq.Dispatch(0, WC{WRID: 2, Status: StatusFlushed})
	if len(got) != 2 || got[0].WRID != 1 || got[1].Status != StatusFlushed {
		t.Fatalf("dispatched: %+v", got)
	}
	if cq.Loop() != loop {
		t.Fatal("Loop() wrong")
	}
}

func TestUpcallCQNoHandlerPanics(t *testing.T) {
	cq := NewUpcallCQ(&syncLoop{})
	defer func() {
		if recover() == nil {
			t.Fatal("dispatch without handler did not panic")
		}
	}()
	cq.Dispatch(0, WC{})
}

func TestUpcallCQHandlerSwap(t *testing.T) {
	cq := NewUpcallCQ(&syncLoop{})
	first, second := 0, 0
	cq.SetHandler(func(WC) { first++ })
	cq.Dispatch(0, WC{})
	cq.SetHandler(func(WC) { second++ })
	cq.Dispatch(0, WC{})
	if first != 1 || second != 1 {
		t.Fatalf("handler swap: first=%d second=%d", first, second)
	}
}

func TestMRRemoteAddressing(t *testing.T) {
	as := NewAddressSpace()
	mr, _ := as.Register(&PD{}, make([]byte, 128), AccessRemoteWrite)
	r := mr.Remote(64)
	if r.Addr != mr.Addr+64 || r.RKey != mr.RKey {
		t.Fatalf("Remote(64) = %+v", r)
	}
}

func TestViewLocalBounds(t *testing.T) {
	as := NewAddressSpace()
	mr, _ := as.RegisterModel(&PD{}, 1024, 32, AccessRemoteWrite)
	if v := mr.ViewLocal(16, 64); len(v) != 16 {
		t.Fatalf("view across shadow boundary = %d bytes, want 16", len(v))
	}
	if v := mr.ViewLocal(32, 8); v != nil {
		t.Fatalf("view beyond shadow = %v", v)
	}
	if v := mr.ViewLocal(0, 32); len(v) != 32 {
		t.Fatalf("full shadow view = %d", len(v))
	}
}

func TestPlaceLocalBeyondShadowIsModeled(t *testing.T) {
	as := NewAddressSpace()
	mr, _ := as.RegisterModel(&PD{}, 1024, 16, AccessRemoteWrite)
	mr.PlaceLocal(100, []byte("deep")) // must not panic or corrupt
	mr.PlaceLocal(8, []byte("0123456789ABCDEF"))
	if string(mr.Buf[8:16]) != "01234567" {
		t.Fatalf("shadow prefix wrong: %q", mr.Buf[8:16])
	}
}
