package verbs

import (
	"bytes"
	"testing"
)

func TestWritableRemoteInPlace(t *testing.T) {
	a := NewAddressSpace()
	buf := make([]byte, 4096)
	mr, err := a.Register(&PD{ID: 1}, buf, AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	gotMR, dst, err := a.WritableRemote(mr.Remote(1024), 512)
	if err != nil || gotMR != mr {
		t.Fatalf("WritableRemote: %v (mr %p vs %p)", err, gotMR, mr)
	}
	if len(dst) != 512 {
		t.Fatalf("dst len = %d", len(dst))
	}
	// Writing through the view must land in the registered buffer: the
	// view is the region, not a copy.
	for i := range dst {
		dst[i] = byte(i)
	}
	if buf[1024] != 0 || buf[1025] != 1 || buf[1024+511] != byte(511%256) {
		t.Fatal("in-place write did not reach the backing buffer")
	}

	// Validation still applies.
	if _, _, err := a.WritableRemote(RemoteAddr{Addr: mr.Addr, RKey: mr.RKey + 99}, 8); err != ErrMRKey {
		t.Fatalf("bad rkey: %v", err)
	}
	if _, _, err := a.WritableRemote(mr.Remote(4090), 16); err != ErrMRBounds {
		t.Fatalf("out of bounds: %v", err)
	}
	ro, _ := a.Register(&PD{ID: 1}, make([]byte, 64), AccessRemoteRead)
	if _, _, err := a.WritableRemote(ro.Remote(0), 8); err != ErrMRAccess {
		t.Fatalf("read-only region writable: %v", err)
	}
}

func TestWritableRemoteModeledTruncation(t *testing.T) {
	a := NewAddressSpace()
	mr, err := a.RegisterModel(&PD{ID: 1}, 1<<20, 64, AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := a.WritableRemote(mr.Remote(0), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 64 {
		t.Fatalf("modeled view len = %d, want shadow prefix 64", len(dst))
	}
	_, dst, err = a.WritableRemote(mr.Remote(128), 4096)
	if err != nil || dst != nil {
		t.Fatalf("fully modeled window: dst=%v err=%v", dst, err)
	}
}

func TestWritableLocal(t *testing.T) {
	a := NewAddressSpace()
	buf := make([]byte, 256)
	mr, _ := a.Register(&PD{ID: 1}, buf, AccessLocalWrite)
	dst := mr.WritableLocal(16, 32)
	if len(dst) != 32 {
		t.Fatalf("len = %d", len(dst))
	}
	copy(dst, bytes.Repeat([]byte{7}, 32))
	if buf[16] != 7 || buf[47] != 7 {
		t.Fatal("write did not land")
	}
	if mr.WritableLocal(-1, 8) != nil || mr.WritableLocal(250, 16) != nil || mr.WritableLocal(0, 0) != nil {
		t.Fatal("bad windows not rejected")
	}
}

func TestCopiedBytesCounter(t *testing.T) {
	a := NewAddressSpace()
	mr, _ := a.Register(&PD{ID: 1}, make([]byte, 1024), AccessRemoteWrite)
	before := CopiedBytes()
	if _, _, err := a.Place(mr.Remote(0), make([]byte, 300), 0); err != nil {
		t.Fatal(err)
	}
	if d := CopiedBytes() - before; d != 300 {
		t.Fatalf("Place counted %d copied bytes, want 300", d)
	}
	before = CopiedBytes()
	CountCopy(41)
	CountCopy(-5) // ignored
	if d := CopiedBytes() - before; d != 41 {
		t.Fatalf("CountCopy delta = %d", d)
	}
}
