package verbs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// copiedBytes counts payload bytes moved by a CPU copy anywhere in the
// data path (region placement, fabric fallback copies). Zero-copy
// paths — sockets reading straight into a registered region — bypass
// it, so the delta across a transfer is the host-side copy cost the
// paper's one-sided design eliminates.
var copiedBytes atomic.Uint64

// CopiedBytes returns the process-wide count of CPU-copied payload
// bytes. Benchmarks snapshot it before and after a run.
func CopiedBytes() uint64 { return copiedBytes.Load() }

// CountCopy records n payload bytes moved by an explicit copy outside
// the MR placement helpers (fabric-internal staging copies).
func CountCopy(n int) {
	if n > 0 {
		copiedBytes.Add(uint64(n))
	}
}

// PD is a protection domain. Memory regions and queue pairs belong to a
// PD; one-sided access is validated against the region's keys, not the
// PD, matching verbs semantics closely enough for the protocol under
// study.
type PD struct {
	ID     uint32
	Device string
}

// MR is a registered memory region.
//
// Real regions wrap a caller-supplied buffer. Modeled regions (simulated
// fabrics) have Len >= len(Buf): only the Shadow-byte prefix is backed by
// real memory, which is where protocol headers are placed; the remainder
// is accounted but never materialized. Real fabrics always have
// Shadow == Len.
type MR struct {
	PD     *PD
	Addr   uint64 // virtual address of the start of the region
	Len    int    // registered length
	Shadow int    // length of the real backing prefix (== Len for real MRs)
	Buf    []byte // real backing store (len(Buf) == Shadow)
	LKey   uint32
	RKey   uint32
	Access Access

	invalid bool
}

// Remote returns the RemoteAddr a peer should target to write at the
// given offset into the region.
func (m *MR) Remote(offset int) RemoteAddr {
	return RemoteAddr{Addr: m.Addr + uint64(offset), RKey: m.RKey}
}

// Errors reported by address-space validation.
var (
	ErrMRNotFound    = errors.New("verbs: address not in any registered region")
	ErrMRBounds      = errors.New("verbs: access outside region bounds")
	ErrMRKey         = errors.New("verbs: rkey mismatch")
	ErrMRAccess      = errors.New("verbs: access flags forbid operation")
	ErrMRInvalidated = errors.New("verbs: region deregistered")
)

// placeAt copies data into the region at offset, honoring the shadow
// prefix: bytes beyond Shadow are modeled and silently accounted. The
// caller has already bounds-checked offset+len(data) <= Len.
func (m *MR) placeAt(offset int, data []byte) {
	if offset >= m.Shadow {
		return
	}
	n := m.Shadow - offset
	if n > len(data) {
		n = len(data)
	}
	copy(m.Buf[offset:], data[:n])
	CountCopy(n)
}

// viewAt returns the real bytes available at [offset, offset+n),
// truncated to the shadow prefix.
func (m *MR) viewAt(offset, n int) []byte {
	if offset >= m.Shadow {
		return nil
	}
	end := offset + n
	if end > m.Shadow {
		end = m.Shadow
	}
	return m.Buf[offset:end]
}

// PlaceLocal copies data into the region at offset as local DMA (receive
// placement): no remote-access rights are required. Bounds must have
// been validated by the caller (PostRecv does). Bytes beyond the shadow
// prefix are modeled.
func (m *MR) PlaceLocal(offset int, data []byte) { m.placeAt(offset, data) }

// ViewLocal returns the real bytes stored at [offset, offset+n),
// truncated to the shadow prefix (nil when the window is entirely
// modeled).
func (m *MR) ViewLocal(offset, n int) []byte { return m.viewAt(offset, n) }

// WritableLocal returns the real-backed destination bytes at
// [offset, offset+n) for in-place local placement: a fabric may read
// wire payload directly into the returned slice instead of staging it
// and calling PlaceLocal. The window is bounds-checked against the
// region and truncated to the shadow prefix, so the result may be
// shorter than n for modeled regions (nil when out of bounds or
// entirely modeled).
func (m *MR) WritableLocal(offset, n int) []byte {
	if offset < 0 || n <= 0 || offset > m.Len || n > m.Len-offset {
		return nil
	}
	return m.viewAt(offset, n)
}

// AddressSpace is the per-device registry of memory regions: it assigns
// virtual addresses and keys at registration and validates one-sided
// accesses. Fabric implementations embed one per device.
type AddressSpace struct {
	mu      sync.Mutex
	nextKey uint32
	nextVA  uint64
	regions map[uint32]*MR // by rkey
	byAddr  []*MR          // sorted by Addr (append-only bump allocation keeps it sorted)
}

// NewAddressSpace returns an empty address space. Virtual addresses
// start away from zero so a zero RemoteAddr is always invalid.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextKey: 0x1000, nextVA: 0x10000, regions: make(map[uint32]*MR)}
}

const vaAlign = 4096

// Register creates an MR for a real buffer.
func (a *AddressSpace) Register(pd *PD, buf []byte, access Access) (*MR, error) {
	if buf == nil {
		return nil, fmt.Errorf("%w: nil buffer", ErrBadWR)
	}
	return a.register(pd, buf, len(buf), access)
}

// RegisterModel creates a modeled MR of the given length with a
// shadow-byte real prefix.
func (a *AddressSpace) RegisterModel(pd *PD, length, shadow int, access Access) (*MR, error) {
	if length <= 0 || shadow < 0 || shadow > length {
		return nil, fmt.Errorf("%w: bad modeled region length=%d shadow=%d", ErrBadWR, length, shadow)
	}
	return a.register(pd, make([]byte, shadow), length, access)
}

func (a *AddressSpace) register(pd *PD, buf []byte, length int, access Access) (*MR, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextKey++
	lkey := a.nextKey
	a.nextKey++
	rkey := a.nextKey
	size := uint64(length)
	size = (size + vaAlign - 1) &^ uint64(vaAlign-1)
	mr := &MR{
		PD:     pd,
		Addr:   a.nextVA,
		Len:    length,
		Shadow: len(buf),
		Buf:    buf,
		LKey:   lkey,
		RKey:   rkey,
		Access: access,
	}
	a.nextVA += size + vaAlign // guard page between regions
	a.regions[rkey] = mr
	a.byAddr = append(a.byAddr, mr)
	return mr, nil
}

// Deregister invalidates the region; later remote accesses fail.
func (a *AddressSpace) Deregister(mr *MR) {
	a.mu.Lock()
	defer a.mu.Unlock()
	mr.invalid = true
	delete(a.regions, mr.RKey)
}

// CheckRemote validates a one-sided access of n bytes at remote with the
// required access right, returning the region and the offset within it.
func (a *AddressSpace) CheckRemote(remote RemoteAddr, n int, need Access) (*MR, int, error) {
	a.mu.Lock()
	mr, ok := a.regions[remote.RKey]
	a.mu.Unlock()
	if !ok {
		return nil, 0, ErrMRKey
	}
	if mr.invalid {
		return nil, 0, ErrMRInvalidated
	}
	if mr.Access&need == 0 {
		return nil, 0, ErrMRAccess
	}
	if remote.Addr < mr.Addr {
		return nil, 0, ErrMRBounds
	}
	off := remote.Addr - mr.Addr
	if off > uint64(mr.Len) || uint64(n) > uint64(mr.Len)-off {
		return nil, 0, ErrMRBounds
	}
	return mr, int(off), nil
}

// Place performs a validated remote write: data (real bytes) followed by
// modelBytes of modeled payload at remote.
func (a *AddressSpace) Place(remote RemoteAddr, data []byte, modelBytes int) (*MR, int, error) {
	mr, off, err := a.CheckRemote(remote, len(data)+modelBytes, AccessRemoteWrite)
	if err != nil {
		return nil, 0, err
	}
	mr.placeAt(off, data)
	return mr, off, nil
}

// WritableRemote validates a one-sided write of n bytes at remote and
// returns the real-backed destination slice for in-place placement:
// the caller moves the payload itself (typically io.ReadFull from a
// socket straight into the registered region), skipping the
// intermediate copy Place would perform. The slice is shorter than n
// when the window's tail is modeled; the caller accounts the rest.
func (a *AddressSpace) WritableRemote(remote RemoteAddr, n int) (*MR, []byte, error) {
	mr, off, err := a.CheckRemote(remote, n, AccessRemoteWrite)
	if err != nil {
		return nil, nil, err
	}
	return mr, mr.viewAt(off, n), nil
}

// Fetch performs a validated remote read of n bytes at remote, returning
// the real bytes available (may be shorter than n for modeled regions).
func (a *AddressSpace) Fetch(remote RemoteAddr, n int) (*MR, []byte, error) {
	mr, off, err := a.CheckRemote(remote, n, AccessRemoteRead)
	if err != nil {
		return nil, nil, err
	}
	return mr, mr.viewAt(off, n), nil
}
