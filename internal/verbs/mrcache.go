package verbs

import (
	"sync"
	"sync/atomic"
)

// MRDeregisterer is implemented by devices that can tear a registration
// down. The MR cache uses it to release evicted regions; devices
// without it simply leak the registration to the GC, which matches
// fabrics whose regions are pure bookkeeping.
type MRDeregisterer interface {
	DeregisterMR(*MR)
}

// mrKey is the size-class identity of a cached registration. Two
// requests share a cached region only when every field matches, so a
// region registered with remote-write rights is never handed to a
// caller that asked for local-only access, and modeled regions never
// satisfy real-buffer requests.
type mrKey struct {
	length  int
	shadow  int
	access  Access
	modeled bool
}

// mrEntry is one idle cached registration on the LRU list.
type mrEntry struct {
	mr         *MR
	key        mrKey
	prev, next *mrEntry // LRU order: head = most recent
}

// MRCache is a pin-down cache for memory registrations (the classic
// VIA/RDMA optimization: registration and pinning dominate setup cost,
// so idle regions are kept registered and reissued to the next pool
// that asks for the same size class instead of being torn down).
//
// The cache is keyed by size class, access rights, and modeling mode —
// not by protection domain: one-sided access in this verbs layer is
// validated against the region's keys, so reissuing a region under a
// new pool's PD is safe, and the region is re-tagged with the
// requesting PD on every hit. Capacity bounds the idle set; the least
// recently returned region is evicted (and deregistered when the
// device supports it) when the bound is exceeded.
//
// All methods are safe for concurrent use.
type MRCache struct {
	dev      Device
	capacity int

	mu    sync.Mutex
	byKey map[mrKey][]*mrEntry
	head  *mrEntry // most recently Put
	tail  *mrEntry // least recently Put (evicted first)
	idle  int
	frees []*mrEntry // recycled list nodes

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	hooks MRCacheHooks
}

// MRCacheHooks mirrors cache events into an external metrics system
// (the telemetry package provides an adapter; verbs cannot import it
// directly without a cycle). Nil funcs are skipped. Hooks run outside
// the cache lock.
type MRCacheHooks struct {
	Hit      func()
	Miss     func()
	Eviction func()
	Idle     func(int64)
}

// NewMRCache creates a cache over dev holding at most capacity idle
// registrations (minimum 1).
func NewMRCache(dev Device, capacity int) *MRCache {
	if capacity < 1 {
		capacity = 1
	}
	return &MRCache{dev: dev, capacity: capacity, byKey: make(map[mrKey][]*mrEntry)}
}

// SetHooks installs the event mirror. Call before the cache is shared
// across goroutines.
func (c *MRCache) SetHooks(h MRCacheHooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hooks = h
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *MRCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any request.
func (c *MRCache) HitRate() float64 {
	h, m, _ := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Get returns a registered region of the requested class, reusing an
// idle cached registration when one exists and registering a fresh one
// otherwise. Modeled requests produce modeled regions (length with a
// shadow-byte real prefix); real requests allocate and register a
// length-byte buffer. The region is re-tagged with pd before being
// handed out.
func (c *MRCache) Get(pd *PD, length, shadow int, access Access, modeled bool) (*MR, error) {
	key := mrKey{length: length, shadow: shadow, access: access, modeled: modeled}
	if !modeled {
		key.shadow = length
	}
	c.mu.Lock()
	if stack := c.byKey[key]; len(stack) > 0 {
		e := stack[len(stack)-1]
		c.byKey[key] = stack[:len(stack)-1]
		c.unlink(e)
		c.idle--
		mr := e.mr
		e.mr = nil
		c.frees = append(c.frees, e)
		h := c.hooks
		idle := c.idle
		c.mu.Unlock()
		c.hits.Add(1)
		if h.Hit != nil {
			h.Hit()
		}
		if h.Idle != nil {
			h.Idle(int64(idle))
		}
		mr.PD = pd
		return mr, nil
	}
	h := c.hooks
	c.mu.Unlock()
	c.misses.Add(1)
	if h.Miss != nil {
		h.Miss()
	}
	if modeled {
		return c.dev.RegisterModelMR(pd, length, shadow, access)
	}
	return c.dev.RegisterMR(pd, make([]byte, length), access)
}

// Put returns an idle region to the cache. The caller must guarantee
// no operation is still in flight against the region (the rftpdebug
// invariant layer enforces this at the protocol layer). Regions past
// the capacity bound evict the least recently returned entry.
func (c *MRCache) Put(mr *MR, modeled bool) {
	if mr == nil {
		return
	}
	key := mrKey{length: mr.Len, shadow: mr.Shadow, access: mr.Access, modeled: modeled}
	c.mu.Lock()
	var e *mrEntry
	if n := len(c.frees); n > 0 {
		e = c.frees[n-1]
		c.frees = c.frees[:n-1]
	} else {
		e = &mrEntry{}
	}
	e.mr, e.key, e.prev, e.next = mr, key, nil, nil
	c.pushFront(e)
	c.byKey[key] = append(c.byKey[key], e)
	c.idle++
	var evicted *MR
	if c.idle > c.capacity {
		evicted = c.evictTail()
	}
	h := c.hooks
	idle := c.idle
	c.mu.Unlock()
	if h.Idle != nil {
		h.Idle(int64(idle))
	}
	if evicted != nil {
		c.evictions.Add(1)
		if h.Eviction != nil {
			h.Eviction()
		}
		if d, ok := c.dev.(MRDeregisterer); ok {
			d.DeregisterMR(evicted)
		}
	}
}

// Idle returns the number of cached idle registrations.
func (c *MRCache) Idle() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idle
}

// pushFront links e as most recently used. Caller holds mu.
func (c *MRCache) pushFront(e *mrEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (c *MRCache) unlink(e *mrEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictTail drops the least recently returned entry and hands its MR
// back for deregistration. Caller holds mu.
func (c *MRCache) evictTail() *MR {
	e := c.tail
	if e == nil {
		return nil
	}
	c.unlink(e)
	stack := c.byKey[e.key]
	for i, se := range stack {
		if se == e {
			c.byKey[e.key] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	c.idle--
	mr := e.mr
	e.mr = nil
	c.frees = append(c.frees, e)
	return mr
}
