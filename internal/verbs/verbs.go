// Package verbs defines an OFED-like RDMA verbs interface in pure Go.
//
// The types mirror the native IB verbs the paper programs against
// (libibverbs): protection domains, registered memory regions with
// lkey/rkey pairs, completion queues, reliably-connected queue pairs, and
// asynchronous work requests for SEND, RDMA WRITE, RDMA WRITE WITH
// IMMEDIATE, and RDMA READ. Completions are delivered as upcalls on a
// host Loop, mirroring the completion-channel event style the middleware
// uses ("the threads handle data transfer and the completion event
// asynchronously").
//
// Three fabrics implement Device: a discrete-event simulated fabric
// (internal/fabric/simfabric), an in-process channel fabric
// (internal/fabric/chanfabric) and a TCP socket fabric
// (internal/fabric/netfabric). The protocol core is written purely
// against this package, so the same code runs on all three.
//
// Payload modeling: a work request carries Data (real bytes, always used
// for protocol headers) plus ModelBytes (additional modeled payload for
// simulation-scale transfers). Wire length is len(Data)+ModelBytes. Real
// fabrics reject ModelBytes != 0.
package verbs

import (
	"errors"
	"fmt"
	"time"
)

// Opcode identifies the operation of a work request or completion.
type Opcode uint8

// Work request opcodes.
const (
	OpSend Opcode = iota + 1
	OpWrite
	OpWriteImm
	OpRead
	OpRecv // appears only in completions
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpWrite:
		return "RDMA_WRITE"
	case OpWriteImm:
		return "RDMA_WRITE_WITH_IMM"
	case OpRead:
		return "RDMA_READ"
	case OpRecv:
		return "RECV"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Access flags control what remote peers may do to a memory region.
type Access uint8

// Access flag bits.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteWrite
	AccessRemoteRead
)

// Status is the completion status of a work request.
type Status uint8

// Completion status codes.
const (
	StatusSuccess Status = iota
	StatusRNRRetryExceeded
	StatusRemoteAccessError
	StatusLocalError
	StatusFlushed
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusRNRRetryExceeded:
		return "RNR retry exceeded"
	case StatusRemoteAccessError:
		return "remote access error"
	case StatusLocalError:
		return "local error"
	case StatusFlushed:
		return "flushed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Errors returned by verbs operations.
var (
	ErrQPClosed      = errors.New("verbs: queue pair closed")
	ErrQPError       = errors.New("verbs: queue pair in error state")
	ErrNotConnected  = errors.New("verbs: queue pair not connected")
	ErrSendQueueFull = errors.New("verbs: send queue full")
	ErrRecvQueueFull = errors.New("verbs: receive queue full")
	ErrBadWR         = errors.New("verbs: malformed work request")
	ErrModelBytes    = errors.New("verbs: modeled payload not supported by this fabric")
)

// Loop is the execution context completions and timers are delivered on.
// Implementations serialize all posted closures (one event-loop thread
// per host, matching the paper's event-driven design). The cost argument
// is the CPU time the work consumes; real-time loops ignore it, modeled
// loops charge it to the thread.
type Loop interface {
	Now() time.Duration
	Post(cost time.Duration, fn func())
	After(d time.Duration, fn func())
}

// QPID names a queue pair uniquely within a fabric.
type QPID uint64

// RemoteAddr addresses memory on the remote host for one-sided
// operations: an absolute virtual address plus the rkey advertised by
// the owner of the region.
type RemoteAddr struct {
	Addr uint64
	RKey uint32
}

// SendWR is a send-queue work request.
type SendWR struct {
	// WRID is an application cookie echoed in the completion.
	WRID uint64
	// Op is one of OpSend, OpWrite, OpWriteImm, OpRead.
	Op Opcode
	// Data holds real bytes to transmit (for OpRead it must be nil).
	// Protocol headers always travel as real bytes.
	Data []byte
	// ModelBytes is additional modeled payload length (simulated fabrics
	// only). The bytes are accounted for bandwidth and CPU but never
	// materialized.
	ModelBytes int
	// Remote addresses the target region for OpWrite/OpWriteImm/OpRead.
	Remote RemoteAddr
	// Imm is delivered to the peer for OpSend and OpWriteImm.
	Imm uint32
	// Local is the local destination region for OpRead; LocalOffset the
	// offset within it.
	Local       *MR
	LocalOffset int
	// ReadLen is the number of bytes to fetch for OpRead.
	ReadLen int
	// NoCompletion suppresses the local success completion (unsignaled
	// WR); errors always complete.
	NoCompletion bool
}

// Length returns the wire payload length of the request.
func (wr *SendWR) Length() int {
	if wr.Op == OpRead {
		return wr.ReadLen
	}
	return len(wr.Data) + wr.ModelBytes
}

// RecvWR is a receive-queue work request: a registered region (or a
// window of one) the NIC may place an incoming SEND into.
type RecvWR struct {
	WRID   uint64
	MR     *MR
	Offset int
	Len    int
}

// WC is a work completion.
type WC struct {
	WRID   uint64
	Status Status
	// Op is the opcode of the completed WR; receive completions carry
	// OpRecv (for SEND) or OpWriteImm (for RDMA WRITE WITH IMMEDIATE).
	Op Opcode
	// ByteLen is the total wire length (real + modeled bytes).
	ByteLen int
	// Imm carries the immediate value on OpRecv/OpWriteImm completions.
	Imm uint32
	// Data exposes the real received bytes for receive completions (a
	// view into the posted MR's backing store).
	Data []byte
	// QP identifies the local queue pair.
	QP QPID
}

// CQ is a completion queue. A handler must be attached before any
// completion can be generated; completions are dispatched serialized on
// the loop supplied at creation.
type CQ interface {
	// SetHandler installs the completion upcall.
	SetHandler(fn func(WC))
	// Loop returns the loop completions are dispatched on.
	Loop() Loop
}

// QPType is the transport type of a queue pair. Only reliably-connected
// queue pairs are supported, matching the paper's design choice
// ("considering the requirements of performance and reliability, we
// selected RC queue pairs"). UD is intentionally absent.
type QPType uint8

// Queue pair types.
const (
	RC QPType = iota
)

// QPConfig configures queue pair creation.
type QPConfig struct {
	PD     *PD
	SendCQ CQ
	RecvCQ CQ
	Type   QPType
	// MaxSend and MaxRecv bound the send/receive queue depths.
	MaxSend int
	MaxRecv int
	// MaxRDAtomic bounds outstanding RDMA READ requests (the initiator
	// depth). Hardware typically allows 4-16; this is what limits READ
	// pipelining in the paper's Section III measurements.
	MaxRDAtomic int
	// RNRRetry is how many times a SEND finding no posted receive is
	// retried before failing with StatusRNRRetryExceeded.
	RNRRetry int
}

// Normalize applies the defaults for zero-valued fields.
func (c QPConfig) Normalize() QPConfig {
	if c.MaxSend <= 0 {
		c.MaxSend = 256
	}
	if c.MaxRecv <= 0 {
		c.MaxRecv = 256
	}
	if c.MaxRDAtomic <= 0 {
		c.MaxRDAtomic = 4
	}
	if c.RNRRetry == 0 {
		c.RNRRetry = 7
	}
	return c
}

// QP is a queue pair endpoint.
type QP interface {
	ID() QPID
	// PostSend enqueues a send-queue work request.
	PostSend(wr *SendWR) error
	// PostRecv enqueues a receive buffer.
	PostRecv(wr *RecvWR) error
	// Close transitions the QP out of service; pending WRs complete with
	// StatusFlushed.
	Close() error
}

// Device is one RDMA-capable network interface.
type Device interface {
	// Name identifies the device (e.g. "roce0", "ib0", "sim0").
	Name() string
	// AllocPD allocates a protection domain.
	AllocPD() *PD
	// CreateCQ creates a completion queue whose handler runs on loop.
	CreateCQ(loop Loop, depth int) CQ
	// CreateQP creates a queue pair. The QP must be connected through
	// the fabric's own rendezvous mechanism before use.
	CreateQP(cfg QPConfig) (QP, error)
	// RegisterMR registers buf for DMA and returns the region.
	RegisterMR(pd *PD, buf []byte, access Access) (*MR, error)
	// RegisterModelMR registers a modeled region of the given length
	// backed by only shadow real bytes (the prefix that protocol headers
	// land in). Simulated fabrics only.
	RegisterModelMR(pd *PD, length, shadow int, access Access) (*MR, error)
}
