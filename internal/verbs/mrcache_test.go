package verbs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// cacheTestDev is a minimal Device for exercising the MR cache: it
// counts registrations and (via MRDeregisterer) deregistrations.
type cacheTestDev struct {
	registered   atomic.Int64
	deregistered atomic.Int64
	nextKey      atomic.Uint32
}

func (d *cacheTestDev) Name() string                      { return "mrcache-test" }
func (d *cacheTestDev) AllocPD() *PD                      { return &PD{} }
func (d *cacheTestDev) CreateCQ(loop Loop, depth int) CQ  { return nil }
func (d *cacheTestDev) CreateQP(cfg QPConfig) (QP, error) { return nil, fmt.Errorf("not supported") }

func (d *cacheTestDev) RegisterMR(pd *PD, buf []byte, access Access) (*MR, error) {
	d.registered.Add(1)
	k := d.nextKey.Add(1)
	return &MR{PD: pd, Len: len(buf), Shadow: len(buf), Buf: buf, LKey: k, RKey: k, Access: access}, nil
}

func (d *cacheTestDev) RegisterModelMR(pd *PD, length, shadow int, access Access) (*MR, error) {
	d.registered.Add(1)
	k := d.nextKey.Add(1)
	return &MR{PD: pd, Len: length, Shadow: shadow, Buf: make([]byte, shadow), LKey: k, RKey: k, Access: access}, nil
}

func (d *cacheTestDev) DeregisterMR(*MR) { d.deregistered.Add(1) }

func TestMRCacheHitMissCycle(t *testing.T) {
	dev := &cacheTestDev{}
	c := NewMRCache(dev, 8)
	pd1, pd2 := dev.AllocPD(), dev.AllocPD()

	mr, err := c.Get(pd1, 4096, 4096, AccessLocalWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	if h, m, _ := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("first Get: hits=%d misses=%d, want 0/1", h, m)
	}
	c.Put(mr, false)
	if c.Idle() != 1 {
		t.Fatalf("idle = %d after Put, want 1", c.Idle())
	}

	// Same class from a different PD: must reuse and re-tag.
	mr2, err := c.Get(pd2, 4096, 4096, AccessLocalWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	if mr2 != mr {
		t.Fatal("same-class Get did not reuse the cached region")
	}
	if mr2.PD != pd2 {
		t.Fatal("reissued region not re-tagged with the requesting PD")
	}
	if h, m, _ := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if dev.registered.Load() != 1 {
		t.Fatalf("device saw %d registrations, want 1", dev.registered.Load())
	}

	// Different size class: miss, fresh registration.
	if _, err := c.Get(pd1, 8192, 8192, AccessLocalWrite, false); err != nil {
		t.Fatal(err)
	}
	if h, m, _ := c.Stats(); h != 1 || m != 2 {
		t.Fatalf("after class change: hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestMRCacheClassIsolation(t *testing.T) {
	dev := &cacheTestDev{}
	c := NewMRCache(dev, 8)
	pd := dev.AllocPD()

	// A local-only region must not satisfy a remote-write request, and a
	// modeled region must not satisfy a real one.
	local, _ := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
	c.Put(local, false)
	remote, err := c.Get(pd, 4096, 4096, AccessLocalWrite|AccessRemoteWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	if remote == local {
		t.Fatal("cache handed a local-only region to a remote-write request")
	}
	modeled, _ := c.Get(pd, 4096, 64, AccessLocalWrite, true)
	if modeled == local {
		t.Fatal("cache crossed modeled/real classes")
	}
	if modeled.Shadow != 64 || modeled.Len != 4096 {
		t.Fatalf("modeled region shape wrong: len=%d shadow=%d", modeled.Len, modeled.Shadow)
	}
}

func TestMRCacheEvictionLRU(t *testing.T) {
	dev := &cacheTestDev{}
	c := NewMRCache(dev, 2)
	pd := dev.AllocPD()

	var mrs []*MR
	for i := 0; i < 3; i++ {
		mr, err := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
		if err != nil {
			t.Fatal(err)
		}
		mrs = append(mrs, mr)
	}
	// Return all three: capacity 2 means the first returned (now least
	// recent) is evicted and deregistered.
	for _, mr := range mrs {
		c.Put(mr, false)
	}
	if c.Idle() != 2 {
		t.Fatalf("idle = %d, want capacity 2", c.Idle())
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if dev.deregistered.Load() != 1 {
		t.Fatalf("device saw %d deregistrations, want 1", dev.deregistered.Load())
	}
	// The survivors are the two most recently returned.
	a, _ := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
	b, _ := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
	for _, got := range []*MR{a, b} {
		if got == mrs[0] {
			t.Fatal("evicted (least recently returned) region reissued")
		}
	}
}

func TestMRCacheHooks(t *testing.T) {
	dev := &cacheTestDev{}
	c := NewMRCache(dev, 1)
	var hits, misses, evictions atomic.Int64
	var lastIdle atomic.Int64
	c.SetHooks(MRCacheHooks{
		Hit:      func() { hits.Add(1) },
		Miss:     func() { misses.Add(1) },
		Eviction: func() { evictions.Add(1) },
		Idle:     func(n int64) { lastIdle.Store(n) },
	})
	pd := dev.AllocPD()
	m1, _ := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
	m2, _ := c.Get(pd, 4096, 4096, AccessLocalWrite, false)
	c.Put(m1, false)
	c.Put(m2, false) // over capacity: evicts m1
	if _, err := c.Get(pd, 4096, 4096, AccessLocalWrite, false); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 || misses.Load() != 2 || evictions.Load() != 1 {
		t.Fatalf("hooks saw hits=%d misses=%d evictions=%d, want 1/2/1",
			hits.Load(), misses.Load(), evictions.Load())
	}
	if lastIdle.Load() != 0 {
		t.Fatalf("last idle hook = %d, want 0", lastIdle.Load())
	}
}

// TestMRCacheCapacityBoundProperty: no interleaving of Gets and Puts
// drives the idle set above capacity, and cache accounting stays
// consistent (hits+misses == Gets, idle == Puts - hits - evictions).
func TestMRCacheCapacityBoundProperty(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		dev := &cacheTestDev{}
		c := NewMRCache(dev, capacity)
		pd := dev.AllocPD()
		var held []*MR
		gets, puts := int64(0), int64(0)
		for _, op := range ops {
			cls := int(op%3+1) * 1024
			if op&0x80 != 0 && len(held) > 0 {
				c.Put(held[len(held)-1], false)
				held = held[:len(held)-1]
				puts++
			} else {
				mr, err := c.Get(pd, cls, cls, AccessLocalWrite, false)
				if err != nil {
					return false
				}
				held = append(held, mr)
				gets++
			}
			if c.Idle() > capacity {
				return false
			}
		}
		h, m, ev := c.Stats()
		if h+m != gets {
			return false
		}
		return int64(c.Idle()) == puts-h-ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMRCacheConcurrent hammers one cache from many goroutines; run
// under -race this checks the locking discipline, and afterward the
// capacity bound and counters must still hold.
func TestMRCacheConcurrent(t *testing.T) {
	dev := &cacheTestDev{}
	const capacity = 16
	c := NewMRCache(dev, capacity)
	c.SetHooks(MRCacheHooks{Idle: func(int64) {}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pd := dev.AllocPD()
			for i := 0; i < 200; i++ {
				cls := (g%4 + 1) * 1024
				mr, err := c.Get(pd, cls, cls, AccessLocalWrite, false)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if mr.Len != cls {
					t.Errorf("got class %d, want %d", mr.Len, cls)
					return
				}
				c.Put(mr, false)
			}
		}(g)
	}
	wg.Wait()
	if c.Idle() > capacity {
		t.Fatalf("idle %d exceeds capacity %d", c.Idle(), capacity)
	}
	h, m, _ := c.Stats()
	if h+m != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", h+m, 8*200)
	}
}
