package verbs

import (
	"sync"
	"time"
)

// UpcallCQ is the completion-queue implementation shared by all fabrics:
// completions are dispatched as upcalls serialized on the owning Loop.
// Fabric implementations decide the CPU cost of each dispatch (modeled
// fabrics charge completion-reap plus amortized interrupt costs,
// real-time fabrics charge zero).
type UpcallCQ struct {
	mu   sync.Mutex
	loop Loop
	fn   func(WC)
}

// NewUpcallCQ creates a CQ whose handler runs on loop.
func NewUpcallCQ(loop Loop) *UpcallCQ {
	return &UpcallCQ{loop: loop}
}

// SetHandler installs the completion upcall.
func (c *UpcallCQ) SetHandler(fn func(WC)) {
	c.mu.Lock()
	c.fn = fn
	c.mu.Unlock()
}

// Loop returns the loop completions are dispatched on.
func (c *UpcallCQ) Loop() Loop { return c.loop }

// cqTask carries one completion through Loop.Post without materializing
// a fresh closure per dispatch: the run field is bound once when the task
// is constructed and the task is recycled through a sync.Pool (fabrics
// dispatch from arbitrary goroutines, so the pool must be concurrent).
type cqTask struct {
	cq  *UpcallCQ
	wc  WC
	run func()
}

var cqTaskPool sync.Pool

func newCQTask() any {
	t := &cqTask{}
	t.run = t.exec
	return t
}

func init() { cqTaskPool.New = newCQTask }

func (t *cqTask) exec() {
	cq, wc := t.cq, t.wc
	t.cq = nil
	t.wc = WC{}
	cqTaskPool.Put(t)
	cq.mu.Lock()
	fn := cq.fn
	cq.mu.Unlock()
	if fn == nil {
		panic("verbs: completion delivered to CQ with no handler")
	}
	fn(wc)
}

// Dispatch delivers wc to the handler on the CQ's loop, charging cost.
// Completions that arrive before a handler is installed are dropped with
// a panic: that is always a wiring bug in a fabric or test.
func (c *UpcallCQ) Dispatch(cost time.Duration, wc WC) {
	t := cqTaskPool.Get().(*cqTask)
	t.cq = c
	t.wc = wc
	c.loop.Post(cost, t.run)
}
