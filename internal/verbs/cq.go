package verbs

import (
	"sync"
	"time"
)

// UpcallCQ is the completion-queue implementation shared by all fabrics:
// completions are dispatched as upcalls serialized on the owning Loop.
// Fabric implementations decide the CPU cost of each dispatch (modeled
// fabrics charge completion-reap plus amortized interrupt costs,
// real-time fabrics charge zero).
type UpcallCQ struct {
	mu   sync.Mutex
	loop Loop
	fn   func(WC)
}

// NewUpcallCQ creates a CQ whose handler runs on loop.
func NewUpcallCQ(loop Loop) *UpcallCQ {
	return &UpcallCQ{loop: loop}
}

// SetHandler installs the completion upcall.
func (c *UpcallCQ) SetHandler(fn func(WC)) {
	c.mu.Lock()
	c.fn = fn
	c.mu.Unlock()
}

// Loop returns the loop completions are dispatched on.
func (c *UpcallCQ) Loop() Loop { return c.loop }

// Dispatch delivers wc to the handler on the CQ's loop, charging cost.
// Completions that arrive before a handler is installed are dropped with
// a panic: that is always a wiring bug in a fabric or test.
func (c *UpcallCQ) Dispatch(cost time.Duration, wc WC) {
	c.loop.Post(cost, func() {
		c.mu.Lock()
		fn := c.fn
		c.mu.Unlock()
		if fn == nil {
			panic("verbs: completion delivered to CQ with no handler")
		}
		fn(wc)
	})
}
