package verbs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		OpSend:     "SEND",
		OpWrite:    "RDMA_WRITE",
		OpWriteImm: "RDMA_WRITE_WITH_IMM",
		OpRead:     "RDMA_READ",
		OpRecv:     "RECV",
		Opcode(99): "Opcode(99)",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusSuccess.String() != "success" {
		t.Error("StatusSuccess string wrong")
	}
	if StatusRNRRetryExceeded.String() != "RNR retry exceeded" {
		t.Error("RNR string wrong")
	}
	if Status(200).String() != "Status(200)" {
		t.Error("unknown status string wrong")
	}
}

func TestSendWRLength(t *testing.T) {
	wr := &SendWR{Op: OpWrite, Data: make([]byte, 32), ModelBytes: 1000}
	if wr.Length() != 1032 {
		t.Fatalf("Length = %d, want 1032", wr.Length())
	}
	rd := &SendWR{Op: OpRead, ReadLen: 4096}
	if rd.Length() != 4096 {
		t.Fatalf("read Length = %d, want 4096", rd.Length())
	}
}

func TestQPConfigNormalize(t *testing.T) {
	c := QPConfig{}.Normalize()
	if c.MaxSend != 256 || c.MaxRecv != 256 || c.MaxRDAtomic != 4 || c.RNRRetry != 7 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c2 := QPConfig{MaxSend: 8, MaxRecv: 4, MaxRDAtomic: 16, RNRRetry: -1}.Normalize()
	if c2.MaxSend != 8 || c2.MaxRecv != 4 || c2.MaxRDAtomic != 16 || c2.RNRRetry != -1 {
		t.Fatalf("explicit values clobbered: %+v", c2)
	}
}

func TestRegisterAndPlace(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{ID: 1}
	buf := make([]byte, 128)
	mr, err := as.Register(pd, buf, AccessLocalWrite|AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Shadow != 128 || mr.Len != 128 {
		t.Fatalf("real MR shadow/len = %d/%d", mr.Shadow, mr.Len)
	}
	data := []byte("hello rdma")
	if _, _, err := as.Place(mr.Remote(10), data, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[10:10+len(data)], data) {
		t.Fatalf("placed bytes wrong: %q", buf[10:10+len(data)])
	}
}

func TestRegisterNilBuffer(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Register(&PD{}, nil, AccessRemoteWrite); err == nil {
		t.Fatal("nil buffer registered")
	}
}

func TestPlaceValidation(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{ID: 1}
	mr, _ := as.Register(pd, make([]byte, 64), AccessRemoteWrite)
	rdonly, _ := as.Register(pd, make([]byte, 64), AccessRemoteRead)

	// Wrong rkey.
	if _, _, err := as.Place(RemoteAddr{Addr: mr.Addr, RKey: mr.RKey + 999}, []byte("x"), 0); err != ErrMRKey {
		t.Fatalf("wrong rkey: err = %v", err)
	}
	// Out of bounds.
	if _, _, err := as.Place(mr.Remote(60), []byte("too long"), 0); err != ErrMRBounds {
		t.Fatalf("bounds: err = %v", err)
	}
	// Address below region.
	if _, _, err := as.Place(RemoteAddr{Addr: mr.Addr - 1, RKey: mr.RKey}, []byte("x"), 0); err != ErrMRBounds {
		t.Fatalf("below region: err = %v", err)
	}
	// Access violation: write to read-only region.
	if _, _, err := as.Place(rdonly.Remote(0), []byte("x"), 0); err != ErrMRAccess {
		t.Fatalf("access: err = %v", err)
	}
	// Deregistered.
	as.Deregister(mr)
	if _, _, err := as.Place(mr.Remote(0), []byte("x"), 0); err != ErrMRKey && err != ErrMRInvalidated {
		t.Fatalf("deregistered: err = %v", err)
	}
}

func TestModelRegionShadow(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{ID: 1}
	// 1 MiB modeled region backed by 64 real bytes.
	mr, err := as.RegisterModel(pd, 1<<20, 64, AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Len != 1<<20 || mr.Shadow != 64 || len(mr.Buf) != 64 {
		t.Fatalf("model MR geometry wrong: %+v", mr)
	}
	// A write of a 32-byte header plus modeled bulk lands the header.
	hdr := bytes.Repeat([]byte{0xAB}, 32)
	if _, _, err := as.Place(mr.Remote(0), hdr, 1<<20-32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mr.Buf[:32], hdr) {
		t.Fatal("header not placed in shadow")
	}
	// Writing entirely beyond the shadow is accounted but placed nowhere.
	if _, _, err := as.Place(mr.Remote(128), []byte("deep"), 0); err != nil {
		t.Fatal(err)
	}
	// Writing past the modeled length fails.
	if _, _, err := as.Place(mr.Remote(1<<20-4), []byte("12345"), 0); err != ErrMRBounds {
		t.Fatalf("beyond model length: err = %v", err)
	}
}

func TestModelRegionBadGeometry(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	if _, err := as.RegisterModel(pd, 0, 0, 0); err == nil {
		t.Error("zero-length model region registered")
	}
	if _, err := as.RegisterModel(pd, 100, 200, 0); err == nil {
		t.Error("shadow > length registered")
	}
	if _, err := as.RegisterModel(pd, 100, -1, 0); err == nil {
		t.Error("negative shadow registered")
	}
}

func TestFetch(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	buf := []byte("0123456789abcdef")
	mr, _ := as.Register(pd, buf, AccessRemoteRead)
	_, view, err := as.Fetch(mr.Remote(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(view) != "4567" {
		t.Fatalf("fetched %q", view)
	}
	// Read access denied on a write-only region.
	wr, _ := as.Register(pd, make([]byte, 8), AccessRemoteWrite)
	if _, _, err := as.Fetch(wr.Remote(0), 4); err != ErrMRAccess {
		t.Fatalf("fetch access: err = %v", err)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	var prevEnd uint64
	for i := 0; i < 50; i++ {
		mr, err := as.Register(pd, make([]byte, 1000), AccessRemoteWrite)
		if err != nil {
			t.Fatal(err)
		}
		if mr.Addr < prevEnd {
			t.Fatalf("region %d overlaps previous (addr %#x < end %#x)", i, mr.Addr, prevEnd)
		}
		prevEnd = mr.Addr + uint64(mr.Len)
	}
}

func TestKeysUnique(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		mr, _ := as.Register(pd, make([]byte, 8), 0)
		if seen[mr.RKey] || seen[mr.LKey] || mr.RKey == mr.LKey {
			t.Fatalf("key collision at region %d", i)
		}
		seen[mr.RKey], seen[mr.LKey] = true, true
	}
}

// Property: any in-bounds write into a real region is recoverable by a
// fetch of the same window (Place/Fetch round trip).
func TestPlaceFetchRoundTripProperty(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	mr, _ := as.Register(pd, make([]byte, 4096), AccessRemoteWrite|AccessRemoteRead)
	f := func(off uint16, payload []byte) bool {
		o := int(off) % 4096
		if len(payload) > 4096-o {
			payload = payload[:4096-o]
		}
		if len(payload) == 0 {
			return true
		}
		if _, _, err := as.Place(mr.Remote(o), payload, 0); err != nil {
			return false
		}
		_, view, err := as.Fetch(mr.Remote(o), len(payload))
		return err == nil && bytes.Equal(view, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: out-of-bounds accesses are always rejected, never partially
// applied.
func TestBoundsRejectionProperty(t *testing.T) {
	as := NewAddressSpace()
	pd := &PD{}
	mr, _ := as.Register(pd, make([]byte, 256), AccessRemoteWrite)
	f := func(off uint32, n uint16) bool {
		o, ln := uint64(off), int(n)
		if ln == 0 {
			ln = 1
		}
		addr := mr.Addr + o
		_, _, err := as.Place(RemoteAddr{Addr: addr, RKey: mr.RKey}, make([]byte, ln), 0)
		inBounds := o <= 256 && uint64(ln) <= 256-o
		return (err == nil) == inBounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
