package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets (run with `go test -fuzz=FuzzDecodeControl ./internal/wire`;
// `go test` executes the seed corpus).

func FuzzDecodeControl(f *testing.F) {
	// Seeds: a valid message, a credit-bearing message, junk, and
	// boundary sizes.
	valid, _ := (&Control{Type: MsgBlockComplete, Session: 1, Seq: 2, Addr: 3, RKey: 4, Length: 5}).Encode(nil)
	f.Add(valid)
	withCredits, _ := (&Control{Type: MsgMRInfoResponse, Credits: []Credit{{Addr: 1, RKey: 2, Len: 3}}}).Encode(nil)
	f.Add(withCredits)
	// Max-size multi-credit grant: the largest message a coalesced
	// flush can produce (MaxCreditsPerMsg credits).
	maxed := &Control{Type: MsgMRInfoResponse}
	for i := 0; i < MaxCreditsPerMsg; i++ {
		maxed.Credits = append(maxed.Credits, Credit{Addr: uint64(i) << 12, RKey: uint32(i), Len: 4096})
	}
	maxSeed, _ := maxed.Encode(nil)
	f.Add(maxSeed)
	// Oversize forged count: valid header bytes but a credit count one
	// past the ceiling, with enough trailing bytes to look plausible.
	forged := append([]byte(nil), maxSeed...)
	forged[2], forged[3] = byte((MaxCreditsPerMsg+1)>>8), byte(MaxCreditsPerMsg+1)
	f.Add(append(forged, make([]byte, creditSize)...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, ControlHeaderSize))
	f.Add(bytes.Repeat([]byte{0x00}, ControlHeaderSize+16))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeControl(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to something that decodes to
		// the same value (canonicalization round trip).
		out, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v (%+v)", err, c)
		}
		c2, err := DecodeControl(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c.Type != c2.Type || c.Session != c2.Session || c.Seq != c2.Seq ||
			c.Addr != c2.Addr || c.RKey != c2.RKey || c.Length != c2.Length ||
			c.AssocData != c2.AssocData || len(c.Credits) != len(c2.Credits) {
			t.Fatalf("canonical round trip diverged:\n%+v\n%+v", c, c2)
		}
	})
}

func FuzzDecodeBlockHeader(f *testing.F) {
	buf := make([]byte, BlockHeaderSize)
	EncodeBlockHeader(buf, BlockHeader{Session: 1, Seq: 2, Offset: 3, PayloadLen: 4, Last: true})
	f.Add(buf)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, BlockHeaderSize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeBlockHeader(data)
		if err != nil {
			return
		}
		out := make([]byte, BlockHeaderSize)
		if err := EncodeBlockHeader(out, h); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h2, err := DecodeBlockHeader(out)
		if err != nil || h2 != h {
			t.Fatalf("canonical round trip diverged: %+v vs %+v (%v)", h, h2, err)
		}
	})
}
