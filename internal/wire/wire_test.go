package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestControlRoundTrip(t *testing.T) {
	in := &Control{
		Type:      MsgMRInfoResponse,
		Flags:     FlagAccept,
		Session:   0xDEADBEEF,
		Seq:       42,
		Addr:      0x123456789ABCDEF0,
		RKey:      0xCAFEBABE,
		Length:    1 << 20,
		AssocData: 900 << 30, // 900 GB fits
		Credits: []Credit{
			{Addr: 0x1000, RKey: 1, Len: 4096},
			{Addr: 0x2000, RKey: 2, Len: 8192},
		},
	}
	b, err := in.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != in.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(b), in.EncodedLen())
	}
	out, err := DecodeControl(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestControlNoCredits(t *testing.T) {
	in := &Control{Type: MsgBlockComplete, Session: 7, Seq: 9, Addr: 100, RKey: 5, Length: 64}
	b, _ := in.Encode(nil)
	if len(b) != ControlHeaderSize {
		t.Fatalf("len = %d, want %d", len(b), ControlHeaderSize)
	}
	out, err := DecodeControl(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgBlockComplete || out.Seq != 9 || len(out.Credits) != 0 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestControlTruncated(t *testing.T) {
	in := &Control{Type: MsgMRInfoResponse, Credits: []Credit{{Addr: 1, RKey: 2, Len: 3}}}
	b, _ := in.Encode(nil)
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeControl(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestControlMaxCredits exercises the exact batch ceiling: a grant
// message carrying MaxCreditsPerMsg distinct credits must encode to
// the documented size and round-trip losslessly. This is the largest
// message the credit coalescer is allowed to emit in one flush.
func TestControlMaxCredits(t *testing.T) {
	in := &Control{Type: MsgMRInfoResponse, Session: 3, Seq: 11}
	for i := 0; i < MaxCreditsPerMsg; i++ {
		in.Credits = append(in.Credits, Credit{
			Addr: 0x10000 + uint64(i)*4096,
			RKey: uint32(i + 1),
			Len:  uint32(4096 + i),
		})
	}
	b, err := in.Encode(nil)
	if err != nil {
		t.Fatalf("encode at batch ceiling: %v", err)
	}
	if want := ControlHeaderSize + MaxCreditsPerMsg*creditSize; len(b) != want {
		t.Fatalf("encoded %d bytes, want %d", len(b), want)
	}
	out, err := DecodeControl(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("max-size round trip mismatch (got %d credits)", len(out.Credits))
	}
}

// TestControlZeroCreditResponse pins down the zero-credit grant edge:
// an MR_INFO_RESPONSE with no credits is legal on the wire (the sink
// may answer an explicit request with a header-only message when its
// pool is dry) and must not be confused with a malformed count.
func TestControlZeroCreditResponse(t *testing.T) {
	in := &Control{Type: MsgMRInfoResponse, Session: 5, Seq: 1}
	b, err := in.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != ControlHeaderSize {
		t.Fatalf("zero-credit response encoded %d bytes, want header-only %d", len(b), ControlHeaderSize)
	}
	out, err := DecodeControl(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Credits) != 0 || out.Type != MsgMRInfoResponse {
		t.Fatalf("decoded %+v", out)
	}
}

func TestControlTooManyCredits(t *testing.T) {
	in := &Control{Type: MsgMRInfoResponse, Credits: make([]Credit, MaxCreditsPerMsg+1)}
	if _, err := in.Encode(nil); err != ErrBadCount {
		t.Fatalf("encode overflow: %v", err)
	}
	// Forged count on the wire.
	ok := &Control{Type: MsgMRInfoResponse}
	b, _ := ok.Encode(nil)
	b[2], b[3] = 0xFF, 0xFF
	if _, err := DecodeControl(b); err != ErrBadCount {
		t.Fatalf("decode forged count: %v", err)
	}
}

func TestControlEncodeAppends(t *testing.T) {
	prefix := []byte("prefix")
	in := &Control{Type: MsgAbort}
	b, _ := in.Encode(prefix)
	if string(b[:6]) != "prefix" || len(b) != 6+ControlHeaderSize {
		t.Fatalf("append semantics broken: len=%d", len(b))
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for ty := MsgBlockSizeReq; ty <= MsgAbort; ty++ {
		if s := ty.String(); s == "" || s[0] == 'M' && s[1] == 's' {
			t.Fatalf("MsgType(%d) has no name: %q", ty, s)
		}
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal("unknown type string")
	}
}

func TestBlockHeaderRoundTrip(t *testing.T) {
	in := BlockHeader{Session: 3, Seq: 77, Offset: 9 << 33, PayloadLen: 1 << 22, Last: true}
	buf := make([]byte, BlockHeaderSize)
	if err := EncodeBlockHeader(buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBlockHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: in=%+v out=%+v", in, out)
	}
}

func TestBlockHeaderShortBuffers(t *testing.T) {
	if err := EncodeBlockHeader(make([]byte, BlockHeaderSize-1), BlockHeader{}); err != ErrShortMessage {
		t.Fatalf("encode short: %v", err)
	}
	if _, err := DecodeBlockHeader(make([]byte, BlockHeaderSize-1)); err != ErrShortMessage {
		t.Fatalf("decode short: %v", err)
	}
}

func TestBlockHeaderReservedZeroed(t *testing.T) {
	buf := make([]byte, BlockHeaderSize)
	for i := range buf {
		buf[i] = 0xFF
	}
	EncodeBlockHeader(buf, BlockHeader{Session: 1})
	for i := 21; i < BlockHeaderSize; i++ {
		if buf[i] != 0 {
			t.Fatalf("reserved byte %d not zeroed", i)
		}
	}
}

// Property: Control encode/decode is a bijection on valid messages.
func TestControlRoundTripProperty(t *testing.T) {
	f := func(ty uint8, flags uint8, sess, seq, rkey, length uint32, addr, assoc uint64, nCred uint8) bool {
		in := &Control{
			Type: MsgType(ty), Flags: flags, Session: sess, Seq: seq,
			Addr: addr, RKey: rkey, Length: length, AssocData: assoc,
		}
		for i := 0; i < int(nCred)%MaxCreditsPerMsg; i++ {
			in.Credits = append(in.Credits, Credit{
				Addr: addr ^ uint64(i), RKey: rkey + uint32(i), Len: length ^ uint32(i),
			})
		}
		b, err := in.Encode(nil)
		if err != nil {
			return false
		}
		out, err := DecodeControl(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: BlockHeader encode/decode is a bijection.
func TestBlockHeaderRoundTripProperty(t *testing.T) {
	f := func(sess, seq, plen uint32, off uint64, last bool) bool {
		in := BlockHeader{Session: sess, Seq: seq, Offset: off, PayloadLen: plen, Last: last}
		buf := make([]byte, BlockHeaderSize)
		if err := EncodeBlockHeader(buf, in); err != nil {
			return false
		}
		out, err := DecodeBlockHeader(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		DecodeControl(b)
		DecodeBlockHeader(b)
	}
}

func BenchmarkControlEncode(b *testing.B) {
	c := &Control{Type: MsgMRInfoResponse, Credits: make([]Credit, 2)}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		c.Encode(buf)
	}
}

func BenchmarkControlDecode(b *testing.B) {
	c := &Control{Type: MsgMRInfoResponse, Credits: make([]Credit, 2)}
	buf, _ := c.Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DecodeControl(buf)
	}
}
