// Package wire defines the protocol message formats from the paper's
// Figure 7: the control message exchanged on the dedicated control queue
// pair (7a) and the header prepended to every user-payload bulk data
// block delivered over the data channel queue pairs (7b).
//
// All integers are big-endian (network order).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType enumerates control message types. The first group implements
// phase 1 (initialization and parameter negotiation), the second group
// phase 2 (data transfer), and the last group phase 3 (teardown).
type MsgType uint8

// Control message types.
const (
	// Negotiation (phase 1).
	MsgBlockSizeReq  MsgType = iota + 1 // propose block size (AssocData = bytes)
	MsgBlockSizeResp                    // accept/reject (Flags&FlagAccept)
	MsgChannelsReq                      // propose number of data channel QPs
	MsgChannelsResp
	MsgSessionReq  // open a session (AssocData = total bytes, Length = block size)
	MsgSessionResp // sink acks with the session id it allocated

	// Data transfer (phase 2).
	MsgMRInfoRequest  // source out of credits; sink MUST respond when one frees
	MsgMRInfoResponse // credits: one or more (Addr, RKey) pairs
	MsgBlockComplete  // a block finished; Addr/RKey name the consumed region

	// Teardown (phase 3).
	MsgDatasetComplete    // whole dataset delivered
	MsgDatasetCompleteAck // sink confirms
	MsgAbort              // fatal error; Session is torn down

	// Pull mode (phase 2, RDMA-READ data path). The advertisement is the
	// mirror image of the MR_INFO credit grant: instead of the sink
	// exposing landing regions for source WRITEs, the source exposes
	// loaded blocks for sink READs.
	MsgBlockAdvert   // source advertises a loaded block (Seq, Addr/RKey, Length = payload, AssocData = offset)
	MsgReadDone      // sink finished READing the advertised block; source may recycle it
	MsgModeSwitchReq // source requests push<->pull switch (AssocData = cumulative blocks sent)
	MsgModeSwitchAck // sink confirms the switch (AssocData = cumulative blocks arrived)
)

func (t MsgType) String() string {
	switch t {
	case MsgBlockSizeReq:
		return "BLOCK_SIZE_REQ"
	case MsgBlockSizeResp:
		return "BLOCK_SIZE_RESP"
	case MsgChannelsReq:
		return "CHANNELS_REQ"
	case MsgChannelsResp:
		return "CHANNELS_RESP"
	case MsgSessionReq:
		return "SESSION_REQ"
	case MsgSessionResp:
		return "SESSION_RESP"
	case MsgMRInfoRequest:
		return "MR_INFO_REQUEST"
	case MsgMRInfoResponse:
		return "MR_INFO_RESPONSE"
	case MsgBlockComplete:
		return "BLOCK_COMPLETE"
	case MsgDatasetComplete:
		return "DATASET_COMPLETE"
	case MsgDatasetCompleteAck:
		return "DATASET_COMPLETE_ACK"
	case MsgAbort:
		return "ABORT"
	case MsgBlockAdvert:
		return "BLOCK_ADVERT"
	case MsgReadDone:
		return "READ_DONE"
	case MsgModeSwitchReq:
		return "MODE_SWITCH_REQ"
	case MsgModeSwitchAck:
		return "MODE_SWITCH_ACK"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Control message flags.
const (
	// FlagAccept marks a negotiation response as accepted.
	FlagAccept uint8 = 1 << iota
	// FlagImmNotify, on MsgBlockSizeReq/Resp, selects RDMA WRITE WITH
	// IMMEDIATE completion notification instead of explicit
	// BLOCK_COMPLETE control messages.
	FlagImmNotify
	// FlagBusy, on MsgSessionResp without FlagAccept, distinguishes the
	// sink's admission control turning a session away at capacity
	// (SESSION_BUSY — retry later) from a hard negotiation rejection.
	FlagBusy
	// FlagModePull selects the pull (RDMA READ) data path: on
	// MsgSessionReq it opens the session directly in pull mode, on
	// MsgModeSwitchReq/Ack it names the target mode (absent = push).
	FlagModePull
	// FlagLastBlock, on MsgBlockAdvert, marks the advertisement of the
	// session's final block.
	FlagLastBlock
)

// Credit advertises one available remote memory region (a token with a
// destination address, in the paper's terms).
type Credit struct {
	Addr uint64
	RKey uint32
	Len  uint32
}

const creditSize = 16

// ControlHeaderSize is the fixed control message header length.
const ControlHeaderSize = 40

// MaxCreditsPerMsg bounds the credits one MR_INFO_RESPONSE can carry.
const MaxCreditsPerMsg = 64

// Control is a control message (Figure 7a): a fixed header plus, for
// MR_INFO_RESPONSE, a list of credits.
type Control struct {
	Type    MsgType
	Flags   uint8
	Session uint32
	// Seq is the block sequence number for MsgBlockComplete.
	Seq uint32
	// Addr/RKey name a memory region (completed block for
	// MsgBlockComplete).
	Addr uint64
	RKey uint32
	// Length is the payload length of the referenced block.
	Length uint32
	// AssocData is the "Type Associated Data" field used during
	// negotiation (proposed block size, channel count, dataset size).
	AssocData uint64
	// Credits ride only on MsgMRInfoResponse.
	Credits []Credit
}

// Errors returned by decoding.
var (
	ErrShortMessage = errors.New("wire: message truncated")
	ErrBadCount     = errors.New("wire: credit count out of range")
)

// EncodedLen returns the encoded size of the message.
func (c *Control) EncodedLen() int { return ControlHeaderSize + len(c.Credits)*creditSize }

// Encode appends the encoded message to dst and returns the result.
func (c *Control) Encode(dst []byte) ([]byte, error) {
	if len(c.Credits) > MaxCreditsPerMsg {
		return nil, ErrBadCount
	}
	var h [ControlHeaderSize]byte
	h[0] = byte(c.Type)
	h[1] = c.Flags
	binary.BigEndian.PutUint16(h[2:4], uint16(len(c.Credits)))
	binary.BigEndian.PutUint32(h[4:8], c.Session)
	binary.BigEndian.PutUint32(h[8:12], c.Seq)
	binary.BigEndian.PutUint64(h[12:20], c.Addr)
	binary.BigEndian.PutUint32(h[20:24], c.RKey)
	binary.BigEndian.PutUint32(h[24:28], c.Length)
	binary.BigEndian.PutUint64(h[28:36], c.AssocData)
	// h[36:40] reserved
	dst = append(dst, h[:]...)
	for _, cr := range c.Credits {
		var e [creditSize]byte
		binary.BigEndian.PutUint64(e[0:8], cr.Addr)
		binary.BigEndian.PutUint32(e[8:12], cr.RKey)
		binary.BigEndian.PutUint32(e[12:16], cr.Len)
		dst = append(dst, e[:]...)
	}
	return dst, nil
}

// DecodeControl parses a control message.
func DecodeControl(b []byte) (*Control, error) {
	if len(b) < ControlHeaderSize {
		return nil, ErrShortMessage
	}
	c := &Control{
		Type:      MsgType(b[0]),
		Flags:     b[1],
		Session:   binary.BigEndian.Uint32(b[4:8]),
		Seq:       binary.BigEndian.Uint32(b[8:12]),
		Addr:      binary.BigEndian.Uint64(b[12:20]),
		RKey:      binary.BigEndian.Uint32(b[20:24]),
		Length:    binary.BigEndian.Uint32(b[24:28]),
		AssocData: binary.BigEndian.Uint64(b[28:36]),
	}
	n := int(binary.BigEndian.Uint16(b[2:4]))
	if n > MaxCreditsPerMsg {
		return nil, ErrBadCount
	}
	if len(b) < ControlHeaderSize+n*creditSize {
		return nil, ErrShortMessage
	}
	for i := 0; i < n; i++ {
		off := ControlHeaderSize + i*creditSize
		c.Credits = append(c.Credits, Credit{
			Addr: binary.BigEndian.Uint64(b[off : off+8]),
			RKey: binary.BigEndian.Uint32(b[off+8 : off+12]),
			Len:  binary.BigEndian.Uint32(b[off+12 : off+16]),
		})
	}
	return c, nil
}

// BlockHeaderSize is the user-payload block header length (Figure 7b:
// session id, sequence number, offset, payload length, reserved).
const BlockHeaderSize = 32

// BlockHeader prefixes every user-payload data block (Figure 7b). The
// sink uses (Session, Seq) to reassemble out-of-order arrivals from
// parallel queue pairs into an in-order stream.
type BlockHeader struct {
	Session uint32
	Seq     uint32
	// Offset is the byte offset of this block within the dataset.
	Offset uint64
	// PayloadLen is the user payload length in this block (may be short
	// for the final block).
	PayloadLen uint32
	// Last marks the final block of the session.
	Last bool
}

// EncodeBlockHeader writes the header into dst (at least BlockHeaderSize
// bytes).
func EncodeBlockHeader(dst []byte, h BlockHeader) error {
	if len(dst) < BlockHeaderSize {
		return ErrShortMessage
	}
	binary.BigEndian.PutUint32(dst[0:4], h.Session)
	binary.BigEndian.PutUint32(dst[4:8], h.Seq)
	binary.BigEndian.PutUint64(dst[8:16], h.Offset)
	binary.BigEndian.PutUint32(dst[16:20], h.PayloadLen)
	var flags uint8
	if h.Last {
		flags = 1
	}
	dst[20] = flags
	for i := 21; i < BlockHeaderSize; i++ {
		dst[i] = 0 // reserved
	}
	return nil
}

// DecodeBlockHeader parses a block header.
func DecodeBlockHeader(b []byte) (BlockHeader, error) {
	if len(b) < BlockHeaderSize {
		return BlockHeader{}, ErrShortMessage
	}
	return BlockHeader{
		Session:    binary.BigEndian.Uint32(b[0:4]),
		Seq:        binary.BigEndian.Uint32(b[4:8]),
		Offset:     binary.BigEndian.Uint64(b[8:16]),
		PayloadLen: binary.BigEndian.Uint32(b[16:20]),
		Last:       b[20]&1 != 0,
	}, nil
}
