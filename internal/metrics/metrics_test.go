package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateSamplerConstantRate(t *testing.T) {
	r := NewRateSampler(time.Second)
	// 100 bytes/second for 5 seconds, observed every 250ms.
	for i := 0; i <= 20; i++ {
		ts := time.Duration(i) * 250 * time.Millisecond
		r.Observe(ts, 100*ts.Seconds())
	}
	s := r.Series()
	if len(s.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(s.Points))
	}
	for _, p := range s.Points {
		if math.Abs(p.V-100) > 1e-9 {
			t.Fatalf("rate at %v = %v, want 100", p.T, p.V)
		}
	}
}

func TestRateSamplerSparseObservations(t *testing.T) {
	r := NewRateSampler(time.Second)
	r.Observe(0, 0)
	// One observation after 4 intervals: interpolation fills them.
	r.Observe(4*time.Second, 400)
	s := r.Series()
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
	for _, p := range s.Points {
		if math.Abs(p.V-100) > 1e-9 {
			t.Fatalf("interpolated rate = %v", p.V)
		}
	}
}

func TestRateSamplerRamp(t *testing.T) {
	r := NewRateSampler(time.Second)
	// Quadratic counter: rate must increase interval over interval.
	for i := 0; i <= 10; i++ {
		ts := time.Duration(i) * time.Second
		r.Observe(ts, float64(i*i))
	}
	pts := r.Series().Points
	for i := 1; i < len(pts); i++ {
		if pts[i].V <= pts[i-1].V {
			t.Fatalf("ramp not increasing at %d: %v <= %v", i, pts[i].V, pts[i-1].V)
		}
	}
}

func TestRateSamplerFlushPartial(t *testing.T) {
	r := NewRateSampler(time.Second)
	r.Observe(0, 0)
	r.Observe(1500*time.Millisecond, 300)
	r.Flush()
	pts := r.Series().Points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (one full + one partial)", len(pts))
	}
	// Partial interval: 100 bytes over 0.5s = 200/s.
	if math.Abs(pts[1].V-200) > 1e-6 {
		t.Fatalf("partial rate = %v, want 200", pts[1].V)
	}
	// Double flush adds nothing.
	r.Flush()
	if len(r.Series().Points) != 2 {
		t.Fatal("flush not idempotent")
	}
}

func TestRateSamplerBackwardsTimePanics(t *testing.T) {
	r := NewRateSampler(time.Second)
	r.Observe(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	r.Observe(0, 2)
}

func TestBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewRateSampler(0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Fatalf("P95 = %v", s.P95)
	}
	if s.StdDev <= 0 || s.CoefficientOfVar <= 0 {
		t.Fatalf("dispersion: %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.Min != 7 {
		t.Fatalf("single-sample summary: %+v", one)
	}
}

// Property: total bytes are conserved — sum(rate_i * dt_i) equals the
// final counter value, for any observation pattern.
func TestRateConservationProperty(t *testing.T) {
	f := func(deltas []uint16) bool {
		r := NewRateSampler(100 * time.Millisecond)
		var ts time.Duration
		var v float64
		r.Observe(0, 0)
		for _, d := range deltas {
			ts += time.Duration(d%500+1) * time.Millisecond
			v += float64(d)
			r.Observe(ts, v)
		}
		r.Flush()
		var sum float64
		prev := time.Duration(0)
		for _, p := range r.Series().Points {
			sum += p.V * (p.T - prev).Seconds()
			prev = p.T
		}
		return math.Abs(sum-v) < 1e-6*math.Max(1, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: summary order statistics are consistent.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v) / 1000
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
