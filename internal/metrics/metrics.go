// Package metrics provides small measurement helpers for the experiment
// harness: fixed-interval rate sampling of cumulative counters (to plot
// bandwidth over time, ramps, and fluctuation) and summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a fixed-interval time series.
type Series struct {
	Interval time.Duration
	Points   []Point
}

// Values returns just the sample values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// RateSampler converts observations of a cumulative counter into a
// per-interval rate series: feed it (now, cumulativeValue) pairs at
// least once per interval and read the finished intervals out of
// Series. Partial trailing intervals are emitted by Flush.
type RateSampler struct {
	interval time.Duration
	started  bool
	epoch    time.Duration // start of the current interval
	base     float64       // counter value at epoch
	lastT    time.Duration
	lastV    float64
	series   Series
}

// NewRateSampler creates a sampler with the given interval.
func NewRateSampler(interval time.Duration) *RateSampler {
	if interval <= 0 {
		panic("metrics: interval must be positive")
	}
	return &RateSampler{interval: interval, series: Series{Interval: interval}}
}

// Observe records the cumulative counter value at time t. Observations
// must be monotone in t; the counter may only grow. Each completed
// interval appends one point whose V is the counter delta per second of
// that interval (linear interpolation at interval boundaries).
func (r *RateSampler) Observe(t time.Duration, v float64) {
	if !r.started {
		r.started = true
		r.epoch, r.base = t, v
		r.lastT, r.lastV = t, v
		return
	}
	if t < r.lastT {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", t, r.lastT))
	}
	for t >= r.epoch+r.interval {
		boundary := r.epoch + r.interval
		// Interpolate the counter at the boundary.
		var vb float64
		if t == r.lastT {
			vb = v
		} else {
			frac := float64(boundary-r.lastT) / float64(t-r.lastT)
			vb = r.lastV + (v-r.lastV)*frac
		}
		rate := (vb - r.base) / r.interval.Seconds()
		r.series.Points = append(r.series.Points, Point{T: boundary, V: rate})
		r.epoch, r.base = boundary, vb
	}
	r.lastT, r.lastV = t, v
}

// Flush emits the partial final interval (if any data accumulated).
func (r *RateSampler) Flush() {
	if !r.started || r.lastT <= r.epoch {
		return
	}
	dur := (r.lastT - r.epoch).Seconds()
	if dur <= 0 {
		return
	}
	rate := (r.lastV - r.base) / dur
	r.series.Points = append(r.series.Points, Point{T: r.lastT, V: rate})
	r.epoch, r.base = r.lastT, r.lastV
}

// Series returns the completed intervals so far.
func (r *RateSampler) Series() Series { return r.series }

// Summary holds order statistics of a sample set.
type Summary struct {
	N                int
	Min, Max, Mean   float64
	P50, P95         float64
	StdDev           float64
	CoefficientOfVar float64
}

// Summarize computes summary statistics (zero Summary for empty input).
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(sorted)))
	cv := 0.0
	if mean != 0 {
		cv = sd / mean
	}
	return Summary{
		N:                len(sorted),
		Min:              sorted[0],
		Max:              sorted[len(sorted)-1],
		Mean:             mean,
		P50:              percentile(sorted, 0.50),
		P95:              percentile(sorted, 0.95),
		StdDev:           sd,
		CoefficientOfVar: cv,
	}
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
