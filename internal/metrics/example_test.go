package metrics_test

import (
	"fmt"
	"time"

	"rftp/internal/metrics"
)

// RateSampler turns a cumulative byte counter into a bandwidth series.
func ExampleRateSampler() {
	r := metrics.NewRateSampler(time.Second)
	// A transfer that accelerates: 100 B/s, then 300 B/s.
	r.Observe(0, 0)
	r.Observe(1*time.Second, 100)
	r.Observe(2*time.Second, 400)
	for _, p := range r.Series().Points {
		fmt.Printf("%v: %.0f B/s\n", p.T, p.V)
	}
	// Output:
	// 1s: 100 B/s
	// 2s: 300 B/s
}

func ExampleSummarize() {
	s := metrics.Summarize([]float64{9.9, 9.7, 9.8, 8.4, 9.9})
	fmt.Printf("mean=%.2f min=%.1f max=%.1f\n", s.Mean, s.Min, s.Max)
	// Output:
	// mean=9.54 min=8.4 max=9.9
}
