package sim_test

import (
	"fmt"
	"time"

	"rftp/internal/sim"
)

// A Scheduler runs closures at virtual times: the whole experiment is
// deterministic and independent of wall-clock speed.
func ExampleScheduler() {
	s := sim.New(1)
	s.After(2*time.Millisecond, func() { fmt.Println("second at", s.Now()) })
	s.After(1*time.Millisecond, func() {
		fmt.Println("first at", s.Now())
		s.After(5*time.Millisecond, func() { fmt.Println("chained at", s.Now()) })
	})
	s.RunAll()
	// Output:
	// first at 1ms
	// second at 2ms
	// chained at 6ms
}

func ExampleScheduler_horizon() {
	s := sim.New(1)
	s.After(time.Second, func() { fmt.Println("fires") })
	s.After(time.Hour, func() { fmt.Println("never reached") })
	end := s.Run(2 * time.Second)
	fmt.Println("stopped at", end)
	// Output:
	// fires
	// stopped at 2s
}
