// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant execute in scheduling order
// (FIFO tie-breaking by sequence number), which makes runs fully
// deterministic for a given seed and schedule.
//
// All simulated subsystems (links, NICs, host threads, TCP endpoints)
// share one Scheduler. Virtual time is expressed as time.Duration since
// the start of the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events are managed by the Scheduler and
// should be created through Scheduler.At / Scheduler.After.
type Event struct {
	when   time.Duration
	seq    uint64
	fn     func()
	argFn  func(any) // closure-free alternative to fn; receives arg
	arg    any
	index  int // heap index; -1 when not queued
	dead   bool
	pooled bool   // recycled onto the scheduler freelist after firing
	labels string // optional debug label
}

// When returns the virtual time the event will fire at.
func (e *Event) When() time.Duration { return e.when }

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is the discrete-event simulation core. It is not safe for
// concurrent use: all simulated work runs on the single goroutine that
// calls Run.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	running bool
	stopped bool
	fired   uint64
	free    []*Event // recycled pooled events (Post/PostArg)
}

// New returns a Scheduler whose random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// canceled events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a model bug.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// take returns a recycled pooled event (or a fresh one) with the timing
// fields set. Pooled events hand out no handle, so they can never be
// canceled and are safe to recycle the moment they fire.
func (s *Scheduler) take(t time.Duration) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.when = t
	e.seq = s.seq
	e.index = -1
	e.pooled = true
	return e
}

// put resets a fired pooled event and returns it to the freelist.
func (s *Scheduler) put(e *Event) {
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.dead = false
	e.pooled = false
	e.labels = ""
	s.free = append(s.free, e)
}

// Post schedules fn at absolute virtual time t on a pooled event. Unlike
// At it returns no handle (the event cannot be canceled); hot paths use
// it to avoid a per-event allocation.
func (s *Scheduler) Post(t time.Duration, fn func()) {
	e := s.take(t)
	e.fn = fn
	heap.Push(&s.queue, e)
}

// PostArg schedules fn(arg) at absolute virtual time t on a pooled
// event. Passing a package-level func and a pointer-typed arg makes the
// post allocation-free: no closure is materialized and the pooled event
// is recycled after firing.
func (s *Scheduler) PostArg(t time.Duration, fn func(any), arg any) {
	e := s.take(t)
	e.argFn = fn
	e.arg = arg
	heap.Push(&s.queue, e)
}

// PostArgAfter schedules fn(arg) d from now (negative d runs now) on a
// pooled event.
func (s *Scheduler) PostArgAfter(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.PostArg(s.now+d, fn, arg)
}

// call invokes a popped event's callback, recycling pooled events first
// so the callback itself can immediately reuse them.
func (s *Scheduler) call(e *Event) {
	if e.argFn != nil {
		fn, arg := e.argFn, e.arg
		if e.pooled {
			s.put(e)
		}
		fn(arg)
		return
	}
	fn := e.fn
	if e.pooled {
		s.put(e)
	}
	fn()
}

// Stop halts a Run in progress after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue empties, until the clock
// would pass horizon (events at exactly horizon still run), or until Stop
// is called. It returns the virtual time at exit.
func (s *Scheduler) Run(horizon time.Duration) time.Duration {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			if e.pooled {
				s.put(e)
			}
			continue
		}
		if e.when > horizon {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.queue)
		s.now = e.when
		s.fired++
		s.call(e)
	}
	if s.now < horizon && len(s.queue) == 0 {
		// Nothing left to do; advance to horizon so rate computations
		// against Now() see the full window.
		s.now = horizon
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Scheduler) RunAll() time.Duration {
	if s.running {
		panic("sim: RunAll called reentrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			if e.pooled {
				s.put(e)
			}
			continue
		}
		s.now = e.when
		s.fired++
		s.call(e)
	}
	return s.now
}
