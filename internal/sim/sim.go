// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant execute in scheduling order
// (FIFO tie-breaking by sequence number), which makes runs fully
// deterministic for a given seed and schedule.
//
// All simulated subsystems (links, NICs, host threads, TCP endpoints)
// share one Scheduler. Virtual time is expressed as time.Duration since
// the start of the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events are managed by the Scheduler and
// should be created through Scheduler.At / Scheduler.After.
type Event struct {
	when   time.Duration
	seq    uint64
	fn     func()
	index  int // heap index; -1 when not queued
	dead   bool
	labels string // optional debug label
}

// When returns the virtual time the event will fire at.
func (e *Event) When() time.Duration { return e.when }

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is the discrete-event simulation core. It is not safe for
// concurrent use: all simulated work runs on the single goroutine that
// calls Run.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	running bool
	stopped bool
	fired   uint64
}

// New returns a Scheduler whose random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// canceled events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a model bug.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts a Run in progress after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue empties, until the clock
// would pass horizon (events at exactly horizon still run), or until Stop
// is called. It returns the virtual time at exit.
func (s *Scheduler) Run(horizon time.Duration) time.Duration {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			continue
		}
		if e.when > horizon {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.queue)
		s.now = e.when
		s.fired++
		e.fn()
	}
	if s.now < horizon && len(s.queue) == 0 {
		// Nothing left to do; advance to horizon so rate computations
		// against Now() see the full window.
		s.now = horizon
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Scheduler) RunAll() time.Duration {
	if s.running {
		panic("sim: RunAll called reentrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
	}
	return s.now
}
