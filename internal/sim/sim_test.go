package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestHorizonStopsAndAdvances(t *testing.T) {
	s := New(1)
	fired := false
	s.After(2*time.Second, func() { fired = true })
	end := s.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != time.Second {
		t.Fatalf("Run returned %v, want 1s", end)
	}
	// Event at exactly the horizon fires.
	s2 := New(1)
	hit := false
	s2.After(time.Second, func() { hit = true })
	s2.Run(time.Second)
	if !hit {
		t.Fatal("event at horizon did not fire")
	}
}

func TestRunEmptyQueueAdvancesToHorizon(t *testing.T) {
	s := New(1)
	if got := s.Run(5 * time.Second); got != 5*time.Second {
		t.Fatalf("empty run ended at %v", got)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	s.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestStopDuringRun(t *testing.T) {
	s := New(1)
	n := 0
	for i := 0; i < 10; i++ {
		d := time.Duration(i) * time.Millisecond
		s.After(d, func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if n != 3 {
		t.Fatalf("Stop did not halt run: executed %d events", n)
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	s := New(1)
	var trace []time.Duration
	var ping func()
	count := 0
	ping = func() {
		trace = append(trace, s.Now())
		count++
		if count < 5 {
			s.After(time.Millisecond, ping)
		}
	}
	s.After(0, ping)
	s.RunAll()
	if len(trace) != 5 {
		t.Fatalf("chain executed %d times, want 5", len(trace))
	}
	for i, ts := range trace {
		if want := time.Duration(i) * time.Millisecond; ts != want {
			t.Fatalf("step %d at %v, want %v", i, ts, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.RunAll()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.After(time.Second, func() {
		s.After(-time.Minute, func() { fired = true })
	})
	s.RunAll()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i), func() {})
	}
	s.RunAll()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		s := New(42)
		var out []time.Duration
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			s.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() {
				out = append(out, s.Now())
			})
		}
		s.RunAll()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(1)
		var fired []time.Duration
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// The set of firing times must equal the set of requested delays.
		want := make([]time.Duration, len(delays))
		for i, d := range delays {
			want[i] = time.Duration(d) * time.Microsecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduler(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Nanosecond, func() {})
		if s.Pending() > 10000 {
			s.RunAll()
		}
	}
	s.RunAll()
}
