package ioengine

import (
	"testing"
	"time"

	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/verbs"
)

func roceLAN() simfabric.LinkConfig {
	return simfabric.LinkConfig{RateBps: 40e9, PropDelay: 12500 * time.Nanosecond, MTU: 9000, HeaderBytes: 58}
}

func roceNIC() simfabric.NICProfile {
	p := simfabric.DefaultNICProfile()
	p.HostCostFactor = 1.3 // RoCE verbs overhead (paper Section V.C.2)
	return p
}

func runOne(t *testing.T, p Params) Result {
	t.Helper()
	env := NewEnv(1, roceLAN(), roceNIC(), roceNIC(), hostmodel.DefaultParams())
	res, err := Run(env, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteSaturatesAtLargeBlocksHighDepth(t *testing.T) {
	res := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 1 << 20, Depth: 64, Duration: 200 * time.Millisecond})
	if res.BandwidthGbps < 34 || res.BandwidthGbps > 40 {
		t.Fatalf("WRITE 1M/64 = %.1f Gbps, want near line rate", res.BandwidthGbps)
	}
}

func TestLowDepthIsLatencyBound(t *testing.T) {
	res := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 1, Duration: 100 * time.Millisecond})
	// depth 1: one 64K block per (serialization + RTT + overheads).
	if res.BandwidthGbps > 25 {
		t.Fatalf("depth-1 bandwidth %.1f Gbps is implausibly high", res.BandwidthGbps)
	}
	deep := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 64, Duration: 100 * time.Millisecond})
	if deep.BandwidthGbps <= res.BandwidthGbps*1.5 {
		t.Fatalf("depth 64 (%.1f) not clearly above depth 1 (%.1f)", deep.BandwidthGbps, res.BandwidthGbps)
	}
}

func TestBandwidthSaturatesWithBlockSize(t *testing.T) {
	// Paper: best bandwidth from 16-128KB on, flat above 128KB.
	small := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 4 << 10, Depth: 64, Duration: 50 * time.Millisecond})
	mid := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 128 << 10, Depth: 64, Duration: 100 * time.Millisecond})
	big := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 1 << 20, Depth: 64, Duration: 100 * time.Millisecond})
	if small.BandwidthGbps >= mid.BandwidthGbps {
		t.Fatalf("4K (%.1f) not below 128K (%.1f)", small.BandwidthGbps, mid.BandwidthGbps)
	}
	if big.BandwidthGbps < mid.BandwidthGbps*0.95 || big.BandwidthGbps > mid.BandwidthGbps*1.15 {
		t.Fatalf("no saturation: 128K=%.1f, 1M=%.1f", mid.BandwidthGbps, big.BandwidthGbps)
	}
}

func TestReadSlowerThanWriteAtHighDepth(t *testing.T) {
	wr := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 64, Duration: 100 * time.Millisecond})
	rd := runOne(t, Params{Op: verbs.OpRead, BlockSize: 64 << 10, Depth: 64, Duration: 100 * time.Millisecond, MaxRDAtomic: 16})
	if rd.BandwidthGbps >= wr.BandwidthGbps {
		t.Fatalf("READ (%.1f) not below WRITE (%.1f) at depth 64", rd.BandwidthGbps, wr.BandwidthGbps)
	}
}

func TestSendRecvCPUHigherThanWrite(t *testing.T) {
	wr := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 64, Duration: 100 * time.Millisecond})
	sr := runOne(t, Params{Op: verbs.OpSend, BlockSize: 64 << 10, Depth: 64, Duration: 100 * time.Millisecond})
	wrTotal := wr.SourceCPU + wr.SinkCPU
	srTotal := sr.SourceCPU + sr.SinkCPU
	if srTotal <= wrTotal*1.5 {
		t.Fatalf("SEND/RECV CPU (%.1f%%) not well above WRITE (%.1f%%)", srTotal, wrTotal)
	}
	if wr.SinkCPU != 0 {
		t.Fatalf("one-sided WRITE charged sink CPU %.1f%%", wr.SinkCPU)
	}
	if sr.SinkCPU == 0 {
		t.Fatal("two-sided SEND charged no sink CPU")
	}
}

func TestCPUDecreasesWithBlockSize(t *testing.T) {
	small := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 16 << 10, Depth: 64, Duration: 50 * time.Millisecond})
	big := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 4 << 20, Depth: 64, Duration: 100 * time.Millisecond})
	if big.SourceCPU >= small.SourceCPU {
		t.Fatalf("CPU did not fall with block size: 16K=%.1f%%, 4M=%.1f%%", small.SourceCPU, big.SourceCPU)
	}
}

func TestSimilarBandwidthAcrossSemanticsAtLowDepth(t *testing.T) {
	// Paper Figure 3(a)/4(a): at low depth all three semantics perform
	// about the same.
	var bw []float64
	for _, op := range []verbs.Opcode{verbs.OpWrite, verbs.OpRead, verbs.OpSend} {
		r := runOne(t, Params{Op: op, BlockSize: 64 << 10, Depth: 1, Duration: 50 * time.Millisecond, MaxRDAtomic: 16})
		bw = append(bw, r.BandwidthGbps)
	}
	for i := 1; i < len(bw); i++ {
		ratio := bw[i] / bw[0]
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("low-depth semantics diverge: %v", bw)
		}
	}
}

func TestBadParamsRejected(t *testing.T) {
	env := NewEnv(1, roceLAN(), roceNIC(), roceNIC(), hostmodel.DefaultParams())
	if _, err := Run(env, Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := Run(env, Params{Op: verbs.OpWriteImm, BlockSize: 4096, Depth: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("unsupported op accepted")
	}
}

func TestOpsCounted(t *testing.T) {
	res := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 1 << 20, Depth: 8, Duration: 20 * time.Millisecond})
	if res.Ops == 0 || res.Bytes != res.Ops*int64(res.BlockSize) {
		t.Fatalf("ops=%d bytes=%d", res.Ops, res.Bytes)
	}
}

func TestLatencyPercentilesReported(t *testing.T) {
	res := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 8, Duration: 20 * time.Millisecond})
	if res.Latency.N == 0 {
		t.Fatal("no latency samples")
	}
	if res.Latency.P50 <= 0 || res.Latency.P95 < res.Latency.P50 || res.Latency.Max < res.Latency.P95 {
		t.Fatalf("latency summary inconsistent: %+v", res.Latency)
	}
	// Depth-1 latency must be lower than deep-queue latency (queueing).
	shallow := runOne(t, Params{Op: verbs.OpWrite, BlockSize: 64 << 10, Depth: 1, Duration: 20 * time.Millisecond})
	if shallow.Latency.P50 >= res.Latency.P50 {
		t.Fatalf("depth-1 P50 (%v) not below depth-8 P50 (%v)", shallow.Latency.P50, res.Latency.P50)
	}
}
