// Package ioengine is the analogue of the paper's RDMA fio engine
// (Section III.B): it drives raw verbs operations — RDMA WRITE, RDMA
// READ, or SEND/RECV — at a configurable block size and I/O depth over
// the simulated fabric, and reports bandwidth plus CPU utilization at
// both ends.
//
// The engine posts Depth operations and reposts on every completion,
// exactly like an asynchronous fio job with iodepth=N, so the results
// expose the effects the paper measures: the latency-bound regime at
// depth 1, saturation versus block size, the bounded-outstanding-READ
// ceiling, and the two-sided CPU tax of SEND/RECV.
package ioengine

import (
	"fmt"
	"time"

	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/metrics"
	"rftp/internal/sim"
	"rftp/internal/verbs"
)

// Params configures one engine run.
type Params struct {
	// Op is verbs.OpWrite, verbs.OpRead, or verbs.OpSend.
	Op verbs.Opcode
	// BlockSize is the transfer size per operation.
	BlockSize int
	// Depth is the number of operations kept in flight.
	Depth int
	// Duration is the simulated measurement window.
	Duration time.Duration
	// MaxRDAtomic bounds outstanding READs (0 = verbs default).
	MaxRDAtomic int
}

// Result reports one run.
type Result struct {
	Op            verbs.Opcode
	BlockSize     int
	Depth         int
	Ops           int64
	Bytes         int64
	Elapsed       time.Duration
	BandwidthGbps float64
	// SourceCPU and SinkCPU are percent of one core.
	SourceCPU float64
	SinkCPU   float64
	// Latency summarizes per-operation post-to-completion latency
	// (fio's "clat" analogue).
	Latency metrics.Summary
}

// Env is the two-host fabric the engine runs on.
type Env struct {
	Sched   *sim.Scheduler
	Fabric  *simfabric.Fabric
	SrcHost *hostmodel.Host
	DstHost *hostmodel.Host
	SrcDev  *simfabric.Device
	DstDev  *simfabric.Device
}

// NewEnv builds a two-host environment joined by link, with per-side
// NIC profiles.
func NewEnv(seed int64, link simfabric.LinkConfig, srcNIC, dstNIC simfabric.NICProfile, params hostmodel.Params) *Env {
	sched := sim.New(seed)
	fab := simfabric.New(sched)
	src := hostmodel.NewHost(sched, "src", 16, params)
	dst := hostmodel.NewHost(sched, "dst", 16, params)
	sdev := fab.NewDevice("hca0", src, srcNIC)
	ddev := fab.NewDevice("hca1", dst, dstNIC)
	fab.Connect(sdev, ddev, link)
	return &Env{Sched: sched, Fabric: fab, SrcHost: src, DstHost: dst, SrcDev: sdev, DstDev: ddev}
}

// Run executes one engine job on a fresh QP pair and returns the
// measurements. Multiple Runs on one Env accumulate virtual time but
// use independent QPs.
func Run(env *Env, p Params) (Result, error) {
	if p.BlockSize <= 0 || p.Depth <= 0 || p.Duration <= 0 {
		return Result{}, fmt.Errorf("ioengine: bad params %+v", p)
	}
	switch p.Op {
	case verbs.OpWrite, verbs.OpRead, verbs.OpSend:
	default:
		return Result{}, fmt.Errorf("ioengine: unsupported op %v", p.Op)
	}

	srcLoop := env.SrcHost.NewThread("io-src")
	dstLoop := env.DstHost.NewThread("io-dst")
	srcPD := env.SrcDev.AllocPD()
	dstPD := env.DstDev.AllocPD()
	srcCQ := env.SrcDev.CreateCQ(srcLoop, 4*p.Depth).(*verbs.UpcallCQ)
	dstCQ := env.DstDev.CreateCQ(dstLoop, 4*p.Depth).(*verbs.UpcallCQ)

	qpCfg := verbs.QPConfig{
		SendCQ: srcCQ, RecvCQ: srcCQ, PD: srcPD,
		MaxSend: 2*p.Depth + 4, MaxRecv: 2*p.Depth + 4,
		MaxRDAtomic: p.MaxRDAtomic,
	}
	srcQP, err := env.SrcDev.CreateQP(qpCfg)
	if err != nil {
		return Result{}, err
	}
	dstQP, err := env.DstDev.CreateQP(verbs.QPConfig{
		SendCQ: dstCQ, RecvCQ: dstCQ, PD: dstPD,
		MaxSend: 2*p.Depth + 4, MaxRecv: 2*p.Depth + 4,
	})
	if err != nil {
		return Result{}, err
	}
	if err := env.Fabric.ConnectQPs(srcQP, dstQP); err != nil {
		return Result{}, err
	}

	// Target and source regions: one slab each, rotated through by the
	// in-flight operations.
	slab := p.BlockSize * p.Depth
	remoteAccess := verbs.AccessRemoteWrite | verbs.AccessRemoteRead | verbs.AccessLocalWrite
	dstMR, err := env.DstDev.RegisterModelMR(dstPD, slab, 64, remoteAccess)
	if err != nil {
		return Result{}, err
	}
	srcMR, err := env.SrcDev.RegisterModelMR(srcPD, slab, 64, verbs.AccessLocalWrite)
	if err != nil {
		return Result{}, err
	}

	start := env.Sched.Now()
	deadline := start + p.Duration
	srcBusy0 := env.SrcHost.BusyTotal()
	dstBusy0 := env.DstHost.BusyTotal()

	var ops, bytes int64
	lastDone := start
	stopped := false
	hdr := make([]byte, 32)
	postedAt := make([]time.Duration, p.Depth)
	var latencies []float64

	// One reusable WR snapshot per slot: PostSend copies the WR, so
	// reposting through the same struct keeps the hot loop allocation-free.
	wrs := make([]verbs.SendWR, p.Depth)
	var post func(slot int)
	post = func(slot int) {
		if stopped {
			return
		}
		wr := &wrs[slot]
		*wr = verbs.SendWR{WRID: uint64(slot), Op: p.Op}
		postedAt[slot] = env.Sched.Now()
		off := slot * p.BlockSize
		switch p.Op {
		case verbs.OpWrite:
			wr.Data = hdr
			wr.ModelBytes = p.BlockSize - len(hdr)
			wr.Remote = dstMR.Remote(off)
		case verbs.OpRead:
			wr.ReadLen = p.BlockSize
			wr.Remote = dstMR.Remote(off)
			wr.Local = srcMR
			wr.LocalOffset = off
		case verbs.OpSend:
			wr.Data = hdr
			wr.ModelBytes = p.BlockSize - len(hdr)
		}
		if err := srcQP.PostSend(wr); err != nil {
			panic(fmt.Sprintf("ioengine: post: %v", err))
		}
	}

	// SEND needs pre-posted receives, replenished on completion (the
	// engine never lets the queue run dry, avoiding RNR).
	if p.Op == verbs.OpSend {
		repostWR := &verbs.RecvWR{MR: dstMR, Offset: 0, Len: p.BlockSize}
		dstCQ.SetHandler(func(wc verbs.WC) {
			if wc.Status != verbs.StatusSuccess {
				return
			}
			if !stopped {
				repostWR.WRID = wc.WRID
				dstQP.PostRecv(repostWR)
			}
		})
		for i := 0; i < 2*p.Depth+4; i++ {
			if err := dstQP.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: dstMR, Offset: 0, Len: p.BlockSize}); err != nil {
				return Result{}, err
			}
		}
	} else {
		dstCQ.SetHandler(func(wc verbs.WC) {})
	}

	srcCQ.SetHandler(func(wc verbs.WC) {
		if wc.Status != verbs.StatusSuccess {
			if wc.Status == verbs.StatusFlushed {
				return
			}
			panic(fmt.Sprintf("ioengine: completion error %v", wc.Status))
		}
		ops++
		bytes += int64(wc.ByteLen)
		lastDone = env.Sched.Now()
		latencies = append(latencies, float64(env.Sched.Now()-postedAt[int(wc.WRID)])/1e3) // µs
		if env.Sched.Now() < deadline {
			post(int(wc.WRID))
		}
	})

	for i := 0; i < p.Depth; i++ {
		post(i)
	}
	env.Sched.Run(deadline + time.Second) // allow tail completions
	stopped = true

	elapsed := lastDone - start
	res := Result{
		Op: p.Op, BlockSize: p.BlockSize, Depth: p.Depth,
		Ops: ops, Bytes: bytes, Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.BandwidthGbps = float64(bytes) * 8 / elapsed.Seconds() / 1e9
		res.SourceCPU = 100 * float64(env.SrcHost.BusyTotal()-srcBusy0) / float64(elapsed)
		res.SinkCPU = 100 * float64(env.DstHost.BusyTotal()-dstBusy0) / float64(elapsed)
	}
	res.Latency = metrics.Summarize(latencies)
	srcQP.Close()
	dstQP.Close()
	return res, nil
}
