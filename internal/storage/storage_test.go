package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rftp/internal/core"
	"rftp/internal/telemetry"
	"rftp/internal/wire"
)

func TestEngineRunsJobsAndCloseDrains(t *testing.T) {
	e := NewEngine(4)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 100; i++ {
		e.submit(func() {
			mu.Lock()
			ran++
			mu.Unlock()
		})
	}
	e.Close()
	if ran != 100 {
		t.Fatalf("ran %d of 100 jobs before Close returned", ran)
	}
	e.Close() // second Close is a no-op
}

func TestEngineMetrics(t *testing.T) {
	reg := telemetry.NewRegistry("io")
	m := core.NewIOMetrics(reg)
	e := NewEngine(2)
	e.SetMetrics(m)
	done := make(chan struct{}, 10)
	for i := 0; i < 10; i++ {
		e.submit(func() { done <- struct{}{} })
	}
	for i := 0; i < 10; i++ {
		<-done
	}
	e.Close()
	if n := m.QueueWait.Count(); n != 10 {
		t.Fatalf("queue-wait observations = %d, want 10", n)
	}
	if n := m.DeviceTime.Count(); n != 10 {
		t.Fatalf("device-time observations = %d, want 10", n)
	}
}

// TestFileSourceLoadAtContract checks the three LoadAt regimes against
// the core.BlockSourceAt contract: interior windows full with
// eof=false, the straddling window short with eof=true, windows at or
// past the end empty with eof=true.
func TestFileSourceLoadAtContract(t *testing.T) {
	const size, capacity = 10_000, 4096
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	src := NewFileSource(bytes.NewReader(data), size, NewEngine(2))
	defer src.Engine().Close()

	load := func(off uint64) (int, bool) {
		t.Helper()
		p := make([]byte, capacity)
		ch := make(chan struct{})
		var n int
		var eof bool
		src.LoadAt(p, capacity, off, func(gotN int, gotEOF bool, err error) {
			if err != nil {
				t.Errorf("LoadAt(%d): %v", off, err)
			}
			n, eof = gotN, gotEOF
			close(ch)
		})
		<-ch
		if n > 0 && !bytes.Equal(p[:n], data[off:int(off)+n]) {
			t.Errorf("LoadAt(%d): payload mismatch", off)
		}
		return n, eof
	}

	if n, eof := load(0); n != capacity || eof {
		t.Fatalf("interior load = (%d, %v), want (%d, false)", n, eof, capacity)
	}
	if n, eof := load(2 * capacity); n != size-2*capacity || !eof {
		t.Fatalf("straddling load = (%d, %v), want (%d, true)", n, eof, size-2*capacity)
	}
	if n, eof := load(3 * capacity); n != 0 || !eof {
		t.Fatalf("past-end load = (%d, %v), want (0, true)", n, eof)
	}
}

// TestFileRoundTripConcurrent drives a FileSource and FileSink directly
// — many loads and stores in flight on multi-worker engines, completing
// out of order — and verifies the destination file matches the source
// byte for byte. Run under -race this exercises the engine's
// synchronization.
func TestFileRoundTripConcurrent(t *testing.T) {
	const size, capacity = 1<<20 + 12345, 32 << 10
	dir := t.TempDir()
	srcPath, dstPath := filepath.Join(dir, "src"), filepath.Join(dir, "dst")
	data := make([]byte, size)
	rand.New(rand.NewSource(2)).Read(data)
	if err := os.WriteFile(srcPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := OpenFileSource(srcPath, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Size() != size {
		t.Fatalf("Size() = %d, want %d", src.Size(), size)
	}
	sink, err := OpenFileSink(dstPath, 4)
	if err != nil {
		t.Fatal(err)
	}

	nBlocks := (size + capacity - 1) / capacity
	var wg sync.WaitGroup
	errs := make(chan error, 2*nBlocks)
	for i := 0; i < nBlocks; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			off := uint64(i * capacity)
			p := make([]byte, capacity)
			loaded := make(chan int, 1)
			src.LoadAt(p, capacity, off, func(n int, eof bool, err error) {
				if err != nil {
					errs <- err
				}
				loaded <- n
			})
			n := <-loaded
			stored := make(chan struct{})
			hdr := wire.BlockHeader{Seq: uint32(i), Offset: off, PayloadLen: uint32(n)}
			sink.Store(hdr, p[:n], n, func(err error) {
				if err != nil {
					errs <- err
				}
				close(stored)
			})
			<-stored
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("destination differs from source (len %d vs %d)", len(got), len(data))
	}
}

// TestAsyncWrappers checks that AsyncSource/AsyncSink preserve the
// wrapped behavior while running it off the caller's goroutine, and
// that OffsetStores delegates.
func TestAsyncWrappers(t *testing.T) {
	data := []byte("hello, storage pipeline")
	eng := NewEngine(1)
	defer eng.Close()

	src := NewAsyncSource(core.ReaderSource{R: bytes.NewReader(data)}, eng)
	p := make([]byte, 8)
	got := []byte{}
	for {
		ch := make(chan struct{})
		var n int
		var eof bool
		src.Load(p, len(p), func(gotN int, gotEOF bool, err error) {
			if err != nil {
				t.Errorf("Load: %v", err)
			}
			n, eof = gotN, gotEOF
			close(ch)
		})
		<-ch
		got = append(got, p[:n]...)
		if eof {
			break
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("AsyncSource read %q, want %q", got, data)
	}

	var buf bytes.Buffer
	sink := NewAsyncSink(core.WriterSink{W: &buf}, eng)
	if sink.OffsetStores() {
		t.Fatal("AsyncSink over WriterSink must not claim offset stores")
	}
	ch := make(chan struct{})
	sink.Store(wire.BlockHeader{PayloadLen: uint32(len(data))}, data, len(data), func(err error) {
		if err != nil {
			t.Errorf("Store: %v", err)
		}
		close(ch)
	})
	<-ch
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("AsyncSink wrote %q, want %q", buf.Bytes(), data)
	}

	offSink := NewAsyncSink(&FileSink{}, eng)
	if !offSink.OffsetStores() {
		t.Fatal("AsyncSink over FileSink must delegate OffsetStores=true")
	}
}
