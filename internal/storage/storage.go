// Package storage is the real-file asynchronous I/O engine behind the
// protocol's storage pipeline: the analogue of the middleware's
// dedicated data-loading and data-offloading threads (paper Section
// IV.C), which keep disk reads and writes overlapped with network
// transfer instead of serializing load → send → store.
//
// The pieces compose:
//
//   - Engine: a bounded worker pool with an unbounded submit queue.
//     Submitting never blocks the caller (the protocol loop); the
//     protocol's own Config.LoadDepth / Config.StoreDepth bound how
//     many jobs are outstanding, and Workers bounds how many touch the
//     device at once.
//   - FileSource / FileSink: offset-addressed block I/O against an
//     *os.File (or any io.ReaderAt / io.WriterAt) through an Engine.
//     FileSource implements core.BlockSourceAt, so the protocol keeps
//     LoadDepth reads in flight; FileSink implements core.OffsetSink,
//     so arriving blocks are written by offset with no reassembly wait.
//   - AsyncSource / AsyncSink: wrap any synchronous core.BlockSource /
//     core.BlockSink so its Load/Store runs on a worker instead of the
//     protocol loop.
//
// Engines carry optional core.IOMetrics instrumentation: queue wait
// (submit → worker pickup) versus device time (the operation itself),
// the two halves of storage latency the load-depth ablation separates.
package storage

import (
	"sync"
	"time"

	"rftp/internal/core"
)

// Engine is a bounded worker pool executing storage jobs off the
// protocol loop. The zero value is not usable; call NewEngine.
type Engine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []job
	closed  bool
	active  int // jobs picked up by a worker, not yet finished
	metrics *core.IOMetrics
	wg      sync.WaitGroup
}

type job struct {
	run func()
	enq time.Time
}

// NewEngine starts a pool of workers goroutines (minimum 1). workers is
// the device-level concurrency: for a single spindle or a synchronous
// wrapped source, 1 preserves serial device access while still moving
// the work off the protocol loop; for RAID/SSD/NFS targets, more
// workers let the device see parallel requests.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// SetMetrics attaches instrumentation (nil detaches). Call before
// submitting work; the handles are read without synchronization once
// workers are busy.
func (e *Engine) SetMetrics(m *core.IOMetrics) {
	e.mu.Lock()
	e.metrics = m
	e.mu.Unlock()
}

// submit enqueues fn for a worker. It never blocks; after Close the job
// is dropped (callers are torn down with the engine).
func (e *Engine) submit(fn func()) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, job{run: fn, enq: time.Now()})
	if m := e.metrics; m != nil {
		m.InFlight.Set(int64(len(e.queue) + e.active))
	}
	e.mu.Unlock()
	e.cond.Signal()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.active++
		m := e.metrics
		e.mu.Unlock()

		start := time.Now()
		if m != nil {
			m.QueueWait.ObserveDuration(start.Sub(j.enq))
		}
		j.run()
		if m != nil {
			m.DeviceTime.ObserveDuration(time.Since(start))
		}

		e.mu.Lock()
		e.active--
		if m != nil {
			m.InFlight.Set(int64(len(e.queue) + e.active))
		}
		e.mu.Unlock()
	}
}

// Close stops the workers after draining queued jobs and waits for them
// to exit. Safe to call twice.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.wg.Wait()
}
