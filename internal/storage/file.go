package storage

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"rftp/internal/wire"
)

// FileSource reads a dataset of known size through an Engine. It
// implements core.BlockSourceAt: LoadAt calls are offset-addressed and
// safe with many outstanding, so the protocol pipelines Config.LoadDepth
// reads and the device sees real queue depth (the paper's O_DIRECT RAID
// reads from a dedicated loading thread).
type FileSource struct {
	r    io.ReaderAt
	size int64
	eng  *Engine
	ownE bool
	f    *os.File // non-nil when opened via OpenFileSource

	cursor int64 // serial Load path only
}

// NewFileSource wraps an io.ReaderAt of the given size on eng. The
// engine is shared: closing the source does not close it.
func NewFileSource(r io.ReaderAt, size int64, eng *Engine) *FileSource {
	return &FileSource{r: r, size: size, eng: eng}
}

// OpenFileSource opens path and a private Engine with workers readers.
// Close releases both.
func OpenFileSource(path string, workers int) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := NewFileSource(f, st.Size(), NewEngine(workers))
	s.f, s.ownE = f, true
	return s, nil
}

// Size returns the dataset length in bytes.
func (s *FileSource) Size() int64 { return s.size }

// Engine returns the underlying engine (to share or instrument).
func (s *FileSource) Engine() *Engine { return s.eng }

// Load implements core.BlockSource: serial cursor-based reads, for
// protocols or tools that do not drive the offset path.
func (s *FileSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	off := atomic.AddInt64(&s.cursor, int64(capacity)) - int64(capacity)
	s.LoadAt(p, capacity, uint64(off), done)
}

// LoadAt implements core.BlockSourceAt. Per the contract: a window
// strictly inside the dataset yields exactly capacity bytes with
// eof=false; the window straddling the end yields the remaining bytes
// with eof=true; windows at or past the end yield (0, true, nil).
func (s *FileSource) LoadAt(p []byte, capacity int, off uint64, done func(n int, eof bool, err error)) {
	remaining := s.size - int64(off)
	if remaining <= 0 {
		done(0, true, nil)
		return
	}
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	eof := int64(off)+n >= s.size
	s.eng.submit(func() {
		if p == nil { // modeled payload: charge no real read
			done(int(n), eof, nil)
			return
		}
		rn, err := s.r.ReadAt(p[:n], int64(off))
		if err == io.EOF && int64(rn) == n {
			err = nil
		}
		if err != nil {
			done(rn, false, fmt.Errorf("storage: read %d@%d: %w", n, off, err))
			return
		}
		done(rn, eof, nil)
	})
}

// Close shuts the private engine and file down when the source owns
// them (OpenFileSource); it is a no-op for NewFileSource.
func (s *FileSource) Close() error {
	if !s.ownE {
		return nil
	}
	s.eng.Close()
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// FileSink writes blocks by their header offset through an Engine. It
// implements core.OffsetSink, so the protocol's sink stores arriving
// blocks immediately — out of order, Config.StoreDepth at a time — and
// the file ends up correct because every write is positioned.
type FileSink struct {
	w    io.WriterAt
	eng  *Engine
	ownE bool
	f    *os.File
}

// NewFileSink wraps an io.WriterAt on eng. The engine is shared:
// closing the sink does not close it.
func NewFileSink(w io.WriterAt, eng *Engine) *FileSink {
	return &FileSink{w: w, eng: eng}
}

// OpenFileSink creates/truncates path and a private Engine with workers
// writers. Close releases both.
func OpenFileSink(path string, workers int) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	k := NewFileSink(f, NewEngine(workers))
	k.f, k.ownE = f, true
	return k, nil
}

// Engine returns the underlying engine (to share or instrument).
func (k *FileSink) Engine() *Engine { return k.eng }

// Store implements core.BlockSink.
func (k *FileSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	k.eng.submit(func() {
		if payload == nil { // modeled payload: nothing to place
			done(nil)
			return
		}
		_, err := k.w.WriteAt(payload, int64(hdr.Offset))
		if err != nil {
			err = fmt.Errorf("storage: write %d@%d: %w", len(payload), hdr.Offset, err)
		}
		done(err)
	})
}

// OffsetStores implements core.OffsetSink: every write is positioned.
func (k *FileSink) OffsetStores() bool { return true }

// Sync flushes file contents when backed by an *os.File.
func (k *FileSink) Sync() error {
	if k.f == nil {
		return nil
	}
	return k.f.Sync()
}

// Close drains pending writes, then syncs and closes the file when the
// sink owns it (OpenFileSink).
func (k *FileSink) Close() error {
	if !k.ownE {
		return nil
	}
	k.eng.Close()
	if k.f != nil {
		if err := k.f.Sync(); err != nil {
			k.f.Close()
			return err
		}
		return k.f.Close()
	}
	return nil
}
