package storage

import (
	"rftp/internal/core"
	"rftp/internal/wire"
)

// AsyncSource moves any BlockSource's Load off the protocol loop onto
// an Engine worker. Use it around synchronous sources (core.ReaderSource
// over a pipe, a compressing reader) so a slow read stalls a worker, not
// the event loop. The serial one-Load-at-a-time contract is preserved:
// the wrapper adds no concurrency, only detachment.
type AsyncSource struct {
	Inner core.BlockSource
	Eng   *Engine
}

// NewAsyncSource wraps inner on eng.
func NewAsyncSource(inner core.BlockSource, eng *Engine) *AsyncSource {
	return &AsyncSource{Inner: inner, Eng: eng}
}

// Load implements core.BlockSource.
func (a *AsyncSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	a.Eng.submit(func() { a.Inner.Load(p, capacity, done) })
}

// AsyncSink moves any BlockSink's Store off the protocol loop onto an
// Engine worker. Stream sinks (core.WriterSink) need a single-worker
// engine: the protocol issues their stores in sequence order, but a
// multi-worker engine could execute two issued stores out of order.
type AsyncSink struct {
	Inner core.BlockSink
	Eng   *Engine
}

// NewAsyncSink wraps inner on eng.
func NewAsyncSink(inner core.BlockSink, eng *Engine) *AsyncSink {
	return &AsyncSink{Inner: inner, Eng: eng}
}

// Store implements core.BlockSink.
func (a *AsyncSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	a.Eng.submit(func() { a.Inner.Store(hdr, payload, modelLen, done) })
}

// OffsetStores implements core.OffsetSink by delegation: the fast path
// is only safe when the wrapped sink is itself offset-addressed AND the
// engine may run stores concurrently.
func (a *AsyncSink) OffsetStores() bool {
	if os, ok := a.Inner.(core.OffsetSink); ok {
		return os.OffsetStores()
	}
	return false
}
