package bench

import (
	"strings"
	"testing"
)

// TestAblationPullModeShape is the pull-mode regression gate: remote
// fetching must hold its rate when the source host is saturated (the
// READs are served by the NIC, push burns the squeezed CPU for every
// WRITE), and the hybrid controller must land within 5% of the better
// fixed mode at every point — it may not buy its saturation win by
// losing the idle case.
func TestAblationPullModeShape(t *testing.T) {
	rows, err := AblationPullMode(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("want 12 rows (2 testbeds x 2 loads x 3 modes), got %d", len(rows))
	}
	// cell[testbed][busy][mode] -> Gbps
	cell := map[string]map[string]map[string]float64{}
	for _, r := range rows {
		mode := strings.TrimPrefix(r.Tool, "RFTP ")
		busy := "idle"
		if strings.Contains(r.Note, "src-busy=99%") {
			busy = "saturated"
		}
		if cell[r.Testbed] == nil {
			cell[r.Testbed] = map[string]map[string]float64{}
		}
		if cell[r.Testbed][busy] == nil {
			cell[r.Testbed][busy] = map[string]float64{}
		}
		cell[r.Testbed][busy][mode] = r.Gbps
	}
	for tb, byBusy := range cell {
		// 1) With the source saturated, pull must beat (or match) push:
		// the one-sided READs bypass the contended source CPU.
		sat := byBusy["saturated"]
		if sat["pull"] < sat["push"] {
			t.Errorf("%s saturated: pull (%.2f Gbps) below push (%.2f Gbps)",
				tb, sat["pull"], sat["push"])
		}
		// 2) Hybrid within 5% of the best fixed mode at every point.
		for busy, byMode := range byBusy {
			best := byMode["push"]
			if byMode["pull"] > best {
				best = byMode["pull"]
			}
			if byMode["hybrid"] < 0.95*best {
				t.Errorf("%s %s: hybrid (%.2f Gbps) below 95%% of best fixed mode (%.2f Gbps)",
					tb, busy, byMode["hybrid"], best)
			}
		}
		// 3) Saturation must actually bite somewhere: push under load may
		// not beat push idle (sanity that the busy job is wired up).
		if byBusy["saturated"]["push"] > byBusy["idle"]["push"]*1.01 {
			t.Errorf("%s: saturated push (%.2f) above idle push (%.2f) — busy job not applied?",
				tb, byBusy["saturated"]["push"], byBusy["idle"]["push"])
		}
	}
}
