// Package bench is the experiment harness: it encodes the paper's
// testbeds (Table I) and regenerates every figure of the evaluation
// section plus the ablations listed in DESIGN.md, printing the same
// rows/series the paper reports.
package bench

import (
	"time"

	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/tcpmodel"
)

// Testbed is one column of Table I: a network/host configuration the
// experiments run on.
type Testbed struct {
	Name string
	// Table I descriptive fields.
	CPU        string
	MemGB      int
	NICGbps    int
	OS         string
	Kernel     string
	OFED       string
	TCPCC      string
	MTU        int
	RTT        time.Duration
	CoresTotal int

	// Model configuration.
	Link       simfabric.LinkConfig
	NIC        simfabric.NICProfile
	Host       hostmodel.Params
	TCPVariant tcpmodel.Variant
	// TCPSegBytes is the aggregated segment size for the TCP model
	// (multiple MTUs per simulated segment keeps event counts sane).
	TCPSegBytes int
}

// IBLAN is the 40 Gbps InfiniBand LAN testbed (NERSC, 4X QDR; the
// vendor-validated realizable bandwidth is ~25-32 Gbps, and the PCIe
// 2.0 x8 slot caps the HCA around 25-26 Gbps of payload).
func IBLAN() Testbed {
	nic := simfabric.DefaultNICProfile()
	nic.HostCostFactor = 1.0 // libibverbs overhead is lowest on IB
	return Testbed{
		Name:       "IB-LAN",
		CPU:        "Intel Xeon X5550 2.67GHz",
		MemGB:      48,
		NICGbps:    40,
		OS:         "RHEL 5.5",
		Kernel:     "2.6.18-238",
		OFED:       "1.5.3.1",
		TCPCC:      "cubic",
		MTU:        65520,
		RTT:        13 * time.Microsecond,
		CoresTotal: 8,
		Link: simfabric.LinkConfig{
			// 4X QDR signals 32 Gb/s; PCIe 2.0 x8 holds payload ~26G.
			RateBps:     26e9,
			PropDelay:   6500 * time.Nanosecond,
			MTU:         65520,
			HeaderBytes: 30, // IB LRH+BTH+ICRC
		},
		NIC:         nic,
		Host:        hostmodel.DefaultParams(),
		TCPVariant:  tcpmodel.Cubic,
		TCPSegBytes: 64 << 10,
	}
}

// RoCELAN is the 40 Gbps RoCE back-to-back LAN testbed (Stony Brook).
func RoCELAN() Testbed {
	nic := simfabric.DefaultNICProfile()
	nic.HostCostFactor = 1.3 // RoCE verbs path costs more than IB
	return Testbed{
		Name:       "RoCE-LAN",
		CPU:        "Intel Xeon X5650 2.67GHz",
		MemGB:      24,
		NICGbps:    40,
		OS:         "CentOS 6.2",
		Kernel:     "2.6.32-220",
		OFED:       "MLNX OFED 1.5.3",
		TCPCC:      "bic",
		MTU:        9000,
		RTT:        25 * time.Microsecond,
		CoresTotal: 12,
		Link: simfabric.LinkConfig{
			RateBps:     40e9,
			PropDelay:   12500 * time.Nanosecond,
			MTU:         9000,
			HeaderBytes: 58, // Eth+IP+UDP+BTH
		},
		NIC:         nic,
		Host:        hostmodel.DefaultParams(),
		TCPVariant:  tcpmodel.BIC,
		TCPSegBytes: 36 << 10,
	}
}

// RoCEWAN is the ANI 10 Gbps RoCE WAN testbed (ANL to NERSC, ~2000
// miles, 49 ms RTT).
func RoCEWAN() Testbed {
	nic := simfabric.DefaultNICProfile()
	nic.HostCostFactor = 1.3
	return Testbed{
		Name:       "RoCE-WAN",
		CPU:        "AMD Opteron 6140 2.6GHz / Intel Xeon E5530 2.4GHz",
		MemGB:      64,
		NICGbps:    10,
		OS:         "CentOS 5.7 / CentOS 6.2",
		Kernel:     "2.6.32-220 / 2.6.32.27",
		OFED:       "1.5.3",
		TCPCC:      "cubic/htcp",
		MTU:        9000,
		RTT:        49 * time.Millisecond,
		CoresTotal: 16,
		Link: simfabric.LinkConfig{
			RateBps:     10e9,
			PropDelay:   24500 * time.Microsecond,
			MTU:         9000,
			HeaderBytes: 58,
		},
		NIC:         nic,
		Host:        hostmodel.DefaultParams(),
		TCPVariant:  tcpmodel.HTCP,
		TCPSegBytes: 72 << 10,
	}
}

// IWARPLAN is an extension testbed not in Table I: a 10 GbE iWARP LAN.
// The paper's Figure 1 places iWARP alongside IB and RoCE as the third
// RDMA architecture its middleware must span; per Cohen et al. [9]
// (cited in Related Work), RoCE is the more efficient Ethernet mapping,
// so the iWARP profile carries the highest host-side verbs overhead.
func IWARPLAN() Testbed {
	nic := simfabric.DefaultNICProfile()
	nic.HostCostFactor = 1.6 // TCP-offload verbs path costs most
	nic.TxPerWR = 900 * time.Nanosecond
	nic.RxPerWR = 900 * time.Nanosecond
	return Testbed{
		Name:       "iWARP-LAN",
		CPU:        "Intel Xeon X5650 2.67GHz",
		MemGB:      24,
		NICGbps:    10,
		OS:         "CentOS 6.2",
		Kernel:     "2.6.32-220",
		OFED:       "1.5.3",
		TCPCC:      "cubic",
		MTU:        9000,
		RTT:        30 * time.Microsecond,
		CoresTotal: 12,
		Link: simfabric.LinkConfig{
			RateBps:     10e9,
			PropDelay:   15 * time.Microsecond,
			MTU:         9000,
			HeaderBytes: 78, // Eth+IP+TCP+MPA/DDP/RDMAP framing
		},
		NIC:         nic,
		Host:        hostmodel.DefaultParams(),
		TCPVariant:  tcpmodel.Cubic,
		TCPSegBytes: 36 << 10,
	}
}

// Testbeds returns all Table I configurations (the iWARP extension
// testbed is separate; see IWARPLAN).
func Testbeds() []Testbed {
	return []Testbed{IBLAN(), RoCELAN(), RoCEWAN()}
}
