package bench

import (
	"fmt"

	"rftp/internal/core"
)

// Session-scaling sweep: many concurrent tenants multiplexed over one
// connection's shared data channels, fed by the sink's per-tenant DRR
// credit scheduler. The claims under test are the session manager's
// deliverables: aggregate goodput stays near the single-session rate
// as tenants multiply, Jain's fairness index stays >= 0.95 at equal
// weights, a 2:1 weight split yields 2:1 goodput shares, and
// per-tenant memory stays bounded (the shared pool amortizes, it does
// not replicate).

// SessionScaleCounts is the tenant sweep both the ablation and the
// repo-root BenchmarkSessionScaling run.
var SessionScaleCounts = []int{1, 8, 64, 256, 1024}

// sessionScaleMax extends the ablation (only) to the 10k-tenant point:
// two orders of magnitude past the sink pool, every tenant at the DRR
// scheduler's 1-credit floor, with the per-tenant byte floor pushing
// ~20 GiB through even at quick scale. The test sweep stops at 1024 to
// keep tier-1 runtime sane; mem/tenant and RNR at 10k are the columns
// that prove the control rings and the shared pool, not the tenant
// count, bound the footprint.
const sessionScaleMax = 10240

// sessionScaleConfig is the shared workload: 256 KiB blocks over 4
// channels with a 256-block sink pool, so at the top of the sweep the
// pool is 4x oversubscribed and every tenant runs at the scheduler's
// 1-credit floor.
func sessionScaleConfig(sessions int) core.Config {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 256 << 10
	cfg.Channels = 4
	cfg.IODepth = 64
	cfg.SinkBlocks = 256
	cfg.MaxSessions = sessions
	return cfg
}

// RunSessionScalePoint runs one tenant-count point of the sweep.
// weights cycle over the tenants (nil = equal). The byte volume is
// floored at 8 blocks per tenant so per-tenant rates stay measurable
// at the top of the sweep.
func RunSessionScalePoint(sessions int, weights []int, scale Scale) (RunResult, error) {
	cfg := sessionScaleConfig(sessions)
	total := scale.bytes(2 << 30)
	if min := int64(sessions) * 8 * int64(cfg.BlockSize); total < min {
		total = min
	}
	return RunRFTP(RoCELAN(), RFTPOptions{
		Config:         cfg,
		TotalBytes:     total,
		Sessions:       sessions,
		SessionWeights: weights,
	})
}

// AblationSessions sweeps 1 -> 10240 concurrent tenants at equal
// weights, then adds a 2:1 weighted run whose note reports the
// measured goodput share ratio between the two tenant classes.
func AblationSessions(scale Scale) ([]Row, error) {
	var rows []Row
	counts := append(append([]int{}, SessionScaleCounts...), sessionScaleMax)
	for _, n := range counts {
		r, err := RunSessionScalePoint(n, nil, scale)
		if err != nil {
			return nil, fmt.Errorf("ablation-sessions n=%d: %w", n, err)
		}
		rows = append(rows, sessionRow(r, fmt.Sprintf("sessions=%d equal-weight", n)))
	}
	const weighted = 8
	r, err := RunSessionScalePoint(weighted, []int{2, 1}, scale)
	if err != nil {
		return nil, fmt.Errorf("ablation-sessions weighted: %w", err)
	}
	rows = append(rows, sessionRow(r, fmt.Sprintf(
		"sessions=%d weights=2:1 share-ratio=%.2f", weighted, ShareRatio(r.SessionGbps, []int{2, 1}))))
	return rows, nil
}

// sessionRow normalizes one sweep point into a report row.
func sessionRow(r RunResult, note string) Row {
	cfg := sessionScaleConfig(r.Sessions)
	return Row{
		Figure: "ablation-sessions", Testbed: RoCELAN().Name, Tool: "RFTP",
		BlockSize: cfg.BlockSize, Streams: cfg.Channels,
		Sessions: r.Sessions, Gbps: r.BandwidthGbps, GoodputAgg: r.BandwidthGbps,
		JainIndex: r.JainIndex, MemPerSess: r.MemPerSession,
		ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
		Stalls: r.Stalls, RNR: r.RNR,
		CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
		Note: note,
	}
}

// ShareRatio is the mean goodput of the weight-cycle's first class
// over the mean of its second (tenant i carries weights[i % len]); a
// 2:1 schedule should yield a ratio near 2.
func ShareRatio(rates []float64, weights []int) float64 {
	var hi, lo float64
	var nHi, nLo int
	for i, r := range rates {
		if weights[i%len(weights)] == weights[0] {
			hi += r
			nHi++
		} else {
			lo += r
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 || lo == 0 {
		return 0
	}
	return (hi / float64(nHi)) / (lo / float64(nLo))
}
