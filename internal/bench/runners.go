package bench

import (
	"fmt"
	"runtime"
	"time"

	"rftp/internal/core"
	"rftp/internal/diskmodel"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/gridftp"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/spans"
	"rftp/internal/tcpmodel"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// RFTPOptions configures one RFTP run on a testbed.
type RFTPOptions struct {
	Config     core.Config
	TotalBytes int64
	// Disk routes the sink to a modeled RAID array.
	Disk     bool
	DiskMode diskmodel.Mode
	DiskCfg  diskmodel.ArrayConfig
	// SrcDisk routes the source to a modeled RAID array: loads become
	// spindle-parallel reads whose latency only overlaps when
	// Config.LoadDepth keeps several in flight (the load-depth
	// ablation's disk-bound regime).
	SrcDisk     bool
	SrcDiskMode diskmodel.Mode
	SrcDiskCfg  diskmodel.ArrayConfig
	// Loaders / Storers spread memory-model loads/stores over N CPU
	// threads (0 or 1 = the single dedicated thread).
	Loaders int
	Storers int
	// Reactors shards the data-channel hot path over N per-core event
	// loops on each host (0 or 1 = the classic single reactor). Shard 0
	// keeps the control plane; extra shards own disjoint channel groups
	// with their own completion queues, so posting and completion CPU
	// spreads across cores. Clamped to Config.Channels.
	Reactors int
	// Sessions multiplexes N concurrent tenants over the one
	// connection's shared data channels (0 or 1 = classic single
	// session). TotalBytes is split across the tenants proportionally to
	// their weights, so fair scheduling makes them finish together.
	Sessions int
	// SessionWeights cycles DRR weights over the tenants (tenant i gets
	// SessionWeights[i % len]; empty = equal weight 1). Also installed
	// as Config.TenantWeights unless the config sets its own.
	SessionWeights []int
	// SrcBusy co-locates a competing compute job on the source host's
	// protocol threads: every scheduling quantum, each protocol thread
	// (control loop and reactor shards) loses this fraction of its CPU
	// to the other job. Models the paper's busy data source — the
	// regime where the pull path's one-sided READs win by moving
	// per-block data-path work to the receiver. The same value feeds
	// Config.LoadProbe (unless the caller set its own), standing in for
	// the OS load average the hybrid controller would consult on a real
	// host. 0 = idle host.
	SrcBusy float64
	Seed    int64
	// Telemetry, when non-nil, instruments the run: source/sink protocol
	// metrics and per-device fabric metrics are registered as children.
	// Nil runs stay uninstrumented (and measure the disabled-path cost).
	Telemetry *telemetry.Registry
	// SpanSample, with Telemetry set, records block lifecycle spans and
	// pipeline stall attribution for 1 in N blocks (0 = off, 1 = every
	// block). Drives the stall-attrib columns and the Fig3b flip test.
	SpanSample int
}

// RunResult is a normalized result row for either tool.
type RunResult struct {
	Tool          string
	BandwidthGbps float64
	// ClientCPU / ServerCPU are percent of one core, whole host
	// (protocol threads + loader/storer), matching how the paper reads
	// nmon.
	ClientCPU float64
	ServerCPU float64
	Bytes     int64
	Elapsed   time.Duration
	// Stalls is the source credit-starvation count (RFTP only).
	Stalls int64
	// CtrlMsgs counts control messages (RFTP only).
	CtrlMsgs int64
	// CtrlPerBlock is control messages per transferred block across both
	// endpoints — the figure of merit for control-plane coalescing
	// (RFTP only).
	CtrlPerBlock float64
	// GrantBatchMean is the mean credits per MR_INFO_RESPONSE the sink
	// emitted: 1.0 means no coalescing, MaxCreditsPerMsg is the wire
	// ceiling (RFTP only).
	GrantBatchMean float64
	// Retrans counts TCP retransmissions (GridFTP only).
	Retrans uint64
	// RNR counts fabric receiver-not-ready NAKs (RFTP only).
	RNR uint64
	// AllocsPerBlock is heap allocations per transferred block across the
	// whole run (protocol machinery + simulator), from runtime.MemStats.
	// Tracks data-path allocation churn across revisions (RFTP only).
	AllocsPerBlock float64
	// CopiedPerBlock is CPU-copied payload bytes per block, from
	// verbs.CopiedBytes. Zero-copy placement keeps it near zero even as
	// block sizes grow (RFTP only).
	CopiedPerBlock float64
	// TopStall names the dominant pipeline stall cause from the span
	// layer's attributor ("" when spans were off or nothing stalled) and
	// TopStallShare its fraction of total attributed stall time
	// (RFTP runs with Telemetry + SpanSample only).
	TopStall      string
	TopStallShare float64
	// Sessions is the concurrent tenant count of the run (1 = classic
	// single session).
	Sessions int
	// SessionGbps is each tenant's whole-run goodput (multi-session
	// runs only; index matches the transfer issue order, which matches
	// the sink's session-id order).
	SessionGbps []float64
	// JainIndex is Jain's fairness index over weight-normalized
	// per-tenant goodput: 1.0 means every tenant got exactly its
	// proportional share (multi-session runs only).
	JainIndex float64
	// MemPerSession is retained protocol heap bytes per tenant
	// (post-GC heap growth across the run divided by the session
	// count; multi-session runs only).
	MemPerSession float64
}

// startGate parks multi-tenant first loads until every session is
// admitted, so fairness is measured over concurrently-backlogged flows
// rather than the admission ramp. Control-loop confined: loads park on
// the source loop and release is posted onto the same loop.
type startGate struct {
	open bool
	q    []func()
}

func (g *startGate) run(f func()) {
	if g.open {
		f()
		return
	}
	g.q = append(g.q, f)
}

func (g *startGate) release() {
	g.open = true
	for _, f := range g.q {
		f()
	}
	g.q = nil
}

// gatedSource holds its inner source's loads behind the start gate.
type gatedSource struct {
	inner core.BlockSource
	gate  *startGate
}

func (s *gatedSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	s.gate.run(func() { s.inner.Load(p, capacity, done) })
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over the
// weight-normalized rates x_i = rate_i / weight_i.
func jainIndex(rates []float64, weight func(int) int) float64 {
	var sum, sum2 float64
	for i, r := range rates {
		x := r / float64(weight(i))
		sum += x
		sum2 += x * x
	}
	if sum2 <= 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sum2)
}

// RunRFTP executes one modeled RFTP transfer on the testbed and reports
// bandwidth and CPU.
func RunRFTP(tb Testbed, opt RFTPOptions) (RunResult, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	sched := sim.New(opt.Seed)
	fab := simfabric.New(sched)
	srcHost := hostmodel.NewHost(sched, "src", tb.CoresTotal, tb.Host)
	dstHost := hostmodel.NewHost(sched, "dst", tb.CoresTotal, tb.Host)
	srcDev := fab.NewDevice("hca0", srcHost, tb.NIC)
	dstDev := fab.NewDevice("hca1", dstHost, tb.NIC)
	fab.Connect(srcDev, dstDev, tb.Link)

	srcLoop := srcHost.NewThread("rftp-src")
	dstLoop := dstHost.NewThread("rftp-sink")
	loader := srcHost.NewThread("loader")
	storer := dstHost.NewThread("storer")
	var loaders, storers []*hostmodel.Thread
	for i := 1; i < opt.Loaders; i++ {
		loaders = append(loaders, srcHost.NewThread(fmt.Sprintf("loader%d", i)))
	}
	if loaders != nil {
		loaders = append([]*hostmodel.Thread{loader}, loaders...)
	}
	for i := 1; i < opt.Storers; i++ {
		storers = append(storers, dstHost.NewThread(fmt.Sprintf("storer%d", i)))
	}
	if storers != nil {
		storers = append([]*hostmodel.Thread{storer}, storers...)
	}

	cfg := opt.Config
	cfg.ModelPayload = true
	if cfg.LoadProbe == nil && cfg.TransferMode == core.ModeHybrid {
		// The hybrid controller's CPU signal: the co-located job's share
		// of the source host, as an OS load probe would report it.
		busy := opt.SrcBusy
		cfg.LoadProbe = func() float64 { return busy }
	}
	sessions := opt.Sessions
	if sessions < 1 {
		sessions = 1
	}
	if sessions > 1 {
		if cfg.MaxSessions > 0 && cfg.MaxSessions < sessions {
			cfg.MaxSessions = sessions
		}
		if len(cfg.TenantWeights) == 0 {
			cfg.TenantWeights = opt.SessionWeights
		}
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return RunResult{}, err
	}
	reactors := opt.Reactors
	if reactors < 1 {
		reactors = 1
	}
	if reactors > cfg.Channels {
		reactors = cfg.Channels
	}
	srcLoops := []verbs.Loop{srcLoop}
	dstLoops := []verbs.Loop{dstLoop}
	for i := 1; i < reactors; i++ {
		srcLoops = append(srcLoops, srcHost.NewThread(fmt.Sprintf("rftp-src-shard%d", i)))
		dstLoops = append(dstLoops, dstHost.NewThread(fmt.Sprintf("rftp-sink-shard%d", i)))
	}
	// Both control rings are sized for the tenant count: the sink's
	// absorbs the admission storm, the source's the SESSION_RESP /
	// grant bursts coming back.
	epSessions := sessions
	if cap := cfg.MaxSessions + cfg.SessionQueue; cap > epSessions {
		epSessions = cap
	}
	srcEP, err := core.NewServiceEndpoint(srcDev, srcLoops, cfg.Channels, cfg.IODepth, epSessions)
	if err != nil {
		return RunResult{}, err
	}
	dstEP, err := core.NewServiceEndpoint(dstDev, dstLoops, cfg.Channels, cfg.IODepth, epSessions)
	if err != nil {
		return RunResult{}, err
	}
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		return RunResult{}, err
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			return RunResult{}, err
		}
	}
	sink, err := core.NewSink(dstEP, cfg)
	if err != nil {
		return RunResult{}, err
	}
	var arr *diskmodel.Array
	if opt.Disk {
		if opt.DiskCfg.RateBps == 0 {
			opt.DiskCfg = diskmodel.DefaultArray()
		}
		arr = diskmodel.NewArray(sched, opt.DiskCfg)
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return diskSink{arr: arr, th: storer, mode: opt.DiskMode}
		}
	} else {
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return &core.ModelSink{Storer: storer, Storers: storers, NsPerByte: tb.Host.MemStoreNsPerByte}
		}
	}
	source, err := core.NewSource(srcEP, cfg)
	if err != nil {
		return RunResult{}, err
	}
	if opt.Telemetry != nil {
		srcDev.Telemetry = telemetry.NewFabricMetrics(opt.Telemetry.Child("src_fabric"))
		dstDev.Telemetry = telemetry.NewFabricMetrics(opt.Telemetry.Child("dst_fabric"))
		source.AttachTelemetry(opt.Telemetry.Child("source"))
		sink.AttachTelemetry(opt.Telemetry.Child("sink"))
		if opt.SpanSample > 0 {
			source.AttachSpans(opt.Telemetry.Child("source"), opt.SpanSample)
			sink.AttachSpans(opt.Telemetry.Child("sink"), opt.SpanSample)
		}
	}

	// Per-tenant byte shares, proportional to scheduler weight, so a
	// fair schedule makes every tenant finish at the same time.
	weight := func(i int) int {
		if len(opt.SessionWeights) == 0 {
			return 1
		}
		if w := opt.SessionWeights[i%len(opt.SessionWeights)]; w > 0 {
			return w
		}
		return 1
	}
	perSess := make([]int64, sessions)
	var totW int64
	for i := range perSess {
		totW += int64(weight(i))
	}
	for i := range perSess {
		perSess[i] = opt.TotalBytes * int64(weight(i)) / totW
		if min := int64(cfg.PayloadCapacity()); perSess[i] < min {
			perSess[i] = min
		}
	}

	var srcErr error
	srcLeft, sinkLeft := sessions, sessions
	var startAt time.Duration
	ends := make([]time.Duration, sessions)
	bytesDone := make([]int64, sessions)
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) { sinkLeft-- }
	// Multi-tenant runs gate every session's first load on an admission
	// barrier (open all flows, then measure — the standard fairness
	// methodology). Without it, early-admitted tenants run their whole
	// short job before the rest are even open, and the fairness index
	// measures the admission ramp instead of the credit scheduler.
	var gate *startGate
	if sessions > 1 && !opt.SrcDisk {
		gate = &startGate{}
		admitted := 0
		sink.OnSessionOpen = func(core.SessionInfo) {
			admitted++
			if admitted == sessions {
				srcLoop.Post(0, func() {
					startAt = sched.Now()
					gate.release()
				})
			}
		}
	}
	// The competing job: a fixed fraction of every source protocol
	// thread's quantum, interleaving with protocol work through the
	// threads' FIFO CPU model until the transfer drains. The loader
	// threads are spared — the job competes for the reactor cores, not
	// the storage pipeline, so the contrast between the modes is the
	// data-path CPU they place on the squeezed threads.
	if opt.SrcBusy > 0 {
		const busyQuantum = 20 * time.Microsecond
		busyCost := time.Duration(opt.SrcBusy * float64(busyQuantum))
		var busyTick func()
		busyTick = func() {
			if srcLeft == 0 && sinkLeft == 0 {
				return
			}
			for _, l := range srcLoops {
				l.(*hostmodel.Thread).Post(busyCost, func() {})
			}
			sched.After(busyQuantum, busyTick)
		}
		sched.After(busyQuantum, busyTick)
	}
	var negoErr error
	srcBusy0, dstBusy0 := srcHost.BusyTotal(), dstHost.BusyTotal()
	copied0 := verbs.CopiedBytes()
	if sessions > 1 {
		runtime.GC() // settle the heap so the per-tenant memory delta is retained growth
	}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var srcArr *diskmodel.Array
	if opt.SrcDisk {
		acfg := opt.SrcDiskCfg
		if acfg.RateBps == 0 {
			acfg = diskmodel.DefaultArray()
		}
		srcArr = diskmodel.NewArray(sched, acfg)
	}
	source.Start(func(err error) {
		if err != nil {
			negoErr = err
			return
		}
		startAt = sched.Now()
		for i := 0; i < sessions; i++ {
			i := i
			var src core.BlockSource
			if srcArr != nil {
				src = &diskSource{arr: srcArr, th: loader, mode: opt.SrcDiskMode, total: perSess[i]}
			} else {
				src = &core.ModelSource{Total: perSess[i], Loader: loader, Loaders: loaders, NsPerByte: tb.Host.MemLoadNsPerByte}
			}
			if gate != nil {
				src = &gatedSource{inner: src, gate: gate}
			}
			source.Transfer(src, perSess[i], func(r core.TransferResult) {
				if r.Err != nil && srcErr == nil {
					srcErr = r.Err
				}
				bytesDone[i], ends[i] = r.Bytes, sched.Now()
				srcLeft--
			})
		}
	})
	sched.RunAll()
	if sessions > 1 {
		runtime.GC()
	}
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	copied1 := verbs.CopiedBytes()
	if negoErr != nil {
		return RunResult{}, negoErr
	}
	if srcErr != nil {
		return RunResult{}, srcErr
	}
	if srcLeft != 0 || sinkLeft != 0 {
		return RunResult{}, fmt.Errorf("bench: RFTP transfer did not complete (%d source / %d sink sessions outstanding)", srcLeft, sinkLeft)
	}
	st := source.Stats()
	sinkSt := sink.Stats()
	elapsed := st.Elapsed()
	res := RunResult{
		Tool:          "RFTP",
		BandwidthGbps: st.BandwidthGbps(),
		Bytes:         st.Bytes,
		Elapsed:       elapsed,
		Stalls:        st.CreditStalls,
		CtrlMsgs:      st.CtrlMsgs + sinkSt.CtrlMsgs,
		RNR:           srcDev.RNRNaks + dstDev.RNRNaks,
	}
	if sinkSt.GrantMsgs > 0 {
		res.GrantBatchMean = float64(sinkSt.CreditsGranted) / float64(sinkSt.GrantMsgs)
	}
	if st.Blocks > 0 {
		res.CtrlPerBlock = float64(res.CtrlMsgs) / float64(st.Blocks)
		res.AllocsPerBlock = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Blocks)
		res.CopiedPerBlock = float64(copied1-copied0) / float64(st.Blocks)
	}
	res.Sessions = sessions
	if sessions > 1 {
		rates := make([]float64, sessions)
		for i := range rates {
			if d := (ends[i] - startAt).Seconds(); d > 0 {
				rates[i] = float64(bytesDone[i]) * 8 / d / 1e9
			}
		}
		res.SessionGbps = rates
		res.JainIndex = jainIndex(rates, weight)
		if ms1.HeapAlloc > ms0.HeapAlloc {
			res.MemPerSession = float64(ms1.HeapAlloc-ms0.HeapAlloc) / float64(sessions)
		}
	}
	if elapsed > 0 {
		res.ClientCPU = 100 * float64(srcHost.BusyTotal()-srcBusy0) / float64(elapsed)
		res.ServerCPU = 100 * float64(dstHost.BusyTotal()-dstBusy0) / float64(elapsed)
	}
	if opt.Telemetry != nil && opt.SpanSample > 0 {
		if cause, ns, share := spans.TopStall(opt.Telemetry.Snapshot()); ns > 0 {
			res.TopStall = cause
			res.TopStallShare = share
		}
	}
	return res, nil
}

// diskSource adapts the RAID array model to the protocol's
// BlockSourceAt: each load is one spindle read, so the device only
// reaches aggregate bandwidth when the protocol keeps LoadDepth reads
// outstanding.
type diskSource struct {
	arr   *diskmodel.Array
	th    *hostmodel.Thread
	mode  diskmodel.Mode
	total int64

	cursor int64 // serial Load path only
}

// Load implements core.BlockSource (serial reads).
func (d *diskSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	off := d.cursor
	d.cursor += int64(capacity)
	d.LoadAt(p, capacity, uint64(off), done)
}

// LoadAt implements core.BlockSourceAt.
func (d *diskSource) LoadAt(p []byte, capacity int, off uint64, done func(int, bool, error)) {
	remaining := d.total - int64(off)
	if remaining <= 0 {
		done(0, true, nil)
		return
	}
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	eof := int64(off)+n >= d.total
	d.arr.Read(d.th, d.mode, int(n), func() { done(int(n), eof, nil) })
}

// diskSink adapts the RAID array model to the protocol's BlockSink.
type diskSink struct {
	arr  *diskmodel.Array
	th   *hostmodel.Thread
	mode diskmodel.Mode
}

// Store implements core.BlockSink.
func (d diskSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	d.arr.Write(d.th, d.mode, modelLen, func() { done(nil) })
}

// GridFTPOptions configures one GridFTP baseline run.
type GridFTPOptions struct {
	Streams    int
	BlockSize  int
	TotalBytes int64
	Variant    tcpmodel.Variant // zero value: use the testbed's
	UseTBCC    bool             // take the variant from the testbed
	Disk       bool
	DiskMode   diskmodel.Mode
	Seed       int64
	// Telemetry, when non-nil, instruments the transfer (per-stream cwnd
	// and retransmit metrics, server backlog, bottleneck drops).
	Telemetry *telemetry.Registry
}

// runGridFTPThreads runs the multi-threaded-client counterfactual.
func runGridFTPThreads(tb Testbed, threads int, total int64) (RunResult, error) {
	sched := sim.New(1)
	path := tcpmodel.NewPath(sched, tcpmodel.PathConfig{
		RateBps: tb.Link.RateBps, RTT: tb.RTT, SegBytes: tb.TCPSegBytes,
	})
	client := hostmodel.NewHost(sched, "client", tb.CoresTotal, tb.Host)
	server := hostmodel.NewHost(sched, "server", tb.CoresTotal, tb.Host)
	tr := gridftp.New(sched, path, client, server, gridftp.Config{
		Streams: 8, BlockSize: 4 << 20, TotalBytes: total,
		Variant: tb.TCPVariant, ClientThreads: threads,
	})
	var got *gridftp.Stats
	tr.Start(func(s gridftp.Stats) { got = &s })
	sched.RunAll()
	if got == nil {
		return RunResult{}, fmt.Errorf("bench: threaded GridFTP transfer did not complete")
	}
	return RunResult{
		Tool:          "GridFTP",
		BandwidthGbps: got.BandwidthGbps(),
		Bytes:         got.Bytes,
		Elapsed:       got.Elapsed(),
		ClientCPU:     got.ClientCPU,
		ServerCPU:     got.ServerCPU,
		Retrans:       got.Retrans,
	}, nil
}

// RunGridFTP executes one modeled GridFTP transfer on the testbed.
func RunGridFTP(tb Testbed, opt GridFTPOptions) (RunResult, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	sched := sim.New(opt.Seed)
	path := tcpmodel.NewPath(sched, tcpmodel.PathConfig{
		RateBps:  tb.Link.RateBps,
		RTT:      tb.RTT,
		SegBytes: tb.TCPSegBytes,
	})
	client := hostmodel.NewHost(sched, "client", tb.CoresTotal, tb.Host)
	server := hostmodel.NewHost(sched, "server", tb.CoresTotal, tb.Host)
	variant := opt.Variant
	if opt.UseTBCC {
		variant = tb.TCPVariant
	}
	cfg := gridftp.Config{
		Streams:    opt.Streams,
		BlockSize:  opt.BlockSize,
		TotalBytes: opt.TotalBytes,
		Variant:    variant,
	}
	if opt.Disk {
		cfg.Disk = diskmodel.NewArray(sched, diskmodel.DefaultArray())
		cfg.DiskMode = opt.DiskMode
	}
	tr := gridftp.New(sched, path, client, server, cfg)
	if opt.Telemetry != nil {
		tr.AttachTelemetry(opt.Telemetry)
	}
	var got *gridftp.Stats
	clientBusy0, serverBusy0 := client.BusyTotal(), server.BusyTotal()
	tr.Start(func(s gridftp.Stats) { got = &s })
	sched.RunAll()
	if got == nil {
		return RunResult{}, fmt.Errorf("bench: GridFTP transfer did not complete")
	}
	elapsed := got.Elapsed()
	res := RunResult{
		Tool:          "GridFTP",
		BandwidthGbps: got.BandwidthGbps(),
		Bytes:         got.Bytes,
		Elapsed:       elapsed,
		Retrans:       got.Retrans,
	}
	if elapsed > 0 {
		// Whole-host CPU, like the paper's nmon methodology.
		res.ClientCPU = 100 * float64(client.BusyTotal()-clientBusy0) / float64(elapsed)
		res.ServerCPU = 100 * float64(server.BusyTotal()-serverBusy0) / float64(elapsed)
	}
	return res, nil
}
