package bench

import (
	"fmt"
	"runtime"
	"time"

	"rftp/internal/core"
	"rftp/internal/diskmodel"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/gridftp"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/spans"
	"rftp/internal/tcpmodel"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// RFTPOptions configures one RFTP run on a testbed.
type RFTPOptions struct {
	Config     core.Config
	TotalBytes int64
	// Disk routes the sink to a modeled RAID array.
	Disk     bool
	DiskMode diskmodel.Mode
	DiskCfg  diskmodel.ArrayConfig
	// SrcDisk routes the source to a modeled RAID array: loads become
	// spindle-parallel reads whose latency only overlaps when
	// Config.LoadDepth keeps several in flight (the load-depth
	// ablation's disk-bound regime).
	SrcDisk     bool
	SrcDiskMode diskmodel.Mode
	SrcDiskCfg  diskmodel.ArrayConfig
	// Loaders / Storers spread memory-model loads/stores over N CPU
	// threads (0 or 1 = the single dedicated thread).
	Loaders int
	Storers int
	// Reactors shards the data-channel hot path over N per-core event
	// loops on each host (0 or 1 = the classic single reactor). Shard 0
	// keeps the control plane; extra shards own disjoint channel groups
	// with their own completion queues, so posting and completion CPU
	// spreads across cores. Clamped to Config.Channels.
	Reactors int
	Seed     int64
	// Telemetry, when non-nil, instruments the run: source/sink protocol
	// metrics and per-device fabric metrics are registered as children.
	// Nil runs stay uninstrumented (and measure the disabled-path cost).
	Telemetry *telemetry.Registry
	// SpanSample, with Telemetry set, records block lifecycle spans and
	// pipeline stall attribution for 1 in N blocks (0 = off, 1 = every
	// block). Drives the stall-attrib columns and the Fig3b flip test.
	SpanSample int
}

// RunResult is a normalized result row for either tool.
type RunResult struct {
	Tool          string
	BandwidthGbps float64
	// ClientCPU / ServerCPU are percent of one core, whole host
	// (protocol threads + loader/storer), matching how the paper reads
	// nmon.
	ClientCPU float64
	ServerCPU float64
	Bytes     int64
	Elapsed   time.Duration
	// Stalls is the source credit-starvation count (RFTP only).
	Stalls int64
	// CtrlMsgs counts control messages (RFTP only).
	CtrlMsgs int64
	// CtrlPerBlock is control messages per transferred block across both
	// endpoints — the figure of merit for control-plane coalescing
	// (RFTP only).
	CtrlPerBlock float64
	// GrantBatchMean is the mean credits per MR_INFO_RESPONSE the sink
	// emitted: 1.0 means no coalescing, MaxCreditsPerMsg is the wire
	// ceiling (RFTP only).
	GrantBatchMean float64
	// Retrans counts TCP retransmissions (GridFTP only).
	Retrans uint64
	// RNR counts fabric receiver-not-ready NAKs (RFTP only).
	RNR uint64
	// AllocsPerBlock is heap allocations per transferred block across the
	// whole run (protocol machinery + simulator), from runtime.MemStats.
	// Tracks data-path allocation churn across revisions (RFTP only).
	AllocsPerBlock float64
	// CopiedPerBlock is CPU-copied payload bytes per block, from
	// verbs.CopiedBytes. Zero-copy placement keeps it near zero even as
	// block sizes grow (RFTP only).
	CopiedPerBlock float64
	// TopStall names the dominant pipeline stall cause from the span
	// layer's attributor ("" when spans were off or nothing stalled) and
	// TopStallShare its fraction of total attributed stall time
	// (RFTP runs with Telemetry + SpanSample only).
	TopStall      string
	TopStallShare float64
}

// RunRFTP executes one modeled RFTP transfer on the testbed and reports
// bandwidth and CPU.
func RunRFTP(tb Testbed, opt RFTPOptions) (RunResult, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	sched := sim.New(opt.Seed)
	fab := simfabric.New(sched)
	srcHost := hostmodel.NewHost(sched, "src", tb.CoresTotal, tb.Host)
	dstHost := hostmodel.NewHost(sched, "dst", tb.CoresTotal, tb.Host)
	srcDev := fab.NewDevice("hca0", srcHost, tb.NIC)
	dstDev := fab.NewDevice("hca1", dstHost, tb.NIC)
	fab.Connect(srcDev, dstDev, tb.Link)

	srcLoop := srcHost.NewThread("rftp-src")
	dstLoop := dstHost.NewThread("rftp-sink")
	loader := srcHost.NewThread("loader")
	storer := dstHost.NewThread("storer")
	var loaders, storers []*hostmodel.Thread
	for i := 1; i < opt.Loaders; i++ {
		loaders = append(loaders, srcHost.NewThread(fmt.Sprintf("loader%d", i)))
	}
	if loaders != nil {
		loaders = append([]*hostmodel.Thread{loader}, loaders...)
	}
	for i := 1; i < opt.Storers; i++ {
		storers = append(storers, dstHost.NewThread(fmt.Sprintf("storer%d", i)))
	}
	if storers != nil {
		storers = append([]*hostmodel.Thread{storer}, storers...)
	}

	cfg := opt.Config
	cfg.ModelPayload = true
	cfg, err := cfg.Normalize()
	if err != nil {
		return RunResult{}, err
	}
	reactors := opt.Reactors
	if reactors < 1 {
		reactors = 1
	}
	if reactors > cfg.Channels {
		reactors = cfg.Channels
	}
	srcLoops := []verbs.Loop{srcLoop}
	dstLoops := []verbs.Loop{dstLoop}
	for i := 1; i < reactors; i++ {
		srcLoops = append(srcLoops, srcHost.NewThread(fmt.Sprintf("rftp-src-shard%d", i)))
		dstLoops = append(dstLoops, dstHost.NewThread(fmt.Sprintf("rftp-sink-shard%d", i)))
	}
	srcEP, err := core.NewShardedEndpoint(srcDev, srcLoops, cfg.Channels, cfg.IODepth)
	if err != nil {
		return RunResult{}, err
	}
	dstEP, err := core.NewShardedEndpoint(dstDev, dstLoops, cfg.Channels, cfg.IODepth)
	if err != nil {
		return RunResult{}, err
	}
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		return RunResult{}, err
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			return RunResult{}, err
		}
	}
	sink, err := core.NewSink(dstEP, cfg)
	if err != nil {
		return RunResult{}, err
	}
	var arr *diskmodel.Array
	if opt.Disk {
		if opt.DiskCfg.RateBps == 0 {
			opt.DiskCfg = diskmodel.DefaultArray()
		}
		arr = diskmodel.NewArray(sched, opt.DiskCfg)
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return diskSink{arr: arr, th: storer, mode: opt.DiskMode}
		}
	} else {
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return &core.ModelSink{Storer: storer, Storers: storers, NsPerByte: tb.Host.MemStoreNsPerByte}
		}
	}
	source, err := core.NewSource(srcEP, cfg)
	if err != nil {
		return RunResult{}, err
	}
	if opt.Telemetry != nil {
		srcDev.Telemetry = telemetry.NewFabricMetrics(opt.Telemetry.Child("src_fabric"))
		dstDev.Telemetry = telemetry.NewFabricMetrics(opt.Telemetry.Child("dst_fabric"))
		source.AttachTelemetry(opt.Telemetry.Child("source"))
		sink.AttachTelemetry(opt.Telemetry.Child("sink"))
		if opt.SpanSample > 0 {
			source.AttachSpans(opt.Telemetry.Child("source"), opt.SpanSample)
			sink.AttachSpans(opt.Telemetry.Child("sink"), opt.SpanSample)
		}
	}

	var srcRes core.TransferResult
	srcDone := false
	sinkDone := false
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) { sinkDone = true }
	var negoErr error
	srcBusy0, dstBusy0 := srcHost.BusyTotal(), dstHost.BusyTotal()
	copied0 := verbs.CopiedBytes()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	source.Start(func(err error) {
		if err != nil {
			negoErr = err
			return
		}
		var src core.BlockSource
		if opt.SrcDisk {
			cfg := opt.SrcDiskCfg
			if cfg.RateBps == 0 {
				cfg = diskmodel.DefaultArray()
			}
			src = &diskSource{
				arr: diskmodel.NewArray(sched, cfg), th: loader,
				mode: opt.SrcDiskMode, total: opt.TotalBytes,
			}
		} else {
			src = &core.ModelSource{Total: opt.TotalBytes, Loader: loader, Loaders: loaders, NsPerByte: tb.Host.MemLoadNsPerByte}
		}
		source.Transfer(src, opt.TotalBytes, func(r core.TransferResult) {
			srcRes = r
			srcDone = true
		})
	})
	sched.RunAll()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	copied1 := verbs.CopiedBytes()
	if negoErr != nil {
		return RunResult{}, negoErr
	}
	if !srcDone || !sinkDone {
		return RunResult{}, fmt.Errorf("bench: RFTP transfer did not complete (src=%v sink=%v)", srcDone, sinkDone)
	}
	if srcRes.Err != nil {
		return RunResult{}, srcRes.Err
	}
	st := source.Stats()
	sinkSt := sink.Stats()
	elapsed := st.Elapsed()
	res := RunResult{
		Tool:          "RFTP",
		BandwidthGbps: st.BandwidthGbps(),
		Bytes:         st.Bytes,
		Elapsed:       elapsed,
		Stalls:        st.CreditStalls,
		CtrlMsgs:      st.CtrlMsgs + sinkSt.CtrlMsgs,
		RNR:           srcDev.RNRNaks + dstDev.RNRNaks,
	}
	if sinkSt.GrantMsgs > 0 {
		res.GrantBatchMean = float64(sinkSt.CreditsGranted) / float64(sinkSt.GrantMsgs)
	}
	if srcRes.Blocks > 0 {
		res.CtrlPerBlock = float64(res.CtrlMsgs) / float64(srcRes.Blocks)
		res.AllocsPerBlock = float64(ms1.Mallocs-ms0.Mallocs) / float64(srcRes.Blocks)
		res.CopiedPerBlock = float64(copied1-copied0) / float64(srcRes.Blocks)
	}
	if elapsed > 0 {
		res.ClientCPU = 100 * float64(srcHost.BusyTotal()-srcBusy0) / float64(elapsed)
		res.ServerCPU = 100 * float64(dstHost.BusyTotal()-dstBusy0) / float64(elapsed)
	}
	if opt.Telemetry != nil && opt.SpanSample > 0 {
		if cause, ns, share := spans.TopStall(opt.Telemetry.Snapshot()); ns > 0 {
			res.TopStall = cause
			res.TopStallShare = share
		}
	}
	return res, nil
}

// diskSource adapts the RAID array model to the protocol's
// BlockSourceAt: each load is one spindle read, so the device only
// reaches aggregate bandwidth when the protocol keeps LoadDepth reads
// outstanding.
type diskSource struct {
	arr   *diskmodel.Array
	th    *hostmodel.Thread
	mode  diskmodel.Mode
	total int64

	cursor int64 // serial Load path only
}

// Load implements core.BlockSource (serial reads).
func (d *diskSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	off := d.cursor
	d.cursor += int64(capacity)
	d.LoadAt(p, capacity, uint64(off), done)
}

// LoadAt implements core.BlockSourceAt.
func (d *diskSource) LoadAt(p []byte, capacity int, off uint64, done func(int, bool, error)) {
	remaining := d.total - int64(off)
	if remaining <= 0 {
		done(0, true, nil)
		return
	}
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	eof := int64(off)+n >= d.total
	d.arr.Read(d.th, d.mode, int(n), func() { done(int(n), eof, nil) })
}

// diskSink adapts the RAID array model to the protocol's BlockSink.
type diskSink struct {
	arr  *diskmodel.Array
	th   *hostmodel.Thread
	mode diskmodel.Mode
}

// Store implements core.BlockSink.
func (d diskSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	d.arr.Write(d.th, d.mode, modelLen, func() { done(nil) })
}

// GridFTPOptions configures one GridFTP baseline run.
type GridFTPOptions struct {
	Streams    int
	BlockSize  int
	TotalBytes int64
	Variant    tcpmodel.Variant // zero value: use the testbed's
	UseTBCC    bool             // take the variant from the testbed
	Disk       bool
	DiskMode   diskmodel.Mode
	Seed       int64
	// Telemetry, when non-nil, instruments the transfer (per-stream cwnd
	// and retransmit metrics, server backlog, bottleneck drops).
	Telemetry *telemetry.Registry
}

// runGridFTPThreads runs the multi-threaded-client counterfactual.
func runGridFTPThreads(tb Testbed, threads int, total int64) (RunResult, error) {
	sched := sim.New(1)
	path := tcpmodel.NewPath(sched, tcpmodel.PathConfig{
		RateBps: tb.Link.RateBps, RTT: tb.RTT, SegBytes: tb.TCPSegBytes,
	})
	client := hostmodel.NewHost(sched, "client", tb.CoresTotal, tb.Host)
	server := hostmodel.NewHost(sched, "server", tb.CoresTotal, tb.Host)
	tr := gridftp.New(sched, path, client, server, gridftp.Config{
		Streams: 8, BlockSize: 4 << 20, TotalBytes: total,
		Variant: tb.TCPVariant, ClientThreads: threads,
	})
	var got *gridftp.Stats
	tr.Start(func(s gridftp.Stats) { got = &s })
	sched.RunAll()
	if got == nil {
		return RunResult{}, fmt.Errorf("bench: threaded GridFTP transfer did not complete")
	}
	return RunResult{
		Tool:          "GridFTP",
		BandwidthGbps: got.BandwidthGbps(),
		Bytes:         got.Bytes,
		Elapsed:       got.Elapsed(),
		ClientCPU:     got.ClientCPU,
		ServerCPU:     got.ServerCPU,
		Retrans:       got.Retrans,
	}, nil
}

// RunGridFTP executes one modeled GridFTP transfer on the testbed.
func RunGridFTP(tb Testbed, opt GridFTPOptions) (RunResult, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	sched := sim.New(opt.Seed)
	path := tcpmodel.NewPath(sched, tcpmodel.PathConfig{
		RateBps:  tb.Link.RateBps,
		RTT:      tb.RTT,
		SegBytes: tb.TCPSegBytes,
	})
	client := hostmodel.NewHost(sched, "client", tb.CoresTotal, tb.Host)
	server := hostmodel.NewHost(sched, "server", tb.CoresTotal, tb.Host)
	variant := opt.Variant
	if opt.UseTBCC {
		variant = tb.TCPVariant
	}
	cfg := gridftp.Config{
		Streams:    opt.Streams,
		BlockSize:  opt.BlockSize,
		TotalBytes: opt.TotalBytes,
		Variant:    variant,
	}
	if opt.Disk {
		cfg.Disk = diskmodel.NewArray(sched, diskmodel.DefaultArray())
		cfg.DiskMode = opt.DiskMode
	}
	tr := gridftp.New(sched, path, client, server, cfg)
	if opt.Telemetry != nil {
		tr.AttachTelemetry(opt.Telemetry)
	}
	var got *gridftp.Stats
	clientBusy0, serverBusy0 := client.BusyTotal(), server.BusyTotal()
	tr.Start(func(s gridftp.Stats) { got = &s })
	sched.RunAll()
	if got == nil {
		return RunResult{}, fmt.Errorf("bench: GridFTP transfer did not complete")
	}
	elapsed := got.Elapsed()
	res := RunResult{
		Tool:          "GridFTP",
		BandwidthGbps: got.BandwidthGbps(),
		Bytes:         got.Bytes,
		Elapsed:       elapsed,
		Retrans:       got.Retrans,
	}
	if elapsed > 0 {
		// Whole-host CPU, like the paper's nmon methodology.
		res.ClientCPU = 100 * float64(client.BusyTotal()-clientBusy0) / float64(elapsed)
		res.ServerCPU = 100 * float64(server.BusyTotal()-serverBusy0) / float64(elapsed)
	}
	return res, nil
}
