package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// FormatBlockSize renders a byte count the way the paper labels its
// x-axes (64K, 4M, ...).
func FormatBlockSize(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// WriteTable renders rows as an aligned text table.
func WriteTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "figure\ttestbed\ttool\tblock\tstreams\tdepth\tGbps\tclientCPU%\tserverCPU%\tstalls\tretrans\trnr\tallocs/op\tcopied/op\tloadlat(µs)\tstorelat(µs)\tctrl-msgs/op\tgrant-batch\tsessions\tgoodput_agg\tjain_index\tmem/sess\ttop-stall\tnote")
	for _, r := range rows {
		streams := ""
		if r.Streams > 0 {
			streams = fmt.Sprintf("%d", r.Streams)
		}
		depth := ""
		if r.Depth > 0 {
			depth = fmt.Sprintf("%d", r.Depth)
		}
		allocs, copied := "", ""
		if r.AllocsPerOp > 0 || r.CopiedPerOp > 0 {
			allocs = fmt.Sprintf("%.0f", r.AllocsPerOp)
			copied = fmt.Sprintf("%.0f", r.CopiedPerOp)
		}
		loadlat, storelat := "", ""
		if r.LoadLatUs > 0 {
			loadlat = fmt.Sprintf("%.0f", r.LoadLatUs)
		}
		if r.StoreLatUs > 0 {
			storelat = fmt.Sprintf("%.0f", r.StoreLatUs)
		}
		ctrlOp, grantBatch := "", ""
		if r.CtrlPerOp > 0 {
			ctrlOp = fmt.Sprintf("%.2f", r.CtrlPerOp)
		}
		if r.GrantBatch > 0 {
			grantBatch = fmt.Sprintf("%.1f", r.GrantBatch)
		}
		sessions, goodputAgg, jain, memSess := "", "", "", ""
		if r.Sessions > 0 {
			sessions = fmt.Sprintf("%d", r.Sessions)
			goodputAgg = fmt.Sprintf("%.2f", r.GoodputAgg)
			if r.Sessions > 1 {
				jain = fmt.Sprintf("%.3f", r.JainIndex)
				memSess = fmt.Sprintf("%.1fKiB", r.MemPerSess/1024)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%.2f\t%.0f\t%.0f\t%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Figure, r.Testbed, r.Tool, FormatBlockSize(r.BlockSize),
			streams, depth, r.Gbps, r.ClientCPU, r.ServerCPU,
			r.Stalls, r.Retrans, r.RNR, allocs, copied, loadlat, storelat, ctrlOp, grantBatch,
			sessions, goodputAgg, jain, memSess, r.TopStall, r.Note)
	}
	return tw.Flush()
}

// WriteCSV renders rows as CSV.
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "figure,testbed,tool,block_bytes,streams,depth,gbps,client_cpu_pct,server_cpu_pct,stalls,retrans,rnr,allocs_per_op,copied_bytes_per_op,load_lat_us,store_lat_us,ctrl_msgs_per_op,grant_batch_mean,sessions,goodput_agg,jain_index,mem_per_session,top_stall,note"); err != nil {
		return err
	}
	for _, r := range rows {
		note := strings.ReplaceAll(r.Note, ",", ";")
		topStall := strings.ReplaceAll(r.TopStall, ",", ";")
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%.3f,%.1f,%.1f,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%.3f,%.2f,%d,%.3f,%.4f,%.0f,%s,%s\n",
			r.Figure, r.Testbed, r.Tool, r.BlockSize, r.Streams, r.Depth,
			r.Gbps, r.ClientCPU, r.ServerCPU, r.Stalls, r.Retrans, r.RNR,
			r.AllocsPerOp, r.CopiedPerOp, r.LoadLatUs, r.StoreLatUs,
			r.CtrlPerOp, r.GrantBatch, r.Sessions, r.GoodputAgg, r.JainIndex, r.MemPerSess,
			topStall, note); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders rows as a JSON array, one Row object per element,
// for machine-readable CI artifacts (uploaded next to the benchfmt
// BENCH_<rev>.json snapshot).
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteTable1 renders the Table I testbed description.
func WriteTable1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tIB LAN\tRoCE LAN\tRoCE WAN")
	tbs := Testbeds()
	row := func(label string, f func(Testbed) string) {
		fmt.Fprintf(tw, "%s", label)
		for _, tb := range tbs {
			fmt.Fprintf(tw, "\t%s", f(tb))
		}
		fmt.Fprintln(tw)
	}
	row("CPU", func(t Testbed) string { return t.CPU })
	row("Cores", func(t Testbed) string { return fmt.Sprintf("%d", t.CoresTotal) })
	row("Mem (GB)", func(t Testbed) string { return fmt.Sprintf("%d", t.MemGB) })
	row("NIC (Gbps)", func(t Testbed) string { return fmt.Sprintf("%d", t.NICGbps) })
	row("OS", func(t Testbed) string { return t.OS })
	row("Kernel", func(t Testbed) string { return t.Kernel })
	row("OFED", func(t Testbed) string { return t.OFED })
	row("TCP CC", func(t Testbed) string { return t.TCPCC })
	row("MTU", func(t Testbed) string { return fmt.Sprintf("%d", t.MTU) })
	row("RTT", func(t Testbed) string { return t.RTT.String() })
	return tw.Flush()
}
