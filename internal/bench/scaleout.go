package bench

import (
	"fmt"

	"rftp/internal/core"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
)

// ScaleOut reproduces the programmatic context of the paper (the DOE
// ANI/ESnet goal of filling a 100 Gbps backbone with hosts that each
// have a 10 Gbps RoCE NIC): n independent RFTP host pairs share one
// 100 Gbps trunk. Aggregate bandwidth should scale linearly until the
// trunk saturates at ten pairs.
func ScaleOut(scale Scale) ([]Row, error) {
	var rows []Row
	for _, n := range []int{1, 2, 4, 8, 10, 12} {
		agg, err := runScaleOut(n, scale)
		if err != nil {
			return nil, fmt.Errorf("scale-out n=%d: %w", n, err)
		}
		rows = append(rows, Row{
			Figure: "scale-out", Testbed: "ANI-100G", Tool: "RFTP",
			BlockSize: 4 << 20, Streams: n,
			Gbps: agg,
			Note: fmt.Sprintf("%d pairs x 10G NIC over shared 100G trunk", n),
		})
	}
	return rows, nil
}

// runScaleOut runs n concurrent pairs and returns aggregate goodput.
func runScaleOut(n int, scale Scale) (float64, error) {
	tb := RoCEWAN()
	sched := sim.New(1)
	fab := simfabric.New(sched)
	bb := fab.NewBackbone(100e9)

	perPair := scale.bytes(4 << 30)
	type pairState struct {
		source *core.Source
		done   bool
	}
	pairs := make([]*pairState, n)
	var firstErr error
	for i := 0; i < n; i++ {
		srcHost := hostmodel.NewHost(sched, fmt.Sprintf("src%d", i), tb.CoresTotal, tb.Host)
		dstHost := hostmodel.NewHost(sched, fmt.Sprintf("dst%d", i), tb.CoresTotal, tb.Host)
		srcDev := fab.NewDevice(fmt.Sprintf("hca%d-a", i), srcHost, tb.NIC)
		dstDev := fab.NewDevice(fmt.Sprintf("hca%d-b", i), dstHost, tb.NIC)
		fab.ConnectVia(srcDev, dstDev, tb.Link, bb)

		srcLoop := srcHost.NewThread("rftp-src")
		dstLoop := dstHost.NewThread("rftp-sink")
		loader := srcHost.NewThread("loader")
		storer := dstHost.NewThread("storer")

		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 20
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		cfg.ModelPayload = true
		cfg, err := cfg.Normalize()
		if err != nil {
			return 0, err
		}
		srcEP, err := core.NewEndpoint(srcDev, srcLoop, cfg.Channels, cfg.IODepth)
		if err != nil {
			return 0, err
		}
		dstEP, err := core.NewEndpoint(dstDev, dstLoop, cfg.Channels, cfg.IODepth)
		if err != nil {
			return 0, err
		}
		if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
			return 0, err
		}
		for j := range srcEP.Data {
			if err := fab.ConnectQPs(srcEP.Data[j], dstEP.Data[j]); err != nil {
				return 0, err
			}
		}
		sink, err := core.NewSink(dstEP, cfg)
		if err != nil {
			return 0, err
		}
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return &core.ModelSink{Storer: storer, NsPerByte: tb.Host.MemStoreNsPerByte}
		}
		source, err := core.NewSource(srcEP, cfg)
		if err != nil {
			return 0, err
		}
		ps := &pairState{source: source}
		pairs[i] = ps
		source.Start(func(err error) {
			if err != nil {
				firstErr = err
				return
			}
			src := &core.ModelSource{Total: perPair, Loader: loader, NsPerByte: tb.Host.MemLoadNsPerByte}
			source.Transfer(src, perPair, func(r core.TransferResult) {
				if r.Err != nil && firstErr == nil {
					firstErr = r.Err
				}
				ps.done = true
			})
		})
	}
	sched.RunAll()
	if firstErr != nil {
		return 0, firstErr
	}
	var aggregate float64
	for i, ps := range pairs {
		if !ps.done {
			return 0, fmt.Errorf("pair %d never finished", i)
		}
		aggregate += ps.source.Stats().BandwidthGbps()
	}
	return aggregate, nil
}
