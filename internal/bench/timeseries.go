package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/gridftp"
	"rftp/internal/hostmodel"
	"rftp/internal/metrics"
	"rftp/internal/sim"
	"rftp/internal/tcpmodel"
	"rftp/internal/telemetry"
)

// TimeSeriesResult holds bandwidth-over-time curves for both tools from
// a cold start: the RFTP credit ramp versus TCP slow start.
type TimeSeriesResult struct {
	Testbed  string
	Interval time.Duration
	RFTP     metrics.Series
	GridFTP  metrics.Series
	// Summaries over the steady-state half of the window.
	RFTPSummary    metrics.Summary
	GridFTPSummary metrics.Summary
	// Telemetry snapshots taken when each run's window closed.
	RFTPTelemetry    *telemetry.Snapshot
	GridFTPTelemetry *telemetry.Snapshot
}

// TimeSeries runs both tools from a cold start on the testbed for the
// given window, sampling delivered bytes every interval.
func TimeSeries(tb Testbed, window, interval time.Duration, blockSize, streams int) (*TimeSeriesResult, error) {
	res := &TimeSeriesResult{Testbed: tb.Name, Interval: interval}

	// RFTP: a transfer large enough to outlast the window.
	{
		sched := sim.New(1)
		fab := simfabric.New(sched)
		srcHost := hostmodel.NewHost(sched, "src", tb.CoresTotal, tb.Host)
		dstHost := hostmodel.NewHost(sched, "dst", tb.CoresTotal, tb.Host)
		srcDev := fab.NewDevice("hca0", srcHost, tb.NIC)
		dstDev := fab.NewDevice("hca1", dstHost, tb.NIC)
		fab.Connect(srcDev, dstDev, tb.Link)
		srcLoop := srcHost.NewThread("rftp-src")
		dstLoop := dstHost.NewThread("rftp-sink")
		loader := srcHost.NewThread("loader")
		storer := dstHost.NewThread("storer")

		cfg := core.DefaultConfig()
		cfg.BlockSize = blockSize
		cfg.Channels = streams
		cfg.IODepth = rftpDepthFor(tb, blockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		cfg.ModelPayload = true
		cfg, err := cfg.Normalize()
		if err != nil {
			return nil, err
		}
		srcEP, err := core.NewEndpoint(srcDev, srcLoop, cfg.Channels, cfg.IODepth)
		if err != nil {
			return nil, err
		}
		dstEP, err := core.NewEndpoint(dstDev, dstLoop, cfg.Channels, cfg.IODepth)
		if err != nil {
			return nil, err
		}
		if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
			return nil, err
		}
		for i := range srcEP.Data {
			if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
				return nil, err
			}
		}
		sink, err := core.NewSink(dstEP, cfg)
		if err != nil {
			return nil, err
		}
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return &core.ModelSink{Storer: storer, NsPerByte: tb.Host.MemStoreNsPerByte}
		}
		source, err := core.NewSource(srcEP, cfg)
		if err != nil {
			return nil, err
		}
		reg := telemetry.NewRegistry("rftp")
		srcDev.Telemetry = telemetry.NewFabricMetrics(reg.Child("src_fabric"))
		dstDev.Telemetry = telemetry.NewFabricMetrics(reg.Child("dst_fabric"))
		source.AttachTelemetry(reg.Child("source"))
		sink.AttachTelemetry(reg.Child("sink"))
		// Enough data to outlast the window at line rate.
		total := int64(tb.Link.RateBps/8*window.Seconds()) * 2
		source.Start(func(err error) {
			if err != nil {
				return
			}
			src := &core.ModelSource{Total: total, Loader: loader, NsPerByte: tb.Host.MemLoadNsPerByte}
			source.Transfer(src, total, func(core.TransferResult) {})
		})
		sampler := metrics.NewRateSampler(interval)
		var sample func()
		sample = func() {
			sampler.Observe(sched.Now(), float64(source.Stats().Bytes)*8/1e9) // gigabits
			if sched.Now() < window {
				sched.After(interval, sample)
			}
		}
		sample()
		sched.Run(window + interval)
		sampler.Flush()
		res.RFTP = sampler.Series()
		res.RFTPTelemetry = reg.Snapshot()
	}

	// GridFTP on the same structural parameters.
	{
		sched := sim.New(1)
		path := tcpmodel.NewPath(sched, tcpmodel.PathConfig{
			RateBps: tb.Link.RateBps, RTT: tb.RTT, SegBytes: tb.TCPSegBytes,
		})
		client := hostmodel.NewHost(sched, "client", tb.CoresTotal, tb.Host)
		server := hostmodel.NewHost(sched, "server", tb.CoresTotal, tb.Host)
		total := int64(tb.Link.RateBps/8*window.Seconds()) * 2
		tr := gridftp.New(sched, path, client, server, gridftp.Config{
			Streams: streams, BlockSize: blockSize, TotalBytes: total, Variant: tb.TCPVariant,
		})
		greg := telemetry.NewRegistry("gridftp")
		tr.AttachTelemetry(greg)
		tr.Start(func(gridftp.Stats) {})
		sampler := metrics.NewRateSampler(interval)
		var sample func()
		sample = func() {
			sampler.Observe(sched.Now(), float64(tr.DeliveredBytes())*8/1e9)
			if sched.Now() < window {
				sched.After(interval, sample)
			}
		}
		sample()
		sched.Run(window + interval)
		sampler.Flush()
		res.GridFTP = sampler.Series()
		res.GridFTPTelemetry = greg.Snapshot()
	}

	res.RFTPSummary = steadySummary(res.RFTP)
	res.GridFTPSummary = steadySummary(res.GridFTP)
	return res, nil
}

// steadySummary summarizes the second half of a series (post-ramp).
func steadySummary(s metrics.Series) metrics.Summary {
	vals := s.Values()
	return metrics.Summarize(vals[len(vals)/2:])
}

// Render writes both curves side by side.
func (r *TimeSeriesResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "t\tRFTP Gbps\tGridFTP Gbps\n")
	n := len(r.RFTP.Points)
	if len(r.GridFTP.Points) > n {
		n = len(r.GridFTP.Points)
	}
	get := func(s metrics.Series, i int) string {
		if i >= len(s.Points) {
			return ""
		}
		return fmt.Sprintf("%.2f", s.Points[i].V)
	}
	for i := 0; i < n; i++ {
		var ts time.Duration
		if i < len(r.RFTP.Points) {
			ts = r.RFTP.Points[i].T
		} else {
			ts = r.GridFTP.Points[i].T
		}
		fmt.Fprintf(tw, "%v\t%s\t%s\n", ts.Round(time.Millisecond), get(r.RFTP, i), get(r.GridFTP, i))
	}
	fmt.Fprintf(tw, "steady mean\t%.2f\t%.2f\n", r.RFTPSummary.Mean, r.GridFTPSummary.Mean)
	fmt.Fprintf(tw, "steady CoV\t%.3f\t%.3f\n", r.RFTPSummary.CoefficientOfVar, r.GridFTPSummary.CoefficientOfVar)
	if err := tw.Flush(); err != nil {
		return err
	}
	return r.renderTelemetry(w)
}

// renderTelemetry summarizes each tool's instrumentation over the
// window: the flow-control story (credit stalls and latency vs cwnd and
// retransmits) behind the bandwidth curves above.
func (r *TimeSeriesResult) renderTelemetry(w io.Writer) error {
	if r.RFTPTelemetry == nil && r.GridFTPTelemetry == nil {
		return nil
	}
	fmt.Fprintln(w, "\n-- telemetry --")
	if src := r.RFTPTelemetry.Find("source"); src != nil {
		sink := r.RFTPTelemetry.Find("sink")
		rnr := r.RFTPTelemetry.Find("src_fabric").Counter("rnr_events") +
			r.RFTPTelemetry.Find("dst_fabric").Counter("rnr_events")
		credLat := sink.Histogram("credit_latency")
		postLat := src.Histogram("post_latency")
		fmt.Fprintf(w, "RFTP:    blocks=%d credit_stalls=%d rnr=%d credit_latency p50=%v p95=%v post_latency p50=%v p95=%v\n",
			src.Counter("blocks_posted"), src.Counter("credit_stalls"), rnr,
			time.Duration(credLat.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(credLat.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(postLat.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(postLat.Quantile(0.95)).Round(time.Microsecond))
	}
	if g := r.GridFTPTelemetry; g != nil {
		var retrans, timeouts int64
		var cwnd telemetry.HistogramSnapshot
		for _, child := range g.Children {
			if !strings.HasPrefix(child.Name, "stream") {
				continue
			}
			retrans += child.Counter("retransmits")
			timeouts += child.Counter("timeouts")
			if merged, err := cwnd.Merge(child.Histogram("cwnd_segments")); err == nil {
				cwnd = merged
			}
		}
		fmt.Fprintf(w, "GridFTP: retrans=%d timeouts=%d path_drops=%d cwnd_segs p50=%.0f p95=%.0f server_backlog p95=%v\n",
			retrans, timeouts, g.Find("path").Counter("drops"),
			float64(cwnd.Quantile(0.5)), float64(cwnd.Quantile(0.95)),
			time.Duration(g.Histogram("server_backlog").Quantile(0.95)).Round(time.Microsecond))
	}
	return nil
}
