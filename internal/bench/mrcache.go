package bench

import (
	"fmt"

	"rftp/internal/core"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// MRCacheReport summarizes pin-down cache behavior over a repeated-
// connection run (both endpoints combined).
type MRCacheReport struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// HitRate is hits/(hits+misses) across both caches.
	HitRate float64
	// Idle is the number of registrations parked in the caches at the
	// end of the run.
	Idle int
}

// RunRFTPRepeated drives conns sequential RFTP connections over one
// fabric, with each side's block pools drawing registrations from a
// shared pin-down MR cache: the first connection registers fresh
// regions (misses), every later one reuses them (hits). This is the
// registration-cost scenario the pin-down cache exists for — short
// repeated sessions where per-connection registration would otherwise
// dominate setup. With opt.Telemetry set, the caches are mirrored into
// the registry as src_mrcache / dst_mrcache counter groups.
func RunRFTPRepeated(tb Testbed, opt RFTPOptions, conns int) ([]RunResult, MRCacheReport, error) {
	if conns < 1 {
		conns = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	sched := sim.New(opt.Seed)
	fab := simfabric.New(sched)
	srcHost := hostmodel.NewHost(sched, "src", tb.CoresTotal, tb.Host)
	dstHost := hostmodel.NewHost(sched, "dst", tb.CoresTotal, tb.Host)
	srcDev := fab.NewDevice("hca0", srcHost, tb.NIC)
	dstDev := fab.NewDevice("hca1", dstHost, tb.NIC)
	fab.Connect(srcDev, dstDev, tb.Link)

	cfg := opt.Config
	cfg.ModelPayload = true
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, MRCacheReport{}, err
	}
	reactors := opt.Reactors
	if reactors < 1 {
		reactors = 1
	}
	if reactors > cfg.Channels {
		reactors = cfg.Channels
	}
	srcLoops := []verbs.Loop{srcHost.NewThread("rftp-src")}
	dstLoops := []verbs.Loop{dstHost.NewThread("rftp-sink")}
	for i := 1; i < reactors; i++ {
		srcLoops = append(srcLoops, srcHost.NewThread(fmt.Sprintf("rftp-src-shard%d", i)))
		dstLoops = append(dstLoops, dstHost.NewThread(fmt.Sprintf("rftp-sink-shard%d", i)))
	}
	loader := srcHost.NewThread("loader")
	storer := dstHost.NewThread("storer")

	// Generous bound: each teardown parks one full pool per side.
	srcCache := verbs.NewMRCache(srcDev, cfg.IODepth+cfg.SinkBlocks)
	dstCache := verbs.NewMRCache(dstDev, cfg.IODepth+cfg.SinkBlocks)
	if opt.Telemetry != nil {
		telemetry.AttachMRCache(opt.Telemetry.Child("src_mrcache"), srcCache)
		telemetry.AttachMRCache(opt.Telemetry.Child("dst_mrcache"), dstCache)
	}

	var results []RunResult
	for c := 0; c < conns; c++ {
		srcEP, err := core.NewShardedEndpoint(srcDev, srcLoops, cfg.Channels, cfg.IODepth)
		if err != nil {
			return nil, MRCacheReport{}, err
		}
		dstEP, err := core.NewShardedEndpoint(dstDev, dstLoops, cfg.Channels, cfg.IODepth)
		if err != nil {
			return nil, MRCacheReport{}, err
		}
		srcEP.MRCache = srcCache
		dstEP.MRCache = dstCache
		if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
			return nil, MRCacheReport{}, err
		}
		for i := range srcEP.Data {
			if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
				return nil, MRCacheReport{}, err
			}
		}
		sink, err := core.NewSink(dstEP, cfg)
		if err != nil {
			return nil, MRCacheReport{}, err
		}
		sink.NewWriter = func(core.SessionInfo) core.BlockSink {
			return &core.ModelSink{Storer: storer, NsPerByte: tb.Host.MemStoreNsPerByte}
		}
		source, err := core.NewSource(srcEP, cfg)
		if err != nil {
			return nil, MRCacheReport{}, err
		}
		var srcRes core.TransferResult
		srcDone, sinkDone := false, false
		sink.OnSessionDone = func(core.SessionInfo, core.TransferResult) { sinkDone = true }
		var negoErr error
		source.Start(func(err error) {
			if err != nil {
				negoErr = err
				return
			}
			src := &core.ModelSource{Total: opt.TotalBytes, Loader: loader, NsPerByte: tb.Host.MemLoadNsPerByte}
			source.Transfer(src, opt.TotalBytes, func(r core.TransferResult) {
				srcRes = r
				srcDone = true
			})
		})
		sched.RunAll()
		if negoErr != nil {
			return nil, MRCacheReport{}, negoErr
		}
		if !srcDone || !sinkDone {
			return nil, MRCacheReport{}, fmt.Errorf("bench: repeated RFTP conn %d did not complete (src=%v sink=%v)", c, srcDone, sinkDone)
		}
		if srcRes.Err != nil {
			return nil, MRCacheReport{}, srcRes.Err
		}
		st := source.Stats()
		results = append(results, RunResult{
			Tool:          "RFTP",
			BandwidthGbps: st.BandwidthGbps(),
			Bytes:         st.Bytes,
			Elapsed:       st.Elapsed(),
		})
		// Teardown releases both pools' registrations into the caches,
		// priming the next connection's hits.
		source.Close()
		sink.Close()
		sched.RunAll()
	}

	sh, sm, se := srcCache.Stats()
	dh, dm, de := dstCache.Stats()
	rep := MRCacheReport{
		Hits: sh + dh, Misses: sm + dm, Evictions: se + de,
		Idle: srcCache.Idle() + dstCache.Idle(),
	}
	if rep.Hits+rep.Misses > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Hits+rep.Misses)
	}
	return results, rep, nil
}
