package bench

import "testing"

// TestSessionScalingShape is the PR's acceptance criterion for the
// multi-tenant session manager: with tenants multiplexed over one
// connection's shared channels, aggregate goodput must stay within 10%
// of the single-session rate, Jain's fairness index must stay >= 0.95
// at equal weights, and per-tenant memory must not grow with the
// tenant count (the shared pool amortizes, it does not replicate).
func TestSessionScalingShape(t *testing.T) {
	counts := []int{1, 8, 64}
	res := map[int]RunResult{}
	for _, n := range counts {
		r, err := RunSessionScalePoint(n, nil, ScaleQuick)
		if err != nil {
			t.Fatalf("sessions=%d: %v", n, err)
		}
		res[n] = r
		t.Logf("sessions=%d: %.2f Gbps agg, jain=%.3f, mem/sess=%.0fB",
			n, r.BandwidthGbps, r.JainIndex, r.MemPerSession)
	}
	single := res[1].BandwidthGbps
	for _, n := range counts[1:] {
		r := res[n]
		if r.BandwidthGbps < 0.9*single {
			t.Errorf("sessions=%d aggregate %.2f Gbps < 90%% of single-session %.2f",
				n, r.BandwidthGbps, single)
		}
		if r.JainIndex < 0.95 {
			t.Errorf("sessions=%d jain=%.3f, want >= 0.95 (rates %v)",
				n, r.JainIndex, r.SessionGbps)
		}
		if len(r.SessionGbps) != n {
			t.Errorf("sessions=%d recorded %d per-session rates", n, len(r.SessionGbps))
		}
	}
	// Shared pool: per-tenant retained memory must shrink as tenants
	// multiply, not replicate per session.
	if m8, m64 := res[8].MemPerSession, res[64].MemPerSession; m8 > 0 && m64 > m8 {
		t.Errorf("mem/session grew with tenant count: 8 sessions %.0fB -> 64 sessions %.0fB", m8, m64)
	}
}

// TestSessionCtrlRingNoRNR is the receive-ring sizing gate: with the
// control ring sized from the admission cap (NewServiceEndpoint), the
// full tenant sweep — including the 1024-tenant point whose admission
// storm used to take hundreds of receiver-not-ready retries — must
// report zero fabric RNR NAKs on either endpoint.
func TestSessionCtrlRingNoRNR(t *testing.T) {
	for _, n := range SessionScaleCounts {
		r, err := RunSessionScalePoint(n, nil, ScaleQuick)
		if err != nil {
			t.Fatalf("sessions=%d: %v", n, err)
		}
		t.Logf("sessions=%d: rnr=%d, %.2f Gbps agg", n, r.RNR, r.BandwidthGbps)
		if r.RNR != 0 {
			t.Errorf("sessions=%d took %d control-plane RNR retries; the ring must be sized from the admission cap", n, r.RNR)
		}
	}
}

// TestSessionWeightedShares checks proportional scheduling: a 2:1
// weight split over 8 tenants must yield a goodput share ratio near 2.
func TestSessionWeightedShares(t *testing.T) {
	r, err := RunSessionScalePoint(8, []int{2, 1}, ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ShareRatio(r.SessionGbps, []int{2, 1})
	t.Logf("share-ratio=%.2f jain(weighted)=%.3f rates=%v", ratio, r.JainIndex, r.SessionGbps)
	if ratio < 1.5 || ratio > 2.7 {
		t.Errorf("2:1 weights gave share ratio %.2f, want ~2 (rates %v)", ratio, r.SessionGbps)
	}
	// Jain over weight-normalized rates: proportional shares are
	// "fair" once normalized by weight.
	if r.JainIndex < 0.95 {
		t.Errorf("weight-normalized jain=%.3f, want >= 0.95", r.JainIndex)
	}
}
