package bench

import (
	"bytes"
	"strings"
	"testing"

	"rftp/internal/core"
	"rftp/internal/diskmodel"
)

// Quick-scale smoke plus shape assertions: these tests verify the
// *qualitative* claims of each figure at reduced scale; full-scale runs
// live in cmd/experiments and the repo-root benchmarks.

func TestTestbedsMatchTableI(t *testing.T) {
	tbs := Testbeds()
	if len(tbs) != 3 {
		t.Fatalf("want 3 testbeds, got %d", len(tbs))
	}
	wan := tbs[2]
	if wan.RTT.Milliseconds() != 49 || wan.NICGbps != 10 {
		t.Fatalf("WAN testbed wrong: %+v", wan)
	}
	if tbs[0].MTU != 65520 || tbs[1].MTU != 9000 {
		t.Fatal("MTUs do not match Table I")
	}
}

func TestFigSemanticsShapes(t *testing.T) {
	rows, err := FigSemantics("fig3b", RoCELAN(), 64, ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	byTool := map[string]map[int]Row{}
	for _, r := range rows {
		if byTool[r.Tool] == nil {
			byTool[r.Tool] = map[int]Row{}
		}
		byTool[r.Tool][r.BlockSize] = r
	}
	// 1) WRITE and SEND/RECV beat READ at high depth (128K point).
	bs := 128 << 10
	if byTool["RDMA READ"][bs].Gbps >= byTool["RDMA WRITE"][bs].Gbps {
		t.Fatalf("READ (%.1f) >= WRITE (%.1f) at 128K",
			byTool["RDMA READ"][bs].Gbps, byTool["RDMA WRITE"][bs].Gbps)
	}
	// 2) Bandwidth saturates at >=128K for WRITE.
	if w := byTool["RDMA WRITE"]; w[1<<20].Gbps < w[128<<10].Gbps*0.9 {
		t.Fatalf("WRITE did not stay saturated: 128K=%.1f 1M=%.1f", w[128<<10].Gbps, w[1<<20].Gbps)
	}
	// 3) SEND/RECV costs more CPU than WRITE at its peak.
	wr, sr := byTool["RDMA WRITE"][bs], byTool["SEND/RECV"][bs]
	if sr.ClientCPU+sr.ServerCPU <= wr.ClientCPU+wr.ServerCPU {
		t.Fatal("SEND/RECV CPU not above WRITE CPU")
	}
	// 4) CPU decreases as block size increases (WRITE source CPU).
	if byTool["RDMA WRITE"][1<<20].ClientCPU >= byTool["RDMA WRITE"][16<<10].ClientCPU {
		t.Fatal("CPU did not decline with block size")
	}
}

func TestFigSemanticsLowDepthSimilar(t *testing.T) {
	rows, err := FigSemantics("fig3a", RoCELAN(), 1, ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	var w, r float64
	for _, row := range rows {
		if row.BlockSize != 64<<10 {
			continue
		}
		switch row.Tool {
		case "RDMA WRITE":
			w = row.Gbps
		case "RDMA READ":
			r = row.Gbps
		}
	}
	if w == 0 || r == 0 {
		t.Fatal("missing rows")
	}
	if ratio := r / w; ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("low-depth READ/WRITE ratio %.2f, want ~1", ratio)
	}
}

func TestFigComparisonRoCELANShape(t *testing.T) {
	rows, err := FigComparison("fig8", RoCELAN(), []int{1}, ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range comparisonBlockSizes {
		var rftp, gftp Row
		for _, r := range rows {
			if r.BlockSize != bs {
				continue
			}
			if r.Tool == "RFTP" {
				rftp = r
			} else {
				gftp = r
			}
		}
		// The headline result: RFTP saturates the link; GridFTP is
		// CPU-capped well below it.
		if rftp.Gbps <= gftp.Gbps {
			t.Fatalf("bs=%s: RFTP %.1f <= GridFTP %.1f", FormatBlockSize(bs), rftp.Gbps, gftp.Gbps)
		}
		if rftp.Gbps < 30 {
			t.Fatalf("bs=%s: RFTP only %.1f Gbps on 40G LAN", FormatBlockSize(bs), rftp.Gbps)
		}
		if gftp.Gbps > 30 {
			t.Fatalf("bs=%s: GridFTP %.1f Gbps breaks the single-core ceiling", FormatBlockSize(bs), gftp.Gbps)
		}
	}
}

func TestFigMemVsDiskShape(t *testing.T) {
	rows, err := FigMemVsDisk(RoCEWAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	var mem, dsk, gftp Row
	for _, r := range rows {
		if r.BlockSize != 4<<20 {
			continue
		}
		switch r.Tool {
		case "RFTP mem-to-mem":
			mem = r
		case "RFTP mem-to-disk":
			dsk = r
		case "GridFTP mem-to-disk":
			gftp = r
		}
	}
	// Figure 11: same bandwidth, slightly higher server CPU on disk.
	if dsk.Gbps < mem.Gbps*0.92 {
		t.Fatalf("disk path lost bandwidth: mem=%.2f disk=%.2f", mem.Gbps, dsk.Gbps)
	}
	if dsk.ServerCPU <= mem.ServerCPU {
		t.Fatalf("disk server CPU (%.0f%%) not above mem (%.0f%%)", dsk.ServerCPU, mem.ServerCPU)
	}
	// The paper's reason for declining the GridFTP comparison: buffered
	// POSIX writes cost far more server CPU than RFTP's direct I/O.
	if gftp.ServerCPU <= dsk.ServerCPU*2 {
		t.Fatalf("GridFTP POSIX server CPU (%.0f%%) not well above RFTP direct (%.0f%%)",
			gftp.ServerCPU, dsk.ServerCPU)
	}
}

func TestAblationCreditPolicyShape(t *testing.T) {
	rows, err := AblationCreditPolicy(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest RTT, proactive must beat on-demand.
	var pro, dem float64
	for _, r := range rows {
		if !strings.Contains(r.Note, "rtt=49ms") {
			continue
		}
		if r.Tool == "proactive" {
			pro = r.Gbps
		} else {
			dem = r.Gbps
		}
	}
	if pro == 0 || dem == 0 {
		t.Fatalf("missing 49ms rows: %+v", rows)
	}
	if pro <= dem {
		t.Fatalf("proactive (%.2f) not above on-demand (%.2f) at 49ms", pro, dem)
	}
}

// TestAblationCreditBatchShape is the PR's acceptance criterion for
// control-plane coalescing: sweeping the flush threshold on the WAN
// testbed, the batched configurations must cut control messages per
// transferred block by at least 4× against the CreditBatch=1 baseline
// at equal-or-better goodput, and the grant-batch column must show
// multi-credit messages.
func TestAblationCreditBatchShape(t *testing.T) {
	rows, err := AblationCreditBatch(RoCEWAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	base := rows[0]
	if base.Tool != "batch=1" || base.CtrlPerOp <= 0 {
		t.Fatalf("bad baseline row: %+v", base)
	}
	best := rows[len(rows)-1] // largest threshold
	if best.CtrlPerOp*4 > base.CtrlPerOp {
		t.Fatalf("ctrl-msgs/op %.3f (batched) vs %.3f (baseline): under 4× reduction",
			best.CtrlPerOp, base.CtrlPerOp)
	}
	if best.Gbps < 0.98*base.Gbps {
		t.Fatalf("goodput regressed under coalescing: %.2f vs %.2f Gbps", best.Gbps, base.Gbps)
	}
	if best.GrantBatch <= 2 {
		t.Fatalf("grant-batch %.1f: sink not emitting multi-credit grants", best.GrantBatch)
	}
}

func TestAblationIODepthShape(t *testing.T) {
	rows, err := AblationIODepth(RoCEWAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatal("too few rows")
	}
	if rows[0].Gbps >= rows[len(rows)-1].Gbps {
		t.Fatalf("depth sweep flat: d=1 %.2f vs d=max %.2f", rows[0].Gbps, rows[len(rows)-1].Gbps)
	}
}

// TestAblationLoadDepthCrossover is the PR's acceptance criterion: with
// modeled per-spindle disk latency at the source, pipelining loads at
// depth 8 must at least double depth-1 throughput (disk-bound →
// network-bound crossover), and the load-latency column must be
// populated from telemetry.
func TestAblationLoadDepthCrossover(t *testing.T) {
	rows, err := AblationLoadDepth(RoCEWAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	byDepth := map[int]Row{}
	for _, r := range rows {
		byDepth[r.Depth] = r
	}
	d1, ok1 := byDepth[1]
	d8, ok8 := byDepth[8]
	if !ok1 || !ok8 {
		t.Fatalf("sweep missing depth 1 or 8: %+v", rows)
	}
	if d8.Gbps < 2*d1.Gbps {
		t.Fatalf("LoadDepth=8 %.2f Gbps < 2x LoadDepth=1 %.2f Gbps", d8.Gbps, d1.Gbps)
	}
	// Depth 1 must be disk-bound: well under the 10 Gbps WAN NIC.
	if d1.Gbps > 5 {
		t.Fatalf("depth-1 run not disk-bound: %.2f Gbps", d1.Gbps)
	}
	if d1.LoadLatUs <= 0 || d8.LoadLatUs <= 0 {
		t.Fatalf("load latency telemetry missing: d1=%.0f d8=%.0f", d1.LoadLatUs, d8.LoadLatUs)
	}
	// Stall attribution must flip with the bottleneck: the depth-1 run
	// is dominated by storage (load-pending), while at depth 8 the disk
	// keeps up and the source is bound by the network side — credits,
	// send-queue depth, or the pool held by in-flight WRITEs.
	if !strings.HasPrefix(d1.TopStall, "load-pending") {
		t.Fatalf("depth-1 top stall = %q, want load-pending", d1.TopStall)
	}
	switch {
	case strings.HasPrefix(d8.TopStall, "credit-starved"),
		strings.HasPrefix(d8.TopStall, "send-queue-saturated"),
		strings.HasPrefix(d8.TopStall, "wire-bound"):
	default:
		t.Fatalf("depth-8 top stall = %q, want a network-side cause", d8.TopStall)
	}
}

func TestRunGridFTPDiskOption(t *testing.T) {
	r, err := RunGridFTP(RoCEWAN(), GridFTPOptions{
		Streams: 2, BlockSize: 4 << 20, TotalBytes: 256 << 20,
		UseTBCC: true, Disk: true, DiskMode: diskmodel.PosixBuffered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 256<<20 {
		t.Fatalf("bytes = %d", r.Bytes)
	}
}

func TestRunRFTPRejectsBadConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 8 // below header size
	if _, err := RunRFTP(RoCELAN(), RFTPOptions{Config: cfg, TotalBytes: 1 << 20}); err == nil {
		t.Fatal("bad block size accepted")
	}
}

func TestReportFormatting(t *testing.T) {
	rows := []Row{
		{Figure: "fig8", Testbed: "RoCE-LAN", Tool: "RFTP", BlockSize: 4 << 20, Streams: 8, Gbps: 39.5, ClientCPU: 150, ServerCPU: 90, CtrlPerOp: 0.25, GrantBatch: 7.9},
		{Figure: "fig8", Testbed: "RoCE-LAN", Tool: "GridFTP", BlockSize: 4 << 20, Streams: 8, Gbps: 15.1, ClientCPU: 120, ServerCPU: 110, Note: "x, y"},
	}
	var tbl, csv bytes.Buffer
	if err := WriteTable(&tbl, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "RFTP") || !strings.Contains(tbl.String(), "4M") {
		t.Fatalf("table missing content:\n%s", tbl.String())
	}
	for _, col := range []string{"ctrl-msgs/op", "grant-batch", "0.25", "7.9"} {
		if !strings.Contains(tbl.String(), col) {
			t.Fatalf("table missing %q:\n%s", col, tbl.String())
		}
	}
	if err := WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "4194304") || strings.Count(csv.String(), "\n") != 3 {
		t.Fatalf("csv wrong:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "ctrl_msgs_per_op,grant_batch_mean") {
		t.Fatalf("csv header missing control-plane columns:\n%s", csv.String())
	}
	if strings.Contains(csv.String(), "x, y") {
		t.Fatal("comma in note not escaped")
	}
	var t1 bytes.Buffer
	if err := WriteTable1(&t1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RoCE WAN", "49ms", "cubic/htcp", "65520"} {
		if !strings.Contains(t1.String(), want) {
			t.Fatalf("table1 missing %q:\n%s", want, t1.String())
		}
	}
}

func TestFormatBlockSize(t *testing.T) {
	cases := map[int]string{
		4 << 10: "4K", 1 << 20: "1M", 64 << 20: "64M", 1 << 30: "1G", 1234: "1234",
	}
	for in, want := range cases {
		if got := FormatBlockSize(in); got != want {
			t.Errorf("FormatBlockSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if ScaleQuick.bytes(16<<30) != 2<<30 {
		t.Fatalf("quick scale bytes = %d", ScaleQuick.bytes(16<<30))
	}
	if ScaleFull.bytes(1) != 64<<20 {
		t.Fatal("minimum bytes floor not applied")
	}
}

func TestCrossArchShape(t *testing.T) {
	rows, err := CrossArch(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	// CPU per Gbps at the 64K point must order IB < RoCE < iWARP.
	perGb := map[string]float64{}
	for _, r := range rows {
		if r.BlockSize == 64<<10 && r.Gbps > 0 {
			perGb[r.Testbed] = r.ClientCPU / r.Gbps
		}
	}
	if len(perGb) != 3 {
		t.Fatalf("missing testbeds: %v", perGb)
	}
	if !(perGb["IB-LAN"] < perGb["RoCE-LAN"] && perGb["RoCE-LAN"] < perGb["iWARP-LAN"]) {
		t.Fatalf("CPU/Gbps ordering wrong: %v", perGb)
	}
}

func TestAblationThreadingShape(t *testing.T) {
	rows, err := AblationThreading(RoCELAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More client threads must lift the single-thread ceiling...
	if rows[1].Gbps <= rows[0].Gbps*1.2 {
		t.Fatalf("2 threads (%.1f) did not clearly beat 1 (%.1f)", rows[1].Gbps, rows[0].Gbps)
	}
	// ...but the single server thread then binds: 8 threads stay far
	// below RFTP's ~39.7 Gbps.
	if rows[3].Gbps > 32 {
		t.Fatalf("8-thread GridFTP reached %.1f Gbps; server thread should bind", rows[3].Gbps)
	}
}
