package bench

import (
	"testing"

	"rftp/internal/core"
	"rftp/internal/telemetry"
)

// TestShardScalingShape is the PR's acceptance criterion for the
// sharded data path: on the 100G small-block workload, goodput must be
// monotone in the reactor count and at least double from 1 to 4
// reactors (the single-reactor run is CPU-bound on one core; the
// 4-shard run spreads post/completion work across four).
func TestShardScalingShape(t *testing.T) {
	gbps := map[int]float64{}
	for _, n := range ShardScaleReactorCounts {
		r, err := RunShardScalePoint(n, ScaleQuick)
		if err != nil {
			t.Fatalf("reactors=%d: %v", n, err)
		}
		gbps[n] = r.BandwidthGbps
		t.Logf("reactors=%d: %.2f Gbps (client %.0f%%, server %.0f%%)",
			n, r.BandwidthGbps, r.ClientCPU, r.ServerCPU)
	}
	if !(gbps[1] < gbps[2] && gbps[2] < gbps[4]) {
		t.Fatalf("goodput not monotone in reactors: 1=%.2f 2=%.2f 4=%.2f",
			gbps[1], gbps[2], gbps[4])
	}
	if gbps[4] < 2*gbps[1] {
		t.Fatalf("4 reactors %.2f Gbps < 2x 1 reactor %.2f Gbps", gbps[4], gbps[1])
	}
}

// TestMRCacheRepeatedSessions is the PR's acceptance criterion for the
// pin-down cache: 10 sequential connections sharing one cache per side
// must hit on at least 90% of registrations (only the first connection
// registers fresh regions), with the hit counters visible in telemetry.
func TestMRCacheRepeatedSessions(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 16
	cfg.SinkBlocks = 32
	reg := telemetry.NewRegistry("bench")
	results, rep, err := RunRFTPRepeated(RoCELAN(), RFTPOptions{
		Config: cfg, TotalBytes: 64 << 20, Telemetry: reg,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d results, want 10", len(results))
	}
	t.Logf("hits=%d misses=%d evictions=%d hit-rate=%.2f idle=%d",
		rep.Hits, rep.Misses, rep.Evictions, rep.HitRate, rep.Idle)
	if rep.HitRate < 0.9 {
		t.Fatalf("hit rate %.2f, want >= 0.90 (hits=%d misses=%d)", rep.HitRate, rep.Hits, rep.Misses)
	}
	// Later connections must not be slower than the first: reissued
	// registrations behave identically to fresh ones.
	if last := results[9].BandwidthGbps; last < 0.95*results[0].BandwidthGbps {
		t.Fatalf("cached-registration conn slower: %.2f vs %.2f Gbps", last, results[0].BandwidthGbps)
	}
	// The cache counters must surface through the telemetry registry.
	var hits, misses int64
	for _, child := range reg.Snapshot().Children {
		if child.Name == "src_mrcache" || child.Name == "dst_mrcache" {
			hits += child.Counters["mr_cache_hits"]
			misses += child.Counters["mr_cache_misses"]
		}
	}
	if hits != rep.Hits || misses != rep.Misses {
		t.Fatalf("telemetry mirror disagrees: counters %d/%d vs report %d/%d",
			hits, misses, rep.Hits, rep.Misses)
	}
}

// TestAblationReactorsRows sanity-checks the experiments-facing sweep.
func TestAblationReactorsRows(t *testing.T) {
	rows, err := AblationReactors(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ShardScaleReactorCounts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ShardScaleReactorCounts))
	}
	for i, r := range rows {
		if r.Gbps <= 0 {
			t.Fatalf("row %d has no goodput: %+v", i, r)
		}
	}
}
