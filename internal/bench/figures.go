package bench

import (
	"fmt"
	"time"

	"rftp/internal/core"
	"rftp/internal/diskmodel"
	"rftp/internal/ioengine"
	"rftp/internal/spans"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// Row is one data point of a regenerated figure.
type Row struct {
	Figure    string
	Testbed   string
	Tool      string // RFTP, GridFTP, WRITE, READ, SEND/RECV
	BlockSize int
	Streams   int
	Depth     int
	Gbps      float64
	ClientCPU float64
	ServerCPU float64
	// Stalls counts source credit-starvation events (RFTP rows).
	Stalls int64
	// Retrans counts TCP retransmissions (GridFTP rows).
	Retrans uint64
	// RNR counts fabric receiver-not-ready events (RFTP rows).
	RNR uint64
	// AllocsPerOp is heap allocations per block (RFTP rows); tracks
	// data-path churn across revisions.
	AllocsPerOp float64
	// CopiedPerOp is CPU-copied payload bytes per block (RFTP rows);
	// zero-copy placement keeps it near zero.
	CopiedPerOp float64
	// LoadLatUs / StoreLatUs are p50 storage-stage latencies in
	// microseconds (load: issue→completion at the source; store:
	// data-ready→stored at the sink), from telemetry-instrumented runs.
	LoadLatUs  float64
	StoreLatUs float64
	// CtrlPerOp is control messages per transferred block, both
	// endpoints combined (RFTP rows); the control-plane coalescer's
	// figure of merit.
	CtrlPerOp float64
	// GrantBatch is the mean credits per grant message the sink emitted
	// (RFTP rows); 1.0 means every credit traveled alone.
	GrantBatch float64
	// TopStall names the dominant pipeline stall cause with its share of
	// attributed stall time, e.g. "load-pending 83%" (span-instrumented
	// RFTP rows only).
	TopStall string
	// Sessions is the concurrent tenant count of a session-scaling row
	// (0 on classic single-session rows).
	Sessions int
	// GoodputAgg is the aggregate multi-tenant goodput in Gbps
	// (session-scaling rows; the column named goodput_agg in the CSV).
	GoodputAgg float64
	// JainIndex is Jain's fairness index over weight-normalized
	// per-tenant goodput; 1.0 = every tenant got its proportional share
	// (session-scaling rows).
	JainIndex float64
	// MemPerSess is retained protocol heap bytes per tenant
	// (session-scaling rows).
	MemPerSess float64
	Note       string
}

// Scale reduces experiment sizes for quick runs: 1.0 reproduces the
// report-quality configuration; testing uses smaller factors.
type Scale float64

// Standard scales.
const (
	ScaleFull  Scale = 1.0
	ScaleQuick Scale = 0.125
)

func (s Scale) bytes(full int64) int64 {
	v := int64(float64(full) * float64(s))
	if v < 64<<20 {
		v = 64 << 20
	}
	return v
}

func (s Scale) dur(full time.Duration) time.Duration {
	v := time.Duration(float64(full) * float64(s))
	if v < 10*time.Millisecond {
		v = 10 * time.Millisecond
	}
	return v
}

// semanticsBlockSizes is the Figure 3/4 x-axis.
var semanticsBlockSizes = []int{4 << 10, 16 << 10, 64 << 10, 128 << 10, 512 << 10, 1 << 20}

// FigSemantics regenerates Figure 3 (RoCE) or Figure 4 (InfiniBand):
// bandwidth and CPU for RDMA WRITE / RDMA READ / SEND-RECV across block
// sizes at the given I/O depth (1 = the "(a)" panels, 64 = the "(b)"
// panels).
func FigSemantics(figure string, tb Testbed, depth int, scale Scale) ([]Row, error) {
	var rows []Row
	ops := []struct {
		op   verbs.Opcode
		name string
	}{
		{verbs.OpWrite, "RDMA WRITE"},
		{verbs.OpRead, "RDMA READ"},
		{verbs.OpSend, "SEND/RECV"},
	}
	for _, bs := range semanticsBlockSizes {
		for _, o := range ops {
			env := ioengine.NewEnv(1, tb.Link, tb.NIC, tb.NIC, tb.Host)
			res, err := ioengine.Run(env, ioengine.Params{
				Op:        o.op,
				BlockSize: bs,
				Depth:     depth,
				Duration:  scale.dur(400 * time.Millisecond),
			})
			if err != nil {
				return nil, fmt.Errorf("%s %s bs=%d: %w", figure, o.name, bs, err)
			}
			rows = append(rows, Row{
				Figure: figure, Testbed: tb.Name, Tool: o.name,
				BlockSize: bs, Depth: depth,
				Gbps: res.BandwidthGbps, ClientCPU: res.SourceCPU, ServerCPU: res.SinkCPU,
			})
		}
	}
	return rows, nil
}

// comparisonBlockSizes is the Figure 8/9/10 x-axis (application block
// sizes from 256 KiB to 64 MiB).
var comparisonBlockSizes = []int{256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}

// FigComparison regenerates a GridFTP-versus-RFTP panel (Figures 8, 9,
// 10): bandwidth and client/server CPU across block sizes, for each
// stream count (the paper uses 1 and 8).
func FigComparison(figure string, tb Testbed, streams []int, scale Scale) ([]Row, error) {
	total := scale.bytes(16 << 30)
	var rows []Row
	for _, ns := range streams {
		for _, bs := range comparisonBlockSizes {
			cfg := core.DefaultConfig()
			cfg.BlockSize = bs
			cfg.Channels = ns
			cfg.IODepth = rftpDepthFor(tb, bs)
			cfg.SinkBlocks = 2 * cfg.IODepth
			r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
			if err != nil {
				return nil, fmt.Errorf("%s RFTP bs=%d p=%d: %w", figure, bs, ns, err)
			}
			rows = append(rows, Row{
				Figure: figure, Testbed: tb.Name, Tool: "RFTP",
				BlockSize: bs, Streams: ns,
				Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
				Stalls: r.Stalls, RNR: r.RNR,
				AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
				CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
			})

			g, err := RunGridFTP(tb, GridFTPOptions{
				Streams: ns, BlockSize: bs, TotalBytes: total, UseTBCC: true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s GridFTP bs=%d p=%d: %w", figure, bs, ns, err)
			}
			rows = append(rows, Row{
				Figure: figure, Testbed: tb.Name, Tool: "GridFTP",
				BlockSize: bs, Streams: ns,
				Gbps: g.BandwidthGbps, ClientCPU: g.ClientCPU, ServerCPU: g.ServerCPU,
				Retrans: g.Retrans,
			})
		}
	}
	return rows, nil
}

// rftpDepthFor sizes the block pool so in-flight data covers the
// bandwidth-delay product with headroom (the paper's "relatively large"
// I/O depth guidance), within sane bounds.
func rftpDepthFor(tb Testbed, blockSize int) int {
	bdp := tb.Link.RateBps / 8 * tb.RTT.Seconds()
	depth := int(3*bdp)/blockSize + 8
	if depth < 16 {
		depth = 16
	}
	if depth > 256 {
		depth = 256
	}
	return depth
}

// FigMemVsDisk regenerates Figure 11: RFTP memory-to-memory versus
// memory-to-disk (direct I/O) on the WAN testbed.
func FigMemVsDisk(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(16 << 30)
	var rows []Row
	for _, bs := range []int{1 << 20, 4 << 20, 16 << 20} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = bs
		cfg.Channels = 4
		cfg.IODepth = rftpDepthFor(tb, bs)
		cfg.SinkBlocks = 2 * cfg.IODepth

		mem, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("fig11 mem bs=%d: %w", bs, err)
		}
		rows = append(rows, Row{
			Figure: "fig11", Testbed: tb.Name, Tool: "RFTP mem-to-mem",
			BlockSize: bs, Streams: 4,
			Gbps: mem.BandwidthGbps, ClientCPU: mem.ClientCPU, ServerCPU: mem.ServerCPU,
			Stalls: mem.Stalls, RNR: mem.RNR,
			AllocsPerOp: mem.AllocsPerBlock, CopiedPerOp: mem.CopiedPerBlock,
			CtrlPerOp: mem.CtrlPerBlock, GrantBatch: mem.GrantBatchMean,
		})

		dsk, err := RunRFTP(tb, RFTPOptions{
			Config: cfg, TotalBytes: total,
			Disk: true, DiskMode: diskmodel.ODirect,
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 disk bs=%d: %w", bs, err)
		}
		rows = append(rows, Row{
			Figure: "fig11", Testbed: tb.Name, Tool: "RFTP mem-to-disk",
			BlockSize: bs, Streams: 4,
			Gbps: dsk.BandwidthGbps, ClientCPU: dsk.ClientCPU, ServerCPU: dsk.ServerCPU,
			Stalls: dsk.Stalls, RNR: dsk.RNR,
			AllocsPerOp: dsk.AllocsPerBlock, CopiedPerOp: dsk.CopiedPerBlock,
			CtrlPerOp: dsk.CtrlPerBlock, GrantBatch: dsk.GrantBatchMean,
			Note: "O_DIRECT RAID",
		})

		// The comparison the paper declines to chart: GridFTP has no
		// direct I/O, so its disk path pays buffered POSIX costs.
		g, err := RunGridFTP(tb, GridFTPOptions{
			Streams: 4, BlockSize: bs, TotalBytes: total, UseTBCC: true,
			Disk: true, DiskMode: diskmodel.PosixBuffered,
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 gridftp bs=%d: %w", bs, err)
		}
		rows = append(rows, Row{
			Figure: "fig11", Testbed: tb.Name, Tool: "GridFTP mem-to-disk",
			BlockSize: bs, Streams: 4,
			Gbps: g.BandwidthGbps, ClientCPU: g.ClientCPU, ServerCPU: g.ServerCPU,
			Retrans: g.Retrans,
			Note:    "buffered POSIX",
		})
	}
	return rows, nil
}

// AblationCreditPolicy compares proactive active-feedback credits
// against the on-demand (RXIO-style) design across RTTs: the cost of
// the extra credit round trip grows with latency.
func AblationCreditPolicy(scale Scale) ([]Row, error) {
	var rows []Row
	for _, rtt := range []time.Duration{100 * time.Microsecond, 5 * time.Millisecond, 25 * time.Millisecond, 49 * time.Millisecond} {
		tb := RoCEWAN()
		tb.RTT = rtt
		tb.Link.PropDelay = rtt / 2
		total := scale.bytes(8 << 30)
		for _, policy := range []core.CreditPolicy{core.CreditProactive, core.CreditOnDemand} {
			cfg := core.DefaultConfig()
			cfg.BlockSize = 4 << 20
			cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
			cfg.SinkBlocks = 2 * cfg.IODepth
			cfg.CreditPolicy = policy
			r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
			if err != nil {
				return nil, fmt.Errorf("ablation-credit rtt=%v %v: %w", rtt, policy, err)
			}
			rows = append(rows, Row{
				Figure: "ablation-credit", Testbed: tb.Name, Tool: policy.String(),
				BlockSize: cfg.BlockSize, Streams: 1,
				Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
				Stalls: r.Stalls, RNR: r.RNR,
				AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
				CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
				Note: fmt.Sprintf("rtt=%v", rtt),
			})
		}
	}
	return rows, nil
}

// AblationQPCount sweeps the number of parallel data channel QPs.
func AblationQPCount(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(8 << 30)
	var rows []Row
	for _, ch := range []int{1, 2, 4, 8, 16} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.Channels = ch
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("ablation-qps ch=%d: %w", ch, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-qps", Testbed: tb.Name, Tool: "RFTP",
			BlockSize: cfg.BlockSize, Streams: ch,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls: r.Stalls, RNR: r.RNR,
			AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
		})
	}
	return rows, nil
}

// AblationIODepth sweeps blocks in flight on the WAN: the paper's
// Section III argument that high depth is essential.
func AblationIODepth(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(8 << 30)
	var rows []Row
	for _, depth := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = depth
		cfg.SinkBlocks = 2 * depth
		r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("ablation-depth d=%d: %w", depth, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-depth", Testbed: tb.Name, Tool: "RFTP",
			BlockSize: cfg.BlockSize, Depth: depth,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls: r.Stalls, RNR: r.RNR,
			AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
		})
	}
	return rows, nil
}

// AblationLoadDepth sweeps the storage pipeline depth with the source
// reading from the modeled RAID array: at depth 1 every block pays one
// spindle's seek latency and streaming time serially (disk-bound); as
// depth grows, reads overlap across spindles until the WAN NIC becomes
// the bottleneck. The crossover is the paper's Section III argument
// applied to the storage stage: the asynchronous interface only pays
// off when the application keeps many operations in flight.
func AblationLoadDepth(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(8 << 30)
	arr := diskmodel.DefaultArray()
	var rows []Row
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		cfg.LoadDepth = depth
		reg := telemetry.NewRegistry("run")
		r, err := RunRFTP(tb, RFTPOptions{
			Config: cfg, TotalBytes: total,
			SrcDisk: true, SrcDiskMode: diskmodel.ODirect, SrcDiskCfg: arr,
			Telemetry: reg, SpanSample: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-loaddepth d=%d: %w", depth, err)
		}
		snap := reg.Snapshot()
		rows = append(rows, Row{
			Figure: "ablation-loaddepth", Testbed: tb.Name, Tool: "RFTP src-disk",
			BlockSize: cfg.BlockSize, Depth: depth,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls: r.Stalls, RNR: r.RNR,
			LoadLatUs:  float64(snap.Find("source").Histogram("load_latency").Quantile(0.5)) / 1e3,
			StoreLatUs: float64(snap.Find("sink").Histogram("store_latency").Quantile(0.5)) / 1e3,
			TopStall:   stallLabel(snap.Find("source")),
			Note:       fmt.Sprintf("spindles=%d seek=%v", arr.Spindles, arr.PerReadLatency),
		})
	}
	return rows, nil
}

// stallLabel renders a snapshot's dominant stall cause as a table cell
// ("load-pending 83%"), empty when nothing was attributed.
func stallLabel(snap *telemetry.Snapshot) string {
	cause, ns, share := spans.TopStall(snap)
	if ns == 0 {
		return ""
	}
	return fmt.Sprintf("%s %d%%", cause, int(share*100))
}

// LatencyTable reports per-operation completion-latency percentiles
// (the fio "clat" statistics the paper's Section III methodology
// collects) for each semantic at low and high depth on the RoCE LAN.
func LatencyTable(tb Testbed, scale Scale) ([]Row, error) {
	var rows []Row
	ops := []struct {
		op   verbs.Opcode
		name string
	}{
		{verbs.OpWrite, "RDMA WRITE"},
		{verbs.OpRead, "RDMA READ"},
		{verbs.OpSend, "SEND/RECV"},
	}
	for _, depth := range []int{1, 64} {
		for _, o := range ops {
			env := ioengine.NewEnv(1, tb.Link, tb.NIC, tb.NIC, tb.Host)
			res, err := ioengine.Run(env, ioengine.Params{
				Op: o.op, BlockSize: 64 << 10, Depth: depth,
				Duration: scale.dur(200 * time.Millisecond),
			})
			if err != nil {
				return nil, fmt.Errorf("latency %s depth=%d: %w", o.name, depth, err)
			}
			rows = append(rows, Row{
				Figure: "latency", Testbed: tb.Name, Tool: o.name,
				BlockSize: 64 << 10, Depth: depth,
				Gbps: res.BandwidthGbps,
				Note: fmt.Sprintf("clat µs p50=%.1f p95=%.1f max=%.1f",
					res.Latency.P50, res.Latency.P95, res.Latency.Max),
			})
		}
	}
	return rows, nil
}

// CrossArch sweeps RDMA WRITE across the three RDMA architectures the
// middleware targets (Figure 1's stack): InfiniBand, RoCE, and iWARP.
// Bandwidth is capped by each link; host CPU per moved byte orders
// IB < RoCE < iWARP, reflecting the verbs-path overheads the paper and
// its citation [9] describe.
func CrossArch(scale Scale) ([]Row, error) {
	var rows []Row
	for _, tb := range []Testbed{IBLAN(), RoCELAN(), IWARPLAN()} {
		for _, bs := range []int{64 << 10, 256 << 10, 1 << 20} {
			env := ioengine.NewEnv(1, tb.Link, tb.NIC, tb.NIC, tb.Host)
			res, err := ioengine.Run(env, ioengine.Params{
				Op: verbs.OpWrite, BlockSize: bs, Depth: 64,
				Duration: scale.dur(400 * time.Millisecond),
			})
			if err != nil {
				return nil, fmt.Errorf("cross-arch %s bs=%d: %w", tb.Name, bs, err)
			}
			note := ""
			if res.BandwidthGbps > 0 {
				note = fmt.Sprintf("cpu%%/Gbps=%.3f", res.SourceCPU/res.BandwidthGbps)
			}
			rows = append(rows, Row{
				Figure: "cross-arch", Testbed: tb.Name, Tool: "RDMA WRITE",
				BlockSize: bs, Depth: 64,
				Gbps: res.BandwidthGbps, ClientCPU: res.SourceCPU, ServerCPU: res.SinkCPU,
				Note: note,
			})
		}
	}
	return rows, nil
}

// AblationThreading is the counterfactual behind Figure 8's diagnosis:
// give the GridFTP client more producer threads and watch the ceiling
// lift toward RFTP's, confirming the single thread is the binding
// constraint.
func AblationThreading(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(16 << 30)
	var rows []Row
	for _, threads := range []int{1, 2, 4, 8} {
		r, err := runGridFTPThreads(tb, threads, total)
		if err != nil {
			return nil, fmt.Errorf("ablation-threads t=%d: %w", threads, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-threads", Testbed: tb.Name,
			Tool:      fmt.Sprintf("GridFTP x%d threads", threads),
			BlockSize: 4 << 20, Streams: 8,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Retrans: r.Retrans,
		})
	}
	return rows, nil
}

// AblationNotify compares the paper's explicit block-completion control
// message against the WRITE WITH IMMEDIATE alternative: same bandwidth,
// one fewer message per block, lower sink CPU.
func AblationNotify(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(8 << 30)
	var rows []Row
	for _, imm := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		cfg.NotifyViaImm = imm
		r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("ablation-notify imm=%v: %w", imm, err)
		}
		name := "ctrl-message"
		if imm {
			name = "write-with-imm"
		}
		rows = append(rows, Row{
			Figure: "ablation-notify", Testbed: tb.Name, Tool: name,
			BlockSize: cfg.BlockSize,
			Gbps:      r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
			Note: fmt.Sprintf("ctrlMsgs=%d", r.CtrlMsgs),
		})
	}
	return rows, nil
}

// AblationCreditBatch sweeps the credit coalescer's flush threshold in
// the regime it targets — small blocks, a sink pool several times the
// source's pipeline depth, completion via WRITE-with-imm — so the
// control-message rate is the moving part while goodput stays pinned
// at the link. CreditBatch=1 is the no-coalescing baseline (every
// credit in its own MR_INFO_RESPONSE); the ctrl-msgs/op and
// grant-batch columns carry the evidence.
func AblationCreditBatch(tb Testbed, scale Scale) ([]Row, error) {
	total := scale.bytes(8 << 30)
	var rows []Row
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 256 << 10
		cfg.NotifyViaImm = true
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 4 * cfg.IODepth
		cfg.CreditBatch = batch
		// Pin the window at the pool so the sweep isolates the flush
		// threshold from the adaptive-window estimator.
		cfg.CreditWindow = cfg.SinkBlocks
		r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("ablation-creditbatch b=%d: %w", batch, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-creditbatch", Testbed: tb.Name,
			Tool:      fmt.Sprintf("batch=%d", batch),
			BlockSize: cfg.BlockSize, Depth: cfg.IODepth,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls:    r.Stalls,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
			Note: fmt.Sprintf("ctrlMsgs=%d", r.CtrlMsgs),
		})
	}
	return rows, nil
}

// AblationCreditRamp compares the exponential (grant 2 per consumed
// block) ramp against a linear (grant 1) ramp on the WAN. The transfer
// is deliberately short — the ramp is a startup effect — and the
// grant-on-free extension is disabled to isolate the paper's literal
// mechanism.
func AblationCreditRamp(tb Testbed, scale Scale) ([]Row, error) {
	// The ramp is a startup effect: use a deliberately small dataset
	// (256 MiB ≈ 4 BDPs on the WAN) so ramp time dominates, and make
	// the explicit-request fallback as conservative as the grant rule
	// so it cannot mask the ramp.
	const total = 256 << 20
	var rows []Row
	for _, grant := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = rftpDepthFor(tb, cfg.BlockSize)
		cfg.SinkBlocks = 2 * cfg.IODepth
		cfg.GrantPerConsume = grant
		cfg.NoGrantOnFree = true
		cfg.OnDemandBatch = grant
		r, err := RunRFTP(tb, RFTPOptions{Config: cfg, TotalBytes: total})
		if err != nil {
			return nil, fmt.Errorf("ablation-ramp g=%d: %w", grant, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-ramp", Testbed: tb.Name, Tool: fmt.Sprintf("grant=%d", grant),
			BlockSize: cfg.BlockSize,
			Gbps:      r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls:      r.Stalls,
			AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
			Note: fmt.Sprintf("elapsed=%v", r.Elapsed.Round(time.Millisecond)),
		})
	}
	return rows, nil
}
