package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesShapes(t *testing.T) {
	ts, err := TimeSeries(RoCEWAN(), 6*time.Second, 500*time.Millisecond, 4<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.RFTP.Points) < 8 || len(ts.GridFTP.Points) < 8 {
		t.Fatalf("too few samples: %d/%d", len(ts.RFTP.Points), len(ts.GridFTP.Points))
	}
	// Both ramp from a cold start: first interval below steady mean.
	if ts.RFTP.Points[0].V >= ts.RFTPSummary.Mean {
		t.Fatalf("RFTP shows no ramp: first=%v mean=%v", ts.RFTP.Points[0].V, ts.RFTPSummary.Mean)
	}
	if ts.GridFTP.Points[0].V >= ts.GridFTPSummary.Mean {
		t.Fatalf("GridFTP shows no ramp: first=%v mean=%v", ts.GridFTP.Points[0].V, ts.GridFTPSummary.Mean)
	}
	// RFTP steady state pins the link and is smoother than GridFTP
	// (the paper's fluctuation observation).
	if ts.RFTPSummary.Mean < 9 {
		t.Fatalf("RFTP steady mean %.2f < 9 Gbps", ts.RFTPSummary.Mean)
	}
	if ts.RFTPSummary.CoefficientOfVar > ts.GridFTPSummary.CoefficientOfVar {
		t.Fatalf("RFTP (CoV %.3f) less steady than GridFTP (%.3f)",
			ts.RFTPSummary.CoefficientOfVar, ts.GridFTPSummary.CoefficientOfVar)
	}
}

func TestTimeSeriesRender(t *testing.T) {
	ts, err := TimeSeries(RoCEWAN(), 2*time.Second, 500*time.Millisecond, 4<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RFTP Gbps", "GridFTP Gbps", "steady mean", "steady CoV"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAblationNotifyShape(t *testing.T) {
	rows, err := AblationNotify(RoCEWAN(), ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ctrl, imm := rows[0], rows[1]
	if ctrl.Tool != "ctrl-message" || imm.Tool != "write-with-imm" {
		t.Fatalf("tools: %s / %s", ctrl.Tool, imm.Tool)
	}
	// Same bandwidth ballpark, and the imm row's note must show far
	// fewer control messages.
	if imm.Gbps < ctrl.Gbps*0.95 {
		t.Fatalf("imm mode lost bandwidth: %.2f vs %.2f", imm.Gbps, ctrl.Gbps)
	}
}

func TestScaleOutShape(t *testing.T) {
	rows, err := ScaleOut(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Linear region: 4 pairs ~ 4x one pair (within 15%).
	one, four, twelve := rows[0].Gbps, rows[2].Gbps, rows[5].Gbps
	if four < 3.4*one {
		t.Fatalf("not linear: 1 pair %.1f, 4 pairs %.1f", one, four)
	}
	// Saturation region: 12 pairs bounded by the 100G trunk.
	if twelve > 100 {
		t.Fatalf("12 pairs exceeded the trunk: %.1f Gbps", twelve)
	}
	if twelve < 8*one {
		t.Fatalf("trunk saturation too low: %.1f Gbps", twelve)
	}
}
