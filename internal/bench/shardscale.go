package bench

import (
	"fmt"

	"rftp/internal/core"
)

// ShardScaleTestbed is a 100 Gbps RoCE LAN: small blocks on a link this
// fast make per-block verbs CPU (post + completion + interrupt) the
// bottleneck of a single reactor thread, which is exactly the regime
// the sharded data path exists for. The host parameters match the
// RoCE-LAN testbed; only the wire is faster.
func ShardScaleTestbed() Testbed {
	tb := RoCELAN()
	tb.Name = "RoCE-100G"
	tb.NICGbps = 100
	tb.Link.RateBps = 100e9
	return tb
}

// shardScaleConfig is the workload AblationReactors and the repo-root
// BenchmarkShardScaling share: 8 KiB blocks over 4 data channels with
// immediate notification, so the per-block reactor cost dominates and
// goodput tracks how many cores the data path can use.
func shardScaleConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 8 << 10
	cfg.Channels = 4
	cfg.IODepth = 64
	cfg.SinkBlocks = 128
	cfg.NotifyViaImm = true
	return cfg
}

// ShardScaleReactorCounts is the reactor sweep both the ablation and
// the benchmark run.
var ShardScaleReactorCounts = []int{1, 2, 4}

// RunShardScalePoint runs one reactor-count point of the shard-scaling
// sweep (loaders and storers scale with the reactor count so storage
// threads never bind).
func RunShardScalePoint(reactors int, scale Scale) (RunResult, error) {
	cfg := shardScaleConfig()
	return RunRFTP(ShardScaleTestbed(), RFTPOptions{
		Config:     cfg,
		TotalBytes: scale.bytes(2 << 30),
		Loaders:    reactors,
		Storers:    reactors,
		Reactors:   reactors,
	})
}

// AblationReactors sweeps the number of reactor shards on the 100G
// testbed: with one reactor the data path is CPU-bound on a single
// core; each added shard contributes its own post/completion budget
// until the wire binds.
func AblationReactors(scale Scale) ([]Row, error) {
	var rows []Row
	for _, n := range ShardScaleReactorCounts {
		r, err := RunShardScalePoint(n, scale)
		if err != nil {
			return nil, fmt.Errorf("ablation-reactors n=%d: %w", n, err)
		}
		rows = append(rows, Row{
			Figure: "ablation-reactors", Testbed: ShardScaleTestbed().Name, Tool: "RFTP",
			BlockSize: shardScaleConfig().BlockSize, Streams: shardScaleConfig().Channels, Depth: n,
			Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
			Stalls: r.Stalls, RNR: r.RNR,
			AllocsPerOp: r.AllocsPerBlock, CopiedPerOp: r.CopiedPerBlock,
			CtrlPerOp: r.CtrlPerBlock, GrantBatch: r.GrantBatchMean,
			Note: fmt.Sprintf("reactors=%d", n),
		})
	}
	return rows, nil
}

// AblationMRCache measures the pin-down cache on repeated short
// sessions: 8 sequential connections over one fabric, each tearing its
// pools down into the shared cache. The first connection misses on
// every registration; the rest hit.
func AblationMRCache(scale Scale) ([]Row, error) {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 16
	cfg.SinkBlocks = 32
	const conns = 8
	results, rep, err := RunRFTPRepeated(RoCELAN(), RFTPOptions{
		Config: cfg, TotalBytes: scale.bytes(1 << 30),
	}, conns)
	if err != nil {
		return nil, fmt.Errorf("ablation-mrcache: %w", err)
	}
	var rows []Row
	for i, r := range results {
		rows = append(rows, Row{
			Figure: "ablation-mrcache", Testbed: RoCELAN().Name, Tool: "RFTP",
			BlockSize: cfg.BlockSize, Depth: i + 1,
			Gbps: r.BandwidthGbps,
			Note: fmt.Sprintf("conn=%d", i+1),
		})
	}
	rows = append(rows, Row{
		Figure: "ablation-mrcache", Testbed: RoCELAN().Name, Tool: "RFTP",
		BlockSize: cfg.BlockSize, Depth: conns,
		Gbps: results[len(results)-1].BandwidthGbps,
		Note: fmt.Sprintf("summary: hit-rate=%.0f%% hits=%d misses=%d evictions=%d",
			100*rep.HitRate, rep.Hits, rep.Misses, rep.Evictions),
	})
	return rows, nil
}
