package bench

import (
	"fmt"

	"rftp/internal/core"
	"rftp/internal/telemetry"
)

// srcBusySaturated is the "saturated" point of the pull-mode ablation:
// a co-located job claiming 99% of every source protocol thread — the
// share a fair scheduler leaves a network service on a host packed with
// batch compute (~100 runnable hog threads per core). Full saturation
// (1.0) would starve the control loop outright; at 1% the push data
// path, which burns source CPU for every WRITE it posts and completes,
// becomes control-bound, while pull only spends source cycles on
// adverts and completion notices — the READs themselves are served by
// the NIC for free.
const srcBusySaturated = 0.99

// pullDepthFor sizes the block pool for the pull data path, which needs
// twice the buffering rftpDepthFor gives push: a block's control loop
// spans two RTTs (advert out, READ round trip, completion notice back),
// so filling the pipe takes two bandwidth-delay products of
// advertisements in flight. The same depth serves push fairly — its
// window estimator converges to what one RTT needs and ignores the
// extra pool.
func pullDepthFor(tb Testbed, blockSize int) int {
	bdp := tb.Link.RateBps / 8 * tb.RTT.Seconds()
	depth := int(6*bdp)/blockSize + 16
	if depth < 16 {
		depth = 16
	}
	if depth > 1024 {
		depth = 1024
	}
	return depth
}

// RunPullModePoint runs one cell of the push/pull/hybrid matrix: a
// 4-channel memory-to-memory transfer under the given mode with a
// competing job consuming the `busy` fraction of the source's protocol
// threads (0 = idle source).
func RunPullModePoint(tb Testbed, mode core.TransferMode, busy float64, scale Scale) (Row, error) {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 256 << 10
	cfg.Channels = 4
	cfg.IODepth = pullDepthFor(tb, cfg.BlockSize)
	cfg.SinkBlocks = 2 * cfg.IODepth
	cfg.TransferMode = mode
	reg := telemetry.NewRegistry("run")
	r, err := RunRFTP(tb, RFTPOptions{
		Config: cfg, TotalBytes: scale.bytes(32 << 30),
		SrcBusy:   busy,
		Telemetry: reg, SpanSample: 1,
	})
	if err != nil {
		return Row{}, fmt.Errorf("ablation-pullmode %s %s busy=%.2f: %w", tb.Name, mode, busy, err)
	}
	snap := reg.Snapshot()
	src := snap.Find("source")
	stall := stallLabel(src)
	if s := stallLabel(snap.Find("sink")); stall == "" {
		stall = s
	}
	return Row{
		Figure: "ablation-pullmode", Testbed: tb.Name,
		Tool:      "RFTP " + mode.String(),
		BlockSize: cfg.BlockSize, Streams: cfg.Channels, Depth: cfg.IODepth,
		Gbps: r.BandwidthGbps, ClientCPU: r.ClientCPU, ServerCPU: r.ServerCPU,
		Stalls: r.Stalls, RNR: r.RNR,
		CtrlPerOp: r.CtrlPerBlock,
		TopStall:  stall,
		Note:      fmt.Sprintf("mode=%s src-busy=%.0f%%", mode, busy*100),
	}, nil
}

// AblationPullMode compares the three data paths — push (source WRITEs),
// pull (sink READs, the remote fetching paradigm), and hybrid (per-
// session switching on the source CPU signal) — with the source host
// idle and saturated by a competing job, on the RoCE LAN and the 49 ms
// WAN. The claim under test: one-sided READs serve a busy source for
// free (the NIC, not the squeezed CPU, sources the data), so pull holds
// its rate where push collapses, and hybrid tracks the better of the
// two everywhere without hand-tuning.
func AblationPullMode(scale Scale) ([]Row, error) {
	var rows []Row
	for _, tb := range []Testbed{RoCELAN(), RoCEWAN()} {
		for _, busy := range []float64{0, srcBusySaturated} {
			for _, mode := range []core.TransferMode{core.ModePush, core.ModePull, core.ModeHybrid} {
				row, err := RunPullModePoint(tb, mode, busy, scale)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
