package ringq

import (
	"sync"
	"sync/atomic"
)

// SPSC is a single-producer single-consumer queue: one goroutine (or
// loop) may Push, one may Pop, concurrently and without locking on the
// fast path. The fixed-capacity power-of-two ring carries the steady
// state; when a burst overfills it, elements spill into a
// mutex-protected overflow list rather than being dropped or blocking
// the producer, and FIFO order is preserved across the spill (the
// producer keeps appending to the overflow until the consumer has
// drained it, so no element ever overtakes an earlier one).
//
// The atomic head/tail stores establish the happens-before edge that
// publishes each element to the consumer, so SPSC is safe under the
// race detector with real goroutines as well as under virtual-time
// loops sharing one goroutine.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // next slot to Pop (consumer-owned)
	tail atomic.Uint64 // next slot to Push (producer-owned)

	mu       sync.Mutex
	overflow []T
	spilled  atomic.Bool
}

// NewSPSC creates a queue whose lock-free ring holds at least capacity
// elements (rounded up to a power of two, minimum 8).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push appends v. Producer side only. Never blocks and never drops.
func (q *SPSC[T]) Push(v T) {
	if !q.spilled.Load() {
		t := q.tail.Load()
		if t-q.head.Load() < uint64(len(q.buf)) {
			q.buf[t&q.mask] = v
			q.tail.Store(t + 1)
			return
		}
	}
	q.mu.Lock()
	q.spilled.Store(true)
	q.overflow = append(q.overflow, v)
	q.mu.Unlock()
}

// Pop removes and returns the oldest element. Consumer side only.
func (q *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h != q.tail.Load() {
		v := q.buf[h&q.mask]
		q.buf[h&q.mask] = zero
		q.head.Store(h + 1)
		return v, true
	}
	if !q.spilled.Load() {
		return zero, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.overflow) == 0 {
		q.spilled.Store(false)
		return zero, false
	}
	v := q.overflow[0]
	q.overflow[0] = zero
	q.overflow = q.overflow[1:]
	if len(q.overflow) == 0 {
		q.overflow = nil
		q.spilled.Store(false)
	}
	return v, true
}

// Empty reports whether the queue looks empty from the consumer side.
func (q *SPSC[T]) Empty() bool {
	if q.head.Load() != q.tail.Load() {
		return false
	}
	return !q.spilled.Load()
}
