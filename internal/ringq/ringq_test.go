package ringq

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestInterleavedWraparound(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := r.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: pop = %d, %v (want %d)", round, v, ok, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		v, _ := r.Pop()
		if v != want {
			t.Fatalf("drain pop = %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("consumed %d of %d", want, next)
	}
}

func TestPeekAndPushFront(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push("b")
	r.PushFront("a")
	if v, _ := r.Peek(); v != "a" {
		t.Fatalf("peek = %q", v)
	}
	if v, _ := r.Pop(); v != "a" {
		t.Fatalf("pop = %q", v)
	}
	if v, _ := r.Pop(); v != "b" {
		t.Fatalf("pop = %q", v)
	}
}

func TestDrain(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 20; i++ {
		r.Push(i)
	}
	// Force a wrapped layout.
	for i := 0; i < 10; i++ {
		r.Pop()
	}
	for i := 20; i < 25; i++ {
		r.Push(i)
	}
	got := r.Drain(nil)
	if len(got) != 15 || r.Len() != 0 {
		t.Fatalf("drain: %v (ring len %d)", got, r.Len())
	}
	for i, v := range got {
		if v != 10+i {
			t.Fatalf("drain[%d] = %d", i, v)
		}
	}
}

func TestPoppedSlotsZeroed(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.Push(x)
	r.Pop()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popped slot retains pointer")
		}
	}
	r.Push(x)
	r.Drain(nil)
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("drained slot retains pointer")
		}
	}
}

func TestSteadyStateDoesNotGrow(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	capBefore := len(r.buf)
	for i := 0; i < 10000; i++ {
		r.Pop()
		r.Push(i)
	}
	if len(r.buf) != capBefore {
		t.Fatalf("buffer grew from %d to %d at steady state", capBefore, len(r.buf))
	}
}
