package ringq

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestInterleavedWraparound(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := r.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: pop = %d, %v (want %d)", round, v, ok, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		v, _ := r.Pop()
		if v != want {
			t.Fatalf("drain pop = %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("consumed %d of %d", want, next)
	}
}

func TestPeekAndPushFront(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push("b")
	r.PushFront("a")
	if v, _ := r.Peek(); v != "a" {
		t.Fatalf("peek = %q", v)
	}
	if v, _ := r.Pop(); v != "a" {
		t.Fatalf("pop = %q", v)
	}
	if v, _ := r.Pop(); v != "b" {
		t.Fatalf("pop = %q", v)
	}
}

func TestDrain(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 20; i++ {
		r.Push(i)
	}
	// Force a wrapped layout.
	for i := 0; i < 10; i++ {
		r.Pop()
	}
	for i := 20; i < 25; i++ {
		r.Push(i)
	}
	got := r.Drain(nil)
	if len(got) != 15 || r.Len() != 0 {
		t.Fatalf("drain: %v (ring len %d)", got, r.Len())
	}
	for i, v := range got {
		if v != 10+i {
			t.Fatalf("drain[%d] = %d", i, v)
		}
	}
}

func TestPoppedSlotsZeroed(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.Push(x)
	r.Pop()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popped slot retains pointer")
		}
	}
	r.Push(x)
	r.Drain(nil)
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("drained slot retains pointer")
		}
	}
}

func TestSteadyStateDoesNotGrow(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	capBefore := len(r.buf)
	for i := 0; i < 10000; i++ {
		r.Pop()
		r.Push(i)
	}
	if len(r.buf) != capBefore {
		t.Fatalf("buffer grew from %d to %d at steady state", capBefore, len(r.buf))
	}
}

// TestGrowWhileWrapped forces a grow at the moment the ring is full AND
// wrapped (head past the midpoint), so both segments of the circular
// buffer must be relinearized in order.
func TestGrowWhileWrapped(t *testing.T) {
	var r Ring[int]
	// Fill the initial 8-slot buffer, then advance head so the live
	// window wraps: buf = [8 9 10 | 3..7], head = 3.
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	for i := 0; i < 3; i++ {
		r.Pop()
	}
	for i := 8; i < 11; i++ {
		r.Push(i)
	}
	// Next push grows 8 -> 16 from the wrapped state.
	r.Push(11)
	for want := 3; want <= 11; want++ {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("after wrapped grow: pop = %d, %v (want %d)", v, ok, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after drain", r.Len())
	}
}

// TestPushFrontWrapsAndGrows covers PushFront's two edges: head at slot
// 0 wrapping to the last slot, and PushFront itself triggering a grow.
func TestPushFrontWrapsAndGrows(t *testing.T) {
	var r Ring[int]
	r.Push(100)     // head = 0
	r.PushFront(99) // head wraps to len(buf)-1
	r.PushFront(98)
	for i := 0; i < 5; i++ {
		r.Push(101 + i) // ring now full (8/8)
	}
	r.PushFront(97) // grow via PushFront
	want := []int{97, 98, 99, 100, 101, 102, 103, 104, 105}
	for _, w := range want {
		v, ok := r.Pop()
		if !ok || v != w {
			t.Fatalf("pop = %d, %v (want %d)", v, ok, w)
		}
	}
}

// TestDrainWrappedAndReuse drains a wrapped ring and then reuses it,
// checking Drain resets indices cleanly.
func TestDrainWrappedAndReuse(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	for i := 0; i < 6; i++ {
		r.Pop()
	}
	for i := 8; i < 12; i++ {
		r.Push(i) // live window wraps: 6..11
	}
	got := r.Drain(nil)
	want := []int{6, 7, 8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after drain", r.Len())
	}
	// Reuse after drain: indices were reset, FIFO still holds.
	r.Push(42)
	r.Push(43)
	if v, _ := r.Pop(); v != 42 {
		t.Fatalf("reuse pop = %d, want 42", v)
	}
}

// TestZeroValueRing exercises every operation on the zero value.
func TestZeroValueRing(t *testing.T) {
	var r Ring[int]
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on zero value succeeded")
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on zero value succeeded")
	}
	if got := r.Drain(nil); got != nil {
		t.Fatalf("Drain on zero value = %v", got)
	}
	r.PushFront(7) // PushFront as the very first operation must grow
	if v, ok := r.Pop(); !ok || v != 7 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
}
