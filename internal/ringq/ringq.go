// Package ringq provides a reusing FIFO ring queue.
//
// The hot queues of the real-byte fabrics (outbound frames, posted
// receives, parked arrivals) used to be Go slices popped with
// q = q[1:]: every push eventually reallocates because the backing
// array can never be reused once the head has advanced. Ring keeps a
// power-of-two circular buffer with head/tail indices instead, so a
// steady-state producer/consumer pair allocates nothing at all, and
// popped slots are zeroed so the queue never pins freed payloads.
package ringq

// Ring is an unbounded FIFO queue over a reusing circular buffer. The
// zero value is ready to use. Not safe for concurrent use; callers
// hold their own locks (the fabrics already do).
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail, growing the buffer when full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front element; ok is false when empty.
// The vacated slot is zeroed so the ring does not retain the value.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

// Peek returns the front element without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	return r.buf[r.head], true
}

// PushFront prepends v at the head (used to return an element after a
// failed pop-and-try).
func (r *Ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// Drain appends every queued element to dst in FIFO order, empties the
// ring (zeroing its slots), and returns the extended slice.
func (r *Ring[T]) Drain(dst []T) []T {
	var zero T
	for i := 0; i < r.n; i++ {
		j := (r.head + i) & (len(r.buf) - 1)
		dst = append(dst, r.buf[j])
		r.buf[j] = zero
	}
	r.head, r.n = 0, 0
	return dst
}

// grow doubles the buffer (minimum 8) and linearizes the elements.
func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
