// Package gridftp models the paper's baseline: globus-url-copy and the
// GridFTP server moving data over N parallel TCP streams (MODE E).
//
// The paper's diagnosis (Section V.C.1, via strace) is that GridFTP
// "only used a single thread to handle regular file operations ... and
// also network events", so a single saturated core caps throughput no
// matter how many streams or how large the blocks. The model reproduces
// that architecture:
//
//   - one client thread produces data blocks (charged the /dev/zero
//     synthesis cost), frames them with MODE E 17-byte extended-block
//     headers, and feeds N tcpmodel flows (charged user→kernel copy,
//     syscall, and per-segment kernel costs);
//   - one server thread consumes every arriving segment (kernel
//     per-segment + copy + per-block syscall costs) before the ACK is
//     emitted, so a saturated server thread throttles the senders the
//     way a zero receive window would;
//   - the TCP flows share one bottleneck path with the congestion
//     control variant from Table I.
//
// Data is striped over streams MODE E style: whichever stream has send
// buffer space takes the next block.
package gridftp

import (
	"fmt"
	"time"

	"rftp/internal/diskmodel"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/tcpmodel"
	"rftp/internal/telemetry"
)

// modeEHeaderBytes is the MODE E extended block header (descriptor +
// 64-bit count + 64-bit offset).
const modeEHeaderBytes = 17

// Config parameterizes a GridFTP transfer.
type Config struct {
	// Streams is the number of parallel TCP connections (-p).
	Streams int
	// BlockSize is the application read/write block (-bs).
	BlockSize int
	// TotalBytes is the dataset size.
	TotalBytes int64
	// Variant is the kernel congestion control algorithm.
	Variant tcpmodel.Variant
	// LoadNsPerByte is the client's data synthesis cost (defaults to
	// the host's MemLoadNsPerByte).
	LoadNsPerByte float64
	// Disk, when non-nil, routes server-side data to a disk array.
	Disk *diskmodel.Array
	// DiskMode selects POSIX or direct I/O at the server (GridFTP has
	// no direct I/O integration, so experiments use PosixBuffered).
	DiskMode diskmodel.Mode
	// BufferedBlocks is how many blocks ahead the client keeps per
	// stream (socket buffer, in blocks).
	BufferedBlocks int
	// ClientThreads is a counterfactual knob: the number of client
	// threads producing data. The real globus-url-copy of the paper's
	// era uses 1 (the diagnosis behind Figure 8); raising it shows how
	// much of the gap the single thread explains.
	ClientThreads int
}

// Stats reports a finished (or in-progress) transfer.
type Stats struct {
	Bytes     int64
	Blocks    int64
	Start     time.Duration
	End       time.Duration
	Retrans   uint64
	Timeouts  uint64
	ClientCPU float64 // percent of one core, averaged over the transfer
	ServerCPU float64
}

// Elapsed is the transfer duration.
func (s Stats) Elapsed() time.Duration { return s.End - s.Start }

// BandwidthGbps is goodput (payload bits per second / 1e9).
func (s Stats) BandwidthGbps() float64 {
	e := s.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / e / 1e9
}

// Transfer is one GridFTP job.
type Transfer struct {
	sched  *sim.Scheduler
	path   *tcpmodel.Path
	client *hostmodel.Host
	server *hostmodel.Host
	cfg    Config

	clientThreads []*hostmodel.Thread
	serverThread  *hostmodel.Thread
	flows         []*tcpmodel.Flow

	remaining   int64
	nextStream  int
	nextThread  int
	produced    int64
	delivered   int64
	producing   int
	flowsClosed int
	stats       Stats
	clientBusy0 time.Duration
	serverBusy0 time.Duration
	started     time.Duration
	done        func(Stats)
	finished    bool

	telReg       *telemetry.Registry
	telBacklog   *telemetry.Histogram
	telProduced  *telemetry.Counter
	telDelivered *telemetry.Counter
}

// AttachTelemetry mirrors transfer progress into reg: bytes produced
// and delivered, a server-thread backlog histogram sampled per arriving
// segment, bottleneck drop counts under "path", and per-stream cwnd and
// retransmit metrics under "stream<i>". Attach before Start so the
// stream children exist from the first segment; attaching later picks
// up flows already running. Nil detaches.
func (t *Transfer) AttachTelemetry(reg *telemetry.Registry) {
	t.telReg = reg
	if reg == nil {
		t.telBacklog, t.telProduced, t.telDelivered = nil, nil, nil
		t.path.AttachTelemetry(nil)
		for _, f := range t.flows {
			f.AttachTelemetry(nil)
		}
		return
	}
	t.telBacklog = reg.Histogram("server_backlog", telemetry.DurationBuckets()...)
	t.telProduced = reg.Counter("bytes_produced")
	t.telDelivered = reg.Counter("bytes_delivered")
	t.path.AttachTelemetry(reg.Child("path"))
	for i, f := range t.flows {
		f.AttachTelemetry(reg.Child(fmt.Sprintf("stream%d", i)))
	}
}

// New creates a transfer over the path between two hosts.
func New(sched *sim.Scheduler, path *tcpmodel.Path, client, server *hostmodel.Host, cfg Config) *Transfer {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 1 << 20
	}
	if cfg.BufferedBlocks <= 0 {
		cfg.BufferedBlocks = 2
	}
	if cfg.LoadNsPerByte == 0 {
		cfg.LoadNsPerByte = client.Params.MemLoadNsPerByte
	}
	if cfg.ClientThreads <= 0 {
		cfg.ClientThreads = 1
	}
	t := &Transfer{
		sched:     sched,
		path:      path,
		client:    client,
		server:    server,
		cfg:       cfg,
		remaining: cfg.TotalBytes,
	}
	// The paper's strace finding: one thread at each end does all the
	// work (ClientThreads > 1 is the counterfactual).
	for i := 0; i < cfg.ClientThreads; i++ {
		t.clientThreads = append(t.clientThreads, client.NewThread("globus-url-copy"))
	}
	t.serverThread = server.NewThread("gridftp-server")
	return t
}

// ClientThread exposes the first client event-loop thread (for
// utilization measurements).
func (t *Transfer) ClientThread() *hostmodel.Thread { return t.clientThreads[0] }

// ServerThread exposes the server event-loop thread.
func (t *Transfer) ServerThread() *hostmodel.Thread { return t.serverThread }

// Start launches the transfer; done fires when the server has received
// and stored every byte.
func (t *Transfer) Start(done func(Stats)) {
	t.done = done
	t.started = t.sched.Now()
	t.stats.Start = t.started
	for _, th := range t.clientThreads {
		t.clientBusy0 += th.Busy()
	}
	t.serverBusy0 = t.serverThread.Busy()
	for i := 0; i < t.cfg.Streams; i++ {
		f := tcpmodel.NewFlow(t.path, "gridftp", tcpmodel.FlowConfig{Variant: t.cfg.Variant})
		f.OnSendable = t.produceMore
		f.OnRxProcess = t.serverProcess
		f.OnDeliver = t.serverDeliver
		f.OnClose = t.flowClosed
		if t.telReg != nil {
			f.AttachTelemetry(t.telReg.Child(fmt.Sprintf("stream%d", i)))
		}
		t.flows = append(t.flows, f)
	}
	t.produceMore()
}

// produceMore keeps the client threads producing blocks while any
// stream has buffer space. With the default single thread, production
// is strictly serial — the paper's bottleneck.
func (t *Transfer) produceMore() {
	for t.producing < len(t.clientThreads) && t.remaining > 0 {
		f := t.pickStream()
		if f == nil {
			return
		}
		t.producing++
		n := int64(t.cfg.BlockSize)
		if n > t.remaining {
			n = t.remaining
		}
		t.remaining -= n
		p := t.client.Params
		// Read from /dev/zero + MODE E header framing + write(2) into
		// the socket: copy to kernel, plus kernel per-segment transmit
		// work.
		segs := (int(n) + t.path.Config().SegBytes - 1) / t.path.Config().SegBytes
		cost := hostmodel.ScaleNsPerByte(t.cfg.LoadNsPerByte, int(n)) +
			hostmodel.ScaleNsPerByte(p.TCPCopyNsPerByte, int(n)) +
			p.Syscall + // write(2)
			p.Syscall + // epoll_wait round
			time.Duration(segs)*p.TCPPerSegment
		th := t.clientThreads[t.nextThread%len(t.clientThreads)]
		t.nextThread++
		th.Post(cost, func() {
			t.producing--
			t.produced += n
			t.telProduced.Add(n)
			f.Supply(int(n) + modeEHeaderBytes)
			if t.remaining <= 0 {
				for _, fl := range t.flows {
					fl.Close()
				}
			}
			t.produceMore()
		})
	}
}

// pickStream returns the next flow with room for another buffered
// block, rotating MODE E style so every stream carries data.
func (t *Transfer) pickStream() *tcpmodel.Flow {
	limit := int64(t.cfg.BufferedBlocks) * int64(t.cfg.BlockSize+modeEHeaderBytes)
	for i := 0; i < len(t.flows); i++ {
		f := t.flows[(t.nextStream+i)%len(t.flows)]
		if f.Buffered() < limit {
			t.nextStream = (t.nextStream + i + 1) % len(t.flows)
			return f
		}
	}
	return nil
}

// serverProcess charges the server thread for one arriving segment
// before the ACK goes out (kernel receive + copy to user + its share of
// read(2) syscalls).
func (t *Transfer) serverProcess(bytes int, emitAck func()) {
	p := t.server.Params
	blocksPerSeg := float64(bytes) / float64(t.cfg.BlockSize+modeEHeaderBytes)
	cost := p.TCPPerSegment +
		hostmodel.ScaleNsPerByte(p.TCPCopyNsPerByte, bytes) +
		time.Duration(blocksPerSeg*float64(p.Syscall))
	t.telBacklog.ObserveDuration(t.serverThread.Backlog())
	t.serverThread.Post(cost, emitAck)
}

// serverDeliver counts in-order payload and stores it (to /dev/null or
// the disk array).
func (t *Transfer) serverDeliver(bytes int) {
	t.delivered += int64(bytes)
	t.telDelivered.Add(int64(bytes))
	if t.cfg.Disk != nil {
		t.cfg.Disk.Write(t.serverThread, t.cfg.DiskMode, bytes, func() { t.maybeFinish() })
		return
	}
	// /dev/null: negligible store cost, charged anyway for fidelity.
	t.serverThread.Post(hostmodel.ScaleNsPerByte(t.server.Params.MemStoreNsPerByte, bytes), func() {})
	t.maybeFinish()
}

func (t *Transfer) flowClosed() {
	t.flowsClosed++
	t.maybeFinish()
}

func (t *Transfer) maybeFinish() {
	if t.finished || t.flowsClosed < len(t.flows) || t.remaining > 0 {
		return
	}
	// All flows drained (every supplied byte acked). Delivered counts
	// include MODE E header padding/rounding; use produced payload.
	t.finished = true
	t.stats.Bytes = t.produced
	t.stats.Blocks = (t.produced + int64(t.cfg.BlockSize) - 1) / int64(t.cfg.BlockSize)
	t.stats.End = t.sched.Now()
	for _, f := range t.flows {
		t.stats.Retrans += f.Retransmits
		t.stats.Timeouts += f.Timeouts
	}
	elapsed := t.stats.Elapsed()
	if elapsed > 0 {
		var clientBusy time.Duration
		for _, th := range t.clientThreads {
			clientBusy += th.Busy()
		}
		t.stats.ClientCPU = 100 * float64(clientBusy-t.clientBusy0) / float64(elapsed)
		t.stats.ServerCPU = 100 * float64(t.serverThread.Busy()-t.serverBusy0) / float64(elapsed)
	}
	if t.done != nil {
		t.done(t.stats)
	}
}

// Stats returns the transfer statistics (final after done fires).
func (t *Transfer) Stats() Stats { return t.stats }

// DeliveredBytes returns payload delivered to the server so far (for
// live bandwidth sampling).
func (t *Transfer) DeliveredBytes() int64 { return t.delivered }
