package gridftp

import (
	"testing"
	"time"

	"rftp/internal/tcpmodel"
)

func TestClientThreadsLiftCeiling(t *testing.T) {
	run := func(threads int) Stats {
		r := newRig(40e9, 25*time.Microsecond, 9000)
		tr := New(r.sched, r.path, r.client, r.server, Config{
			Streams: 8, BlockSize: 4 << 20, TotalBytes: 2 << 30,
			Variant: tcpmodel.Cubic, ClientThreads: threads,
		})
		var got *Stats
		tr.Start(func(s Stats) { got = &s })
		r.sched.RunAll()
		if got == nil {
			t.Fatal("transfer never finished")
		}
		return *got
	}
	one := run(1)
	two := run(2)
	if two.BandwidthGbps() <= one.BandwidthGbps()*1.2 {
		t.Fatalf("2 threads (%.1f) not clearly above 1 (%.1f)",
			two.BandwidthGbps(), one.BandwidthGbps())
	}
	// Client CPU now spans more than one core.
	if two.ClientCPU <= 100 {
		t.Fatalf("2-thread client CPU = %.0f%%, want > 100%%", two.ClientCPU)
	}
	// And the single server thread becomes the next binding constraint.
	if two.ServerCPU < 95 {
		t.Fatalf("server CPU = %.0f%%, expected saturation", two.ServerCPU)
	}
}

func TestBytesConservedAcrossThreads(t *testing.T) {
	r := newRig(10e9, time.Millisecond, 9000)
	tr := New(r.sched, r.path, r.client, r.server, Config{
		Streams: 4, BlockSize: 1 << 20, TotalBytes: 512 << 20,
		Variant: tcpmodel.Reno, ClientThreads: 4,
	})
	var got *Stats
	tr.Start(func(s Stats) { got = &s })
	r.sched.RunAll()
	if got == nil || got.Bytes != 512<<20 {
		t.Fatalf("stats: %+v", got)
	}
	if tr.DeliveredBytes() < 512<<20 {
		t.Fatalf("delivered %d", tr.DeliveredBytes())
	}
}
