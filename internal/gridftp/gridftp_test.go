package gridftp

import (
	"testing"
	"time"

	"rftp/internal/diskmodel"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/tcpmodel"
)

type rig struct {
	sched  *sim.Scheduler
	path   *tcpmodel.Path
	client *hostmodel.Host
	server *hostmodel.Host
}

func newRig(rateBps float64, rtt time.Duration, segBytes int) *rig {
	s := sim.New(1)
	return &rig{
		sched:  s,
		path:   tcpmodel.NewPath(s, tcpmodel.PathConfig{RateBps: rateBps, RTT: rtt, SegBytes: segBytes}),
		client: hostmodel.NewHost(s, "client", 12, hostmodel.DefaultParams()),
		server: hostmodel.NewHost(s, "server", 12, hostmodel.DefaultParams()),
	}
}

func run(t *testing.T, r *rig, cfg Config) Stats {
	t.Helper()
	tr := New(r.sched, r.path, r.client, r.server, cfg)
	var got *Stats
	tr.Start(func(s Stats) { got = &s })
	r.sched.RunAll()
	if got == nil {
		t.Fatal("transfer never finished")
	}
	return *got
}

func TestTransferCompletes(t *testing.T) {
	r := newRig(10e9, 100*time.Microsecond, 9000)
	st := run(t, r, Config{Streams: 1, BlockSize: 1 << 20, TotalBytes: 256 << 20, Variant: tcpmodel.Cubic})
	if st.Bytes != 256<<20 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.BandwidthGbps() <= 0 {
		t.Fatal("no bandwidth")
	}
}

func TestSingleCoreCeiling(t *testing.T) {
	// On a 40 Gbps LAN, GridFTP must be CPU-capped well below line
	// rate, with the client thread near 100% of one core — the paper's
	// central observation about the baseline.
	r := newRig(40e9, 25*time.Microsecond, 9000)
	st := run(t, r, Config{Streams: 8, BlockSize: 4 << 20, TotalBytes: 4 << 30, Variant: tcpmodel.Cubic})
	bw := st.BandwidthGbps()
	if bw >= 30 {
		t.Fatalf("GridFTP reached %.1f Gbps on 40G LAN; the single-thread cap should bind earlier", bw)
	}
	if bw < 8 {
		t.Fatalf("GridFTP only %.1f Gbps; model too pessimistic", bw)
	}
	if st.ClientCPU < 85 {
		t.Fatalf("client CPU %.0f%%, want close to a saturated core", st.ClientCPU)
	}
}

func TestCPUScalesWithSmallBlocks(t *testing.T) {
	// Smaller blocks mean more syscalls per byte: CPU per byte rises,
	// bandwidth falls (or at best stays).
	small := run(t, newRig(40e9, 25*time.Microsecond, 9000),
		Config{Streams: 4, BlockSize: 64 << 10, TotalBytes: 1 << 30, Variant: tcpmodel.Cubic})
	large := run(t, newRig(40e9, 25*time.Microsecond, 9000),
		Config{Streams: 4, BlockSize: 16 << 20, TotalBytes: 1 << 30, Variant: tcpmodel.Cubic})
	if small.BandwidthGbps() > large.BandwidthGbps()*1.05 {
		t.Fatalf("64K blocks (%.1f Gbps) beat 16M blocks (%.1f)", small.BandwidthGbps(), large.BandwidthGbps())
	}
}

func TestMultiStreamHelpsOnWAN(t *testing.T) {
	// 10G, 49ms RTT: during a bounded transfer the slow-start ramp is a
	// real cost for one stream; eight streams ramp in parallel.
	one := run(t, newRig(10e9, 49*time.Millisecond, 72000),
		Config{Streams: 1, BlockSize: 4 << 20, TotalBytes: 2 << 30, Variant: tcpmodel.HTCP})
	eight := run(t, newRig(10e9, 49*time.Millisecond, 72000),
		Config{Streams: 8, BlockSize: 4 << 20, TotalBytes: 2 << 30, Variant: tcpmodel.HTCP})
	if eight.BandwidthGbps() < one.BandwidthGbps() {
		t.Fatalf("8 streams (%.2f) slower than 1 (%.2f) on WAN", eight.BandwidthGbps(), one.BandwidthGbps())
	}
}

func TestServerCPUCharged(t *testing.T) {
	r := newRig(10e9, 100*time.Microsecond, 9000)
	st := run(t, r, Config{Streams: 2, BlockSize: 1 << 20, TotalBytes: 512 << 20, Variant: tcpmodel.Cubic})
	if st.ServerCPU <= 0 {
		t.Fatal("server CPU not charged")
	}
	if st.ClientCPU <= st.ServerCPU {
		t.Fatalf("client CPU (%.0f%%) should exceed server (%.0f%%): it also synthesizes data", st.ClientCPU, st.ServerCPU)
	}
}

func TestDiskSinkPosix(t *testing.T) {
	r := newRig(10e9, 49*time.Millisecond, 72000)
	arr := diskmodel.NewArray(r.sched, diskmodel.DefaultArray())
	st := run(t, r, Config{
		Streams: 4, BlockSize: 4 << 20, TotalBytes: 1 << 30,
		Variant: tcpmodel.Cubic, Disk: arr, DiskMode: diskmodel.PosixBuffered,
	})
	if st.Bytes != 1<<30 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if arr.BytesWritten < 1<<30 {
		t.Fatalf("disk saw only %d bytes", arr.BytesWritten)
	}
	// POSIX disk writes push server CPU above the memory-sink case.
	mem := run(t, newRig(10e9, 49*time.Millisecond, 72000),
		Config{Streams: 4, BlockSize: 4 << 20, TotalBytes: 1 << 30, Variant: tcpmodel.Cubic})
	if st.ServerCPU <= mem.ServerCPU {
		t.Fatalf("disk server CPU (%.0f%%) not above mem-to-mem (%.0f%%)", st.ServerCPU, mem.ServerCPU)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := newRig(1e9, time.Millisecond, 9000)
	tr := New(r.sched, r.path, r.client, r.server, Config{TotalBytes: 1 << 20})
	if tr.cfg.Streams != 1 || tr.cfg.BlockSize != 1<<20 || tr.cfg.BufferedBlocks != 2 {
		t.Fatalf("defaults: %+v", tr.cfg)
	}
}

func TestStatsBandwidthZeroSafe(t *testing.T) {
	if (Stats{}).BandwidthGbps() != 0 {
		t.Fatal("zero stats bandwidth should be 0")
	}
}
