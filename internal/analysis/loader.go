package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	// ForTest is the ImportPath of the package under test when this is a
	// test-augmented variant ("p [p.test]" entries from go list -test).
	ForTest string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// Load lists patterns with the go tool (including test variants), reads
// compiler export data for every dependency, and type-checks each
// main-module package from source. dir anchors the go invocation (""
// means the current directory); tags are extra build tags.
//
// Test-augmented variants ("p [p.test]") supersede their base package:
// the variant's file set includes the in-package _test.go files, so
// analyzers see test code too. External test packages ("p_test") load
// as their own entries.
func Load(dir string, tags []string, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,ForTest,ImportMap,Module,Error"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var entries []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries = append(entries, p)
	}

	exports := make(map[string]string)
	superseded := make(map[string]bool) // base packages shadowed by a test variant
	for _, p := range entries {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") {
			superseded[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	var pkgs []*Package
	for _, p := range entries {
		if p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main" {
			continue // synthesized test main
		}
		if superseded[p.ImportPath] {
			continue // the "p [p.test]" variant covers this package
		}
		pkg, err := checkPackage(fset, sizes, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one go list entry against the
// export data of its dependencies.
func checkPackage(fset *token.FileSet, sizes types.Sizes, p *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    sizes,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		ForTest:    p.ForTest,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
