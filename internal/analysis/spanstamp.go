package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanStamp flags span lifecycle stamps placed outside the FSM guard.
//
// spans.Recorder.Transition is the single entry point that records a
// block's state change into the span table; the observability story
// depends on the table agreeing with the FSM, which only holds if every
// stamp happens inside the setState body that validated the transition.
// A stamp anywhere else can record a transition validNext rejected (or
// miss one it allowed), silently skewing every derived histogram and
// the critical-path decomposition.
//
// The convention is structural: any call to a method named "Transition"
// on a type named "Recorder" from a package named "spans" must appear
// lexically inside a function declaration named "setState". The spans
// package itself is exempt — its implementation and tests drive the
// recorder directly, by design.
var SpanStamp = &Analyzer{
	Name: "spanstamp",
	Doc:  "flag spans.Recorder.Transition calls outside the FSM's setState",
	Run:  runSpanStamp,
}

func runSpanStamp(pass *Pass) error {
	var setStateBodies []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "setState" {
				setStateBodies = append(setStateBodies, fd)
			}
		}
	}
	inSetState := func(pos token.Pos) bool {
		for _, fd := range setStateBodies {
			if fd.Body != nil && fd.Body.Pos() <= pos && pos <= fd.Body.End() {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRecorderTransition(pass, call) || inSetState(call.Pos()) {
				return true
			}
			pass.Report(Diagnostic{
				Pos:     call.Pos(),
				Message: "span stamp (spans.Recorder.Transition) outside setState: lifecycle transitions must be stamped by the FSM guard",
			})
			return true
		})
	}
	return nil
}

// isRecorderTransition reports whether call invokes the Transition
// method of a Recorder type defined in another package named "spans".
func isRecorderTransition(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var obj types.Object
	if s, ok := pass.Info.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = pass.Info.Uses[sel.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Transition" {
		return false
	}
	// The defining package stamps freely (implementation and tests);
	// pointer identity also covers its test-augmented variant, which is
	// type-checked as one package.
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg || pathBase(fn.Pkg().Path()) != "spans" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
