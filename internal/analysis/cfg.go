package analysis

// Per-function control-flow graph construction. The CFG is the base of
// the flow-sensitive passes (blockleak): where the original passes
// matched statements in isolation, a CFG lets a pass ask "does this
// acquisition reach a release on *every* path out of the function?" —
// including early returns, loop breaks, and abort branches, which is
// exactly where the repo's worst lifecycle bugs have hidden.
//
// The builder is purely syntactic (no type information) and models:
//
//   - if/else with the branch condition recorded on the out-edges, so
//     dataflow clients can refine facts (e.g. kill a tracked pointer on
//     the `x == nil` edge);
//   - for / range loops with back edges, break/continue including
//     labeled forms targeting outer loops;
//   - switch / type switch / select, including fallthrough chains and
//     the implicit no-default exit edge;
//   - goto (forward and backward) via label patching;
//   - returns, which route through a shared defer block to Exit, so a
//     `defer release()` is visible on every normal exit path;
//   - terminating statements (panic, os.Exit, log.Fatal*), which edge
//     to the separate Panic exit — a distinct exit kind, because most
//     lifecycle invariants are moot once the process is dying.
//
// Defers are approximated: every deferred call lands in one defer block
// executed before Exit regardless of which path registered it, in
// reverse registration order. That over-approximates execution for a
// defer registered in a branch (clients see its effect on all exits),
// which for leak checking errs toward silence, never toward a false
// positive. The registering DeferStmt also appears in its own basic
// block, so path-sensitive clients can additionally observe the
// registration point. Panic edges bypass the defer block: a deferred
// cleanup does run during a real panic, but the analyses that consume
// the CFG exempt panic exits entirely.
//
// Function literals nested inside statements are opaque: their bodies
// run at some other time (or never), so their statements are not part
// of this function's CFG. Clients decide how captured state is treated.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*CFGBlock
	// Entry is the block control enters first.
	Entry *CFGBlock
	// Defers holds the deferred calls (reverse registration order) run
	// before Exit; it is empty but present when the function defers
	// nothing, so Exit's predecessor structure is uniform.
	Defers *CFGBlock
	// Exit is the single normal exit: every return and the fall-off-end
	// path reach it through Defers.
	Exit *CFGBlock
	// Panic is the abnormal exit fed by terminating statements.
	Panic *CFGBlock
}

// CFGBlock is a basic block: a maximal straight-line node sequence.
type CFGBlock struct {
	Index int
	// Kind is a structural label ("entry", "if.then", "for.head", ...)
	// used by tests and debugging output.
	Kind  string
	Nodes []ast.Node
	Succs []*CFGEdge
	Preds []*CFGEdge
}

// CFGEdge is one control transfer. Cond, when non-nil, is the branch
// condition that selects this edge: the edge is taken when Cond is
// true (Negated false) or false (Negated true). Unconditional edges
// carry a nil Cond.
type CFGEdge struct {
	From, To *CFGBlock
	Cond     ast.Expr
	Negated  bool
}

// String renders the graph structure for debugging.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s) %d nodes ->", b.Index, b.Kind, len(b.Nodes))
		for _, e := range b.Succs {
			tag := ""
			if e.Cond != nil {
				if e.Negated {
					tag = "!cond:"
				} else {
					tag = "cond:"
				}
			}
			fmt.Fprintf(&sb, " %sb%d", tag, e.To.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// cfgTarget is one enclosing breakable/continuable construct.
type cfgTarget struct {
	label string
	brk   *CFGBlock
	cont  *CFGBlock // nil for switch/select
}

type cfgBuilder struct {
	g       *CFG
	cur     *CFGBlock // nil after a terminator (return/branch/panic)
	targets []cfgTarget
	labels  map[string]*CFGBlock
	gotos   map[string][]*CFGBlock // unresolved forward gotos by label
	// pendingLabel is set while building the statement a label names, so
	// the loop/switch it labels registers break/continue under it.
	pendingLabel string
}

// BuildCFG constructs the CFG of one function body. A nil body (extern
// declarations) yields nil.
func BuildCFG(body *ast.BlockStmt) *CFG {
	if body == nil {
		return nil
	}
	b := &cfgBuilder{
		g:      &CFG{},
		labels: make(map[string]*CFGBlock),
		gotos:  make(map[string][]*CFGBlock),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Defers = b.newBlock("defers")
	b.g.Exit = b.newBlock("exit")
	b.g.Panic = b.newBlock("panic")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Defers, nil, false) // fall off the end
	b.edge(b.g.Defers, b.g.Exit, nil, false)
	return b.g
}

func (b *cfgBuilder) newBlock(kind string) *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from -> to; a nil from (dead code) is a no-op.
func (b *cfgBuilder) edge(from, to *CFGBlock, cond ast.Expr, negated bool) {
	if from == nil || to == nil {
		return
	}
	e := &CFGEdge{From: from, To: to, Cond: cond, Negated: negated}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// add appends a node to the current block, reviving dead code into an
// unreachable block so every node still lives somewhere.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminates reports whether call is a recognised no-return call:
// panic, os.Exit, runtime.Goexit, log.Fatal*.
func terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a landing site.
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lb, nil, false)
		for _, from := range b.gotos[s.Label.Name] {
			b.edge(from, lb, nil, false)
		}
		delete(b.gotos, s.Label.Name)
		b.labels[s.Label.Name] = lb
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Defers, nil, false)
		b.cur = nil
	case *ast.DeferStmt:
		// The registration point stays in its block (argument evaluation
		// happens here); the call itself runs in the defer block, LIFO.
		b.add(s)
		b.g.Defers.Nodes = append([]ast.Node{s.Call}, b.g.Defers.Nodes...)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminates(call) {
			b.add(s)
			b.edge(b.cur, b.g.Panic, nil, false)
			b.cur = nil
			return
		}
		b.add(s)
	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then, s.Cond, false)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *CFGBlock
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock("if.else")
		b.edge(cond, els, s.Cond, true)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	done := b.newBlock("if.done")
	b.edge(thenEnd, done, nil, false)
	if hasElse {
		b.edge(elseEnd, done, nil, false)
	} else {
		b.edge(cond, done, s.Cond, true)
	}
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	b.add(s.Init)
	head := b.newBlock("for.head")
	b.edge(b.cur, head, nil, false)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.edge(head, body, s.Cond, false)
	if s.Cond != nil {
		b.edge(head, done, s.Cond, true)
	}
	cont := head
	var post *CFGBlock
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head, nil, false)
		cont = post
	}
	b.targets = append(b.targets, cfgTarget{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, cont, nil, false)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head, nil, false)
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body, nil, false)
	b.edge(head, done, nil, false)
	b.targets = append(b.targets, cfgTarget{label: label, brk: done, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head, nil, false)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// switchClauses builds expression/type switch clause blocks.
// fallthroughOK distinguishes expression switches (fallthrough legal)
// from type switches.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string, fallthroughOK bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	b.targets = append(b.targets, cfgTarget{label: label, brk: done})

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*CFGBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i], nil, false)
	}
	if !hasDefault {
		b.edge(head, done, nil, false)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fellThrough := false
		if fallthroughOK && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				stmts = stmts[:len(stmts)-1]
				fellThrough = true
			}
		}
		b.stmtList(stmts)
		if fellThrough {
			b.edge(b.cur, blocks[i+1], nil, false)
		} else {
			b.edge(b.cur, done, nil, false)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("select.done")
	b.targets = append(b.targets, cfgTarget{label: label, brk: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "comm"
		if cc.Comm == nil {
			kind = "default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk, nil, false)
		b.cur = blk
		b.add(cc.Comm)
		b.stmtList(cc.Body)
		b.edge(b.cur, done, nil, false)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label != "" && t.label != label {
				continue
			}
			b.edge(b.cur, t.brk, nil, false)
			b.cur = nil
			return
		}
		b.cur = nil // malformed; treat as terminator
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont == nil || (label != "" && t.label != label) {
				continue
			}
			b.edge(b.cur, t.cont, nil, false)
			b.cur = nil
			return
		}
		b.cur = nil
	case token.GOTO:
		if to, ok := b.labels[label]; ok {
			b.edge(b.cur, to, nil, false)
		} else if b.cur != nil {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Normally consumed by switchClauses; a stray one (fallthrough in
		// a default mid-switch) just ends the block.
		b.cur = nil
	}
}
