package analysis

import (
	"go/ast"
	"go/types"
)

// LoopConfine flags loop-confined protocol state touched from a raw
// goroutine.
//
// The sharded-reactor design keeps every mutable protocol structure —
// the block FSM, the credit ledger, the span table — confined to one
// reactor loop; that confinement, not locking, is what makes the hot
// path safe. The compiler cannot see the convention, and the race
// detector only catches the schedules a test happens to produce. This
// pass checks the structural half: the recognised confined operations
// (any setState method, the invariant credit-ledger probes that shadow
// the real ledger, and spans.Recorder.Transition) must never execute
// on a goroutine launched with a bare `go` statement.
//
// A confined call is reported when walking outward from the call site
// reaches a `go` statement before reaching either a function
// declaration (assumed to run on the owning loop, like every reactor
// callback) or a function literal handed to a loop scheduler (an
// argument of a call whose method is named Post, After, or AfterFunc —
// those run the literal back on the loop, which is exactly the
// sanctioned way to cross shards). Literals that escape through other
// calls, assignments, or returns inherit their defining context rather
// than being guessed at, so mailbox handlers and completion callbacks
// stay quiet. The invariant and spans packages drive their own
// primitives freely.
var LoopConfine = &Analyzer{
	Name: "loopconfine",
	Doc:  "flag loop-confined calls (setState, credit ledger, span stamps) on raw goroutines",
	Run:  runLoopConfine,
}

// loopHandoff names the scheduler methods that move a closure onto an
// event loop: a literal passed to one of these runs loop-confined again.
var loopHandoff = map[string]bool{
	"Post":      true,
	"After":     true,
	"AfterFunc": true,
}

func runLoopConfine(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			what := confinedCall(pass, call)
			if what == "" {
				return true
			}
			if onRawGoroutine(stack) {
				pass.Report(Diagnostic{
					Pos: call.Pos(),
					Message: "loop-confined call (" + what + ") on a raw goroutine: " +
						"shard state is single-loop by design; hand the work to the owning loop with Post",
				})
			}
			return true
		})
	}
	return nil
}

// confinedCall classifies call as one of the loop-confined operations,
// returning a short label for the diagnostic ("" when unconfined).
func confinedCall(pass *Pass, call *ast.CallExpr) string {
	if isRecorderTransition(pass, call) {
		return "spans.Recorder.Transition"
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var obj types.Object
	if s, ok := pass.Info.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = pass.Info.Uses[sel.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Name() == "setState" && sig != nil && sig.Recv() != nil {
		return "setState"
	}
	// The credit probes mirror the ledger mutations one-for-one, so they
	// mark exactly the sites that must stay on-loop. The invariant
	// package itself (and its tests) is exempt.
	switch fn.Name() {
	case "CreditGrant", "CreditConsume", "CreditOutstanding":
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg && pathBase(fn.Pkg().Path()) == "invariant" {
			return "invariant." + fn.Name()
		}
	}
	return ""
}

// onRawGoroutine walks the enclosure stack (innermost last) outward
// from a confined call and reports whether the nearest decisive
// boundary is a `go` statement.
func onRawGoroutine(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.GoStmt:
			// `go b.setState(x)` — the confined call is launched directly.
			return true
		case *ast.FuncDecl:
			return false
		case *ast.FuncLit:
			parent := enclosing(stack, i)
			pcall, ok := parent.(*ast.CallExpr)
			if !ok {
				// Assigned, returned, or stored: the literal inherits its
				// defining context — keep walking.
				continue
			}
			if ast.Unparen(pcall.Fun) == n {
				// Immediately invoked (possibly by go/defer); the statement
				// above decides, so keep walking.
				continue
			}
			// The literal is an argument. A loop handoff re-confines it;
			// any other callee leaves the defining context in force.
			if sel, ok := ast.Unparen(pcall.Fun).(*ast.SelectorExpr); ok && loopHandoff[sel.Sel.Name] {
				return false
			}
			continue
		}
	}
	return false
}

// enclosing returns the nearest non-paren ancestor of stack[i].
func enclosing(stack []ast.Node, i int) ast.Node {
	for j := i - 1; j >= 0; j-- {
		if _, ok := stack[j].(*ast.ParenExpr); ok {
			continue
		}
		return stack[j]
	}
	return nil
}
