package analysis

import (
	"go/ast"
	"go/types"
)

// SessionAffinity flags per-session state mutated from a raw goroutine.
//
// The multi-tenant session manager keeps every srcSession and
// sinkSession owned by the reactor loop of its connection: credit
// counters, deficit accounts, load depths, and block queues are all
// mutated loop-confined, never under a lock. loopconfine guards the
// recognised confined *operations* (setState, the credit-ledger
// probes, span stamps); this pass guards the session *records*
// themselves — any write to a field of a srcSession or sinkSession
// (plain assignment, op-assignment, or ++/--) reached from a bare `go`
// statement is a data race waiting for a schedule.
//
// The enclosure walk is loopconfine's: a write is on a raw goroutine
// when walking outward hits a `go` statement before a function
// declaration or a literal handed to a loop scheduler (Post / After /
// AfterFunc), which re-confines the closure to the owning loop.
var SessionAffinity = &Analyzer{
	Name: "sessionaffinity",
	Doc:  "flag srcSession/sinkSession field writes on raw goroutines",
	Run:  runSessionAffinity,
}

func runSessionAffinity(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			var targets []ast.Expr
			switch st := n.(type) {
			case *ast.AssignStmt:
				targets = st.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{st.X}
			default:
				return true
			}
			for _, lhs := range targets {
				what := sessionFieldWrite(pass, lhs)
				if what == "" {
					continue
				}
				if onRawGoroutine(stack) {
					pass.Report(Diagnostic{
						Pos: lhs.Pos(),
						Message: "session-affine write (" + what + ") on a raw goroutine: " +
							"session records are owned by the connection's loop; hand the write to it with Post",
					})
				}
			}
			return true
		})
	}
	return nil
}

// sessionFieldWrite classifies lhs as a field write into a srcSession
// or sinkSession record, returning "type.field" for the diagnostic
// ("" otherwise). Nested paths (sess.info.ID = …) count: the root
// record is still being mutated.
func sessionFieldWrite(pass *Pass, lhs ast.Expr) string {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if name := sessionTypeName(pass.Info.Types[e.X].Type); name != "" {
				return name + "." + e.Sel.Name
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return ""
		}
	}
}

// sessionTypeName reports whether t (possibly behind pointers) is one
// of the session record types, by its declared name.
func sessionTypeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	switch named.Obj().Name() {
	case "srcSession", "sinkSession":
		return named.Obj().Name()
	}
	return ""
}
