package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FSMLive checks the liveness of the block FSM's transition table. The
// fsmtransition pass guarantees every state write goes *through*
// setState and the validNext table; this pass checks the table itself
// is sound. It statically extracts every package-level `validNext` map
// literal (state -> legal successor states) and verifies, against the
// declaring package's state constants:
//
//   - every state is reachable from the zero state (Free) by a chain
//     of legal transitions — an unreachable state is dead table weight
//     or a missing edge;
//   - every reachable state has a path back to the zero state — a
//     state with no route back to Free strands blocks forever, which
//     is exactly the pool-drain bug class PR 8's abort work fixed;
//   - every declared transition target is actually exercised: some
//     setState(Const) call site in the package (tests excluded) moves
//     a block there. A target no code ever transitions to is either a
//     dead table entry or transition code that was never written.
//
// The table and the call sites are both read statically, so the check
// holds for paths no test happens to drive.
var FSMLive = &Analyzer{
	Name: "fsmlive",
	Doc:  "check validNext FSM tables for unreachable states, states with no path back to Free, and unexercised transition targets",
	Run:  runFSMLive,
}

func runFSMLive(pass *Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "validNext" || i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
						checkFSMTable(pass, lit)
					}
				}
			}
		}
	}
	return nil
}

// fsmState is one constant of the FSM state type.
type fsmState struct {
	name string
	val  int64
	pos  token.Pos
}

func checkFSMTable(pass *Pass, lit *ast.CompositeLit) {
	m, ok := pass.Info.TypeOf(lit).(*types.Map)
	if !ok {
		return
	}
	stateType, ok := m.Key().(*types.Named)
	if !ok || stateType.Obj().Pkg() == nil {
		return
	}

	// The state universe: every constant of the type in its package.
	states := make(map[int64]fsmState)
	scope := stateType.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), stateType) {
			continue
		}
		if v, exact := constant.Int64Val(c.Val()); exact {
			states[v] = fsmState{name: name, val: v, pos: c.Pos()}
		}
	}
	zero, ok := states[0]
	if !ok {
		return // no zero-value state to anchor reachability
	}

	// Extract the edge set from the map literal.
	edges := make(map[int64][]int64)
	isTarget := make(map[int64]bool)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		from, ok := fsmConstVal(pass, kv.Key, stateType)
		if !ok {
			continue
		}
		val, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, e := range val.Elts {
			if to, ok := fsmConstVal(pass, e, stateType); ok {
				edges[from] = append(edges[from], to)
				isTarget[to] = true
			}
		}
	}
	if len(edges) == 0 {
		return
	}

	reachable := fsmReach(0, edges)
	back := fsmReach(0, fsmReverse(edges))
	setTargets := fsmSetStateTargets(pass, stateType)

	var order []int64
	for v := range states {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		s := states[v]
		if v == 0 {
			continue
		}
		switch {
		case !reachable[v]:
			pass.Report(Diagnostic{
				Pos: s.pos,
				Message: fmt.Sprintf("state %s is unreachable from %s in validNext: "+
					"no chain of legal transitions ever produces it", s.name, zero.name),
			})
			continue
		case !back[v]:
			pass.Report(Diagnostic{
				Pos: s.pos,
				Message: fmt.Sprintf("state %s has no path back to %s in validNext: "+
					"blocks entering it can never be recycled to the pool", s.name, zero.name),
			})
		}
		if isTarget[v] && !setTargets[v] {
			pass.Report(Diagnostic{
				Pos: s.pos,
				Message: fmt.Sprintf("state %s is a declared transition target but no setState call "+
					"ever moves a block there: dead table entry or missing transition code", s.name),
			})
		}
	}
}

// fsmConstVal resolves e to a constant value of the state type.
func fsmConstVal(pass *Pass, e ast.Expr, stateType *types.Named) (int64, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return 0, false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || !types.Identical(c.Type(), stateType) {
		return 0, false
	}
	v, exact := constant.Int64Val(c.Val())
	return v, exact
}

// fsmReach returns the states reachable from start over edges.
func fsmReach(start int64, edges map[int64][]int64) map[int64]bool {
	seen := map[int64]bool{start: true}
	work := []int64{start}
	for len(work) > 0 {
		v := work[0]
		work = work[1:]
		for _, to := range edges[v] {
			if !seen[to] {
				seen[to] = true
				work = append(work, to)
			}
		}
	}
	return seen
}

func fsmReverse(edges map[int64][]int64) map[int64][]int64 {
	rev := make(map[int64][]int64)
	for from, tos := range edges {
		for _, to := range tos {
			rev[to] = append(rev[to], from)
		}
	}
	return rev
}

// fsmSetStateTargets collects the constant arguments of every
// setState(...) call in the package's non-test files.
func fsmSetStateTargets(pass *Pass, stateType *types.Named) map[int64]bool {
	targets := make(map[int64]bool)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || calleeName(call) != "setState" {
				return true
			}
			if v, ok := fsmConstVal(pass, call.Args[0], stateType); ok {
				targets[v] = true
			}
			return true
		})
	}
	return targets
}
