package analysis

// Fixture harness: each pass is tested against a deliberately broken
// package under testdata/src/<fixture>. Lines that must be flagged
// carry a trailing comment of the form
//
//	// want `regex`
//
// (one or more quoted regexes; double quotes work too). The harness
// loads the fixture through the real loader, runs the one analyzer,
// and fails on any unmatched finding or unmet expectation — so it
// exercises the exact pipeline cmd/rftplint uses.

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRE extracts the quoted regexes of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

func runFixture(t *testing.T, a *Analyzer, fixture string) *Result {
	t.Helper()
	pkgs, err := Load("", nil, "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", fixture)
	}

	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want quote %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regex %q: %v", pos, raw, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: raw,
						})
					}
				}
			}
		}
	}

	res, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
	}

	for _, f := range res.Findings {
		matched := false
		for _, w := range wants {
			if w.met || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, a.Name, w.raw)
		}
	}
	return res
}

// findingsString renders findings for debugging output.
func findingsString(res *Result) string {
	var sb strings.Builder
	for _, f := range res.Findings {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return sb.String()
}
