package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MsgExhaustive machine-checks the wire-protocol surface three ways:
//
//   - Every switch over a MsgType-named type must either cover every
//     constant of that type or carry an explicit default clause. The
//     paper's phase machine fails silently when a new message type is
//     added to wire but a dispatch switch in source/sink/sessmgr is
//     not extended — the message is dropped with no trace, which
//     presents as a remote peer hanging.
//   - Every Flag* bit constant must be used outside its declaring
//     file (whole-program check). A dead flag means one side of the
//     protocol sets or expects a bit the other never looks at.
//   - Encoder/decoder symmetry: for each struct with both an
//     Encode*- and a Decode*-named function in its package, the field
//     sets they touch must match (a field written on the wire but
//     never parsed is silent data loss; a field parsed but never
//     written reads garbage), and every decoder must bounds-check its
//     input with len() before indexing.
//
// Dispatch and codec checks skip _test.go files; flag *uses* in tests
// still count toward liveness. The flag rule is whole-program: it is
// only meaningful when the full module is loaded (rftplint ./... from
// the module root, as make lint does) — running it on the declaring
// package alone cannot see the importers that keep a flag alive.
var MsgExhaustive = &Analyzer{
	Name:  "msgexhaustive",
	Doc:   "check MsgType switch coverage, flag-bit liveness, and encoder/decoder field symmetry",
	Run:   runMsgExhaustive,
	Begin: func() any { return newFlagLiveness() },
	End:   endMsgExhaustive,
}

// flagLiveness is the whole-program state for the flag-bit rule.
type flagLiveness struct {
	// decls maps "pkgpath.FlagName" to the declaration site.
	decls map[string]flagDecl
	// usedElsewhere marks flags referenced outside their declaring file.
	usedElsewhere map[string]bool
}

type flagDecl struct {
	pos  token.Pos
	file string
	name string
}

func newFlagLiveness() *flagLiveness {
	return &flagLiveness{
		decls:         make(map[string]flagDecl),
		usedElsewhere: make(map[string]bool),
	}
}

func runMsgExhaustive(pass *Pass) error {
	live := pass.Shared.(*flagLiveness)
	codecs := make(map[*types.Named]*codecInfo)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")
		collectFlagRefs(pass, f, fname, live)
		if isTest {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				checkMsgTypeSwitch(pass, sw)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				collectCodec(pass, fd, codecs)
			}
		}
	}
	checkCodecSymmetry(pass, codecs)
	return nil
}

// isFlagBit reports whether obj is a protocol flag constant: named
// Flag*, integer, and a single bit (power of two).
func isFlagBit(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok || !strings.HasPrefix(c.Name(), "Flag") {
		return false
	}
	v, ok := constant.Uint64Val(c.Val())
	return ok && v != 0 && v&(v-1) == 0
}

// flagKey addresses a flag constant across package variants: the loader
// visits test-variant packages ("pkg [pkg.test]") whose objects must
// unify with the export-data view other packages import.
func flagKey(obj types.Object) string {
	path := obj.Pkg().Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path + "." + obj.Name()
}

// collectFlagRefs records Flag* declarations and cross-file uses.
func collectFlagRefs(pass *Pass, f *ast.File, fname string, live *flagLiveness) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil && isFlagBit(obj) {
			live.decls[flagKey(obj)] = flagDecl{pos: id.Pos(), file: fname, name: obj.Name()}
		}
		if obj := pass.Info.Uses[id]; obj != nil && isFlagBit(obj) {
			key := flagKey(obj)
			declFile := pass.Fset.Position(obj.Pos()).Filename
			if fname != declFile {
				live.usedElsewhere[key] = true
			}
		}
		return true
	})
}

func endMsgExhaustive(shared any, report func(Diagnostic)) {
	live := shared.(*flagLiveness)
	keys := make([]string, 0, len(live.decls))
	for k := range live.decls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if live.usedElsewhere[k] {
			continue
		}
		d := live.decls[k]
		report(Diagnostic{
			Pos: d.pos,
			Message: fmt.Sprintf("flag bit %s is never used outside its declaring file: "+
				"one side of the protocol sets or expects a bit the other never reads", d.name),
		})
	}
}

// checkMsgTypeSwitch enforces exhaustiveness on switches whose tag is a
// MsgType-named constant enumeration.
func checkMsgTypeSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named := msgTypeOf(pass.Info.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	// Every constant of the type, from its declaring package's scope.
	members := make(map[string]constant.Value)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			members[name] = c.Val()
		}
	}
	if len(members) == 0 {
		return
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = x
			case *ast.SelectorExpr:
				id = x.Sel
			}
			if id == nil {
				continue
			}
			if c, ok := pass.Info.Uses[id].(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for name := range members {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	// Report in wire order (constant value), not alphabetically.
	sort.Slice(missing, func(i, j int) bool {
		vi, _ := constant.Uint64Val(members[missing[i]])
		vj, _ := constant.Uint64Val(members[missing[j]])
		return vi < vj
	})
	pass.Report(Diagnostic{
		Pos: sw.Pos(),
		Message: fmt.Sprintf("switch on %s does not handle %s and has no default clause: "+
			"unhandled control messages are dropped without a trace",
			named.Obj().Name(), strings.Join(missing, ", ")),
	})
}

// msgTypeOf unwraps t to a named type whose name is MsgType-like.
func msgTypeOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil
	}
	if !strings.HasSuffix(n.Obj().Name(), "MsgType") {
		return nil
	}
	return n
}

// codecInfo accumulates the encoder/decoder surface of one struct type.
type codecInfo struct {
	encFields map[string]bool
	decFields map[string]bool
	encPos    token.Pos
	decPos    token.Pos
	// decUnchecked holds decoder functions with no len() bounds check.
	decUnchecked []token.Pos
	decNames     map[token.Pos]string
}

// collectCodec classifies fd as an encoder or decoder by name prefix and
// records which fields of its subject struct it touches.
func collectCodec(pass *Pass, fd *ast.FuncDecl, codecs map[*types.Named]*codecInfo) {
	if fd.Body == nil {
		return
	}
	lower := strings.ToLower(fd.Name.Name)
	var enc bool
	switch {
	case strings.HasPrefix(lower, "encode"):
		enc = true
	case strings.HasPrefix(lower, "decode"):
		enc = false
	default:
		return
	}
	// Size/length helpers (EncodedLen) are not codecs.
	if strings.Contains(lower, "len") || strings.Contains(lower, "size") {
		return
	}
	subject := codecSubject(pass, fd)
	if subject == nil {
		return
	}
	info := codecs[subject]
	if info == nil {
		info = &codecInfo{
			encFields: make(map[string]bool),
			decFields: make(map[string]bool),
			decNames:  make(map[token.Pos]string),
		}
		codecs[subject] = info
	}
	fields := info.encFields
	if enc {
		if info.encPos == token.NoPos {
			info.encPos = fd.Name.Pos()
		}
	} else {
		fields = info.decFields
		if info.decPos == token.NoPos {
			info.decPos = fd.Name.Pos()
		}
		if !hasLenBoundsCheck(fd.Body) {
			info.decUnchecked = append(info.decUnchecked, fd.Name.Pos())
			info.decNames[fd.Name.Pos()] = fd.Name.Name
		}
	}
	collectFieldRefs(pass, fd.Body, subject, fields)
}

// codecSubject picks the struct a codec function is about: the receiver,
// else the first same-package named-struct parameter or result.
func codecSubject(pass *Pass, fd *ast.FuncDecl) *types.Named {
	var candidates []ast.Expr
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			candidates = append(candidates, f.Type)
		}
	}
	for _, f := range fd.Type.Params.List {
		candidates = append(candidates, f.Type)
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			candidates = append(candidates, f.Type)
		}
	}
	for _, c := range candidates {
		if n := namedStructOf(pass.Info.TypeOf(c), pass.Pkg); n != nil {
			return n
		}
	}
	return nil
}

// namedStructOf unwraps (pointers to) a named struct declared in pkg.
func namedStructOf(t types.Type, pkg *types.Package) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() != pkg {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// collectFieldRefs adds every field of subject referenced in body — via
// selector or composite-literal key — to out.
func collectFieldRefs(pass *Pass, body ast.Node, subject *types.Named, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if namedStructOf(sel.Recv(), subject.Obj().Pkg()) == subject {
				out[sel.Obj().Name()] = true
			}
		case *ast.CompositeLit:
			if namedStructOf(pass.Info.TypeOf(x), subject.Obj().Pkg()) != subject {
				return true
			}
			for _, e := range x.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		}
		return true
	})
}

// hasLenBoundsCheck reports whether body compares a len(...) call with
// an ordering operator anywhere — the minimum a decoder must do before
// trusting its input.
func hasLenBoundsCheck(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if call, ok := ast.Unparen(side).(*ast.CallExpr); ok && calleeName(call) == "len" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkCodecSymmetry reports field-set mismatches and unchecked
// decoders for every struct with a known codec surface.
func checkCodecSymmetry(pass *Pass, codecs map[*types.Named]*codecInfo) {
	// Deterministic order across the map.
	var subjects []*types.Named
	for n := range codecs {
		subjects = append(subjects, n)
	}
	sort.Slice(subjects, func(i, j int) bool {
		return subjects[i].Obj().Name() < subjects[j].Obj().Name()
	})
	for _, subject := range subjects {
		info := codecs[subject]
		name := subject.Obj().Name()
		for _, pos := range info.decUnchecked {
			pass.Report(Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("decoder %s for %s never bounds-checks its input with len(): "+
					"a truncated message would panic the control plane", info.decNames[pos], name),
			})
		}
		if info.encPos == token.NoPos || info.decPos == token.NoPos {
			continue // symmetry needs both halves
		}
		for _, f := range sortedDiff(info.encFields, info.decFields) {
			pass.Report(Diagnostic{
				Pos: info.encPos,
				Message: fmt.Sprintf("field %s.%s is written by the encoder but never read by the decoder: "+
					"silent data loss on the wire", name, f),
			})
		}
		for _, f := range sortedDiff(info.decFields, info.encFields) {
			pass.Report(Diagnostic{
				Pos: info.decPos,
				Message: fmt.Sprintf("field %s.%s is read by the decoder but never written by the encoder: "+
					"it parses bytes the encoder never produces", name, f),
			})
		}
	}
}

// sortedDiff returns the keys of a missing from b, sorted.
func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
