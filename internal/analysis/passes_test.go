package analysis

import "testing"

func TestFSMTransitionFixture(t *testing.T) {
	res := runFixture(t, FSMTransition, "fsm")
	assertSuppression(t, res, "fsmtransition")
}

func TestSpanStampFixture(t *testing.T) {
	res := runFixture(t, SpanStamp, "spanstamp")
	assertSuppression(t, res, "spanstamp")
}

func TestBufOwnershipFixture(t *testing.T) {
	res := runFixture(t, BufOwnership, "bufown")
	assertSuppression(t, res, "bufownership")
}

func TestAtomicMixFixture(t *testing.T) {
	res := runFixture(t, AtomicMix, "atomicmix")
	assertSuppression(t, res, "atomicmix")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, "lockorder")
}

func TestLoopConfineFixture(t *testing.T) {
	res := runFixture(t, LoopConfine, "loopconfine")
	assertSuppression(t, res, "loopconfine")
}

func TestSessionAffinityFixture(t *testing.T) {
	res := runFixture(t, SessionAffinity, "sessionaffinity")
	assertSuppression(t, res, "sessionaffinity")
}

// assertSuppression checks that the fixture's //lint:allow line was
// recorded (the want-matching in runFixture already proved it produced
// no finding).
func assertSuppression(t *testing.T, res *Result, analyzer string) {
	t.Helper()
	for _, s := range res.Suppressions {
		if s.Analyzer == analyzer {
			if s.Reason == "" {
				t.Errorf("suppression at %s has no justification", s.Pos)
			}
			return
		}
	}
	t.Errorf("no %s suppression recorded; fixture should carry one //lint:allow", analyzer)
}

// TestRepoClean runs the full suite over the whole module — the same
// invocation as make lint — and fails on any finding. Fixture packages
// under testdata are excluded from ./... expansion by the go tool.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	pkgs, err := Load("../..", nil, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(res.Findings) > 0 {
		t.Errorf("suite reported %d findings on the tree:\n%s", len(res.Findings), findingsString(res))
	}
}
