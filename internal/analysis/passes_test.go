package analysis

import "testing"

func TestFSMTransitionFixture(t *testing.T) {
	res := runFixture(t, FSMTransition, "fsm")
	assertSuppression(t, res, "fsmtransition")
}

func TestSpanStampFixture(t *testing.T) {
	res := runFixture(t, SpanStamp, "spanstamp")
	assertSuppression(t, res, "spanstamp")
}

func TestBufOwnershipFixture(t *testing.T) {
	res := runFixture(t, BufOwnership, "bufown")
	assertSuppression(t, res, "bufownership")
}

func TestAtomicMixFixture(t *testing.T) {
	res := runFixture(t, AtomicMix, "atomicmix")
	assertSuppression(t, res, "atomicmix")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, "lockorder")
}

func TestLoopConfineFixture(t *testing.T) {
	res := runFixture(t, LoopConfine, "loopconfine")
	assertSuppression(t, res, "loopconfine")
}

func TestSessionAffinityFixture(t *testing.T) {
	res := runFixture(t, SessionAffinity, "sessionaffinity")
	assertSuppression(t, res, "sessionaffinity")
}

func TestBlockLeakFixture(t *testing.T) {
	res := runFixture(t, BlockLeak, "blockleak")
	assertSuppression(t, res, "blockleak")
}

func TestMsgExhaustiveFixture(t *testing.T) {
	res := runFixture(t, MsgExhaustive, "msgexhaustive")
	assertSuppression(t, res, "msgexhaustive")
}

func TestFSMLiveFixture(t *testing.T) {
	runFixture(t, FSMLive, "fsmlive")
}

// assertSuppression checks that the fixture's //lint:allow line was
// recorded (the want-matching in runFixture already proved it produced
// no finding).
func assertSuppression(t *testing.T, res *Result, analyzer string) {
	t.Helper()
	for _, s := range res.Suppressions {
		if s.Analyzer == analyzer {
			if s.Reason == "" {
				t.Errorf("suppression at %s has no justification", s.Pos)
			}
			return
		}
	}
	t.Errorf("no %s suppression recorded; fixture should carry one //lint:allow", analyzer)
}

// TestStaleSuppressionDetection pins the staleness semantics on a
// fixture: an allow whose pass ran and matched nothing is stale, but
// only relative to the set of analyzers that actually ran.
func TestStaleSuppressionDetection(t *testing.T) {
	pkgs, err := Load("", nil, "./testdata/src/staleallow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res, err := Run(pkgs, []*Analyzer{BlockLeak})
	if err != nil {
		t.Fatalf("running blockleak: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("fixture is clean but got findings:\n%s", findingsString(res))
	}
	stale := res.Stale([]*Analyzer{BlockLeak})
	if len(stale) != 1 || stale[0].Analyzer != "blockleak" {
		t.Fatalf("stale = %+v, want the one unused blockleak allow", stale)
	}
	// The same suppression is not judged against a run that did not
	// include its pass.
	if got := res.Stale([]*Analyzer{FSMLive}); len(got) != 0 {
		t.Errorf("allow for a pass outside the run set reported stale: %+v", got)
	}
}

// TestRepoClean runs the full suite over the whole module — the same
// invocation as make lint — and fails on any finding or any stale
// suppression (the -strict-allows gate). Fixture packages under
// testdata are excluded from ./... expansion by the go tool.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	pkgs, err := Load("../..", nil, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(res.Findings) > 0 {
		t.Errorf("suite reported %d findings on the tree:\n%s", len(res.Findings), findingsString(res))
	}
	for _, s := range res.Stale(All()) {
		t.Errorf("%s: stale suppression: allow %s matched no finding (fix shipped? remove the comment)", s.Pos, s.Analyzer)
	}
}
