package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the mutex-acquisition graph across every analyzed
// package and flags cycles and same-receiver reacquisition.
//
// A lock class is a mutex declaration site — a struct field
// ("netfabric.QP.sendMu") or a package-level variable. Within each
// function the pass walks statements in source order, tracking which
// classes are held; acquiring class B while holding class A records the
// edge A -> B. Two whole-program findings result:
//
//   - a cycle A -> B -> ... -> A in the class graph: two executions
//     taking the component's edges in different orders can deadlock;
//   - calling, while holding a lock, a same-package method that
//     acquires the same class on the same receiver: Go mutexes are not
//     reentrant, so that path self-deadlocks outright.
//
// The walk is syntactic and intraprocedural (plus the one-level call
// check above): conditional unlocks are handled by forking the held set
// into branches, and a deferred Unlock holds to function end. Nested
// acquisition of the SAME class on DIFFERENT instances (hierarchies
// like a registry locking its child) is reported as a self-edge cycle —
// suppress with //lint:allow lockorder and a justification of the
// instance ordering.
var LockOrder = &Analyzer{
	Name:  "lockorder",
	Doc:   "flag mutex-acquisition cycles and same-receiver lock reacquisition",
	Run:   runLockOrder,
	Begin: func() any { return newLockGraph() },
	End:   finishLockOrder,
}

// lockEdge is one observed nested acquisition.
type lockEdge struct {
	from, to string
	pos      token.Pos
	detail   string
}

type lockGraph struct {
	edges []lockEdge
	seen  map[string]bool // dedupe (from, to, pos)
}

func newLockGraph() *lockGraph { return &lockGraph{seen: make(map[string]bool)} }

func (g *lockGraph) add(e lockEdge) {
	key := fmt.Sprintf("%s|%s|%d", e.from, e.to, e.pos)
	if g.seen[key] {
		return
	}
	g.seen[key] = true
	g.edges = append(g.edges, e)
}

// heldLock is one acquisition currently in force.
type heldLock struct {
	class string
	path  string // caller-side instance path ("q.sendMu")
	pos   token.Pos
}

// lockOp classifies one mutex method call.
type lockOp struct {
	acquire bool // Lock, RLock, TryLock, TryRLock
	release bool // Unlock, RUnlock
	class   string
	path    string
}

func runLockOrder(pass *Pass) error {
	g := pass.Shared.(*lockGraph)

	// Footprints: for each function in this package, the classes it
	// acquires directly on its own receiver.
	receiverLocks := make(map[*types.Func]map[string]bool)
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	for _, fd := range fns {
		obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
			continue
		}
		recvName := fd.Recv.List[0].Names[0].Name
		fp := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op := classifyLockOp(pass, call); op != nil && op.acquire {
				// Only locks rooted at the receiver count ("x.mu.Lock"
				// where x is the receiver).
				if op.path == recvName+"."+lastField(op.class) || strings.HasPrefix(op.path, recvName+".") {
					fp[op.class] = true
				}
			}
			return true
		})
		if len(fp) > 0 {
			receiverLocks[obj] = fp
		}
	}

	for _, fd := range fns {
		w := &lockWalker{pass: pass, g: g, receiverLocks: receiverLocks}
		w.walkStmts(fd.Body.List, nil)
	}
	return nil
}

// lockWalker tracks held locks through one function body.
type lockWalker struct {
	pass          *Pass
	g             *lockGraph
	receiverLocks map[*types.Func]map[string]bool
}

// walkStmts processes stmts in order against the held set, returning
// the set as of the end of the sequence. Branch bodies fork a copy.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	fork := func(body *ast.BlockStmt) {
		if body != nil {
			w.walkStmts(body.List, append([]heldLock(nil), held...))
		}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.scanCalls(s.Cond, held)
		fork(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else, append([]heldLock(nil), held...))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		fork(s.Body)
		return held
	case *ast.RangeStmt:
		fork(s.Body)
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, append([]heldLock(nil), held...))
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, append([]heldLock(nil), held...))
				return false
			}
			return true
		})
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		if op := classifyLockOp(w.pass, s.Call); op != nil && op.release {
			// Held to function end: leave it on the stack for the rest of
			// the walk (the unlock fires only at return).
			return held
		}
		return held
	case *ast.GoStmt:
		// The goroutine body runs with its own (empty) held set.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, nil)
		}
		return held
	case *ast.ExprStmt:
		return w.scanCalls(s.X, held)
	default:
		// Assignments, returns, sends, declarations: process any calls
		// they contain in source order.
		var held2 = held
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				w.walkStmts(fl.Body.List, nil)
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				held2 = w.applyCall(call, held2)
			}
			return true
		})
		return held2
	}
}

// scanCalls processes every call within an expression in source order.
func (w *lockWalker) scanCalls(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, nil)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			held = w.applyCall(call, held)
		}
		return true
	})
	return held
}

// applyCall updates the held set for one call: mutex operations push
// and pop; calls to same-package methods are checked for same-receiver
// reacquisition.
func (w *lockWalker) applyCall(call *ast.CallExpr, held []heldLock) []heldLock {
	if op := classifyLockOp(w.pass, call); op != nil {
		if op.acquire {
			for _, h := range held {
				if h.class == op.class && h.path == op.path {
					w.pass.Report(Diagnostic{
						Pos: call.Pos(),
						Message: fmt.Sprintf("%s acquired while already held (locked at %s): Go mutexes are not reentrant",
							op.path, w.pass.Fset.Position(h.pos)),
					})
					return held
				}
			}
			for _, h := range held {
				if h.class != op.class || h.path != op.path {
					w.g.add(lockEdge{
						from: h.class, to: op.class, pos: call.Pos(),
						detail: fmt.Sprintf("%s locked while holding %s", op.path, h.path),
					})
				}
			}
			return append(held, heldLock{class: op.class, path: op.path, pos: call.Pos()})
		}
		if op.release {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].class == op.class && held[i].path == op.path {
					return append(append([]heldLock(nil), held[:i]...), held[i+1:]...)
				}
			}
			return held
		}
	}
	// Same-receiver reentrancy through one call level.
	if len(held) > 0 {
		if callee, recvPath := calleeMethod(w.pass, call); callee != nil {
			if fp := w.receiverLocks[callee]; fp != nil {
				for _, h := range held {
					ownerPath := strings.TrimSuffix(h.path, "."+lastField(h.class))
					if fp[h.class] && ownerPath == recvPath {
						w.pass.Report(Diagnostic{
							Pos: call.Pos(),
							Message: fmt.Sprintf("call to %s while holding %s (locked at %s): the callee locks the same mutex on the same receiver",
								callee.Name(), h.path, w.pass.Fset.Position(h.pos)),
						})
					}
				}
			}
		}
	}
	return held
}

// classifyLockOp recognizes x.mu.Lock()/Unlock()/RLock()/RUnlock()/
// TryLock()/TryRLock() where mu is a sync.Mutex or sync.RWMutex.
func classifyLockOp(pass *Pass, call *ast.CallExpr) *lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire, release bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return nil
	}
	mu := ast.Unparen(sel.X)
	if !isSyncMutex(pass.Info.TypeOf(mu)) {
		return nil
	}
	class := lockClass(pass, mu)
	if class == "" {
		return nil
	}
	return &lockOp{acquire: acquire, release: release, class: class, path: pathString(mu)}
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (through
// one pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockClass names the declaration site of a mutex expression:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level
// variables, "pkg.func.var" for locals.
func lockClass(pass *Pass, mu ast.Expr) string {
	switch mu := mu.(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if s, ok := pass.Info.Selections[mu]; ok {
			obj = s.Obj()
		} else {
			obj = pass.Info.Uses[mu.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			return fieldClass(pass, v)
		}
		return objClass(v)
	case *ast.Ident:
		if v, ok := pass.Info.ObjectOf(mu).(*types.Var); ok {
			return objClass(v)
		}
	}
	return ""
}

func objClass(v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	return pkg + "." + v.Name()
}

// fieldClass names a mutex field by its owning struct type.
func fieldClass(pass *Pass, v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
		scope := v.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return pkg + "." + tn.Name() + "." + v.Name()
				}
			}
		}
	}
	// Field of an unnamed struct: key by position for stability.
	return fmt.Sprintf("%s.(anon@%d).%s", pkg, v.Pos(), v.Name())
}

// lastField returns the final component of a class name.
func lastField(class string) string {
	if i := strings.LastIndex(class, "."); i >= 0 {
		return class[i+1:]
	}
	return class
}

// calleeMethod resolves a call to a method defined in the analyzed
// package, returning the callee and the caller-side receiver path.
func calleeMethod(pass *Pass, call *ast.CallExpr) (*types.Func, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil, ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil, ""
	}
	return fn, pathString(sel.X)
}

// finishLockOrder reports every edge participating in a cycle of the
// whole-program class graph.
func finishLockOrder(shared any, report func(Diagnostic)) {
	g := shared.(*lockGraph)
	adj := make(map[string]map[string]bool)
	for _, e := range g.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	// A node set is cyclic when it can reach itself. Compute reachability
	// per node (graphs here are tiny).
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var cyclic []lockEdge
	for _, e := range g.edges {
		if e.from == e.to || reaches(e.to, e.from) {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool { return cyclic[i].pos < cyclic[j].pos })
	for _, e := range cyclic {
		kind := "completes a lock-order cycle"
		if e.from == e.to {
			kind = "nests two instances of the same lock class (order by instance is unchecked)"
		}
		report(Diagnostic{
			Pos:     e.pos,
			Message: fmt.Sprintf("%s: edge %s -> %s (%s)", kind, e.from, e.to, e.detail),
		})
	}
}
