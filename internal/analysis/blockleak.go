package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"
)

// BlockLeak flags pool acquisitions that can leak on some path out of
// the function.
//
// The two worst bugs shipped so far were lifecycle leaks on
// rarely-taken paths: a parked frame retaining its payload after
// teardown (PR 2) and completed-but-unacked sessions stranded by a
// disconnect (PR 8). Both were invisible to per-statement matching
// because the leak *is* a path property. This pass runs the CFG +
// forward dataflow engine over every function: a value acquired from a
// pool (a method named get/Get on a pool-typed receiver, or
// bufpool.Get) is tracked until ownership provably leaves the function
// on that path —
//
//   - released: passed to a call named put/Put/release/Release/
//     free/Free/recycle/repost (any case),
//   - handed off: passed to any other call (a one-level summary of
//     same-package callees distinguishes true handoffs from callees
//     that only read the value and return it to the caller's care),
//   - escaped: stored into a field, map, slice, channel, or composite
//     literal, captured by a function literal (the closure owns it
//     now), address-taken, aliased, or returned.
//
// Any acquisition still held when a path reaches the function's normal
// exit — error returns and Close included, with deferred calls applied
// — is reported at the acquisition site. Paths that terminate in panic
// are exempt: every pool invariant is already moot when the process is
// dying of a protocol bug. Branch conditions refine facts, so the
// ubiquitous `if b == nil { return }` guard after a pool draw does not
// trip the pass. _test.go files are skipped: tests deliberately park
// blocks in arbitrary states.
var BlockLeak = &Analyzer{
	Name: "blockleak",
	Doc:  "flag pool acquisitions that miss release/handoff on some path out of the function",
	Run:  runBlockLeak,
}

// leakReleaseNames are callee names that return a resource to its pool.
var leakReleaseNames = map[string]bool{
	"put": true, "Put": true,
	"release": true, "Release": true,
	"free": true, "Free": true,
	"recycle": true, "Recycle": true,
	"repost": true, "Repost": true,
}

// leakFacts maps a tracked local to its acquisition position. Join is
// union (a leak on any path is a leak), with the earliest site kept
// when paths disagree.
type leakFacts map[types.Object]token.Pos

// leakSummary is the one-level effect of a same-package callee on its
// parameters: absorbed[i] means the callee releases or takes ownership
// of parameter i (receiver first when hasRecv), so the caller stops
// tracking; a false entry means the callee only reads it and the
// caller still owns the value afterwards.
type leakSummary struct {
	absorbed []bool
	hasRecv  bool
}

func runBlockLeak(pass *Pass) error {
	sums := buildLeakSummaries(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeLeaks(pass, sums, fd.Body, fd.Name.Name)
			// Nested literals are opaque to the enclosing analysis (they
			// run at another time); analyze each body as its own function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeLeaks(pass, sums, lit.Body, "func literal")
				}
				return true
			})
		}
	}
	return nil
}

func analyzeLeaks(pass *Pass, sums map[*types.Func]leakSummary, body *ast.BlockStmt, name string) {
	g := BuildCFG(body)
	if g == nil {
		return
	}
	res := ForwardDataflow(g, Transfer[leakFacts]{
		Entry: func() leakFacts { return nil },
		Join:  joinLeakFacts,
		Equal: func(a, b leakFacts) bool { return maps.Equal(a, b) },
		Node:  func(n ast.Node, f leakFacts) leakFacts { return leakNode(pass, sums, body, n, f) },
		Edge:  func(e *CFGEdge, f leakFacts) leakFacts { return leakEdge(pass, e, f) },
	})
	for obj, pos := range res.In[g.Exit] {
		pass.Report(Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s acquired from a pool may not be released on every path out of %s: "+
				"each acquisition must reach a release, repost, or ownership handoff on all returns",
				obj.Name(), name),
		})
	}
}

func joinLeakFacts(a, b leakFacts) leakFacts {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := maps.Clone(a)
	for obj, pos := range b {
		if old, ok := out[obj]; !ok || pos < old {
			out[obj] = pos
		}
	}
	return out
}

// leakNode is the per-node transfer: apply kills (release, handoff,
// escape, redefinition) then acquisitions.
func leakNode(pass *Pass, sums map[*types.Func]leakSummary, enclosing *ast.BlockStmt, n ast.Node, f leakFacts) leakFacts {
	var kills []types.Object
	type acq struct {
		obj types.Object
		pos token.Pos
	}
	var acquires []acq

	// Acquisitions: `x := pool.get()` / `x = bufpool.Get(n)` with a
	// plain-ident destination (results stored anywhere else escape
	// immediately and are never tracked).
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
				rhs = ast.Unparen(ta.X)
			}
			call, ok := rhs.(*ast.CallExpr)
			if ok && isAcquisition(pass, call) {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					acquires = append(acquires, acq{obj, call.Pos()})
				}
			}
		}
	}

	inspectIdents(n, func(stack []ast.Node, id *ast.Ident) {
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, tracked := f[obj]; !tracked {
			return
		}
		if leakEffectKills(pass, sums, stack, id) {
			kills = append(kills, obj)
		}
	})

	if len(kills) == 0 && len(acquires) == 0 {
		return f
	}
	out := maps.Clone(f)
	if out == nil {
		out = make(leakFacts)
	}
	for _, obj := range kills {
		delete(out, obj)
	}
	for _, a := range acquires {
		out[a.obj] = a.pos
	}
	return out
}

// leakEdge kills a tracked value on the branch edge that proves it nil
// (`if b == nil { return }` guards after a pool draw).
func leakEdge(pass *Pass, e *CFGEdge, f leakFacts) leakFacts {
	if e.Cond == nil || len(f) == 0 {
		return f
	}
	be, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return f
	}
	var id *ast.Ident
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		id, _ = y.(*ast.Ident)
	} else if isNilIdent(y) {
		id, _ = x.(*ast.Ident)
	}
	if id == nil {
		return f
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return f
	}
	if _, tracked := f[obj]; !tracked {
		return f
	}
	// Edge taken with cond true: x==nil holds -> x is nil there.
	nilHere := (be.Op == token.EQL) != e.Negated
	if !nilHere {
		return f
	}
	out := maps.Clone(f)
	delete(out, obj)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isAcquisition recognises pool draws: a call to get/Get whose receiver
// is a pool-named type (core's block pool, sync.Pool frame pools) or a
// pool-named package (bufpool.Get).
func isAcquisition(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "get" && name != "Get" {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.ObjectOf(id).(*types.PkgName); ok {
			return strings.Contains(strings.ToLower(pn.Imported().Name()), "pool")
		}
	}
	return poolish(pass.Info.TypeOf(sel.X))
}

// poolish reports whether t names a pool type (through pointers).
func poolish(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && strings.Contains(strings.ToLower(n.Obj().Name()), "pool")
}

// inspectIdents walks n keeping an ancestor stack and visits every
// identifier with its enclosure context (innermost parent last).
func inspectIdents(n ast.Node, visit func(stack []ast.Node, id *ast.Ident)) {
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		if id, ok := x.(*ast.Ident); ok {
			visit(stack, id)
		}
		return true
	})
}

// leakEffectKills classifies one occurrence of a tracked identifier and
// reports whether ownership leaves the function here (release, handoff,
// escape) — true means stop tracking. Reads through the value (field
// access, indexing, comparison) keep the obligation alive.
func leakEffectKills(pass *Pass, sums map[*types.Func]leakSummary, stack []ast.Node, id *ast.Ident) bool {
	// Captured by a nested function literal: the closure owns it now
	// (that is how completion callbacks release blocks asynchronously).
	for _, a := range stack[:len(stack)-1] {
		if _, ok := a.(*ast.FuncLit); ok {
			return true
		}
	}

	var e ast.Expr = id
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			e = p
		case *ast.TypeAssertExpr:
			if p.X != e {
				return false
			}
			e = p
		case *ast.StarExpr:
			if p.X != e {
				return false
			}
			e = p
		case *ast.UnaryExpr:
			if p.Op == token.AND && p.X == e {
				return true // address escapes
			}
			return false
		case *ast.SelectorExpr:
			if p.X != e {
				return false
			}
			// Access through the value. A method call may release it;
			// reads and field writes keep tracking.
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
					return methodCallAbsorbs(pass, sums, p.Sel)
				}
			}
			// A method value or func-typed field (`t.run`) carries its
			// receiver with it: once the value leaves, the closure owns
			// it, same as a FuncLit capture.
			if t := pass.Info.TypeOf(p); t != nil {
				if _, ok := t.Underlying().(*types.Signature); ok {
					return true
				}
			}
			return false
		case *ast.SliceExpr:
			if p.X != e {
				return false
			}
			e = p // a slice of the buffer is the buffer for escape purposes
		case *ast.IndexExpr:
			if p.Index == e {
				return true // stored as a map key / index
			}
			return false // indexing into the tracked buffer: a read/write through it
		case *ast.CallExpr:
			return callArgAbsorbs(pass, sums, p, e)
		case *ast.KeyValueExpr, *ast.CompositeLit:
			return true // stored in a literal
		case *ast.SendStmt:
			return p.Value == e
		case *ast.ReturnStmt:
			return true // ownership to the caller
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == e {
					// Redefinition drops the old handle — except the
					// self-append idiom `b = append(b, ...)`.
					return !isSelfAppend(pass, p, e)
				}
			}
			for _, rhs := range p.Rhs {
				if ast.Unparen(rhs) == e {
					return true // aliased or stored
				}
			}
			return false
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause, *ast.IncDecStmt:
			return false
		default:
			return false
		}
	}
	return false
}

// methodCallAbsorbs decides whether `obj.m(...)` moves ownership: yes
// for release-named methods, per-summary for same-package methods,
// otherwise no (mutating or reading methods leave the caller owning).
func methodCallAbsorbs(pass *Pass, sums map[*types.Func]leakSummary, sel *ast.Ident) bool {
	if leakReleaseNames[sel.Name] {
		return true
	}
	if fn, ok := pass.Info.Uses[sel].(*types.Func); ok {
		if sum, ok := sums[fn]; ok && sum.hasRecv && len(sum.absorbed) > 0 {
			return sum.absorbed[0]
		}
	}
	return false
}

// callArgAbsorbs decides whether passing the tracked value as an
// argument moves ownership out of the function.
func callArgAbsorbs(pass *Pass, sums map[*types.Func]leakSummary, call *ast.CallExpr, arg ast.Expr) bool {
	argIdx := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == arg {
			argIdx = i
		}
	}
	if argIdx < 0 {
		return false // e.g. the Fun position; not an argument
	}
	switch name := calleeName(call); name {
	case "len", "cap", "copy", "print", "println", "delete":
		return false // reads (or, for delete, drops a map entry the caller owns)
	case "append":
		return argIdx > 0 // append(s, obj) stores obj; append(obj, ...) grows it
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return true // func value / unresolvable: conservative handoff
	}
	if leakReleaseNames[fn.Name()] {
		return true
	}
	sum, ok := sums[fn]
	if !ok {
		return true // foreign or bodyless callee: conservative handoff
	}
	idx := argIdx
	if sum.hasRecv {
		idx++
	}
	if idx >= len(sum.absorbed) {
		idx = len(sum.absorbed) - 1 // variadic tail
	}
	if idx < 0 {
		return true
	}
	return sum.absorbed[idx]
}

// isSelfAppend reports whether lhs in the assignment is the target of
// the `x = append(x, ...)` idiom, which keeps the same obligation alive
// rather than dropping the old handle.
func isSelfAppend(pass *Pass, as *ast.AssignStmt, lhs ast.Expr) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, l := range as.Lhs {
		if ast.Unparen(l) != lhs {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
			return false
		}
		first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		lid, ok2 := ast.Unparen(l).(*ast.Ident)
		return ok && ok2 && pass.Info.ObjectOf(first) == pass.Info.ObjectOf(lid)
	}
	return false
}

// calleeName returns the syntactic callee name ("append", "put", ...).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleeFunc resolves the called function object, when static.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// buildLeakSummaries computes the one-level parameter effects of every
// function declared in the package. While building, calls inside a
// callee are treated conservatively (any call taking the parameter
// absorbs it), which is exactly the one-level cut-off.
func buildLeakSummaries(pass *Pass) map[*types.Func]leakSummary {
	sums := make(map[*types.Func]leakSummary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var params []types.Object
			hasRecv := fd.Recv != nil
			if hasRecv {
				params = append(params, fieldObjs(pass, fd.Recv)...)
			}
			params = append(params, fieldObjs(pass, fd.Type.Params)...)
			absorbed := make([]bool, len(params))
			inspectIdents(fd.Body, func(stack []ast.Node, id *ast.Ident) {
				obj := pass.Info.ObjectOf(id)
				if obj == nil {
					return
				}
				for i, p := range params {
					if p != nil && p == obj && !absorbed[i] && leakEffectKills(pass, nil, stack, id) {
						absorbed[i] = true
					}
				}
			})
			sums[fn] = leakSummary{absorbed: absorbed, hasRecv: hasRecv}
		}
	}
	return sums
}

// fieldObjs flattens a field list to its declared objects, with nil
// placeholders for unnamed entries so indexes stay aligned.
func fieldObjs(pass *Pass, fl *ast.FieldList) []types.Object {
	if fl == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}
