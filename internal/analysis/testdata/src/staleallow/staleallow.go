// Package staleallow is a fixture for stale-suppression detection: its
// one //lint:allow names a pass that runs and finds nothing, so the
// comment is pure shelf-ware and -strict-allows must flag it.
package staleallow

func clean() int {
	//lint:allow blockleak stale excuse: nothing here ever leaked
	return 1
}
