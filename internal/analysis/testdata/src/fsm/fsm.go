// Package fsm is a deliberately broken fixture for the fsmtransition
// pass: a minimal setState-guarded machine plus every way of bypassing
// the guard that the pass must catch.
package fsm

type state int

const (
	idle state = iota
	running
	done
)

type machine struct {
	state state
	runs  int
}

var validNext = map[state][]state{
	idle:    {running},
	running: {done},
	done:    {idle},
}

func (m *machine) setState(next state) {
	for _, ok := range validNext[m.state] {
		if ok == next {
			m.state = next
			return
		}
	}
	panic("fsm: illegal transition")
}

func legal(m *machine) {
	m.setState(running)
	m.runs++ // unguarded field: fine
}

func directWrite(m *machine) {
	m.state = done // want `direct write of machine\.state outside setState`
}

func increment(m *machine) {
	m.state++ // want `direct write of machine\.state outside setState`
}

func literalKeyed() *machine {
	return &machine{state: running} // want `composite-literal initialization of machine\.state`
}

func literalPositional() machine {
	return machine{running, 0} // want `composite-literal initialization of machine\.state`
}

func addressTaken(m *machine) *state {
	return &m.state // want `taking the address of machine\.state`
}

func suppressed(m *machine) {
	m.state = idle //lint:allow fsmtransition fixture: proves suppression drops the finding
}
