// Package spanstamp is a deliberately broken fixture for the spanstamp
// pass: a setState-guarded block stamping its lifecycle into the real
// spans.Recorder, plus every way of stamping outside the guard that
// the pass must catch.
package spanstamp

import "rftp/internal/spans"

type block struct {
	state   uint8
	spanRef spans.Ref
	spans   *spans.Recorder
}

func (b *block) setState(next uint8) {
	b.spanRef = b.spans.Transition(b.spanRef, b.state, next) // guarded: fine
	b.state = next
}

func rogueStamp(rec *spans.Recorder) {
	rec.Transition(spans.RefNone, spans.StateFree, spans.StateLoading) // want `span stamp .* outside setState`
}

func (b *block) skipGuard(next uint8) {
	b.spanRef = b.spans.Transition(b.spanRef, b.state, next) // want `span stamp .* outside setState`
	b.state = next
}

func inClosure(rec *spans.Recorder) func() {
	return func() {
		rec.Transition(spans.RefNone, spans.StateFree, spans.StateLoading) // want `span stamp .* outside setState`
	}
}

func unrelated(rec *spans.Recorder) {
	// Other Recorder methods are not stamps: no finding.
	rec.SetChannel(spans.RefNone, 0)
}

func suppressed(rec *spans.Recorder) {
	rec.Transition(spans.RefNone, spans.StateFree, spans.StateLoading) //lint:allow spanstamp fixture: proves suppression drops the finding
}
