// Package sessionaffinity is a deliberately broken fixture for the
// sessionaffinity pass: per-session records mutated on raw goroutines,
// next to the sanctioned shapes (on-loop methods, closures handed back
// through Post/After, writes to unrelated types) that must stay quiet.
package sessionaffinity

// loop mimics the verbs.Loop scheduling surface.
type loop struct{}

func (l *loop) Post(ch int, fn func())   { fn() }
func (l *loop) After(d int64, fn func()) { fn() }
func (l *loop) enqueue(fn func())        { fn() }

type sessionInfo struct {
	ID    uint32
	Bytes int64
}

// srcSession mirrors the source-side per-tenant record.
type srcSession struct {
	info    sessionInfo
	loads   int
	credits []uint64
	eof     bool
}

// sinkSession mirrors the sink-side per-tenant record.
type sinkSession struct {
	info    sessionInfo
	granted int
	deficit int
}

// unrelated proves the pass keys on the session types, not on field
// names.
type unrelated struct {
	granted int
	loads   int
}

// onLoop is an ordinary method context: assumed loop-confined, fine.
func onLoop(s *srcSession, k *sinkSession) {
	s.loads++
	s.eof = true
	k.granted += 4
	k.deficit = 0
}

func rawAssign(s *srcSession) {
	go func() {
		s.eof = true // want `session-affine write \(srcSession.eof\) on a raw goroutine`
	}()
}

func rawIncDec(s *srcSession) {
	go func() {
		s.loads++ // want `session-affine write \(srcSession.loads\) on a raw goroutine`
	}()
}

func rawOpAssign(k *sinkSession) {
	go func() {
		k.granted += 2 // want `session-affine write \(sinkSession.granted\) on a raw goroutine`
	}()
}

func rawNested(k *sinkSession) {
	go func() {
		k.info.Bytes = 99 // want `session-affine write \(sinkSession.info\) on a raw goroutine`
	}()
}

func rawIndexed(sessions map[uint32]*sinkSession) {
	go func() {
		sessions[1].deficit = 3 // want `session-affine write \(sinkSession.deficit\) on a raw goroutine`
	}()
}

// postedBack crosses a goroutine boundary the sanctioned way: the
// closure is handed to a loop scheduler, so it runs loop-confined.
func postedBack(l *loop, s *srcSession, k *sinkSession) {
	go func() {
		l.Post(0, func() {
			s.loads++
			k.granted--
		})
		l.After(10, func() {
			k.deficit = 0
		})
	}()
}

// handler literals escape through an unknown callee and inherit their
// defining (on-loop) context: no finding.
func handler(l *loop, s *srcSession) {
	l.enqueue(func() {
		s.loads++
	})
}

// otherTypes: same field names on a non-session type stay quiet, as do
// reads of session fields on raw goroutines.
func otherTypes(u *unrelated, s *srcSession, out chan int) {
	go func() {
		u.granted++
		u.loads = 7
		out <- s.loads
	}()
}

func suppressed(k *sinkSession) {
	go func() {
		k.granted = 0 //lint:allow sessionaffinity fixture: proves suppression drops the finding
	}()
}
