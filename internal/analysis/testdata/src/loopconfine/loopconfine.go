// Package loopconfine is a deliberately broken fixture for the
// loopconfine pass: every recognised loop-confined operation executed
// on a raw goroutine, next to the sanctioned shapes (plain on-loop
// calls, closures handed back through Post/After, handler literals)
// that must stay quiet.
package loopconfine

import (
	"rftp/internal/invariant"
	"rftp/internal/spans"
)

// loop mimics the verbs.Loop scheduling surface.
type loop struct{}

func (l *loop) Post(ch int, fn func())   { fn() }
func (l *loop) After(d int64, fn func()) { fn() }
func (l *loop) enqueue(fn func())        { fn() }

type block struct {
	state   uint8
	spanRef spans.Ref
	rec     *spans.Recorder
}

func (b *block) setState(next uint8) {
	b.spanRef = b.rec.Transition(b.spanRef, b.state, next)
	b.state = next
}

// onLoop is an ordinary method context: assumed loop-confined, fine.
func onLoop(b *block, conn uint64) {
	b.setState(1)
	invariant.CreditGrant(conn, 4)
}

func rawClosure(b *block) {
	go func() {
		b.setState(2) // want `loop-confined call \(setState\) on a raw goroutine`
	}()
}

func rawDirect(b *block) {
	go b.setState(3) // want `loop-confined call \(setState\) on a raw goroutine`
}

func rawCredits(conn uint64) {
	go func() {
		invariant.CreditConsume(conn, 1) // want `loop-confined call \(invariant.CreditConsume\) on a raw goroutine`
	}()
}

func rawStamp(rec *spans.Recorder) {
	go func() {
		rec.Transition(spans.RefNone, spans.StateFree, spans.StateLoading) // want `loop-confined call \(spans.Recorder.Transition\) on a raw goroutine`
	}()
}

func rawDeferred(b *block) {
	go func() {
		defer func() {
			b.setState(4) // want `loop-confined call \(setState\) on a raw goroutine`
		}()
	}()
}

// postedBack crosses a goroutine boundary the sanctioned way: the
// closure is handed to a loop scheduler, so it is confined again.
func postedBack(l *loop, b *block, conn uint64) {
	go func() {
		l.Post(0, func() {
			b.setState(5)
			invariant.CreditOutstanding(conn, 0)
		})
		l.After(10, func() {
			b.setState(6)
		})
	}()
}

// handler literals escape through an unknown callee and inherit their
// defining (on-loop) context: no finding.
func handler(l *loop, b *block) {
	l.enqueue(func() {
		b.setState(7)
	})
}

func suppressed(b *block) {
	go func() {
		b.setState(8) //lint:allow loopconfine fixture: proves suppression drops the finding
	}()
}
