// Package bufown is a deliberately broken fixture for the bufownership
// pass: a minimal PostSend queue plus every use-after-post shape the
// pass must catch, and the ownership-retained paths it must not flag.
package bufown

type sendWR struct {
	Data []byte
	Imm  uint32
}

type queue struct{ posted int }

func (q *queue) PostSend(wr *sendWR) error {
	q.posted++
	return nil
}

func mutateAfterPost(q *queue, buf []byte) {
	buf[0] = 1 // fine: not posted yet
	wr := &sendWR{Data: buf}
	if err := q.PostSend(wr); err != nil {
		buf[0] = 0 // fine: rejected post, the caller still owns the buffer
		return
	}
	buf[1] = 2 // want `write into posted buffer buf`
}

func fieldWriteAfterPost(q *queue, wr *sendWR) {
	_ = q.PostSend(wr)
	wr.Imm = 7 // want `write to field wr\.Imm of posted work request`
}

func repost(q *queue, wr *sendWR) {
	if err := q.PostSend(wr); err != nil {
		return
	}
	_ = q.PostSend(wr) // want `work request wr reposted`
}

func copyAndAppend(q *queue, buf, src []byte) []byte {
	wr := &sendWR{Data: buf}
	if err := q.PostSend(wr); err != nil {
		return nil
	}
	copy(buf, src)        // want `copy into posted buffer buf`
	return append(buf, 0) // want `append to posted buffer buf`
}

func trackedThroughDataField(q *queue, wr *sendWR, buf []byte) {
	wr.Data = buf
	if err := q.PostSend(wr); err != nil {
		return
	}
	buf[0] = 3 // want `write into posted buffer buf`
}

func suppressed(q *queue, buf []byte) {
	wr := &sendWR{Data: buf}
	if err := q.PostSend(wr); err != nil {
		return
	}
	buf[0] = 4 //lint:allow bufownership fixture: proves suppression drops the finding
}
