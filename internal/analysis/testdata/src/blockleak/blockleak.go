// Package blockleak is a deliberately broken fixture for the blockleak
// pass: a minimal block pool plus every leak shape the flow-sensitive
// engine must catch, and the release/handoff/escape paths it must not
// flag.
package blockleak

type block struct {
	data []byte
	seq  uint64
}

type pool struct{ free []*block }

func (p *pool) get() *block {
	if len(p.free) == 0 {
		return nil
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

func (p *pool) put(b *block) { p.free = append(p.free, b) }

var sendQueue []*block

// post absorbs b: it escapes into the send queue, so the one-level
// summary marks the parameter as a handoff.
func post(b *block) error {
	sendQueue = append(sendQueue, b)
	return nil
}

func inspect(b *block) int { return len(b.data) } // reads only: caller still owns b

// leakOnErrorPath is the canonical bug: the happy path releases, the
// early error return does not.
func leakOnErrorPath(p *pool, fail bool) error {
	b := p.get() // want `b acquired from a pool may not be released on every path out of leakOnErrorPath`
	if fail {
		return errFailed // leak: b never released on this path
	}
	p.put(b)
	return nil
}

// leakInSwitchArm leaks on exactly one arm of a switch.
func leakInSwitchArm(p *pool, mode int) {
	b := p.get() // want `b acquired from a pool may not be released on every path out of leakInSwitchArm`
	switch mode {
	case 0:
		p.put(b)
	case 1:
		_ = post(b) // handoff: fine
	default:
		// leak: falls out of the switch still holding b
	}
}

// readOnlyCalleeStillLeaks exercises the one-level call summary: the
// callee only reads b, so passing it there is not a handoff.
func readOnlyCalleeStillLeaks(p *pool) int {
	b := p.get() // want `b acquired from a pool may not be released on every path out of readOnlyCalleeStillLeaks`
	if b == nil {
		return 0
	}
	return inspect(b)
}

// releasedOnAllPaths is clean: both branches release.
func releasedOnAllPaths(p *pool, fast bool) {
	b := p.get()
	if fast {
		p.put(b)
		return
	}
	p.put(b)
}

// deferredRelease is clean: the deferred put covers every return.
func deferredRelease(p *pool, n int) int {
	b := p.get()
	defer p.put(b)
	if n < 0 {
		return -1
	}
	return len(b.data)
}

// nilGuard is clean: the branch that returns early holds a provably
// nil handle (condition refinement kills the fact on that edge).
func nilGuard(p *pool) {
	b := p.get()
	if b == nil {
		return
	}
	p.put(b)
}

// handoffToFabric is clean: post takes ownership on the summary's
// say-so (b escapes through the send queue).
func handoffToFabric(p *pool) error {
	b := p.get()
	return post(b)
}

// escapeIntoMap is clean: ownership moves to the table.
func escapeIntoMap(p *pool, owned map[uint64]*block) {
	b := p.get()
	owned[b.seq] = b
}

// closureOwns is clean: the completion callback captures b and is the
// release path (how asynchronous completions work in the data path).
func closureOwns(p *pool, onDone func(func())) {
	b := p.get()
	onDone(func() { p.put(b) })
}

// panicPathExempt is clean: the leaking path dies by panic, where pool
// invariants are moot.
func panicPathExempt(p *pool, broken bool) {
	b := p.get()
	if broken {
		panic("protocol violation")
	}
	p.put(b)
}

// loopReacquire leaks the draw that the loop's continue path abandons.
func loopReacquire(p *pool, n int) {
	for i := 0; i < n; i++ {
		b := p.get() // want `b acquired from a pool may not be released on every path out of loopReacquire`
		if i%2 == 0 {
			continue // leak: b dropped on the floor each even iteration
		}
		p.put(b)
	}
}

// suppressed proves //lint:allow drops the finding.
func suppressed(p *pool, park bool) {
	b := p.get() //lint:allow blockleak fixture: proves suppression drops the finding
	if park {
		return
	}
	p.put(b)
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
