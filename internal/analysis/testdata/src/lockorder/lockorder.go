// Package lockorder is a deliberately broken fixture for the lockorder
// pass: an A->B / B->A acquisition cycle, a direct double lock, and a
// same-receiver reacquisition through a method call.
package lockorder

import "sync"

type left struct {
	mu sync.Mutex
	n  int
}

type right struct {
	mu sync.Mutex
	n  int
}

func leftThenRight(l *left, r *right) {
	l.mu.Lock()
	r.mu.Lock() // want `edge .*left\.mu -> .*right\.mu`
	r.n++
	l.n++
	r.mu.Unlock()
	l.mu.Unlock()
}

func rightThenLeft(l *left, r *right) {
	r.mu.Lock()
	l.mu.Lock() // want `edge .*right\.mu -> .*left\.mu`
	l.n++
	r.n++
	l.mu.Unlock()
	r.mu.Unlock()
}

func (l *left) double() {
	l.mu.Lock()
	l.mu.Lock() // want `acquired while already held`
	l.mu.Unlock()
	l.mu.Unlock()
}

func (l *left) locked() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
}

func (l *left) reenters() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.locked() // want `the callee locks the same mutex on the same receiver`
}

func fine(l *left, r *right) {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
