// Package atomicmix is a deliberately broken fixture for the atomicmix
// pass: fields and package variables touched by sync/atomic in one
// function and by plain loads/stores in another.
package atomicmix

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

var total int64

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&total, 1)
}

func read(c *counters) int64 {
	return c.hits // want `plain access to hits`
}

func reset(c *counters) {
	c.hits = 0 // want `plain access to hits`
	c.cold = 0 // fine: cold is never accessed atomically
}

func readTotal() int64 {
	return total // want `plain access to total`
}

func sanctioned(c *counters) int64 {
	return atomic.LoadInt64(&c.hits) + atomic.SwapInt64(&total, 0)
}

func suppressed(c *counters) int64 {
	return c.hits //lint:allow atomicmix fixture: proves suppression drops the finding
}
