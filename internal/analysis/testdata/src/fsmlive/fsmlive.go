// Package fsmlive is a deliberately broken fixture for the fsmlive
// pass: a small FSM whose transition table declares an unreachable
// state, a state with no way back to the zero state, and a target no
// setState call ever produces — plus the sound states the pass must
// not flag.
package fsmlive

type State uint8

const (
	Idle   State = iota // zero state: the recycle anchor
	Armed               // clean: reachable, returns, exercised
	Firing              // clean
	Orphan State = iota + 10 // want `state Orphan is unreachable from Idle in validNext`
	Stuck                    // want `state Stuck has no path back to Idle in validNext`
	Ghost                    // want `state Ghost is a declared transition target but no setState call ever moves a block there`
)

var validNext = map[State][]State{
	Idle:   {Armed},
	Armed:  {Firing, Idle},
	Firing: {Idle, Stuck, Ghost},
	// Orphan has edges out but no edge in: dead table weight.
	Orphan: {Idle},
	// Stuck only loops on itself: blocks entering it are stranded.
	Stuck: {Stuck},
	Ghost: {Idle},
}

type cell struct{ state State }

func (c *cell) setState(to State) {
	for _, ok := range validNext[c.state] {
		if ok == to {
			c.state = to
			return
		}
	}
	panic("illegal transition")
}

// drive exercises every state except Ghost (and Orphan, which is
// covered by a call but unreachable in the table anyway).
func drive(c *cell) {
	c.setState(Armed)
	c.setState(Firing)
	c.setState(Idle)
	c.setState(Stuck)
	c.setState(Orphan)
}
