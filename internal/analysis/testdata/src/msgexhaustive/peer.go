package msgexhaustive

// acked lives in a second file so FlagAck has a cross-file use (the
// liveness rule requires a reference outside the declaring file).
func acked(flags uint8) bool { return flags&FlagAck != 0 }
