// Package msgexhaustive is a deliberately broken fixture for the
// msgexhaustive pass: a miniature wire surface with a non-exhaustive
// dispatch switch, a dead flag bit, and asymmetric codec pairs, plus
// the exhaustive/defaulted/symmetric shapes the pass must not flag.
package msgexhaustive

type MsgType uint8

const (
	MsgOpen MsgType = iota + 1
	MsgData
	MsgClose
	MsgAbort
)

const (
	// FlagAck is set by the peer file — live.
	FlagAck uint8 = 1 << iota
	// FlagUrgent is declared but never used outside this file — dead.
	FlagUrgent // want `flag bit FlagUrgent is never used outside its declaring file`
	// FlagMask is not a single bit and so is not subject to liveness.
	FlagMask uint8 = 0x07
)

// dispatchMissing drops MsgClose and MsgAbort on the floor.
func dispatchMissing(t MsgType) int {
	switch t { // want `switch on MsgType does not handle MsgClose, MsgAbort and has no default clause`
	case MsgOpen:
		return 1
	case MsgData:
		return 2
	}
	return 0
}

// dispatchExhaustive covers every constant: clean.
func dispatchExhaustive(t MsgType) int {
	switch t {
	case MsgOpen, MsgData:
		return 1
	case MsgClose:
		return 2
	case MsgAbort:
		return 3
	}
	return 0
}

// dispatchDefaulted misses constants but owns up to it with an explicit
// default: clean.
func dispatchDefaulted(t MsgType) int {
	switch t {
	case MsgOpen:
		return 1
	default:
		return -1
	}
}

// dispatchSuppressed proves //lint:allow drops the finding.
func dispatchSuppressed(t MsgType) int {
	//lint:allow msgexhaustive fixture: proves suppression drops the finding
	switch t {
	case MsgData:
		return 2
	}
	return 0
}

// Hdr's encoder writes Tag; the decoder never reads it.
type Hdr struct {
	Seq uint32
	Off uint64
	Tag uint8
}

func EncodeHdr(dst []byte, h Hdr) { // want `field Hdr\.Tag is written by the encoder but never read by the decoder`
	put32(dst[0:], h.Seq)
	put64(dst[4:], h.Off)
	dst[12] = h.Tag
}

func DecodeHdr(b []byte) (Hdr, bool) {
	if len(b) < 13 {
		return Hdr{}, false
	}
	return Hdr{Seq: get32(b[0:]), Off: get64(b[4:])}, true
}

// Ack's decoder reads a field the encoder never writes, and never
// bounds-checks its input.
type Ack struct {
	Seq   uint32
	Spare uint32
}

func EncodeAck(dst []byte, a Ack) {
	put32(dst, a.Seq)
}

func DecodeAck(b []byte) Ack { // want `decoder DecodeAck for Ack never bounds-checks its input with len\(\)` `field Ack\.Spare is read by the decoder but never written by the encoder`
	return Ack{Seq: get32(b), Spare: get32(b[4:])}
}

// Sym is a clean, symmetric, bounds-checked codec pair.
type Sym struct {
	A uint32
	B uint32
}

func EncodeSym(dst []byte, s Sym) {
	put32(dst[0:], s.A)
	put32(dst[4:], s.B)
}

func DecodeSym(b []byte) (Sym, bool) {
	if len(b) < 8 {
		return Sym{}, false
	}
	return Sym{A: get32(b[0:]), B: get32(b[4:])}, true
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func put64(b []byte, v uint64) {
	put32(b[0:], uint32(v>>32))
	put32(b[4:], uint32(v))
}

func get32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func get64(b []byte) uint64 {
	return uint64(get32(b[0:]))<<32 | uint64(get32(b[4:]))
}
