package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FSMTransition flags writes to a state-machine field that bypass its
// setState method.
//
// The convention it enforces is structural: a struct with a field named
// "state" and a method named "setState" is a guarded FSM (core's buffer
// block, Figure 6 of the paper). setState validates every transition
// against the validNext table; a direct write — assignment, composite
// literal, increment, or taking the field's address — skips that
// validation, so the table silently stops being the single source of
// truth.
var FSMTransition = &Analyzer{
	Name: "fsmtransition",
	Doc:  "flag writes to a setState-guarded state field outside setState",
	Run:  runFSMTransition,
}

func runFSMTransition(pass *Pass) error {
	// Find guarded fields: the "state" field of any struct that also has
	// a setState method declared in this package.
	guarded := make(map[*types.Var]bool)
	var setStateBodies []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "setState" || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := pass.Info.TypeOf(fd.Recv.List[0].Type)
			if v := stateFieldOf(recvType); v != nil {
				guarded[v] = true
				setStateBodies = append(setStateBodies, fd)
			}
		}
	}
	if len(guarded) == 0 {
		return nil
	}
	inSetState := func(pos token.Pos) bool {
		for _, fd := range setStateBodies {
			if fd.Body != nil && fd.Body.Pos() <= pos && pos <= fd.Body.End() {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, v *types.Var, how string) {
		owner := ownerName(v)
		pass.Report(Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s of %s.%s outside setState bypasses FSM transition validation (validNext)",
				how, owner, v.Name()),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if v := guardedField(pass.Info, guarded, lhs); v != nil && !inSetState(n.Pos()) {
						report(lhs.Pos(), v, "direct write")
					}
				}
			case *ast.IncDecStmt:
				if v := guardedField(pass.Info, guarded, n.X); v != nil && !inSetState(n.Pos()) {
					report(n.Pos(), v, "direct write")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if v := guardedField(pass.Info, guarded, n.X); v != nil && !inSetState(n.Pos()) {
						report(n.Pos(), v, "taking the address")
					}
				}
			case *ast.CompositeLit:
				reportGuardedLiteral(pass, guarded, n, inSetState, report)
			}
			return true
		})
	}
	return nil
}

// stateFieldOf returns the "state" field of the struct underlying t
// (through one pointer), or nil.
func stateFieldOf(t types.Type) *types.Var {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == "state" {
			return f
		}
	}
	return nil
}

// guardedField resolves e to a guarded field var when e is a selector
// (or parenthesized selector) naming one.
func guardedField(info *types.Info, guarded map[*types.Var]bool, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	if s, ok := info.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = info.Uses[sel.Sel]
	}
	if v, ok := obj.(*types.Var); ok && guarded[v] {
		return v
	}
	return nil
}

// reportGuardedLiteral flags composite literals that initialize a
// guarded state field, keyed or positional: constructing a block at an
// arbitrary state is as much an unvalidated transition as assigning one.
func reportGuardedLiteral(pass *Pass, guarded map[*types.Var]bool, lit *ast.CompositeLit,
	inSetState func(token.Pos) bool, report func(token.Pos, *types.Var, string)) {
	t := pass.Info.TypeOf(lit)
	v := stateFieldOf(t)
	if v == nil || !guarded[v] || inSetState(lit.Pos()) {
		return
	}
	st := t.Underlying().(*types.Struct)
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == v.Name() {
				report(kv.Pos(), v, "composite-literal initialization")
			}
			continue
		}
		// Positional literal: field i is being set.
		if i < st.NumFields() && st.Field(i) == v {
			report(elt.Pos(), v, "composite-literal initialization")
		}
	}
}

// ownerName names the struct a field belongs to, best effort.
func ownerName(v *types.Var) string {
	if v.Pkg() != nil {
		scope := v.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}
