package analysis

// Generic forward worklist dataflow over a CFG. A client supplies the
// lattice operations and a per-node transfer function; the solver
// iterates to a fixed point. Facts must form a finite-height lattice
// under Join and transfers must be monotone for termination; a hard
// iteration bound backstops a misbehaving client (the solver then
// returns the best facts reached, which for the passes here can only
// suppress findings, never invent them).

import "go/ast"

// Transfer is the client half of a forward dataflow problem.
type Transfer[F any] struct {
	// Entry produces the fact at function entry.
	Entry func() F
	// Join merges two facts flowing into the same block. It must not
	// mutate its arguments.
	Join func(a, b F) F
	// Equal reports fact equality (fixed-point detection).
	Equal func(a, b F) bool
	// Node applies one CFG node to a fact, returning the fact after it.
	// It must not mutate its input.
	Node func(n ast.Node, f F) F
	// Edge, when non-nil, refines the fact flowing across one edge —
	// e.g. killing a pointer on the branch where it compared nil.
	Edge func(e *CFGEdge, f F) F
}

// FlowResult holds the solved per-block facts. Blocks unreachable from
// Entry are absent from both maps.
type FlowResult[F any] struct {
	In  map[*CFGBlock]F
	Out map[*CFGBlock]F
}

// ForwardDataflow solves the problem to a fixed point with a worklist,
// seeding Entry with t.Entry() and propagating along Succs.
func ForwardDataflow[F any](g *CFG, t Transfer[F]) *FlowResult[F] {
	res := &FlowResult[F]{
		In:  make(map[*CFGBlock]F),
		Out: make(map[*CFGBlock]F),
	}
	if g == nil {
		return res
	}
	res.In[g.Entry] = t.Entry()

	apply := func(b *CFGBlock, f F) F {
		for _, n := range b.Nodes {
			f = t.Node(n, f)
		}
		return f
	}

	work := []*CFGBlock{g.Entry}
	queued := map[*CFGBlock]bool{g.Entry: true}
	// Any monotone client converges in O(blocks * lattice height)
	// iterations; the bound only exists to stop a buggy client.
	limit := (len(g.Blocks) + 1) * 1000
	for len(work) > 0 && limit > 0 {
		limit--
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := apply(b, res.In[b])
		if old, ok := res.Out[b]; ok && t.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, e := range b.Succs {
			ef := out
			if t.Edge != nil {
				ef = t.Edge(e, ef)
			}
			old, seen := res.In[e.To]
			var next F
			if seen {
				next = t.Join(old, ef)
				if t.Equal(old, next) {
					continue
				}
			} else {
				next = ef
			}
			res.In[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}
