// Package analysis is RFTP's custom static-analysis suite: a minimal
// go/analysis-style framework (self-contained, standard library only)
// plus the protocol-specific passes cmd/rftplint runs over the tree.
//
// The passes machine-check the three conventions the paper's
// correctness story rests on but the compiler cannot see:
//
//   - fsmtransition: every write to a state-machine field guarded by a
//     setState method must go through setState, keeping the validNext
//     transition table the single source of truth (Figure 6).
//   - spanstamp: every spans.Recorder.Transition call (a lifecycle
//     span stamp) must sit inside a setState body, so the span table
//     can never record a transition the FSM did not validate.
//   - bufownership: after a buffer is handed to PostSend (zero-copy
//     verbs ownership), the caller must not mutate or repost it until
//     the completion returns ownership.
//   - atomicmix: a field accessed through sync/atomic anywhere must be
//     accessed through sync/atomic everywhere.
//   - lockorder: the cross-package mutex-acquisition graph must be
//     acyclic, and no function may reacquire a lock its caller already
//     holds on the same receiver.
//   - loopconfine: loop-confined operations (setState, the credit
//     ledger, span stamps) must never run on a raw goroutine — crossing
//     shards is only sanctioned through a loop's Post/After handoff.
//   - sessionaffinity: per-session records (srcSession, sinkSession)
//     are owned by their connection's loop; no field of one may be
//     written on a raw goroutine.
//   - blockleak: flow-sensitive — every pool acquisition must reach a
//     release, repost, or ownership handoff on every path out of the
//     function, error returns included (CFG + forward dataflow + one-
//     level call summaries; see cfg.go and dataflow.go).
//   - msgexhaustive: every MsgType switch covers all constants or
//     defaults explicitly; every Flag* bit is used outside its
//     declaring file; encoder/decoder field sets match and decoders
//     bounds-check their input.
//   - fsmlive: the validNext transition table itself is live — every
//     state reachable from the zero state, every state with a path
//     back, every transition target exercised by a setState call.
//
// Findings are suppressed with an inline comment on the flagged line
// (or alone on the line above):
//
//	//lint:allow <pass-name> <justification>
//
// The justification is mandatory by convention; the suppression is
// reported by cmd/rftplint -allows so stale ones stay visible, and a
// suppression whose pass ran without matching anything is stale —
// surfaced by Result.Stale and fatal under rftplint -strict-allows.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in output and in //lint:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package.
	Run func(*Pass) error
	// Begin, when non-nil, allocates whole-program state shared by every
	// Pass (via Pass.Shared) across packages of one Run call.
	Begin func() any
	// End, when non-nil, runs after every package has been visited and
	// reports whole-program findings (e.g. cross-package lock cycles).
	End func(shared any, report func(Diagnostic))
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Shared is the value returned by Analyzer.Begin (nil otherwise).
	Shared any
	// Report records one finding. Suppressed findings are dropped by the
	// driver before they reach the caller.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as returned by Run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Suppression records one //lint:allow comment encountered in a loaded
// file, whether or not it matched a finding.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// Used marks a suppression that dropped at least one finding in this
	// Run. A suppression for an analyzer that ran but stayed unused is
	// stale: the code it excused has been fixed (or moved), and the
	// comment now only licenses a future regression.
	Used bool
}

// allowKey addresses a source line for suppression lookup.
type allowKey struct {
	file string
	line int
}

// allowIndex maps lines to suppression indices (into the Result's
// Suppressions slice) in force there.
type allowIndex map[allowKey][]int

// collectAllows scans file comments for //lint:allow directives. A
// directive suppresses findings of the named analyzer on its own line
// and, when it is the only thing on its line, on the following line.
func collectAllows(fset *token.FileSet, files []*ast.File, idx allowIndex, sups *[]Suppression) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				pos := fset.Position(c.Pos())
				i := len(*sups)
				*sups = append(*sups, Suppression{
					Pos:      pos,
					Analyzer: name,
					Reason:   strings.Join(fields[1:], " "),
				})
				key := allowKey{pos.Filename, pos.Line}
				idx[key] = append(idx[key], i)
				next := allowKey{pos.Filename, pos.Line + 1}
				idx[next] = append(idx[next], i)
			}
		}
	}
}

// allowed reports whether a suppression for name is in force at pos,
// marking every matching suppression used.
func (idx allowIndex) allowed(name string, pos token.Position, sups []Suppression) bool {
	hit := false
	for _, i := range idx[allowKey{pos.Filename, pos.Line}] {
		if sups[i].Analyzer == name {
			sups[i].Used = true
			hit = true
		}
	}
	return hit
}

// Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	Findings     []Finding
	Suppressions []Suppression
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Package order is the loader's
// (dependency order), so whole-program analyzers see a stable view.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	if len(pkgs) == 0 {
		return res, nil
	}
	fset := pkgs[0].Fset
	allows := make(allowIndex)
	for _, p := range pkgs {
		collectAllows(fset, p.Files, allows, &res.Suppressions)
	}
	for _, a := range analyzers {
		var shared any
		if a.Begin != nil {
			shared = a.Begin()
		}
		report := func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if allows.allowed(a.Name, pos, res.Suppressions) {
				return
			}
			res.Findings = append(res.Findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		for _, p := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    p.Files,
				Pkg:      p.Types,
				Info:     p.Info,
				Shared:   shared,
				Report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
		if a.End != nil {
			a.End(shared, report)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// Stale returns the suppressions addressed to an analyzer that ran in
// this Result but matched no finding — comments excusing code that no
// longer trips the pass. Suppressions naming analyzers outside the run
// set are not judged (they may belong to a pass this invocation did
// not include).
func (r *Result) Stale(analyzers []*Analyzer) []Suppression {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var stale []Suppression
	for _, s := range r.Suppressions {
		if ran[s.Analyzer] && !s.Used {
			stale = append(stale, s)
		}
	}
	return stale
}

// All returns the full RFTP analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{FSMTransition, SpanStamp, BufOwnership, AtomicMix, LockOrder, LoopConfine, SessionAffinity, BlockLeak, MsgExhaustive, FSMLive}
}

// pathString renders an ident/selector chain as a stable dotted path
// ("s.ep.Ctrl"), eliding index and slice expressions ("s.ctrlQ[]").
// Expressions that are not simple paths render as "" (never matched).
// Shared by bufownership (alias matching) and lockorder (instance
// identity).
func pathString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := pathString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := pathString(e.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.SliceExpr:
		return pathString(e.X)
	case *ast.ParenExpr:
		return pathString(e.X)
	case *ast.StarExpr:
		return pathString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return pathString(e.X)
		}
		return ""
	default:
		return ""
	}
}

// baseVar resolves the root object of a path expression (the "s" in
// s.ep.Ctrl), or nil when the expression is not rooted in an identifier.
func baseVar(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}
