package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// BufOwnership flags zero-copy buffer aliasing after a send is posted.
//
// The verbs contract (netfabric PostSend documents it) is that the
// fabric references wr.Data until the completion fires: the frame is
// written to the socket asynchronously, so mutating the posted bytes —
// or reposting the same work request — races with the wire. This pass
// checks the straight-line tail of each function after a PostSend call:
//
//   - writes through the posted buffer (element stores, copy into it,
//     append to it),
//   - writes to any field of the posted work-request value,
//   - a second PostSend of the same work request.
//
// The check is function-local and position-based (no loop wraparound:
// an earlier-in-the-body statement on the next iteration targets a
// different block's buffer). Mutations inside the `if err != nil`
// handler of the post itself are exempt — a rejected post never
// reached the wire, so the caller still owns the buffer.
var BufOwnership = &Analyzer{
	Name: "bufownership",
	Doc:  "flag mutation or reuse of a buffer between PostSend and its completion",
	Run:  runBufOwnership,
}

// postedBuf is one buffer the current function has handed to the fabric.
type postedBuf struct {
	wrPath  string       // path of the work-request value ("" for literals)
	bufPath string       // path of the bytes posted as Data ("" when unknown)
	end     token.Pos    // end of the PostSend call
	exempt  [2]token.Pos // error-handler body range excluded from checks
}

func runBufOwnership(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncOwnership(pass, fd)
		}
	}
	return nil
}

func checkFuncOwnership(pass *Pass, fd *ast.FuncDecl) {
	// dataAssign maps a work-request path to the path of the buffer most
	// recently assigned to its Data field ("wr" -> "b.mr.Buf").
	dataAssign := make(map[string]string)
	var posted []postedBuf

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Track wr.Data = <buf> and wr := &SendWR{Data: <buf>}.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" {
					if wp := pathString(sel.X); wp != "" {
						dataAssign[wp] = pathString(rhs)
					}
				}
				if lp := pathString(lhs); lp != "" {
					if bp, ok := dataFieldOfLiteral(rhs); ok {
						dataAssign[lp] = bp
					}
				}
			}
		case *ast.IfStmt:
			// if err := q.PostSend(wr); err != nil { ... } — record the
			// post with its handler body exempted.
			if call := postSendCallOf(n.Init); call != nil {
				recordPost(pass, call, dataAssign, &posted, n.Body)
			}
		case *ast.CallExpr:
			if isPostSend(n) {
				// Skip calls already recorded via their if-init.
				for _, p := range posted {
					if p.end == n.End() {
						return true
					}
				}
				recordPost(pass, n, dataAssign, &posted, nil)
			}
		}
		return true
	})
	if len(posted) == 0 {
		return
	}

	flag := func(pos token.Pos, what string, p postedBuf) {
		pass.Report(Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s after PostSend and before its completion (zero-copy: the fabric still references the buffer)",
				what),
		})
	}
	after := func(pos token.Pos, p postedBuf) bool {
		if pos <= p.end {
			return false
		}
		if p.exempt[0] != token.NoPos && p.exempt[0] <= pos && pos <= p.exempt[1] {
			return false
		}
		return true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lu := ast.Unparen(lhs)
				for _, p := range posted {
					if !after(lhs.Pos(), p) {
						continue
					}
					// Element store through the posted buffer.
					if idx, ok := lu.(*ast.IndexExpr); ok && p.bufPath != "" && pathString(idx.X) == p.bufPath {
						flag(lhs.Pos(), fmt.Sprintf("write into posted buffer %s", p.bufPath), p)
					}
					// Field write on the posted work request.
					if sel, ok := lu.(*ast.SelectorExpr); ok && p.wrPath != "" && pathString(sel.X) == p.wrPath {
						flag(lhs.Pos(), fmt.Sprintf("write to field %s.%s of posted work request", p.wrPath, sel.Sel.Name), p)
					}
				}
			}
		case *ast.CallExpr:
			for _, p := range posted {
				if !after(n.Pos(), p) {
					continue
				}
				if isPostSend(n) && p.wrPath != "" && len(n.Args) == 1 && pathString(n.Args[0]) == p.wrPath {
					flag(n.Pos(), fmt.Sprintf("work request %s reposted", p.wrPath), p)
				}
				if p.bufPath == "" {
					continue
				}
				if name := builtinName(n); name == "copy" && len(n.Args) == 2 && pathString(n.Args[0]) == p.bufPath {
					flag(n.Pos(), fmt.Sprintf("copy into posted buffer %s", p.bufPath), p)
				} else if name == "append" && len(n.Args) > 0 && pathString(n.Args[0]) == p.bufPath {
					flag(n.Pos(), fmt.Sprintf("append to posted buffer %s", p.bufPath), p)
				}
			}
		}
		return true
	})
}

// recordPost notes one PostSend call's posted paths. exemptBody, when
// non-nil, is the `err != nil` handler whose statements keep ownership.
func recordPost(pass *Pass, call *ast.CallExpr, dataAssign map[string]string, posted *[]postedBuf, exemptBody *ast.BlockStmt) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	p := postedBuf{end: call.End()}
	if bp, ok := dataFieldOfLiteral(arg); ok {
		p.bufPath = bp
	} else if wp := pathString(arg); wp != "" {
		p.wrPath = wp
		p.bufPath = dataAssign[wp]
	}
	if exemptBody != nil {
		p.exempt = [2]token.Pos{exemptBody.Pos(), exemptBody.End()}
	}
	if p.wrPath == "" && p.bufPath == "" {
		return
	}
	*posted = append(*posted, p)
}

// postSendCallOf extracts the PostSend call from an if-init statement
// of the form `err := q.PostSend(wr)` (or `err = ...`).
func postSendCallOf(init ast.Stmt) *ast.CallExpr {
	assign, ok := init.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || !isPostSend(call) {
		return nil
	}
	return call
}

// isPostSend reports whether call invokes a method named PostSend.
func isPostSend(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "PostSend"
}

// builtinName returns the name of a builtin call ("copy", "append"),
// or "".
func builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// dataFieldOfLiteral extracts the Data field path from &SendWR{...} or
// SendWR{...} literals.
func dataFieldOfLiteral(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Data" {
			return pathString(kv.Value), true
		}
	}
	return "", false
}
