package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a single function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n" + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parsing test function: %v\n%s", err, src)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			g := BuildCFG(fd.Body)
			if g == nil {
				t.Fatal("BuildCFG returned nil for a non-nil body")
			}
			return g
		}
	}
	t.Fatal("no function in test source")
	return nil
}

// cfgReachable returns the blocks reachable from start over Succs.
func cfgReachable(start *CFGBlock) map[*CFGBlock]bool {
	seen := map[*CFGBlock]bool{start: true}
	work := []*CFGBlock{start}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// blocksOfKind returns the blocks with the given kind, in creation order.
func blocksOfKind(g *CFG, kind string) []*CFGBlock {
	var out []*CFGBlock
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func hasEdge(from, to *CFGBlock) bool {
	for _, e := range from.Succs {
		if e.To == to {
			return true
		}
	}
	return false
}

// TestCFGDeferWithClosure: the deferred closure call must land in the
// shared defer block, and both the early return and the fall-off-end
// path must route to Exit through it.
func TestCFGDeferWithClosure(t *testing.T) {
	g := buildTestCFG(t, `
func f(n int) {
	x := 1
	defer func() { _ = x }()
	if n > 0 {
		return
	}
	x = 2
}`)
	if len(g.Defers.Nodes) != 1 {
		t.Fatalf("defer block has %d nodes, want 1 deferred call", len(g.Defers.Nodes))
	}
	call, ok := g.Defers.Nodes[0].(*ast.CallExpr)
	if !ok {
		t.Fatalf("defer block node is %T, want *ast.CallExpr", g.Defers.Nodes[0])
	}
	if _, ok := call.Fun.(*ast.FuncLit); !ok {
		t.Errorf("deferred call target is %T, want the closure literal", call.Fun)
	}
	// Both exits flow through Defers: the early return's block and the
	// trailing straight-line block are both predecessors.
	if len(g.Defers.Preds) < 2 {
		t.Errorf("defer block has %d preds, want both the early return and the fall-off-end path", len(g.Defers.Preds))
	}
	if !hasEdge(g.Defers, g.Exit) {
		t.Error("defer block does not edge to Exit")
	}
	for _, e := range g.Exit.Preds {
		if e.From != g.Defers {
			t.Errorf("Exit has a predecessor (%s) bypassing the defer block", e.From.Kind)
		}
	}
}

// TestCFGLabeledBreakContinue: continue outer must edge to the outer
// loop's post block and break outer to the outer loop's done block,
// skipping the inner loop entirely.
func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
outer:
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}
}`)
	posts := blocksOfKind(g, "for.post")
	dones := blocksOfKind(g, "for.done")
	if len(posts) != 2 || len(dones) != 2 {
		t.Fatalf("got %d for.post and %d for.done blocks, want 2 and 2\n%s", len(posts), len(dones), g)
	}
	// Creation order: the outer loop's blocks are built first.
	outerPost, outerDone := posts[0], dones[0]
	innerBody := blocksOfKind(g, "for.body")[1]

	fromThen := func(to *CFGBlock) bool {
		for _, e := range to.Preds {
			if e.From.Kind == "if.then" {
				return true
			}
		}
		return false
	}
	if !fromThen(outerPost) {
		t.Errorf("continue outer: no edge from an if.then into the outer for.post\n%s", g)
	}
	if !fromThen(outerDone) {
		t.Errorf("break outer: no edge from an if.then into the outer for.done\n%s", g)
	}
	// Sanity: neither labeled branch targets the inner loop's blocks.
	if fromThen(posts[1]) {
		t.Errorf("labeled continue resolved to the inner loop's post block\n%s", g)
	}
	_ = innerBody
}

// TestCFGSwitchFallthrough: a fallthrough chains its clause block into
// the next clause, and a switch with a default has no head->done edge.
func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `
func f(x int) int {
	r := 0
	switch x {
	case 0:
		r = 1
		fallthrough
	case 1:
		r = 2
	default:
		r = 3
	}
	return r
}`)
	cases := blocksOfKind(g, "case")
	defaults := blocksOfKind(g, "default")
	if len(cases) != 2 || len(defaults) != 1 {
		t.Fatalf("got %d case and %d default blocks, want 2 and 1\n%s", len(cases), len(defaults), g)
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough did not chain case 0 into case 1\n%s", g)
	}
	done := blocksOfKind(g, "switch.done")[0]
	if hasEdge(cases[0], done) {
		t.Errorf("falling-through clause also edges straight to switch.done\n%s", g)
	}
	// With a default clause every tag value is consumed: the dispatch
	// block must not edge straight to done.
	for _, e := range done.Preds {
		if e.From.Kind == "entry" {
			t.Errorf("switch with default still has a head->done edge\n%s", g)
		}
	}
}

// TestCFGSwitchNoDefaultExitEdge: without a default, the dispatch block
// keeps an implicit edge to switch.done (no case may match).
func TestCFGSwitchNoDefaultExitEdge(t *testing.T) {
	g := buildTestCFG(t, `
func f(x int) int {
	switch x {
	case 0:
		return 1
	}
	return 0
}`)
	done := blocksOfKind(g, "switch.done")[0]
	found := false
	for _, e := range done.Preds {
		if e.From == g.Entry {
			found = true
		}
	}
	if !found {
		t.Errorf("switch without default lost the implicit head->done edge\n%s", g)
	}
}

// TestCFGPanicOnlyExit: a function that always panics reaches Panic but
// never Exit; a branch that panics leaves only the other path to Exit.
func TestCFGPanicOnlyExit(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	panic("always")
}`)
	reach := cfgReachable(g.Entry)
	if !reach[g.Panic] {
		t.Errorf("Panic block unreachable in an always-panicking function\n%s", g)
	}
	if reach[g.Exit] {
		t.Errorf("Exit reachable in an always-panicking function\n%s", g)
	}

	g = buildTestCFG(t, `
func f(fail bool) {
	if fail {
		panic("boom")
	}
}`)
	reach = cfgReachable(g.Entry)
	if !reach[g.Panic] || !reach[g.Exit] {
		t.Fatalf("want both Panic and Exit reachable (panic=%v exit=%v)\n%s", reach[g.Panic], reach[g.Exit], g)
	}
	then := blocksOfKind(g, "if.then")[0]
	if len(then.Succs) != 1 || then.Succs[0].To != g.Panic {
		t.Errorf("panicking branch must edge only to Panic\n%s", g)
	}
	// The panic edge must bypass the defer block (panic exits are exempt
	// from the leak analyses; see the package comment).
	for _, e := range g.Panic.Preds {
		if e.From == g.Defers {
			t.Errorf("Panic fed from the defer block\n%s", g)
		}
	}
}

// TestCFGBranchCondEdges: if-edges carry the condition with Negated
// marking the false edge — the hook nil-check refinement hangs on.
func TestCFGBranchCondEdges(t *testing.T) {
	g := buildTestCFG(t, `
func f(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}`)
	var onTrue, onFalse int
	for _, e := range g.Entry.Succs {
		if e.Cond == nil {
			t.Errorf("entry succ edge to %s has no condition", e.To.Kind)
			continue
		}
		if strings.Contains(exprString(e.Cond), "==") {
			if e.Negated {
				onFalse++
			} else {
				onTrue++
			}
		}
	}
	if onTrue != 1 || onFalse != 1 {
		t.Errorf("want one true and one false conditional edge out of the check, got %d/%d\n%s", onTrue, onFalse, g)
	}
}

func exprString(e ast.Expr) string {
	if be, ok := e.(*ast.BinaryExpr); ok {
		return be.Op.String()
	}
	return ""
}

// TestCFGGotoBackward: a backward goto forms a loop (the label block
// gains a back edge), and the graph still terminates construction.
func TestCFGGotoBackward(t *testing.T) {
	g := buildTestCFG(t, `
func f(n int) {
again:
	n--
	if n > 0 {
		goto again
	}
}`)
	lbl := blocksOfKind(g, "label.again")
	if len(lbl) != 1 {
		t.Fatalf("want one label block, got %d\n%s", len(lbl), g)
	}
	back := false
	for _, e := range lbl[0].Preds {
		if e.From.Kind == "if.then" {
			back = true
		}
	}
	if !back {
		t.Errorf("backward goto did not produce a back edge to the label block\n%s", g)
	}
}
