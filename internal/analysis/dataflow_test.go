package analysis

import (
	"fmt"
	"go/ast"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// The solver is checked propertywise: on randomized CFGs (fixed seeds)
// with a monotone bitset transfer, the returned facts must satisfy the
// dataflow equations exactly —
//
//	Out[b] = transfer(b, In[b])
//	In[b]  = join over solved preds p of Edge(p->b, Out[p])  (+ Entry fact at Entry)
//
// and solving twice must give identical results. This catches worklist
// bugs (missed re-queues, stale Outs, edge-refinement skew) that
// hand-picked graphs tend to miss.

// genBit extracts the bit index from a synthetic node ("g7" -> 7).
func genBit(n ast.Node) int {
	id := n.(*ast.Ident)
	v, _ := strconv.Atoi(strings.TrimPrefix(id.Name, "g"))
	return v
}

// randomCFG builds a connected graph of n blocks: a spanning tree edge
// to every block (guaranteeing reachability from Entry) plus extra
// random edges, including back edges forming cycles. Each block gets a
// few generator nodes.
func randomCFG(rng *rand.Rand, n int) *CFG {
	g := &CFG{}
	for i := 0; i < n; i++ {
		b := &CFGBlock{Index: i, Kind: fmt.Sprintf("b%d", i)}
		for k := 0; k < rng.Intn(3); k++ {
			b.Nodes = append(b.Nodes, ast.NewIdent(fmt.Sprintf("g%d", rng.Intn(60))))
		}
		g.Blocks = append(g.Blocks, b)
	}
	g.Entry = g.Blocks[0]
	link := func(from, to *CFGBlock) {
		e := &CFGEdge{From: from, To: to}
		from.Succs = append(from.Succs, e)
		to.Preds = append(to.Preds, e)
	}
	for i := 1; i < n; i++ {
		link(g.Blocks[rng.Intn(i)], g.Blocks[i])
	}
	for k := 0; k < n; k++ {
		link(g.Blocks[rng.Intn(n)], g.Blocks[rng.Intn(n)])
	}
	return g
}

// bitsetTransfer is a monotone may-analysis: each node sets its bit,
// join is union, and the edge hook deterministically masks one bit on
// edges into every third block (exercising refinement).
func bitsetTransfer() Transfer[uint64] {
	return Transfer[uint64]{
		Entry: func() uint64 { return 1 << 63 },
		Join:  func(a, b uint64) uint64 { return a | b },
		Equal: func(a, b uint64) bool { return a == b },
		Node:  func(n ast.Node, f uint64) uint64 { return f | 1<<genBit(n) },
		Edge: func(e *CFGEdge, f uint64) uint64 {
			if e.To.Index%3 == 0 {
				return f &^ (1 << 7)
			}
			return f
		},
	}
}

func TestForwardDataflowFixedPointProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := randomCFG(rng, n)
		tr := bitsetTransfer()
		res := ForwardDataflow(g, tr)

		apply := func(b *CFGBlock, f uint64) uint64 {
			for _, nd := range b.Nodes {
				f = tr.Node(nd, f)
			}
			return f
		}

		// Every block is reachable by construction, so every block must
		// have been solved.
		for _, b := range g.Blocks {
			if _, ok := res.In[b]; !ok {
				t.Fatalf("seed %d: reachable block %s never solved", seed, b.Kind)
			}
		}
		for _, b := range g.Blocks {
			// Out must be the transfer of In.
			if got, want := res.Out[b], apply(b, res.In[b]); got != want {
				t.Errorf("seed %d: Out[%s] = %#x, want transfer(In) = %#x", seed, b.Kind, got, want)
			}
			// In must be exactly the join of refined predecessor Outs
			// (plus the entry fact at Entry).
			var want uint64
			if b == g.Entry {
				want = tr.Entry()
			}
			for _, e := range b.Preds {
				want = tr.Join(want, tr.Edge(e, res.Out[e.From]))
			}
			if res.In[b] != want {
				t.Errorf("seed %d: In[%s] = %#x, want join of preds = %#x", seed, b.Kind, res.In[b], want)
			}
		}

		// Determinism: solving again yields the same facts.
		res2 := ForwardDataflow(g, tr)
		for _, b := range g.Blocks {
			if res.In[b] != res2.In[b] || res.Out[b] != res2.Out[b] {
				t.Errorf("seed %d: second solve disagrees at %s", seed, b.Kind)
			}
		}
	}
}

// TestForwardDataflowUnreachableBlocks: blocks with no path from Entry
// must be absent from the result, not solved with a bogus bottom fact.
func TestForwardDataflowUnreachableBlocks(t *testing.T) {
	g := &CFG{}
	a := &CFGBlock{Index: 0, Kind: "entry"}
	b := &CFGBlock{Index: 1, Kind: "island"}
	g.Blocks = []*CFGBlock{a, b}
	g.Entry = a
	res := ForwardDataflow(g, bitsetTransfer())
	if _, ok := res.In[b]; ok {
		t.Error("unreachable block was solved")
	}
	if res.In[a] != 1<<63 {
		t.Errorf("entry In = %#x, want the entry fact", res.In[a])
	}
}

// TestForwardDataflowNilGraph: a nil CFG (bodyless function) yields an
// empty result rather than a panic.
func TestForwardDataflowNilGraph(t *testing.T) {
	res := ForwardDataflow(nil, bitsetTransfer())
	if len(res.In) != 0 || len(res.Out) != 0 {
		t.Error("nil graph produced facts")
	}
}
