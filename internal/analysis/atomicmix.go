package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags variables accessed through sync/atomic in one place
// and by plain load or store in another.
//
// Mixing the two breaks both memory models at once: the plain access
// races with the atomic one (undefined under the Go memory model, and
// -race only catches it when the schedule cooperates), and readers can
// observe torn or stale values on weakly-ordered hardware. The rule is
// absolute: once a field or package-level variable is touched by an
// address-taking sync/atomic function anywhere in the package, every
// access must be atomic. Fields of type atomic.Int64 & friends are
// immune by construction and outside this pass's scope.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain accesses to variables that are accessed atomically elsewhere",
	Run:  runAtomicMix,
}

// atomicFns is the set of sync/atomic functions whose first argument is
// the address of the guarded variable.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: every variable whose address feeds a sync/atomic call, and
	// the positions of those sanctioned accesses.
	atomicVars := make(map[*types.Var]token.Pos) // var -> first atomic use
	sanctioned := make(map[token.Pos]bool)       // positions of &v inside atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			if v := addressableVar(pass.Info, u.X); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				sanctioned[u.X.Pos()] = true
				// Inner idents/selectors of the path are part of the
				// sanctioned access too.
				ast.Inspect(u.X, func(inner ast.Node) bool {
					if e, ok := inner.(ast.Expr); ok {
						sanctioned[e.Pos()] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: any other use of those variables is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var v *types.Var
			var pos token.Pos
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n.Pos()] {
					return true
				}
				if sel, ok := pass.Info.Selections[n]; ok {
					if fv, ok := sel.Obj().(*types.Var); ok {
						v, pos = fv, n.Pos()
					}
				}
			case *ast.Ident:
				if sanctioned[n.Pos()] {
					return true
				}
				if obj, ok := pass.Info.Uses[n].(*types.Var); ok && !obj.IsField() {
					v, pos = obj, n.Pos()
				}
			}
			if v == nil {
				return true
			}
			if first, ok := atomicVars[v]; ok {
				pass.Report(Diagnostic{
					Pos: pos,
					Message: fmt.Sprintf("plain access to %s, which is accessed via sync/atomic at %s; mixing atomic and plain accesses races",
						v.Name(), pass.Fset.Position(first)),
				})
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call is sync/atomic.<fn> for an
// address-taking fn.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicFns[sel.Sel.Name] {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressableVar resolves &expr's operand to the variable being guarded:
// a struct field (via selector) or a plain variable.
func addressableVar(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		// &slice[i]: guard the element's backing variable only when the
		// indexed expression itself resolves to a var; element-level
		// tracking is out of scope.
		return nil
	}
	return nil
}
