package diskmodel

import (
	"testing"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/sim"
)

func setup() (*sim.Scheduler, *hostmodel.Thread, *Array) {
	s := sim.New(1)
	h := hostmodel.NewHost(s, "sink", 8, hostmodel.DefaultParams())
	th := h.NewThread("storer")
	a := NewArray(s, DefaultArray())
	return s, th, a
}

func TestWriteCompletes(t *testing.T) {
	s, th, a := setup()
	done := false
	a.Write(th, ODirect, 1<<20, func() { done = true })
	s.RunAll()
	if !done {
		t.Fatal("write never completed")
	}
	if a.BytesWritten != 1<<20 || a.Writes != 1 {
		t.Fatalf("stats: %d bytes, %d writes", a.BytesWritten, a.Writes)
	}
}

func TestArraySerializesAtRate(t *testing.T) {
	s, th, a := setup()
	const n = 16
	size := 8 << 20
	for i := 0; i < n; i++ {
		a.Write(th, ODirect, size, func() {})
	}
	s.RunAll()
	elapsed := s.Now()
	gbps := float64(n*size) * 8 / elapsed.Seconds() / 1e9
	// Aggregate array bandwidth is 16 Gbps.
	if gbps > 16 || gbps < 12 {
		t.Fatalf("array throughput = %.1f Gbps, want 12-16", gbps)
	}
}

func TestDirectIOCheaperThanPosix(t *testing.T) {
	s, th, a := setup()
	a.Write(th, PosixBuffered, 4<<20, func() {})
	s.RunAll()
	posixCPU := th.Busy()

	s2, th2, a2 := setup()
	a2.Write(th2, ODirect, 4<<20, func() {})
	s2.RunAll()
	directCPU := th2.Busy()

	if directCPU >= posixCPU {
		t.Fatalf("direct I/O CPU (%v) not cheaper than POSIX (%v)", directCPU, posixCPU)
	}
	if posixCPU < 5*directCPU {
		t.Fatalf("POSIX/direct CPU ratio too small: %v vs %v", posixCPU, directCPU)
	}
}

func TestPerWriteLatencyApplied(t *testing.T) {
	s := sim.New(1)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	th := h.NewThread("w")
	a := NewArray(s, ArrayConfig{RateBps: 1e12, PerWriteLatency: time.Millisecond})
	var at time.Duration
	a.Write(th, ODirect, 10, func() { at = s.Now() })
	s.RunAll()
	if at < time.Millisecond {
		t.Fatalf("completion at %v, want >= 1ms", at)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	s := sim.New(1)
	a := NewArray(s, ArrayConfig{})
	if a.cfg.RateBps != DefaultArray().RateBps {
		t.Fatal("defaults not applied")
	}
}

func TestModeStrings(t *testing.T) {
	if PosixBuffered.String() != "posix" || ODirect.String() != "direct" {
		t.Fatal("mode strings wrong")
	}
}

func TestBusyDrains(t *testing.T) {
	s, th, a := setup()
	a.Write(th, ODirect, 64<<20, func() {})
	s.RunAll()
	if a.Busy() != 0 {
		t.Fatalf("array busy %v after drain", a.Busy())
	}
}
