// Package diskmodel models the sink's storage subsystem for
// memory-to-disk experiments (Figure 11).
//
// The paper spreads 400 GB files across multiple RAID disks so the
// array outruns the 10 Gbps WAN NIC, and enables O_DIRECT in RFTP so
// writes bypass the page cache. The model captures both effects: an
// aggregate array bandwidth that serializes writes in virtual time, and
// a per-byte CPU cost that differs sharply between buffered POSIX I/O
// (page-cache copy + writeback) and direct I/O (DMA setup only).
package diskmodel

import (
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/sim"
)

// Mode selects the I/O path.
type Mode int

// I/O modes.
const (
	// PosixBuffered is write(2) through the page cache.
	PosixBuffered Mode = iota
	// ODirect bypasses the page cache (RFTP's direct I/O feature).
	ODirect
)

func (m Mode) String() string {
	if m == ODirect {
		return "direct"
	}
	return "posix"
}

// ArrayConfig describes the RAID array.
type ArrayConfig struct {
	// RateBps is the aggregate array write bandwidth in bits/s.
	RateBps float64
	// PerWriteLatency is fixed setup latency per write request.
	PerWriteLatency time.Duration
	// Spindles is the number of independent disks for reads. Each read
	// occupies one spindle end to end at RateBps/Spindles, so a single
	// outstanding read sees one disk's bandwidth plus its seek latency,
	// while Spindles concurrent reads stream the whole array — the
	// regime the load-depth pipeline must reach (fio iodepth
	// methodology, paper Section III.B). Writes keep the aggregate
	// serialization model. Defaults to 1.
	Spindles int
	// PerReadLatency is fixed positioning latency per read request
	// (seek + rotation for the stripe's lead disk).
	PerReadLatency time.Duration
}

// DefaultArray returns a RAID profile comfortably faster than a 10 Gbps
// NIC (the paper's configuration goal): 8 spindles whose aggregate
// outruns the WAN, but whose individual latency starves a serial
// reader.
func DefaultArray() ArrayConfig {
	return ArrayConfig{
		RateBps:         16e9,
		PerWriteLatency: 50 * time.Microsecond,
		Spindles:        8,
		PerReadLatency:  2 * time.Millisecond,
	}
}

// Array is a shared disk array: writes serialize against its aggregate
// bandwidth; reads occupy individual spindles.
type Array struct {
	sched *sim.Scheduler
	cfg   ArrayConfig

	busyUntil time.Duration
	readBusy  []time.Duration // per-spindle commitment
	// BytesWritten is the cumulative payload written.
	BytesWritten int64
	// Writes counts write requests.
	Writes int64
	// BytesRead is the cumulative payload read.
	BytesRead int64
	// Reads counts read requests.
	Reads int64
}

// NewArray creates an array.
func NewArray(sched *sim.Scheduler, cfg ArrayConfig) *Array {
	if cfg.RateBps <= 0 {
		cfg = DefaultArray()
	}
	if cfg.Spindles < 1 {
		cfg.Spindles = 1
	}
	return &Array{sched: sched, cfg: cfg, readBusy: make([]time.Duration, cfg.Spindles)}
}

// Write schedules an n-byte write issued by thread using mode. The CPU
// cost (mode-dependent) is charged to the thread; the data then streams
// to the array, and done fires when it is on stable storage.
func (a *Array) Write(thread *hostmodel.Thread, mode Mode, n int, done func()) {
	params := threadParams(thread)
	var cpu time.Duration
	switch mode {
	case ODirect:
		cpu = hostmodel.ScaleNsPerByte(params.DiskDirectNsPerByte, n)
	default:
		cpu = hostmodel.ScaleNsPerByte(params.DiskPosixNsPerByte, n) + params.Syscall
	}
	a.Writes++
	a.BytesWritten += int64(n)
	thread.Post(cpu, func() {
		start := a.sched.Now()
		if a.busyUntil > start {
			start = a.busyUntil
		}
		dur := a.cfg.PerWriteLatency + time.Duration(float64(n)*8/a.cfg.RateBps*float64(time.Second))
		a.busyUntil = start + dur
		a.sched.At(a.busyUntil, done)
	})
}

// Read schedules an n-byte read issued by thread using mode. The CPU
// cost is charged to the thread; the read then occupies the
// least-committed spindle (seek latency plus streaming at the
// per-spindle rate) and done fires when the data is in memory. With one
// read outstanding the caller sees a single disk; with Spindles reads
// outstanding the array streams at full aggregate bandwidth.
func (a *Array) Read(thread *hostmodel.Thread, mode Mode, n int, done func()) {
	params := threadParams(thread)
	var cpu time.Duration
	switch mode {
	case ODirect:
		cpu = hostmodel.ScaleNsPerByte(params.DiskDirectNsPerByte, n)
	default:
		cpu = hostmodel.ScaleNsPerByte(params.DiskPosixNsPerByte, n) + params.Syscall
	}
	a.Reads++
	a.BytesRead += int64(n)
	perSpindleRate := a.cfg.RateBps / float64(a.cfg.Spindles)
	thread.Post(cpu, func() {
		// Pick the spindle that frees first.
		sp := 0
		for i := 1; i < len(a.readBusy); i++ {
			if a.readBusy[i] < a.readBusy[sp] {
				sp = i
			}
		}
		start := a.sched.Now()
		if a.readBusy[sp] > start {
			start = a.readBusy[sp]
		}
		dur := a.cfg.PerReadLatency + time.Duration(float64(n)*8/perSpindleRate*float64(time.Second))
		a.readBusy[sp] = start + dur
		a.sched.At(a.readBusy[sp], done)
	})
}

// Busy returns how far into the future the array is committed.
func (a *Array) Busy() time.Duration {
	if a.busyUntil <= a.sched.Now() {
		return 0
	}
	return a.busyUntil - a.sched.Now()
}

// threadParams fetches the owning host's cost parameters.
func threadParams(t *hostmodel.Thread) hostmodel.Params { return t.HostParams() }
