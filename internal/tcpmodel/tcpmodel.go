// Package tcpmodel is a discrete-event TCP model used as the transport
// substrate for the GridFTP baseline.
//
// It is a packet-level model with segment aggregation: the unit of
// simulation is a "segment" of SegBytes (one or more MTUs — aggregating
// keeps event counts tractable at tens of gigabits while preserving the
// window dynamics). Flows share one bottleneck Path with a drop-tail
// queue; congestion control implements slow start, congestion
// avoidance, fast retransmit/recovery (NewReno-style), and retransmit
// timeouts, with loss-response and growth rules per variant: Reno,
// CUBIC, BIC, and H-TCP — the variants Table I lists for the testbeds.
//
// Receivers advertise an effectively unlimited window (the paper tunes
// socket buffers to the bandwidth-delay product), so throughput is
// governed by congestion control, the bottleneck, and the application's
// ability to keep the send buffer full — which is exactly where the
// GridFTP single-thread ceiling couples in.
package tcpmodel

import (
	"fmt"
	"math"
	"time"

	"rftp/internal/sim"
	"rftp/internal/telemetry"
)

// Variant selects the congestion control algorithm.
type Variant int

// Congestion control variants.
const (
	Reno Variant = iota
	Cubic
	BIC
	HTCP
)

func (v Variant) String() string {
	switch v {
	case Reno:
		return "reno"
	case Cubic:
		return "cubic"
	case BIC:
		return "bic"
	case HTCP:
		return "htcp"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// PathConfig describes the shared bottleneck.
type PathConfig struct {
	// RateBps is the bottleneck rate in bits per second.
	RateBps float64
	// RTT is the two-way propagation delay (no queueing).
	RTT time.Duration
	// SegBytes is the simulated segment size (MTU or an aggregate of
	// several MTUs).
	SegBytes int
	// QueueBytes is the drop-tail buffer at the bottleneck. Defaults to
	// one bandwidth-delay product.
	QueueBytes int
}

// Path is a shared bottleneck link: a drop-tail queue served at line
// rate, plus fixed propagation. ACKs return on an uncongested reverse
// path.
type Path struct {
	sched *sim.Scheduler
	cfg   PathConfig

	busyUntil time.Duration
	queued    int

	// Drops counts segments lost to queue overflow.
	Drops uint64
	// Delivered counts segments that reached the receiver.
	Delivered uint64

	telDrops     *telemetry.Counter
	telDelivered *telemetry.Counter
}

// NewPath creates the bottleneck.
func NewPath(sched *sim.Scheduler, cfg PathConfig) *Path {
	if cfg.SegBytes <= 0 {
		cfg.SegBytes = 9000
	}
	if cfg.QueueBytes <= 0 {
		// Default: one BDP of buffering, but never less than a few
		// megabytes — short-RTT LANs still traverse switches with
		// megabytes of shared packet memory, and a queue that is only a
		// handful of segments deep would RTO-storm unrealistically.
		bdp := int(cfg.RateBps / 8 * cfg.RTT.Seconds())
		cfg.QueueBytes = bdp
		if min := 512 * cfg.SegBytes; cfg.QueueBytes < min {
			cfg.QueueBytes = min
		}
	}
	return &Path{sched: sched, cfg: cfg}
}

// Config returns the path configuration (with defaults applied).
func (p *Path) Config() PathConfig { return p.cfg }

// send attempts to enqueue one segment; returns false on drop. deliver
// runs at the receiver after queueing, serialization, and propagation.
func (p *Path) send(bytes int, deliver func()) bool {
	if p.queued+bytes > p.cfg.QueueBytes {
		p.Drops++
		p.telDrops.Inc()
		return false
	}
	p.queued += bytes
	now := p.sched.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	tx := time.Duration(float64(bytes) * 8 / p.cfg.RateBps * float64(time.Second))
	departure := start + tx
	p.busyUntil = departure
	p.sched.At(departure, func() { p.queued -= bytes })
	p.sched.At(departure+p.cfg.RTT/2, func() {
		p.Delivered++
		p.telDelivered.Inc()
		deliver()
	})
	return true
}

// ackDelay is the uncongested reverse path.
func (p *Path) ackDelay() time.Duration { return p.cfg.RTT / 2 }

// FlowConfig parameterizes one TCP connection.
type FlowConfig struct {
	Variant Variant
	// InitialCwnd in segments (RFC 3390-era ~3; GridFTP-era kernels 10).
	InitialCwnd float64
	// MinRTO clamps the retransmission timeout.
	MinRTO time.Duration
}

// Flow is one TCP sender/receiver pair over a Path.
//
// The application feeds it with Supply (bytes appended to the send
// buffer) and observes delivery via OnDeliver (in-order bytes at the
// receiver) and OnSendable (send buffer drained below the low-water
// mark — the model's EPOLLOUT).
type Flow struct {
	path *Path
	cfg  FlowConfig
	name string

	// Sender state, in segment units.
	sndUna   int64 // first unacked
	sndNxt   int64 // next to send
	appLimit int64 // total segments the app has supplied
	lastSeg  int   // bytes in the final (short) segment, 0 if none yet
	closed   bool

	cwnd     float64
	ssthresh float64
	dupAcks  int
	recover  int64
	inFRec   bool           // fast recovery
	rexmit   map[int64]bool // retransmitted during this recovery
	rtoEv    *sim.Event
	pacing   bool // a paced continuation of trySend is scheduled
	rexTimer bool // a timed retry of retransmitHoles is scheduled
	srtt     time.Duration

	// Variant state.
	wMax      float64 // window before last reduction
	lossAt    time.Duration
	bicTarget float64
	rttMin    time.Duration
	rttMax    time.Duration

	// Receiver state.
	rcvNxt int64
	ooo    map[int64]bool

	// Stats.
	AckedBytes    int64
	Retransmits   uint64
	Timeouts      uint64
	DeliveredSegs int64

	// Telemetry mirrors (nil-safe; see AttachTelemetry).
	telCwnd        *telemetry.Histogram
	telRetransmits *telemetry.Counter
	telTimeouts    *telemetry.Counter
	telRecoveries  *telemetry.Counter

	// OnDeliver receives in-order payload sizes at the receiver.
	OnDeliver func(bytes int)
	// OnRxProcess, when set, interposes receive-side processing between
	// segment arrival and ACK emission: it gets the segment size and an
	// emitAck continuation. Routing emitAck through a busy host thread
	// makes an application-limited receiver throttle the sender, which
	// is how the GridFTP baseline couples its single-thread CPU ceiling
	// into TCP.
	OnRxProcess func(bytes int, emitAck func())
	// OnSendable fires when window/buffer space opens (at most once per
	// event batch).
	OnSendable func()
	// OnClose fires when the sender has delivered everything supplied
	// and Close was called.
	OnClose func()
}

// NewFlow attaches a flow to the path.
func NewFlow(path *Path, name string, cfg FlowConfig) *Flow {
	if cfg.InitialCwnd <= 0 {
		cfg.InitialCwnd = 10
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 200 * time.Millisecond
	}
	f := &Flow{
		path:     path,
		cfg:      cfg,
		name:     name,
		cwnd:     cfg.InitialCwnd,
		recover:  -1,
		ssthresh: math.MaxFloat64,
		ooo:      make(map[int64]bool),
		rexmit:   make(map[int64]bool),
		srtt:     path.cfg.RTT,
		rttMin:   path.cfg.RTT,
		rttMax:   path.cfg.RTT,
	}
	return f
}

// Cwnd returns the current congestion window in segments.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// SegBytes returns the segment size in bytes.
func (f *Flow) SegBytes() int { return f.path.cfg.SegBytes }

// Buffered returns unsent bytes in the send buffer.
func (f *Flow) Buffered() int64 {
	segs := f.appLimit - f.sndNxt
	if segs < 0 {
		segs = 0
	}
	return segs * int64(f.path.cfg.SegBytes)
}

// Supply appends n bytes to the send buffer (rounded up to whole
// segments internally; the model tracks goodput in bytes).
func (f *Flow) Supply(n int) {
	if n <= 0 {
		return
	}
	segs := (n + f.path.cfg.SegBytes - 1) / f.path.cfg.SegBytes
	f.appLimit += int64(segs)
	f.trySend()
}

// Close marks the end of data; OnClose fires when everything is acked.
func (f *Flow) Close() {
	f.closed = true
	f.maybeFinish()
}

func (f *Flow) maybeFinish() {
	if f.closed && f.sndUna == f.appLimit && f.OnClose != nil {
		cb := f.OnClose
		f.OnClose = nil
		cb()
	}
}

// maxBurst bounds back-to-back transmissions per send opportunity;
// anything beyond continues after the wire has drained the burst. This
// is the pacing modern stacks apply to avoid overwhelming shallow
// buffers after jumbo cumulative ACKs.
const maxBurst = 16

// trySend transmits while the window and buffer allow, paced.
func (f *Flow) trySend() {
	if f.pacing {
		return
	}
	burst := 0
	for f.sndNxt < f.appLimit && float64(f.sndNxt-f.sndUna) < f.cwnd {
		if burst >= maxBurst {
			f.pacing = true
			drain := time.Duration(float64(burst*f.path.cfg.SegBytes) * 8 / f.path.cfg.RateBps * float64(time.Second))
			f.path.sched.After(drain, func() {
				f.pacing = false
				f.trySend()
			})
			break
		}
		f.xmit(f.sndNxt)
		f.sndNxt++
		burst++
	}
	f.armRTO()
}

// xmit puts segment seg on the wire (fresh or retransmission). It
// reports whether the segment survived the bottleneck queue.
func (f *Flow) xmit(seg int64) bool {
	sentAt := f.path.sched.Now()
	return f.path.send(f.path.cfg.SegBytes, func() { f.receiverGot(seg, sentAt) })
}

// receiverGot runs at the receiver when a segment arrives.
func (f *Flow) receiverGot(seg int64, sentAt time.Duration) {
	if seg == f.rcvNxt {
		f.rcvNxt++
		for f.ooo[f.rcvNxt] {
			delete(f.ooo, f.rcvNxt)
			f.rcvNxt++
		}
	} else if seg > f.rcvNxt {
		f.ooo[seg] = true
	}
	ackFor := f.rcvNxt
	rtt := f.path.sched.Now() - sentAt + f.path.ackDelay()
	emit := func() {
		f.path.sched.After(f.path.ackDelay(), func() { f.senderAck(ackFor, rtt) })
	}
	if f.OnRxProcess != nil {
		f.OnRxProcess(f.path.cfg.SegBytes, emit)
		return
	}
	emit()
}

// senderAck processes a cumulative ACK at the sender.
func (f *Flow) senderAck(ackSeg int64, rtt time.Duration) {
	f.updateRTT(rtt)
	if ackSeg > f.sndUna {
		newly := ackSeg - f.sndUna
		f.sndUna = ackSeg
		f.dupAcks = 0
		f.AckedBytes += newly * int64(f.path.cfg.SegBytes)
		f.DeliveredSegs += newly
		if f.OnDeliver != nil {
			f.OnDeliver(int(newly) * f.path.cfg.SegBytes)
		}
		if f.inFRec {
			for seg := range f.rexmit {
				if seg < f.sndUna {
					delete(f.rexmit, seg) // retransmission cumulatively acked
				}
			}
			if ackSeg > f.recover {
				f.inFRec = false
				f.cwnd = f.ssthresh
				f.rexmit = make(map[int64]bool)
			} else {
				// Partial ack: keep the pipe full of hole retransmits
				// (SACK-style recovery; kernels of the era ran SACK).
				f.retransmitHoles()
			}
		} else {
			f.growCwnd(float64(newly))
		}
		f.telCwnd.Observe(int64(f.cwnd))
		f.armRTO()
		f.trySend()
		// Low-water mark: ask the application for more once the buffer
		// can no longer fill the window (the model's EPOLLOUT).
		if f.OnSendable != nil && !f.closed && float64(f.appLimit-f.sndNxt) < f.cwnd {
			f.OnSendable()
		}
		f.maybeFinish()
		return
	}
	// Duplicate ACK.
	if f.sndNxt == f.sndUna {
		return
	}
	f.dupAcks++
	if f.dupAcks >= 3 && !f.inFRec && f.sndUna > f.recover {
		// One reduction per window of data (NewReno): losses detected
		// below the previous recovery point belong to the same event.
		f.enterFastRecovery()
	} else if f.inFRec {
		f.retransmitHoles()
	}
}

// retransmitHoles resends segments the receiver provably lacks, paced
// by the (reduced) window. The model reads the receiver's reassembly
// state directly, which plays the role of SACK scoreboard plus RFC 6675
// loss marking: segments that are neither delivered nor retransmitted
// count as lost and do not occupy the pipe.
func (f *Flow) retransmitHoles() {
	// Pipe = retransmissions still unaccounted for. Delivered (SACKed)
	// segments are out of the network; dropped originals are known
	// lost. Both leave the pipe.
	pipe := len(f.rexmit)
	for seg := f.sndUna; seg < f.recover && float64(pipe) < f.cwnd; seg++ {
		if seg < f.rcvNxt || f.ooo[seg] || f.rexmit[seg] {
			continue
		}
		f.Retransmits++
		f.telRetransmits.Inc()
		if !f.xmit(seg) {
			// The retransmission itself was dropped (queue still full
			// from the overshoot burst): leave it unmarked, stop
			// pushing, and retry after the queue has had time to
			// drain — ACKs may no longer be in flight to clock us.
			if !f.rexTimer {
				f.rexTimer = true
				drain := time.Duration(float64(f.path.cfg.QueueBytes) * 8 / f.path.cfg.RateBps * float64(time.Second))
				f.path.sched.After(drain, func() {
					f.rexTimer = false
					if f.inFRec {
						f.retransmitHoles()
					}
				})
			}
			return
		}
		f.rexmit[seg] = true
		pipe++
	}
}

func (f *Flow) enterFastRecovery() {
	f.telRecoveries.Inc()
	f.inFRec = true
	f.recover = f.sndNxt
	f.wMax = f.cwnd
	f.lossAt = f.path.sched.Now()
	beta := f.lossBeta()
	f.ssthresh = math.Max(2, f.cwnd*beta)
	f.cwnd = f.ssthresh
	f.rexmit = make(map[int64]bool)
	f.retransmitHoles()
	f.armRTO()
	if f.cfg.Variant == BIC {
		f.bicTarget = (f.wMax + f.ssthresh) / 2
	}
}

// lossBeta is the multiplicative decrease factor per variant.
func (f *Flow) lossBeta() float64 {
	switch f.cfg.Variant {
	case Reno:
		return 0.5
	case Cubic:
		return 0.7
	case BIC:
		return 0.8
	case HTCP:
		// Adaptive backoff: RTTmin/RTTmax clamped to [0.5, 0.8].
		b := float64(f.rttMin) / float64(f.rttMax)
		if b < 0.5 {
			b = 0.5
		}
		if b > 0.8 {
			b = 0.8
		}
		return b
	default:
		return 0.5
	}
}

// growCwnd applies per-ACK window growth (newly = acked segments). In
// congestion avoidance no variant may grow faster than slow start
// (Linux applies the same clamp), which bounds overshoot bursts.
func (f *Flow) growCwnd(newly float64) {
	if f.cwnd < f.ssthresh {
		// Slow start with appropriate byte counting (RFC 3465, L=2):
		// a jumbo cumulative ACK must not trigger a window burst.
		if newly > 2 {
			newly = 2
		}
		f.cwnd += newly
		return
	}
	before := f.cwnd
	f.growCA(newly)
	if f.cwnd > before+newly {
		f.cwnd = before + newly
	}
}

func (f *Flow) growCA(newly float64) {
	switch f.cfg.Variant {
	case Reno:
		f.cwnd += newly / f.cwnd
	case Cubic:
		// W(t) = C*(t-K)^3 + Wmax, K = cbrt(Wmax*beta/C), with the
		// standard TCP-friendly region: never grow slower than a Reno
		// flow would (this is what makes CUBIC safe at small windows
		// and dominant at large BDPs).
		const C = 0.4
		beta := 0.3 // reduction fraction (window keeps 0.7)
		t := (f.path.sched.Now() - f.lossAt).Seconds()
		if f.lossAt == 0 {
			t = f.srtt.Seconds()
		}
		k := math.Cbrt(f.wMax * beta / C)
		target := C*math.Pow(t-k, 3) + f.wMax
		rtt := f.srtt.Seconds()
		wTCP := f.wMax*(1-beta) + 3*beta/(2-beta)*(t/rtt)
		if wTCP > target {
			target = wTCP
		}
		if target > f.cwnd {
			f.cwnd += (target - f.cwnd) / f.cwnd * newly
		} else {
			f.cwnd += 0.01 * newly // minimum probing
		}
	case BIC:
		const sMax, sMin = 32.0, 0.01
		var inc float64
		if f.bicTarget <= f.cwnd {
			// Max probing: grow target slowly beyond wMax.
			f.bicTarget = f.cwnd + sMax/8
		}
		inc = (f.bicTarget - f.cwnd)
		if inc > sMax {
			inc = sMax
		}
		if inc < sMin {
			inc = sMin
		}
		f.cwnd += inc / f.cwnd * newly
	case HTCP:
		delta := (f.path.sched.Now() - f.lossAt).Seconds()
		const deltaL = 1.0
		alpha := 1.0
		if f.lossAt != 0 && delta > deltaL {
			d := delta - deltaL
			alpha = 1 + 10*d + (d/2)*(d/2)
		}
		f.cwnd += alpha * newly / f.cwnd
	}
}

func (f *Flow) updateRTT(rtt time.Duration) {
	if f.srtt == 0 {
		f.srtt = rtt
	} else {
		f.srtt = (7*f.srtt + rtt) / 8
	}
	if rtt < f.rttMin {
		f.rttMin = rtt
	}
	if rtt > f.rttMax {
		f.rttMax = rtt
	}
}

func (f *Flow) rto() time.Duration {
	rto := 4 * f.srtt
	if rto < f.cfg.MinRTO {
		rto = f.cfg.MinRTO
	}
	return rto
}

func (f *Flow) armRTO() {
	if f.rtoEv != nil {
		f.rtoEv.Cancel()
		f.rtoEv = nil
	}
	if f.sndUna == f.sndNxt {
		return // nothing outstanding
	}
	una := f.sndUna
	f.rtoEv = f.path.sched.After(f.rto(), func() { f.onRTO(una) })
}

func (f *Flow) onRTO(una int64) {
	if f.sndUna != una || f.sndUna == f.sndNxt {
		return // progress was made; stale timer
	}
	f.Timeouts++
	f.Retransmits++
	f.telTimeouts.Inc()
	f.telRetransmits.Inc()
	f.ssthresh = math.Max(2, f.cwnd/2)
	f.cwnd = 1
	f.inFRec = false
	f.rexmit = make(map[int64]bool)
	f.dupAcks = 0
	f.wMax = f.ssthresh * 2
	f.lossAt = f.path.sched.Now()
	// Go-back-N from the hole.
	f.sndNxt = f.sndUna
	f.trySend()
}
