package tcpmodel

import (
	"math"
	"testing"
	"time"

	"rftp/internal/sim"
)

// flowAt builds a flow in congestion avoidance with controlled state.
func flowAt(v Variant, cwnd, ssthresh, wMax float64, lossAgo time.Duration) (*sim.Scheduler, *Flow) {
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 10e9, RTT: 10 * time.Millisecond, SegBytes: 9000})
	f := NewFlow(p, "f", FlowConfig{Variant: v})
	f.cwnd, f.ssthresh, f.wMax = cwnd, ssthresh, wMax
	if lossAgo > 0 {
		// Advance virtual time so Now()-lossAt = lossAgo, keeping
		// lossAt nonzero (zero means "never lost").
		s.After(lossAgo+time.Nanosecond, func() {})
		s.RunAll()
		f.lossAt = s.Now() - lossAgo
	}
	return s, f
}

func TestRenoAdditiveIncrease(t *testing.T) {
	_, f := flowAt(Reno, 100, 50, 100, time.Second)
	before := f.cwnd
	// One full window of acks => +1 segment.
	for i := 0; i < 100; i++ {
		f.growCwnd(1)
	}
	if inc := f.cwnd - before; math.Abs(inc-1) > 0.05 {
		t.Fatalf("Reno grew %.3f per RTT, want ~1", inc)
	}
}

func TestCubicConcaveBelowWmax(t *testing.T) {
	// Shortly after a loss, cubic grows toward wMax but must not exceed
	// it yet.
	_, f := flowAt(Cubic, 70, 70, 100, 500*time.Millisecond)
	for i := 0; i < 70; i++ {
		f.growCwnd(1)
	}
	if f.cwnd <= 70 {
		t.Fatal("cubic did not grow in concave region")
	}
	if f.cwnd > 100 {
		t.Fatalf("cubic overshot wMax this early: %.1f", f.cwnd)
	}
}

func TestCubicConvexBeyondK(t *testing.T) {
	// Long after the loss, the target exceeds wMax and growth resumes
	// aggressively (clamped to slow-start rate).
	_, f := flowAt(Cubic, 100, 50, 100, 30*time.Second)
	before := f.cwnd
	f.growCwnd(1)
	if f.cwnd <= before {
		t.Fatal("cubic flat in convex region")
	}
	if f.cwnd > before+1 {
		t.Fatalf("growth %.2f exceeded the slow-start clamp", f.cwnd-before)
	}
}

func TestSlowStartABCCap(t *testing.T) {
	_, f := flowAt(Reno, 10, 1000, 0, 0)
	f.growCwnd(200) // jumbo cumulative ack
	if f.cwnd != 12 {
		t.Fatalf("ABC cap: cwnd = %.1f, want 12", f.cwnd)
	}
}

func TestLossBetaPerVariant(t *testing.T) {
	cases := map[Variant]float64{Reno: 0.5, Cubic: 0.7, BIC: 0.8}
	for v, want := range cases {
		_, f := flowAt(v, 100, 50, 100, time.Second)
		if got := f.lossBeta(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v beta = %v, want %v", v, got, want)
		}
	}
}

func TestHTCPBetaAdaptive(t *testing.T) {
	_, f := flowAt(HTCP, 100, 50, 100, time.Second)
	// Equal RTTs: ratio 1 clamps to 0.8.
	f.rttMin, f.rttMax = 10*time.Millisecond, 10*time.Millisecond
	if b := f.lossBeta(); b != 0.8 {
		t.Fatalf("beta = %v, want 0.8 clamp", b)
	}
	// Deep queues: min/max small, clamps to 0.5.
	f.rttMin, f.rttMax = 10*time.Millisecond, 100*time.Millisecond
	if b := f.lossBeta(); b != 0.5 {
		t.Fatalf("beta = %v, want 0.5 clamp", b)
	}
	// Intermediate.
	f.rttMin, f.rttMax = 10*time.Millisecond, 16*time.Millisecond
	if b := f.lossBeta(); math.Abs(b-0.625) > 1e-9 {
		t.Fatalf("beta = %v, want 0.625", b)
	}
}

func TestHTCPAlphaGrowsWithTimeSinceLoss(t *testing.T) {
	_, early := flowAt(HTCP, 100, 50, 100, 500*time.Millisecond)
	_, late := flowAt(HTCP, 100, 50, 100, 5*time.Second)
	e0, l0 := early.cwnd, late.cwnd
	early.growCwnd(1)
	late.growCwnd(1)
	if late.cwnd-l0 <= early.cwnd-e0 {
		t.Fatalf("HTCP alpha not increasing: early +%.4f, late +%.4f",
			early.cwnd-e0, late.cwnd-l0)
	}
}

func TestBICBinarySearchApproach(t *testing.T) {
	// Below wMax, BIC's increment is proportional to the distance to
	// the midpoint target, capped at Smax.
	_, f := flowAt(BIC, 100, 50, 500, time.Second)
	f.bicTarget = 300 // midpoint of (100, 500)
	before := f.cwnd
	f.growCwnd(1)
	inc := f.cwnd - before
	// Distance 200 capped at Smax=32, applied as inc/cwnd per ack.
	want := 32.0 / 100
	if math.Abs(inc-want) > 0.01 {
		t.Fatalf("BIC inc = %.4f, want ~%.4f", inc, want)
	}
}
