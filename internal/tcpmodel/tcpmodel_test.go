package tcpmodel

import (
	"testing"
	"time"

	"rftp/internal/sim"
)

func lanPath(s *sim.Scheduler) *Path {
	return NewPath(s, PathConfig{RateBps: 10e9, RTT: 100 * time.Microsecond, SegBytes: 9000})
}

func wanPath(s *sim.Scheduler) *Path {
	return NewPath(s, PathConfig{RateBps: 10e9, RTT: 49 * time.Millisecond, SegBytes: 72000})
}

// bulk attaches an always-full sender to the flow and returns a stop
// function.
func bulk(f *Flow) {
	feed := func() {
		// Keep about 4 windows buffered.
		want := int64(4 * f.Cwnd())
		if want < 64 {
			want = 64
		}
		have := f.Buffered() / int64(f.SegBytes())
		if have < want {
			f.Supply(int(want-have) * f.SegBytes())
		}
	}
	f.OnSendable = feed
	feed()
}

// run simulates d and returns the flow's goodput in Gbps.
func goodput(s *sim.Scheduler, f *Flow, d time.Duration) float64 {
	s.Run(d)
	return float64(f.AckedBytes) * 8 / d.Seconds() / 1e9
}

func TestSingleFlowFillsLAN(t *testing.T) {
	s := sim.New(1)
	p := lanPath(s)
	f := NewFlow(p, "f0", FlowConfig{Variant: Cubic})
	bulk(f)
	g := goodput(s, f, 500*time.Millisecond)
	if g < 8.5 || g > 10 {
		t.Fatalf("LAN goodput = %.2f Gbps, want ~9-10", g)
	}
}

func TestSingleFlowFillsWANAfterRamp(t *testing.T) {
	s := sim.New(1)
	p := wanPath(s)
	f := NewFlow(p, "f0", FlowConfig{Variant: Cubic})
	bulk(f)
	g := goodput(s, f, 20*time.Second)
	if g < 7.5 || g > 10 {
		t.Fatalf("WAN goodput = %.2f Gbps, want 7.5-10", g)
	}
}

func TestSlowStartRampIsExponential(t *testing.T) {
	s := sim.New(1)
	p := wanPath(s)
	f := NewFlow(p, "f0", FlowConfig{Variant: Reno, InitialCwnd: 2})
	bulk(f)
	s.Run(3 * p.Config().RTT)
	early := f.Cwnd()
	s.Run(6 * p.Config().RTT)
	later := f.Cwnd()
	if later < early*3 {
		t.Fatalf("cwnd ramp not exponential: %0.1f -> %0.1f", early, later)
	}
}

func TestLossCausesReduction(t *testing.T) {
	s := sim.New(1)
	// Tiny queue forces drops.
	p := NewPath(s, PathConfig{RateBps: 1e9, RTT: 10 * time.Millisecond, SegBytes: 9000, QueueBytes: 30000})
	f := NewFlow(p, "f0", FlowConfig{Variant: Reno})
	bulk(f)
	s.Run(5 * time.Second)
	if p.Drops == 0 {
		t.Fatal("no drops despite tiny queue")
	}
	if f.Retransmits == 0 {
		t.Fatal("no retransmits despite drops")
	}
	// The flow must still deliver data (recovery works).
	if f.AckedBytes < int64(1e8) {
		t.Fatalf("only %d bytes delivered under loss", f.AckedBytes)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 10e9, RTT: 10 * time.Millisecond, SegBytes: 9000})
	f1 := NewFlow(p, "f1", FlowConfig{Variant: Cubic})
	f2 := NewFlow(p, "f2", FlowConfig{Variant: Cubic})
	bulk(f1)
	bulk(f2)
	s.Run(10 * time.Second)
	g1 := float64(f1.AckedBytes) * 8 / 10 / 1e9
	g2 := float64(f2.AckedBytes) * 8 / 10 / 1e9
	sum := g1 + g2
	if sum < 8.5 || sum > 10 {
		t.Fatalf("aggregate = %.2f Gbps, want ~9-10", sum)
	}
	ratio := g1 / g2
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair split: %.2f vs %.2f Gbps", g1, g2)
	}
}

func TestEightFlowsRampFasterThanOneOnWAN(t *testing.T) {
	run := func(n int) float64 {
		s := sim.New(1)
		p := wanPath(s)
		var flows []*Flow
		for i := 0; i < n; i++ {
			f := NewFlow(p, "f", FlowConfig{Variant: Cubic})
			bulk(f)
			flows = append(flows, f)
		}
		const window = 3 * time.Second // early window: ramp matters
		s.Run(window)
		var total int64
		for _, f := range flows {
			total += f.AckedBytes
		}
		return float64(total) * 8 / window.Seconds() / 1e9
	}
	one := run(1)
	eight := run(8)
	if eight <= one {
		t.Fatalf("8 flows (%.2f Gbps) not faster than 1 (%.2f) during ramp", eight, one)
	}
}

func TestVariantsDiffer(t *testing.T) {
	// After a loss on a long-RTT path, CUBIC must regrow faster than
	// Reno (that is its reason to exist).
	regrow := func(v Variant) float64 {
		s := sim.New(1)
		p := NewPath(s, PathConfig{RateBps: 10e9, RTT: 49 * time.Millisecond, SegBytes: 72000, QueueBytes: 2_000_000})
		f := NewFlow(p, "f", FlowConfig{Variant: v})
		bulk(f)
		s.Run(30 * time.Second)
		return float64(f.AckedBytes) * 8 / 30 / 1e9
	}
	reno := regrow(Reno)
	cubic := regrow(Cubic)
	if cubic <= reno {
		t.Fatalf("cubic (%.2f Gbps) not faster than reno (%.2f) on lossy WAN", cubic, reno)
	}
}

func TestCloseFiresAfterDrain(t *testing.T) {
	s := sim.New(1)
	p := lanPath(s)
	f := NewFlow(p, "f0", FlowConfig{Variant: Reno})
	closed := false
	f.OnClose = func() { closed = true }
	f.Supply(90_000) // 10 segments
	f.Close()
	s.RunAll()
	if !closed {
		t.Fatal("OnClose never fired")
	}
	if f.AckedBytes != 90_000 {
		t.Fatalf("acked %d bytes, want 90000", f.AckedBytes)
	}
}

func TestOnDeliverReportsInOrderBytes(t *testing.T) {
	s := sim.New(1)
	p := lanPath(s)
	f := NewFlow(p, "f0", FlowConfig{Variant: Reno})
	var delivered int
	f.OnDeliver = func(n int) { delivered += n }
	f.Supply(45_000)
	f.Close()
	s.RunAll()
	if delivered != 45_000 {
		t.Fatalf("OnDeliver total = %d, want 45000", delivered)
	}
}

func TestRTORecoversFromFullWindowLoss(t *testing.T) {
	s := sim.New(1)
	// Queue smaller than one segment batch: initial burst is mostly
	// lost; RTO must rescue the connection.
	p := NewPath(s, PathConfig{RateBps: 1e9, RTT: 5 * time.Millisecond, SegBytes: 9000, QueueBytes: 90001})
	f := NewFlow(p, "f0", FlowConfig{Variant: Reno, InitialCwnd: 64})
	f.Supply(64 * 9000)
	f.Close()
	done := false
	f.OnClose = func() { done = true }
	s.Run(30 * time.Second)
	if !done {
		t.Fatalf("flow never drained (timeouts=%d retrans=%d acked=%d)", f.Timeouts, f.Retransmits, f.AckedBytes)
	}
	if f.Timeouts == 0 && f.Retransmits == 0 {
		t.Fatal("recovered without any loss response?")
	}
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{Reno: "reno", Cubic: "cubic", BIC: "bic", HTCP: "htcp"} {
		if v.String() != want {
			t.Errorf("%d = %q", v, v.String())
		}
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant empty")
	}
}

func TestQueueDefaultsToBDP(t *testing.T) {
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 10e9, RTT: 49 * time.Millisecond, SegBytes: 9000})
	bdp := int(10e9 / 8 * 0.049)
	if p.Config().QueueBytes != bdp {
		t.Fatalf("queue = %d, want BDP %d", p.Config().QueueBytes, bdp)
	}
}

func TestBICAndHTCPDeliver(t *testing.T) {
	for _, v := range []Variant{BIC, HTCP} {
		s := sim.New(1)
		p := NewPath(s, PathConfig{RateBps: 10e9, RTT: 20 * time.Millisecond, SegBytes: 36000, QueueBytes: 5_000_000})
		f := NewFlow(p, "f", FlowConfig{Variant: v})
		bulk(f)
		s.Run(10 * time.Second)
		g := float64(f.AckedBytes) * 8 / 10 / 1e9
		if g < 5 {
			t.Fatalf("%v goodput = %.2f Gbps, want > 5", v, g)
		}
	}
}
