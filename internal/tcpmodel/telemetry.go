package tcpmodel

import "rftp/internal/telemetry"

// cwndBuckets cover congestion windows from a handful of segments up to
// the tens of thousands a large-BDP path sustains.
func cwndBuckets() []int64 { return telemetry.ExpBuckets(1, 2, 16) }

// AttachTelemetry mirrors the flow's congestion state into reg: a
// cwnd_segments histogram sampled once per cumulative ACK, plus
// retransmit, timeout, and fast-recovery counters. Nil detaches. The
// metric fields are nil-safe, so a detached flow pays only dead
// branches.
func (f *Flow) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		f.telCwnd, f.telRetransmits, f.telTimeouts, f.telRecoveries = nil, nil, nil, nil
		return
	}
	f.telCwnd = reg.Histogram("cwnd_segments", cwndBuckets()...)
	f.telRetransmits = reg.Counter("retransmits")
	f.telTimeouts = reg.Counter("timeouts")
	f.telRecoveries = reg.Counter("fast_recoveries")
}

// AttachTelemetry mirrors the bottleneck's drop and delivery counts
// into reg. Nil detaches.
func (p *Path) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		p.telDrops, p.telDelivered = nil, nil
		return
	}
	p.telDrops = reg.Counter("drops")
	p.telDelivered = reg.Counter("delivered_segs")
}
