package tcpmodel

import (
	"testing"
	"time"

	"rftp/internal/sim"
)

func TestOnRxProcessGatesAcks(t *testing.T) {
	// A receiver that sits on every segment for 1ms limits throughput
	// to one segment per millisecond regardless of the 10G link.
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 10e9, RTT: time.Millisecond, SegBytes: 9000})
	f := NewFlow(p, "f", FlowConfig{Variant: Cubic})
	var busyUntil time.Duration
	f.OnRxProcess = func(bytes int, emitAck func()) {
		// Serial server: 1ms of receiver CPU per segment.
		if busyUntil < s.Now() {
			busyUntil = s.Now()
		}
		busyUntil += time.Millisecond
		s.At(busyUntil, emitAck)
	}
	bulk(f)
	s.Run(2 * time.Second)
	gbps := float64(f.AckedBytes) * 8 / 2 / 1e9
	// ~1000 segs/s * 9000B = 72 Mbit/s; allow slack for window bursts.
	if gbps > 0.3 {
		t.Fatalf("slow receiver did not throttle sender: %.3f Gbps", gbps)
	}
	if f.AckedBytes == 0 {
		t.Fatal("no progress at all")
	}
}

func TestOnRxProcessPassthroughMatchesDefault(t *testing.T) {
	run := func(hook bool) int64 {
		s := sim.New(1)
		p := lanPath(s)
		f := NewFlow(p, "f", FlowConfig{Variant: Cubic})
		if hook {
			f.OnRxProcess = func(bytes int, emitAck func()) { emitAck() }
		}
		bulk(f)
		s.Run(200 * time.Millisecond)
		return f.AckedBytes
	}
	plain, hooked := run(false), run(true)
	if plain != hooked {
		t.Fatalf("identity hook changed behavior: %d vs %d", plain, hooked)
	}
}

func TestPacingLimitsBurstQueue(t *testing.T) {
	// A jumbo supply into a fresh window must not dump the whole window
	// into the queue at once: pacing caps occupancy near
	// maxBurst*SegBytes.
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 1e9, RTT: 50 * time.Millisecond, SegBytes: 9000, QueueBytes: 100 * 9000})
	f := NewFlow(p, "f", FlowConfig{Variant: Reno, InitialCwnd: 80})
	f.Supply(80 * 9000)
	f.Close()
	maxQ := 0
	var watch func()
	watch = func() {
		if p.queued > maxQ {
			maxQ = p.queued
		}
		if s.Now() < 100*time.Millisecond {
			s.After(100*time.Microsecond, watch)
		}
	}
	watch()
	s.Run(time.Second)
	if maxQ > (maxBurst+4)*9000 {
		t.Fatalf("queue peaked at %d bytes (%d segs); pacing failed", maxQ, maxQ/9000)
	}
	if p.Drops != 0 {
		t.Fatalf("paced burst still dropped %d", p.Drops)
	}
}

func TestDeliveredNeverExceedsSupplied(t *testing.T) {
	s := sim.New(1)
	p := NewPath(s, PathConfig{RateBps: 1e9, RTT: 10 * time.Millisecond, SegBytes: 9000, QueueBytes: 50 * 9000})
	f := NewFlow(p, "f", FlowConfig{Variant: Reno})
	var delivered int64
	f.OnDeliver = func(n int) { delivered += int64(n) }
	supplied := int64(500 * 9000)
	f.Supply(int(supplied))
	f.Close()
	s.RunAll()
	if delivered != supplied {
		t.Fatalf("delivered %d of %d supplied", delivered, supplied)
	}
	if f.AckedBytes != supplied {
		t.Fatalf("acked %d of %d", f.AckedBytes, supplied)
	}
}

func TestCwndNeverBelowFloor(t *testing.T) {
	s := sim.New(1)
	// Brutal queue: constant losses.
	p := NewPath(s, PathConfig{RateBps: 1e8, RTT: 20 * time.Millisecond, SegBytes: 9000, QueueBytes: 3 * 9000})
	f := NewFlow(p, "f", FlowConfig{Variant: Reno})
	bulk(f)
	floorOK := true
	var watch func()
	watch = func() {
		if f.Cwnd() < 1 {
			floorOK = false
		}
		if s.Now() < 5*time.Second {
			s.After(10*time.Millisecond, watch)
		}
	}
	watch()
	s.Run(6 * time.Second)
	if !floorOK {
		t.Fatal("cwnd fell below 1 segment")
	}
	if f.AckedBytes == 0 {
		t.Fatal("no progress under heavy loss")
	}
}
