//go:build !rftpdebug

package invariant

import "testing"

// TestDisabledStubsAreInert proves the production build's stubs never
// fire: violations that would panic under rftpdebug pass silently, and
// buffers are left untouched.
func TestDisabledStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the rftpdebug tag")
	}
	id := NewConn("src")
	if id != 0 {
		t.Fatalf("disabled NewConn returned %d, want 0", id)
	}
	CreditGrant(id, 1)
	CreditConsume(id, 99) // would panic when enabled
	CreditOutstanding(id, 42)
	GaugeAdd(id, "storing", 0, -5)
	SeqNext(id, 1, 7)
	SeqNext(id, 1, 3)
	StreamReset(id, 1)
	MRWriteStart(id, 7)
	MRReleasable(id, 7) // would panic when enabled: WRITE still in flight
	MRWriteEnd(id, 7)
	buf := []byte{1, 2, 3}
	PoisonFill(buf) // must NOT poison in production builds
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("disabled PoisonFill mutated the buffer: %v", buf)
	}
	PoisonCheck(buf)
	Release(id)
}
