//go:build rftpdebug

package invariant

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg := r.(string); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestCreditConservation(t *testing.T) {
	id := NewConn("src")
	defer Release(id)
	CreditGrant(id, 4)
	CreditConsume(id, 1)
	CreditOutstanding(id, 3)
	CreditConsume(id, 3)
	CreditOutstanding(id, 0)
}

func TestCreditOverconsumePanics(t *testing.T) {
	id := NewConn("src")
	defer Release(id)
	CreditGrant(id, 1)
	mustPanic(t, "consumed 2 credits but only 1 were granted", func() {
		CreditConsume(id, 2)
	})
}

func TestCreditLedgerMismatchPanics(t *testing.T) {
	id := NewConn("src")
	defer Release(id)
	CreditGrant(id, 5)
	CreditConsume(id, 2)
	mustPanic(t, "credit ledger broken", func() {
		CreditOutstanding(id, 2) // truth is 3
	})
}

// TestMRInflightLedger covers the pin-down-cache safety invariant: a
// region with a recorded in-flight WRITE must never be declared
// releasable, while retired regions pass.
func TestMRInflightLedger(t *testing.T) {
	id := NewConn("sink")
	defer Release(id)
	MRWriteStart(id, 7)
	MRReleasable(id, 9) // different region: fine
	mustPanic(t, "releasing MR rkey=7 to the cache with a WRITE still in flight", func() {
		MRReleasable(id, 7)
	})
	MRWriteEnd(id, 7)
	MRReleasable(id, 7) // retired: fine
	// Unknown connections are ignored, like every other probe.
	MRWriteStart(99999, 1)
	MRReleasable(99999, 1)
}

func TestGaugeNeverNegative(t *testing.T) {
	id := NewConn("sink")
	defer Release(id)
	GaugeAdd(id, "storing", 0, 1)
	GaugeAdd(id, "storing", 0, -1)
	mustPanic(t, "went negative", func() {
		GaugeAdd(id, "storing", 0, -1)
	})
	GaugeAdd(id, "storing", 0, 1) // restore balance so Release passes
}

func TestReleaseWithGaugeDebtPanics(t *testing.T) {
	id := NewConn("src")
	GaugeAdd(id, "ch.inflight", 2, 1)
	mustPanic(t, "leaked inflight operation", func() {
		Release(id)
	})
}

func TestSeqMonotonic(t *testing.T) {
	id := NewConn("src")
	defer Release(id)
	SeqNext(id, 7, 0)
	SeqNext(id, 7, 1)
	SeqNext(id, 9, 0) // independent stream
	mustPanic(t, "sequence broke monotonicity", func() {
		SeqNext(id, 7, 3) // gap: want 2
	})
}

func TestStreamResetRestartsAtZero(t *testing.T) {
	id := NewConn("sink")
	defer Release(id)
	SeqNext(id, 7, 0)
	SeqNext(id, 7, 1)
	StreamReset(id, 7)
	SeqNext(id, 7, 0)
}

func TestPoisonRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	PoisonFill(buf)
	PoisonCheck(buf)
	buf[100] = 0x01
	mustPanic(t, "stale reference", func() {
		PoisonCheck(buf)
	})
}

func TestUnknownConnIsIgnored(t *testing.T) {
	// Checks against a released or zero conn are silent no-ops, so
	// teardown ordering cannot spuriously fire.
	CreditGrant(0, 1)
	CreditConsume(0, 5)
	CreditOutstanding(0, 99)
	GaugeAdd(0, "x", 0, -3)
	SeqNext(0, 1, 42)
	StreamReset(0, 1)
	Release(0)
}
