//go:build rftpdebug

package invariant

import (
	"fmt"
	"sync"
)

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// conn is one endpoint's ledger. All checks panic on violation: an
// invariant miss is an implementation bug, never a runtime condition.
type conn struct {
	name              string
	granted, consumed int64
	gauges            map[gaugeKey]int64
	seqs              map[uint32]uint32   // stream -> next expected seq
	mrInflight        map[uint32]struct{} // rkeys with a WRITE in flight
}

type gaugeKey struct {
	name string
	idx  int
}

var registry = struct {
	sync.Mutex
	next  uint64
	conns map[uint64]*conn
}{conns: make(map[uint64]*conn)}

// NewConn registers one endpoint ledger and returns its handle.
func NewConn(name string) uint64 {
	registry.Lock()
	defer registry.Unlock()
	registry.next++
	registry.conns[registry.next] = &conn{
		name:       name,
		gauges:     make(map[gaugeKey]int64),
		seqs:       make(map[uint32]uint32),
		mrInflight: make(map[uint32]struct{}),
	}
	return registry.next
}

// Release drops a ledger. Remaining gauge debt is checked: releasing a
// conn with a non-zero gauge means an inflight operation leaked.
func Release(conn uint64) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	delete(registry.conns, conn)
	for k, v := range c.gauges {
		if v != 0 {
			panic(fmt.Sprintf("invariant: %s released with gauge %s[%d] = %d (leaked inflight operation)",
				c.name, k.name, k.idx, v))
		}
	}
}

func get(id uint64) *conn {
	registry.Lock()
	defer registry.Unlock()
	return registry.conns[id]
}

// CreditGrant records n credits entering the endpoint's stash.
func CreditGrant(conn uint64, n int64) {
	registry.Lock()
	defer registry.Unlock()
	if c := registry.conns[conn]; c != nil {
		c.granted += n
	}
}

// CreditConsume records n credits leaving the stash for the wire.
func CreditConsume(conn uint64, n int64) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	c.consumed += n
	if c.consumed > c.granted {
		panic(fmt.Sprintf("invariant: %s consumed %d credits but only %d were granted",
			c.name, c.consumed, c.granted))
	}
}

// CreditOutstanding cross-checks conservation: every granted credit is
// either consumed or still in the stash.
func CreditOutstanding(conn uint64, outstanding int64) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	if c.granted-c.consumed != outstanding {
		panic(fmt.Sprintf("invariant: %s credit ledger broken: granted %d - consumed %d != outstanding %d",
			c.name, c.granted, c.consumed, outstanding))
	}
}

// GaugeAdd moves a named inflight gauge and panics when it goes
// negative (a completion without a matching submission).
func GaugeAdd(conn uint64, name string, idx int, d int64) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	k := gaugeKey{name, idx}
	c.gauges[k] += d
	if c.gauges[k] < 0 {
		panic(fmt.Sprintf("invariant: %s gauge %s[%d] went negative (%d)",
			c.name, name, idx, c.gauges[k]))
	}
}

// SeqNext asserts seq is the next number of the stream: 0 first, then
// +1 each call, no gap, no repeat.
func SeqNext(conn uint64, stream, seq uint32) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	want := c.seqs[stream]
	if seq != want {
		panic(fmt.Sprintf("invariant: %s stream %d sequence broke monotonicity: got %d, want %d",
			c.name, stream, seq, want))
	}
	c.seqs[stream] = want + 1
}

// StreamReset forgets a stream's sequence state (session teardown, so a
// reused session ID restarts at 0).
func StreamReset(conn uint64, stream uint32) {
	registry.Lock()
	defer registry.Unlock()
	if c := registry.conns[conn]; c != nil {
		delete(c.seqs, stream)
	}
}

// MRWriteStart records that a remote WRITE may be in flight against
// the region named by rkey (the sink granted it as a credit).
func MRWriteStart(conn uint64, rkey uint32) {
	registry.Lock()
	defer registry.Unlock()
	if c := registry.conns[conn]; c != nil {
		c.mrInflight[rkey] = struct{}{}
	}
}

// MRWriteEnd records that the WRITE against rkey completed (the block
// arrived) or the credit was retired.
func MRWriteEnd(conn uint64, rkey uint32) {
	registry.Lock()
	defer registry.Unlock()
	if c := registry.conns[conn]; c != nil {
		delete(c.mrInflight, rkey)
	}
}

// MRReleasable asserts the region named by rkey has no WRITE in
// flight, so it is safe to hand back to the registration cache — a
// cached region must never be reissued while remote data could still
// land in it.
func MRReleasable(conn uint64, rkey uint32) {
	registry.Lock()
	defer registry.Unlock()
	c := registry.conns[conn]
	if c == nil {
		return
	}
	if _, ok := c.mrInflight[rkey]; ok {
		panic(fmt.Sprintf("invariant: %s releasing MR rkey=%d to the cache with a WRITE still in flight", c.name, rkey))
	}
}

// PoisonFill stamps a released buffer.
func PoisonFill(buf []byte) {
	for i := range buf {
		buf[i] = PoisonByte
	}
}

// PoisonCheck verifies a buffer still carries the poison pattern,
// catching writes through stale references while the block sat free.
func PoisonCheck(buf []byte) {
	for i, b := range buf {
		if b != PoisonByte {
			panic(fmt.Sprintf("invariant: freed buffer written through a stale reference: byte %d of %d is %#02x, want %#02x",
				i, len(buf), b, PoisonByte))
		}
	}
}
