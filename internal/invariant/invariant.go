// Package invariant is RFTP's debug-build runtime assertion layer.
//
// Production builds compile this package to nothing: every function in
// disabled.go is an empty no-op the compiler inlines away, so call
// sites in the data path cost zero. Building with the rftpdebug tag
// (make debugtest) swaps in enabled.go, which checks the protocol
// invariants the static passes cannot prove:
//
//   - credit conservation: credits granted == credits consumed +
//     credits outstanding in the stash, checked every pump cycle;
//   - sequence monotonicity: per-session block sequence numbers are
//     issued and delivered as 0,1,2,... with no gap or repeat;
//   - gauge sanity: inflight counters (per-channel posts, sink grants,
//     concurrent stores) never go negative;
//   - buffer poisoning: a released block's payload region is filled
//     with PoisonByte and verified untouched on reacquire, catching
//     writes through stale zero-copy references (the dynamic complement
//     to the bufownership static pass).
//
// A violated invariant panics immediately with the ledger involved:
// these are protocol-implementation bugs, never runtime conditions, so
// the policy matches the block FSM's (see core.setState).
package invariant

// PoisonByte fills released buffers in rftpdebug builds. 0xDB ("dead
// block") is distinctive in hex dumps and is not a valid wire magic.
const PoisonByte = 0xDB
