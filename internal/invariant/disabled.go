//go:build !rftpdebug

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Every function below is an empty no-op: production builds keep the
// call sites but the inliner erases them.

func NewConn(name string) uint64                          { return 0 }
func Release(conn uint64)                                 {}
func CreditGrant(conn uint64, n int64)                    {}
func CreditConsume(conn uint64, n int64)                  {}
func CreditOutstanding(conn uint64, outstanding int64)    {}
func GaugeAdd(conn uint64, name string, idx int, d int64) {}
func SeqNext(conn uint64, stream, seq uint32)             {}
func StreamReset(conn uint64, stream uint32)              {}
func MRWriteStart(conn uint64, rkey uint32)               {}
func MRWriteEnd(conn uint64, rkey uint32)                 {}
func MRReleasable(conn uint64, rkey uint32)               {}
func PoisonFill(buf []byte)                               {}
func PoisonCheck(buf []byte)                              {}
