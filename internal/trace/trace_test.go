package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n
	}
}

func TestEmitAndEvents(t *testing.T) {
	r := NewRing(8, fixedClock())
	r.Emit(CatNego, "hello %d", 1)
	r.Emit(CatBlock, "block %d/%d", 2, 3)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Msg != "hello 1" || evs[0].Cat != CatNego || evs[0].Seq != 1 {
		t.Fatalf("ev0: %+v", evs[0])
	}
	if evs[1].Msg != "block 2/3" || evs[1].At <= evs[0].At {
		t.Fatalf("ev1: %+v", evs[1])
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := NewRing(4, fixedClock())
	for i := 0; i < 10; i++ {
		r.Emit(CatBlock, "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		want := fmt.Sprintf("e%d", 6+i)
		if e.Msg != want {
			t.Fatalf("evs[%d] = %q, want %q", i, e.Msg, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	// Chronological ordering preserved across the wrap.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence broken: %+v", evs)
		}
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Emit(CatError, "into the void")
	if r.Events() != nil || r.Total() != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestRenderAndFilter(t *testing.T) {
	r := NewRing(16, fixedClock())
	r.Emit(CatNego, "start")
	r.Emit(CatError, "bad thing")
	r.Emit(CatBlock, "b1")
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[nego] start", "[error] bad thing", "[block] b1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	errs := r.Filter(CatError)
	if len(errs) != 1 || errs[0].Msg != "bad thing" {
		t.Fatalf("filter: %+v", errs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := NewRing(0, nil)
	r.Emit(CatConn, "x")
	if len(r.Events()) != 1 {
		t.Fatal("default ring broken")
	}
	if r.Events()[0].At < 0 {
		t.Fatal("default clock negative")
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		CatNego: "nego", CatSession: "session", CatBlock: "block",
		CatCredit: "credit", CatError: "error", CatConn: "conn",
	} {
		if c.String() != want {
			t.Errorf("%d = %q", c, c.String())
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category empty")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRing(64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(CatBlock, "g")
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d", r.Total())
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained = %d", len(r.Events()))
	}
}
