package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n
	}
}

func TestEmitAndEvents(t *testing.T) {
	r := NewRing(8, fixedClock())
	r.Emit(Event{Cat: CatNego, Name: "hello", V1: 1})
	r.Emit(Event{Cat: CatBlock, Name: "block", Block: 2, Channel: 3})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Name != "hello" || evs[0].V1 != 1 || evs[0].Cat != CatNego || evs[0].Seq != 1 {
		t.Fatalf("ev0: %+v", evs[0])
	}
	if evs[1].Block != 2 || evs[1].Channel != 3 || evs[1].At <= evs[0].At {
		t.Fatalf("ev1: %+v", evs[1])
	}
	// Caller-set Seq/At are overwritten by the ring.
	r.Emit(Event{Cat: CatConn, Name: "stamped", Seq: 999, At: time.Hour})
	last := r.Events()[2]
	if last.Seq != 3 || last.At >= time.Hour {
		t.Fatalf("ring did not stamp: %+v", last)
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := NewRing(4, fixedClock())
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cat: CatBlock, Name: "e", V1: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.V1 != int64(6+i) {
			t.Fatalf("evs[%d] = %+v, want v1=%d", i, e, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	// Chronological ordering preserved across the wrap.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence broken: %+v", evs)
		}
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Emit(Event{Cat: CatError, Name: "into the void"})
	r.EmitErr(CatError, "still void", errors.New("x"))
	if r.Events() != nil || r.Total() != 0 {
		t.Fatal("nil ring not inert")
	}
}

type loudError struct{ called *bool }

func (e loudError) Error() string { *e.called = true; return "loud" }

func TestEmitErr(t *testing.T) {
	var called bool
	var nilRing *Ring
	nilRing.EmitErr(CatError, "fail", loudError{&called})
	if called {
		t.Fatal("EmitErr formatted the error on a nil ring")
	}
	r := NewRing(4, fixedClock())
	r.EmitErr(CatError, "fail", loudError{&called})
	if !called {
		t.Fatal("EmitErr did not capture the error")
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Text != "loud" || evs[0].Name != "fail" {
		t.Fatalf("EmitErr event: %+v", evs)
	}
	r.EmitErr(CatConn, "no-err", nil)
	if got := r.Events()[1]; got.Text != "" {
		t.Fatalf("nil error produced text: %+v", got)
	}
}

func TestRenderAndFilter(t *testing.T) {
	r := NewRing(16, fixedClock())
	r.Emit(Event{Cat: CatNego, Name: "start"})
	r.Emit(Event{Cat: CatError, Name: "write_failed", Block: 7, Text: "bad thing"})
	r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 1, Block: 3, Channel: 2, V1: 4096})
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[nego] start",
		`[error] write_failed blk=7 "bad thing"`,
		"[block] posted sess=1 blk=3 ch=2 v1=4096",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	errs := r.Filter(CatError)
	if len(errs) != 1 || errs[0].Text != "bad thing" {
		t.Fatalf("filter: %+v", errs)
	}
	if got := r.Find("posted"); len(got) != 1 || got[0].Block != 3 {
		t.Fatalf("find: %+v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := NewRing(0, nil)
	r.Emit(Event{Cat: CatConn, Name: "x"})
	if len(r.Events()) != 1 {
		t.Fatal("default ring broken")
	}
	if r.Events()[0].At < 0 {
		t.Fatal("default clock negative")
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		CatNego: "nego", CatSession: "session", CatBlock: "block",
		CatCredit: "credit", CatError: "error", CatConn: "conn",
	} {
		if c.String() != want {
			t.Errorf("%d = %q", c, c.String())
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category empty")
	}
}

func TestCategoryTextRoundTrip(t *testing.T) {
	for _, c := range []Category{CatNego, CatSession, CatBlock, CatCredit, CatError, CatConn, Category(42)} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Category
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%q: %v", b, err)
		}
		if back != c {
			t.Fatalf("round trip %v -> %q -> %v", c, b, back)
		}
	}
	var c Category
	if err := c.UnmarshalText([]byte("nonsense")); err == nil {
		t.Fatal("bad category accepted")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRing(64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Cat: CatBlock, Name: "g"})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d", r.Total())
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained = %d", len(r.Events()))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRing(16, fixedClock())
	r.Emit(Event{Cat: CatNego, Name: "nego_start", Text: "peer=10.0.0.1"})
	r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 3, Block: 17, Channel: 1, V1: 1 << 20, V2: -5})
	r.Emit(Event{Cat: CatCredit, Name: "grant", Session: 3, V1: 64})
	r.Emit(Event{Cat: CatError, Name: "write_failed", Text: `quote " and 日本語`})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("JSONL lines = %d, want 4", lines)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Events()
	if len(back) != len(orig) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("event %d changed:\n  sent %+v\n  got  %+v", i, orig[i], back[i])
		}
	}
}

func TestReadJSONLTolerance(t *testing.T) {
	in := "\n" + `{"seq":1,"at":1000,"cat":"block","name":"a"}` + "\n\n" + `{"seq":2,"at":2000,"cat":"credit","name":"b"}` + "\n"
	evs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Name != "a" || evs[1].Cat != CatCredit {
		t.Fatalf("events: %+v", evs)
	}
	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRing(8, fixedClock())
	r.Emit(Event{Cat: CatNego, Name: "nego_start"})
	r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 1, Block: 2, Channel: 0, V1: 4096})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events(), 7); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d", len(doc.TraceEvents))
	}
	first := doc.TraceEvents[0]
	if first["ph"] != "i" || first["s"] != "t" {
		t.Fatalf("not an instant event: %v", first)
	}
	if first["ts"].(float64) != 1000 { // 1ms = 1000µs
		t.Fatalf("ts = %v, want 1000", first["ts"])
	}
	if first["pid"].(float64) != 7 {
		t.Fatalf("pid = %v", first["pid"])
	}
	second := doc.TraceEvents[1]
	if second["cat"] != "block" || second["name"] != "posted" {
		t.Fatalf("second event: %v", second)
	}
	args := second["args"].(map[string]any)
	if args["block"].(float64) != 2 || args["v1"].(float64) != 4096 {
		t.Fatalf("args: %v", args)
	}
}

// BenchmarkRingEmitDisabled proves the satellite claim: with tracing
// disabled (nil ring) an emit is one branch — no formatting, zero
// allocations.
func BenchmarkRingEmitDisabled(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 1, Block: uint32(i), Channel: 2, V1: 4096})
	}
}

func BenchmarkRingEmitEnabled(b *testing.B) {
	r := NewRing(1024, func() time.Duration { return 0 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 1, Block: uint32(i), Channel: 2, V1: 4096})
	}
}

// The old API formatted on every call; this measures what a disabled
// stringly emit would have cost for comparison in the PR description.
func BenchmarkStringlyEmitDisabled(b *testing.B) {
	emit := func(r *Ring, cat Category, format string, args ...any) {
		if r == nil {
			return
		}
		r.Emit(Event{Cat: cat, Text: fmt.Sprintf(format, args...)})
	}
	var r *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emit(r, CatBlock, "posted block sess=%d blk=%d ch=%d len=%d", 1, i, 2, 4096)
	}
}

func TestEmitDisabledDoesNotAllocate(t *testing.T) {
	var r *Ring
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{Cat: CatBlock, Name: "posted", Session: 1, Block: 9, Channel: 2, V1: 4096})
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %v per op", allocs)
	}
}
