package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Satellite coverage for ReadJSONL's failure modes: dumps from crashed
// or interrupted processes arrive truncated mid-line or with corrupt
// bytes spliced in, and forensics must recover everything before the
// damage.

func validLine(name string, seq int) string {
	var buf bytes.Buffer
	WriteJSONL(&buf, []Event{{Seq: uint64(seq), At: 1000, Cat: CatBlock, Name: name}})
	return strings.TrimSuffix(buf.String(), "\n")
}

func TestReadJSONLTruncatedFinalLine(t *testing.T) {
	full := validLine("a", 1) + "\n" + validLine("b", 2)
	truncated := full[:len(full)-7] // cut mid-JSON, no trailing newline
	evs, err := ReadJSONL(strings.NewReader(truncated))
	if err == nil {
		t.Fatal("truncated final line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the damaged line: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("events before the truncation lost: %+v", evs)
	}
}

func TestReadJSONLCorruptMiddleLine(t *testing.T) {
	in := validLine("a", 1) + "\n" + `{"seq":2,"cat":"block","name":` + "\n" + validLine("c", 3) + "\n"
	evs, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("corrupt middle line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name line 2: %v", err)
	}
	// The reader aborts at the damage but keeps the valid prefix.
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("prefix events = %+v", evs)
	}
}

func TestReadJSONLGarbageBytes(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader("\x00\x01\x02 not json\n"))
	if err == nil {
		t.Fatal("binary garbage accepted")
	}
	if len(evs) != 0 {
		t.Fatalf("garbage produced events: %+v", evs)
	}
}

func TestReadJSONLWrongTypes(t *testing.T) {
	// Well-formed JSON with field types that do not match Event.
	in := `{"seq":"not-a-number","name":"a"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("type-mismatched line accepted")
	}
	// Unknown category names are rejected by Category.UnmarshalText.
	in = `{"seq":1,"cat":"martian","name":"a"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestReadJSONLBlankAndEmpty(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty input: %v, %+v", err, evs)
	}
	evs, err = ReadJSONL(strings.NewReader("\n\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank-only input: %v, %+v", err, evs)
	}
}

func TestReadJSONLOversizedLine(t *testing.T) {
	// A line beyond the scanner's 1 MiB cap must fail cleanly (scanner
	// error), not hang or OOM, and keep the valid prefix.
	var sb strings.Builder
	sb.WriteString(validLine("a", 1) + "\n")
	sb.WriteString(`{"name":"` + strings.Repeat("x", 2<<20) + `"}` + "\n")
	evs, err := ReadJSONL(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("prefix before oversized line = %+v", evs)
	}
}

func TestJSONLRoundTripThroughDamageRepair(t *testing.T) {
	// A damaged dump repaired by dropping the bad line round-trips the
	// surviving events exactly.
	events := []Event{
		{Seq: 1, At: 10, Cat: CatNego, Name: "nego_start"},
		{Seq: 2, At: 20, Cat: CatBlock, Name: "posted", Session: 1, Block: 2, V1: 4096},
		{Seq: 3, At: 30, Cat: CatError, Name: "boom", Text: "err"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	damaged := lines[0] + "GARBAGE}{\n" + lines[1] + lines[2]
	if _, err := ReadJSONL(strings.NewReader(damaged)); err == nil {
		t.Fatal("damage undetected")
	}
	repaired := lines[0] + lines[1] + lines[2]
	back, err := ReadJSONL(strings.NewReader(repaired))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("repaired events = %d", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}
