// Package trace provides lightweight ring-buffer event tracing for the
// protocol middleware: the last N events of a connection (negotiation
// steps, block movements, credit flow, errors) are retained with
// timestamps from the owning loop's clock and can be dumped when
// something goes wrong — the moral equivalent of the strace sessions
// the paper used to diagnose GridFTP.
//
// Events are structured: typed fields (session, block, channel, two
// numeric values) instead of preformatted strings, so emitting against
// a nil ring costs a single branch and zero allocations, and retained
// events can be exported losslessly as JSONL or as a Chrome
// `trace_event` timeline (see export.go).
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Category classifies an event.
type Category uint8

// Event categories.
const (
	CatNego Category = iota
	CatSession
	CatBlock
	CatCredit
	CatError
	CatConn
)

func (c Category) String() string {
	switch c {
	case CatNego:
		return "nego"
	case CatSession:
		return "session"
	case CatBlock:
		return "block"
	case CatCredit:
		return "credit"
	case CatError:
		return "error"
	case CatConn:
		return "conn"
	default:
		return fmt.Sprintf("cat(%d)", uint8(c))
	}
}

// MarshalText encodes the category as its name for JSON export.
func (c Category) MarshalText() ([]byte, error) {
	return []byte(c.String()), nil
}

// UnmarshalText decodes a category name (round-trip of MarshalText).
func (c *Category) UnmarshalText(b []byte) error {
	switch s := string(b); s {
	case "nego":
		*c = CatNego
	case "session":
		*c = CatSession
	case "block":
		*c = CatBlock
	case "credit":
		*c = CatCredit
	case "error":
		*c = CatError
	case "conn":
		*c = CatConn
	default:
		var n uint8
		if _, err := fmt.Sscanf(s, "cat(%d)", &n); err != nil {
			return fmt.Errorf("trace: unknown category %q", s)
		}
		*c = Category(n)
	}
	return nil
}

// Event is one traced occurrence. Fields beyond Name are optional,
// typed slots: protocol identifiers (Session/Block/Channel), two
// free-form numeric values whose meaning depends on Name (credits
// granted, bytes, retry count...), and Text for payloads that are
// genuinely strings (error messages, peer addresses).
type Event struct {
	Seq     uint64        `json:"seq"`
	At      time.Duration `json:"at"`
	Cat     Category      `json:"cat"`
	Name    string        `json:"name"`
	Session uint32        `json:"session,omitempty"`
	Block   uint32        `json:"block,omitempty"`
	Channel int32         `json:"channel,omitempty"`
	V1      int64         `json:"v1,omitempty"`
	V2      int64         `json:"v2,omitempty"`
	Text    string        `json:"text,omitempty"`
}

// String renders the event's payload (everything after seq/time/cat).
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	if e.Session != 0 {
		fmt.Fprintf(&b, " sess=%d", e.Session)
	}
	if e.Block != 0 {
		fmt.Fprintf(&b, " blk=%d", e.Block)
	}
	if e.Channel != 0 {
		fmt.Fprintf(&b, " ch=%d", e.Channel)
	}
	if e.V1 != 0 {
		fmt.Fprintf(&b, " v1=%d", e.V1)
	}
	if e.V2 != 0 {
		fmt.Fprintf(&b, " v2=%d", e.V2)
	}
	if e.Text != "" {
		fmt.Fprintf(&b, " %q", e.Text)
	}
	return b.String()
}

// Ring is a fixed-capacity event buffer. All methods are safe for
// concurrent use (real-time loops emit from goroutines).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	clock func() time.Duration
}

// NewRing creates a ring holding the most recent capacity events,
// timestamped by clock (pass the loop's Now).
func NewRing(capacity int, clock func() time.Duration) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	return &Ring{buf: make([]Event, 0, capacity), clock: clock}
}

// Emit records an event, stamping Seq and At. On a nil ring this is a
// single branch: the event literal lives on the caller's stack and no
// formatting ever happens (see BenchmarkRingEmitDisabled).
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	e.Seq = r.total
	e.At = r.clock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// EmitErr records an error event without touching err on a nil ring
// (err.Error() may itself format). For cold failure paths.
func (r *Ring) EmitErr(cat Category, name string, err error) {
	if r == nil {
		return
	}
	e := Event{Cat: cat, Name: name}
	if err != nil {
		e.Text = err.Error()
	}
	r.Emit(e)
}

// Total returns how many events were ever emitted (including evicted).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Render writes the retained events, one per line.
func (r *Ring) Render(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%8d %12v [%s] %s\n", e.Seq, e.At, e.Cat, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns retained events in the given category.
func (r *Ring) Filter(cat Category) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// Find returns retained events with the given name.
func (r *Ring) Find(name string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}
