// Package trace provides lightweight ring-buffer event tracing for the
// protocol middleware: the last N events of a connection (negotiation
// steps, block movements, credit flow, errors) are retained with
// timestamps from the owning loop's clock and can be dumped when
// something goes wrong — the moral equivalent of the strace sessions
// the paper used to diagnose GridFTP.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Category classifies an event.
type Category uint8

// Event categories.
const (
	CatNego Category = iota
	CatSession
	CatBlock
	CatCredit
	CatError
	CatConn
)

func (c Category) String() string {
	switch c {
	case CatNego:
		return "nego"
	case CatSession:
		return "session"
	case CatBlock:
		return "block"
	case CatCredit:
		return "credit"
	case CatError:
		return "error"
	case CatConn:
		return "conn"
	default:
		return fmt.Sprintf("cat(%d)", uint8(c))
	}
}

// Event is one traced occurrence.
type Event struct {
	Seq uint64
	At  time.Duration
	Cat Category
	Msg string
}

// Ring is a fixed-capacity event buffer. All methods are safe for
// concurrent use (real-time loops emit from goroutines).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	clock func() time.Duration
}

// NewRing creates a ring holding the most recent capacity events,
// timestamped by clock (pass the loop's Now).
func NewRing(capacity int, clock func() time.Duration) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	return &Ring{buf: make([]Event, 0, capacity), clock: clock}
}

// Emit records an event.
func (r *Ring) Emit(cat Category, format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	e := Event{Seq: r.total, At: r.clock(), Cat: cat, Msg: fmt.Sprintf(format, args...)}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were ever emitted (including evicted).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Render writes the retained events, one per line.
func (r *Ring) Render(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%8d %12v [%s] %s\n", e.Seq, e.At, e.Cat, e.Msg); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns retained events in the given category.
func (r *Ring) Filter(cat Category) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}
