package trace_test

import (
	"os"
	"time"

	"rftp/internal/trace"
)

// A Ring retains the most recent protocol events for post-mortem dumps.
func ExampleRing() {
	tick := time.Duration(0)
	clock := func() time.Duration { tick += time.Millisecond; return tick }
	r := trace.NewRing(8, clock)
	r.Emit(trace.CatNego, "negotiation start")
	r.Emit(trace.CatBlock, "posted block 1/0")
	r.Emit(trace.CatError, "WRITE failed")
	r.Render(os.Stdout)
	// Output:
	//        1          1ms [nego] negotiation start
	//        2          2ms [block] posted block 1/0
	//        3          3ms [error] WRITE failed
}
