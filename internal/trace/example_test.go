package trace_test

import (
	"os"
	"time"

	"rftp/internal/trace"
)

// A Ring retains the most recent protocol events for post-mortem dumps.
func ExampleRing() {
	tick := time.Duration(0)
	clock := func() time.Duration { tick += time.Millisecond; return tick }
	r := trace.NewRing(8, clock)
	r.Emit(trace.Event{Cat: trace.CatNego, Name: "nego_start"})
	r.Emit(trace.Event{Cat: trace.CatBlock, Name: "posted", Block: 1, V1: 4096})
	r.Emit(trace.Event{Cat: trace.CatError, Name: "write_failed", Text: "remote access error"})
	r.Render(os.Stdout)
	// Output:
	//        1          1ms [nego] nego_start
	//        2          2ms [block] posted blk=1 v1=4096
	//        3          3ms [error] write_failed "remote access error"
}

// Events export losslessly as JSONL for offline analysis.
func ExampleWriteJSONL() {
	tick := time.Duration(0)
	clock := func() time.Duration { tick += time.Millisecond; return tick }
	r := trace.NewRing(8, clock)
	r.Emit(trace.Event{Cat: trace.CatCredit, Name: "grant", Session: 2, V1: 64})
	trace.WriteJSONL(os.Stdout, r.Events())
	// Output:
	// {"seq":1,"at":1000000,"cat":"credit","name":"grant","session":2,"v1":64}
}
