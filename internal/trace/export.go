package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WriteJSONL writes events as newline-delimited JSON, one event per
// line. The output round-trips through ReadJSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a stream produced by WriteJSONL. Blank lines are
// skipped; a malformed line aborts with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return out, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// chromeEvent is one entry in the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). Events are emitted as instant events
// ("ph":"i") with thread scope, one tid per category so the viewer
// lays categories out as parallel tracks.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes events in the Chrome trace_event format
// ({"traceEvents":[...]}), loadable in chrome://tracing or Perfetto.
// pid labels the process (use 0 for a single endpoint; client/server
// dumps can use distinct pids and be concatenated by a viewer).
func WriteChromeTrace(w io.Writer, events []Event, pid int) error {
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   e.Cat.String(),
			Phase: "i",
			TS:    float64(e.At) / float64(time.Microsecond),
			PID:   pid,
			TID:   int(e.Cat),
			Scope: "t",
		}
		args := map[string]any{"seq": e.Seq}
		if e.Session != 0 {
			args["session"] = e.Session
		}
		if e.Block != 0 {
			args["block"] = e.Block
		}
		if e.Channel != 0 {
			args["channel"] = e.Channel
		}
		if e.V1 != 0 {
			args["v1"] = e.V1
		}
		if e.V2 != 0 {
			args["v2"] = e.V2
		}
		if e.Text != "" {
			args["text"] = e.Text
		}
		ce.Args = args
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
