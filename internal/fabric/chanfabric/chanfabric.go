// Package chanfabric implements the verbs interface in-process with real
// goroutines and real byte movement.
//
// Two devices are connected by a pair of unidirectional pipes, each a
// goroutine that optionally shapes traffic (token-bucket style wire
// serialization plus propagation latency) and then applies the message
// to the receiver on the receiver's event loop. With zero shaping the
// fabric runs at memory speed, which is what the integration tests and
// the quickstart example use; with shaping it approximates a LAN/WAN in
// wall-clock time for small transfers.
//
// Semantics match simfabric except that receiver-not-ready SENDs are
// parked until a receive is posted instead of being NAK-retried: the
// counter RNRStalls records how often that happened. ModelBytes are
// rejected — this fabric moves real bytes only.
package chanfabric

import (
	"sync"
	"sync/atomic"
	"time"

	"rftp/internal/bufpool"
	"rftp/internal/ringq"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// Shaping configures the emulated wire between two devices. Zero values
// mean unshaped (memory-speed, zero-latency) delivery.
type Shaping struct {
	// RateBps caps throughput in bits per second (0 = unlimited).
	RateBps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// Fabric tracks connected device pairs.
type Fabric struct {
	mu     sync.Mutex
	nextQP uint64
}

// New creates a fabric.
func New() *Fabric { return &Fabric{} }

// Device is an in-process NIC endpoint.
type Device struct {
	fabric  *Fabric
	name    string
	space   *verbs.AddressSpace
	peer    *Device
	shaping Shaping
	nextPD  uint32

	// RNRStalls counts SEND arrivals that had to park waiting for a
	// receive buffer.
	RNRStalls atomic.Uint64
	RxBytes   atomic.Uint64
	TxBytes   atomic.Uint64

	// Telemetry, when set before traffic starts, records per-opcode WR
	// and byte counters for this device. Nil costs nothing.
	Telemetry *telemetry.FabricMetrics
}

// NewDevice creates a device.
func (f *Fabric) NewDevice(name string) *Device {
	return &Device{fabric: f, name: name, space: verbs.NewAddressSpace()}
}

// Connect joins two devices with the given shaping in both directions.
func (f *Fabric) Connect(a, b *Device, shaping Shaping) {
	a.peer, b.peer = b, a
	a.shaping, b.shaping = shaping, shaping
}

// Name implements verbs.Device.
func (d *Device) Name() string { return d.name }

// AllocPD implements verbs.Device.
func (d *Device) AllocPD() *verbs.PD {
	d.nextPD++
	return &verbs.PD{ID: d.nextPD, Device: d.name}
}

// CreateCQ implements verbs.Device.
func (d *Device) CreateCQ(loop verbs.Loop, depth int) verbs.CQ {
	return verbs.NewUpcallCQ(loop)
}

// RegisterMR implements verbs.Device.
func (d *Device) RegisterMR(pd *verbs.PD, buf []byte, access verbs.Access) (*verbs.MR, error) {
	return d.space.Register(pd, buf, access)
}

// RegisterModelMR implements verbs.Device: modeled regions are not
// supported on a real-byte fabric.
func (d *Device) RegisterModelMR(pd *verbs.PD, length, shadow int, access verbs.Access) (*verbs.MR, error) {
	return nil, verbs.ErrModelBytes
}

// Space exposes the device's address space.
func (d *Device) Space() *verbs.AddressSpace { return d.space }

var _ verbs.Device = (*Device)(nil)

type qpState int32

const (
	stateInit int32 = iota
	stateReady
	stateError
	stateClosed
)

type message struct {
	wr   verbs.SendWR
	data []byte // pooled copy of wr.Data taken at post time
	// postedAt is the wire-entry stamp (zero when the device has no
	// telemetry attached, so the disabled path never calls time.Now).
	postedAt time.Time
}

// releaseData recycles the message's pooled payload copy once it has
// been placed (or the message aborted), so parked arrivals do not pin
// transfer-sized buffers and steady-state traffic allocates nothing.
func (m *message) releaseData() {
	if m.data != nil {
		bufpool.Put(m.data)
		m.data = nil
	}
}

// QP is an in-process queue pair.
type QP struct {
	dev    *Device
	id     verbs.QPID
	cfg    verbs.QPConfig
	sendCQ *verbs.UpcallCQ
	recvCQ *verbs.UpcallCQ
	peer   *QP
	state  atomic.Int32

	// sender-side, guarded by sendMu (PostSend may be called from any
	// goroutine, though the protocol uses one loop).
	sendMu        sync.Mutex
	sqOutstanding int
	pipe          chan *message
	pipeOnce      sync.Once
	// READ initiator depth: posts beyond MaxRDAtomic park in rdWait
	// (still consuming a send-queue slot) and enter the wire one at a
	// time as earlier READs complete, matching hardware that queues
	// rather than rejects past the negotiated depth.
	rdOutstanding int
	rdWait        ringq.Ring[*message]

	// receiver-side state, touched only on the recv CQ's loop.
	recvMu  sync.Mutex
	recvQ   ringq.Ring[*verbs.RecvWR]
	pending ringq.Ring[*message]
}

// CreateQP implements verbs.Device.
func (d *Device) CreateQP(cfg verbs.QPConfig) (verbs.QP, error) {
	if cfg.Type != verbs.RC {
		return nil, verbs.ErrBadWR
	}
	cfg = cfg.Normalize()
	sendCQ, ok1 := cfg.SendCQ.(*verbs.UpcallCQ)
	recvCQ, ok2 := cfg.RecvCQ.(*verbs.UpcallCQ)
	if !ok1 || !ok2 {
		return nil, verbs.ErrBadWR
	}
	id := verbs.QPID(atomic.AddUint64(&d.fabric.nextQP, 1))
	qp := &QP{dev: d, id: id, cfg: cfg, sendCQ: sendCQ, recvCQ: recvCQ}
	qp.pipe = make(chan *message, cfg.MaxSend*2+16)
	return qp, nil
}

// ConnectQPs joins two queue pairs on connected devices and starts the
// delivery pipes.
func (f *Fabric) ConnectQPs(a, b verbs.QP) error {
	qa, ok1 := a.(*QP)
	qb, ok2 := b.(*QP)
	if !ok1 || !ok2 {
		return verbs.ErrBadWR
	}
	if qa.dev.peer != qb.dev {
		return verbs.ErrNotConnected
	}
	qa.peer, qb.peer = qb, qa
	qa.state.Store(stateReady)
	qb.state.Store(stateReady)
	qa.pipeOnce.Do(func() { go qa.runPipe() })
	qb.pipeOnce.Do(func() { go qb.runPipe() })
	return nil
}

// ID implements verbs.QP.
func (q *QP) ID() verbs.QPID { return q.id }

// PostSend implements verbs.QP.
func (q *QP) PostSend(wr *verbs.SendWR) error {
	switch q.state.Load() {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	case stateInit:
		return verbs.ErrNotConnected
	}
	if wr.ModelBytes != 0 {
		return verbs.ErrModelBytes
	}
	switch wr.Op {
	case verbs.OpSend, verbs.OpWrite, verbs.OpWriteImm:
		if wr.Length() <= 0 {
			return verbs.ErrBadWR
		}
	case verbs.OpRead:
		if wr.ReadLen <= 0 || wr.Local == nil || wr.LocalOffset < 0 ||
			wr.LocalOffset+wr.ReadLen > wr.Local.Len {
			return verbs.ErrBadWR
		}
	default:
		return verbs.ErrBadWR
	}
	m := &message{wr: *wr}
	if q.dev.Telemetry != nil {
		m.postedAt = time.Now()
	}
	// Copy payload: ownership of wr.Data stays with the caller until the
	// completion, but copying here keeps the pipe safe even if the
	// caller reuses the buffer early (matches DMA-at-post semantics
	// closely enough for an emulation). The copy lives in a pooled
	// size-class buffer, recycled as soon as it is placed.
	if len(wr.Data) > 0 {
		m.data = bufpool.Get(len(wr.Data))
		copy(m.data, wr.Data)
		verbs.CountCopy(len(wr.Data))
	}
	q.sendMu.Lock()
	if q.state.Load() == stateClosed {
		q.sendMu.Unlock()
		return verbs.ErrQPClosed
	}
	if q.sqOutstanding >= q.cfg.MaxSend {
		q.sendMu.Unlock()
		return verbs.ErrSendQueueFull
	}
	q.sqOutstanding++
	if wr.Op == verbs.OpRead && q.rdOutstanding >= q.cfg.MaxRDAtomic {
		q.rdWait.Push(m)
		q.sendMu.Unlock()
		q.dev.Telemetry.Posted(wr.Op, wr.Length())
		return nil
	}
	if wr.Op == verbs.OpRead {
		q.rdOutstanding++
	}
	q.pipe <- m // buffered beyond MaxSend: never blocks
	q.sendMu.Unlock()
	q.dev.TxBytes.Add(uint64(wr.Length()))
	q.dev.Telemetry.Posted(wr.Op, wr.Length())
	if wr.Op == verbs.OpSend {
		q.dev.Telemetry.Ctrl(len(wr.Data))
	}
	return nil
}

// PostRecv implements verbs.QP.
func (q *QP) PostRecv(wr *verbs.RecvWR) error {
	switch q.state.Load() {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	}
	if wr.MR == nil || wr.Len <= 0 || wr.Offset < 0 || wr.Offset+wr.Len > wr.MR.Len {
		return verbs.ErrBadWR
	}
	cp := *wr
	q.recvMu.Lock()
	if q.recvQ.Len() >= q.cfg.MaxRecv {
		q.recvMu.Unlock()
		return verbs.ErrRecvQueueFull
	}
	q.recvQ.Push(&cp)
	q.recvMu.Unlock()
	// Deliver any parked arrivals on the receiver loop.
	q.recvCQ.Loop().Post(0, q.drainPending)
	return nil
}

// runPipe shapes and delivers messages in order.
func (q *QP) runPipe() {
	var wireFree time.Time
	for m := range q.pipe {
		if !m.postedAt.IsZero() {
			// Wire-entry stamp: send-queue residency ends when the pipe
			// goroutine picks the message up for serialization.
			q.dev.Telemetry.WireQueue(time.Since(m.postedAt))
		}
		sh := q.dev.shaping
		if sh.RateBps > 0 || sh.Latency > 0 {
			now := time.Now()
			if wireFree.Before(now) {
				wireFree = now
			}
			if sh.RateBps > 0 {
				tx := time.Duration(float64(m.wr.Length()) * 8 / sh.RateBps * float64(time.Second))
				wireFree = wireFree.Add(tx)
			}
			deliverAt := wireFree.Add(sh.Latency)
			if d := time.Until(deliverAt); d > 0 {
				time.Sleep(d)
			}
		}
		peer := q.peer
		if peer == nil || peer.state.Load() == stateClosed {
			m.releaseData()
			q.completeSend(m, verbs.StatusAborted)
			continue
		}
		m := m
		peer.recvCQ.Loop().Post(0, func() { peer.arrive(m) })
	}
}

// arrive runs on the receiver's loop; q.peer is the sender.
func (q *QP) arrive(m *message) {
	if q.state.Load() != stateReady {
		m.releaseData()
		q.peer.completeSend(m, verbs.StatusAborted)
		return
	}
	switch m.wr.Op {
	case verbs.OpWrite:
		if q.placeWrite(m) {
			q.peer.completeSend(m, verbs.StatusSuccess)
		}
	case verbs.OpWriteImm:
		if q.placeWrite(m) {
			q.park(m)
		}
	case verbs.OpSend:
		q.park(m)
	case verbs.OpRead:
		q.serveRead(m)
	}
}

func (q *QP) placeWrite(m *message) bool {
	n := len(m.data)
	_, _, err := q.dev.space.Place(m.wr.Remote, m.data, 0)
	m.releaseData() // placed (or rejected) — either way the staging copy is done
	if err != nil {
		q.enterError()
		q.peer.completeSendAndError(m, verbs.StatusRemoteAccessError)
		return false
	}
	q.dev.RxBytes.Add(uint64(n))
	q.dev.Telemetry.Rx(n)
	return true
}

// park queues a receive-consuming arrival and tries to deliver.
func (q *QP) park(m *message) {
	q.recvMu.Lock()
	q.pending.Push(m)
	stalled := q.recvQ.Len() == 0
	q.recvMu.Unlock()
	if stalled {
		q.dev.RNRStalls.Add(1)
		q.dev.Telemetry.RNR()
	}
	q.drainPending()
}

// drainPending delivers parked arrivals while receives are available.
// Runs on the receiver loop.
func (q *QP) drainPending() {
	for {
		q.recvMu.Lock()
		if q.pending.Len() == 0 || q.recvQ.Len() == 0 {
			q.recvMu.Unlock()
			return
		}
		m, _ := q.pending.Pop()
		rwr, _ := q.recvQ.Pop()
		q.recvMu.Unlock()

		if m.wr.Op == verbs.OpWriteImm {
			q.recvCQ.Dispatch(0, verbs.WC{
				WRID: rwr.WRID, Status: verbs.StatusSuccess, Op: verbs.OpWriteImm,
				ByteLen: m.wr.Length(), Imm: m.wr.Imm, QP: q.id,
			})
			q.peer.completeSend(m, verbs.StatusSuccess)
			continue
		}
		if len(m.data) > rwr.Len {
			m.releaseData()
			q.enterError()
			q.peer.completeSendAndError(m, verbs.StatusRemoteAccessError)
			return
		}
		n := len(m.data)
		rwr.MR.PlaceLocal(rwr.Offset, m.data)
		m.releaseData() // staging copy consumed by placement
		q.dev.RxBytes.Add(uint64(n))
		q.dev.Telemetry.Rx(n)
		q.recvCQ.Dispatch(0, verbs.WC{
			WRID: rwr.WRID, Status: verbs.StatusSuccess, Op: verbs.OpRecv,
			ByteLen: m.wr.Length(), Imm: m.wr.Imm,
			Data: rwr.MR.ViewLocal(rwr.Offset, n), QP: q.id,
		})
		q.peer.completeSend(m, verbs.StatusSuccess)
	}
}

// serveRead runs at the responder: fetch and return data to the
// initiator's loop.
func (q *QP) serveRead(m *message) {
	_, view, err := q.dev.space.Fetch(m.wr.Remote, m.wr.ReadLen)
	if err != nil {
		q.enterError()
		q.peer.completeRead(m, nil, verbs.StatusRemoteAccessError)
		return
	}
	data := bufpool.Get(len(view))
	copy(data, view)
	verbs.CountCopy(len(view))
	q.dev.TxBytes.Add(uint64(m.wr.ReadLen))
	init := q.peer
	init.sendCQ.Loop().Post(0, func() { init.completeRead(m, data, verbs.StatusSuccess) })
}

// completeRead lands READ data at the initiator (on its loop).
func (q *QP) completeRead(m *message, data []byte, status verbs.Status) {
	if status == verbs.StatusSuccess && m.wr.Local != nil {
		m.wr.Local.PlaceLocal(m.wr.LocalOffset, data)
		q.dev.RxBytes.Add(uint64(len(data)))
		q.dev.Telemetry.Rx(len(data))
	}
	bufpool.Put(data)
	q.finishSend(m, status, m.wr.ReadLen)
}

// completeSend delivers a sender completion for non-READ ops.
func (q *QP) completeSend(m *message, status verbs.Status) {
	lat := q.dev.shaping.Latency // ACK propagation
	if lat > 0 {
		time.AfterFunc(lat, func() { q.finishSend(m, status, m.wr.Length()) })
		return
	}
	q.finishSend(m, status, m.wr.Length())
}

func (q *QP) completeSendAndError(m *message, status verbs.Status) {
	q.enterError()
	q.finishSend(m, status, m.wr.Length())
}

func (q *QP) finishSend(m *message, status verbs.Status, byteLen int) {
	q.sendMu.Lock()
	q.sqOutstanding--
	var next *message
	if m.wr.Op == verbs.OpRead {
		q.rdOutstanding--
		if q.rdWait.Len() > 0 && q.state.Load() == stateReady {
			next, _ = q.rdWait.Pop()
			q.rdOutstanding++
		}
	}
	if next != nil {
		q.pipe <- next // sqOutstanding-bounded: never blocks
	}
	q.sendMu.Unlock()
	q.dev.Telemetry.Completed(m.wr.Op)
	if !m.postedAt.IsZero() {
		q.dev.Telemetry.WireRTT(time.Since(m.postedAt))
	}
	if status != verbs.StatusSuccess {
		q.enterError()
	} else if m.wr.NoCompletion {
		return
	}
	q.sendCQ.Dispatch(0, verbs.WC{
		WRID: m.wr.WRID, Status: status, Op: m.wr.Op, ByteLen: byteLen, QP: q.id,
	})
}

// enterError moves the QP to the error state.
func (q *QP) enterError() {
	q.state.CompareAndSwap(stateReady, stateError)
}

// Close implements verbs.QP. Parked receives are flushed and the
// delivery pipe goroutine is shut down.
func (q *QP) Close() error {
	q.sendMu.Lock()
	old := q.state.Swap(stateClosed)
	if old != stateClosed && q.pipe != nil {
		close(q.pipe)
	}
	q.sendMu.Unlock()
	if old == stateClosed {
		return verbs.ErrQPClosed
	}
	q.sendMu.Lock()
	parked := q.rdWait.Drain(nil)
	q.sendMu.Unlock()
	for _, m := range parked {
		m.releaseData()
	}
	q.recvMu.Lock()
	rq := q.recvQ.Drain(nil)
	pend := q.pending.Drain(nil)
	q.recvMu.Unlock()
	for _, m := range pend {
		m.releaseData()
	}
	for _, r := range rq {
		r := r
		q.recvCQ.Dispatch(0, verbs.WC{WRID: r.WRID, Status: verbs.StatusFlushed, Op: verbs.OpRecv, QP: q.id})
	}
	return nil
}

var _ verbs.QP = (*QP)(nil)
