package chanfabric

import (
	"bytes"
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"rftp/internal/verbs"
)

// crig is a connected two-device fixture for real-time tests.
type crig struct {
	fabric   *Fabric
	srcDev   *Device
	dstDev   *Device
	srcLoop  *Loop
	dstLoop  *Loop
	srcPD    *verbs.PD
	dstPD    *verbs.PD
	srcCQ    *verbs.UpcallCQ
	dstCQ    *verbs.UpcallCQ
	srcQP    verbs.QP
	dstQP    verbs.QP
	mu       sync.Mutex
	srcWCs   []verbs.WC
	dstWCs   []verbs.WC
	srcWCsCh chan verbs.WC
	dstWCsCh chan verbs.WC
}

func newCrig(t *testing.T, shaping Shaping) *crig {
	t.Helper()
	r := &crig{fabric: New()}
	r.srcDev = r.fabric.NewDevice("cf0")
	r.dstDev = r.fabric.NewDevice("cf1")
	r.fabric.Connect(r.srcDev, r.dstDev, shaping)
	r.srcLoop = NewLoop("src")
	r.dstLoop = NewLoop("dst")
	t.Cleanup(func() { r.srcLoop.Stop(); r.dstLoop.Stop() })
	r.srcPD, r.dstPD = r.srcDev.AllocPD(), r.dstDev.AllocPD()
	r.srcCQ = r.srcDev.CreateCQ(r.srcLoop, 256).(*verbs.UpcallCQ)
	r.dstCQ = r.dstDev.CreateCQ(r.dstLoop, 256).(*verbs.UpcallCQ)
	r.srcWCsCh = make(chan verbs.WC, 1024)
	r.dstWCsCh = make(chan verbs.WC, 1024)
	r.srcCQ.SetHandler(func(wc verbs.WC) { r.srcWCsCh <- wc })
	r.dstCQ.SetHandler(func(wc verbs.WC) { r.dstWCsCh <- wc })
	var err error
	r.srcQP, err = r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ, MaxSend: 128, MaxRecv: 128})
	if err != nil {
		t.Fatal(err)
	}
	r.dstQP, err = r.dstDev.CreateQP(verbs.QPConfig{PD: r.dstPD, SendCQ: r.dstCQ, RecvCQ: r.dstCQ, MaxSend: 128, MaxRecv: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fabric.ConnectQPs(r.srcQP, r.dstQP); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.srcQP.Close(); r.dstQP.Close() })
	return r
}

func waitWC(t *testing.T, ch chan verbs.WC) verbs.WC {
	t.Helper()
	select {
	case wc := <-ch:
		return wc
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for completion")
		return verbs.WC{}
	}
}

func TestSendRecvRealBytes(t *testing.T) {
	r := newCrig(t, Shaping{})
	buf := make([]byte, 1024)
	mr, err := r.dstDev.RegisterMR(r.dstPD, buf, verbs.AccessLocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.dstQP.PostRecv(&verbs.RecvWR{WRID: 1, MR: mr, Len: 1024}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512)
	rand.Read(payload)
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpSend, Data: payload, Imm: 5}); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.dstWCsCh)
	if wc.Op != verbs.OpRecv || wc.Imm != 5 || !bytes.Equal(wc.Data, payload) {
		t.Fatalf("recv WC wrong: op=%v imm=%d len=%d", wc.Op, wc.Imm, len(wc.Data))
	}
	swc := waitWC(t, r.srcWCsCh)
	if swc.Status != verbs.StatusSuccess || swc.WRID != 2 {
		t.Fatalf("send WC: %+v", swc)
	}
}

func TestWriteMovesRealBytes(t *testing.T) {
	r := newCrig(t, Shaping{})
	sink := make([]byte, 1<<16)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	payload := make([]byte, 1<<16)
	rand.Read(payload)
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 3, Op: verbs.OpWrite, Data: payload, Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.srcWCsCh)
	if wc.Status != verbs.StatusSuccess {
		t.Fatalf("write WC: %+v", wc)
	}
	if !bytes.Equal(sink, payload) {
		t.Fatal("payload not placed in sink MR")
	}
}

func TestWriteOrderPreserved(t *testing.T) {
	r := newCrig(t, Shaping{})
	sink := make([]byte, 4096)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	// 64 sequential writes, each overwriting the same word; last wins.
	for i := 0; i < 64; i++ {
		data := []byte{byte(i)}
		if err := r.srcQP.PostSend(&verbs.SendWR{WRID: uint64(i), Op: verbs.OpWrite, Data: data, Remote: mr.Remote(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		waitWC(t, r.srcWCsCh)
	}
	if sink[0] != 63 {
		t.Fatalf("final byte = %d, want 63 (in-order delivery)", sink[0])
	}
}

func TestParkedSendDeliversOnPostRecv(t *testing.T) {
	r := newCrig(t, Shaping{})
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpSend, Data: []byte("early")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let it park
	if r.dstDev.RNRStalls.Load() == 0 {
		t.Fatal("no RNR stall recorded")
	}
	buf := make([]byte, 64)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, buf, verbs.AccessLocalWrite)
	if err := r.dstQP.PostRecv(&verbs.RecvWR{WRID: 2, MR: mr, Len: 64}); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.dstWCsCh)
	if string(wc.Data) != "early" {
		t.Fatalf("parked send delivered %q", wc.Data)
	}
}

func TestReadRoundTrip(t *testing.T) {
	r := newCrig(t, Shaping{})
	remote := make([]byte, 256)
	rand.Read(remote)
	rmr, _ := r.dstDev.RegisterMR(r.dstPD, remote, verbs.AccessRemoteRead)
	local := make([]byte, 256)
	lmr, _ := r.srcDev.RegisterMR(r.srcPD, local, verbs.AccessLocalWrite)
	wr := &verbs.SendWR{WRID: 4, Op: verbs.OpRead, Remote: rmr.Remote(0), ReadLen: 256, Local: lmr}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.srcWCsCh)
	if wc.Op != verbs.OpRead || wc.Status != verbs.StatusSuccess {
		t.Fatalf("read WC: %+v", wc)
	}
	if !bytes.Equal(local, remote) {
		t.Fatal("read data mismatch")
	}
}

func TestModelBytesRejected(t *testing.T) {
	r := newCrig(t, Shaping{})
	if _, err := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 64, verbs.AccessRemoteWrite); err != verbs.ErrModelBytes {
		t.Fatalf("RegisterModelMR: %v", err)
	}
	err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"), ModelBytes: 100})
	if err != verbs.ErrModelBytes {
		t.Fatalf("ModelBytes post: %v", err)
	}
}

func TestRemoteAccessErrorPropagates(t *testing.T) {
	r := newCrig(t, Shaping{})
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 64), verbs.AccessRemoteRead)
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: []byte("x"), Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.srcWCsCh)
	if wc.Status != verbs.StatusRemoteAccessError {
		t.Fatalf("status = %v", wc.Status)
	}
	// Sender QP is in error state now.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("y")})
		if err == verbs.ErrQPError {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("QP never entered error state: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShapingLatency(t *testing.T) {
	r := newCrig(t, Shaping{Latency: 30 * time.Millisecond})
	sink := make([]byte, 64)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	start := time.Now()
	r.srcQP.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: []byte("delayed"), Remote: mr.Remote(0)})
	waitWC(t, r.srcWCsCh)
	// One-way data + one-way ack = 2 * 30ms.
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("completion after %v, want >= ~60ms", elapsed)
	}
}

func TestShapingRateLimits(t *testing.T) {
	// 8 Mbit/s: 1 MiB takes about one second.
	r := newCrig(t, Shaping{RateBps: 8e6 * 10}) // 80 Mbit/s -> 100ms for 1MiB
	sink := make([]byte, 1<<20)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	start := time.Now()
	const chunk = 128 << 10
	for i := 0; i < 8; i++ {
		if err := r.srcQP.PostSend(&verbs.SendWR{WRID: uint64(i), Op: verbs.OpWrite,
			Data: make([]byte, chunk), Remote: mr.Remote(i * chunk)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		waitWC(t, r.srcWCsCh)
	}
	elapsed := time.Since(start)
	if elapsed < 90*time.Millisecond {
		t.Fatalf("1 MiB at 80 Mbit/s finished in %v, want >= ~100ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("rate shaping too slow: %v", elapsed)
	}
}

func TestSendQueueCap(t *testing.T) {
	r := newCrig(t, Shaping{Latency: 50 * time.Millisecond})
	sink := make([]byte, 4096)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	var full bool
	for i := 0; i < 1000; i++ {
		err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"), Remote: mr.Remote(0), NoCompletion: true})
		if err == verbs.ErrSendQueueFull {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("send queue never filled")
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	r := newCrig(t, Shaping{})
	buf := make([]byte, 64)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, buf, verbs.AccessLocalWrite)
	r.dstQP.PostRecv(&verbs.RecvWR{WRID: 9, MR: mr, Len: 64})
	if err := r.dstQP.Close(); err != nil {
		t.Fatal(err)
	}
	wc := waitWC(t, r.dstWCsCh)
	if wc.Status != verbs.StatusFlushed || wc.WRID != 9 {
		t.Fatalf("flush WC: %+v", wc)
	}
	if err := r.dstQP.PostRecv(&verbs.RecvWR{MR: mr, Len: 64}); err != verbs.ErrQPClosed {
		t.Fatalf("post after close: %v", err)
	}
	if err := r.dstQP.Close(); err != verbs.ErrQPClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestLoopStopIdempotent(t *testing.T) {
	l := NewLoop("x")
	done := make(chan struct{})
	l.Post(0, func() { close(done) })
	<-done
	l.Stop()
	l.Stop() // must not hang or panic
	l.Post(0, func() { t.Error("post after stop executed") })
	time.Sleep(10 * time.Millisecond)
}

func TestLoopSerializes(t *testing.T) {
	l := NewLoop("serial")
	defer l.Stop()
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	wg.Add(100)
	for i := 0; i < 100; i++ {
		i := i
		l.Post(0, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("loop executed out of order at %d: %v", i, v)
		}
	}
}

func TestConcurrentPostersRace(t *testing.T) {
	// Exercise the locking under -race: many goroutines posting writes.
	r := newCrig(t, Shaping{})
	sink := make([]byte, 1<<20)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, sink, verbs.AccessRemoteWrite)
	var wg sync.WaitGroup
	const writers, per = 8, 16
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite,
						Data: []byte{byte(w)}, Remote: mr.Remote(w*per + i), NoCompletion: true})
					if err == nil {
						break
					}
					if err == verbs.ErrSendQueueFull {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("post: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for r.dstDev.RxBytes.Load() < writers*per {
		if time.Now().After(deadline) {
			t.Fatalf("only %d bytes arrived", r.dstDev.RxBytes.Load())
		}
		time.Sleep(time.Millisecond)
	}
}
