package chanfabric

import (
	"sync"
	"time"

	"rftp/internal/ringq"
)

// Loop is a real-time event loop: one goroutine executing posted
// closures in FIFO order. It implements verbs.Loop; the CPU-cost
// argument is ignored (wall-clock time is real here).
//
// The queue is unbounded so a loop can always post to itself without
// deadlocking; protocol-level flow control bounds the actual depth.
type Loop struct {
	name string
	mu   sync.Mutex
	cond *sync.Cond
	q    ringq.Ring[func()]
	stop bool
	done chan struct{}
	t0   time.Time
}

// NewLoop creates and starts a loop.
func NewLoop(name string) *Loop {
	l := &Loop{name: name, done: make(chan struct{}), t0: time.Now()}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Name returns the loop's debug name.
func (l *Loop) Name() string { return l.name }

// Now returns wall time since the loop started.
func (l *Loop) Now() time.Duration { return time.Since(l.t0) }

// Post enqueues fn; cost is ignored on a real-time loop.
func (l *Loop) Post(cost time.Duration, fn func()) {
	l.mu.Lock()
	if l.stop {
		l.mu.Unlock()
		return
	}
	l.q.Push(fn)
	l.cond.Signal()
	l.mu.Unlock()
}

// After runs fn on the loop after d of wall time.
func (l *Loop) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { l.Post(0, fn) })
}

// Stop halts the loop after the closure in progress; queued closures are
// discarded. Blocks until the loop goroutine exits.
func (l *Loop) Stop() {
	l.mu.Lock()
	if l.stop {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.stop = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for l.q.Len() == 0 && !l.stop {
			l.cond.Wait()
		}
		if l.stop {
			l.mu.Unlock()
			return
		}
		fn, _ := l.q.Pop()
		l.mu.Unlock()
		fn()
	}
}
