package netfabric

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/trace"
)

var mu sync.Mutex

// TestConcurrentConnections runs two independent RFTP transfers through
// one listener at the same time (the rftpd serving pattern).
func TestConcurrentConnections(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cfg := core.DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.Channels = 2
	cfg.IODepth = 8

	const conns = 2
	type serverOut struct {
		buf  bytes.Buffer
		err  error
		ring *trace.Ring
	}
	outs := make([]*serverOut, conns)
	var serverWG sync.WaitGroup
	serverWG.Add(conns)
	go func() {
		for i := 0; i < conns; i++ {
			dev, err := ln.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			i := i
			go func() {
				defer serverWG.Done()
				defer dev.Close()
				loop := chanfabric.NewLoop(fmt.Sprintf("srv%d", i))
				defer loop.Stop()
				ep, err := core.NewEndpoint(dev, loop, cfg.Channels, cfg.IODepth)
				if err != nil {
					t.Errorf("endpoint: %v", err)
					return
				}
				sink, err := core.NewSink(ep, cfg)
				if err != nil {
					t.Errorf("sink: %v", err)
					return
				}
				out := &serverOut{ring: trace.NewRing(64, nil)}
				sink.Trace = out.ring
				outs[i] = out
				done := make(chan struct{})
				sink.NewWriter = func(core.SessionInfo) core.BlockSink {
					return core.WriterSink{W: &out.buf}
				}
				sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) {
					out.err = r.Err
					close(done)
				}
				// Bind only after the sink's callbacks are installed:
				// parked frames replay the moment channel 0 binds.
				dev.BindQP(ep.Ctrl, 0)
				for j, qp := range ep.Data {
					dev.BindQP(qp, uint32(j+1))
				}
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					out.err = fmt.Errorf("server %d timed out", i)
				}
			}()
		}
	}()

	inputs := make([][]byte, conns)
	var clientWG sync.WaitGroup
	for i := 0; i < conns; i++ {
		inputs[i] = make([]byte, 1<<20+i*12345)
		rand.New(rand.NewSource(int64(i + 1))).Read(inputs[i])
		clientWG.Add(1)
		i := i
		go func() {
			defer clientWG.Done()
			dev, err := Dial(ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer dev.Close()
			loop := chanfabric.NewLoop(fmt.Sprintf("cli%d", i))
			defer loop.Stop()
			ep, err := core.NewEndpoint(dev, loop, cfg.Channels, cfg.IODepth)
			if err != nil {
				t.Errorf("endpoint: %v", err)
				return
			}
			dev.BindQP(ep.Ctrl, 0)
			for j, qp := range ep.Data {
				dev.BindQP(qp, uint32(j+1))
			}
			source, err := core.NewSource(ep, cfg)
			if err != nil {
				t.Errorf("source: %v", err)
				return
			}
			ring := trace.NewRing(64, nil)
			source.Trace = ring
			done := make(chan error, 1)
			loop.Post(0, func() {
				source.Start(func(err error) {
					if err != nil {
						done <- err
						return
					}
					source.Transfer(core.ReaderSource{R: bytes.NewReader(inputs[i])},
						int64(len(inputs[i])), func(r core.TransferResult) { done <- r.Err })
				})
			})
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("client %d: %v", i, err)
				}
			case <-time.After(15 * time.Second):
				mu.Lock()
				fmt.Printf("--- client %d trace ---\n", i)
				ring.Render(os.Stdout)
				for j, o := range outs {
					if o != nil {
						fmt.Printf("--- server %d trace (buf=%d) ---\n", j, o.buf.Len())
						o.ring.Render(os.Stdout)
					}
				}
				mu.Unlock()
				t.Errorf("client %d timed out", i)
			}
		}()
	}
	clientWG.Wait()
	serverWG.Wait()

	// Each server output must match one input (connection order may
	// differ from client launch order).
	matched := 0
	for i, out := range outs {
		if out == nil {
			t.Fatalf("server %d produced nothing", i)
		}
		if out.err != nil {
			t.Fatalf("server %d: %v", i, out.err)
		}
		for _, in := range inputs {
			if bytes.Equal(out.buf.Bytes(), in) {
				matched++
				break
			}
		}
	}
	if matched != conns {
		t.Fatalf("only %d/%d outputs matched inputs", matched, conns)
	}
}
