package netfabric

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// TestControlBurstInlinedAndCounted drives a burst of control SENDs
// through one device and checks (a) every message round-trips intact
// through the writer's inline-arena path, (b) the device-level control
// counters see exactly the burst, and (c) the vectored-write batch
// counters show the burst drained in fewer writes than frames (the
// writer coalesced).
func TestControlBurstInlinedAndCounted(t *testing.T) {
	a, b := pair(t)
	a.Telemetry = telemetry.NewFabricMetrics(nil)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, _, cqB := boundQPs(t, a, b, la, lb, 0)

	const burst = 32
	gotB := make(chan verbs.WC, burst)
	cqB.SetHandler(func(wc verbs.WC) { gotB <- wc })

	buf := make([]byte, 1<<20)
	mr, _ := b.RegisterMR(&verbs.PD{}, buf, verbs.AccessLocalWrite)
	for i := 0; i < burst; i++ {
		if err := qb.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Offset: i * 2048, Len: 2048}); err != nil {
			t.Fatal(err)
		}
	}

	wantBytes := 0
	for i := 0; i < burst; i++ {
		// Sizes straddle typical control-message lengths, all under
		// ctrlInlineMax so every payload takes the inline path.
		msg := bytes.Repeat([]byte{byte(i)}, 40+16*i)
		wantBytes += len(msg)
		if err := qa.PostSend(&verbs.SendWR{WRID: uint64(i), Op: verbs.OpSend, Data: msg}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < burst; i++ {
		select {
		case wc := <-gotB:
			want := bytes.Repeat([]byte{byte(wc.WRID)}, 40+16*int(wc.WRID))
			if !bytes.Equal(wc.Data, want) {
				t.Fatalf("send %d: payload corrupted through inline path (%d bytes, want %d)",
					wc.WRID, len(wc.Data), len(want))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout after %d/%d receives", i, burst)
		}
	}

	m := a.Telemetry
	if m.CtrlMsgs() != burst {
		t.Fatalf("ctrl_msgs = %d, want %d", m.CtrlMsgs(), burst)
	}
	if m.CtrlBytes() != int64(wantBytes) {
		t.Fatalf("ctrl_bytes = %d, want %d", m.CtrlBytes(), wantBytes)
	}
	batches, frames := m.TxBatches(), m.TxFrames()
	if batches == 0 || frames < burst {
		t.Fatalf("tx_batches=%d tx_frames=%d, want >=1 batch carrying >=%d frames", batches, frames, burst)
	}
	if batches >= frames {
		t.Fatalf("tx_batches=%d not below tx_frames=%d: writer never coalesced", batches, frames)
	}
}

// TestLargeSendBypassesInline sends a control payload above the inline
// threshold and checks it still arrives intact via the reference
// (zero-copy) iovec path.
func TestLargeSendBypassesInline(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, _, cqB := boundQPs(t, a, b, la, lb, 0)

	got := make(chan verbs.WC, 1)
	cqB.SetHandler(func(wc verbs.WC) { got <- wc })

	buf := make([]byte, 64<<10)
	mr, _ := b.RegisterMR(&verbs.PD{}, buf, verbs.AccessLocalWrite)
	if err := qb.PostRecv(&verbs.RecvWR{WRID: 1, MR: mr, Len: len(buf)}); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, ctrlInlineMax+1)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	if err := qa.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpSend, Data: msg}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if !bytes.Equal(wc.Data, msg) {
			t.Fatal("oversize SEND corrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv timeout")
	}
}

// TestInterleavedInlineAndBulk alternates small control SENDs with bulk
// WRITEs in one queue flush so the writer's arena runs are interrupted
// by zero-copy payload entries, then verifies both streams.
func TestInterleavedInlineAndBulk(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, cqA, cqB := boundQPs(t, a, b, la, lb, 0)

	const rounds = 8
	recvd := make(chan verbs.WC, rounds)
	acks := make(chan verbs.WC, 2*rounds)
	cqB.SetHandler(func(wc verbs.WC) { recvd <- wc })
	cqA.SetHandler(func(wc verbs.WC) { acks <- wc })

	dst := make([]byte, rounds*4096)
	dstMR, _ := b.RegisterMR(&verbs.PD{}, dst, verbs.AccessLocalWrite|verbs.AccessRemoteWrite)
	ctl := make([]byte, rounds*256)
	ctlMR, _ := b.RegisterMR(&verbs.PD{}, ctl, verbs.AccessLocalWrite)
	for i := 0; i < rounds; i++ {
		if err := qb.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: ctlMR, Offset: i * 256, Len: 256}); err != nil {
			t.Fatal(err)
		}
	}

	bulk := make([][]byte, rounds)
	for i := 0; i < rounds; i++ {
		bulk[i] = bytes.Repeat([]byte{byte(0xA0 + i)}, 4096)
		wr := &verbs.SendWR{WRID: uint64(100 + i), Op: verbs.OpWrite, Data: bulk[i],
			Remote: dstMR.Remote(i * 4096)}
		if err := qa.PostSend(wr); err != nil {
			t.Fatal(err)
		}
		msg := []byte(fmt.Sprintf("ctl-%02d", i))
		if err := qa.PostSend(&verbs.SendWR{WRID: uint64(200 + i), Op: verbs.OpSend, Data: msg}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rounds; i++ {
		select {
		case wc := <-recvd:
			want := fmt.Sprintf("ctl-%02d", wc.WRID)
			if string(wc.Data) != want {
				t.Fatalf("control %d: got %q want %q", wc.WRID, wc.Data, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("control recv timeout")
		}
	}
	for i := 0; i < 2*rounds; i++ {
		select {
		case wc := <-acks:
			if wc.Status != verbs.StatusSuccess {
				t.Fatalf("completion %d failed: %+v", wc.WRID, wc)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ack timeout")
		}
	}
	for i := 0; i < rounds; i++ {
		if !bytes.Equal(dst[i*4096:(i+1)*4096], bulk[i]) {
			t.Fatalf("bulk region %d corrupted", i)
		}
	}
}
