package netfabric

import (
	"sync"
	"sync/atomic"
	"time"

	"rftp/internal/ringq"
	"rftp/internal/verbs"
)

type qpState = int32

const (
	stateInit int32 = iota
	stateReady
	stateError
	stateClosed
)

// QP is a queue pair bound to a channel of the device's TCP connection.
type QP struct {
	dev     *Device
	id      verbs.QPID
	cfg     verbs.QPConfig
	channel uint32
	state   atomic.Int32

	sendCQ *verbs.UpcallCQ
	recvCQ *verbs.UpcallCQ

	sendMu        sync.Mutex
	sqOutstanding int
	// READ initiator depth: posts beyond MaxRDAtomic park in rdWait
	// (still consuming a send-queue slot) and go on the wire one at a
	// time as earlier READs complete, matching hardware that queues
	// rather than rejects past the negotiated depth.
	rdOutstanding int
	rdWait        ringq.Ring[*verbs.SendWR]

	recvMu  sync.Mutex
	recvQ   ringq.Ring[*verbs.RecvWR]
	pending ringq.Ring[*frame] // SEND/WRITE_IMM frames awaiting a posted receive
}

// CreateQP implements verbs.Device.
func (d *Device) CreateQP(cfg verbs.QPConfig) (verbs.QP, error) {
	if cfg.Type != verbs.RC {
		return nil, verbs.ErrBadWR
	}
	cfg = cfg.Normalize()
	sendCQ, ok1 := cfg.SendCQ.(*verbs.UpcallCQ)
	recvCQ, ok2 := cfg.RecvCQ.(*verbs.UpcallCQ)
	if !ok1 || !ok2 {
		return nil, verbs.ErrBadWR
	}
	d.mu.Lock()
	d.nextQP++
	id := d.nextQP
	d.mu.Unlock()
	return &QP{dev: d, id: id, cfg: cfg, sendCQ: sendCQ, recvCQ: recvCQ}, nil
}

// BindQP attaches a QP to a channel id. Both peers must bind matching
// channel ids (0 = control, 1..n = data, by convention). Frames that
// arrived early are replayed.
func (d *Device) BindQP(q verbs.QP, channel uint32) error {
	qp, ok := q.(*QP)
	if !ok || qp.dev != d {
		return verbs.ErrBadWR
	}
	d.mu.Lock()
	if _, dup := d.channels[channel]; dup {
		d.mu.Unlock()
		return verbs.ErrBadWR
	}
	qp.channel = channel
	qp.state.Store(stateReady)
	d.channels[channel] = qp
	early := d.parked[channel]
	delete(d.parked, channel)
	d.mu.Unlock()
	for _, f := range early {
		qp.inbound(f)
	}
	return nil
}

// ID implements verbs.QP.
func (q *QP) ID() verbs.QPID { return q.id }

// PostSend implements verbs.QP. The payload is NOT copied: the frame
// references wr.Data until it reaches the socket, honoring verbs
// ownership semantics (the caller owns the buffer again only when the
// completion fires).
func (q *QP) PostSend(wr *verbs.SendWR) error {
	switch q.state.Load() {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	case stateInit:
		return verbs.ErrNotConnected
	}
	if wr.ModelBytes != 0 {
		return verbs.ErrModelBytes
	}
	switch wr.Op {
	case verbs.OpSend, verbs.OpWrite, verbs.OpWriteImm:
		if wr.Length() <= 0 {
			return verbs.ErrBadWR
		}
	case verbs.OpRead:
		if wr.ReadLen <= 0 || wr.Local == nil || wr.LocalOffset < 0 ||
			wr.LocalOffset+wr.ReadLen > wr.Local.Len {
			return verbs.ErrBadWR
		}
	default:
		return verbs.ErrBadWR
	}
	q.sendMu.Lock()
	if q.sqOutstanding >= q.cfg.MaxSend {
		q.sendMu.Unlock()
		return verbs.ErrSendQueueFull
	}
	q.sqOutstanding++
	if wr.Op == verbs.OpRead {
		if q.rdOutstanding >= q.cfg.MaxRDAtomic {
			cp := *wr
			q.rdWait.Push(&cp)
			q.sendMu.Unlock()
			q.dev.Telemetry.Posted(wr.Op, 0)
			return nil
		}
		q.rdOutstanding++
	}
	q.sendMu.Unlock()

	var postedNs int64
	if q.dev.Telemetry != nil {
		postedNs = time.Now().UnixNano()
	}
	tok := q.dev.registerToken(q, wr, postedNs)
	f := getFrame()
	f.channel, f.token, f.imm = q.channel, tok, wr.Imm
	f.postedNs = postedNs
	switch wr.Op {
	case verbs.OpSend:
		f.op = frSend
		f.payload = wr.Data
	case verbs.OpWrite:
		f.op = frWrite
		f.addr, f.rkey = wr.Remote.Addr, wr.Remote.RKey
		f.payload = wr.Data
	case verbs.OpWriteImm:
		f.op = frWriteImm
		f.addr, f.rkey = wr.Remote.Addr, wr.Remote.RKey
		f.payload = wr.Data
	case verbs.OpRead:
		f.op = frReadReq
		f.addr, f.rkey = wr.Remote.Addr, wr.Remote.RKey
		f.imm = uint32(wr.ReadLen)
	}
	if !q.dev.send(f) {
		putFrame(f)
		q.dropToken(tok, wr.Op)
		return verbs.ErrQPClosed
	}
	q.dev.Telemetry.Posted(wr.Op, 0) // wire bytes counted at the framing layer
	if wr.Op == verbs.OpSend {
		q.dev.Telemetry.Ctrl(len(wr.Data))
	}
	return nil
}

func (q *QP) dropToken(tok uint64, op verbs.Opcode) {
	q.dev.mu.Lock()
	delete(q.dev.tokens, tok)
	q.dev.mu.Unlock()
	q.sendMu.Lock()
	q.sqOutstanding--
	if op == verbs.OpRead {
		q.rdOutstanding--
	}
	q.sendMu.Unlock()
}

// issueRead puts a previously parked READ on the wire. Called with no
// locks held; the caller has already moved rdOutstanding to cover it.
func (q *QP) issueRead(wr *verbs.SendWR) {
	var postedNs int64
	if q.dev.Telemetry != nil {
		postedNs = time.Now().UnixNano()
	}
	tok := q.dev.registerToken(q, wr, postedNs)
	f := getFrame()
	f.channel, f.token = q.channel, tok
	f.postedNs = postedNs
	f.op = frReadReq
	f.addr, f.rkey = wr.Remote.Addr, wr.Remote.RKey
	f.imm = uint32(wr.ReadLen)
	if !q.dev.send(f) {
		putFrame(f)
		q.dropToken(tok, verbs.OpRead)
		if !wr.NoCompletion {
			q.sendCQ.Dispatch(0, verbs.WC{WRID: wr.WRID, Status: verbs.StatusAborted, Op: verbs.OpRead, QP: q.id})
		}
	}
}

// PostRecv implements verbs.QP.
func (q *QP) PostRecv(wr *verbs.RecvWR) error {
	switch q.state.Load() {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	}
	if wr.MR == nil || wr.Len <= 0 || wr.Offset < 0 || wr.Offset+wr.Len > wr.MR.Len {
		return verbs.ErrBadWR
	}
	cp := *wr
	q.recvMu.Lock()
	if q.recvQ.Len() >= q.cfg.MaxRecv {
		q.recvMu.Unlock()
		return verbs.ErrRecvQueueFull
	}
	q.recvQ.Push(&cp)
	q.recvMu.Unlock()
	q.recvCQ.Loop().Post(0, q.drainPending)
	return nil
}

// inbound handles a data-bearing frame from the peer. Runs on the
// device reader goroutine; receive-path work is posted to the recv loop.
func (q *QP) inbound(f *frame) {
	if q.state.Load() != stateReady {
		q.ackTo(f, wsAccess)
		putFrame(f)
		return
	}
	switch f.op {
	case frWrite:
		q.applyWrite(f, false)
	case frWriteImm:
		q.applyWrite(f, true)
	case frSend:
		q.recvCQ.Loop().Post(0, func() { q.parkFrame(f) })
	case frReadReq:
		q.serveRead(f)
		putFrame(f)
	default:
		putFrame(f)
	}
}

// applyWrite validates and places a one-sided write, then ACKs. The
// fast path placed the payload straight into the region at read time;
// the staged path (frames parked before BindQP) places it here. Either
// way the payload is released before any RNR parking, so stalled
// WRITE_IMM frames pin no memory.
func (q *QP) applyWrite(f *frame, imm bool) {
	if f.placeErr {
		q.ackTo(f, wsAccess)
		putFrame(f)
		return
	}
	if !f.placed {
		if _, _, err := q.dev.space.Place(verbs.RemoteAddr{Addr: f.addr, RKey: f.rkey}, f.payload, 0); err != nil {
			q.ackTo(f, wsAccess)
			putFrame(f)
			return
		}
		f.placed = true
		f.releasePayload()
	}
	if imm {
		q.recvCQ.Loop().Post(0, func() { q.parkFrame(f) })
		return // ACK after the imm notification consumes a receive
	}
	q.ackTo(f, wsOK)
	putFrame(f)
}

// parkFrame queues a receive-consuming frame and drains.
func (q *QP) parkFrame(f *frame) {
	q.recvMu.Lock()
	q.pending.Push(f)
	stalled := q.recvQ.Len() == 0
	q.recvMu.Unlock()
	if stalled {
		q.dev.RNRStalls.Add(1)
		q.dev.Telemetry.RNR()
	}
	q.drainPending()
}

func (q *QP) drainPending() {
	for {
		q.recvMu.Lock()
		if q.pending.Len() == 0 || q.recvQ.Len() == 0 {
			q.recvMu.Unlock()
			return
		}
		f, _ := q.pending.Pop()
		rwr, _ := q.recvQ.Pop()
		q.recvMu.Unlock()

		if f.op == frWriteImm {
			q.recvCQ.Dispatch(0, verbs.WC{
				WRID: rwr.WRID, Status: verbs.StatusSuccess, Op: verbs.OpWriteImm,
				ByteLen: f.paylen, Imm: f.imm, QP: q.id,
			})
			q.ackTo(f, wsOK)
			putFrame(f)
			continue
		}
		if f.paylen > rwr.Len {
			q.ackTo(f, wsAccess)
			putFrame(f)
			q.enterError()
			return
		}
		rwr.MR.PlaceLocal(rwr.Offset, f.payload)
		q.recvCQ.Dispatch(0, verbs.WC{
			WRID: rwr.WRID, Status: verbs.StatusSuccess, Op: verbs.OpRecv,
			ByteLen: f.paylen, Imm: f.imm,
			Data: rwr.MR.ViewLocal(rwr.Offset, f.paylen), QP: q.id,
		})
		q.ackTo(f, wsOK)
		putFrame(f) // returns the staging buffer to the pool
	}
}

// serveRead answers an inbound READ request. The response payload
// references the region's bytes directly (no copy); the writer drops
// the reference once the frame reaches the socket.
func (q *QP) serveRead(f *frame) {
	n := int(f.imm)
	_, view, err := q.dev.space.Fetch(verbs.RemoteAddr{Addr: f.addr, RKey: f.rkey}, n)
	resp := getFrame()
	resp.op, resp.channel, resp.token = frReadResp, q.channel, f.token
	if err != nil {
		resp.status = wsAccess
	} else {
		resp.payload = view
	}
	if !q.dev.send(resp) {
		putFrame(resp)
	}
}

// ackTo acknowledges a data frame back to its sender.
func (q *QP) ackTo(f *frame, status uint8) {
	a := getFrame()
	a.op, a.channel, a.token, a.status = frAck, q.channel, f.token, status
	if !q.dev.send(a) {
		putFrame(a)
	}
}

// remoteAck completes a sent WR after the peer's ACK/READ response.
// Runs on the device reader goroutine. postedNs is the wire-entry stamp
// carried by the pending token (0 when telemetry is detached).
func (q *QP) remoteAck(wr verbs.SendWR, f *frame, postedNs int64) {
	q.sendMu.Lock()
	q.sqOutstanding--
	var next *verbs.SendWR
	if wr.Op == verbs.OpRead {
		q.rdOutstanding--
		if q.rdWait.Len() > 0 && q.state.Load() == stateReady {
			next, _ = q.rdWait.Pop()
			q.rdOutstanding++
		}
	}
	q.sendMu.Unlock()
	if next != nil {
		q.issueRead(next)
	}
	q.dev.Telemetry.Completed(wr.Op)
	if postedNs != 0 {
		q.dev.Telemetry.WireRTT(time.Duration(time.Now().UnixNano() - postedNs))
	}
	status := frameStatusToVerbs(f.status)
	byteLen := wr.Length()
	if wr.Op == verbs.OpRead {
		byteLen = wr.ReadLen
		if status == verbs.StatusSuccess && wr.Local != nil && !f.placed {
			// Fallback: the response was staged (e.g. a truncated or
			// oversized reply); place it now.
			wr.Local.PlaceLocal(wr.LocalOffset, f.payload)
		}
	}
	if status != verbs.StatusSuccess {
		q.enterError()
	} else if wr.NoCompletion {
		return
	}
	q.sendCQ.Dispatch(0, verbs.WC{
		WRID: wr.WRID, Status: status, Op: wr.Op, ByteLen: byteLen, QP: q.id,
	})
}

// connectionLost fails the QP after a transport error.
func (q *QP) connectionLost() {
	if q.state.CompareAndSwap(stateReady, stateError) {
		q.flushRecvs()
	}
}

func (q *QP) enterError() {
	q.state.CompareAndSwap(stateReady, stateError)
}

func (q *QP) flushRecvs() {
	q.recvMu.Lock()
	rq := q.recvQ.Drain(nil)
	pend := q.pending.Drain(nil)
	q.recvMu.Unlock()
	for _, f := range pend {
		putFrame(f)
	}
	for _, r := range rq {
		q.recvCQ.Dispatch(0, verbs.WC{WRID: r.WRID, Status: verbs.StatusFlushed, Op: verbs.OpRecv, QP: q.id})
	}
}

// Close implements verbs.QP.
func (q *QP) Close() error {
	old := q.state.Swap(stateClosed)
	if old == stateClosed {
		return verbs.ErrQPClosed
	}
	q.flushRecvs()
	return nil
}

var _ verbs.QP = (*QP)(nil)
