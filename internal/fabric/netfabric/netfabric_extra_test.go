package netfabric

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
)

func TestRNRStallCounter(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, cqA, cqB := boundQPs(t, a, b, la, lb, 0)
	cqA.SetHandler(func(verbs.WC) {})
	got := make(chan verbs.WC, 4)
	cqB.SetHandler(func(wc verbs.WC) { got <- wc })

	if err := qa.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpSend, Data: []byte("early")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.RNRStalls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no RNR stall recorded")
		}
		time.Sleep(time.Millisecond)
	}
	mr, _ := b.RegisterMR(&verbs.PD{}, make([]byte, 64), verbs.AccessLocalWrite)
	if err := qb.PostRecv(&verbs.RecvWR{WRID: 2, MR: mr, Len: 64}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if string(wc.Data) != "early" {
			t.Fatalf("delivered %q", wc.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked SEND never delivered")
	}
}

func TestByteCountersAdvance(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	done := make(chan verbs.WC, 1)
	cqA.SetHandler(func(wc verbs.WC) { done <- wc })
	sink := make([]byte, 1<<16)
	mr, _ := b.RegisterMR(&verbs.PD{}, sink, verbs.AccessRemoteWrite)
	payload := make([]byte, 1<<16)
	if err := qa.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: payload, Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	<-done
	if a.TxBytes.Load() < 1<<16 {
		t.Fatalf("TxBytes = %d", a.TxBytes.Load())
	}
	if b.RxBytes.Load() < 1<<16 {
		t.Fatalf("RxBytes = %d", b.RxBytes.Load())
	}
}

func TestReadBadParamsRejectedLocally(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	cqA.SetHandler(func(verbs.WC) {})
	local, _ := a.RegisterMR(&verbs.PD{}, make([]byte, 64), verbs.AccessLocalWrite)
	// ReadLen beyond the local region.
	err := qa.PostSend(&verbs.SendWR{Op: verbs.OpRead, ReadLen: 128, Local: local,
		Remote: verbs.RemoteAddr{Addr: 1, RKey: 1}})
	if err != verbs.ErrBadWR {
		t.Fatalf("oversized local read: %v", err)
	}
	// Negative offset.
	err = qa.PostSend(&verbs.SendWR{Op: verbs.OpRead, ReadLen: 8, Local: local, LocalOffset: -1,
		Remote: verbs.RemoteAddr{Addr: 1, RKey: 1}})
	if err != verbs.ErrBadWR {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestReadRemoteErrorOverTCP(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	got := make(chan verbs.WC, 1)
	cqA.SetHandler(func(wc verbs.WC) { got <- wc })
	local, _ := a.RegisterMR(&verbs.PD{}, make([]byte, 64), verbs.AccessLocalWrite)
	// Bogus remote region.
	err := qa.PostSend(&verbs.SendWR{WRID: 9, Op: verbs.OpRead, ReadLen: 8, Local: local,
		Remote: verbs.RemoteAddr{Addr: 0x1234, RKey: 0x9999}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if wc.Status != verbs.StatusRemoteAccessError {
			t.Fatalf("status = %v", wc.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestUnsignaledSendOverTCP(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	var completions int
	cqA.SetHandler(func(verbs.WC) { completions++ })
	sink := make([]byte, 1024)
	mr, _ := b.RegisterMR(&verbs.PD{}, sink, verbs.AccessRemoteWrite)
	for i := 0; i < 8; i++ {
		if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("q"),
			Remote: mr.Remote(i), NoCompletion: true}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.RxBytes.Load() < 8 {
		if time.Now().After(deadline) {
			t.Fatal("writes never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// The send queue must have drained (outstanding decremented) so new
	// posts succeed, yet no success completions were dispatched.
	if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("q"), Remote: mr.Remote(0), NoCompletion: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if completions != 0 {
		t.Fatalf("unsignaled writes produced %d completions", completions)
	}
}

func TestGoodbyeFrameTearsDown(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	cqA.SetHandler(func(verbs.WC) {})
	closed := make(chan struct{})
	a.SetOnClose(func(error) { close(closed) })
	// The peer announces an orderly shutdown.
	b.send(&frame{op: frGoodbye})
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("goodbye ignored")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("x")}); err == verbs.ErrQPError {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("QP survived goodbye")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFrameRoundTripUnit(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := &frame{op: frWrite, status: 2, channel: 7, token: 99, addr: 0xABCDEF, rkey: 5, imm: 6, payload: []byte("data")}
	if err := writeFrame(w, in); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.op != in.op || out.status != in.status || out.channel != in.channel ||
		out.token != in.token || out.addr != in.addr || out.rkey != in.rkey ||
		out.imm != in.imm || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestFrameTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeFrame(w, &frame{op: frSend, payload: []byte("hello")})
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
}

func TestStatusMapping(t *testing.T) {
	cases := map[uint8]verbs.Status{
		wsOK:     verbs.StatusSuccess,
		wsAccess: verbs.StatusRemoteAccessError,
		wsRNR:    verbs.StatusRNRRetryExceeded,
		99:       verbs.StatusLocalError,
	}
	for in, want := range cases {
		if got := frameStatusToVerbs(in); got != want {
			t.Errorf("status %d -> %v, want %v", in, got, want)
		}
	}
}
