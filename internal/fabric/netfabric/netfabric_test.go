package netfabric

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
	"time"

	"rftp/internal/core"
	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
)

// pair dials a loopback listener and returns both devices.
func pair(t *testing.T) (*Device, *Device) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		d   *Device
		err error
	}
	ch := make(chan res, 1)
	go func() {
		d, err := ln.Accept()
		ch <- res{d, err}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.d.Close() })
	return client, r.d
}

// boundQPs creates and binds a QP pair on channel ch.
func boundQPs(t *testing.T, a, b *Device, la, lb verbs.Loop, ch uint32) (verbs.QP, verbs.QP, *verbs.UpcallCQ, *verbs.UpcallCQ) {
	t.Helper()
	cqA := a.CreateCQ(la, 128).(*verbs.UpcallCQ)
	cqB := b.CreateCQ(lb, 128).(*verbs.UpcallCQ)
	qa, err := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cqA, RecvCQ: cqA, MaxSend: 64, MaxRecv: 64})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.CreateQP(verbs.QPConfig{PD: b.AllocPD(), SendCQ: cqB, RecvCQ: cqB, MaxSend: 64, MaxRecv: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BindQP(qa, ch); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQP(qb, ch); err != nil {
		t.Fatal(err)
	}
	return qa, qb, cqA, cqB
}

func TestFrameRoundTripOverTCP(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, cqA, cqB := boundQPs(t, a, b, la, lb, 0)

	gotB := make(chan verbs.WC, 16)
	gotA := make(chan verbs.WC, 16)
	cqB.SetHandler(func(wc verbs.WC) { gotB <- wc })
	cqA.SetHandler(func(wc verbs.WC) { gotA <- wc })

	buf := make([]byte, 256)
	mr, _ := b.RegisterMR(&verbs.PD{}, buf, verbs.AccessLocalWrite)
	if err := qb.PostRecv(&verbs.RecvWR{WRID: 1, MR: mr, Len: 256}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("over the real wire")
	if err := qa.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpSend, Data: msg, Imm: 77}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-gotB:
		if !bytes.Equal(wc.Data, msg) || wc.Imm != 77 {
			t.Fatalf("recv WC: %+v", wc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv timeout")
	}
	select {
	case wc := <-gotA:
		if wc.Status != verbs.StatusSuccess || wc.WRID != 2 {
			t.Fatalf("send WC: %+v", wc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack timeout")
	}
}

func TestWriteAndReadOverTCP(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	got := make(chan verbs.WC, 16)
	cqA.SetHandler(func(wc verbs.WC) { got <- wc })

	sink := make([]byte, 4096)
	mr, _ := b.RegisterMR(&verbs.PD{}, sink, verbs.AccessRemoteWrite|verbs.AccessRemoteRead)
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := qa.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: payload, Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if wc.Status != verbs.StatusSuccess {
			t.Fatalf("write WC: %+v", wc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write timeout")
	}
	b.Sync() // order the reader's in-place placement before our read
	if !bytes.Equal(sink, payload) {
		t.Fatal("write payload mismatch")
	}

	// Read it back.
	local := make([]byte, 4096)
	lmr, _ := a.RegisterMR(&verbs.PD{}, local, verbs.AccessLocalWrite)
	if err := qa.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpRead, Remote: mr.Remote(0), ReadLen: 4096, Local: lmr}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if wc.Status != verbs.StatusSuccess || wc.Op != verbs.OpRead {
			t.Fatalf("read WC: %+v", wc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read timeout")
	}
	if !bytes.Equal(local, payload) {
		t.Fatal("read payload mismatch")
	}
}

func TestRemoteAccessErrorOverTCP(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	got := make(chan verbs.WC, 16)
	cqA.SetHandler(func(wc verbs.WC) { got <- wc })
	mr, _ := b.RegisterMR(&verbs.PD{}, make([]byte, 64), verbs.AccessRemoteRead) // no write
	if err := qa.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: []byte("x"), Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-got:
		if wc.Status != verbs.StatusRemoteAccessError {
			t.Fatalf("status = %v", wc.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestEarlyFramesParkedUntilBind(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	// Bind only the sender side first.
	cqA := a.CreateCQ(la, 16).(*verbs.UpcallCQ)
	qa, _ := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cqA, RecvCQ: cqA})
	if err := a.BindQP(qa, 5); err != nil {
		t.Fatal(err)
	}
	gotA := make(chan verbs.WC, 4)
	cqA.SetHandler(func(wc verbs.WC) { gotA <- wc })

	sink := make([]byte, 64)
	mr, _ := b.RegisterMR(&verbs.PD{}, sink, verbs.AccessRemoteWrite)
	if err := qa.PostSend(&verbs.SendWR{WRID: 9, Op: verbs.OpWrite, Data: []byte("early"), Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // frame arrives pre-bind, parks

	cqB := b.CreateCQ(lb, 16).(*verbs.UpcallCQ)
	cqB.SetHandler(func(verbs.WC) {})
	qb, _ := b.CreateQP(verbs.QPConfig{PD: b.AllocPD(), SendCQ: cqB, RecvCQ: cqB})
	if err := b.BindQP(qb, 5); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-gotA:
		if wc.Status != verbs.StatusSuccess {
			t.Fatalf("parked write WC: %+v", wc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked frame never applied")
	}
	b.Sync()
	if string(sink[:5]) != "early" {
		t.Fatal("parked frame not placed")
	}
}

func TestDuplicateBindRejected(t *testing.T) {
	a, _ := pair(t)
	la := chanfabric.NewLoop("a")
	t.Cleanup(func() { la.Stop() })
	cq := a.CreateCQ(la, 4).(*verbs.UpcallCQ)
	q1, _ := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cq, RecvCQ: cq})
	q2, _ := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cq, RecvCQ: cq})
	if err := a.BindQP(q1, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.BindQP(q2, 1); err == nil {
		t.Fatal("duplicate channel bind accepted")
	}
}

func TestPeerCloseFailsQPs(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	cqA.SetHandler(func(verbs.WC) {})
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := qa.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("x")})
		if err == verbs.ErrQPError || err == verbs.ErrQPClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("QP survived peer close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRFTPOverTCP runs the full protocol core across a real socket.
func TestRFTPOverTCP(t *testing.T) {
	client, server := pair(t)
	srcLoop, dstLoop := chanfabric.NewLoop("src"), chanfabric.NewLoop("dst")
	t.Cleanup(func() { srcLoop.Stop(); dstLoop.Stop() })

	cfg := core.DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.Channels = 2
	cfg.IODepth = 8

	srcEP, err := core.NewEndpoint(client, srcLoop, cfg.Channels, cfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	dstEP, err := core.NewEndpoint(server, dstLoop, cfg.Channels, cfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	// Channel convention: 0 = control, 1..n = data.
	if err := client.BindQP(srcEP.Ctrl, 0); err != nil {
		t.Fatal(err)
	}
	if err := server.BindQP(dstEP.Ctrl, 0); err != nil {
		t.Fatal(err)
	}
	for i := range srcEP.Data {
		if err := client.BindQP(srcEP.Data[i], uint32(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := server.BindQP(dstEP.Data[i], uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	sink, err := core.NewSink(dstEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	done := make(chan error, 2)
	sink.NewWriter = func(core.SessionInfo) core.BlockSink { return core.WriterSink{W: &out} }
	sink.OnSessionDone = func(info core.SessionInfo, r core.TransferResult) { done <- r.Err }

	source, err := core.NewSource(srcEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5<<20+777)
	rand.New(rand.NewSource(42)).Read(data)
	srcLoop.Post(0, func() {
		source.Start(func(err error) {
			if err != nil {
				done <- err
				done <- err
				return
			}
			source.Transfer(core.ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
				func(r core.TransferResult) { done <- r.Err })
		})
	})
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("transfer: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("RFTP-over-TCP timed out")
		}
	}
	if sha256.Sum256(out.Bytes()) != sha256.Sum256(data) {
		t.Fatalf("corrupted: %d bytes vs %d", out.Len(), len(data))
	}
}

func TestFrameEncodingLimits(t *testing.T) {
	// Oversized frame length on the wire must be rejected.
	var hdr [frameHeaderLen]byte
	hdr[0] = frSend
	hdr[30], hdr[31], hdr[32], hdr[33] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: %v", err)
	}
}
