// Package netfabric implements the verbs interface over TCP sockets, so
// the protocol core runs unchanged between two real processes (in the
// spirit of software RDMA emulations like Soft-RoCE).
//
// One TCP connection joins two Devices. All queue pairs are multiplexed
// over it as framed messages keyed by a channel id that both sides bind
// with BindQP (channel 0 is conventionally the control QP, 1..n the data
// QPs). One-sided WRITE frames carry (addr, rkey) and are validated
// against the receiving device's registered regions exactly like the
// other fabrics; SENDs consume posted receives; READs round-trip a
// request/response pair. Every data-bearing frame is acknowledged so
// sender completions reflect remote placement (and carry remote access
// errors), like RC ACKs.
//
// The data path is zero-copy in the verbs sense: PostSend references
// the caller's buffer until the ACK completes the work request (verbs
// ownership semantics — the application must not touch the buffer
// while the WR is outstanding), and the reader resolves WRITE targets
// from the frame header and reads payloads straight into the
// registered region. Only receive paths that cannot know their
// destination up front (SENDs waiting for a posted receive) stage
// through pooled size-class buffers, which are recycled as soon as the
// payload is consumed. The writer drains its queue in batches and
// emits header+payload pairs as one vectored write (writev via
// net.Buffers), so deep pipelines cost one syscall per batch, not per
// frame.
//
// Modeled payloads (ModelBytes) are rejected: this fabric moves real
// bytes only.
package netfabric

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rftp/internal/bufpool"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// Frame opcodes on the wire.
const (
	frSend      = 1
	frWrite     = 2
	frWriteImm  = 3
	frReadReq   = 4
	frReadResp  = 5
	frAck       = 6
	frGoodbye   = 7
	frameMaxLen = 256 << 20
)

// Wire status codes in ACK/READ-response frames.
const (
	wsOK     = 0
	wsAccess = 1
	wsRNR    = 2
)

// Errors specific to this fabric.
var (
	ErrFrameTooLarge = errors.New("netfabric: frame exceeds limit")
	ErrBadFrame      = errors.New("netfabric: malformed frame")
)

// frame is the parsed wire unit. Frames are drawn from framePool on
// both the send and receive paths and returned once the payload has
// been written to the socket (sender) or consumed (receiver).
type frame struct {
	op      uint8
	channel uint32
	token   uint64
	addr    uint64
	rkey    uint32
	imm     uint32
	status  uint8
	// payload are the wire bytes. Outbound frames reference the
	// caller's (or a region's) buffer — never a copy. Inbound frames
	// either left their payload directly in the target region (placed)
	// or hold a pooled staging buffer (pooled).
	payload []byte
	// paylen is the wire payload length, retained after payload is
	// released or placed in-region.
	paylen int
	// pooled marks payload as owned by bufpool (staged receive).
	pooled bool
	// placed marks an inbound frame whose payload was read directly
	// into the destination memory region (payload is nil).
	placed bool
	// placeErr marks an inbound one-sided frame whose target failed
	// validation; the payload was discarded and the sender gets a
	// remote-access NAK.
	placeErr bool
	// postedNs is the wall-clock nanosecond stamp taken at PostSend,
	// feeding the wire-queue histogram when the writer drains the frame.
	// Zero (and never read) when the device has no telemetry attached.
	postedNs int64
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame { return framePool.Get().(*frame) }

// releasePayload drops the frame's payload reference, recycling pooled
// staging buffers.
func (f *frame) releasePayload() {
	if f.pooled {
		bufpool.Put(f.payload)
		f.pooled = false
	}
	f.payload = nil
}

// putFrame releases the payload and returns the frame to the pool.
func putFrame(f *frame) {
	f.releasePayload()
	*f = frame{}
	framePool.Put(f)
}

const frameHeaderLen = 1 + 1 + 4 + 8 + 8 + 4 + 4 + 4 // op, status, channel, token, addr, rkey, imm, paylen

// encodeHeader serializes the frame header (with payload length taken
// from f.payload) into h, which must be frameHeaderLen bytes.
func encodeHeader(h []byte, f *frame) {
	h[0] = f.op
	h[1] = f.status
	binary.BigEndian.PutUint32(h[2:6], f.channel)
	binary.BigEndian.PutUint64(h[6:14], f.token)
	binary.BigEndian.PutUint64(h[14:22], f.addr)
	binary.BigEndian.PutUint32(h[22:26], f.rkey)
	binary.BigEndian.PutUint32(h[26:30], f.imm)
	binary.BigEndian.PutUint32(h[30:34], uint32(len(f.payload)))
}

// parseHeader fills f from a wire header and returns the payload
// length that follows.
func parseHeader(h []byte, f *frame) int {
	f.op = h[0]
	f.status = h[1]
	f.channel = binary.BigEndian.Uint32(h[2:6])
	f.token = binary.BigEndian.Uint64(h[6:14])
	f.addr = binary.BigEndian.Uint64(h[14:22])
	f.rkey = binary.BigEndian.Uint32(h[22:26])
	f.imm = binary.BigEndian.Uint32(h[26:30])
	return int(binary.BigEndian.Uint32(h[30:34]))
}

// writeFrame serializes one frame (header + payload). The hot path
// batches frames through the writer's vectored path instead; this is
// the simple single-frame form used by tests.
func writeFrame(w io.Writer, f *frame) error {
	var h [frameHeaderLen]byte
	encodeHeader(h[:], f)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(f.payload)
	return err
}

// readFrame parses one frame, allocating its payload. The device
// reader uses the in-place path in readPayload instead; this form
// exists for tests and tools.
func readFrame(r *bufio.Reader) (*frame, error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	f := &frame{}
	n := parseHeader(h[:], f)
	if n > frameMaxLen {
		return nil, ErrFrameTooLarge
	}
	if n > 0 {
		f.payload = make([]byte, n)
		f.paylen = n
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Listener accepts fabric connections.
type Listener struct {
	l net.Listener
}

// Listen starts a fabric listener on addr ("host:port").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (ln *Listener) Addr() net.Addr { return ln.l.Addr() }

// Close stops accepting.
func (ln *Listener) Close() error { return ln.l.Close() }

// Accept waits for one peer and returns the device bound to it.
func (ln *Listener) Accept() (*Device, error) {
	c, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return newDevice("net-server", c), nil
}

// Dial connects to a listener and returns the device bound to it.
func Dial(addr string) (*Device, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newDevice("net-client", c), nil
}

// Device is one endpoint of a TCP-backed fabric connection.
type Device struct {
	name  string
	conn  net.Conn
	space *verbs.AddressSpace

	outMu   sync.Mutex
	outCond *sync.Cond
	outQ    []*frame // swapped wholesale with the writer's batch slice
	writing bool     // writer is mid-batch (for Close's drain wait)
	closed  atomic.Bool
	wg      sync.WaitGroup

	mu       sync.Mutex
	nextPD   uint32
	nextQP   verbs.QPID
	channels map[uint32]*QP
	parked   map[uint32][]*frame // frames arriving before BindQP
	tokens   map[uint64]pendingToken
	nextTok  uint64

	// RNRStalls counts SEND arrivals parked waiting for receives.
	RNRStalls atomic.Uint64
	RxBytes   atomic.Uint64
	TxBytes   atomic.Uint64

	// Telemetry, when set before traffic starts, records per-opcode WR
	// and byte counters for this device. Nil costs nothing.
	Telemetry *telemetry.FabricMetrics

	// onClose observes connection teardown (EOF or error). Accessed
	// atomically: SetOnClose may race with the reader goroutine hitting
	// a transport error.
	onClose atomic.Value // func(error)
}

// SetOnClose installs a callback observing connection teardown (EOF or
// error). Safe to call while traffic is flowing.
func (d *Device) SetOnClose(fn func(error)) {
	d.onClose.Store(fn)
}

type pendingToken struct {
	qp *QP
	wr verbs.SendWR
	// postedNs mirrors frame.postedNs for the ack path: the frame is
	// recycled once written, so the round-trip stamp rides the token.
	postedNs int64
}

func newDevice(name string, conn net.Conn) *Device {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	d := &Device{
		name:     name,
		conn:     conn,
		space:    verbs.NewAddressSpace(),
		channels: make(map[uint32]*QP),
		parked:   make(map[uint32][]*frame),
		tokens:   make(map[uint64]pendingToken),
	}
	d.outCond = sync.NewCond(&d.outMu)
	d.wg.Add(2)
	go d.writer()
	go d.reader()
	return d
}

// Name implements verbs.Device.
func (d *Device) Name() string { return d.name }

// AllocPD implements verbs.Device.
func (d *Device) AllocPD() *verbs.PD {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPD++
	return &verbs.PD{ID: d.nextPD, Device: d.name}
}

// CreateCQ implements verbs.Device.
func (d *Device) CreateCQ(loop verbs.Loop, depth int) verbs.CQ {
	return verbs.NewUpcallCQ(loop)
}

// RegisterMR implements verbs.Device.
func (d *Device) RegisterMR(pd *verbs.PD, buf []byte, access verbs.Access) (*verbs.MR, error) {
	return d.space.Register(pd, buf, access)
}

// RegisterModelMR implements verbs.Device: unsupported on a real-byte
// fabric.
func (d *Device) RegisterModelMR(pd *verbs.PD, length, shadow int, access verbs.Access) (*verbs.MR, error) {
	return nil, verbs.ErrModelBytes
}

// Sync establishes a happens-before edge between the device's I/O
// goroutines and the caller. In-process tests that inspect a registered
// region directly after a one-sided WRITE completes need it: the
// placement happens on this device's reader goroutine and the only
// ordering signal — the ACK — crosses the TCP socket, which the race
// detector cannot follow. (Between real hosts the question doesn't
// arise; the region is only ever read on the receiving side.) The
// reader releases these locks after every placement, so locking them
// here orders all prior placements before the caller's reads.
func (d *Device) Sync() {
	d.outMu.Lock()
	d.outMu.Unlock() //lint:ignore SA2001 empty critical section is the point
	d.mu.Lock()
	d.mu.Unlock() //lint:ignore SA2001 see above
}

// Close tears the connection down; all QPs err out. Frames already
// queued (for example the final session acknowledgment) are drained to
// the socket first, bounded by a short deadline.
func (d *Device) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	deadline := time.Now().Add(time.Second)
	d.outMu.Lock()
	for (len(d.outQ) > 0 || d.writing) && time.Now().Before(deadline) {
		d.outCond.Broadcast()
		d.outMu.Unlock()
		time.Sleep(time.Millisecond)
		d.outMu.Lock()
	}
	d.outCond.Broadcast()
	d.outMu.Unlock()
	return d.conn.Close()
}

// send enqueues a frame for the writer. The queue is unbounded so the
// reader goroutine can never deadlock generating ACKs; protocol-level
// flow control (send queue depths, credits) bounds it in practice.
func (d *Device) send(f *frame) bool {
	if d.closed.Load() {
		return false
	}
	d.outMu.Lock()
	d.outQ = append(d.outQ, f)
	d.outCond.Signal()
	d.outMu.Unlock()
	return true
}

// ctrlInlineMax bounds payloads copied into the writer's header arena:
// control messages (SEND frames) top out around wire header + max
// credits ≈ 1.1 KiB, far below this. Bulk WRITE/READ payloads always
// stay zero-copy regardless of size — the arena copy is framing, like
// the header encode, not a payload staging copy.
const ctrlInlineMax = 2048

// writer drains the outbound queue in batches: one lock acquisition
// swaps the whole queue out, then every frame's header and payload
// are emitted as a single vectored write. Headers encode sequentially
// into one arena, and small control (SEND) payloads are inlined right
// after their header, so a run of queued control messages collapses
// into a single contiguous iovec entry — one scatter element instead
// of 2×N — interrupted only by large zero-copy payload references.
// Batch storage (the swapped slice, the arena, the iovec) is reused
// across batches, so a steady-state sender allocates nothing here.
func (d *Device) writer() {
	defer d.wg.Done()
	var batch []*frame
	var hdrs []byte
	var iov [][]byte
	for {
		d.outMu.Lock()
		for len(d.outQ) == 0 && !d.closed.Load() {
			d.outCond.Wait()
		}
		if len(d.outQ) == 0 {
			d.outMu.Unlock()
			return
		}
		batch, d.outQ = d.outQ, batch[:0]
		d.writing = true
		d.outMu.Unlock()

		need := 0
		for _, f := range batch {
			need += frameHeaderLen
			if f.op == frSend && len(f.payload) <= ctrlInlineMax {
				need += len(f.payload)
			}
		}
		if cap(hdrs) < need {
			hdrs = make([]byte, need)
		}
		hdrs = hdrs[:need]
		iov = iov[:0]
		total := 0
		off, runStart := 0, 0
		for _, f := range batch {
			encodeHeader(hdrs[off:off+frameHeaderLen], f)
			off += frameHeaderLen
			if n := len(f.payload); n > 0 {
				if f.op == frSend && n <= ctrlInlineMax {
					off += copy(hdrs[off:], f.payload)
				} else {
					iov = append(iov, hdrs[runStart:off])
					iov = append(iov, f.payload)
					runStart = off
				}
			}
			total += frameHeaderLen + len(f.payload)
		}
		if off > runStart {
			iov = append(iov, hdrs[runStart:off])
		}
		bufs := net.Buffers(iov)
		_, err := bufs.WriteTo(d.conn)
		if d.Telemetry != nil {
			// One clock read amortized over the batch: every frame's
			// send-queue residency ends at this socket write.
			nowNs := time.Now().UnixNano()
			for _, f := range batch {
				if f.postedNs != 0 {
					d.Telemetry.WireQueue(time.Duration(nowNs - f.postedNs))
				}
			}
		}
		for i, f := range batch {
			putFrame(f)
			batch[i] = nil
		}
		d.outMu.Lock()
		d.writing = false
		d.outCond.Broadcast()
		d.outMu.Unlock()
		if err != nil {
			d.teardown(err)
			return
		}
		d.TxBytes.Add(uint64(total))
		d.Telemetry.Tx(total)
		d.Telemetry.TxBatch(len(batch))
	}
}

func (d *Device) reader() {
	defer d.wg.Done()
	r := bufio.NewReaderSize(d.conn, 256<<10)
	var h [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, h[:]); err != nil {
			d.teardown(err)
			return
		}
		f := getFrame()
		n := parseHeader(h[:], f)
		if n > frameMaxLen {
			putFrame(f)
			d.teardown(ErrFrameTooLarge)
			return
		}
		f.paylen = n
		if n > 0 {
			if err := d.readPayload(r, f, n); err != nil {
				putFrame(f)
				d.teardown(err)
				return
			}
		}
		d.RxBytes.Add(uint64(frameHeaderLen + n))
		d.Telemetry.Rx(frameHeaderLen + n)
		d.dispatch(f)
	}
}

// readPayload lands a frame's payload. One-sided WRITEs whose target
// region validates are read directly into the registered memory (the
// RDMA WRITE path: header first, then DMA into the MR — no staging
// copy); READ responses land directly in the posted local region.
// Everything else (SENDs, frames for unbound channels, validation
// failures) stages through a pooled size-class buffer or discards.
func (d *Device) readPayload(r *bufio.Reader, f *frame, n int) error {
	switch f.op {
	case frWrite, frWriteImm:
		if d.channelReady(f.channel) {
			_, dst, err := d.space.WritableRemote(verbs.RemoteAddr{Addr: f.addr, RKey: f.rkey}, n)
			if err != nil {
				f.placeErr = true
				return discard(r, n)
			}
			if _, err := io.ReadFull(r, dst); err != nil {
				return err
			}
			f.placed = true
			return discard(r, n-len(dst))
		}
	case frReadResp:
		if f.status != wsOK {
			break
		}
		d.mu.Lock()
		pt, ok := d.tokens[f.token]
		d.mu.Unlock()
		if ok && pt.wr.Op == verbs.OpRead && pt.wr.Local != nil && n <= pt.wr.ReadLen {
			if dst := pt.wr.Local.WritableLocal(pt.wr.LocalOffset, n); len(dst) == n {
				if _, err := io.ReadFull(r, dst); err != nil {
					return err
				}
				f.placed = true
				return nil
			}
		}
	}
	f.payload = bufpool.Get(n)
	f.pooled = true
	_, err := io.ReadFull(r, f.payload)
	return err
}

// channelReady reports whether the channel is bound to a ready QP (the
// precondition for in-place WRITE placement; otherwise the frame parks
// with a staged payload, preserving pre-bind semantics).
func (d *Device) channelReady(ch uint32) bool {
	d.mu.Lock()
	qp, ok := d.channels[ch]
	d.mu.Unlock()
	return ok && qp.state.Load() == stateReady
}

// discard consumes and drops n payload bytes.
func discard(r *bufio.Reader, n int) error {
	if n <= 0 {
		return nil
	}
	_, err := r.Discard(n)
	return err
}

// teardown fails every bound QP after a connection error.
func (d *Device) teardown(err error) {
	if d.closed.Load() {
		return
	}
	d.mu.Lock()
	qps := make([]*QP, 0, len(d.channels))
	for _, qp := range d.channels {
		qps = append(qps, qp)
	}
	parked := d.parked
	d.parked = make(map[uint32][]*frame)
	d.mu.Unlock()
	for _, fs := range parked {
		for _, f := range fs {
			putFrame(f)
		}
	}
	for _, qp := range qps {
		qp.connectionLost()
	}
	if cb, _ := d.onClose.Load().(func(error)); cb != nil {
		cb(err)
	}
}

// dispatch routes an inbound frame. The frame is owned by the callee:
// completion paths release it back to the pool once consumed.
func (d *Device) dispatch(f *frame) {
	switch f.op {
	case frAck, frReadResp:
		d.mu.Lock()
		pt, ok := d.tokens[f.token]
		delete(d.tokens, f.token)
		d.mu.Unlock()
		if !ok {
			putFrame(f)
			return
		}
		pt.qp.remoteAck(pt.wr, f, pt.postedNs)
		putFrame(f)
	case frGoodbye:
		putFrame(f)
		d.teardown(io.EOF)
	default:
		d.mu.Lock()
		qp, ok := d.channels[f.channel]
		if !ok {
			if len(d.parked[f.channel]) < 4096 {
				d.parked[f.channel] = append(d.parked[f.channel], f)
			} else {
				putFrame(f)
			}
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		qp.inbound(f)
	}
}

// registerToken stores a completion continuation keyed by token.
// postedNs carries the wire-entry stamp to the ack path (0 when
// telemetry is detached).
func (d *Device) registerToken(qp *QP, wr *verbs.SendWR, postedNs int64) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextTok++
	d.tokens[d.nextTok] = pendingToken{qp: qp, wr: *wr, postedNs: postedNs}
	return d.nextTok
}

var _ verbs.Device = (*Device)(nil)

func frameStatusToVerbs(s uint8) verbs.Status {
	switch s {
	case wsOK:
		return verbs.StatusSuccess
	case wsAccess:
		return verbs.StatusRemoteAccessError
	case wsRNR:
		return verbs.StatusRNRRetryExceeded
	default:
		return verbs.StatusLocalError
	}
}
