// Package netfabric implements the verbs interface over TCP sockets, so
// the protocol core runs unchanged between two real processes (in the
// spirit of software RDMA emulations like Soft-RoCE).
//
// One TCP connection joins two Devices. All queue pairs are multiplexed
// over it as framed messages keyed by a channel id that both sides bind
// with BindQP (channel 0 is conventionally the control QP, 1..n the data
// QPs). One-sided WRITE frames carry (addr, rkey) and are validated
// against the receiving device's registered regions exactly like the
// other fabrics; SENDs consume posted receives; READs round-trip a
// request/response pair. Every data-bearing frame is acknowledged so
// sender completions reflect remote placement (and carry remote access
// errors), like RC ACKs.
//
// Modeled payloads (ModelBytes) are rejected: this fabric moves real
// bytes only.
package netfabric

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// Frame opcodes on the wire.
const (
	frSend      = 1
	frWrite     = 2
	frWriteImm  = 3
	frReadReq   = 4
	frReadResp  = 5
	frAck       = 6
	frGoodbye   = 7
	frameMaxLen = 256 << 20
)

// Wire status codes in ACK/READ-response frames.
const (
	wsOK     = 0
	wsAccess = 1
	wsRNR    = 2
)

// Errors specific to this fabric.
var (
	ErrFrameTooLarge = errors.New("netfabric: frame exceeds limit")
	ErrBadFrame      = errors.New("netfabric: malformed frame")
)

// frame is the parsed wire unit.
type frame struct {
	op      uint8
	channel uint32
	token   uint64
	addr    uint64
	rkey    uint32
	imm     uint32
	status  uint8
	payload []byte
}

const frameHeaderLen = 1 + 1 + 4 + 8 + 8 + 4 + 4 + 4 // op, status, channel, token, addr, rkey, imm, paylen

func writeFrame(w *bufio.Writer, f *frame) error {
	var h [frameHeaderLen]byte
	h[0] = f.op
	h[1] = f.status
	binary.BigEndian.PutUint32(h[2:6], f.channel)
	binary.BigEndian.PutUint64(h[6:14], f.token)
	binary.BigEndian.PutUint64(h[14:22], f.addr)
	binary.BigEndian.PutUint32(h[22:26], f.rkey)
	binary.BigEndian.PutUint32(h[26:30], f.imm)
	binary.BigEndian.PutUint32(h[30:34], uint32(len(f.payload)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(f.payload)
	return err
}

func readFrame(r *bufio.Reader) (*frame, error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(h[30:34])
	if n > frameMaxLen {
		return nil, ErrFrameTooLarge
	}
	f := &frame{
		op:      h[0],
		status:  h[1],
		channel: binary.BigEndian.Uint32(h[2:6]),
		token:   binary.BigEndian.Uint64(h[6:14]),
		addr:    binary.BigEndian.Uint64(h[14:22]),
		rkey:    binary.BigEndian.Uint32(h[22:26]),
		imm:     binary.BigEndian.Uint32(h[26:30]),
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Listener accepts fabric connections.
type Listener struct {
	l net.Listener
}

// Listen starts a fabric listener on addr ("host:port").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (ln *Listener) Addr() net.Addr { return ln.l.Addr() }

// Close stops accepting.
func (ln *Listener) Close() error { return ln.l.Close() }

// Accept waits for one peer and returns the device bound to it.
func (ln *Listener) Accept() (*Device, error) {
	c, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return newDevice("net-server", c), nil
}

// Dial connects to a listener and returns the device bound to it.
func Dial(addr string) (*Device, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newDevice("net-client", c), nil
}

// Device is one endpoint of a TCP-backed fabric connection.
type Device struct {
	name  string
	conn  net.Conn
	space *verbs.AddressSpace

	outMu   sync.Mutex
	outCond *sync.Cond
	outQ    []*frame
	closed  atomic.Bool
	wg      sync.WaitGroup

	mu       sync.Mutex
	nextPD   uint32
	nextQP   verbs.QPID
	channels map[uint32]*QP
	parked   map[uint32][]*frame // frames arriving before BindQP
	tokens   map[uint64]pendingToken
	nextTok  uint64

	// RNRStalls counts SEND arrivals parked waiting for receives.
	RNRStalls atomic.Uint64
	RxBytes   atomic.Uint64
	TxBytes   atomic.Uint64

	// Telemetry, when set before traffic starts, records per-opcode WR
	// and byte counters for this device. Nil costs nothing.
	Telemetry *telemetry.FabricMetrics

	// OnClose observes connection teardown (EOF or error).
	OnClose func(error)
}

type pendingToken struct {
	qp *QP
	wr verbs.SendWR
}

func newDevice(name string, conn net.Conn) *Device {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	d := &Device{
		name:     name,
		conn:     conn,
		space:    verbs.NewAddressSpace(),
		channels: make(map[uint32]*QP),
		parked:   make(map[uint32][]*frame),
		tokens:   make(map[uint64]pendingToken),
	}
	d.outCond = sync.NewCond(&d.outMu)
	d.wg.Add(2)
	go d.writer()
	go d.reader()
	return d
}

// Name implements verbs.Device.
func (d *Device) Name() string { return d.name }

// AllocPD implements verbs.Device.
func (d *Device) AllocPD() *verbs.PD {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPD++
	return &verbs.PD{ID: d.nextPD, Device: d.name}
}

// CreateCQ implements verbs.Device.
func (d *Device) CreateCQ(loop verbs.Loop, depth int) verbs.CQ {
	return verbs.NewUpcallCQ(loop)
}

// RegisterMR implements verbs.Device.
func (d *Device) RegisterMR(pd *verbs.PD, buf []byte, access verbs.Access) (*verbs.MR, error) {
	return d.space.Register(pd, buf, access)
}

// RegisterModelMR implements verbs.Device: unsupported on a real-byte
// fabric.
func (d *Device) RegisterModelMR(pd *verbs.PD, length, shadow int, access verbs.Access) (*verbs.MR, error) {
	return nil, verbs.ErrModelBytes
}

// Close tears the connection down; all QPs err out. Frames already
// queued (for example the final session acknowledgment) are drained to
// the socket first, bounded by a short deadline.
func (d *Device) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	deadline := time.Now().Add(time.Second)
	d.outMu.Lock()
	for len(d.outQ) > 0 && time.Now().Before(deadline) {
		d.outCond.Broadcast()
		d.outMu.Unlock()
		time.Sleep(time.Millisecond)
		d.outMu.Lock()
	}
	d.outCond.Broadcast()
	d.outMu.Unlock()
	return d.conn.Close()
}

// send enqueues a frame for the writer. The queue is unbounded so the
// reader goroutine can never deadlock generating ACKs; protocol-level
// flow control (send queue depths, credits) bounds it in practice.
func (d *Device) send(f *frame) bool {
	if d.closed.Load() {
		return false
	}
	d.outMu.Lock()
	d.outQ = append(d.outQ, f)
	d.outCond.Signal()
	d.outMu.Unlock()
	return true
}

func (d *Device) writer() {
	defer d.wg.Done()
	w := bufio.NewWriterSize(d.conn, 256<<10)
	for {
		d.outMu.Lock()
		for len(d.outQ) == 0 && !d.closed.Load() {
			d.outCond.Wait()
		}
		if len(d.outQ) == 0 && d.closed.Load() {
			d.outMu.Unlock()
			w.Flush()
			return
		}
		f := d.outQ[0]
		d.outQ = d.outQ[1:]
		more := len(d.outQ) > 0
		d.outMu.Unlock()
		if err := writeFrame(w, f); err != nil {
			d.teardown(err)
			return
		}
		d.TxBytes.Add(uint64(frameHeaderLen + len(f.payload)))
		d.Telemetry.Tx(frameHeaderLen + len(f.payload))
		if !more {
			if err := w.Flush(); err != nil {
				d.teardown(err)
				return
			}
		}
	}
}

func (d *Device) reader() {
	defer d.wg.Done()
	r := bufio.NewReaderSize(d.conn, 256<<10)
	for {
		f, err := readFrame(r)
		if err != nil {
			d.teardown(err)
			return
		}
		d.RxBytes.Add(uint64(frameHeaderLen + len(f.payload)))
		d.Telemetry.Rx(frameHeaderLen + len(f.payload))
		d.dispatch(f)
	}
}

// teardown fails every bound QP after a connection error.
func (d *Device) teardown(err error) {
	if d.closed.Load() {
		return
	}
	d.mu.Lock()
	qps := make([]*QP, 0, len(d.channels))
	for _, qp := range d.channels {
		qps = append(qps, qp)
	}
	d.mu.Unlock()
	for _, qp := range qps {
		qp.connectionLost()
	}
	if cb := d.OnClose; cb != nil {
		cb(err)
	}
}

// dispatch routes an inbound frame.
func (d *Device) dispatch(f *frame) {
	switch f.op {
	case frAck, frReadResp:
		d.mu.Lock()
		pt, ok := d.tokens[f.token]
		delete(d.tokens, f.token)
		d.mu.Unlock()
		if !ok {
			return
		}
		pt.qp.remoteAck(pt.wr, f)
	case frGoodbye:
		d.teardown(io.EOF)
	default:
		d.mu.Lock()
		qp, ok := d.channels[f.channel]
		if !ok {
			if len(d.parked[f.channel]) < 4096 {
				d.parked[f.channel] = append(d.parked[f.channel], f)
			}
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		qp.inbound(f)
	}
}

// registerToken stores a completion continuation keyed by token.
func (d *Device) registerToken(qp *QP, wr *verbs.SendWR) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextTok++
	d.tokens[d.nextTok] = pendingToken{qp: qp, wr: *wr}
	return d.nextTok
}

var _ verbs.Device = (*Device)(nil)

func frameStatusToVerbs(s uint8) verbs.Status {
	switch s {
	case wsOK:
		return verbs.StatusSuccess
	case wsAccess:
		return verbs.StatusRemoteAccessError
	case wsRNR:
		return verbs.StatusRNRRetryExceeded
	default:
		return verbs.StatusLocalError
	}
}

// fmt is referenced for error wrapping below; keep the import honest.
var _ = fmt.Sprintf
