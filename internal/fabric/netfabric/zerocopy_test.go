package netfabric

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
)

// newPair is pair for benchmarks too (testing.TB instead of *testing.T).
func newPair(tb testing.TB) (*Device, *Device) {
	tb.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	type res struct {
		d   *Device
		err error
	}
	ch := make(chan res, 1)
	go func() {
		d, err := ln.Accept()
		ch <- res{d, err}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		tb.Fatal(r.err)
	}
	tb.Cleanup(func() { client.Close(); r.d.Close() })
	return client, r.d
}

// newBoundQPs is boundQPs for benchmarks too.
func newBoundQPs(tb testing.TB, a, b *Device, la, lb verbs.Loop, ch uint32) (verbs.QP, verbs.QP, *verbs.UpcallCQ, *verbs.UpcallCQ) {
	tb.Helper()
	cqA := a.CreateCQ(la, 128).(*verbs.UpcallCQ)
	cqB := b.CreateCQ(lb, 128).(*verbs.UpcallCQ)
	qa, err := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cqA, RecvCQ: cqA, MaxSend: 64, MaxRecv: 64})
	if err != nil {
		tb.Fatal(err)
	}
	qb, err := b.CreateQP(verbs.QPConfig{PD: b.AllocPD(), SendCQ: cqB, RecvCQ: cqB, MaxSend: 64, MaxRecv: 64})
	if err != nil {
		tb.Fatal(err)
	}
	if err := a.BindQP(qa, ch); err != nil {
		tb.Fatal(err)
	}
	if err := b.BindQP(qb, ch); err != nil {
		tb.Fatal(err)
	}
	return qa, qb, cqA, cqB
}

// writeBlocks posts count WRITEs of block and waits for each completion.
func writeBlocks(tb testing.TB, qa verbs.QP, done chan verbs.WC, block []byte, remote verbs.RemoteAddr, count int) {
	tb.Helper()
	for i := 0; i < count; i++ {
		if err := qa.PostSend(&verbs.SendWR{WRID: uint64(i), Op: verbs.OpWrite, Data: block, Remote: remote}); err != nil {
			tb.Fatal(err)
		}
		select {
		case wc := <-done:
			if wc.Status != verbs.StatusSuccess {
				tb.Fatalf("write %d: %+v", i, wc)
			}
		case <-time.After(10 * time.Second):
			tb.Fatal("write completion timeout")
		}
	}
}

// TestWritePathZeroCopy asserts the headline property of the data path:
// a one-sided WRITE over a bound channel moves its payload with zero
// CPU copies (the sender's frame references the caller's buffer; the
// receiver reads the socket directly into the registered region) and
// without payload-sized allocations per block.
func TestWritePathZeroCopy(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := boundQPs(t, a, b, la, lb, 0)
	done := make(chan verbs.WC, 1)
	cqA.SetHandler(func(wc verbs.WC) { done <- wc })

	const blockSize = 256 << 10
	sink := make([]byte, blockSize)
	mr, err := b.RegisterMR(b.AllocPD(), sink, verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]byte, blockSize)
	rand.New(rand.NewSource(7)).Read(block)

	// Warm the frame and buffer pools before measuring.
	writeBlocks(t, qa, done, block, mr.Remote(0), 8)

	const blocks = 32
	copiedBefore := verbs.CopiedBytes()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	writeBlocks(t, qa, done, block, mr.Remote(0), blocks)
	runtime.ReadMemStats(&msAfter)
	copied := verbs.CopiedBytes() - copiedBefore

	if copied != 0 {
		t.Errorf("WRITE path copied %d payload bytes over %d blocks, want 0 (zero-copy)", copied, blocks)
	}
	allocsPerBlock := float64(msAfter.Mallocs-msBefore.Mallocs) / blocks
	bytesPerBlock := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / blocks
	// The bound is deliberately loose (completion dispatch allocates a
	// closure or two); what it rules out is per-block payload copies or
	// frame/buffer churn, which would cost thousands of allocs and
	// blockSize bytes each.
	if allocsPerBlock > 100 {
		t.Errorf("allocs/block = %.1f, want <= 100", allocsPerBlock)
	}
	if bytesPerBlock > blockSize/8 {
		t.Errorf("heap bytes/block = %.0f, want well under the %d block size", bytesPerBlock, blockSize)
	}
	b.Sync() // order the reader's in-place placement before our read
	if !bytes.Equal(sink, block) {
		t.Fatal("payload corrupted")
	}
}

// TestOutOfOrderBlockReassembly writes blocks of a region in shuffled
// offset order across two channels, then reads the whole region back
// and checks it byte-for-byte — the out-of-order reassembly a striped
// multi-channel transfer depends on.
func TestOutOfOrderBlockReassembly(t *testing.T) {
	a, b := pair(t)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	qa1, _, cq1, _ := boundQPs(t, a, b, la, lb, 1)
	qa2, _, cq2, _ := boundQPs(t, a, b, la, lb, 2)
	wcs1 := make(chan verbs.WC, 64)
	wcs2 := make(chan verbs.WC, 64)
	cq1.SetHandler(func(wc verbs.WC) { wcs1 <- wc })
	cq2.SetHandler(func(wc verbs.WC) { wcs2 <- wc })

	const blockSize = 32 << 10
	const nBlocks = 16
	region := make([]byte, blockSize*nBlocks)
	mr, err := b.RegisterMR(b.AllocPD(), region, verbs.AccessRemoteWrite|verbs.AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, blockSize*nBlocks)
	rand.New(rand.NewSource(11)).Read(want)

	order := rand.New(rand.NewSource(12)).Perm(nBlocks)
	for i, blk := range order {
		qp, wcs := qa1, wcs1
		if i%2 == 1 {
			qp, wcs = qa2, wcs2
		}
		off := blk * blockSize
		if err := qp.PostSend(&verbs.SendWR{WRID: uint64(blk), Op: verbs.OpWrite,
			Data: want[off : off+blockSize], Remote: mr.Remote(off)}); err != nil {
			t.Fatal(err)
		}
		select {
		case wc := <-wcs:
			if wc.Status != verbs.StatusSuccess {
				t.Fatalf("block %d: %+v", blk, wc)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("write timeout")
		}
	}
	b.Sync() // order the reader's in-place placements before our read
	if !bytes.Equal(region, want) {
		t.Fatal("shuffled writes did not reassemble the region")
	}

	// Read the full region back through channel 1.
	local := make([]byte, len(region))
	lmr, err := a.RegisterMR(a.AllocPD(), local, verbs.AccessLocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := qa1.PostSend(&verbs.SendWR{WRID: 99, Op: verbs.OpRead,
		Remote: mr.Remote(0), ReadLen: len(region), Local: lmr}); err != nil {
		t.Fatal(err)
	}
	select {
	case wc := <-wcs1:
		if wc.Status != verbs.StatusSuccess || wc.ByteLen != len(region) {
			t.Fatalf("read-back WC: %+v", wc)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read timeout")
	}
	if !bytes.Equal(local, want) {
		t.Fatal("read-back mismatch")
	}
}

// TestConcurrentMultiChannelWriteRead hammers four channels from four
// goroutines, each interleaving WRITEs into its own stripe with READs
// back, to catch data races in the shared device paths (run under
// -race by make check).
func TestConcurrentMultiChannelWriteRead(t *testing.T) {
	a, b := pair(t)
	const channels = 4
	const rounds = 24
	const stripe = 16 << 10

	region := make([]byte, channels*stripe)
	mr, err := b.RegisterMR(b.AllocPD(), region, verbs.AccessRemoteWrite|verbs.AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, channels)
	for c := 0; c < channels; c++ {
		la := chanfabric.NewLoop("a")
		lb := chanfabric.NewLoop("b")
		t.Cleanup(func() { la.Stop(); lb.Stop() })
		qa, _, cqA, _ := boundQPs(t, a, b, la, lb, uint32(c+1))
		wcs := make(chan verbs.WC, 8)
		cqA.SetHandler(func(wc verbs.WC) { wcs <- wc })
		wg.Add(1)
		go func(c int, qa verbs.QP, wcs chan verbs.WC) {
			defer wg.Done()
			off := c * stripe
			block := make([]byte, stripe)
			local := make([]byte, stripe)
			lmr, err := a.RegisterMR(a.AllocPD(), local, verbs.AccessLocalWrite)
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + c)))
			wait := func(op string) bool {
				select {
				case wc := <-wcs:
					if wc.Status != verbs.StatusSuccess {
						errs <- &errWC{op: op, wc: wc}
						return false
					}
					return true
				case <-time.After(20 * time.Second):
					errs <- &errWC{op: op + " timeout"}
					return false
				}
			}
			for r := 0; r < rounds; r++ {
				rng.Read(block)
				if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: block, Remote: mr.Remote(off)}); err != nil {
					errs <- err
					return
				}
				if !wait("write") {
					return
				}
				if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpRead, Remote: mr.Remote(off), ReadLen: stripe, Local: lmr}); err != nil {
					errs <- err
					return
				}
				if !wait("read") {
					return
				}
				if !bytes.Equal(local, block) {
					errs <- &errWC{op: "round-trip mismatch"}
					return
				}
			}
		}(c, qa, wcs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errWC struct {
	op string
	wc verbs.WC
}

func (e *errWC) Error() string { return "netfabric test: " + e.op }

// BenchmarkWriteBlockThroughput measures the one-sided WRITE fast path:
// bytes/s via b.SetBytes, allocations via -benchmem, and CPU-copied
// payload bytes per op as a custom metric (0 = zero-copy end to end).
func BenchmarkWriteBlockThroughput(b *testing.B) {
	devA, devB := newPair(b)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	b.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, _, cqA, _ := newBoundQPs(b, devA, devB, la, lb, 0)
	done := make(chan verbs.WC, 1)
	cqA.SetHandler(func(wc verbs.WC) { done <- wc })

	const blockSize = 1 << 20
	sink := make([]byte, blockSize)
	mr, err := devB.RegisterMR(devB.AllocPD(), sink, verbs.AccessRemoteWrite)
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, blockSize)
	rand.New(rand.NewSource(21)).Read(block)
	writeBlocks(b, qa, done, block, mr.Remote(0), 4) // warm pools

	b.SetBytes(blockSize)
	b.ReportAllocs()
	copiedBefore := verbs.CopiedBytes()
	b.ResetTimer()
	writeBlocks(b, qa, done, block, mr.Remote(0), b.N)
	b.StopTimer()
	b.ReportMetric(float64(verbs.CopiedBytes()-copiedBefore)/float64(b.N), "copied-B/op")
}

// BenchmarkSendRecvThroughput measures the two-sided path, which stages
// the payload through a pooled buffer into the posted receive region
// (one copy at placement, zero allocations steady-state).
func BenchmarkSendRecvThroughput(b *testing.B) {
	devA, devB := newPair(b)
	la, lb := chanfabric.NewLoop("a"), chanfabric.NewLoop("b")
	b.Cleanup(func() { la.Stop(); lb.Stop() })
	qa, qb, cqA, cqB := newBoundQPs(b, devA, devB, la, lb, 0)
	acks := make(chan verbs.WC, 1)
	recvs := make(chan verbs.WC, 1)
	cqA.SetHandler(func(wc verbs.WC) { acks <- wc })
	cqB.SetHandler(func(wc verbs.WC) { recvs <- wc })

	const blockSize = 64 << 10
	rbuf := make([]byte, blockSize)
	mr, err := devB.RegisterMR(devB.AllocPD(), rbuf, verbs.AccessLocalWrite)
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, blockSize)
	rand.New(rand.NewSource(22)).Read(block)

	iter := func() {
		if err := qb.PostRecv(&verbs.RecvWR{MR: mr, Len: blockSize}); err != nil {
			b.Fatal(err)
		}
		if err := qa.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: block}); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < 2; {
			select {
			case <-acks:
				got++
			case <-recvs:
				got++
			case <-time.After(10 * time.Second):
				b.Fatal("send/recv timeout")
			}
		}
	}
	for i := 0; i < 4; i++ {
		iter() // warm pools
	}
	b.SetBytes(blockSize)
	b.ReportAllocs()
	copiedBefore := verbs.CopiedBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	b.ReportMetric(float64(verbs.CopiedBytes()-copiedBefore)/float64(b.N), "copied-B/op")
}
