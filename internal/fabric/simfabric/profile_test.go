package simfabric

import (
	"testing"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/verbs"
)

func TestWireBytesFraming(t *testing.T) {
	r := newRig(t, LinkConfig{RateBps: 10e9, PropDelay: time.Microsecond, MTU: 9000, HeaderBytes: 58})
	d := r.srcDev
	if got := d.wireBytes(9000); got != 9058 {
		t.Fatalf("one MTU = %d, want 9058", got)
	}
	if got := d.wireBytes(9001); got != 9001+2*58 {
		t.Fatalf("MTU+1 = %d, want two headers", got)
	}
	if got := d.wireBytes(0); got != 1+58 {
		t.Fatalf("empty payload = %d", got)
	}
}

func TestHostCostFactorScalesCPU(t *testing.T) {
	run := func(factor float64) time.Duration {
		sched := sim.New(1)
		fab := New(sched)
		host := hostmodel.NewHost(sched, "h", 8, hostmodel.DefaultParams())
		peerHost := hostmodel.NewHost(sched, "p", 8, hostmodel.DefaultParams())
		prof := DefaultNICProfile()
		prof.HostCostFactor = factor
		a := fab.NewDevice("a", host, prof)
		b := fab.NewDevice("b", peerHost, prof)
		fab.Connect(a, b, lanLink())
		loop := host.NewThread("l")
		peerLoop := peerHost.NewThread("pl")
		cqa := a.CreateCQ(loop, 64).(*verbs.UpcallCQ)
		cqb := b.CreateCQ(peerLoop, 64).(*verbs.UpcallCQ)
		cqa.SetHandler(func(verbs.WC) {})
		cqb.SetHandler(func(verbs.WC) {})
		qa, _ := a.CreateQP(verbs.QPConfig{PD: a.AllocPD(), SendCQ: cqa, RecvCQ: cqa})
		qb, _ := b.CreateQP(verbs.QPConfig{PD: b.AllocPD(), SendCQ: cqb, RecvCQ: cqb})
		fab.ConnectQPs(qa, qb)
		mr, _ := b.RegisterModelMR(b.AllocPD(), 1<<20, 0, verbs.AccessRemoteWrite)
		for i := 0; i < 32; i++ {
			qa.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("h"), ModelBytes: 4095, Remote: mr.Remote(0)})
		}
		sched.RunAll()
		return loop.Busy()
	}
	ib := run(1.0)
	roce := run(1.3)
	if roce <= ib {
		t.Fatalf("RoCE factor 1.3 CPU (%v) not above IB (%v)", roce, ib)
	}
	ratio := float64(roce) / float64(ib)
	if ratio < 1.2 || ratio > 1.45 {
		t.Fatalf("CPU ratio = %.2f, want ~1.3", ratio)
	}
}

func TestDeviceStatsCounters(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 0, verbs.AccessRemoteWrite)
	const n = 10
	for i := 0; i < n; i++ {
		r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"), ModelBytes: 8191, Remote: mr.Remote(0)})
	}
	r.sched.RunAll()
	if r.srcDev.TxWRs != n {
		t.Fatalf("TxWRs = %d", r.srcDev.TxWRs)
	}
	if r.dstDev.RxWRs != n {
		t.Fatalf("RxWRs = %d", r.dstDev.RxWRs)
	}
	if r.dstDev.RxBytes != n*8192 {
		t.Fatalf("RxBytes = %d", r.dstDev.RxBytes)
	}
	// Tx includes framing overhead.
	if r.srcDev.TxBytes <= r.dstDev.RxBytes {
		t.Fatalf("TxBytes %d not above payload %d (framing)", r.srcDev.TxBytes, r.dstDev.RxBytes)
	}
}

func TestDefaultProfileApplied(t *testing.T) {
	sched := sim.New(1)
	fab := New(sched)
	h := hostmodel.NewHost(sched, "h", 4, hostmodel.DefaultParams())
	d := fab.NewDevice("d", h, NICProfile{})
	if d.profile.HostCostFactor != 1 || d.profile.RNRTimer == 0 || d.profile.MaxOutstandingReads == 0 {
		t.Fatalf("zero profile not defaulted: %+v", d.profile)
	}
	if d.String() == "" || d.Host() != h {
		t.Fatal("accessors broken")
	}
}

func TestConnectRequiresRate(t *testing.T) {
	sched := sim.New(1)
	fab := New(sched)
	h := hostmodel.NewHost(sched, "h", 4, hostmodel.DefaultParams())
	a := fab.NewDevice("a", h, DefaultNICProfile())
	b := fab.NewDevice("b", h, DefaultNICProfile())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate link did not panic")
		}
	}()
	fab.Connect(a, b, LinkConfig{})
}

func TestModelMRHugeRegionIsCheap(t *testing.T) {
	// A 1 TiB modeled region must not allocate 1 TiB.
	r := newRig(t, lanLink())
	mr, err := r.dstDev.RegisterModelMR(r.dstPD, 1<<40, 64, verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Buf) != 64 || mr.Len != 1<<40 {
		t.Fatalf("geometry: buf=%d len=%d", len(mr.Buf), mr.Len)
	}
	// Writing deep into it is accounted, not materialized.
	if err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"),
		ModelBytes: 1 << 30, Remote: mr.Remote(1 << 39)}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if r.dstDev.RxBytes != 1<<30+1 {
		t.Fatalf("RxBytes = %d", r.dstDev.RxBytes)
	}
}

func TestBackboneSharedCapacity(t *testing.T) {
	// Two pairs with 40G NICs share a 40G backbone: each gets ~half.
	sched := sim.New(1)
	fab := New(sched)
	bb := fab.NewBackbone(40e9)
	type pair struct {
		qp  verbs.QP
		dev *Device
	}
	var pairs []pair
	link := LinkConfig{RateBps: 40e9, PropDelay: 10 * time.Microsecond, MTU: 9000, HeaderBytes: 58}
	for i := 0; i < 2; i++ {
		ha := hostmodel.NewHost(sched, "a", 8, hostmodel.DefaultParams())
		hb := hostmodel.NewHost(sched, "b", 8, hostmodel.DefaultParams())
		da := fab.NewDevice("a", ha, DefaultNICProfile())
		db := fab.NewDevice("b", hb, DefaultNICProfile())
		fab.ConnectVia(da, db, link, bb)
		la, lb := ha.NewThread("la"), hb.NewThread("lb")
		cqa := da.CreateCQ(la, 64).(*verbs.UpcallCQ)
		cqb := db.CreateCQ(lb, 64).(*verbs.UpcallCQ)
		cqa.SetHandler(func(verbs.WC) {})
		cqb.SetHandler(func(verbs.WC) {})
		qa, _ := da.CreateQP(verbs.QPConfig{PD: da.AllocPD(), SendCQ: cqa, RecvCQ: cqa, MaxSend: 256})
		qb, _ := db.CreateQP(verbs.QPConfig{PD: db.AllocPD(), SendCQ: cqb, RecvCQ: cqb})
		fab.ConnectQPs(qa, qb)
		pairs = append(pairs, pair{qp: qa, dev: db})
	}
	const perPair = 128 << 20
	for _, p := range pairs {
		mr, _ := p.dev.RegisterModelMR(p.dev.AllocPD(), 64<<20, 0, verbs.AccessRemoteWrite)
		for i := 0; i < perPair/(1<<20); i++ {
			p.qp.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("h"),
				ModelBytes: 1<<20 - 1, Remote: mr.Remote(i % 64 << 20), NoCompletion: true})
		}
	}
	sched.RunAll()
	elapsed := sched.Now().Seconds()
	agg := float64(2*perPair) * 8 / elapsed / 1e9
	// Two 40G senders behind a 40G trunk: aggregate ~40, not ~80.
	if agg > 40 || agg < 30 {
		t.Fatalf("aggregate through shared trunk = %.1f Gbps, want ~35-40", agg)
	}
	fwd, _ := bb.Bytes()
	if fwd < 2*perPair {
		t.Fatalf("backbone carried only %d bytes", fwd)
	}
}

func TestBackboneZeroRatePanics(t *testing.T) {
	sched := sim.New(1)
	fab := New(sched)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate backbone did not panic")
		}
	}()
	fab.NewBackbone(0)
}
