package simfabric

import (
	"bytes"
	"testing"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/verbs"
)

// rig is a two-host test fixture with one connected QP pair.
type rig struct {
	sched   *sim.Scheduler
	fabric  *Fabric
	srcHost *hostmodel.Host
	dstHost *hostmodel.Host
	srcDev  *Device
	dstDev  *Device
	srcLoop *hostmodel.Thread
	dstLoop *hostmodel.Thread
	srcPD   *verbs.PD
	dstPD   *verbs.PD
	srcCQ   *verbs.UpcallCQ
	dstCQ   *verbs.UpcallCQ
	srcQP   verbs.QP
	dstQP   verbs.QP
	srcWCs  []verbs.WC
	dstWCs  []verbs.WC
}

func lanLink() LinkConfig {
	return LinkConfig{RateBps: 40e9, PropDelay: 12500 * time.Nanosecond, MTU: 9000, HeaderBytes: 58}
}

func newRig(t *testing.T, link LinkConfig) *rig {
	t.Helper()
	r := &rig{}
	r.sched = sim.New(1)
	r.fabric = New(r.sched)
	r.srcHost = hostmodel.NewHost(r.sched, "src", 8, hostmodel.DefaultParams())
	r.dstHost = hostmodel.NewHost(r.sched, "dst", 8, hostmodel.DefaultParams())
	r.srcDev = r.fabric.NewDevice("sim0", r.srcHost, DefaultNICProfile())
	r.dstDev = r.fabric.NewDevice("sim1", r.dstHost, DefaultNICProfile())
	r.fabric.Connect(r.srcDev, r.dstDev, link)
	r.srcLoop = r.srcHost.NewThread("src-loop")
	r.dstLoop = r.dstHost.NewThread("dst-loop")
	r.srcPD = r.srcDev.AllocPD()
	r.dstPD = r.dstDev.AllocPD()
	r.srcCQ = r.srcDev.CreateCQ(r.srcLoop, 1024).(*verbs.UpcallCQ)
	r.dstCQ = r.dstDev.CreateCQ(r.dstLoop, 1024).(*verbs.UpcallCQ)
	r.srcCQ.SetHandler(func(wc verbs.WC) { r.srcWCs = append(r.srcWCs, wc) })
	r.dstCQ.SetHandler(func(wc verbs.WC) { r.dstWCs = append(r.dstWCs, wc) })
	var err error
	r.srcQP, err = r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ, MaxSend: 512, MaxRecv: 512})
	if err != nil {
		t.Fatal(err)
	}
	r.dstQP, err = r.dstDev.CreateQP(verbs.QPConfig{PD: r.dstPD, SendCQ: r.dstCQ, RecvCQ: r.dstCQ, MaxSend: 512, MaxRecv: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fabric.ConnectQPs(r.srcQP, r.dstQP); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSendRecvDeliversData(t *testing.T) {
	r := newRig(t, lanLink())
	buf := make([]byte, 256)
	mr, err := r.dstDev.RegisterMR(r.dstPD, buf, verbs.AccessLocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.dstQP.PostRecv(&verbs.RecvWR{WRID: 7, MR: mr, Len: 256}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("control message payload")
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpSend, Data: msg, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.dstWCs) != 1 {
		t.Fatalf("dst completions = %d, want 1", len(r.dstWCs))
	}
	wc := r.dstWCs[0]
	if wc.Op != verbs.OpRecv || wc.WRID != 7 || wc.Imm != 42 || wc.Status != verbs.StatusSuccess {
		t.Fatalf("recv WC wrong: %+v", wc)
	}
	if !bytes.Equal(wc.Data, msg) || !bytes.Equal(buf[:len(msg)], msg) {
		t.Fatalf("data not placed: %q", wc.Data)
	}
	if len(r.srcWCs) != 1 || r.srcWCs[0].Status != verbs.StatusSuccess || r.srcWCs[0].Op != verbs.OpSend {
		t.Fatalf("src completion wrong: %+v", r.srcWCs)
	}
}

func TestWritePlacesHeaderIntoShadow(t *testing.T) {
	r := newRig(t, lanLink())
	// 1 MiB modeled block with a 64-byte shadow.
	mr, err := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 64, verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	hdr := bytes.Repeat([]byte{0x5A}, 32)
	wr := &verbs.SendWR{WRID: 9, Op: verbs.OpWrite, Data: hdr, ModelBytes: 1<<20 - 32, Remote: mr.Remote(0)}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if !bytes.Equal(mr.Buf[:32], hdr) {
		t.Fatal("header not placed")
	}
	if len(r.dstWCs) != 0 {
		t.Fatalf("plain WRITE generated receiver completions: %+v", r.dstWCs)
	}
	if len(r.srcWCs) != 1 || r.srcWCs[0].ByteLen != 1<<20 {
		t.Fatalf("src WC: %+v", r.srcWCs)
	}
}

func TestWriteCompletionTiming(t *testing.T) {
	link := lanLink()
	r := newRig(t, link)
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 64, verbs.AccessRemoteWrite)
	size := 1 << 20
	wr := &verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: make([]byte, 32), ModelBytes: size - 32, Remote: mr.Remote(0)}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	// Expected: serialization + 2 * propagation (data + ack) + NIC costs.
	wire := r.srcDev.wireBytes(size)
	ser := time.Duration(float64(wire) * 8 / link.RateBps * float64(time.Second))
	min := ser + 2*link.PropDelay
	max := min + 50*time.Microsecond // NIC + host cost slack
	if got := r.sched.Now(); got < min || got > max {
		t.Fatalf("completion at %v, want in [%v, %v]", got, min, max)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	link := lanLink()
	r := newRig(t, link)
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 64<<20, 64, verbs.AccessRemoteWrite)
	const n = 64
	size := 1 << 20
	for i := 0; i < n; i++ {
		wr := &verbs.SendWR{WRID: uint64(i), Op: verbs.OpWrite, Data: make([]byte, 32),
			ModelBytes: size - 32, Remote: mr.Remote(i % 64 * size)}
		if err := r.srcQP.PostSend(wr); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.RunAll()
	elapsed := r.sched.Now()
	gbps := float64(n*size) * 8 / elapsed.Seconds() / 1e9
	// 64 MiB over a 40 Gbps link: goodput must be under line rate but
	// above 80% of it (pipelined, header overhead ~0.7%).
	if gbps > 40 || gbps < 32 {
		t.Fatalf("aggregate bandwidth = %.1f Gbps, want 32-40", gbps)
	}
}

func TestRNRRetryThenDelivery(t *testing.T) {
	r := newRig(t, lanLink())
	buf := make([]byte, 64)
	mr, _ := r.dstDev.RegisterMR(r.dstPD, buf, verbs.AccessLocalWrite)
	// Send before any receive is posted.
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpSend, Data: []byte("late")}); err != nil {
		t.Fatal(err)
	}
	// Post the receive 300us later (within the retry budget).
	r.sched.After(300*time.Microsecond, func() {
		if err := r.dstQP.PostRecv(&verbs.RecvWR{WRID: 2, MR: mr, Len: 64}); err != nil {
			t.Fatal(err)
		}
	})
	r.sched.RunAll()
	if len(r.dstWCs) != 1 || string(r.dstWCs[0].Data) != "late" {
		t.Fatalf("message not delivered after RNR: %+v", r.dstWCs)
	}
	if r.dstDev.RNRNaks == 0 {
		t.Fatal("no RNR NAKs counted")
	}
	if len(r.srcWCs) != 1 || r.srcWCs[0].Status != verbs.StatusSuccess {
		t.Fatalf("sender completion: %+v", r.srcWCs)
	}
}

func TestRNRRetryExhaustion(t *testing.T) {
	r := newRig(t, lanLink())
	// Recreate QPs with a tiny retry budget.
	srcQP, _ := r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ, RNRRetry: 2})
	dstQP, _ := r.dstDev.CreateQP(verbs.QPConfig{PD: r.dstPD, SendCQ: r.dstCQ, RecvCQ: r.dstCQ, RNRRetry: 2})
	if err := r.fabric.ConnectQPs(srcQP, dstQP); err != nil {
		t.Fatal(err)
	}
	if err := srcQP.PostSend(&verbs.SendWR{WRID: 5, Op: verbs.OpSend, Data: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.srcWCs) != 1 || r.srcWCs[0].Status != verbs.StatusRNRRetryExceeded {
		t.Fatalf("want RNR retry exceeded, got %+v", r.srcWCs)
	}
	// The sender QP is now in error state.
	if err := srcQP.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("x")}); err != verbs.ErrQPError {
		t.Fatalf("post on errored QP: %v", err)
	}
}

func TestReadFetchesData(t *testing.T) {
	r := newRig(t, lanLink())
	src := []byte("remote data to read back....")
	remoteMR, _ := r.dstDev.RegisterMR(r.dstPD, src, verbs.AccessRemoteRead)
	localBuf := make([]byte, 64)
	localMR, _ := r.srcDev.RegisterMR(r.srcPD, localBuf, verbs.AccessLocalWrite)
	wr := &verbs.SendWR{WRID: 3, Op: verbs.OpRead, Remote: remoteMR.Remote(0), ReadLen: len(src), Local: localMR}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.srcWCs) != 1 || r.srcWCs[0].Op != verbs.OpRead || r.srcWCs[0].Status != verbs.StatusSuccess {
		t.Fatalf("read WC: %+v", r.srcWCs)
	}
	if !bytes.Equal(localBuf[:len(src)], src) {
		t.Fatalf("read data = %q", localBuf[:len(src)])
	}
	if len(r.dstWCs) != 0 {
		t.Fatal("READ generated responder host completions (must be one-sided)")
	}
}

func TestReadOutstandingLimitSerializes(t *testing.T) {
	link := lanLink()
	link.PropDelay = time.Millisecond // make RTT dominate
	r := newRig(t, link)
	remoteMR, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 0, verbs.AccessRemoteRead)
	localMR, _ := r.srcDev.RegisterModelMR(r.srcPD, 1<<20, 0, verbs.AccessLocalWrite)
	srcQP, _ := r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ, MaxRDAtomic: 1, MaxSend: 16})
	dstQP, _ := r.dstDev.CreateQP(verbs.QPConfig{PD: r.dstPD, SendCQ: r.dstCQ, RecvCQ: r.dstCQ})
	r.fabric.ConnectQPs(srcQP, dstQP)
	const n = 4
	for i := 0; i < n; i++ {
		wr := &verbs.SendWR{WRID: uint64(i), Op: verbs.OpRead, Remote: remoteMR.Remote(0), ReadLen: 4096, Local: localMR}
		if err := srcQP.PostSend(wr); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.RunAll()
	// With MaxRDAtomic=1, each READ takes a full RTT: total >= n*RTT.
	if got := r.sched.Now(); got < n*2*time.Millisecond {
		t.Fatalf("4 serialized reads finished in %v, want >= %v", got, n*2*time.Millisecond)
	}
	if len(r.srcWCs) != n {
		t.Fatalf("completions = %d", len(r.srcWCs))
	}
}

func TestRemoteAccessViolation(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 64), verbs.AccessRemoteRead) // no write access
	wr := &verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: []byte("nope"), Remote: mr.Remote(0)}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.srcWCs) != 1 || r.srcWCs[0].Status != verbs.StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", r.srcWCs)
	}
}

func TestSendQueueFull(t *testing.T) {
	r := newRig(t, lanLink())
	qp, _ := r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ, MaxSend: 2})
	dqp, _ := r.dstDev.CreateQP(verbs.QPConfig{PD: r.dstPD, SendCQ: r.dstCQ, RecvCQ: r.dstCQ})
	r.fabric.ConnectQPs(qp, dqp)
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 0, verbs.AccessRemoteWrite)
	wr := func() *verbs.SendWR {
		return &verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"), ModelBytes: 1 << 19, Remote: mr.Remote(0)}
	}
	if err := qp.PostSend(wr()); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(wr()); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(wr()); err != verbs.ErrSendQueueFull {
		t.Fatalf("third post: %v, want queue full", err)
	}
	r.sched.RunAll()
	// After completions drain the queue accepts work again.
	if err := qp.PostSend(wr()); err != nil {
		t.Fatalf("post after drain: %v", err)
	}
	r.sched.RunAll()
}

func TestPostBeforeConnectFails(t *testing.T) {
	r := newRig(t, lanLink())
	qp, _ := r.srcDev.CreateQP(verbs.QPConfig{PD: r.srcPD, SendCQ: r.srcCQ, RecvCQ: r.srcCQ})
	if err := qp.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("x")}); err != verbs.ErrNotConnected {
		t.Fatalf("unconnected post: %v", err)
	}
}

func TestCloseFlushesRecvQueue(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 64), verbs.AccessLocalWrite)
	r.dstQP.PostRecv(&verbs.RecvWR{WRID: 11, MR: mr, Len: 64})
	r.dstQP.PostRecv(&verbs.RecvWR{WRID: 12, MR: mr, Len: 64})
	if err := r.dstQP.Close(); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.dstWCs) != 2 {
		t.Fatalf("flush completions = %d, want 2", len(r.dstWCs))
	}
	for _, wc := range r.dstWCs {
		if wc.Status != verbs.StatusFlushed {
			t.Fatalf("flush WC status = %v", wc.Status)
		}
	}
	if err := r.dstQP.Close(); err != verbs.ErrQPClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestTwoSidedChargesBothHostsOneSidedOnlySender(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 4096), verbs.AccessLocalWrite|verbs.AccessRemoteWrite)
	for i := 0; i < 16; i++ {
		r.dstQP.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Len: 4096})
	}
	dstPostCPU := r.dstLoop.Busy() // cost of posting receives; exclude it
	for i := 0; i < 16; i++ {
		r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("two-sided")})
	}
	r.sched.RunAll()
	twoSidedDst := r.dstLoop.Busy() - dstPostCPU
	if twoSidedDst == 0 {
		t.Fatal("SEND/RECV charged no receiver CPU")
	}

	// One-sided writes must charge the receiver nothing further.
	wmr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 0, verbs.AccessRemoteWrite)
	before := r.dstLoop.Busy()
	for i := 0; i < 16; i++ {
		r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("x"), ModelBytes: 4096, Remote: wmr.Remote(0)})
	}
	r.sched.RunAll()
	if got := r.dstLoop.Busy() - before; got != 0 {
		t.Fatalf("one-sided WRITE charged receiver %v CPU", got)
	}
}

func TestWriteImmConsumesRecvAndNotifies(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 64, verbs.AccessRemoteWrite)
	notifyMR, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 16), verbs.AccessLocalWrite)
	r.dstQP.PostRecv(&verbs.RecvWR{WRID: 77, MR: notifyMR, Len: 16})
	wr := &verbs.SendWR{WRID: 8, Op: verbs.OpWriteImm, Data: make([]byte, 32), ModelBytes: 4064,
		Remote: mr.Remote(0), Imm: 1234}
	if err := r.srcQP.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.dstWCs) != 1 {
		t.Fatalf("dst WCs = %d", len(r.dstWCs))
	}
	wc := r.dstWCs[0]
	if wc.Op != verbs.OpWriteImm || wc.Imm != 1234 || wc.WRID != 77 || wc.ByteLen != 4096 {
		t.Fatalf("imm WC: %+v", wc)
	}
}

func TestBadWRRejected(t *testing.T) {
	r := newRig(t, lanLink())
	if err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpSend}); err != verbs.ErrBadWR {
		t.Fatalf("empty SEND: %v", err)
	}
	if err := r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpRead, ReadLen: 64}); err != verbs.ErrBadWR {
		t.Fatalf("READ without local MR: %v", err)
	}
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 8), verbs.AccessLocalWrite)
	if err := r.dstQP.PostRecv(&verbs.RecvWR{MR: mr, Len: 64}); err != verbs.ErrBadWR {
		t.Fatalf("oversized recv window: %v", err)
	}
	if err := r.dstQP.PostRecv(&verbs.RecvWR{MR: nil, Len: 8}); err != verbs.ErrBadWR {
		t.Fatalf("nil recv MR: %v", err)
	}
}

func TestRecvBufferTooSmallErrors(t *testing.T) {
	r := newRig(t, lanLink())
	mr, _ := r.dstDev.RegisterMR(r.dstPD, make([]byte, 8), verbs.AccessLocalWrite)
	r.dstQP.PostRecv(&verbs.RecvWR{WRID: 1, MR: mr, Len: 8})
	if err := r.srcQP.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpSend, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunAll()
	if len(r.srcWCs) != 1 || r.srcWCs[0].Status != verbs.StatusRemoteAccessError {
		t.Fatalf("oversized SEND: %+v", r.srcWCs)
	}
}

func TestConnectQPsOnUnlinkedDevices(t *testing.T) {
	s := sim.New(1)
	f := New(s)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	d1 := f.NewDevice("a", h, DefaultNICProfile())
	d2 := f.NewDevice("b", h, DefaultNICProfile())
	d3 := f.NewDevice("c", h, DefaultNICProfile())
	f.Connect(d1, d2, lanLink())
	loop := h.NewThread("l")
	cq := d1.CreateCQ(loop, 16).(*verbs.UpcallCQ)
	pd := d1.AllocPD()
	q1, _ := d1.CreateQP(verbs.QPConfig{PD: pd, SendCQ: cq, RecvCQ: cq})
	cq3 := d3.CreateCQ(loop, 16).(*verbs.UpcallCQ)
	q3, _ := d3.CreateQP(verbs.QPConfig{PD: d3.AllocPD(), SendCQ: cq3, RecvCQ: cq3})
	if err := f.ConnectQPs(q1, q3); err != verbs.ErrNotConnected {
		t.Fatalf("connecting across unlinked devices: %v", err)
	}
}

func TestWANLatencyDominates(t *testing.T) {
	wan := LinkConfig{RateBps: 10e9, PropDelay: 24500 * time.Microsecond, MTU: 9000, HeaderBytes: 58}
	r := newRig(t, wan)
	mr, _ := r.dstDev.RegisterModelMR(r.dstPD, 1<<20, 0, verbs.AccessRemoteWrite)
	start := r.sched.Now()
	r.srcQP.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte("h"), ModelBytes: 4095, Remote: mr.Remote(0)})
	r.sched.RunAll()
	elapsed := r.sched.Now() - start
	// One small write on the WAN takes about one full RTT (49 ms).
	if elapsed < 49*time.Millisecond || elapsed > 50*time.Millisecond {
		t.Fatalf("WAN write completed in %v, want ~49ms", elapsed)
	}
}
