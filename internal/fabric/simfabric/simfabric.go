// Package simfabric implements the verbs interface over the
// discrete-event simulation kernel.
//
// It models the pieces of an RDMA fabric that shape the paper's results:
//
//   - wire serialization at the NIC egress port (rate, MTU framing
//     overhead, per-WR NIC latency),
//   - propagation delay (LAN microseconds to WAN 24.5 ms one way),
//   - RC semantics: in-order per-QP delivery, sender completions on ACK
//     (half an RTT after delivery), receiver-not-ready NAK/retry for
//     SEND, bounded outstanding RDMA READs (initiator depth),
//   - host CPU charging: posting WRs, reaping completions, interrupt
//     moderation — two-sided traffic charges both hosts, one-sided
//     traffic only the initiator.
//
// Payload is length-modeled (verbs.SendWR.ModelBytes); real bytes in
// SendWR.Data — protocol headers — are physically placed into the target
// memory region's shadow prefix so the protocol logic above runs
// unmodified.
package simfabric

import (
	"fmt"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/telemetry"
	"rftp/internal/verbs"
)

// LinkConfig describes a point-to-point link between two devices.
type LinkConfig struct {
	// RateBps is the line rate in bits per second.
	RateBps float64
	// PropDelay is the one-way propagation delay (RTT/2).
	PropDelay time.Duration
	// MTU is the maximum transmission unit in bytes; messages are framed
	// into ceil(len/MTU) packets each paying HeaderBytes of overhead.
	MTU int
	// HeaderBytes is per-packet framing overhead (Ethernet+IP+UDP+BTH
	// for RoCE ~ 58 B; IB LRH+BTH+ICRC ~ 30 B).
	HeaderBytes int
}

// NICProfile captures per-device costs that differ between RDMA
// architectures (the paper observes libibverbs overhead is lower on
// InfiniBand than RoCE).
type NICProfile struct {
	// TxPerWR is NIC processing latency added to each transmitted WR.
	TxPerWR time.Duration
	// RxPerWR is NIC processing latency added at the receiver.
	RxPerWR time.Duration
	// HostCostFactor scales the host-side verbs costs (PostWR,
	// Completion) for this device. 1.0 for InfiniBand; >1 for RoCE.
	HostCostFactor float64
	// RNRTimer is the delay before a SEND that found no posted receive
	// is retried.
	RNRTimer time.Duration
	// MaxOutstandingReads caps concurrent inbound READ responses the
	// device serves (responder resources); initiator depth is per-QP
	// (QPConfig.MaxRDAtomic).
	MaxOutstandingReads int
}

// DefaultNICProfile returns a generic 2012-era HCA profile.
func DefaultNICProfile() NICProfile {
	return NICProfile{
		TxPerWR:             600 * time.Nanosecond,
		RxPerWR:             600 * time.Nanosecond,
		HostCostFactor:      1.0,
		RNRTimer:            100 * time.Microsecond,
		MaxOutstandingReads: 16,
	}
}

// Backbone is a shared wide-area trunk: multiple device pairs
// connected via the same backbone serialize through its capacity in
// each direction (the ANI testbed's hosts shared a 100 Gbps ESnet
// path with 10 Gbps NICs each).
type Backbone struct {
	fwd, rev *port
}

// NewBackbone creates a full-duplex shared trunk of the given rate.
func (f *Fabric) NewBackbone(rateBps float64) *Backbone {
	if rateBps <= 0 {
		panic("simfabric: backbone rate must be positive")
	}
	return &Backbone{
		fwd: &port{sched: f.sched, rateBps: rateBps},
		rev: &port{sched: f.sched, rateBps: rateBps},
	}
}

// Bytes returns total bytes carried in each direction.
func (bb *Backbone) Bytes() (fwd, rev uint64) { return bb.fwd.txBytes, bb.rev.txBytes }

// Fabric owns all simulated devices and the QP namespace.
type Fabric struct {
	sched   *sim.Scheduler
	nextQP  verbs.QPID
	qps     map[verbs.QPID]*QP
	msgFree []*message // recycled in-flight messages (single sim goroutine)
}

// takeMessage returns a zeroed message from the fabric freelist.
func (f *Fabric) takeMessage() *message {
	if n := len(f.msgFree); n > 0 {
		m := f.msgFree[n-1]
		f.msgFree[n-1] = nil
		f.msgFree = f.msgFree[:n-1]
		return m
	}
	return &message{}
}

// putMessage recycles a message whose lifecycle has fully completed.
// Messages that ever armed an RNR retry timer are left to the GC: the
// timer closure may still hold a reference after delivery.
func (f *Fabric) putMessage(m *message) {
	if m.rnrArmed {
		return
	}
	*m = message{}
	f.msgFree = append(f.msgFree, m)
}

// New creates an empty fabric on the scheduler.
func New(sched *sim.Scheduler) *Fabric {
	return &Fabric{sched: sched, qps: make(map[verbs.QPID]*QP)}
}

// Scheduler returns the simulation scheduler.
func (f *Fabric) Scheduler() *sim.Scheduler { return f.sched }

// Device is a simulated HCA attached to a host.
type Device struct {
	fabric  *Fabric
	name    string
	host    *hostmodel.Host
	profile NICProfile
	space   *verbs.AddressSpace
	port    *port
	bbPort  *port // shared backbone direction (nil = dedicated path)
	peer    *Device
	link    LinkConfig
	nextPD  uint32

	// Stats.
	TxWRs   uint64
	TxBytes uint64
	RxWRs   uint64
	RxBytes uint64
	RNRNaks uint64
	inReads int // inbound READ responses in service
	rdQueue []func()

	// Telemetry, when set, mirrors the plain stats into per-opcode
	// registry counters. Nil costs nothing.
	Telemetry *telemetry.FabricMetrics
}

// NewDevice creates a device on host. Link it to a peer with Connect.
func (f *Fabric) NewDevice(name string, host *hostmodel.Host, profile NICProfile) *Device {
	if profile.HostCostFactor <= 0 {
		profile.HostCostFactor = 1
	}
	if profile.RNRTimer <= 0 {
		profile.RNRTimer = 100 * time.Microsecond
	}
	if profile.MaxOutstandingReads <= 0 {
		profile.MaxOutstandingReads = 16
	}
	return &Device{
		fabric:  f,
		name:    name,
		host:    host,
		profile: profile,
		space:   verbs.NewAddressSpace(),
	}
}

// ConnectVia joins two devices through a shared backbone trunk: each
// transmission serializes first at the sender's NIC port (its own link
// rate) and then through the backbone's directional capacity, which
// all pairs on the trunk share.
func (f *Fabric) ConnectVia(a, b *Device, link LinkConfig, bb *Backbone) {
	f.Connect(a, b, link)
	a.bbPort, b.bbPort = bb.fwd, bb.rev
}

// Connect joins two devices with a full-duplex point-to-point link.
func (f *Fabric) Connect(a, b *Device, link LinkConfig) {
	if link.RateBps <= 0 {
		panic("simfabric: link rate must be positive")
	}
	if link.MTU <= 0 {
		link.MTU = 9000
	}
	if link.HeaderBytes < 0 {
		link.HeaderBytes = 0
	}
	a.peer, b.peer = b, a
	a.link, b.link = link, link
	a.port = &port{sched: f.sched, rateBps: link.RateBps}
	b.port = &port{sched: f.sched, rateBps: link.RateBps}
}

// Host returns the host the device is attached to.
func (d *Device) Host() *hostmodel.Host { return d.host }

// Name implements verbs.Device.
func (d *Device) Name() string { return d.name }

// AllocPD implements verbs.Device.
func (d *Device) AllocPD() *verbs.PD {
	d.nextPD++
	return &verbs.PD{ID: d.nextPD, Device: d.name}
}

// CreateCQ implements verbs.Device.
func (d *Device) CreateCQ(loop verbs.Loop, depth int) verbs.CQ {
	return verbs.NewUpcallCQ(loop)
}

// RegisterMR implements verbs.Device.
func (d *Device) RegisterMR(pd *verbs.PD, buf []byte, access verbs.Access) (*verbs.MR, error) {
	return d.space.Register(pd, buf, access)
}

// RegisterModelMR implements verbs.Device.
func (d *Device) RegisterModelMR(pd *verbs.PD, length, shadow int, access verbs.Access) (*verbs.MR, error) {
	return d.space.RegisterModel(pd, length, shadow, access)
}

// Space exposes the device's address space (tests and tools).
func (d *Device) Space() *verbs.AddressSpace { return d.space }

// wireBytes returns on-the-wire length including per-packet framing.
func (d *Device) wireBytes(payload int) int {
	if payload <= 0 {
		payload = 1
	}
	pkts := (payload + d.link.MTU - 1) / d.link.MTU
	return payload + pkts*d.link.HeaderBytes
}

// port serializes transmissions onto the wire.
type port struct {
	sched     *sim.Scheduler
	rateBps   float64
	busyUntil time.Duration
	txBytes   uint64
}

// transmit schedules wire occupation for n bytes and returns the time the
// last bit leaves the port.
func (p *port) transmit(n int) time.Duration {
	return p.transmitAt(p.sched.Now(), n)
}

// transmitAt is transmit with an earliest-start constraint (used when a
// message must first finish serializing at an upstream port).
func (p *port) transmitAt(earliest time.Duration, n int) time.Duration {
	start := earliest
	if now := p.sched.Now(); start < now {
		start = now
	}
	if p.busyUntil > start {
		start = p.busyUntil
	}
	tx := time.Duration(float64(n) * 8 / p.rateBps * float64(time.Second))
	if tx <= 0 {
		tx = time.Nanosecond
	}
	p.busyUntil = start + tx
	p.txBytes += uint64(n)
	return p.busyUntil
}

// Utilization returns bytes transmitted so far (for link-level stats).
func (p *port) Bytes() uint64 { return p.txBytes }

func (d *Device) chargePost() time.Duration {
	return time.Duration(float64(d.host.Params.PostWR) * d.profile.HostCostFactor)
}

func (d *Device) chargeCompletion(loop verbs.Loop) time.Duration {
	base := time.Duration(float64(d.host.Params.Completion) * d.profile.HostCostFactor)
	if t, ok := loop.(*hostmodel.Thread); ok {
		base += t.ChargeInterrupt()
	}
	return base
}

func (f *Fabric) qpByID(id verbs.QPID) *QP { return f.qps[id] }

var _ verbs.Device = (*Device)(nil)

func (d *Device) String() string {
	return fmt.Sprintf("simdev(%s on %s)", d.name, d.host.Name)
}
