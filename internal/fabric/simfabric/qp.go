package simfabric

import (
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/verbs"
)

type qpState uint8

const (
	stateInit qpState = iota
	stateReady
	stateError
	stateClosed
)

// QP is a simulated reliably-connected queue pair.
type QP struct {
	fabric *Fabric
	dev    *Device
	id     verbs.QPID
	cfg    verbs.QPConfig
	peer   *QP
	state  qpState

	sendCQ *verbs.UpcallCQ
	recvCQ *verbs.UpcallCQ

	// Send side.
	sq               []*message // not yet on the wire (stalled behind READ limits)
	sqOutstanding    int        // posted and not yet completed
	outstandingReads int

	// Receive side.
	recvQ    []*verbs.RecvWR
	recvFree []*verbs.RecvWR // recycled receive WR snapshots
	pending  []*message      // arrivals waiting for a posted receive (FIFO)
}

// takeRecv returns a recycled receive-WR snapshot (or a fresh one).
func (q *QP) takeRecv() *verbs.RecvWR {
	if n := len(q.recvFree); n > 0 {
		r := q.recvFree[n-1]
		q.recvFree[n-1] = nil
		q.recvFree = q.recvFree[:n-1]
		return r
	}
	return &verbs.RecvWR{}
}

// putRecv recycles a consumed receive-WR snapshot.
func (q *QP) putRecv(r *verbs.RecvWR) {
	*r = verbs.RecvWR{}
	q.recvFree = append(q.recvFree, r)
}

// message is an in-flight work request (a snapshot of the posted WR).
// Messages are recycled through the fabric freelist; to, compStatus and
// rnrArmed exist so the hot-path scheduler posts need no closures.
type message struct {
	wr        verbs.SendWR
	from      *QP
	to        *QP // peer NIC the message is in flight toward
	rnrLeft   int
	delivered bool
	rnrArmed  bool // an RNR timer was scheduled; message is never recycled
	// compStatus carries the sender-side completion status across the
	// ACK propagation delay.
	compStatus verbs.Status
	// postedAt is the virtual time PostSend accepted the WR, feeding the
	// wire-entry/exit histograms (queue delay and ack round trip).
	postedAt time.Duration
}

// runArrive and runFinishSend are the closure-free scheduler callbacks
// for the two per-message hops (wire arrival, ACK return).
func runArrive(a any) {
	m := a.(*message)
	m.to.arrive(m)
}

func runFinishSend(a any) {
	m := a.(*message)
	m.from.finishSend(m)
}

// CreateQP implements verbs.Device.
func (d *Device) CreateQP(cfg verbs.QPConfig) (verbs.QP, error) {
	if cfg.Type != verbs.RC {
		return nil, verbs.ErrBadWR
	}
	cfg = cfg.Normalize()
	sendCQ, ok1 := cfg.SendCQ.(*verbs.UpcallCQ)
	recvCQ, ok2 := cfg.RecvCQ.(*verbs.UpcallCQ)
	if !ok1 || !ok2 {
		return nil, verbs.ErrBadWR
	}
	d.fabric.nextQP++
	qp := &QP{
		fabric: d.fabric,
		dev:    d,
		id:     d.fabric.nextQP,
		cfg:    cfg,
		sendCQ: sendCQ,
		recvCQ: recvCQ,
	}
	d.fabric.qps[qp.id] = qp
	return qp, nil
}

// ConnectQPs joins two queue pairs created on linked devices.
func (f *Fabric) ConnectQPs(a, b verbs.QP) error {
	qa, ok1 := a.(*QP)
	qb, ok2 := b.(*QP)
	if !ok1 || !ok2 {
		return verbs.ErrBadWR
	}
	if qa.dev.peer != qb.dev {
		return verbs.ErrNotConnected
	}
	qa.peer, qb.peer = qb, qa
	qa.state, qb.state = stateReady, stateReady
	return nil
}

// ID implements verbs.QP.
func (q *QP) ID() verbs.QPID { return q.id }

// Device returns the device the QP lives on.
func (q *QP) Device() *Device { return q.dev }

func (q *QP) chargeCaller(cost time.Duration) {
	if t, ok := q.sendCQ.Loop().(*hostmodel.Thread); ok {
		t.Charge(cost)
	}
}

// PostSend implements verbs.QP. The posting CPU cost is billed to the
// send CQ's loop thread (the protocol always posts from that thread).
func (q *QP) PostSend(wr *verbs.SendWR) error {
	switch q.state {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	case stateInit:
		return verbs.ErrNotConnected
	}
	switch wr.Op {
	case verbs.OpSend, verbs.OpWrite, verbs.OpWriteImm:
		if wr.Length() <= 0 {
			return verbs.ErrBadWR
		}
	case verbs.OpRead:
		if wr.ReadLen <= 0 || wr.Local == nil {
			return verbs.ErrBadWR
		}
		if wr.LocalOffset < 0 || wr.LocalOffset+wr.ReadLen > wr.Local.Len {
			return verbs.ErrBadWR
		}
	default:
		return verbs.ErrBadWR
	}
	if q.sqOutstanding >= q.cfg.MaxSend {
		return verbs.ErrSendQueueFull
	}
	q.sqOutstanding++
	q.chargeCaller(q.dev.chargePost())
	m := q.fabric.takeMessage()
	m.wr = *wr
	m.from = q
	m.rnrLeft = q.cfg.RNRRetry
	m.postedAt = q.fabric.sched.Now()
	q.sq = append(q.sq, m)
	q.kickSQ()
	return nil
}

// PostRecv implements verbs.QP.
func (q *QP) PostRecv(wr *verbs.RecvWR) error {
	switch q.state {
	case stateClosed:
		return verbs.ErrQPClosed
	case stateError:
		return verbs.ErrQPError
	}
	if wr.MR == nil || wr.Len <= 0 || wr.Offset < 0 || wr.Offset+wr.Len > wr.MR.Len {
		return verbs.ErrBadWR
	}
	if len(q.recvQ) >= q.cfg.MaxRecv {
		return verbs.ErrRecvQueueFull
	}
	cp := q.takeRecv()
	*cp = *wr
	q.recvQ = append(q.recvQ, cp)
	q.chargeCaller(q.dev.chargePost())
	// An already-arrived message may be waiting for this buffer.
	q.drainPending()
	return nil
}

// kickSQ starts transmission of queued WRs in order. Everything except
// READs stalled on the initiator depth limit goes onto the wire
// immediately (the egress port serializes in virtual time). A stalled
// READ blocks later WRs: the RC send queue is ordered.
func (q *QP) kickSQ() {
	for len(q.sq) > 0 {
		m := q.sq[0]
		if m.wr.Op == verbs.OpRead {
			if q.outstandingReads >= q.cfg.MaxRDAtomic {
				return
			}
			q.outstandingReads++
		}
		q.sq = q.sq[1:]
		q.transmit(m)
	}
}

// transmit serializes the message onto the egress port and schedules its
// arrival at the peer NIC.
func (q *QP) transmit(m *message) {
	d := q.dev
	var wire int
	if m.wr.Op == verbs.OpRead {
		wire = d.wireBytes(16) // READ request packet
	} else {
		wire = d.wireBytes(m.wr.Length())
	}
	d.TxWRs++
	d.TxBytes += uint64(wire)
	d.Telemetry.Posted(m.wr.Op, wire)
	if m.wr.Op == verbs.OpSend {
		d.Telemetry.Ctrl(m.wr.Length())
	}
	// Wire-entry stamp: delay between posting and the egress port
	// accepting the WR (stall behind the READ depth limit, mostly).
	d.Telemetry.WireQueue(q.fabric.sched.Now() - m.postedAt)
	lastBit := d.port.transmit(wire)
	if d.bbPort != nil {
		lastBit = d.bbPort.transmitAt(lastBit, wire)
	}
	arriveAt := lastBit + d.profile.TxPerWR + d.link.PropDelay + d.peer.profile.RxPerWR
	m.to = q.peer
	q.fabric.sched.PostArg(arriveAt, runArrive, m)
}

// completeSend delivers the sender-side completion after the ACK returns
// (half an RTT after the responder handled the message). Only for
// OpSend/OpWrite/OpWriteImm; READs complete via readCompleted.
func (q *QP) completeSend(m *message, status verbs.Status) {
	m.compStatus = status
	q.fabric.sched.PostArgAfter(q.dev.link.PropDelay, runFinishSend, m)
}

// finishSend runs at ACK arrival: it reaps the send, dispatches the
// completion, and recycles the message.
func (q *QP) finishSend(m *message) {
	status := m.compStatus
	q.sqOutstanding--
	q.dev.Telemetry.Completed(m.wr.Op)
	q.dev.Telemetry.WireRTT(q.fabric.sched.Now() - m.postedAt)
	dispatch := true
	if status != verbs.StatusSuccess {
		q.enterError()
	} else if m.wr.NoCompletion {
		dispatch = false
	}
	if dispatch {
		q.sendCQ.Dispatch(q.dev.chargeCompletion(q.sendCQ.Loop()), verbs.WC{
			WRID:    m.wr.WRID,
			Status:  status,
			Op:      m.wr.Op,
			ByteLen: m.wr.Length(),
			QP:      q.id,
		})
	}
	q.fabric.putMessage(m)
}

// arrive is the peer NIC's handling of an inbound message. Runs in NIC
// context (scheduler event; no host CPU except completion dispatches).
func (q *QP) arrive(m *message) {
	if q.state == stateClosed || q.state == stateError {
		// Receiver is gone: NAK back to the sender.
		if m.wr.Op == verbs.OpRead {
			m.from.readCompleted(m, nil, verbs.StatusAborted)
		} else {
			m.from.completeSend(m, verbs.StatusAborted)
		}
		return
	}
	switch m.wr.Op {
	case verbs.OpWrite:
		if q.placeWrite(m) {
			m.from.completeSend(m, verbs.StatusSuccess)
		}
	case verbs.OpWriteImm:
		if q.placeWrite(m) {
			q.enqueueDelivery(m)
		}
	case verbs.OpSend:
		q.enqueueDelivery(m)
	case verbs.OpRead:
		q.handleReadRequest(m)
	}
}

// placeWrite validates and applies an RDMA WRITE to the target region.
// Returns false (after NAKing the sender) on access violations.
func (q *QP) placeWrite(m *message) bool {
	d := q.dev
	if _, _, err := d.space.Place(m.wr.Remote, m.wr.Data, m.wr.ModelBytes); err != nil {
		q.enterError()
		m.from.completeSend(m, verbs.StatusRemoteAccessError)
		return false
	}
	d.RxWRs++
	d.RxBytes += uint64(m.wr.Length())
	d.Telemetry.Rx(m.wr.Length())
	return true
}

// enqueueDelivery routes a receive-consuming arrival (SEND or the
// notification half of WRITE_WITH_IMM) through the RNR state machine.
func (q *QP) enqueueDelivery(m *message) {
	q.pending = append(q.pending, m)
	if len(q.recvQ) > 0 {
		q.drainPending()
		return
	}
	q.scheduleRNRRetry(m)
}

// scheduleRNRRetry models the receiver-not-ready NAK/retry loop: each
// retry waits RNRTimer; when the budget is exhausted the message is
// dropped and the sender completes with StatusRNRRetryExceeded.
func (q *QP) scheduleRNRRetry(m *message) {
	q.dev.RNRNaks++
	q.dev.Telemetry.RNR()
	if m.rnrLeft <= 0 {
		for i, p := range q.pending {
			if p == m {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		m.from.completeSend(m, verbs.StatusRNRRetryExceeded)
		return
	}
	m.rnrLeft--
	m.rnrArmed = true
	q.fabric.sched.After(q.dev.profile.RNRTimer, func() {
		if m.delivered || q.state != stateReady {
			return
		}
		if len(q.recvQ) > 0 {
			q.drainPending()
			return
		}
		q.scheduleRNRRetry(m)
	})
}

// drainPending delivers queued arrivals in order while receives are
// available.
func (q *QP) drainPending() {
	for len(q.pending) > 0 && len(q.recvQ) > 0 {
		m := q.pending[0]
		q.pending = q.pending[1:]
		m.delivered = true
		if m.wr.Op == verbs.OpWriteImm {
			q.deliverImmNotify(m)
		} else {
			q.deliverSend(m)
		}
	}
}

// deliverSend places a SEND into the next posted receive buffer.
func (q *QP) deliverSend(m *message) {
	d := q.dev
	rwr := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	if m.wr.Length() > rwr.Len {
		// Receive buffer too small: fatal on a reliable connection.
		q.enterError()
		m.from.completeSend(m, verbs.StatusRemoteAccessError)
		return
	}
	rwr.MR.PlaceLocal(rwr.Offset, m.wr.Data)
	d.RxWRs++
	d.RxBytes += uint64(m.wr.Length())
	d.Telemetry.Rx(m.wr.Length())
	q.recvCQ.Dispatch(d.chargeCompletion(q.recvCQ.Loop()), verbs.WC{
		WRID:    rwr.WRID,
		Status:  verbs.StatusSuccess,
		Op:      verbs.OpRecv,
		ByteLen: m.wr.Length(),
		Imm:     m.wr.Imm,
		Data:    rwr.MR.ViewLocal(rwr.Offset, len(m.wr.Data)),
		QP:      q.id,
	})
	q.putRecv(rwr)
	m.from.completeSend(m, verbs.StatusSuccess)
}

// deliverImmNotify consumes a receive for the immediate notification of
// an already-placed RDMA WRITE WITH IMMEDIATE.
func (q *QP) deliverImmNotify(m *message) {
	d := q.dev
	rwr := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	q.recvCQ.Dispatch(d.chargeCompletion(q.recvCQ.Loop()), verbs.WC{
		WRID:    rwr.WRID,
		Status:  verbs.StatusSuccess,
		Op:      verbs.OpWriteImm,
		ByteLen: m.wr.Length(),
		Imm:     m.wr.Imm,
		QP:      q.id,
	})
	q.putRecv(rwr)
	m.from.completeSend(m, verbs.StatusSuccess)
}

// handleReadRequest serves an inbound RDMA READ at the responder NIC. No
// responder host CPU is charged (one-sided semantics); responder NIC
// resources bound concurrent responses.
func (q *QP) handleReadRequest(m *message) {
	d := q.dev
	if d.inReads >= d.profile.MaxOutstandingReads {
		d.rdQueue = append(d.rdQueue, func() { q.handleReadRequest(m) })
		return
	}
	_, view, err := d.space.Fetch(m.wr.Remote, m.wr.ReadLen)
	if err != nil {
		q.enterError()
		m.from.readCompleted(m, nil, verbs.StatusRemoteAccessError)
		return
	}
	d.inReads++
	wire := d.wireBytes(m.wr.ReadLen)
	d.TxWRs++
	d.TxBytes += uint64(wire)
	d.Telemetry.Tx(wire)
	lastBit := d.port.transmit(wire)
	if d.bbPort != nil {
		lastBit = d.bbPort.transmitAt(lastBit, wire)
	}
	// The responder's READ context frees when the response has been
	// transmitted (last bit out), not when it lands at the initiator:
	// holding the slot across the propagation delay would cap pull-mode
	// throughput at MaxOutstandingReads blocks per RTT on long paths,
	// which is not how IRD works — the context tracks response
	// generation, and in-flight responses are the wire's problem.
	releaseAt := lastBit + d.profile.TxPerWR
	arriveAt := releaseAt + d.link.PropDelay + m.from.dev.profile.RxPerWR
	data := append([]byte(nil), view...)
	q.fabric.sched.At(releaseAt, func() {
		d.inReads--
		if len(d.rdQueue) > 0 {
			next := d.rdQueue[0]
			d.rdQueue = d.rdQueue[1:]
			next()
		}
	})
	q.fabric.sched.At(arriveAt, func() {
		m.from.readCompleted(m, data, verbs.StatusSuccess)
	})
}

// readCompleted lands READ response data at the initiator.
func (q *QP) readCompleted(m *message, data []byte, status verbs.Status) {
	q.sqOutstanding--
	q.outstandingReads--
	q.dev.Telemetry.Completed(verbs.OpRead)
	q.dev.Telemetry.WireRTT(q.fabric.sched.Now() - m.postedAt)
	if status == verbs.StatusSuccess && m.wr.Local != nil {
		m.wr.Local.PlaceLocal(m.wr.LocalOffset, data)
		q.dev.RxWRs++
		q.dev.RxBytes += uint64(m.wr.ReadLen)
		q.dev.Telemetry.Rx(m.wr.ReadLen)
	}
	if status != verbs.StatusSuccess {
		q.enterError()
	}
	if status != verbs.StatusSuccess || !m.wr.NoCompletion {
		q.sendCQ.Dispatch(q.dev.chargeCompletion(q.sendCQ.Loop()), verbs.WC{
			WRID:    m.wr.WRID,
			Status:  status,
			Op:      verbs.OpRead,
			ByteLen: m.wr.ReadLen,
			QP:      q.id,
		})
	}
	q.fabric.putMessage(m)
	q.kickSQ()
}

// enterError moves the QP to the error state and flushes queued work.
func (q *QP) enterError() {
	if q.state == stateError || q.state == stateClosed {
		return
	}
	q.state = stateError
	q.flushQueued()
}

// flushQueued completes all queued, untransmitted work with
// StatusFlushed.
func (q *QP) flushQueued() {
	sq := q.sq
	q.sq = nil
	for _, m := range sq {
		q.sqOutstanding--
		q.sendCQ.Dispatch(0, verbs.WC{WRID: m.wr.WRID, Status: verbs.StatusFlushed, Op: m.wr.Op, QP: q.id})
		q.fabric.putMessage(m)
	}
	rq := q.recvQ
	q.recvQ = nil
	for _, r := range rq {
		q.recvCQ.Dispatch(0, verbs.WC{WRID: r.WRID, Status: verbs.StatusFlushed, Op: verbs.OpRecv, QP: q.id})
		q.putRecv(r)
	}
}

// Close implements verbs.QP.
func (q *QP) Close() error {
	if q.state == stateClosed {
		return verbs.ErrQPClosed
	}
	q.flushQueued()
	q.state = stateClosed
	return nil
}

var _ verbs.QP = (*QP)(nil)
