package conformance

import (
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/fabric/netfabric"
	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/verbs"
)

func simFactory(t *testing.T) *Pair {
	sched := sim.New(1)
	fab := simfabric.New(sched)
	ha := hostmodel.NewHost(sched, "a", 8, hostmodel.DefaultParams())
	hb := hostmodel.NewHost(sched, "b", 8, hostmodel.DefaultParams())
	da := fab.NewDevice("sim-a", ha, simfabric.DefaultNICProfile())
	db := fab.NewDevice("sim-b", hb, simfabric.DefaultNICProfile())
	fab.Connect(da, db, simfabric.LinkConfig{RateBps: 40e9, PropDelay: 10 * time.Microsecond, MTU: 9000, HeaderBytes: 58})
	return &Pair{
		A: da, B: db,
		LoopA: ha.NewThread("la"), LoopB: hb.NewThread("lb"),
		ConnectQPs: func(a, b verbs.QP) error { return fab.ConnectQPs(a, b) },
		Settle: func(cond func() bool) bool {
			for i := 0; i < 100; i++ {
				if cond() {
					return true
				}
				if sched.Pending() == 0 {
					// Nothing left to simulate; give RNR timers a chance
					// by advancing a little virtual time anyway.
					sched.Run(sched.Now() + time.Millisecond)
				} else {
					sched.RunAll()
				}
			}
			return cond()
		},
		SupportsModel: true,
	}
}

func chanFactory(t *testing.T) *Pair {
	fab := chanfabric.New()
	da := fab.NewDevice("chan-a")
	db := fab.NewDevice("chan-b")
	fab.Connect(da, db, chanfabric.Shaping{})
	la := chanfabric.NewLoop("la")
	lb := chanfabric.NewLoop("lb")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	return &Pair{
		A: da, B: db,
		LoopA: la, LoopB: lb,
		ConnectQPs: func(a, b verbs.QP) error { return fab.ConnectQPs(a, b) },
		Settle:     SettleRealtime(10 * time.Second),
	}
}

func netFactory(t *testing.T) *Pair {
	ln, err := netfabric.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		d   *netfabric.Device
		err error
	}
	ch := make(chan res, 1)
	go func() {
		d, err := ln.Accept()
		ch <- res{d, err}
	}()
	client, err := netfabric.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.d.Close() })
	la := chanfabric.NewLoop("la")
	lb := chanfabric.NewLoop("lb")
	t.Cleanup(func() { la.Stop(); lb.Stop() })
	nextCh := uint32(0)
	settle := SettleRealtime(10 * time.Second)
	return &Pair{
		A: client, B: r.d,
		LoopA: la, LoopB: lb,
		ConnectQPs: func(a, b verbs.QP) error {
			nextCh++
			if err := client.BindQP(a, nextCh); err != nil {
				return err
			}
			return r.d.BindQP(b, nextCh)
		},
		Settle: func(cond func() bool) bool {
			ok := settle(cond)
			// The battery inspects registered regions directly after
			// one-sided ops complete; Sync orders the devices' in-place
			// placements before those reads (see Device.Sync).
			client.Sync()
			r.d.Sync()
			return ok
		},
	}
}

func TestSimFabricConformance(t *testing.T)  { Run(t, simFactory) }
func TestChanFabricConformance(t *testing.T) { Run(t, chanFactory) }
func TestNetFabricConformance(t *testing.T)  { Run(t, netFactory) }
