// Package conformance is a fabric-independent test battery for the
// verbs interface: every fabric (simulated, in-process, TCP-backed)
// must exhibit the same semantics — data integrity, completion
// statuses, queue capacity errors, work-request validation, ordering,
// and teardown behavior. Each fabric's test file calls Run with a
// factory for a connected device pair.
package conformance

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rftp/internal/verbs"
)

// Pair is a connected two-device environment under test.
type Pair struct {
	A, B         verbs.Device
	LoopA, LoopB verbs.Loop
	// ConnectQPs joins one QP from A with one from B.
	ConnectQPs func(a, b verbs.QP) error
	// Settle drives the world until outstanding work completes or the
	// budget elapses (simulated fabrics run the event loop; real-time
	// fabrics sleep-poll).
	Settle func(cond func() bool) bool
	// SupportsModel reports whether modeled memory regions work.
	SupportsModel bool
}

// Factory builds a fresh Pair for one subtest.
type Factory func(t *testing.T) *Pair

// collector gathers completions thread-safely (real-time fabrics
// dispatch from other goroutines).
type collector struct {
	mu  sync.Mutex
	wcs []verbs.WC
}

func (c *collector) add(wc verbs.WC) {
	c.mu.Lock()
	c.wcs = append(c.wcs, wc)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.wcs)
}

func (c *collector) get(i int) verbs.WC {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wcs[i]
}

// env is one wired QP pair with collectors.
type env struct {
	p        *Pair
	qpA, qpB verbs.QP
	pdA, pdB *verbs.PD
	wcsA     *collector
	wcsB     *collector
}

func newEnv(t *testing.T, p *Pair, cfg verbs.QPConfig) *env {
	t.Helper()
	e := &env{p: p, wcsA: &collector{}, wcsB: &collector{}}
	e.pdA, e.pdB = p.A.AllocPD(), p.B.AllocPD()
	cqA := p.A.CreateCQ(p.LoopA, 256).(*verbs.UpcallCQ)
	cqB := p.B.CreateCQ(p.LoopB, 256).(*verbs.UpcallCQ)
	cqA.SetHandler(e.wcsA.add)
	cqB.SetHandler(e.wcsB.add)
	ca, cb := cfg, cfg
	ca.PD, ca.SendCQ, ca.RecvCQ = e.pdA, cqA, cqA
	cb.PD, cb.SendCQ, cb.RecvCQ = e.pdB, cqB, cqB
	var err error
	if e.qpA, err = p.A.CreateQP(ca); err != nil {
		t.Fatalf("conformance: create QP A: %v", err)
	}
	if e.qpB, err = p.B.CreateQP(cb); err != nil {
		t.Fatalf("conformance: create QP B: %v", err)
	}
	if err := p.ConnectQPs(e.qpA, e.qpB); err != nil {
		t.Fatalf("conformance: connect: %v", err)
	}
	return e
}

func (e *env) settleCount(t *testing.T, c *collector, n int) {
	t.Helper()
	if !e.p.Settle(func() bool { return c.count() >= n }) {
		t.Fatalf("conformance: timed out waiting for %d completions (have %d)", n, c.count())
	}
}

// Run executes the battery against the fabric.
func Run(t *testing.T, factory Factory) {
	t.Run("SendRecvIntegrity", func(t *testing.T) { testSendRecv(t, factory(t)) })
	t.Run("WritePlacement", func(t *testing.T) { testWrite(t, factory(t)) })
	t.Run("WriteImmConsumesRecv", func(t *testing.T) { testWriteImm(t, factory(t)) })
	t.Run("ReadRoundTrip", func(t *testing.T) { testRead(t, factory(t)) })
	t.Run("ReadDepthQueued", func(t *testing.T) { testReadDepthQueued(t, factory(t)) })
	t.Run("RemoteAccessError", func(t *testing.T) { testAccessError(t, factory(t)) })
	t.Run("SendQueueCap", func(t *testing.T) { testQueueCap(t, factory(t)) })
	t.Run("BadWRRejected", func(t *testing.T) { testBadWR(t, factory(t)) })
	t.Run("RecvTooSmall", func(t *testing.T) { testRecvTooSmall(t, factory(t)) })
	t.Run("CloseFlushesRecvs", func(t *testing.T) { testCloseFlush(t, factory(t)) })
	t.Run("WriteOrdering", func(t *testing.T) { testOrdering(t, factory(t)) })
	t.Run("UnsignaledSend", func(t *testing.T) { testUnsignaled(t, factory(t)) })
	t.Run("LargePayloadRoundTrip", func(t *testing.T) { testLargeRoundTrip(t, factory(t)) })
}

func testSendRecv(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRecv: 32})
	buf := make([]byte, 512)
	mr, err := p.B.RegisterMR(e.pdB, buf, verbs.AccessLocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.qpB.PostRecv(&verbs.RecvWR{WRID: 7, MR: mr, Len: 512}); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 300)
	rand.New(rand.NewSource(1)).Read(msg)
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpSend, Data: msg, Imm: 55}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsB, 1)
	wc := e.wcsB.get(0)
	if wc.Op != verbs.OpRecv || wc.WRID != 7 || wc.Imm != 55 || wc.Status != verbs.StatusSuccess {
		t.Fatalf("recv WC: %+v", wc)
	}
	if !bytes.Equal(wc.Data, msg) {
		t.Fatalf("payload mismatch (%d vs %d bytes)", len(wc.Data), len(msg))
	}
	e.settleCount(t, e.wcsA, 1)
	if got := e.wcsA.get(0); got.Status != verbs.StatusSuccess || got.Op != verbs.OpSend {
		t.Fatalf("send WC: %+v", got)
	}
}

func testWrite(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRecv: 32})
	sink := make([]byte, 4096)
	mr, err := p.B.RegisterMR(e.pdB, sink, verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2048)
	rand.New(rand.NewSource(2)).Read(payload)
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 3, Op: verbs.OpWrite, Data: payload, Remote: mr.Remote(1024)}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.Status != verbs.StatusSuccess || wc.ByteLen != 2048 {
		t.Fatalf("write WC: %+v", wc)
	}
	if !bytes.Equal(sink[1024:1024+2048], payload) {
		t.Fatal("write not placed at offset")
	}
	if e.wcsB.count() != 0 {
		t.Fatal("plain WRITE generated receiver completions")
	}
}

func testWriteImm(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRecv: 32})
	sink := make([]byte, 1024)
	mr, _ := p.B.RegisterMR(e.pdB, sink, verbs.AccessRemoteWrite)
	small, _ := p.B.RegisterMR(e.pdB, make([]byte, 16), verbs.AccessLocalWrite)
	if err := e.qpB.PostRecv(&verbs.RecvWR{WRID: 70, MR: small, Len: 16}); err != nil {
		t.Fatal(err)
	}
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 4, Op: verbs.OpWriteImm,
		Data: []byte("imm-write"), Remote: mr.Remote(0), Imm: 9090}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsB, 1)
	wc := e.wcsB.get(0)
	if wc.Op != verbs.OpWriteImm || wc.Imm != 9090 || wc.WRID != 70 {
		t.Fatalf("imm WC: %+v", wc)
	}
	if string(sink[:9]) != "imm-write" {
		t.Fatal("imm write not placed")
	}
}

func testRead(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRecv: 32})
	remote := make([]byte, 1024)
	rand.New(rand.NewSource(3)).Read(remote)
	rmr, _ := p.B.RegisterMR(e.pdB, remote, verbs.AccessRemoteRead)
	local := make([]byte, 1024)
	lmr, _ := p.A.RegisterMR(e.pdA, local, verbs.AccessLocalWrite)
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 5, Op: verbs.OpRead,
		Remote: rmr.Remote(256), ReadLen: 512, Local: lmr, LocalOffset: 100}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.Status != verbs.StatusSuccess || wc.Op != verbs.OpRead || wc.ByteLen != 512 {
		t.Fatalf("read WC: %+v", wc)
	}
	if !bytes.Equal(local[100:100+512], remote[256:256+512]) {
		t.Fatal("read data mismatch")
	}
	if e.wcsB.count() != 0 {
		t.Fatal("READ generated responder completions")
	}
}

// testReadDepthQueued: posting more READs than the initiator depth
// (MaxRDAtomic) must QUEUE the excess, not reject it or exceed the
// depth — hardware holds extra READs in the send queue and releases
// them as responses return. All of them must complete with the right
// data.
func testReadDepthQueued(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRDAtomic: 2})
	const n, chunk = 16, 64
	remote := make([]byte, n*chunk)
	rand.New(rand.NewSource(11)).Read(remote)
	rmr, _ := p.B.RegisterMR(e.pdB, remote, verbs.AccessRemoteRead)
	local := make([]byte, n*chunk)
	lmr, _ := p.A.RegisterMR(e.pdA, local, verbs.AccessLocalWrite)
	for i := 0; i < n; i++ {
		err := e.qpA.PostSend(&verbs.SendWR{WRID: uint64(100 + i), Op: verbs.OpRead,
			Remote: rmr.Remote(i * chunk), ReadLen: chunk, Local: lmr, LocalOffset: i * chunk})
		if err != nil {
			t.Fatalf("READ %d of %d rejected past initiator depth 2: %v", i, n, err)
		}
	}
	e.settleCount(t, e.wcsA, n)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		wc := e.wcsA.get(i)
		if wc.Status != verbs.StatusSuccess || wc.Op != verbs.OpRead || wc.ByteLen != chunk {
			t.Fatalf("READ WC %d: %+v", i, wc)
		}
		seen[wc.WRID] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct READ completions, want %d", len(seen), n)
	}
	if !bytes.Equal(local, remote) {
		t.Fatal("queued READs returned wrong data")
	}
}

func testAccessError(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 32, MaxRecv: 32})
	mr, _ := p.B.RegisterMR(e.pdB, make([]byte, 64), verbs.AccessRemoteRead) // no write
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 6, Op: verbs.OpWrite, Data: []byte("x"), Remote: mr.Remote(0)}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.Status != verbs.StatusRemoteAccessError {
		t.Fatalf("status = %v, want remote access error", wc.Status)
	}
	// The QP must end up unusable.
	if !p.Settle(func() bool {
		err := e.qpA.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: []byte("y")})
		return err == verbs.ErrQPError || err == verbs.ErrQPClosed
	}) {
		t.Fatal("QP still usable after remote access error")
	}
}

func testQueueCap(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 2, MaxRecv: 4})
	mr, _ := p.B.RegisterMR(e.pdB, make([]byte, 4096), verbs.AccessRemoteWrite)
	post := func() error {
		return e.qpA.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: make([]byte, 1024), Remote: mr.Remote(0)})
	}
	var sawFull bool
	for i := 0; i < 64; i++ {
		if err := post(); err == verbs.ErrSendQueueFull {
			sawFull = true
			break
		} else if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("send queue never reported full at depth 2")
	}
	// After completions drain, posting works again.
	if !p.Settle(func() bool { return post() == nil }) {
		t.Fatal("queue never drained")
	}
}

func testBadWR(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 8, MaxRecv: 8})
	if err := e.qpA.PostSend(&verbs.SendWR{Op: verbs.OpSend}); err != verbs.ErrBadWR {
		t.Fatalf("empty SEND: %v", err)
	}
	if err := e.qpA.PostSend(&verbs.SendWR{Op: verbs.OpRead, ReadLen: 64}); err != verbs.ErrBadWR {
		t.Fatalf("READ without local: %v", err)
	}
	if err := e.qpA.PostSend(&verbs.SendWR{Op: verbs.Opcode(99), Data: []byte("x")}); err != verbs.ErrBadWR {
		t.Fatalf("bogus opcode: %v", err)
	}
	mr, _ := p.B.RegisterMR(e.pdB, make([]byte, 8), verbs.AccessLocalWrite)
	if err := e.qpB.PostRecv(&verbs.RecvWR{MR: mr, Len: 64}); err != verbs.ErrBadWR {
		t.Fatalf("oversized recv window: %v", err)
	}
	if err := e.qpB.PostRecv(&verbs.RecvWR{MR: nil, Len: 8}); err != verbs.ErrBadWR {
		t.Fatalf("nil MR recv: %v", err)
	}
}

func testRecvTooSmall(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 8, MaxRecv: 8})
	mr, _ := p.B.RegisterMR(e.pdB, make([]byte, 16), verbs.AccessLocalWrite)
	if err := e.qpB.PostRecv(&verbs.RecvWR{WRID: 1, MR: mr, Len: 16}); err != nil {
		t.Fatal(err)
	}
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpSend, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.Status != verbs.StatusRemoteAccessError {
		t.Fatalf("oversized SEND status = %v", wc.Status)
	}
}

func testCloseFlush(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 8, MaxRecv: 8})
	mr, _ := p.B.RegisterMR(e.pdB, make([]byte, 64), verbs.AccessLocalWrite)
	e.qpB.PostRecv(&verbs.RecvWR{WRID: 21, MR: mr, Len: 64})
	e.qpB.PostRecv(&verbs.RecvWR{WRID: 22, MR: mr, Len: 64})
	if err := e.qpB.Close(); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsB, 2)
	for i := 0; i < 2; i++ {
		if wc := e.wcsB.get(i); wc.Status != verbs.StatusFlushed {
			t.Fatalf("flush WC %d: %+v", i, wc)
		}
	}
	if err := e.qpB.Close(); err != verbs.ErrQPClosed {
		t.Fatalf("double close: %v", err)
	}
	if err := e.qpB.PostRecv(&verbs.RecvWR{WRID: 23, MR: mr, Len: 64}); err != verbs.ErrQPClosed {
		t.Fatalf("post after close: %v", err)
	}
}

func testOrdering(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 128, MaxRecv: 8})
	sink := make([]byte, 8)
	mr, _ := p.B.RegisterMR(e.pdB, sink, verbs.AccessRemoteWrite)
	const n = 64
	for i := 0; i < n; i++ {
		if err := e.qpA.PostSend(&verbs.SendWR{WRID: uint64(i), Op: verbs.OpWrite,
			Data: []byte{byte(i)}, Remote: mr.Remote(0)}); err != nil {
			t.Fatal(err)
		}
	}
	e.settleCount(t, e.wcsA, n)
	if sink[0] != n-1 {
		t.Fatalf("last write = %d, want %d (per-QP ordering)", sink[0], n-1)
	}
	// Completions arrive in posting order.
	for i := 0; i < n; i++ {
		if e.wcsA.get(i).WRID != uint64(i) {
			t.Fatalf("completion %d has WRID %d", i, e.wcsA.get(i).WRID)
		}
	}
}

func testUnsignaled(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 8, MaxRecv: 8})
	sink := make([]byte, 64)
	mr, _ := p.B.RegisterMR(e.pdB, sink, verbs.AccessRemoteWrite)
	for i := 0; i < 4; i++ {
		if err := e.qpA.PostSend(&verbs.SendWR{Op: verbs.OpWrite, Data: []byte{1},
			Remote: mr.Remote(i), NoCompletion: true}); err != nil {
			t.Fatal(err)
		}
	}
	// A signaled marker write after the unsignaled batch.
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 99, Op: verbs.OpWrite, Data: []byte{2}, Remote: mr.Remote(10)}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.WRID != 99 {
		t.Fatalf("expected only the marker completion, got %+v", wc)
	}
	if e.wcsA.count() != 1 {
		t.Fatalf("unsignaled writes completed: %d WCs", e.wcsA.count())
	}
	for i := 0; i < 4; i++ {
		if sink[i] != 1 {
			t.Fatalf("unsignaled write %d not placed", i)
		}
	}
}

// testLargeRoundTrip pushes a transfer-sized payload through the
// one-sided path both ways: WRITE it into a remote region at an
// offset, READ it back into a different local region, and compare
// byte-for-byte. This exercises in-place placement paths (fabrics that
// land wire payload directly in the registered region) with data large
// enough that a staging bug or short read would corrupt it.
func testLargeRoundTrip(t *testing.T, p *Pair) {
	e := newEnv(t, p, verbs.QPConfig{MaxSend: 8, MaxRecv: 8})
	const size = 1 << 20
	const off = 4096
	sink := make([]byte, size+2*off)
	rmr, err := p.B.RegisterMR(e.pdB, sink, verbs.AccessRemoteWrite|verbs.AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(payload)
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 1, Op: verbs.OpWrite, Data: payload, Remote: rmr.Remote(off)}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 1)
	if wc := e.wcsA.get(0); wc.Status != verbs.StatusSuccess || wc.ByteLen != size {
		t.Fatalf("large write WC: %+v", wc)
	}
	if !bytes.Equal(sink[off:off+size], payload) {
		t.Fatal("large write corrupted in flight")
	}
	if sink[off-1] != 0 || sink[off+size] != 0 {
		t.Fatal("large write spilled outside its window")
	}
	local := make([]byte, size)
	lmr, err := p.A.RegisterMR(e.pdA, local, verbs.AccessLocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.qpA.PostSend(&verbs.SendWR{WRID: 2, Op: verbs.OpRead,
		Remote: rmr.Remote(off), ReadLen: size, Local: lmr}); err != nil {
		t.Fatal(err)
	}
	e.settleCount(t, e.wcsA, 2)
	if wc := e.wcsA.get(1); wc.Status != verbs.StatusSuccess || wc.ByteLen != size {
		t.Fatalf("large read WC: %+v", wc)
	}
	if !bytes.Equal(local, payload) {
		t.Fatal("large read-back mismatch")
	}
}

// SettleRealtime builds a Settle function for wall-clock fabrics.
func SettleRealtime(timeout time.Duration) func(func() bool) bool {
	return func(cond func() bool) bool {
		deadline := time.Now().Add(timeout)
		for {
			if cond() {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}
}
