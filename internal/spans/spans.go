// Package spans records per-block lifecycle timing and attributes
// pipeline stalls to their cause. It is the "why is this transfer slow
// right now" layer on top of the counter/histogram telemetry: every
// sampled block's FSM transitions (load issue → load done → credit wait
// → send queue → wire → arrival → reassembly → store issue → store
// done) are stamped into a fixed-slot span table, and on block release
// the time spent in each stage is folded into per-stage histograms and
// a critical-path decomposition ("61% credit-starved, 22% disk-bound")
// aggregated globally, per channel, and per session.
//
// The recorder is deliberately cheap enough to leave on in release
// builds: blocks are sampled 1-in-N (unsampled blocks cost one branch
// per transition), a nil *Recorder costs a single branch, and no path
// allocates after construction except the bounded completed-span ring
// used for forensic JSONL dumps. Mutation is single-writer — the
// owning connection loop — so the table needs no locks; concurrent
// readers (the -http endpoint, rftptop) snapshot live slots through a
// per-slot seqlock and retry on torn reads.
package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rftp/internal/telemetry"
)

// Kind selects which half of the block lifecycle a Recorder observes.
type Kind uint8

// Recorder kinds.
const (
	KindSource Kind = iota
	KindSink
)

func (k Kind) String() string {
	if k == KindSink {
		return "sink"
	}
	return "source"
}

// Block FSM states, numerically identical to core.BlockState. The spans
// package cannot import core (core imports spans), so the values are
// mirrored here; core asserts the correspondence in a test.
const (
	StateFree uint8 = iota
	StateLoading
	StateLoaded
	StateSending
	StateWaiting
	StateDataReady
	StateStoring
	numStates
)

// StateName returns the core FSM state name for a mirrored state value.
func StateName(s uint8) string {
	switch s {
	case StateFree:
		return "free"
	case StateLoading:
		return "loading"
	case StateLoaded:
		return "loaded"
	case StateSending:
		return "sending"
	case StateWaiting:
		return "waiting"
	case StateDataReady:
		return "data-ready"
	case StateStoring:
		return "storing"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// Stage is one time-in-state segment of a block's life. Source blocks
// pass through load → credit-wait → send-queue → wire; sink blocks
// through credit → reassembly → store.
type Stage uint8

// Lifecycle stages.
const (
	StageLoad       Stage = iota // Loading residency: disk read in flight
	StageCreditWait              // Loaded residency entered from load/retry: waiting for a credit
	StageSendQueue               // Loaded residency after an ErrSendQueueFull revert, plus Sending residency
	StageWire                    // Waiting residency on the source: WRITE posted → completion
	StageCredit                  // Waiting residency on the sink: credit granted → data arrival
	StageReassembly              // DataReady residency: arrival → store issue (ordering + store-slot wait)
	StageStore                   // Storing residency: store in flight
	numStages

	stageNone Stage = 0xff
)

func (s Stage) String() string {
	switch s {
	case StageLoad:
		return "load"
	case StageCreditWait:
		return "credit_wait"
	case StageSendQueue:
		return "send_queue"
	case StageWire:
		return "wire"
	case StageCredit:
		return "credit"
	case StageReassembly:
		return "reassembly"
	case StageStore:
		return "store"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// stageOf maps "leaving state" to the stage its residency belongs to.
// revert marks a Loaded residency that was entered by a Sending→Loaded
// send-queue-full rollback rather than from a completed load.
func stageOf(kind Kind, state uint8, revert bool) Stage {
	if kind == KindSource {
		switch state {
		case StateLoading:
			return StageLoad
		case StateLoaded:
			if revert {
				return StageSendQueue
			}
			return StageCreditWait
		case StateSending:
			return StageSendQueue
		case StateWaiting:
			return StageWire
		}
		return stageNone
	}
	switch state {
	case StateWaiting:
		return StageCredit
	case StateDataReady:
		return StageReassembly
	case StateStoring:
		return StageStore
	}
	return stageNone
}

// Ref identifies a live slot in a Recorder's span table. RefNone marks
// a block that is not being sampled this lifecycle.
type Ref int32

// RefNone is the "not sampled" ref; all Recorder methods accept it.
const RefNone Ref = -1

// slot is one span-table entry. Fields are written only by the owning
// loop; ver is a seqlock (odd while mutating) for concurrent readers.
type slot struct {
	ver     atomic.Uint32
	active  bool
	session uint32
	seq     uint32
	channel int32
	state   uint8
	revert  bool
	begin   int64 // ns on the recorder clock: lifecycle start
	enter   int64 // ns: current state entry
	durs    [numStages]int64
}

// Record is one completed span retained for forensic export.
type Record struct {
	Kind    string        `json:"kind"`
	Session uint32        `json:"session"`
	Seq     uint32        `json:"seq"`
	Channel int32         `json:"channel"`
	Begin   time.Duration `json:"begin_ns"`
	End     time.Duration `json:"end_ns"`
	durs    [numStages]int64
}

// Stages returns the per-stage durations of the record (zero stages
// omitted).
func (r Record) Stages() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for st, d := range r.durs {
		if d > 0 {
			out[Stage(st).String()] = time.Duration(d)
		}
	}
	return out
}

type recordJSON struct {
	Kind    string           `json:"kind"`
	Session uint32           `json:"session"`
	Seq     uint32           `json:"seq"`
	Channel int32            `json:"channel"`
	Begin   int64            `json:"begin_ns"`
	End     int64            `json:"end_ns"`
	Stages  map[string]int64 `json:"stages"`
}

// MarshalJSON renders the record with stage durations as a name→ns map.
func (r Record) MarshalJSON() ([]byte, error) {
	out := recordJSON{
		Kind: r.Kind, Session: r.Session, Seq: r.Seq, Channel: r.Channel,
		Begin: int64(r.Begin), End: int64(r.End),
		Stages: make(map[string]int64, numStages),
	}
	for st, d := range r.durs {
		if d > 0 {
			out.Stages[Stage(st).String()] = d
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (r *Record) UnmarshalJSON(b []byte) error {
	var in recordJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*r = Record{
		Kind: in.Kind, Session: in.Session, Seq: in.Seq, Channel: in.Channel,
		Begin: time.Duration(in.Begin), End: time.Duration(in.End),
	}
	for name, d := range in.Stages {
		for st := Stage(0); st < numStages; st++ {
			if st.String() == name {
				r.durs[st] = d
			}
		}
	}
	return nil
}

// Config parameterizes a Recorder.
type Config struct {
	// Sample records 1-in-Sample block lifecycles. 1 records every
	// block; values below 1 disable recording (New returns nil).
	Sample int
	// Slots bounds concurrently-live sampled spans (default 256).
	// Size it at or above the block-pool size to never drop at
	// Sample=1.
	Slots int
	// Ring bounds retained completed spans for JSONL export
	// (default 256).
	Ring int
	// Clock is the owning loop's clock (defaults to wall time).
	Clock func() time.Duration
	// Registry receives the aggregates: span_<stage>_ns histograms,
	// path_<stage>_ns counters (plus per-channel chan<N> and
	// per-session sess<N> children), spans_completed, spans_dropped.
	Registry *telemetry.Registry
	// MaxSessions bounds per-session aggregation children
	// (default 32); sessions beyond the cap still aggregate
	// globally.
	MaxSessions int
}

// Recorder stamps block lifecycles into a fixed-slot span table and
// aggregates completed spans. A nil *Recorder is valid and free.
//
// Per-slot stamping (Transition between non-Free states, SetKey,
// SetChannel) is lock-free: a block's ref is owned by exactly one loop
// at a time (ownership moves with the block through the sharded
// reactors' mailboxes, which establish the happens-before edge), and
// the per-slot seqlock covers concurrent readers. Slot allocation and
// release touch recorder-wide structures (free list, sampling tick,
// completed ring, aggregate maps) and take mu, so transitions may be
// stamped from any reactor shard, not just one owning loop.
type Recorder struct {
	kind   Kind
	clock  func() time.Duration
	sample uint32
	tick   uint32
	mu     sync.Mutex // guards free/tick/ring/aggregates (begin+finalize)
	slots  []slot
	free   []int32

	reg         *telemetry.Registry
	stageHist   [numStages]*telemetry.Histogram
	pathNs      [numStages]*telemetry.Counter
	completed   *telemetry.Counter
	dropped     *telemetry.Counter
	chPath      map[int32]*[numStages]*telemetry.Counter
	sessPath    map[uint32]*[numStages]*telemetry.Counter
	maxSessions int

	ring     []Record
	ringNext int
	ringFull bool
}

// New creates a recorder of the given kind. cfg.Sample < 1 means
// recording is disabled: New returns nil, and the nil recorder's
// methods cost one branch.
func New(kind Kind, cfg Config) *Recorder {
	if cfg.Sample < 1 {
		return nil
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 32
	}
	r := &Recorder{
		kind:        kind,
		clock:       cfg.Clock,
		sample:      uint32(cfg.Sample),
		slots:       make([]slot, cfg.Slots),
		free:        make([]int32, 0, cfg.Slots),
		reg:         cfg.Registry,
		chPath:      make(map[int32]*[numStages]*telemetry.Counter),
		sessPath:    make(map[uint32]*[numStages]*telemetry.Counter),
		maxSessions: cfg.MaxSessions,
		ring:        make([]Record, cfg.Ring),
	}
	for i := cfg.Slots - 1; i >= 0; i-- {
		r.free = append(r.free, int32(i))
	}
	if cfg.Registry != nil {
		for st := Stage(0); st < numStages; st++ {
			if stageKind(st) != kind {
				continue
			}
			r.stageHist[st] = cfg.Registry.Histogram("span_"+st.String()+"_ns", telemetry.DurationBuckets()...)
			r.pathNs[st] = cfg.Registry.Counter("path_" + st.String() + "_ns")
		}
		r.completed = cfg.Registry.Counter("spans_completed")
		r.dropped = cfg.Registry.Counter("spans_dropped")
	}
	return r
}

// stageKind says which recorder kind a stage belongs to.
func stageKind(st Stage) Kind {
	if st >= StageCredit {
		return KindSink
	}
	return KindSource
}

// Transition stamps one FSM transition for the block owning ref and
// returns the ref for the block to carry forward: a fresh ref (or
// RefNone if unsampled) when the block leaves Free, RefNone after the
// block returns to Free and the span is folded into the aggregates.
// This is the only stamping entry point, and it must be called from the
// block FSM's setState — rftplint's spanstamp pass enforces that every
// call site is inside a setState body, so the span table can never
// disagree with the FSM.
func (r *Recorder) Transition(ref Ref, from, to uint8) Ref {
	if r == nil {
		return RefNone
	}
	if from == StateFree {
		return r.begin(to)
	}
	if ref == RefNone {
		return RefNone
	}
	now := int64(r.clock())
	s := &r.slots[ref]
	s.ver.Add(1)
	if st := stageOf(r.kind, from, s.revert); st != stageNone {
		s.durs[st] += now - s.enter
	}
	s.revert = from == StateSending && to == StateLoaded
	s.state = to
	s.enter = now
	if to == StateFree {
		r.mu.Lock()
		r.finalize(ref, s, now)
		r.mu.Unlock()
		s.ver.Add(1)
		return RefNone
	}
	s.ver.Add(1)
	return ref
}

// begin applies the 1-in-N sampling decision and claims a slot.
func (r *Recorder) begin(to uint8) Ref {
	r.mu.Lock()
	r.tick++
	if r.tick%r.sample != 0 {
		r.mu.Unlock()
		return RefNone
	}
	if len(r.free) == 0 {
		r.mu.Unlock()
		r.dropped.Add(1)
		return RefNone
	}
	i := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	r.mu.Unlock()
	now := int64(r.clock())
	s := &r.slots[i]
	s.ver.Add(1)
	s.active = true
	s.session, s.seq, s.channel = 0, 0, -1
	s.state = to
	s.revert = false
	s.begin, s.enter = now, now
	s.durs = [numStages]int64{}
	s.ver.Add(1)
	return Ref(i)
}

// finalize folds a completed span into the aggregates and releases the
// slot. Called with the slot's seqlock already held odd and r.mu held.
func (r *Recorder) finalize(ref Ref, s *slot, now int64) {
	r.completed.Add(1)
	chp := r.channelPath(s.channel)
	sessp := r.sessionPath(s.session)
	for st, d := range s.durs {
		if d <= 0 {
			continue
		}
		if h := r.stageHist[st]; h != nil {
			h.Observe(d)
		}
		r.pathNs[st].Add(d)
		if chp != nil {
			chp[st].Add(d)
		}
		if sessp != nil {
			sessp[st].Add(d)
		}
	}
	rec := Record{
		Kind: r.kind.String(), Session: s.session, Seq: s.seq,
		Channel: s.channel, Begin: time.Duration(s.begin),
		End: time.Duration(now), durs: s.durs,
	}
	r.ring[r.ringNext] = rec
	r.ringNext++
	if r.ringNext == len(r.ring) {
		r.ringNext, r.ringFull = 0, true
	}
	s.active = false
	r.free = append(r.free, int32(ref))
}

// channelPath returns (lazily creating) the per-channel path counters.
func (r *Recorder) channelPath(ch int32) *[numStages]*telemetry.Counter {
	if ch < 0 || r.reg == nil {
		return nil
	}
	if p, ok := r.chPath[ch]; ok {
		return p
	}
	child := r.reg.Child(fmt.Sprintf("chan%d", ch))
	p := new([numStages]*telemetry.Counter)
	for st := Stage(0); st < numStages; st++ {
		p[st] = child.Counter("path_" + st.String() + "_ns")
	}
	r.chPath[ch] = p
	return p
}

// sessionPath returns (lazily creating) the per-session path counters,
// or nil past the session cap.
func (r *Recorder) sessionPath(sess uint32) *[numStages]*telemetry.Counter {
	if sess == 0 || r.reg == nil {
		return nil
	}
	if p, ok := r.sessPath[sess]; ok {
		return p
	}
	if len(r.sessPath) >= r.maxSessions {
		return nil
	}
	child := r.reg.Child(fmt.Sprintf("sess%d", sess))
	p := new([numStages]*telemetry.Counter)
	for st := Stage(0); st < numStages; st++ {
		p[st] = child.Counter("path_" + st.String() + "_ns")
	}
	r.sessPath[sess] = p
	return p
}

// SetKey records the (session, seq) identity of the block owning ref.
// Identity is assigned by the protocol after the block leaves Free, so
// this is a separate call from Transition.
func (r *Recorder) SetKey(ref Ref, session, seq uint32) {
	if r == nil || ref == RefNone {
		return
	}
	s := &r.slots[ref]
	s.ver.Add(1)
	s.session, s.seq = session, seq
	s.ver.Add(1)
}

// SetChannel records the data channel the block was posted on.
func (r *Recorder) SetChannel(ref Ref, ch int) {
	if r == nil || ref == RefNone {
		return
	}
	s := &r.slots[ref]
	s.ver.Add(1)
	s.channel = int32(ch)
	s.ver.Add(1)
}

// ActiveSpan is a point-in-time view of one live sampled block, for the
// forensics endpoints.
type ActiveSpan struct {
	Session uint32        `json:"session"`
	Seq     uint32        `json:"seq"`
	Channel int32         `json:"channel"`
	State   string        `json:"state"`
	Age     time.Duration `json:"age_ns"`   // since lifecycle start
	InState time.Duration `json:"state_ns"` // since current state entry
}

// Active snapshots the live span table. Safe to call from any
// goroutine; torn reads are retried via the per-slot seqlock.
func (r *Recorder) Active() []ActiveSpan {
	if r == nil {
		return nil
	}
	now := int64(r.clock())
	var out []ActiveSpan
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 8; attempt++ {
			v1 := s.ver.Load()
			if v1%2 != 0 {
				continue
			}
			active, session, seq := s.active, s.session, s.seq
			channel, state := s.channel, s.state
			begin, enter := s.begin, s.enter
			if s.ver.Load() != v1 {
				continue
			}
			if active {
				out = append(out, ActiveSpan{
					Session: session, Seq: seq, Channel: channel,
					State: StateName(state),
					Age:   time.Duration(now - begin), InState: time.Duration(now - enter),
				})
			}
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Completed returns the retained completed spans, oldest first.
// Single-writer: call from the owning loop, or after it has stopped.
func (r *Recorder) Completed() []Record {
	if r == nil {
		return nil
	}
	if !r.ringFull {
		return append([]Record(nil), r.ring[:r.ringNext]...)
	}
	out := make([]Record, 0, len(r.ring))
	out = append(out, r.ring[r.ringNext:]...)
	return append(out, r.ring[:r.ringNext]...)
}

// WriteJSONL dumps the retained completed spans as newline-delimited
// JSON for offline forensics.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Completed() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decomposition reads the critical-path split out of a telemetry
// snapshot holding path_<stage>_ns counters: each stage's share of the
// total attributed time, in [0,1]. Returns nil when nothing was
// attributed.
func Decomposition(snap *telemetry.Snapshot) map[string]float64 {
	if snap == nil {
		return nil
	}
	var total int64
	parts := make(map[string]int64)
	for name, v := range snap.Counters {
		if !strings.HasPrefix(name, "path_") || !strings.HasSuffix(name, "_ns") || v <= 0 {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "path_"), "_ns")
		parts[stage] = v
		total += v
	}
	if total == 0 {
		return nil
	}
	out := make(map[string]float64, len(parts))
	for stage, v := range parts {
		out[stage] = float64(v) / float64(total)
	}
	return out
}
