package spans

import (
	"fmt"
	"strings"
	"time"

	"rftp/internal/telemetry"
)

// Cause classifies why a pipeline is stalled at a given instant: what
// single resource would, if available right now, let the endpoint make
// forward progress.
type Cause uint8

// Stall causes. Source endpoints report credit-starved / load-pending /
// send-queue-saturated / wire-bound; sinks report store-pending /
// reassembly-gap.
const (
	CauseNone Cause = iota
	CauseCreditStarved
	CauseLoadPending
	CauseSendQueueSaturated
	// CauseWireBound marks the line-rate regime: the block pool is
	// drained by WRITEs in flight on the network, so the next
	// progress-enabling event is an ack returning a block — storage and
	// credits are both keeping up.
	CauseWireBound
	CauseStorePending
	CauseReassemblyGap
	// CauseSchedWait marks a multi-session sink whose pool has credits
	// to give but whose per-tenant scheduler is making a session wait
	// its turn: the binding resource is a scheduling slot, not memory,
	// storage, or the wire.
	CauseSchedWait
	// CauseAdvertStarved is the pull-mode mirror of credit starvation: a
	// sink with free blocks and READ slots is waiting for the source to
	// advertise the next block.
	CauseAdvertStarved
	// CauseReadInflightFull marks the pull-mode initiator-depth regime:
	// advertisements (sink) or the advertise window (source) are
	// exhausted by outstanding READs, so progress waits on a READ
	// completing.
	CauseReadInflightFull
	// CauseReadWireBound is the pull-mode line-rate regime: READs are in
	// flight on the network and nothing else is binding.
	CauseReadWireBound
	numCauses
)

// String returns the display form (hyphenated, as in the paper's
// terminology). metricName returns the underscored counter infix.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCreditStarved:
		return "credit-starved"
	case CauseLoadPending:
		return "load-pending"
	case CauseSendQueueSaturated:
		return "send-queue-saturated"
	case CauseWireBound:
		return "wire-bound"
	case CauseStorePending:
		return "store-pending"
	case CauseReassemblyGap:
		return "reassembly-gap"
	case CauseSchedWait:
		return "sched-wait"
	case CauseAdvertStarved:
		return "advertise-starved"
	case CauseReadInflightFull:
		return "read-inflight-full"
	case CauseReadWireBound:
		return "read-wire-bound"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

func (c Cause) metricName() string {
	return "stall_" + strings.ReplaceAll(c.String(), "-", "_") + "_ns"
}

// StallTracker attributes wall-clock time to stall causes. The
// endpoint classifies its state after every pump step; the tracker
// charges the elapsed time since the previous classification to the
// previously-diagnosed cause, so the counters integrate "time spent
// stalled on X" exactly, with no timers. A nil tracker is valid and
// free.
type StallTracker struct {
	clock func() time.Duration
	cur   Cause
	since int64
	ns    [numCauses]*telemetry.Counter
	flips *telemetry.Counter
}

// NewStallTracker creates a tracker registering stall_<cause>_ns
// counters (and stall_flips) under reg. A nil clock defaults to wall
// time.
func NewStallTracker(reg *telemetry.Registry, clock func() time.Duration) *StallTracker {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	t := &StallTracker{clock: clock, since: int64(clock())}
	if reg != nil {
		for c := CauseNone + 1; c < numCauses; c++ {
			t.ns[c] = reg.Counter(c.metricName())
		}
		t.flips = reg.Counter("stall_flips")
	}
	return t
}

// Note records the endpoint's current diagnosis, charging the time
// since the previous Note to the previous cause.
func (t *StallTracker) Note(c Cause) {
	if t == nil {
		return
	}
	now := int64(t.clock())
	if t.cur != CauseNone {
		t.ns[t.cur].Add(now - t.since)
	}
	if c != t.cur {
		t.flips.Add(1)
	}
	t.cur = c
	t.since = now
}

// Current returns the most recently diagnosed cause.
func (t *StallTracker) Current() Cause {
	if t == nil {
		return CauseNone
	}
	return t.cur
}

// TopStall scans a telemetry snapshot subtree for stall_<cause>_ns
// counters (recursively, so it can be pointed at a connection root
// covering both source and sink) and returns the dominant cause, its
// attributed time, and its share of all attributed stall time. Returns
// ("none", 0, 0) when nothing was attributed.
func TopStall(snap *telemetry.Snapshot) (cause string, ns int64, share float64) {
	totals := make(map[string]int64)
	collectStalls(snap, totals)
	var total int64
	cause = "none"
	for name, v := range totals {
		total += v
		if v > ns {
			cause, ns = name, v
		}
	}
	if total > 0 {
		share = float64(ns) / float64(total)
	}
	return cause, ns, share
}

func collectStalls(snap *telemetry.Snapshot, totals map[string]int64) {
	if snap == nil {
		return
	}
	for name, v := range snap.Counters {
		if !strings.HasPrefix(name, "stall_") || !strings.HasSuffix(name, "_ns") || v <= 0 {
			continue
		}
		c := strings.ReplaceAll(strings.TrimSuffix(strings.TrimPrefix(name, "stall_"), "_ns"), "_", "-")
		totals[c] += v
	}
	for _, child := range snap.Children {
		collectStalls(child, totals)
	}
}
