package spans

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rftp/internal/telemetry"
)

// fakeClock is a manually-advanced clock for deterministic stamping.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now += d }

func newTestRecorder(t *testing.T, kind Kind, sample int) (*Recorder, *fakeClock, *telemetry.Registry) {
	t.Helper()
	clk := &fakeClock{}
	reg := telemetry.NewRegistry("spans")
	r := New(kind, Config{Sample: sample, Slots: 8, Ring: 8, Clock: clk.Now, Registry: reg})
	if sample >= 1 && r == nil {
		t.Fatal("New returned nil for enabled config")
	}
	return r, clk, reg
}

func TestSourceLifecycleStages(t *testing.T) {
	r, clk, reg := newTestRecorder(t, KindSource, 1)

	ref := r.Transition(RefNone, StateFree, StateLoading)
	if ref == RefNone {
		t.Fatal("sample=1 lifecycle not sampled")
	}
	r.SetKey(ref, 7, 42)
	clk.Advance(10 * time.Millisecond) // load
	ref = r.Transition(ref, StateLoading, StateLoaded)
	clk.Advance(5 * time.Millisecond) // credit wait
	ref = r.Transition(ref, StateLoaded, StateSending)
	r.SetChannel(ref, 2)
	clk.Advance(1 * time.Millisecond) // send queue (post attempt)
	ref = r.Transition(ref, StateSending, StateWaiting)
	clk.Advance(20 * time.Millisecond) // wire
	ref = r.Transition(ref, StateWaiting, StateFree)
	if ref != RefNone {
		t.Fatalf("terminal transition returned live ref %d", ref)
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"path_load_ns":        int64(10 * time.Millisecond),
		"path_credit_wait_ns": int64(5 * time.Millisecond),
		"path_send_queue_ns":  int64(1 * time.Millisecond),
		"path_wire_ns":        int64(20 * time.Millisecond),
	}
	for name, v := range want {
		if got := snap.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if got := snap.Counter("spans_completed"); got != 1 {
		t.Errorf("spans_completed = %d, want 1", got)
	}
	if h := snap.Histogram("span_wire_ns"); h.Count != 1 {
		t.Errorf("span_wire_ns count = %d, want 1", h.Count)
	}
	// Per-channel and per-session attribution.
	if got := snap.Find("chan2").Counter("path_wire_ns"); got != int64(20*time.Millisecond) {
		t.Errorf("chan2 path_wire_ns = %d", got)
	}
	if got := snap.Find("sess7").Counter("path_load_ns"); got != int64(10*time.Millisecond) {
		t.Errorf("sess7 path_load_ns = %d", got)
	}

	recs := r.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Session != 7 || rec.Seq != 42 || rec.Channel != 2 || rec.Kind != "source" {
		t.Errorf("record identity = %+v", rec)
	}
	if d := rec.Stages()["wire"]; d != 20*time.Millisecond {
		t.Errorf("record wire stage = %v", d)
	}
}

func TestSendQueueRevertAttribution(t *testing.T) {
	r, clk, reg := newTestRecorder(t, KindSource, 1)

	ref := r.Transition(RefNone, StateFree, StateLoading)
	clk.Advance(time.Millisecond)
	ref = r.Transition(ref, StateLoading, StateLoaded)
	clk.Advance(2 * time.Millisecond) // genuine credit wait
	ref = r.Transition(ref, StateLoaded, StateSending)
	// ErrSendQueueFull rollback: Sending → Loaded. The re-queued wait
	// must charge to send_queue, not credit_wait.
	clk.Advance(time.Millisecond)
	ref = r.Transition(ref, StateSending, StateLoaded)
	clk.Advance(4 * time.Millisecond)
	ref = r.Transition(ref, StateLoaded, StateSending)
	clk.Advance(0)
	ref = r.Transition(ref, StateSending, StateWaiting)
	clk.Advance(time.Millisecond)
	r.Transition(ref, StateWaiting, StateFree)

	snap := reg.Snapshot()
	if got := snap.Counter("path_credit_wait_ns"); got != int64(2*time.Millisecond) {
		t.Errorf("credit_wait = %v, want 2ms", time.Duration(got))
	}
	if got := snap.Counter("path_send_queue_ns"); got != int64(5*time.Millisecond) {
		t.Errorf("send_queue = %v, want 5ms (1ms failed post + 4ms re-queued)", time.Duration(got))
	}
}

func TestSinkLifecycleAndAbort(t *testing.T) {
	r, clk, reg := newTestRecorder(t, KindSink, 1)

	// Normal path: Free → Waiting → DataReady → Storing → Free.
	ref := r.Transition(RefNone, StateFree, StateWaiting)
	clk.Advance(8 * time.Millisecond) // credit round trip
	ref = r.Transition(ref, StateWaiting, StateDataReady)
	r.SetKey(ref, 3, 1)
	clk.Advance(2 * time.Millisecond) // reassembly / store-slot wait
	ref = r.Transition(ref, StateDataReady, StateStoring)
	clk.Advance(6 * time.Millisecond) // store
	r.Transition(ref, StateStoring, StateFree)

	// Abort shortcut: DataReady → Free still finalizes.
	ref = r.Transition(RefNone, StateFree, StateWaiting)
	clk.Advance(time.Millisecond)
	ref = r.Transition(ref, StateWaiting, StateDataReady)
	clk.Advance(time.Millisecond)
	r.Transition(ref, StateDataReady, StateFree)

	snap := reg.Snapshot()
	if got := snap.Counter("path_credit_ns"); got != int64(9*time.Millisecond) {
		t.Errorf("credit = %v", time.Duration(got))
	}
	if got := snap.Counter("path_reassembly_ns"); got != int64(3*time.Millisecond) {
		t.Errorf("reassembly = %v", time.Duration(got))
	}
	if got := snap.Counter("path_store_ns"); got != int64(6*time.Millisecond) {
		t.Errorf("store = %v", time.Duration(got))
	}
	if got := snap.Counter("spans_completed"); got != 2 {
		t.Errorf("spans_completed = %d, want 2", got)
	}
}

func TestSampling(t *testing.T) {
	r, clk, _ := newTestRecorder(t, KindSource, 3)
	sampled := 0
	for i := 0; i < 30; i++ {
		ref := r.Transition(RefNone, StateFree, StateLoading)
		clk.Advance(time.Millisecond)
		if ref != RefNone {
			sampled++
			ref = r.Transition(ref, StateLoading, StateLoaded)
			ref = r.Transition(ref, StateLoaded, StateSending)
			ref = r.Transition(ref, StateSending, StateWaiting)
			r.Transition(ref, StateWaiting, StateFree)
		}
	}
	if sampled != 10 {
		t.Errorf("sample=3 over 30 lifecycles recorded %d, want 10", sampled)
	}
}

func TestSlotExhaustionDrops(t *testing.T) {
	clk := &fakeClock{}
	reg := telemetry.NewRegistry("spans")
	r := New(KindSource, Config{Sample: 1, Slots: 2, Clock: clk.Now, Registry: reg})
	refs := []Ref{
		r.Transition(RefNone, StateFree, StateLoading),
		r.Transition(RefNone, StateFree, StateLoading),
	}
	if refs[0] == RefNone || refs[1] == RefNone {
		t.Fatal("first two lifecycles should claim slots")
	}
	if ref := r.Transition(RefNone, StateFree, StateLoading); ref != RefNone {
		t.Fatal("third concurrent lifecycle should be dropped")
	}
	if got := reg.Snapshot().Counter("spans_dropped"); got != 1 {
		t.Errorf("spans_dropped = %d, want 1", got)
	}
	// Releasing a slot makes the table usable again.
	ref := r.Transition(refs[0], StateLoading, StateFree)
	if ref != RefNone {
		t.Fatal("terminal transition should release")
	}
	if ref := r.Transition(RefNone, StateFree, StateLoading); ref == RefNone {
		t.Fatal("freed slot not reused")
	}
}

func TestDisabledAndNilRecorder(t *testing.T) {
	if r := New(KindSource, Config{Sample: 0}); r != nil {
		t.Fatal("Sample=0 should disable (nil recorder)")
	}
	var r *Recorder
	if ref := r.Transition(RefNone, StateFree, StateLoading); ref != RefNone {
		t.Fatal("nil recorder must return RefNone")
	}
	r.SetKey(RefNone, 1, 2)
	r.SetChannel(RefNone, 0)
	if r.Active() != nil || r.Completed() != nil {
		t.Fatal("nil recorder snapshots must be empty")
	}
}

func TestActiveSeqlockSnapshot(t *testing.T) {
	r, clk, _ := newTestRecorder(t, KindSource, 1)
	ref := r.Transition(RefNone, StateFree, StateLoading)
	r.SetKey(ref, 5, 9)
	clk.Advance(3 * time.Millisecond)
	live := r.Active()
	if len(live) != 1 {
		t.Fatalf("active = %d, want 1", len(live))
	}
	a := live[0]
	if a.Session != 5 || a.Seq != 9 || a.State != "loading" {
		t.Errorf("active span = %+v", a)
	}
	if a.Age != 3*time.Millisecond || a.InState != 3*time.Millisecond {
		t.Errorf("ages = %v/%v", a.Age, a.InState)
	}
	r.Transition(ref, StateLoading, StateFree)
	if len(r.Active()) != 0 {
		t.Error("released span still active")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r, clk, _ := newTestRecorder(t, KindSource, 1)
	ref := r.Transition(RefNone, StateFree, StateLoading)
	r.SetKey(ref, 1, 2)
	clk.Advance(time.Millisecond)
	ref = r.Transition(ref, StateLoading, StateLoaded)
	clk.Advance(time.Millisecond)
	ref = r.Transition(ref, StateLoaded, StateSending)
	ref = r.Transition(ref, StateSending, StateWaiting)
	clk.Advance(time.Millisecond)
	r.Transition(ref, StateWaiting, StateFree)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.Contains(line, `"kind":"source"`) || !strings.Contains(line, `"stages"`) {
		t.Errorf("jsonl line = %s", line)
	}
	var rec Record
	if err := rec.UnmarshalJSON([]byte(line)); err != nil {
		t.Fatal(err)
	}
	if rec.Session != 1 || rec.Seq != 2 {
		t.Errorf("round-trip identity = %+v", rec)
	}
	if rec.Stages()["load"] != time.Millisecond || rec.Stages()["wire"] != time.Millisecond {
		t.Errorf("round-trip stages = %v", rec.Stages())
	}
}

func TestStallTracker(t *testing.T) {
	clk := &fakeClock{}
	reg := telemetry.NewRegistry("source")
	st := NewStallTracker(reg, clk.Now)

	st.Note(CauseLoadPending)
	clk.Advance(10 * time.Millisecond)
	st.Note(CauseLoadPending) // 10ms load-pending
	clk.Advance(5 * time.Millisecond)
	st.Note(CauseCreditStarved) // 5ms more load-pending
	clk.Advance(20 * time.Millisecond)
	st.Note(CauseNone) // 20ms credit-starved
	clk.Advance(time.Hour)
	st.Note(CauseNone) // idle time attributed to nothing

	snap := reg.Snapshot()
	if got := snap.Counter("stall_load_pending_ns"); got != int64(15*time.Millisecond) {
		t.Errorf("load_pending = %v", time.Duration(got))
	}
	if got := snap.Counter("stall_credit_starved_ns"); got != int64(20*time.Millisecond) {
		t.Errorf("credit_starved = %v", time.Duration(got))
	}

	cause, ns, share := TopStall(snap)
	if cause != "credit-starved" || ns != int64(20*time.Millisecond) {
		t.Errorf("TopStall = %s/%v", cause, time.Duration(ns))
	}
	if share < 0.56 || share > 0.58 {
		t.Errorf("TopStall share = %v, want ~20/35", share)
	}
}

func TestTopStallRecursesChildren(t *testing.T) {
	clk := &fakeClock{}
	root := telemetry.NewRegistry("conn")
	src := NewStallTracker(root.Child("source"), clk.Now)
	snk := NewStallTracker(root.Child("sink"), clk.Now)
	src.Note(CauseCreditStarved)
	snk.Note(CauseStorePending)
	clk.Advance(time.Millisecond)
	src.Note(CauseNone)
	clk.Advance(time.Millisecond)
	snk.Note(CauseNone)

	cause, ns, _ := TopStall(root.Snapshot())
	if cause != "store-pending" || ns != int64(2*time.Millisecond) {
		t.Errorf("TopStall over tree = %s/%v", cause, time.Duration(ns))
	}
}

func TestNilStallTracker(t *testing.T) {
	var st *StallTracker
	st.Note(CauseCreditStarved)
	if st.Current() != CauseNone {
		t.Fatal("nil tracker current != none")
	}
}

func TestDecomposition(t *testing.T) {
	reg := telemetry.NewRegistry("source")
	reg.Counter("path_load_ns").Add(610)
	reg.Counter("path_wire_ns").Add(390)
	reg.Counter("unrelated").Add(99)
	d := Decomposition(reg.Snapshot())
	if len(d) != 2 {
		t.Fatalf("decomposition = %v", d)
	}
	if d["load"] != 0.61 || d["wire"] != 0.39 {
		t.Errorf("shares = %v", d)
	}
	if Decomposition(nil) != nil {
		t.Error("nil snapshot should decompose to nil")
	}
}

// BenchmarkTransitionDisabled measures the span cost when recording is
// off: the core FSM guards on a nil recorder, so the per-transition
// cost must be a branch and zero allocations.
func BenchmarkTransitionDisabled(b *testing.B) {
	var r *Recorder
	ref := RefNone
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref = r.Transition(ref, StateFree, StateLoading)
		ref = r.Transition(ref, StateLoading, StateLoaded)
		ref = r.Transition(ref, StateLoaded, StateSending)
		ref = r.Transition(ref, StateSending, StateWaiting)
		ref = r.Transition(ref, StateWaiting, StateFree)
	}
	_ = ref
}

// BenchmarkTransitionUnsampled measures the cost for blocks the 1-in-N
// sampler skips: one counter tick at Free→Loading, branches elsewhere.
func BenchmarkTransitionUnsampled(b *testing.B) {
	clk := &fakeClock{}
	r := New(KindSource, Config{Sample: 1 << 30, Slots: 4, Clock: clk.Now})
	ref := RefNone
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref = r.Transition(ref, StateFree, StateLoading)
		ref = r.Transition(ref, StateLoading, StateLoaded)
		ref = r.Transition(ref, StateLoaded, StateSending)
		ref = r.Transition(ref, StateSending, StateWaiting)
		ref = r.Transition(ref, StateWaiting, StateFree)
	}
	_ = ref
}

// BenchmarkTransitionSampled measures a fully-recorded lifecycle.
func BenchmarkTransitionSampled(b *testing.B) {
	clk := &fakeClock{}
	r := New(KindSource, Config{Sample: 1, Slots: 4, Clock: clk.Now})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref := r.Transition(RefNone, StateFree, StateLoading)
		ref = r.Transition(ref, StateLoading, StateLoaded)
		ref = r.Transition(ref, StateLoaded, StateSending)
		ref = r.Transition(ref, StateSending, StateWaiting)
		r.Transition(ref, StateWaiting, StateFree)
	}
}
