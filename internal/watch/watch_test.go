package watch

import (
	"strings"
	"testing"
	"time"

	"rftp/internal/telemetry"
)

func buildSnap(tx, rx int64) *telemetry.Snapshot {
	root := telemetry.NewRegistry("rftpd")
	conn := root.Child("conn1")
	conn.Counter("bytes_posted").Add(tx)
	conn.Counter("bytes_arrived").Add(rx)
	conn.Gauge("credit_window").Set(24)
	conn.Gauge("credits_outstanding").Set(7)
	conn.Gauge("loads_inflight").Set(3)
	conn.Gauge("stores_inflight").Set(2)
	conn.Gauge("sessions_active").Set(2)
	conn.Gauge("sessions_queued").Set(1)
	conn.Counter("sessions_rejected").Add(3)
	conn.Counter("stall_load_pending_ns").Add(9_000_000)
	conn.Counter("stall_credit_starved_ns").Add(1_000_000)
	conn.Counter("spans_completed").Add(5)
	conn.Counter("path_wire_ns").Add(600)
	conn.Counter("path_load_ns").Add(400)
	sto := conn.Child("storage")
	sto.Gauge("io_inflight").Set(4)
	return root.Snapshot()
}

func TestFrameContents(t *testing.T) {
	r := New()
	at := time.Unix(100, 0)
	first := strings.Join(r.Frame(buildSnap(1<<20, 1<<20), at), "\n")
	for _, want := range []string{
		"goodput", "(total)", "1.00 MiB",
		"window 24 blocks, 7 outstanding",
		"0 blocks, 3 loads, 2 stores, 4 storage ops",
		"sessions    2 active, 1 queued, 3 rejected",
		"top stall   load-pending",
		"90% of attributed stall time",
		"block path  wire 60%, load 40% (5 spans)",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first frame missing %q:\n%s", want, first)
		}
	}

	// Second frame: 1 MiB more in 1 s = 8.39 Mbps = 0.01 Gbps.
	second := strings.Join(r.Frame(buildSnap(2<<20, 2<<20), at.Add(time.Second)), "\n")
	if !strings.Contains(second, "tx   0.01 Gbps") || !strings.Contains(second, "rx   0.01 Gbps") {
		t.Errorf("delta goodput wrong:\n%s", second)
	}
}

func TestFrameEmptySnapshot(t *testing.T) {
	lines := New().Frame(telemetry.NewRegistry("empty").Snapshot(), time.Unix(1, 0))
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "window fixed") || !strings.Contains(joined, "none attributed") {
		t.Errorf("empty frame:\n%s", joined)
	}
}

func TestRenderANSIRedraw(t *testing.T) {
	r := New()
	r.ANSI = true
	var sb strings.Builder
	snap := buildSnap(1<<20, 1<<20)
	if err := r.Render(&sb, snap, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "\x1b[") {
		t.Error("first frame should not move the cursor")
	}
	sb.Reset()
	if err := r.Render(&sb, snap, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "\x1b[6A\x1b[J") {
		t.Errorf("second frame missing redraw prefix: %q", sb.String()[:12])
	}
}

func TestRunStopsOnDone(t *testing.T) {
	r := New()
	var sb strings.Builder
	done := make(chan struct{})
	close(done)
	err := r.Run(&sb, func() (*telemetry.Snapshot, error) { return nil, nil }, time.Millisecond, done)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "waiting for telemetry") {
		t.Errorf("nil snapshot placeholder missing: %q", sb.String())
	}
}
