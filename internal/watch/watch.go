// Package watch renders live transfer forensics from successive
// telemetry snapshots: goodput (byte-counter deltas over the refresh
// interval), the credit window, inflight storage operations,
// session-manager occupancy (active / queued / rejected tenants), the
// critical-path stage decomposition, and the top pipeline stall cause
// from the span layer's stall attributor.
//
// The renderer is shared by `rftpd -watch` (polling the in-process
// registry) and `cmd/rftptop` (polling a remote /debug/telemetry
// endpoint); both redraw one compact frame per second.
package watch

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rftp/internal/spans"
	"rftp/internal/telemetry"
)

// Renderer accumulates snapshot-to-snapshot deltas and renders frames.
// Not safe for concurrent use; drive it from one polling goroutine.
type Renderer struct {
	// ANSI enables in-place redraw (cursor-up + erase); off, frames
	// append (suitable for logs and tests).
	ANSI bool

	prevTx, prevRx int64
	prevAt         time.Time
	frames         int
	lastLines      int
}

// New creates a renderer.
func New() *Renderer { return &Renderer{} }

// tree is the recursive aggregate of one snapshot: watch does not care
// where in the registry tree the protocol counters live (rftpd nests
// them under conn children, rftp keeps them at the root).
type tree struct {
	tx, rx       int64 // bytes_posted / bytes_arrived
	creditWindow int64 // max across tree (a gauge; 0 = unknown/fixed)
	credits      int64 // credits_outstanding + credit_stash
	loads        int64 // loads_inflight
	stores       int64 // stores_inflight
	ioInflight   int64 // storage engine io_inflight
	blocks       int64 // blocks_inflight
	spansDone    int64
	sessActive   int64 // sessions_active (session-manager occupancy)
	sessQueued   int64 // sessions_queued
	sessRejected int64 // sessions_rejected
	pathNs       map[string]int64 // stage -> cumulative ns on the critical path
}

func collect(s *telemetry.Snapshot, t *tree) {
	if s == nil {
		return
	}
	t.tx += s.Counter("bytes_posted")
	t.rx += s.Counter("bytes_arrived")
	t.spansDone += s.Counter("spans_completed")
	t.sessRejected += s.Counter("sessions_rejected")
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "path_") && strings.HasSuffix(name, "_ns") {
			// Channel/session children repeat the totals; only count
			// nodes that also carry the completion counter.
			if s.Counter("spans_completed") > 0 {
				t.pathNs[strings.TrimSuffix(strings.TrimPrefix(name, "path_"), "_ns")] += v
			}
		}
	}
	for name, g := range s.Gauges {
		switch name {
		case "credit_window":
			if g.Value > t.creditWindow {
				t.creditWindow = g.Value
			}
		case "credits_outstanding", "credit_stash":
			t.credits += g.Value
		case "loads_inflight":
			t.loads += g.Value
		case "stores_inflight":
			t.stores += g.Value
		case "io_inflight":
			t.ioInflight += g.Value
		case "blocks_inflight":
			t.blocks += g.Value
		case "sessions_active":
			t.sessActive += g.Value
		case "sessions_queued":
			t.sessQueued += g.Value
		}
	}
	for _, c := range s.Children {
		collect(c, t)
	}
}

// Frame renders one frame from the snapshot taken at the given time.
// The first frame has no rate baseline and reports cumulative totals.
func (r *Renderer) Frame(snap *telemetry.Snapshot, at time.Time) []string {
	t := &tree{pathNs: map[string]int64{}}
	collect(snap, t)

	var lines []string
	if r.frames == 0 || !at.After(r.prevAt) {
		lines = append(lines, fmt.Sprintf("goodput     tx %s  rx %s (total)",
			sizeLabel(t.tx), sizeLabel(t.rx)))
	} else {
		dt := at.Sub(r.prevAt).Seconds()
		lines = append(lines, fmt.Sprintf("goodput     tx %6.2f Gbps  rx %6.2f Gbps",
			float64(t.tx-r.prevTx)*8/dt/1e9, float64(t.rx-r.prevRx)*8/dt/1e9))
	}
	r.prevTx, r.prevRx, r.prevAt = t.tx, t.rx, at
	r.frames++

	credit := "fixed"
	if t.creditWindow > 0 {
		credit = fmt.Sprintf("%d blocks", t.creditWindow)
	}
	lines = append(lines, fmt.Sprintf("credit      window %s, %d outstanding", credit, t.credits))
	lines = append(lines, fmt.Sprintf("inflight    %d blocks, %d loads, %d stores, %d storage ops",
		t.blocks, t.loads, t.stores, t.ioInflight))
	if t.sessActive+t.sessQueued+t.sessRejected > 0 {
		lines = append(lines, fmt.Sprintf("sessions    %d active, %d queued, %d rejected",
			t.sessActive, t.sessQueued, t.sessRejected))
	}

	if cause, ns, share := spans.TopStall(snap); ns > 0 {
		lines = append(lines, fmt.Sprintf("top stall   %s (%s, %d%% of attributed stall time)",
			cause, time.Duration(ns).Round(time.Millisecond), int(share*100)))
	} else {
		lines = append(lines, "top stall   none attributed")
	}

	if t.spansDone > 0 && len(t.pathNs) > 0 {
		var total int64
		stages := make([]string, 0, len(t.pathNs))
		for st := range t.pathNs {
			stages = append(stages, st)
			total += t.pathNs[st]
		}
		sort.Slice(stages, func(i, j int) bool { return t.pathNs[stages[i]] > t.pathNs[stages[j]] })
		parts := make([]string, 0, len(stages))
		for _, st := range stages {
			parts = append(parts, fmt.Sprintf("%s %d%%", st, t.pathNs[st]*100/total))
		}
		lines = append(lines, fmt.Sprintf("block path  %s (%d spans)", strings.Join(parts, ", "), t.spansDone))
	}
	return lines
}

// Render writes one frame, redrawing in place when ANSI is on.
func (r *Renderer) Render(w io.Writer, snap *telemetry.Snapshot, at time.Time) error {
	lines := r.Frame(snap, at)
	var sb strings.Builder
	if r.ANSI && r.lastLines > 0 {
		fmt.Fprintf(&sb, "\x1b[%dA\x1b[J", r.lastLines)
	}
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	r.lastLines = len(lines)
	_, err := io.WriteString(w, sb.String())
	return err
}

// Run polls fetch every interval and renders frames to w until fetch
// returns an error or done is closed. A nil snapshot with nil error
// renders a "waiting" placeholder (server up, telemetry not attached
// yet).
func (r *Renderer) Run(w io.Writer, fetch func() (*telemetry.Snapshot, error), interval time.Duration, done <-chan struct{}) error {
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		snap, err := fetch()
		if err != nil {
			return err
		}
		if snap == nil {
			fmt.Fprintln(w, "waiting for telemetry...")
			r.lastLines = 1
		} else if err := r.Render(w, snap, time.Now()); err != nil {
			return err
		}
		select {
		case <-done:
			return nil
		case <-tick.C:
		}
	}
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
