package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rftp/internal/fabric/simfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// simPipe wires a Source and Sink over the simulated fabric.
type simPipe struct {
	sched   *sim.Scheduler
	srcHost *hostmodel.Host
	dstHost *hostmodel.Host
	srcLoop *hostmodel.Thread
	dstLoop *hostmodel.Thread
	loader  *hostmodel.Thread
	storer  *hostmodel.Thread
	source  *Source
	sink    *Sink
}

func lanLink() simfabric.LinkConfig {
	return simfabric.LinkConfig{RateBps: 40e9, PropDelay: 12500 * time.Nanosecond, MTU: 9000, HeaderBytes: 58}
}

func wanLink() simfabric.LinkConfig {
	return simfabric.LinkConfig{RateBps: 10e9, PropDelay: 24500 * time.Microsecond, MTU: 9000, HeaderBytes: 58}
}

func newSimPipe(t testing.TB, link simfabric.LinkConfig, cfg Config) *simPipe {
	t.Helper()
	p := &simPipe{sched: sim.New(1)}
	fab := simfabric.New(p.sched)
	p.srcHost = hostmodel.NewHost(p.sched, "src", 16, hostmodel.DefaultParams())
	p.dstHost = hostmodel.NewHost(p.sched, "dst", 16, hostmodel.DefaultParams())
	srcDev := fab.NewDevice("sim0", p.srcHost, simfabric.DefaultNICProfile())
	dstDev := fab.NewDevice("sim1", p.dstHost, simfabric.DefaultNICProfile())
	fab.Connect(srcDev, dstDev, link)
	p.srcLoop = p.srcHost.NewThread("src-proto")
	p.dstLoop = p.dstHost.NewThread("dst-proto")
	p.loader = p.srcHost.NewThread("loader")
	p.storer = p.dstHost.NewThread("storer")

	cfg.ModelPayload = true
	ncfg, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	srcEP, err := NewEndpoint(srcDev, p.srcLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	dstEP, err := NewEndpoint(dstDev, p.dstLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		t.Fatal(err)
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.sink, err = NewSink(dstEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.source, err = NewSource(srcEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runTransfer performs one modeled dataset transfer and returns results.
func (p *simPipe) runTransfer(t testing.TB, total int64) (TransferResult, TransferResult) {
	t.Helper()
	var srcRes, sinkRes TransferResult
	srcDone, sinkDone := false, false
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) {
		sinkRes, sinkDone = r, true
	}
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("negotiation: %v", err)
			return
		}
		src := &ModelSource{Total: total, Loader: p.loader, NsPerByte: p.srcHost.Params.MemLoadNsPerByte}
		p.source.Transfer(src, total, func(r TransferResult) { srcRes, srcDone = r, true })
	})
	p.sched.RunAll()
	if !srcDone || !sinkDone {
		t.Fatalf("transfer did not complete: src=%v sink=%v (pending=%d)", srcDone, sinkDone, p.sched.Pending())
	}
	return srcRes, sinkRes
}

func TestSimTransferCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 16
	p := newSimPipe(t, lanLink(), cfg)
	total := int64(256 << 20)
	srcRes, sinkRes := p.runTransfer(t, total)
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: src=%v sink=%v", srcRes.Err, sinkRes.Err)
	}
	if srcRes.Bytes != total || sinkRes.Bytes != total {
		t.Fatalf("bytes: src=%d sink=%d want %d", srcRes.Bytes, sinkRes.Bytes, total)
	}
	wantBlocks := int64(256 << 20 / (1<<20 - 32))
	if sinkRes.Blocks < wantBlocks || sinkRes.Blocks > wantBlocks+2 {
		t.Fatalf("blocks = %d, want ~%d", sinkRes.Blocks, wantBlocks)
	}
}

func TestSimTransferSaturatesLAN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 4 << 20
	cfg.IODepth = 32
	p := newSimPipe(t, lanLink(), cfg)
	total := int64(1 << 30)
	p.runTransfer(t, total)
	st := p.source.Stats()
	bw := st.BandwidthGbps()
	// 40 Gbps link: the protocol must reach at least 85% of line rate.
	if bw < 34 || bw > 40 {
		t.Fatalf("LAN bandwidth = %.1f Gbps, want 34-40", bw)
	}
}

func TestSimTransferSaturatesWANWithDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 4 << 20
	cfg.IODepth = 64
	cfg.SinkBlocks = 128
	p := newSimPipe(t, wanLink(), cfg)
	total := int64(2 << 30)
	p.runTransfer(t, total)
	bw := p.source.Stats().BandwidthGbps()
	// 10 Gbps, 49 ms RTT: BDP = 61 MB; 64 x 4 MiB in flight covers it.
	// Includes the slow-start-like credit ramp, so allow 8+.
	if bw < 8 || bw > 10 {
		t.Fatalf("WAN bandwidth = %.1f Gbps, want 8-10", bw)
	}
}

func TestSimWANShallowDepthStarves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 4
	cfg.SinkBlocks = 8
	p := newSimPipe(t, wanLink(), cfg)
	p.runTransfer(t, 512<<20)
	bw := p.source.Stats().BandwidthGbps()
	// 8 MiB window over a 61 MB BDP path: bandwidth must collapse well
	// below line rate (this is the paper's core argument for deep
	// pipelines).
	if bw > 3 {
		t.Fatalf("shallow depth reached %.1f Gbps; expected starvation <3", bw)
	}
}

func TestSimMultiChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 4
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 32
	p := newSimPipe(t, lanLink(), cfg)
	srcRes, sinkRes := p.runTransfer(t, 256<<20)
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: %v %v", srcRes.Err, sinkRes.Err)
	}
	if sinkRes.Bytes != 256<<20 {
		t.Fatalf("sink bytes = %d", sinkRes.Bytes)
	}
}

func TestSimEmptyDataset(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	srcRes, sinkRes := p.runTransfer(t, 0)
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: %v %v", srcRes.Err, sinkRes.Err)
	}
	if srcRes.Bytes != 0 || sinkRes.Bytes != 0 {
		t.Fatalf("bytes: %d %d", srcRes.Bytes, sinkRes.Bytes)
	}
}

func TestSimSingleShortBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, lanLink(), cfg)
	srcRes, sinkRes := p.runTransfer(t, 1000)
	if srcRes.Bytes != 1000 || sinkRes.Bytes != 1000 {
		t.Fatalf("bytes: %d %d", srcRes.Bytes, sinkRes.Bytes)
	}
	if sinkRes.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", sinkRes.Blocks)
	}
}

func TestSimExactMultipleOfBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1<<20 + 32 // payload capacity exactly 1 MiB
	p := newSimPipe(t, lanLink(), cfg)
	total := int64(8 << 20) // exactly 8 payloads
	srcRes, sinkRes := p.runTransfer(t, total)
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: %v %v", srcRes.Err, sinkRes.Err)
	}
	if sinkRes.Bytes != total {
		t.Fatalf("bytes = %d", sinkRes.Bytes)
	}
}

func TestSimOnDemandCreditsSlower(t *testing.T) {
	run := func(policy CreditPolicy) time.Duration {
		cfg := DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = 16
		cfg.SinkBlocks = 32
		cfg.CreditPolicy = policy
		cfg.OnDemandBatch = 16
		p := newSimPipe(t, wanLink(), cfg)
		p.runTransfer(t, 256<<20)
		return p.source.Stats().Elapsed()
	}
	proactive := run(CreditProactive)
	onDemand := run(CreditOnDemand)
	if onDemand <= proactive {
		t.Fatalf("on-demand (%v) not slower than proactive (%v) on the WAN", onDemand, proactive)
	}
}

func TestSimOnDemandStallsCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CreditPolicy = CreditOnDemand
	p := newSimPipe(t, lanLink(), cfg)
	p.runTransfer(t, 64<<20)
	if p.source.Stats().CreditStalls == 0 {
		t.Fatal("on-demand policy recorded no credit stalls")
	}
}

func TestSimProactiveFewStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 16
	cfg.SinkBlocks = 64
	p := newSimPipe(t, lanLink(), cfg)
	p.runTransfer(t, 256<<20)
	st := p.source.Stats()
	// With active feedback the source should essentially never block on
	// credits in a LAN.
	if st.CreditStalls > st.Blocks/10 {
		t.Fatalf("proactive policy stalled %d times over %d blocks", st.CreditStalls, st.Blocks)
	}
}

func TestSimMultipleSequentialTransfers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, lanLink(), cfg)
	var results []TransferResult
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		var next func(i int)
		next = func(i int) {
			if i == 3 {
				return
			}
			src := &ModelSource{Total: 32 << 20, Loader: p.loader, NsPerByte: 0.16}
			p.source.Transfer(src, 32<<20, func(r TransferResult) {
				results = append(results, r)
				next(i + 1)
			})
		}
		next(0)
	})
	p.sched.RunAll()
	if len(results) != 3 {
		t.Fatalf("completed %d transfers, want 3", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Bytes != 32<<20 {
			t.Fatalf("transfer %d: %+v", i, r)
		}
	}
}

func TestSimConcurrentSessions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 32
	p := newSimPipe(t, lanLink(), cfg)
	got := map[uint32]TransferResult{}
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			src := &ModelSource{Total: 64 << 20, Loader: p.loader, NsPerByte: 0.16}
			p.source.Transfer(src, 64<<20, func(r TransferResult) { got[r.Session] = r })
		}
	})
	p.sched.RunAll()
	if len(got) != 3 {
		t.Fatalf("finished %d sessions, want 3", len(got))
	}
	for id, r := range got {
		if r.Err != nil || r.Bytes != 64<<20 {
			t.Fatalf("session %d: %+v", id, r)
		}
	}
}

func TestSimLoaderErrorAbortsSession(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	injected := errors.New("disk on fire")
	var srcRes TransferResult
	var sinkRes TransferResult
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { sinkRes = r }
	p.source.Start(func(err error) {
		p.source.Transfer(newFailingSource(3, injected, p.loader), 0,
			func(r TransferResult) { srcRes = r })
	})
	p.sched.RunAll()
	if !errors.Is(srcRes.Err, injected) {
		t.Fatalf("source error = %v, want injected", srcRes.Err)
	}
	if !errors.Is(sinkRes.Err, ErrAborted) {
		t.Fatalf("sink error = %v, want ErrAborted", sinkRes.Err)
	}
}

// newFailingSource returns a BlockSource that loads `after` good blocks
// then fails with err.
func newFailingSource(after int, err error, loader *hostmodel.Thread) BlockSource {
	n := 0
	return loadFunc(func(p []byte, capacity int, done func(int, bool, error)) {
		n++
		if n > after {
			loader.Post(0, func() { done(0, false, err) })
			return
		}
		loader.Post(0, func() { done(capacity, false, nil) })
	})
}

type loadFunc func([]byte, int, func(int, bool, error))

func (f loadFunc) Load(p []byte, capacity int, done func(int, bool, error)) { f(p, capacity, done) }

func TestSimStoreErrorAbortsSession(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	injected := errors.New("sink disk full")
	p.sink.NewWriter = func(SessionInfo) BlockSink {
		n := 0
		return storeFunc(func(hdrSeq, modelLen int, done func(error)) {
			n++
			if n > 2 {
				p.storer.Post(0, func() { done(injected) })
				return
			}
			p.storer.Post(0, func() { done(nil) })
		})
	}
	var srcRes, sinkRes TransferResult
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { sinkRes = r }
	p.source.Start(func(err error) {
		src := &ModelSource{Total: 64 << 20, Loader: p.loader, NsPerByte: 0.16}
		p.source.Transfer(src, 64<<20, func(r TransferResult) { srcRes = r })
	})
	p.sched.RunAll()
	if !errors.Is(sinkRes.Err, injected) {
		t.Fatalf("sink error = %v", sinkRes.Err)
	}
	if srcRes.Err == nil {
		t.Fatal("source did not observe the abort")
	}
}

// storeFunc adapts a closure to BlockSink (header reduced to seq for
// brevity).
type storeFunc func(hdrSeq, modelLen int, done func(error))

func (f storeFunc) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	f(int(hdr.Seq), modelLen, done)
}

func TestSimChannelMismatchRejected(t *testing.T) {
	// Source asks for 2 channels; endpoints only have 1 wired: the
	// channel negotiation must reject.
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	// Corrupt the source's view: pretend it wants 3 channels.
	p.source.cfg.Channels = 3
	var negoErr error
	p.source.Start(func(err error) { negoErr = err })
	p.sched.RunAll()
	if !errors.Is(negoErr, ErrNegotiationRejected) {
		t.Fatalf("negotiation error = %v, want rejection", negoErr)
	}
}

func TestSimBlockSizeOutOfRangeRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 300 << 20 // above the sink's 256 MiB cap
	p := newSimPipe(t, lanLink(), cfg)
	var negoErr error
	p.source.Start(func(err error) { negoErr = err })
	p.sched.RunAll()
	if !errors.Is(negoErr, ErrNegotiationRejected) {
		t.Fatalf("negotiation error = %v, want rejection", negoErr)
	}
}

func TestSimCreditConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 8
	cfg.SinkBlocks = 16
	p := newSimPipe(t, lanLink(), cfg)
	p.runTransfer(t, 128<<20)
	// After a completed transfer every sink block must be back in the
	// free pool: credits granted == blocks consumed + unused outstanding,
	// and the pool must be whole.
	if free := p.sink.pool.countState(BlockFree); free+p.sink.granted != cfg.SinkBlocks {
		t.Fatalf("pool leak: %d free + %d granted != %d", free, p.sink.granted, cfg.SinkBlocks)
	}
	srcStats, sinkStats := p.source.Stats(), p.sink.Stats()
	if srcStats.Blocks != sinkStats.Blocks {
		t.Fatalf("block count mismatch: src %d sink %d", srcStats.Blocks, sinkStats.Blocks)
	}
	if sinkStats.CreditsGranted < srcStats.Blocks {
		t.Fatalf("granted %d credits for %d blocks", sinkStats.CreditsGranted, srcStats.Blocks)
	}
}

func TestSimExponentialRamp(t *testing.T) {
	// With GrantPerConsume=2 the sink's outstanding credits must grow
	// multiplicatively early in the WAN transfer; with 1 they grow only
	// via the initial grant. Compare ramp times to first full window.
	rampTime := func(grant int) time.Duration {
		cfg := DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = 64
		cfg.SinkBlocks = 128
		cfg.GrantPerConsume = grant
		p := newSimPipe(t, wanLink(), cfg)
		p.runTransfer(t, 512<<20)
		return p.source.Stats().Elapsed()
	}
	exp := rampTime(2)
	lin := rampTime(1)
	if lin <= exp {
		t.Fatalf("linear grant (%v) not slower than exponential (%v)", lin, exp)
	}
}

func TestSimZeroChannelEndpoint(t *testing.T) {
	s := sim.New(1)
	fab := simfabric.New(s)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	dev := fab.NewDevice("d", h, simfabric.DefaultNICProfile())
	_ = dev
	if _, err := NewEndpoint(dev, h.NewThread("l"), 0, 8); err == nil {
		t.Fatal("0-channel endpoint created")
	}
}

func TestSimSourceChannelConfigMismatch(t *testing.T) {
	s := sim.New(1)
	fab := simfabric.New(s)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	dev := fab.NewDevice("d", h, simfabric.DefaultNICProfile())
	ep, err := NewEndpoint(dev, h.NewThread("l"), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Channels = 2
	if _, err := NewSource(ep, cfg); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	_ = verbs.RC
}

func TestTraceCapturesProtocolEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, lanLink(), cfg)
	srcRing := trace.NewRing(512, p.sched.Now)
	sinkRing := trace.NewRing(512, p.sched.Now)
	p.source.Trace = srcRing
	p.sink.Trace = sinkRing
	p.runTransfer(t, 64<<20)

	srcMsgs := ""
	for _, e := range srcRing.Events() {
		srcMsgs += e.String() + "\n"
	}
	for _, want := range []string{"nego_start", "nego_complete", "session_open sess=1", "complete_ack sess=1"} {
		if !strings.Contains(srcMsgs, want) {
			t.Fatalf("source trace missing %q:\n%s", want, srcMsgs)
		}
	}
	sinkMsgs := ""
	for _, e := range sinkRing.Events() {
		sinkMsgs += e.String() + "\n"
	}
	for _, want := range []string{"blocksize_accepted", "session_accept sess=1", "grant_", "session_complete sess=1"} {
		if !strings.Contains(sinkMsgs, want) {
			t.Fatalf("sink trace missing %q:\n%s", want, sinkMsgs)
		}
	}
	if len(srcRing.Filter(trace.CatBlock)) == 0 || len(sinkRing.Filter(trace.CatBlock)) == 0 {
		t.Fatal("no block events traced")
	}
	if len(srcRing.Filter(trace.CatError)) != 0 {
		t.Fatal("clean transfer traced errors")
	}
}

func TestOnProgressMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, lanLink(), cfg)
	var reports []int64
	p.source.OnProgress = func(session uint32, bytes int64) {
		if session != 1 {
			t.Errorf("progress for session %d", session)
		}
		reports = append(reports, bytes)
	}
	total := int64(64 << 20)
	p.runTransfer(t, total)
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] <= reports[i-1] {
			t.Fatalf("progress not monotonic at %d: %v", i, reports[i-1:i+1])
		}
	}
	if reports[len(reports)-1] != total {
		t.Fatalf("final progress = %d, want %d", reports[len(reports)-1], total)
	}
}
