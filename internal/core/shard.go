package core

// Reactor sharding: the data hot path — posting WRITEs, taking their
// completions, and validating arrivals — runs on per-channel reactor
// shards, while the control plane (negotiation, credits, sessions,
// ordering, storage) stays single-threaded on shard 0's loop. Blocks
// move between the control plane and a shard through single-producer
// single-consumer mailboxes; a block is owned by exactly one loop at a
// time, and ownership transfers only through a mailbox, whose atomic
// ring publishes every field written by the previous owner. That
// ownership discipline is what lets shards call setState and stamp
// spans without locks (the loopconfine static pass polices the
// call-site side of the same rule).
//
// Shard 0 shares the control loop, so its mailboxes degenerate to
// direct calls: a one-shard endpoint executes exactly the classic
// single-reactor sequence, and multi-shard endpoints change scheduling
// but not protocol order within a channel.

import (
	"fmt"
	"sync/atomic"

	"rftp/internal/ringq"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// mailbox carries block-ownership handoffs from one loop to another.
// The producer and consumer loops are fixed at construction; when they
// are the same loop the handler runs inline, preserving the exact
// call ordering of the unsharded reactor.
type mailbox[T any] struct {
	q       *ringq.SPSC[T]
	loop    verbs.Loop
	handler func(T)
	inline  bool
	// scheduled implements the wakeup protocol: a producer that
	// transitions it false→true posts one drain; drain clears it before
	// consuming, so a push that loses the race still gets drained by
	// the pending run.
	scheduled atomic.Bool
	drainFn   func()
}

func newMailbox[T any](loop verbs.Loop, inline bool, capacity int, handler func(T)) *mailbox[T] {
	m := &mailbox[T]{q: ringq.NewSPSC[T](capacity), loop: loop, inline: inline, handler: handler}
	m.drainFn = m.drain
	return m
}

// send transfers v (and ownership of anything it references) to the
// consumer loop. Producer side only.
func (m *mailbox[T]) send(v T) {
	if m.inline {
		m.handler(v)
		return
	}
	m.q.Push(v)
	if m.scheduled.CompareAndSwap(false, true) {
		m.loop.Post(0, m.drainFn)
	}
}

func (m *mailbox[T]) drain() {
	m.scheduled.Store(false)
	for {
		v, ok := m.q.Pop()
		if !ok {
			return
		}
		m.handler(v)
	}
}

// srcEvKind discriminates shard→control events on the source.
type srcEvKind uint8

const (
	// srcEvWriteDone: a posted WRITE completed (any status); the block
	// returns to the control plane with the completion status.
	srcEvWriteDone srcEvKind = iota
	// srcEvPostFull: PostSend hit ErrSendQueueFull; the block was
	// reverted to Loaded and returns for requeueing.
	srcEvPostFull
	// srcEvPostErr: PostSend failed fatally for this channel.
	srcEvPostErr
)

type srcEvent struct {
	kind   srcEvKind
	b      *block
	status verbs.Status
	err    error
}

// srcShard owns a disjoint group of the source's data channels: it
// posts WRITEs handed over by the control plane (Sending→Waiting) and
// forwards their completions back. Its completion queue lives on its
// own loop, so on modeled hosts the per-block doorbell, completion and
// interrupt costs land on the shard's core.
type srcShard struct {
	s     *Source
	idx   int
	loop  verbs.Loop
	inbox *mailbox[*block]   // control → shard: Sending blocks to post
	out   *mailbox[srcEvent] // shard → control
	wr    verbs.SendWR       // reused post WR (PostSend copies)
}

func newSrcShard(s *Source, idx int, capacity int) *srcShard {
	sh := &srcShard{s: s, idx: idx, loop: s.ep.Shards[idx]}
	inline := idx == 0
	sh.inbox = newMailbox(sh.loop, inline, capacity, sh.post)
	sh.out = newMailbox(s.ep.Loop, inline, capacity, s.onShardEvent)
	s.ep.DataCQs[idx].SetHandler(sh.onDataWC)
	return sh
}

// post sends one block down its channel. The block arrives owned by
// this shard in Sending state with credit and channel already chosen.
func (sh *srcShard) post(b *block) {
	s := sh.s
	hdr := wire.BlockHeader{
		Session: b.session, Seq: b.seq, Offset: b.offset,
		PayloadLen: uint32(b.payloadLen), Last: b.last,
	}
	wr := &sh.wr
	*wr = verbs.SendWR{
		WRID:   uint64(b.idx),
		Op:     verbs.OpWrite,
		Remote: wire2remote(b.credit),
	}
	if s.cfg.NotifyViaImm {
		// The immediate value names the consumed region; the sink
		// reads everything else from the block header it owns.
		wr.Op = verbs.OpWriteImm
		wr.Imm = b.credit.RKey
	}
	if s.cfg.ModelPayload {
		wire.EncodeBlockHeader(b.hdrBuf[:], hdr)
		wr.Data = b.hdrBuf[:]
		wr.ModelBytes = b.payloadLen
	} else {
		wire.EncodeBlockHeader(b.mr.Buf, hdr)
		wr.Data = b.mr.Buf[:wire.BlockHeaderSize+b.payloadLen]
	}
	if err := s.ep.Data[b.chIdx].PostSend(wr); err != nil {
		b.setState(BlockLoaded)
		if err == verbs.ErrSendQueueFull {
			sh.out.send(srcEvent{kind: srcEvPostFull, b: b})
		} else {
			sh.out.send(srcEvent{kind: srcEvPostErr, b: b, err: err})
		}
		return
	}
	b.setState(BlockWaiting)
	b.spans.SetChannel(b.spanRef, b.chIdx)
	s.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "posted",
		Session: b.session, Block: b.seq, Channel: int32(b.chIdx), V1: int64(b.payloadLen)})
	if t := s.tel; t != nil {
		b.tPost = sh.loop.Now()
		t.creditWait.Observe(int64(b.tPost - b.tReady))
		t.blocksPosted.Inc()
		t.bytesPosted.Add(int64(b.payloadLen))
		t.chBlocks[b.chIdx].Inc()
		t.chBytes[b.chIdx].Add(int64(b.payloadLen))
	}
}

// onDataWC forwards a WRITE completion to the control plane. Every
// completion names a block this shard posted (one WC per post), so the
// block is shard-owned here and the ownership handoff through out
// publishes it back.
func (sh *srcShard) onDataWC(wc verbs.WC) {
	s := sh.s
	if s.dead.Load() {
		return
	}
	b := s.pool.byIdx(int(wc.WRID))
	if b == nil || b.state != BlockWaiting {
		return // stale completion after failure handling
	}
	sh.out.send(srcEvent{kind: srcEvWriteDone, b: b, status: wc.Status})
}

// sinkEvKind discriminates shard→control events on the sink.
type sinkEvKind uint8

const (
	// sinkEvArrived: a WRITE WITH IMMEDIATE landed, the block was
	// validated and moved Waiting→DataReady on the shard; the control
	// plane takes over reassembly and crediting.
	sinkEvArrived sinkEvKind = iota
	// sinkEvFetched: a pull-mode READ completed, the fetched header was
	// validated and the block moved Fetching→DataReady on the shard; the
	// control plane notifies the source and takes over reassembly.
	sinkEvFetched
	// sinkEvReadErr: PostSend for a READ failed; the block was reverted
	// to Free and returns with the error for requeue-or-fail triage.
	sinkEvReadErr
	// sinkEvFail: a fatal data-path error detected on the shard.
	sinkEvFail
)

type sinkEvent struct {
	kind sinkEvKind
	b    *block
	err  error
}

// sinkShard owns a disjoint group of the sink's data channels in
// immediate-notification mode: it takes WRITE WITH IMMEDIATE
// completions, replenishes the notify receive ring, validates the
// arrival against the named region, and hands the data-ready block to
// the control plane. (Explicit-notification mode delivers arrivals on
// the control QP, so sink shards then see only flushes.)
type sinkShard struct {
	k       *Sink
	idx     int
	loop    verbs.Loop
	out     *mailbox[sinkEvent] // shard → control
	fetchIn *mailbox[*block]    // control → shard: Fetching blocks to READ
	chOf    map[verbs.QPID]int  // data QP id → channel index (read-only)
	rdWR    verbs.SendWR        // reused READ WR (PostSend copies)
}

func newSinkShard(k *Sink, idx int, capacity int) *sinkShard {
	sh := &sinkShard{k: k, idx: idx, loop: k.ep.Shards[idx], chOf: make(map[verbs.QPID]int)}
	sh.out = newMailbox(k.ep.Loop, idx == 0, capacity, k.onShardEvent)
	sh.fetchIn = newMailbox(sh.loop, idx == 0, capacity, sh.postRead)
	for ch, qp := range k.ep.Data {
		if k.ep.shardIndex(ch) == idx {
			sh.chOf[qp.ID()] = ch
		}
	}
	k.ep.DataCQs[idx].SetHandler(sh.onDataWC)
	return sh
}

func (sh *sinkShard) onDataWC(wc verbs.WC) {
	k := sh.k
	if k.dead.Load() || wc.Status == verbs.StatusFlushed {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("core: data QP failure: %v", wc.Status)})
		return
	}
	if wc.Op == verbs.OpRead {
		sh.readWC(wc)
		return
	}
	if wc.Op != verbs.OpWriteImm {
		return
	}
	// Replenish the consumed notification receive on the same QP.
	if ch, ok := sh.chOf[wc.QP]; ok {
		if err := k.ep.repostDataNotifyRecv(ch, wc.WRID); err != nil && err != ErrClosed {
			sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("core: reposting notify recv: %w", err)})
			return
		}
	}
	sh.handleImmNotify(wc)
}

// handleImmNotify processes a WRITE WITH IMMEDIATE arrival: the
// immediate value is the rkey of the consumed region. The credit grant
// happened-before the source's WRITE, which happened-before this
// completion, so the granted block's fields (and the pool pointer
// itself) are visible here, and a valid arrival transfers the block's
// ownership from the wire to this shard.
func (sh *sinkShard) handleImmNotify(wc verbs.WC) {
	k := sh.k
	pool := k.pool
	if pool == nil {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: immediate notification before negotiation", ErrProtocol)})
		return
	}
	b := pool.byRKey(wc.Imm)
	if b == nil || b.state != BlockWaiting {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: immediate for unknown or non-waiting region rkey=%d", ErrProtocol, wc.Imm)})
		return
	}
	hdr, err := wire.DecodeBlockHeader(b.mr.ViewLocal(0, wire.BlockHeaderSize))
	if err != nil {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: undecodable block header: %v", ErrProtocol, err)})
		return
	}
	if int(hdr.PayloadLen)+wire.BlockHeaderSize != wc.ByteLen {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: header length %d does not match WRITE length %d",
			ErrProtocol, hdr.PayloadLen, wc.ByteLen)})
		return
	}
	if hdr.Session != b.session {
		// The owner stamp was written at grant time, before the credit
		// left the sink, so it is visible here; a mismatch means one
		// tenant's block landed in another's region.
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: session %d's block landed in session %d's region rkey=%d",
			ErrProtocol, hdr.Session, b.session, wc.Imm)})
		return
	}
	k.arrive(b, hdr)
	sh.out.send(sinkEvent{kind: sinkEvArrived, b: b})
}

// postRead issues one pull-mode RDMA READ. The block arrives owned by
// this shard in Fetching state with the advertised remote region in
// its credit field and the channel already chosen by the control
// plane (which also enforces the per-channel initiator-depth bound).
func (sh *sinkShard) postRead(b *block) {
	k := sh.k
	wr := &sh.rdWR
	*wr = verbs.SendWR{
		WRID:    uint64(b.idx),
		Op:      verbs.OpRead,
		Remote:  wire2remote(b.credit),
		Local:   b.mr,
		ReadLen: wire.BlockHeaderSize + b.payloadLen,
	}
	if err := k.ep.Data[b.chIdx].PostSend(wr); err != nil {
		b.setState(BlockFree)
		sh.out.send(sinkEvent{kind: sinkEvReadErr, b: b, err: err})
		return
	}
	b.spans.SetChannel(b.spanRef, b.chIdx)
	k.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "read_posted",
		Session: b.session, Block: b.seq, Channel: int32(b.chIdx), V1: int64(b.payloadLen)})
	if k.tel != nil {
		b.tPost = sh.loop.Now()
	}
}

// readWC validates a completed READ against the advertisement the
// block was stamped from: the fetched header must name the same
// session, sequence, and length the source advertised. The block was
// shard-owned since postRead (one WC per READ), so the DataReady
// transition happens here and the handoff publishes it back.
func (sh *sinkShard) readWC(wc verbs.WC) {
	k := sh.k
	pool := k.pool
	if pool == nil {
		return
	}
	b := pool.byIdx(int(wc.WRID))
	if b == nil || b.state != BlockFetching {
		return // stale completion after failure handling
	}
	hdr, err := wire.DecodeBlockHeader(b.mr.ViewLocal(0, wire.BlockHeaderSize))
	if err != nil {
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: undecodable fetched header: %v", ErrProtocol, err)})
		return
	}
	if hdr.Session != b.session || hdr.Seq != b.seq || int(hdr.PayloadLen) != b.payloadLen {
		// The advertised region's content changed between advert and
		// READ: the source must keep an advertised block frozen until
		// READ_DONE, so this is always a source-side protocol bug.
		sh.out.send(sinkEvent{kind: sinkEvFail, err: fmt.Errorf("%w: fetched header %d/%d/%d does not match advert %d/%d/%d",
			ErrProtocol, hdr.Session, hdr.Seq, hdr.PayloadLen, b.session, b.seq, b.payloadLen)})
		return
	}
	k.arrive(b, hdr)
	sh.out.send(sinkEvent{kind: sinkEvFetched, b: b})
}
