package core

import (
	"fmt"

	"rftp/internal/telemetry"
)

// grantReason classifies why the sink issued credits, mirroring the
// paper's credit policies: the initial window at session setup, the
// active-feedback grant per consumed block, the re-advertise-on-free
// extension, and the explicit on-demand request path.
type grantReason uint8

const (
	grantInitial grantReason = iota
	grantOnConsume
	grantOnFree
	grantOnDemand

	// grantReasons sizes per-reason arrays.
	grantReasons = int(grantOnDemand) + 1
)

func (r grantReason) String() string {
	switch r {
	case grantInitial:
		return "initial"
	case grantOnConsume:
		return "on_consume"
	case grantOnFree:
		return "on_free"
	case grantOnDemand:
		return "on_demand"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// reassemblyBuckets bounds the sink's out-of-order occupancy histogram
// (how many data-ready blocks wait on the in-order delivery cursor).
func reassemblyBuckets() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// creditBatchBuckets spans the credit-coalescer's batch sizes, 1 (no
// coalescing) through wire.MaxCreditsPerMsg.
func creditBatchBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64}
}

// sourceTelemetry holds the source's metric handles, resolved once at
// attach time so hot paths touch atomics directly. A nil
// *sourceTelemetry disables everything at the cost of one branch.
type sourceTelemetry struct {
	reg *telemetry.Registry

	blocksPosted *telemetry.Counter
	bytesPosted  *telemetry.Counter
	retransmits  *telemetry.Counter
	creditStalls *telemetry.Counter
	creditsRecv  *telemetry.Counter
	ctrlMsgs     *telemetry.Counter
	inflight     *telemetry.Gauge
	creditStash  *telemetry.Gauge
	// loadsInflight tracks Loads issued but not completed across all
	// sessions (the storage pipeline depth actually achieved; bounded by
	// Config.LoadDepth per session).
	loadsInflight *telemetry.Gauge

	// Pull-mode: blocks advertised to the sink (cumulative), blocks
	// currently advertised and not yet fetched, and push<->pull mode
	// transitions completed by the hybrid controller.
	advertsPosted      *telemetry.Counter
	advertsOutstanding *telemetry.Gauge
	modeSwitches       *telemetry.Counter

	// FSM residency: Loading→Loaded, Loaded→Sending (credit+channel
	// wait), and post→completion round trip.
	loadLatency *telemetry.Histogram
	creditWait  *telemetry.Histogram
	postLatency *telemetry.Histogram

	chBlocks []*telemetry.Counter
	chBytes  []*telemetry.Counter
}

// AttachTelemetry wires the source to a registry. Call before Start,
// from the loop or before any fabric activity. A nil registry detaches.
func (s *Source) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	t := &sourceTelemetry{
		reg:                reg,
		blocksPosted:       reg.Counter("blocks_posted"),
		bytesPosted:        reg.Counter("bytes_posted"),
		retransmits:        reg.Counter("retransmits"),
		creditStalls:       reg.Counter("credit_stalls"),
		creditsRecv:        reg.Counter("credits_received"),
		ctrlMsgs:           reg.Counter("ctrl_msgs"),
		inflight:           reg.Gauge("blocks_inflight"),
		creditStash:        reg.Gauge("credit_stash"),
		loadsInflight:      reg.Gauge("loads_inflight"),
		advertsPosted:      reg.Counter("adverts_posted"),
		advertsOutstanding: reg.Gauge("adverts_outstanding"),
		modeSwitches:       reg.Counter("mode_switches"),
		loadLatency:        reg.Histogram("load_latency", telemetry.DurationBuckets()...),
		creditWait:         reg.Histogram("credit_wait", telemetry.DurationBuckets()...),
		postLatency:        reg.Histogram("post_latency", telemetry.DurationBuckets()...),
	}
	for i := range s.ep.Data {
		ch := reg.Child(fmt.Sprintf("chan%d", i))
		t.chBlocks = append(t.chBlocks, ch.Counter("blocks"))
		t.chBytes = append(t.chBytes, ch.Counter("bytes"))
	}
	s.tel = t
}

// Telemetry returns the attached registry (nil when detached).
func (s *Source) Telemetry() *telemetry.Registry {
	if s.tel == nil {
		return nil
	}
	return s.tel.reg
}

// sinkTelemetry mirrors sourceTelemetry for the receive side.
type sinkTelemetry struct {
	reg *telemetry.Registry

	blocksArrived *telemetry.Counter
	bytesArrived  *telemetry.Counter
	ctrlMsgs      *telemetry.Counter
	granted       *telemetry.Gauge
	// storesInflight tracks Stores issued but not completed across all
	// sessions (bounded by Config.StoreDepth per session).
	storesInflight *telemetry.Gauge
	// pendingGrants is the coalescer's unflushed batch; creditWindow is
	// the current adaptive (or overridden) target for credits
	// outstanding at the source.
	pendingGrants *telemetry.Gauge
	creditWindow  *telemetry.Gauge
	// Session-manager occupancy: sessions admitted and in the scheduler
	// rotation, SESSION_REQs parked in the admission queue, and requests
	// turned away busy.
	sessionsActive   *telemetry.Gauge
	sessionsQueued   *telemetry.Gauge
	sessionsRejected *telemetry.Counter

	// grants[reason] counts credits issued under each policy leg.
	grants [grantReasons]*telemetry.Counter

	// Pull-mode: RDMA READs posted (cumulative), READs currently on the
	// wire across all channels, and push<->pull transitions completed.
	readsPosted   *telemetry.Counter
	readsInflight *telemetry.Gauge
	modeSwitches  *telemetry.Counter

	// creditLatency is grant→consume (the credit's round trip through
	// the source); storeLatency is data-ready→stored; reassembly is the
	// out-of-order occupancy observed at each arrival; creditBatchSize
	// is credits per MR_INFO_RESPONSE (the coalescer's yield).
	creditLatency   *telemetry.Histogram
	storeLatency    *telemetry.Histogram
	reassembly      *telemetry.Histogram
	creditBatchSize *telemetry.Histogram
}

// AttachTelemetry wires the sink to a registry. Call before the peer's
// Source starts. A nil registry detaches.
func (k *Sink) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		k.tel = nil
		return
	}
	t := &sinkTelemetry{
		reg:              reg,
		blocksArrived:    reg.Counter("blocks_arrived"),
		bytesArrived:     reg.Counter("bytes_arrived"),
		ctrlMsgs:         reg.Counter("ctrl_msgs"),
		granted:          reg.Gauge("credits_outstanding"),
		storesInflight:   reg.Gauge("stores_inflight"),
		pendingGrants:    reg.Gauge("pending_grants"),
		creditWindow:     reg.Gauge("credit_window"),
		sessionsActive:   reg.Gauge("sessions_active"),
		sessionsQueued:   reg.Gauge("sessions_queued"),
		sessionsRejected: reg.Counter("sessions_rejected"),
		readsPosted:      reg.Counter("reads_posted"),
		readsInflight:    reg.Gauge("reads_inflight"),
		modeSwitches:     reg.Counter("mode_switches"),
		creditLatency:    reg.Histogram("credit_latency", telemetry.DurationBuckets()...),
		storeLatency:     reg.Histogram("store_latency", telemetry.DurationBuckets()...),
		reassembly:       reg.Histogram("reassembly_occupancy", reassemblyBuckets()...),
		creditBatchSize:  reg.Histogram("credit_batch_size", creditBatchBuckets()...),
	}
	for r := grantInitial; r <= grantOnDemand; r++ {
		t.grants[r] = reg.Counter("grants_" + r.String())
	}
	k.tel = t
}

// Telemetry returns the attached registry (nil when detached).
func (k *Sink) Telemetry() *telemetry.Registry {
	if k.tel == nil {
		return nil
	}
	return k.tel.reg
}

// sessionCounters resolves the per-session byte/block counters lazily
// (sessions are created while telemetry may be attached or not).
func (t *sinkTelemetry) sessionCounters(id uint32) (bytes, blocks *telemetry.Counter) {
	sess := t.reg.Child(fmt.Sprintf("sess%d", id))
	return sess.Counter("bytes"), sess.Counter("blocks")
}

// sessionSchedWait resolves the per-session scheduler-wait counter:
// time the tenant sat with zero outstanding credits waiting for the
// DRR scheduler to feed it. Named stall_sched_wait_ns so
// spans.TopStall's recursive scan attributes it like any other stall.
func (t *sinkTelemetry) sessionSchedWait(id uint32) *telemetry.Counter {
	return t.reg.Child(fmt.Sprintf("sess%d", id)).Counter("stall_sched_wait_ns")
}

// IOMetrics instruments a storage engine feeding the protocol
// (internal/storage or any custom BlockSource/BlockSink): jobs in
// flight at the device, time each job waited queued before a worker
// picked it up, and time the device operation itself took. Queue wait
// growing while device time stays flat means the pipeline is deeper
// than the device can absorb; the reverse means the device is the
// bottleneck and more depth would overlap its latency.
type IOMetrics struct {
	InFlight   *telemetry.Gauge
	QueueWait  *telemetry.Histogram
	DeviceTime *telemetry.Histogram
}

// NewIOMetrics resolves engine metric handles under reg (conventionally
// a Child registry named "srcio" or "sinkio").
func NewIOMetrics(reg *telemetry.Registry) *IOMetrics {
	return &IOMetrics{
		InFlight:   reg.Gauge("io_inflight"),
		QueueWait:  reg.Histogram("io_queue_wait", telemetry.DurationBuckets()...),
		DeviceTime: reg.Histogram("io_device_time", telemetry.DurationBuckets()...),
	}
}
