package core

import (
	"bytes"
	"testing"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/spans"
	"rftp/internal/telemetry"
)

// TestSpanStateMirror pins the numeric correspondence between
// core.BlockState and the mirrored constants in internal/spans (spans
// cannot import core, so the values are duplicated there).
func TestSpanStateMirror(t *testing.T) {
	pairs := []struct {
		core BlockState
		span uint8
	}{
		{BlockFree, spans.StateFree},
		{BlockLoading, spans.StateLoading},
		{BlockLoaded, spans.StateLoaded},
		{BlockSending, spans.StateSending},
		{BlockWaiting, spans.StateWaiting},
		{BlockDataReady, spans.StateDataReady},
		{BlockStoring, spans.StateStoring},
	}
	for _, p := range pairs {
		if uint8(p.core) != p.span {
			t.Errorf("state %v = %d, spans mirror = %d", p.core, uint8(p.core), p.span)
		}
		if p.core.String() != spans.StateName(p.span) {
			t.Errorf("state name %q != spans %q", p.core.String(), spans.StateName(p.span))
		}
	}
}

// TestChanSpansEndToEnd runs a chanfabric transfer with span recording
// at sample=1 on both ends and checks that the recorded critical path
// is complete: every block contributes a span, each source stage is
// observed, (session, seq, channel) identity is captured, and the sink
// decomposition covers credit/reassembly/store.
func TestChanSpansEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.Channels = 2
	cfg.IODepth = 8
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	srcReg := telemetry.NewRegistry("source")
	sinkReg := telemetry.NewRegistry("sink")
	p.srcLoop.Post(0, func() { p.source.AttachSpans(srcReg, 1) })
	p.dstLoop.Post(0, func() { p.sink.AttachSpans(sinkReg, 1) })

	data := randBytes(2<<20+123, 7)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}

	wantBlocks := (int64(len(data)) + int64(cfg.PayloadCapacity()) - 1) / int64(cfg.PayloadCapacity())
	src := srcReg.Snapshot()
	sink := sinkReg.Snapshot()

	if got := src.Counter("spans_completed"); got != wantBlocks {
		t.Fatalf("source spans_completed = %d, want %d", got, wantBlocks)
	}
	if got := src.Counter("spans_dropped"); got != 0 {
		t.Fatalf("source spans_dropped = %d with slots == pool size", got)
	}
	for _, name := range []string{"span_load_ns", "span_wire_ns"} {
		if h := src.Histogram(name); h.Count != wantBlocks {
			t.Fatalf("%s count = %d, want %d", name, h.Count, wantBlocks)
		}
	}
	if src.Counter("path_load_ns") <= 0 || src.Counter("path_wire_ns") <= 0 {
		t.Fatal("source path decomposition empty")
	}
	d := spans.Decomposition(src)
	var sum float64
	for _, share := range d {
		sum += share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("decomposition shares sum to %v: %v", sum, d)
	}
	// Per-session and per-channel attribution exists (session ids are
	// assigned by the sink; the test pipe carries exactly one).
	found := false
	for _, child := range src.Children {
		if len(child.Name) > 4 && child.Name[:4] == "sess" && child.Counter("path_wire_ns") > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-session path attribution in source snapshot")
	}
	var chWire int64
	for i := 0; i < cfg.Channels; i++ {
		if ch := src.Find(chanName(i)); ch != nil {
			chWire += ch.Counter("path_wire_ns")
		}
	}
	if chWire != src.Counter("path_wire_ns") {
		t.Fatalf("per-channel wire %d != total %d", chWire, src.Counter("path_wire_ns"))
	}

	// Sink half: every stored block spans credit → (reassembly) → store.
	// Credits still outstanding when the session finishes are reclaimed,
	// and each reclaim completes a grant-only span (credit stage, never
	// stored), so those count toward spans_completed too.
	var reclaimed int64
	statsDone := make(chan struct{})
	p.dstLoop.Post(0, func() {
		reclaimed = p.sink.Stats().CreditsReclaimed
		close(statsDone)
	})
	<-statsDone
	if got := sink.Counter("spans_completed"); got != wantBlocks+reclaimed {
		t.Fatalf("sink spans_completed = %d, want %d stored + %d reclaimed", got, wantBlocks, reclaimed)
	}
	if h := sink.Histogram("span_credit_ns"); h.Count < wantBlocks {
		t.Fatalf("span_credit_ns count = %d, want >= %d", h.Count, wantBlocks)
	}
	if h := sink.Histogram("span_store_ns"); h.Count != wantBlocks {
		t.Fatalf("span_store_ns count = %d, want %d", h.Count, wantBlocks)
	}

	// Completed-span forensics ring captured identity and stages.
	var recs []spans.Record
	done := make(chan struct{})
	p.srcLoop.Post(0, func() {
		recs = p.source.Spans().Completed()
		close(done)
	})
	<-done
	if len(recs) == 0 {
		t.Fatal("no completed span records retained")
	}
	for _, r := range recs {
		if r.Kind != "source" || r.Session == 0 {
			t.Fatalf("record missing identity: %+v", r)
		}
		if r.Stages()["wire"] <= 0 {
			t.Fatalf("record missing wire stage: %v", r.Stages())
		}
	}
}

// TestChanStallAttribution checks that a transfer accumulates stall
// time and that the trackers' counters reach the snapshot via the
// registry (cause correctness under controlled bottlenecks is pinned
// by the bench shape test).
func TestChanStallAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 4
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	srcReg := telemetry.NewRegistry("source")
	sinkReg := telemetry.NewRegistry("sink")
	p.srcLoop.Post(0, func() { p.source.AttachSpans(srcReg, 0) }) // spans off, stalls on
	p.dstLoop.Post(0, func() { p.sink.AttachSpans(sinkReg, 0) })

	data := randBytes(1<<20, 3)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	if p.source.Spans() != nil {
		t.Fatal("sample=0 should leave the span recorder nil")
	}

	root := telemetry.NewRegistry("conn")
	// TopStall works across a merged tree; rebuild one for the check.
	cause, ns, share := spans.TopStall(srcReg.Snapshot())
	if ns > 0 && (cause == "none" || share <= 0) {
		t.Fatalf("TopStall inconsistent: %s %d %v", cause, ns, share)
	}
	_ = root
}
