package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
)

// TestRandomConfigIntegrityProperty is the end-to-end property of the
// whole stack: for arbitrary (block size, channel count, I/O depth,
// payload length, notification mode), a transfer over the in-process
// fabric delivers exactly the input bytes in order.
func TestRandomConfigIntegrityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 12; i++ {
		cfg := DefaultConfig()
		cfg.BlockSize = 128 + rng.Intn(256<<10)
		cfg.Channels = 1 + rng.Intn(6)
		cfg.IODepth = 1 + rng.Intn(32)
		cfg.SinkBlocks = cfg.IODepth + 1 + rng.Intn(2*cfg.IODepth)
		cfg.GrantPerConsume = 1 + rng.Intn(4)
		cfg.NotifyViaImm = rng.Intn(2) == 1
		cfg.CreditBatch = 1 + rng.Intn(64)
		cfg.CreditFlushInterval = time.Duration(rng.Intn(2000)) * time.Microsecond
		cfg.CreditWindow = rng.Intn(2) * (1 + rng.Intn(cfg.SinkBlocks))
		if rng.Intn(4) == 0 {
			cfg.CreditPolicy = CreditOnDemand
		}
		n := rng.Intn(2 << 20)
		data := make([]byte, n)
		rng.Read(data)

		t.Run("", func(t *testing.T) {
			p := newChanPipe(t, chanfabric.Shaping{}, cfg)
			got := p.transferBytes(t, data)
			if !bytes.Equal(got, data) {
				t.Fatalf("case %d (cfg=%+v, n=%d): corrupted (%d bytes out)", i, cfg, n, len(got))
			}
		})
	}
}

// TestRandomSimConfigsComplete is the virtual-time counterpart: random
// configurations on random link profiles must complete with exact byte
// accounting and an intact sink pool. The coalescing knobs (flush
// threshold, flush timer, window override) are randomized too, so the
// final pool-conservation check doubles as the credit-conservation
// property under arbitrarily timed flush firings: every credit the
// coalescer queued, deferred, flushed, or dropped is either consumed
// (block moved) or still granted, and free + granted always
// reconstructs the whole pool.
func TestRandomSimConfigsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		cfg := DefaultConfig()
		cfg.BlockSize = 1024 * (1 + rng.Intn(2048))
		cfg.Channels = 1 + rng.Intn(4)
		cfg.IODepth = 1 + rng.Intn(64)
		cfg.NotifyViaImm = rng.Intn(2) == 1
		cfg.CreditBatch = 1 + rng.Intn(64)
		cfg.CreditFlushInterval = time.Duration(rng.Intn(5000)) * time.Microsecond
		if rng.Intn(2) == 1 {
			cfg.CreditWindow = 1 + rng.Intn(2*cfg.IODepth)
		}
		link := lanLink()
		if rng.Intn(2) == 1 {
			link = wanLink()
		}
		total := int64(rng.Intn(256 << 20))
		p := newSimPipe(t, link, cfg)
		srcRes, sinkRes := p.runTransfer(t, total)
		if srcRes.Err != nil || sinkRes.Err != nil {
			t.Fatalf("case %d: errors %v / %v (cfg=%+v)", i, srcRes.Err, sinkRes.Err, cfg)
		}
		if srcRes.Bytes != total || sinkRes.Bytes != total {
			t.Fatalf("case %d: bytes %d/%d want %d", i, srcRes.Bytes, sinkRes.Bytes, total)
		}
		ncfg, _ := cfg.Normalize()
		if free := p.sink.pool.countState(BlockFree); free+p.sink.granted != ncfg.SinkBlocks {
			t.Fatalf("case %d: pool leak: %d free + %d granted != %d", i, free, p.sink.granted, ncfg.SinkBlocks)
		}
	}
}
