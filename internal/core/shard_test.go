package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
)

// newShardedChanPipe wires a Source and Sink over the channel fabric
// with N reactor loops per side, optionally drawing block registrations
// from shared pin-down caches. Every loop is a real goroutine, so
// multi-reactor runs exercise the cross-loop mailbox handoffs under the
// race detector. fab/srcDev/dstDev may be reused across calls to model
// sequential connections on one fabric.
func newShardedChanPipe2(t *testing.T, fab *chanfabric.Fabric, srcDev, dstDev *chanfabric.Device,
	cfg Config, reactors int, srcCache, dstCache *verbs.MRCache) *chanPipe {
	t.Helper()
	p := &chanPipe{
		srcLoop: chanfabric.NewLoop("src"),
		dstLoop: chanfabric.NewLoop("dst"),
	}
	srcLoops := []verbs.Loop{p.srcLoop}
	dstLoops := []verbs.Loop{p.dstLoop}
	var extra []*chanfabric.Loop
	for i := 1; i < reactors; i++ {
		sl := chanfabric.NewLoop(fmt.Sprintf("src-shard%d", i))
		dl := chanfabric.NewLoop(fmt.Sprintf("dst-shard%d", i))
		extra = append(extra, sl, dl)
		srcLoops = append(srcLoops, sl)
		dstLoops = append(dstLoops, dl)
	}
	t.Cleanup(func() {
		p.srcLoop.Stop()
		p.dstLoop.Stop()
		for _, l := range extra {
			l.Stop()
		}
	})
	ncfg, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	srcEP, err := NewShardedEndpoint(srcDev, srcLoops, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	dstEP, err := NewShardedEndpoint(dstDev, dstLoops, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	srcEP.MRCache = srcCache
	dstEP.MRCache = dstCache
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		t.Fatal(err)
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.sink, err = NewSink(dstEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.source, err = NewSource(srcEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// closePipe tears a pipe down on its own loops (releasing cached pools)
// and waits for both closes to land.
func closePipe(p *chanPipe) {
	done := make(chan struct{}, 2)
	p.srcLoop.Post(0, func() { p.source.Close(); done <- struct{}{} })
	p.dstLoop.Post(0, func() { p.sink.Close(); done <- struct{}{} })
	<-done
	<-done
}

// TestShardedTransferMultiReactor moves real bytes through 2- and
// 4-reactor pipes (4 data channels): block ownership crosses loop
// boundaries through the shard mailboxes on every block, in both
// notification modes.
func TestShardedTransferMultiReactor(t *testing.T) {
	for _, reactors := range []int{2, 4} {
		for _, imm := range []bool{false, true} {
			t.Run(fmt.Sprintf("reactors=%d,imm=%v", reactors, imm), func(t *testing.T) {
				fab := chanfabric.New()
				srcDev := fab.NewDevice("cf0")
				dstDev := fab.NewDevice("cf1")
				fab.Connect(srcDev, dstDev, chanfabric.Shaping{})
				cfg := DefaultConfig()
				cfg.BlockSize = 32 << 10
				cfg.Channels = 4
				cfg.IODepth = 8
				cfg.NotifyViaImm = imm
				p := newShardedChanPipe2(t, fab, srcDev, dstDev, cfg, reactors, nil, nil)
				defer closePipe(p)
				data := randBytes(3<<20+137, int64(100+reactors))
				got := p.transferBytes(t, data)
				if !bytes.Equal(got, data) {
					t.Fatalf("sharded transfer corrupted: %d vs %d bytes", len(got), len(data))
				}
			})
		}
	}
}

// TestShardedTransferSequentialSessions runs two sessions back to back
// on a 2-reactor pipe to cover session turnover with live shards.
func TestShardedTransferSequentialSessions(t *testing.T) {
	fab := chanfabric.New()
	srcDev := fab.NewDevice("cf0")
	dstDev := fab.NewDevice("cf1")
	fab.Connect(srcDev, dstDev, chanfabric.Shaping{})
	cfg := DefaultConfig()
	cfg.BlockSize = 16 << 10
	cfg.Channels = 2
	cfg.IODepth = 8
	p := newShardedChanPipe2(t, fab, srcDev, dstDev, cfg, 2, nil, nil)
	defer closePipe(p)
	data := randBytes(1<<20+11, 200)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("session 0 corrupted")
	}
	// Second session on the already-negotiated connection.
	data2 := randBytes(1<<20+7919, 201)
	var mu sync.Mutex
	var out bytes.Buffer
	done := make(chan error, 2)
	p.sink.NewWriter = func(SessionInfo) BlockSink { return lockedWriterSink{w: &out, mu: &mu} }
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { done <- r.Err }
	p.srcLoop.Post(0, func() {
		p.source.Transfer(ReaderSource{R: bytes.NewReader(data2)}, int64(len(data2)),
			func(r TransferResult) { done <- r.Err })
	})
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("session 1 error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("session 1 timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(out.Bytes(), data2) {
		t.Fatal("session 1 corrupted")
	}
}

// TestMRCachePipeReuse runs two sequential connections on one fabric
// whose endpoints share pin-down caches: the second connection's pools
// must be built entirely from the first connection's released
// registrations (all hits), and the payload must still arrive intact —
// real bytes through reissued regions.
func TestMRCachePipeReuse(t *testing.T) {
	fab := chanfabric.New()
	srcDev := fab.NewDevice("cf0")
	dstDev := fab.NewDevice("cf1")
	fab.Connect(srcDev, dstDev, chanfabric.Shaping{})

	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 8
	cfg.SinkBlocks = 16

	srcCache := verbs.NewMRCache(srcDev, 64)
	dstCache := verbs.NewMRCache(dstDev, 64)
	for conn := 0; conn < 2; conn++ {
		p := newShardedChanPipe2(t, fab, srcDev, dstDev, cfg, 1, srcCache, dstCache)
		data := randBytes(2<<20+997, int64(300+conn))
		got := p.transferBytes(t, data)
		if !bytes.Equal(got, data) {
			t.Fatalf("conn %d corrupted", conn)
		}
		// Tear down now (not at test cleanup) so the pools release into
		// the caches before the next connection builds its own.
		closePipe(p)
	}
	sh, sm, _ := srcCache.Stats()
	dh, dm, _ := dstCache.Stats()
	// Source pool: IODepth blocks; sink pool: SinkBlocks blocks. The
	// second connection must hit on all of them.
	if sh != int64(cfg.IODepth) || sm != int64(cfg.IODepth) {
		t.Fatalf("source cache hits=%d misses=%d, want %d/%d", sh, sm, cfg.IODepth, cfg.IODepth)
	}
	if dh != int64(cfg.SinkBlocks) || dm != int64(cfg.SinkBlocks) {
		t.Fatalf("sink cache hits=%d misses=%d, want %d/%d", dh, dm, cfg.SinkBlocks, cfg.SinkBlocks)
	}
}

// TestMailboxWakeOrdering hammers one cross-loop mailbox from a
// producer goroutine while the consumer loop drains: every value must
// arrive exactly once, in order.
func TestMailboxWakeOrdering(t *testing.T) {
	loop := chanfabric.NewLoop("mbox")
	defer loop.Stop()
	var mu sync.Mutex
	var got []int
	mb := newMailbox[int](loop, false, 8, func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	const n = 10000
	for i := 0; i < n; i++ {
		mb.send(i)
	}
	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		l := len(got)
		mu.Unlock()
		if l == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("mailbox delivered %d of %d", l, n)
		case <-time.After(time.Millisecond):
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}
