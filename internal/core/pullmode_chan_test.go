package core

import (
	"bytes"
	"crypto/sha256"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
)

func TestChanPullTransferIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.IODepth = 8
	cfg.TransferMode = ModePull
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(3<<20+12345, 21) // not block aligned
	got := p.transferBytes(t, data)
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatalf("pull transfer corrupted: sent %d bytes, got %d", len(data), len(got))
	}
	stCh := make(chan Stats, 1)
	p.srcLoop.Post(0, func() { stCh <- p.source.Stats() })
	st := <-stCh
	if st.Adverts == 0 || st.ReadsDone == 0 {
		t.Fatalf("pull transfer did not use the pull path: %+v", st)
	}
	if st.Adverts != st.ReadsDone {
		t.Fatalf("advert ledger unsettled: %d advertised, %d read done", st.Adverts, st.ReadsDone)
	}
}

func TestChanPullMultiChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 16 << 10
	cfg.Channels = 4
	cfg.IODepth = 16
	cfg.TransferMode = ModePull
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(2<<20+999, 22)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatalf("multi-channel pull stream corrupted: %d vs %d bytes", len(got), len(data))
	}
}

func TestChanPullTinyBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 256
	cfg.IODepth = 4
	cfg.TransferMode = ModePull
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(10_000, 23)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("tiny-block pull transfer corrupted")
	}
}

func TestChanPullShapedWAN(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped transfer is slow")
	}
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.IODepth = 32
	cfg.SinkBlocks = 64
	cfg.TransferMode = ModePull
	p := newChanPipe(t, chanfabric.Shaping{Latency: 5 * time.Millisecond}, cfg)
	data := randBytes(1<<20, 24)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("shaped pull transfer corrupted")
	}
}

func TestChanPullConcurrentSessions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 16
	cfg.SinkBlocks = 64
	cfg.TransferMode = ModePull
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	inputs := map[int][]byte{}
	for i := 0; i < 3; i++ {
		inputs[i] = randBytes(512<<10+i*7919, int64(200+i))
	}
	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	done := make(chan struct{}, 8)
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		mu.Lock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		mu.Unlock()
		return lockedWriterSink{w: buf, mu: &mu}
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) {
		if r.Err != nil {
			t.Errorf("sink session %d: %v", info.ID, r.Err)
		}
		done <- struct{}{}
	}
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				t.Errorf("nego: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				data := inputs[i]
				p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
					func(r TransferResult) {
						if r.Err != nil {
							t.Errorf("session %d: %v", r.Session, r.Err)
						}
						done <- struct{}{}
					})
			}
		})
	})
	for i := 0; i < 6; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent pull sessions timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	matched := 0
	for _, buf := range outputs {
		for _, in := range inputs {
			if bytes.Equal(buf.Bytes(), in) {
				matched++
				break
			}
		}
	}
	if matched != 3 {
		t.Fatalf("only %d/3 pull session payloads matched inputs", matched)
	}
}

// TestChanPushOnlySinkRefusesPull pins the policy boundary: a sink
// configured push-only hard-rejects pull sessions at admission, so a
// pull-mode source cannot open one at all.
func TestChanPushOnlySinkRefusesPull(t *testing.T) {
	fab := chanfabric.New()
	srcDev := fab.NewDevice("cf0")
	dstDev := fab.NewDevice("cf1")
	fab.Connect(srcDev, dstDev, chanfabric.Shaping{})
	srcLoop := chanfabric.NewLoop("src")
	dstLoop := chanfabric.NewLoop("dst")
	t.Cleanup(func() { srcLoop.Stop(); dstLoop.Stop() })

	srcCfg := DefaultConfig()
	srcCfg.BlockSize = 16 << 10
	srcCfg.TransferMode = ModePull
	sinkCfg := srcCfg
	sinkCfg.TransferMode = ModePush

	ncfg, err := srcCfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	srcEP, err := NewEndpoint(srcDev, srcLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	dstEP, err := NewEndpoint(dstDev, dstLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		t.Fatal(err)
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			t.Fatal(err)
		}
	}
	sink, err := NewSink(dstEP, sinkCfg)
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewSource(srcEP, srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srcLoop.Post(0, source.Close)
		dstLoop.Post(0, sink.Close)
		time.Sleep(10 * time.Millisecond)
	})
	sink.NewWriter = func(info SessionInfo) BlockSink {
		t.Error("push-only sink admitted a pull session")
		return lockedWriterSink{w: &bytes.Buffer{}, mu: &sync.Mutex{}}
	}
	done := make(chan error, 1)
	data := randBytes(64<<10, 31)
	srcLoop.Post(0, func() {
		source.Start(func(err error) {
			if err != nil {
				done <- err
				return
			}
			source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
				func(r TransferResult) { done <- r.Err })
		})
	})
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pull session against a push-only sink succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rejection timed out")
	}
}

// TestChanHybridModeSwitchRace flips the hybrid controller's load
// signal push→pull→push in the middle of live transfers under
// multi-session churn and asserts byte-exact delivery plus a settled
// credit/advertisement ledger on both sides afterwards. Real payload
// bytes (chanfabric carries them), so a block lost or duplicated
// across a mode-change handshake cannot hide.
func TestChanHybridModeSwitchRace(t *testing.T) {
	var load atomic.Uint64 // math.Float64bits of the probed CPU load
	load.Store(math.Float64bits(0.0))

	cfg := DefaultConfig()
	cfg.BlockSize = 4 << 10
	cfg.IODepth = 16
	cfg.SinkBlocks = 64
	cfg.TransferMode = ModeHybrid
	cfg.LoadProbe = func() float64 { return math.Float64frombits(load.Load()) }
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	const nSess = 3
	inputs := map[int][]byte{}
	for i := 0; i < nSess; i++ {
		inputs[i] = randBytes(2<<20+i*4099, int64(300+i))
	}
	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	done := make(chan struct{}, 2*nSess)
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		mu.Lock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		mu.Unlock()
		return lockedWriterSink{w: buf, mu: &mu}
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) {
		if r.Err != nil {
			t.Errorf("sink session %d: %v", info.ID, r.Err)
		}
		done <- struct{}{}
	}
	// Flip the load signal on transfer progress: busy once the first
	// third is out (→ pull), idle again past the second third (→ push).
	// Progress callbacks run on the source loop; sessions churn through
	// the flips at different byte offsets, racing handshakes against
	// live WRITEs, READs, and credit grants.
	third := int64(len(inputs[0])) / 3
	p.source.OnProgress = func(sess uint32, sent int64) {
		switch {
		case sent > 2*third:
			load.Store(math.Float64bits(0.0))
		case sent > third:
			load.Store(math.Float64bits(1.0))
		}
	}
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				t.Errorf("nego: %v", err)
				return
			}
			for i := 0; i < nSess; i++ {
				data := inputs[i]
				p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
					func(r TransferResult) {
						if r.Err != nil {
							t.Errorf("session %d: %v", r.Session, r.Err)
						}
						done <- struct{}{}
					})
			}
		})
	})
	for i := 0; i < 2*nSess; i++ {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("hybrid mode-switch transfer timed out")
		}
	}

	mu.Lock()
	matched := 0
	for _, buf := range outputs {
		for _, in := range inputs {
			if bytes.Equal(buf.Bytes(), in) {
				matched++
				break
			}
		}
	}
	mu.Unlock()
	if matched != nSess {
		t.Fatalf("only %d/%d hybrid session payloads survived the mode flips intact", matched, nSess)
	}

	// Ledger settlement: every advertisement answered, every READ
	// retired, every credit either consumed or reclaimed.
	srcCh := make(chan [2]int64, 1)
	p.srcLoop.Post(0, func() {
		srcCh <- [2]int64{int64(p.source.advertCount), p.source.stats.Adverts - p.source.stats.ReadsDone}
	})
	sinkCh := make(chan [3]int, 1)
	p.dstLoop.Post(0, func() {
		reads := 0
		for _, n := range p.sink.chReads {
			reads += n
		}
		backlog := 0
		for _, sess := range p.sink.sessions {
			backlog += len(sess.fetchQ)
		}
		sinkCh <- [3]int{p.sink.readsInflight, reads, backlog}
	})
	if s := <-srcCh; s[0] != 0 || s[1] != 0 {
		t.Fatalf("source advert ledger unsettled: %d outstanding, %d unanswered", s[0], s[1])
	}
	if k := <-sinkCh; k[0] != 0 || k[1] != 0 || k[2] != 0 {
		t.Fatalf("sink READ ledger unsettled: inflight=%d chReads=%d fetchQ=%d", k[0], k[1], k[2])
	}

	stCh := make(chan Stats, 1)
	p.srcLoop.Post(0, func() { stCh <- p.source.Stats() })
	st := <-stCh
	if st.ModeSwitches == 0 {
		t.Fatalf("hybrid controller never switched modes: %+v", st)
	}
	total := 0
	for _, in := range inputs {
		total += len(in)
	}
	if st.Bytes != int64(total) {
		t.Fatalf("stats bytes = %d, want %d (block lost or double-counted across a switch)", st.Bytes, total)
	}
}
