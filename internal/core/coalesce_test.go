package core

import (
	"testing"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/telemetry"
)

// coalesceConfig is a transfer with real pool headroom beyond the
// source's pipeline depth — the regime the credit coalescer targets
// (small blocks, deep sink pool, completion via WRITE-with-imm).
func coalesceConfig() Config {
	cfg := DefaultConfig()
	cfg.BlockSize = 256 << 10
	cfg.IODepth = 16
	cfg.SinkBlocks = 96
	cfg.NotifyViaImm = true
	return cfg
}

// TestSimGrantCoalescingBatchesFrees is the grantOnFree regression: a
// sink whose stores complete in bursts (parallel storer threads with a
// fixed per-block cost) must route the resulting free→grant events
// through the coalescer and emit multi-credit MR_INFO_RESPONSEs, not
// one control message per freed block.
func TestSimGrantCoalescingBatchesFrees(t *testing.T) {
	cfg := coalesceConfig()
	p := newSimPipe(t, lanLink(), cfg)
	// Four storers with identical per-block cost complete in lockstep,
	// freeing blocks in bursts of four.
	storers := []*hostmodel.Thread{
		p.dstHost.NewThread("st0"), p.dstHost.NewThread("st1"),
		p.dstHost.NewThread("st2"), p.dstHost.NewThread("st3"),
	}
	p.sink.NewWriter = func(SessionInfo) BlockSink {
		return &ModelSink{Storers: storers, PerBlock: 100 * time.Microsecond}
	}
	reg := telemetry.NewRegistry("sink")
	p.sink.AttachTelemetry(reg)
	p.runTransfer(t, 64<<20)

	st := p.sink.Stats()
	if st.GrantMsgs == 0 {
		t.Fatal("no grant messages recorded")
	}
	mean := float64(st.CreditsGranted) / float64(st.GrantMsgs)
	if mean <= 1.5 {
		t.Fatalf("mean grant batch %.2f (%d credits / %d msgs): coalescer not batching",
			mean, st.CreditsGranted, st.GrantMsgs)
	}
	snap := reg.Snapshot()
	if onFree := snap.Counter("grants_on_free"); onFree == 0 {
		t.Fatal("grants_on_free = 0: on-free leg never granted")
	}
	if h := snap.Histogram("credit_batch_size"); h.Count != st.GrantMsgs {
		t.Fatalf("credit_batch_size count %d != grant msgs %d", h.Count, st.GrantMsgs)
	}
}

// TestSimCoalescingReducesControlMessages compares the same transfer
// with coalescing disabled (CreditBatch=1, the pre-coalescing
// behavior) and enabled: the batched run must cut the sink's control
// messages by at least 3× at equal goodput.
func TestSimCoalescingReducesControlMessages(t *testing.T) {
	run := func(batch int) (Stats, Stats) {
		cfg := coalesceConfig()
		cfg.CreditBatch = batch
		cfg.CreditWindow = cfg.SinkBlocks // isolate batching from the adaptive window
		p := newSimPipe(t, lanLink(), cfg)
		p.runTransfer(t, 128<<20)
		return p.source.Stats(), p.sink.Stats()
	}
	srcSeed, sinkSeed := run(1)
	srcBat, sinkBat := run(16)

	if sinkBat.CtrlMsgs*3 > sinkSeed.CtrlMsgs {
		t.Fatalf("sink ctrl msgs %d (batched) vs %d (unbatched): less than 3× reduction",
			sinkBat.CtrlMsgs, sinkSeed.CtrlMsgs)
	}
	if bw, seed := srcBat.BandwidthGbps(), srcSeed.BandwidthGbps(); bw < 0.98*seed {
		t.Fatalf("goodput %.2f Gbps under coalescing vs %.2f unbatched", bw, seed)
	}
	if srcBat.Blocks != srcSeed.Blocks {
		t.Fatalf("block counts diverged: %d vs %d", srcBat.Blocks, srcSeed.Blocks)
	}
}

// TestSimCreditWindowOverride pins the window with Config.CreditWindow
// and checks the sink never exceeds it, while the transfer still
// completes with an intact pool.
func TestSimCreditWindowOverride(t *testing.T) {
	cfg := coalesceConfig()
	cfg.CreditWindow = 24
	p := newSimPipe(t, lanLink(), cfg)
	p.runTransfer(t, 32<<20)
	ncfg, _ := cfg.Normalize()
	if free := p.sink.pool.countState(BlockFree); free+p.sink.granted != ncfg.SinkBlocks {
		t.Fatalf("pool leak: %d free + %d granted != %d", free, p.sink.granted, ncfg.SinkBlocks)
	}
	if w := p.sink.targetWindow(); w != 24 {
		t.Fatalf("targetWindow() = %d with override 24", w)
	}
}
