package core

import (
	"testing"

	"rftp/internal/fabric/simfabric"
	"rftp/internal/verbs"
)

// TestChannelFailoverMidTransfer kills one of the data channels in the
// middle of a transfer (by deregistering a granted sink region, so the
// next WRITE to it takes a remote access error and errors its QP) and
// checks that the source retries the block on a surviving channel and
// the dataset still arrives complete.
func TestChannelFailoverMidTransfer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.Channels = 4
	cfg.IODepth = 16
	p := newSimPipe(t, lanLink(), cfg)

	// After ~1ms of transfer, sabotage one granted (waiting) region.
	p.sched.After(1e6, func() {
		for _, b := range p.sink.pool.blocks {
			if b.state == BlockWaiting {
				dev := p.sink.ep.Dev.(*simfabric.Device)
				dev.Space().Deregister(b.mr)
				return
			}
		}
		t.Log("no waiting block at sabotage time; test degenerates to a plain transfer")
	})

	total := int64(512 << 20)
	var srcRes, sinkRes TransferResult
	srcDone, sinkDone := false, false
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { sinkRes, sinkDone = r, true }
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		src := &ModelSource{Total: total, Loader: p.loader, NsPerByte: 0.16}
		p.source.Transfer(src, total, func(r TransferResult) { srcRes, srcDone = r, true })
	})
	p.sched.RunAll()

	if !srcDone || !sinkDone {
		t.Fatalf("transfer incomplete after channel failure (src=%v sink=%v)", srcDone, sinkDone)
	}
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: src=%v sink=%v", srcRes.Err, sinkRes.Err)
	}
	if sinkRes.Bytes != total {
		t.Fatalf("sink got %d of %d bytes", sinkRes.Bytes, total)
	}
	st := p.source.Stats()
	if st.Retries == 0 {
		t.Fatal("no retry recorded despite the sabotaged region")
	}
	if p.source.liveChannels() != cfg.Channels-1 {
		t.Fatalf("live channels = %d, want %d", p.source.liveChannels(), cfg.Channels-1)
	}
}

// TestAllChannelsDeadFailsTransfer removes remote write access from
// every granted region so all channels die: the transfer must fail
// cleanly rather than hang.
func TestAllChannelsDeadFailsTransfer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.Channels = 1
	cfg.IODepth = 8
	p := newSimPipe(t, lanLink(), cfg)

	p.sched.After(5e5, func() {
		dev := p.sink.ep.Dev.(*simfabric.Device)
		for _, b := range p.sink.pool.blocks {
			dev.Space().Deregister(b.mr)
		}
	})
	var srcRes TransferResult
	done := false
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		src := &ModelSource{Total: 512 << 20, Loader: p.loader, NsPerByte: 0.16}
		p.source.Transfer(src, 512<<20, func(r TransferResult) { srcRes, done = r, true })
	})
	p.sched.RunAll()
	if !done {
		t.Fatal("transfer hung after all channels died")
	}
	if srcRes.Err == nil {
		t.Fatal("transfer succeeded despite every region deregistered")
	}
}

// TestRetryBudgetExhaustion drives one block through repeated failures
// until ErrTooManyRetries. Uses many channels so channel death does not
// end the run first.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.Channels = 8
	cfg.IODepth = 4
	cfg.MaxRetries = 3
	p := newSimPipe(t, lanLink(), cfg)

	// Deregister every region as soon as it is granted, forever.
	var sabotage func()
	sabotage = func() {
		dev := p.sink.ep.Dev.(*simfabric.Device)
		if p.sink.pool != nil {
			for _, b := range p.sink.pool.blocks {
				if b.state == BlockWaiting {
					dev.Space().Deregister(b.mr)
				}
			}
		}
		p.sched.After(1e5, sabotage)
	}
	p.sched.After(1e5, sabotage)

	var srcRes TransferResult
	done := false
	p.source.Start(func(err error) {
		if err != nil {
			return
		}
		src := &ModelSource{Total: 64 << 20, Loader: p.loader, NsPerByte: 0.16}
		p.source.Transfer(src, 64<<20, func(r TransferResult) { srcRes, done = r, true })
	})
	// Bounded run: the sabotage loop reschedules forever.
	p.sched.Run(5e9)
	if !done {
		t.Fatal("transfer hung instead of failing")
	}
	if srcRes.Err == nil {
		t.Fatal("transfer succeeded under permanent sabotage")
	}
}

// TestFlushedCompletionsIgnoredAfterClose closes the source mid-flight
// and verifies flushed completions do not corrupt the pool.
func TestFlushedCompletionsIgnoredAfterClose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, wanLink(), cfg)
	p.source.Start(func(err error) {
		if err != nil {
			return
		}
		src := &ModelSource{Total: 1 << 30, Loader: p.loader, NsPerByte: 0.16}
		p.source.Transfer(src, 1<<30, func(TransferResult) {})
	})
	// Close while blocks are in flight on the long-latency link.
	p.sched.After(100e6, p.source.Close) // 100ms: mid-transfer
	p.sched.RunAll()
	// Nothing to assert beyond "no panic": the FSM would panic on any
	// illegal transition triggered by stale completions.
	_ = verbs.StatusFlushed
}
