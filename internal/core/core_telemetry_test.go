package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/telemetry"
	"rftp/internal/trace"
)

// TestChanTelemetryEndToEnd is the acceptance run: a chanfabric
// transfer with telemetry attached must report per-channel bytes and
// blocks, a populated credit-latency histogram, and lose no trace
// events.
func TestChanTelemetryEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.Channels = 4
	cfg.IODepth = 16
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	srcReg := telemetry.NewRegistry("source")
	sinkReg := telemetry.NewRegistry("sink")
	ring := trace.NewRing(1<<16, nil) // large enough to retain everything
	p.srcLoop.Post(0, func() {
		p.source.AttachTelemetry(srcReg)
		p.source.Trace = ring
	})
	p.dstLoop.Post(0, func() { p.sink.AttachTelemetry(sinkReg) })

	data := randBytes(4<<20+777, 42)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}

	src := srcReg.Snapshot()
	sink := sinkReg.Snapshot()

	if src.Counter("bytes_posted") != int64(len(data)) {
		t.Fatalf("bytes_posted = %d, want %d", src.Counter("bytes_posted"), len(data))
	}
	wantBlocks := (int64(len(data)) + int64(cfg.PayloadCapacity()) - 1) / int64(cfg.PayloadCapacity())
	if src.Counter("blocks_posted") != wantBlocks {
		t.Fatalf("blocks_posted = %d, want %d", src.Counter("blocks_posted"), wantBlocks)
	}

	// Per-channel accounting must partition the totals.
	var chBytes, chBlocks int64
	used := 0
	for i := 0; i < cfg.Channels; i++ {
		ch := src.Find(chanName(i))
		if ch == nil {
			t.Fatalf("missing %s in snapshot", chanName(i))
		}
		chBytes += ch.Counter("bytes")
		chBlocks += ch.Counter("blocks")
		if ch.Counter("blocks") > 0 {
			used++
		}
	}
	if chBytes != int64(len(data)) || chBlocks != wantBlocks {
		t.Fatalf("per-channel sums %d bytes / %d blocks, want %d / %d", chBytes, chBlocks, len(data), wantBlocks)
	}
	if used < 2 {
		t.Fatalf("only %d of %d channels carried blocks", used, cfg.Channels)
	}

	// Latency histograms: every block contributes one observation.
	for _, name := range []string{"load_latency", "credit_wait", "post_latency"} {
		if h := src.Histogram(name); h.Count != wantBlocks {
			t.Fatalf("%s count = %d, want %d", name, h.Count, wantBlocks)
		}
	}
	credLat := sink.Histogram("credit_latency")
	if credLat.Count != wantBlocks {
		t.Fatalf("credit_latency count = %d, want %d", credLat.Count, wantBlocks)
	}
	if credLat.Quantile(0.5) <= 0 {
		t.Fatal("credit_latency p50 not positive")
	}
	if h := sink.Histogram("reassembly_occupancy"); h.Count != wantBlocks {
		t.Fatalf("reassembly_occupancy count = %d, want %d", h.Count, wantBlocks)
	}
	if h := sink.Histogram("store_latency"); h.Count != wantBlocks {
		t.Fatalf("store_latency count = %d, want %d", h.Count, wantBlocks)
	}

	// Grant accounting by reason must agree with the sink's Stats.
	stCh := make(chan Stats, 1)
	p.dstLoop.Post(0, func() { stCh <- p.sink.Stats() })
	sinkStats := <-stCh
	var grants int64
	for _, reason := range []string{"initial", "on_consume", "on_free", "on_demand"} {
		grants += sink.Counter("grants_" + reason)
	}
	if grants != sinkStats.CreditsGranted {
		t.Fatalf("grant reasons sum %d, stats say %d", grants, sinkStats.CreditsGranted)
	}
	if sink.Counter("grants_initial") == 0 {
		t.Fatal("no initial grant recorded")
	}
	if sink.Counter("bytes_arrived") != int64(len(data)) {
		t.Fatalf("bytes_arrived = %d", sink.Counter("bytes_arrived"))
	}
	if sess := sink.Find("sess1"); sess.Counter("bytes") != int64(len(data)) {
		t.Fatalf("per-session bytes = %d", sess.Counter("bytes"))
	}

	// Zero lost events: the ring was sized above the event volume.
	if ring.Total() != uint64(len(ring.Events())) {
		t.Fatalf("trace ring evicted events: total=%d retained=%d", ring.Total(), len(ring.Events()))
	}
	if posted := ring.Find("posted"); int64(len(posted)) != wantBlocks {
		t.Fatalf("trace has %d posted events, want %d", len(posted), wantBlocks)
	}
}

func chanName(i int) string {
	return fmt.Sprintf("chan%d", i)
}

// TestChanTelemetryConcurrentSnapshots runs concurrent sessions while
// hammering the telemetry registry and Stats accessors from other
// goroutines. Run under -race (make check) this proves the snapshot
// path is safe against live protocol traffic.
func TestChanTelemetryConcurrentSnapshots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.Channels = 2
	cfg.IODepth = 16
	cfg.SinkBlocks = 64
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	srcReg := telemetry.NewRegistry("source")
	sinkReg := telemetry.NewRegistry("sink")
	p.srcLoop.Post(0, func() { p.source.AttachTelemetry(srcReg) })
	p.dstLoop.Post(0, func() { p.sink.AttachTelemetry(sinkReg) })

	// Snapshot hammers: concurrent readers during the transfers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				srcReg.Snapshot()
				sinkReg.Snapshot()
				// Stats structs are loop-owned: read them on the loop,
				// like the CLI's periodic reporter does.
				done := make(chan struct{})
				p.srcLoop.Post(0, func() { _ = p.source.Stats(); close(done) })
				<-done
				done = make(chan struct{})
				p.dstLoop.Post(0, func() { _ = p.sink.Stats(); close(done) })
				<-done
			}
		}()
	}

	inputs := map[int][]byte{}
	for i := 0; i < 3; i++ {
		inputs[i] = randBytes(256<<10+i*4093, int64(50+i))
	}
	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	done := make(chan error, 8)
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		mu.Lock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		mu.Unlock()
		return lockedWriterSink{w: buf, mu: &mu}
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { done <- r.Err }
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				t.Errorf("nego: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				data := inputs[i]
				p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
					func(r TransferResult) { done <- r.Err })
			}
		})
	})
	for i := 0; i < 6; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("transfer error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent telemetry transfer timed out")
		}
	}
	close(stop)
	readers.Wait()

	var total int64
	for _, in := range inputs {
		total += int64(len(in))
	}
	src := srcReg.Snapshot()
	if src.Counter("bytes_posted") != total {
		t.Fatalf("bytes_posted = %d, want %d", src.Counter("bytes_posted"), total)
	}
	sink := sinkReg.Snapshot()
	if sink.Counter("bytes_arrived") != total {
		t.Fatalf("bytes_arrived = %d, want %d", sink.Counter("bytes_arrived"), total)
	}
	// Three per-session registries, each with its own byte count.
	var sessBytes int64
	for _, id := range []string{"sess1", "sess2", "sess3"} {
		sess := sink.Find(id)
		if sess == nil {
			t.Fatalf("missing %s", id)
		}
		sessBytes += sess.Counter("bytes")
	}
	if sessBytes != total {
		t.Fatalf("per-session bytes sum %d, want %d", sessBytes, total)
	}
}

// TestTelemetryDetachedCostsNothing checks the disabled path stays
// disabled: a transfer with no telemetry attached must leave a fresh
// registry empty and not stamp block timestamps.
func TestTelemetryDetachedCostsNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(512<<10, 7)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	if p.source.Telemetry() != nil || p.sink.Telemetry() != nil {
		t.Fatal("telemetry attached by default")
	}
}

func TestAttachDetach(t *testing.T) {
	cfg := DefaultConfig()
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	reg := telemetry.NewRegistry("x")
	sync1 := make(chan struct{})
	p.srcLoop.Post(0, func() {
		p.source.AttachTelemetry(reg)
		if p.source.Telemetry() != reg {
			t.Error("attach did not take")
		}
		p.source.AttachTelemetry(nil)
		if p.source.Telemetry() != nil {
			t.Error("detach did not take")
		}
		close(sync1)
	})
	<-sync1
}
