package core

import (
	"errors"
	"testing"
	"time"

	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// These tests drive the sink's control handler directly with malformed
// or adversarial messages, checking that every protocol violation fails
// loudly instead of corrupting state.

// sinkRig builds a sink on a sim pipe and runs negotiation + session
// setup so the pool exists.
func sinkRig(t *testing.T) (*simPipe, *sinkSession) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	p := newSimPipe(t, lanLink(), cfg)
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		// Open a session but never send data: the sink state is live.
		src := &ModelSource{Total: 1 << 30, Loader: p.loader, NsPerByte: 0}
		p.source.Transfer(src, 1<<30, func(TransferResult) {})
	})
	// Run enough for negotiation + session establishment + some data.
	p.sched.Run(1e6) // 1ms virtual
	if p.sink.pool == nil || len(p.sink.sessions) != 1 {
		t.Fatalf("session not established (pool=%v sessions=%d)", p.sink.pool != nil, len(p.sink.sessions))
	}
	for _, sess := range p.sink.sessions {
		return p, sess
	}
	return p, nil
}

func sinkFailure(p *simPipe) *error {
	var got error
	p.sink.OnError = func(err error) { got = err }
	return &got
}

func TestSinkRejectsUnknownRegionCompletion(t *testing.T) {
	p, _ := sinkRig(t)
	errp := sinkFailure(p)
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgBlockComplete, Session: 1, RKey: 0xDEAD})
	if !errors.Is(*errp, ErrProtocol) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSinkRejectsCompletionForFreeBlock(t *testing.T) {
	p, _ := sinkRig(t)
	errp := sinkFailure(p)
	// Find a block still in the free pool (never granted).
	var free *block
	for _, b := range p.sink.pool.blocks {
		if b.state == BlockFree {
			free = b
			break
		}
	}
	if free == nil {
		t.Skip("no free block in pool at this point")
	}
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgBlockComplete, Session: 1, RKey: free.mr.RKey})
	if !errors.Is(*errp, ErrProtocol) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSinkRejectsMismatchedNotification(t *testing.T) {
	p, _ := sinkRig(t)
	errp := sinkFailure(p)
	// A granted (waiting) block whose header does not match the
	// notification's claims.
	var waiting *block
	for _, b := range p.sink.pool.blocks {
		if b.state == BlockWaiting {
			waiting = b
			break
		}
	}
	if waiting == nil {
		t.Skip("no waiting block")
	}
	hdr := wire.BlockHeader{Session: 1, Seq: 42, PayloadLen: 100}
	buf := make([]byte, wire.BlockHeaderSize)
	wire.EncodeBlockHeader(buf, hdr)
	waiting.mr.PlaceLocal(0, buf)
	// Notification claims a different length.
	p.sink.handleCtrl(&wire.Control{
		Type: wire.MsgBlockComplete, Session: 1, Seq: 42,
		RKey: waiting.mr.RKey, Length: 999,
	})
	if !errors.Is(*errp, ErrProtocol) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSinkRejectsUnknownSessionBlock(t *testing.T) {
	p, _ := sinkRig(t)
	errp := sinkFailure(p)
	var waiting *block
	for _, b := range p.sink.pool.blocks {
		if b.state == BlockWaiting {
			waiting = b
			break
		}
	}
	if waiting == nil {
		t.Skip("no waiting block")
	}
	hdr := wire.BlockHeader{Session: 777, Seq: 0, PayloadLen: 10}
	buf := make([]byte, wire.BlockHeaderSize)
	wire.EncodeBlockHeader(buf, hdr)
	waiting.mr.PlaceLocal(0, buf)
	p.sink.handleCtrl(&wire.Control{
		Type: wire.MsgBlockComplete, Session: 777, Seq: 0,
		RKey: waiting.mr.RKey, Length: 10,
	})
	if !errors.Is(*errp, ErrProtocol) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSinkAbortForUnknownSessionIsConnectionFatal(t *testing.T) {
	p, _ := sinkRig(t)
	errp := sinkFailure(p)
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgAbort, Session: 0})
	if !errors.Is(*errp, ErrAborted) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSinkSessionAbortOnlyKillsSession(t *testing.T) {
	p, sess := sinkRig(t)
	var sessionErr error
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { sessionErr = r.Err }
	connErr := sinkFailure(p)
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgAbort, Session: sess.info.ID})
	if !errors.Is(sessionErr, ErrAborted) {
		t.Fatalf("session err = %v", sessionErr)
	}
	if *connErr != nil {
		t.Fatalf("connection err = %v (session abort must not kill the connection)", *connErr)
	}
}

func TestSinkSessionReqBeforeNegotiationRejected(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	// No negotiation: pool is nil. A session request must be rejected,
	// not crash.
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgSessionReq, AssocData: 100})
	p.sched.RunAll()
	if len(p.sink.sessions) != 0 {
		t.Fatal("session accepted without negotiation")
	}
}

func TestSinkBlockCompleteBeforeNegotiationFails(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	errp := sinkFailure(p)
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgBlockComplete, RKey: 1})
	if !errors.Is(*errp, ErrProtocol) {
		t.Fatalf("err = %v", *errp)
	}
}

func TestSourceIgnoresStaleNegotiationReplies(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	// Unsolicited responses before Start must be ignored, not crash.
	p.source.handleCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, Flags: wire.FlagAccept})
	p.source.handleCtrl(&wire.Control{Type: wire.MsgChannelsResp, Flags: wire.FlagAccept})
	p.source.handleCtrl(&wire.Control{Type: wire.MsgSessionResp, Flags: wire.FlagAccept, Session: 5})
	p.source.handleCtrl(&wire.Control{Type: wire.MsgDatasetCompleteAck, Session: 5})
	if p.source.negoStep != 0 {
		t.Fatal("stale replies advanced negotiation")
	}
}

func TestSourceDoubleStartRejected(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	p.source.Start(func(error) {})
	var second error
	p.source.Start(func(err error) { second = err })
	if !errors.Is(second, ErrBusy) {
		t.Fatalf("second Start: %v", second)
	}
	p.sched.RunAll()
}

func TestSourceTransferAfterCloseFails(t *testing.T) {
	cfg := DefaultConfig()
	p := newSimPipe(t, lanLink(), cfg)
	p.source.Close()
	var got error
	p.source.Transfer(&ModelSource{Total: 1, Loader: p.loader}, 1,
		func(r TransferResult) { got = r.Err })
	if !errors.Is(got, ErrClosed) {
		t.Fatalf("transfer after close: %v", got)
	}
}

func TestNegotiationTimeoutFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NegotiateTimeout = 1e6 // 1ms virtual
	p := newSimPipe(t, lanLink(), cfg)
	// Detach the sink's handler so negotiation never answers.
	p.sink.ep.CtrlCQ.SetHandler(func(verbs.WC) {})
	var negoErr error
	p.source.Start(func(err error) { negoErr = err })
	p.sched.RunAll()
	if negoErr == nil {
		t.Fatal("negotiation never timed out")
	}
}

// Regression: finishSession used to write b.state directly, bypassing
// setState — and DataReady -> Free was missing from validNext, so the
// abort path silently skipped FSM validation (routing it through
// setState would have panicked). Aborting a session that still holds
// data-ready blocks must recycle them to the pool through the FSM.
func TestSinkAbortRecyclesDataReadyBlocksThroughFSM(t *testing.T) {
	p, sess := sinkRig(t)
	var b *block
	for _, cand := range p.sink.pool.blocks {
		if cand.state == BlockWaiting {
			b = cand
			break
		}
	}
	if b == nil {
		t.Skip("no waiting block to park in reassembly")
	}
	b.setState(BlockDataReady)
	b.session, b.seq = sess.info.ID, sess.nextDeliver+3 // parked behind a hole
	sess.ready[b.seq] = b
	p.sink.handleCtrl(&wire.Control{Type: wire.MsgAbort, Session: sess.info.ID})
	if b.state != BlockFree {
		t.Fatalf("aborted session left block in %v, want free", b.state)
	}
	// The abort reclaims everything the session held — parked data-ready
	// blocks and outstanding granted regions alike — so with the only
	// session gone the whole pool is free again.
	if got, want := len(p.sink.pool.free), len(p.sink.pool.blocks); got != want {
		t.Fatalf("pool free = %d, want %d (aborted session's blocks not recycled)", got, want)
	}
}

// TestUnhandledControlTypesTraceNotSilent is the regression test for
// the msgexhaustive findings: response-direction types arriving at the
// sink (and request-direction types at the source) used to fall out of
// the dispatch switch with no trace at all — a wedged peer looked like
// a network hang. They must now emit a ctrl_unhandled error event and
// leave the endpoint healthy.
func TestUnhandledControlTypesTraceNotSilent(t *testing.T) {
	p, _ := sinkRig(t)
	sinkErr := sinkFailure(p)
	p.sink.Trace = trace.NewRing(64, func() time.Duration { return 0 })
	p.source.Trace = trace.NewRing(64, func() time.Duration { return 0 })
	var srcErr error
	p.source.OnError = func(err error) { srcErr = err }

	p.sink.handleCtrl(&wire.Control{Type: wire.MsgSessionResp, Session: 7})
	p.source.handleCtrl(&wire.Control{Type: wire.MsgSessionReq, Session: 7})

	if *sinkErr != nil || srcErr != nil {
		t.Fatalf("unhandled control types must not fail the endpoint (sink=%v source=%v)", *sinkErr, srcErr)
	}
	for name, ring := range map[string]*trace.Ring{"sink": p.sink.Trace, "source": p.source.Trace} {
		found := false
		for _, e := range ring.Events() {
			if e.Name == "ctrl_unhandled" && e.Cat == trace.CatError && e.Session == 7 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s dropped an unhandled control type without a ctrl_unhandled trace event", name)
		}
	}
}
