package core

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/wire"
)

// chanPipe wires a Source and Sink over the in-process channel fabric
// (real goroutines, real bytes).
type chanPipe struct {
	srcLoop *chanfabric.Loop
	dstLoop *chanfabric.Loop
	source  *Source
	sink    *Sink
}

func newChanPipe(t *testing.T, shaping chanfabric.Shaping, cfg Config) *chanPipe {
	t.Helper()
	fab := chanfabric.New()
	srcDev := fab.NewDevice("cf0")
	dstDev := fab.NewDevice("cf1")
	fab.Connect(srcDev, dstDev, shaping)
	p := &chanPipe{
		srcLoop: chanfabric.NewLoop("src"),
		dstLoop: chanfabric.NewLoop("dst"),
	}
	t.Cleanup(func() { p.srcLoop.Stop(); p.dstLoop.Stop() })
	ncfg, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	srcEP, err := NewEndpoint(srcDev, p.srcLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	dstEP, err := NewEndpoint(dstDev, p.dstLoop, ncfg.Channels, ncfg.IODepth)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.ConnectQPs(srcEP.Ctrl, dstEP.Ctrl); err != nil {
		t.Fatal(err)
	}
	for i := range srcEP.Data {
		if err := fab.ConnectQPs(srcEP.Data[i], dstEP.Data[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.sink, err = NewSink(dstEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.source, err = NewSource(srcEP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.srcLoop.Post(0, p.source.Close)
		p.dstLoop.Post(0, p.sink.Close)
		time.Sleep(10 * time.Millisecond)
	})
	return p
}

// transferBytes moves data through the pipe and returns what the sink
// stored.
func (p *chanPipe) transferBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var mu sync.Mutex
	var out bytes.Buffer
	done := make(chan error, 2)
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		return lockedWriterSink{w: &out, mu: &mu}
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { done <- r.Err }
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				done <- err
				done <- err
				return
			}
			p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
				func(r TransferResult) { done <- r.Err })
		})
	})
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("transfer error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("transfer timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return out.Bytes()
}

type lockedWriterSink struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s lockedWriterSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	s.mu.Lock()
	_, err := s.w.Write(payload)
	s.mu.Unlock()
	done(err)
}

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestChanRealTransferIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.IODepth = 8
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(3<<20+12345, 1) // not block aligned
	got := p.transferBytes(t, data)
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatalf("data corrupted: sent %d bytes, got %d", len(data), len(got))
	}
}

func TestChanMultiChannelReassembly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 16 << 10
	cfg.Channels = 4
	cfg.IODepth = 16
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(2<<20+999, 2)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatalf("multi-channel stream corrupted: %d vs %d bytes", len(got), len(data))
	}
}

func TestChanShapedWANProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped transfer is slow")
	}
	// 5ms one-way latency: exercises the credit ramp in real time.
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.IODepth = 32
	cfg.SinkBlocks = 64
	p := newChanPipe(t, chanfabric.Shaping{Latency: 5 * time.Millisecond}, cfg)
	data := randBytes(1<<20, 3)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("shaped transfer corrupted")
	}
}

func TestChanTinyBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 256 // 224-byte payloads
	cfg.IODepth = 4
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(10_000, 4)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("tiny-block transfer corrupted")
	}
}

func TestChanEmptyTransfer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 4 << 10
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	got := p.transferBytes(t, nil)
	if len(got) != 0 {
		t.Fatalf("empty transfer produced %d bytes", len(got))
	}
}

func TestChanConcurrentSessionsIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 16
	cfg.SinkBlocks = 64
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	inputs := map[int][]byte{}
	for i := 0; i < 3; i++ {
		inputs[i] = randBytes(512<<10+i*7919, int64(100+i))
	}
	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	sessErr := map[uint32]error{}
	done := make(chan struct{}, 8)
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		mu.Lock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		mu.Unlock()
		return lockedWriterSink{w: buf, mu: &mu}
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) {
		mu.Lock()
		sessErr[info.ID] = r.Err
		mu.Unlock()
		done <- struct{}{}
	}
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				t.Errorf("nego: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				data := inputs[i]
				p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
					func(r TransferResult) {
						if r.Err != nil {
							t.Errorf("session %d: %v", r.Session, r.Err)
						}
						done <- struct{}{}
					})
			}
		})
	})
	for i := 0; i < 6; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent sessions timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(outputs) != 3 {
		t.Fatalf("sink saw %d sessions", len(outputs))
	}
	// Session ids are assigned in request order (control QP is ordered),
	// so session i+1 carries inputs[i].
	matched := 0
	for id, buf := range outputs {
		if sessErr[id] != nil {
			t.Fatalf("session %d err: %v", id, sessErr[id])
		}
		for _, in := range inputs {
			if bytes.Equal(buf.Bytes(), in) {
				matched++
				break
			}
		}
	}
	if matched != 3 {
		t.Fatalf("only %d/3 session payloads matched inputs", matched)
	}
}

func TestChanSourceStatsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(1<<20, 9)
	p.transferBytes(t, data)
	stCh := make(chan Stats, 1)
	p.srcLoop.Post(0, func() { stCh <- p.source.Stats() })
	st := <-stCh
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats bytes = %d, want %d", st.Bytes, len(data))
	}
	if st.Blocks == 0 || st.CtrlMsgs == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Elapsed() <= 0 {
		t.Fatalf("elapsed = %v", st.Elapsed())
	}
}
