package core

import (
	"bytes"
	"testing"

	"rftp/internal/fabric/chanfabric"
)

func TestSimImmNotifyTransferCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 16
	cfg.NotifyViaImm = true
	p := newSimPipe(t, lanLink(), cfg)
	total := int64(256 << 20)
	srcRes, sinkRes := p.runTransfer(t, total)
	if srcRes.Err != nil || sinkRes.Err != nil {
		t.Fatalf("errors: %v %v", srcRes.Err, sinkRes.Err)
	}
	if srcRes.Bytes != total || sinkRes.Bytes != total {
		t.Fatalf("bytes: %d %d", srcRes.Bytes, sinkRes.Bytes)
	}
}

func TestSimImmNotifySavesControlMessages(t *testing.T) {
	run := func(imm bool) (int64, int64) {
		cfg := DefaultConfig()
		cfg.BlockSize = 1 << 20
		cfg.IODepth = 16
		cfg.NotifyViaImm = imm
		p := newSimPipe(t, lanLink(), cfg)
		p.runTransfer(t, 128<<20)
		return p.source.Stats().CtrlMsgs, p.source.Stats().Blocks
	}
	ctrlMsgs, blocks := run(false)
	immMsgs, immBlocks := run(true)
	if blocks != immBlocks {
		t.Fatalf("block counts differ: %d vs %d", blocks, immBlocks)
	}
	// Immediate mode removes one control message per block.
	if ctrlMsgs-immMsgs < blocks {
		t.Fatalf("imm mode saved only %d messages over %d blocks", ctrlMsgs-immMsgs, blocks)
	}
}

func TestSimImmNotifyWANSaturates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 4 << 20
	cfg.IODepth = 64
	cfg.SinkBlocks = 128
	cfg.NotifyViaImm = true
	p := newSimPipe(t, wanLink(), cfg)
	p.runTransfer(t, 2<<30)
	bw := p.source.Stats().BandwidthGbps()
	if bw < 8 || bw > 10 {
		t.Fatalf("imm-mode WAN bandwidth = %.1f Gbps, want 8-10", bw)
	}
}

func TestChanImmNotifyIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64 << 10
	cfg.Channels = 4
	cfg.IODepth = 16
	cfg.NotifyViaImm = true
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(2<<20+4321, 11)
	got := p.transferBytes(t, data)
	if !bytes.Equal(got, data) {
		t.Fatalf("imm-mode stream corrupted: %d vs %d bytes", len(got), len(data))
	}
}

func TestSimImmNotifyMultiSession(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	cfg.IODepth = 32
	cfg.NotifyViaImm = true
	p := newSimPipe(t, lanLink(), cfg)
	got := map[uint32]TransferResult{}
	p.source.Start(func(err error) {
		if err != nil {
			t.Errorf("nego: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			src := &ModelSource{Total: 64 << 20, Loader: p.loader, NsPerByte: 0.16}
			p.source.Transfer(src, 64<<20, func(r TransferResult) { got[r.Session] = r })
		}
	})
	p.sched.RunAll()
	if len(got) != 3 {
		t.Fatalf("finished %d sessions, want 3", len(got))
	}
	for id, r := range got {
		if r.Err != nil || r.Bytes != 64<<20 {
			t.Fatalf("session %d: %+v", id, r)
		}
	}
}
