package core

// Session manager: admission control and the per-tenant credit
// scheduler (DESIGN.md §5.3.5).
//
// The sink multiplexes many concurrent sessions onto one shared set of
// data channels and one shared block pool. Three mechanisms keep that
// sharing safe and fair:
//
//   - Admission control bounds concurrency: a SESSION_REQ arriving at
//     Config.MaxSessions either waits in a bounded queue for a slot or
//     is answered SESSION_BUSY (MsgSessionResp + wire.FlagBusy), so an
//     overloaded service degrades by turning tenants away, not by
//     thrashing the ones it accepted.
//
//   - A deficit-round-robin scheduler partitions the adaptive credit
//     window across sessions: each flush sweep deposits weight×quantum
//     into every eligible session's deficit and grants up to that
//     deficit, capped at the session's window share win·wᵢ/Σw. The
//     caps are the per-session memory bound (O(window) blocks total,
//     independent of session count) and, because outstanding credits
//     gate throughput exactly like a transport window, they are also
//     what makes per-tenant rates proportional to weights.
//
//   - Reclaim-on-close returns every granted-but-unlanded block to the
//     pool — but only once no straggling WRITE can still land in it.
//     Normal completion is always safe (the source drains before
//     DATASET_COMPLETE and drops unused credits). Aborts carry the
//     source's successful-WRITE count in AssocData; if arrivals at the
//     sink have not caught up to that count yet, the session parks as
//     a zombie until the stragglers drain out of the data CQs, then
//     its remaining blocks are reclaimed in one step.

import (
	"fmt"
	"time"

	"rftp/internal/invariant"
	"rftp/internal/trace"
	"rftp/internal/wire"
)

// pendingOpen is a SESSION_REQ waiting for a session slot.
type pendingOpen struct {
	tok   uint32 // request token, echoed back in SESSION_RESP.Seq
	total int64
	pull  bool // FlagModePull: open directly on the pull path
}

// zombieSession tracks an aborted session whose granted blocks cannot
// all be reclaimed yet: the source's abort confirm (AssocData = its
// successful-WRITE count) may overtake arrival completions still queued
// in the data CQs, and reclaiming a block whose WRITE already landed
// would hand a busy region to another tenant. The zombie absorbs the
// straggling arrivals; once arrived == consumed the remaining owned
// blocks are provably untouched and return to the pool.
type zombieSession struct {
	owned     map[*block]struct{} // granted blocks that never arrived
	arrived   int64               // blocks landed for this session so far
	consumed  int64               // source's successful-WRITE count
	confirmed bool                // the source's abort confirm was seen
}

// handleSessionReq is phase-1 admission: accept, queue, or turn away.
func (k *Sink) handleSessionReq(c *wire.Control) {
	if k.pool == nil {
		k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp, Seq: c.Seq})
		return
	}
	pull := c.Flags&wire.FlagModePull != 0
	if pull && k.cfg.TransferMode == ModePush {
		// Push-only policy: a session asking to open on the pull path is
		// a hard rejection, not a capacity condition.
		k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp, Seq: c.Seq})
		return
	}
	if k.cfg.MaxSessions > 0 && len(k.schedOrder) >= k.cfg.MaxSessions {
		if len(k.openQ) < k.cfg.SessionQueue {
			k.openQ = append(k.openQ, pendingOpen{tok: c.Seq, total: int64(c.AssocData), pull: pull})
			k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_queued",
				V1: int64(len(k.openQ))})
			if t := k.tel; t != nil {
				t.sessionsQueued.Set(int64(len(k.openQ)))
			}
			return
		}
		k.stats.SessionsRejected++
		k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_busy",
			V1: k.stats.SessionsRejected})
		if t := k.tel; t != nil {
			t.sessionsRejected.Inc()
		}
		k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp, Flags: wire.FlagBusy, Seq: c.Seq})
		return
	}
	k.admitSession(c.Seq, int64(c.AssocData), pull)
}

// admitSession opens one session and pushes its initial credit share
// (pull sessions take no credits; the source's advertisements drive
// them instead).
func (k *Sink) admitSession(tok uint32, total int64, pull bool) {
	k.nextID++
	sess := &sinkSession{
		info:   SessionInfo{ID: k.nextID, Total: total, BlockSize: k.blockSize},
		ready:  make(map[uint32]*block),
		owned:  make(map[*block]struct{}),
		weight: k.weightFor(k.nextID),
	}
	if pull {
		sess.mode = ModePull
	} else {
		k.pushSessions++
	}
	sess.writer = k.NewWriter(sess.info)
	if os, ok := sess.writer.(OffsetSink); ok && os.OffsetStores() {
		sess.offsetSink = os
		sess.ooo = make(map[uint32]struct{})
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_accept",
		Session: sess.info.ID, V1: sess.info.Total})
	if k.tel != nil {
		sess.telBytes, sess.telBlocks = k.tel.sessionCounters(sess.info.ID)
		sess.telSchedWait = k.tel.sessionSchedWait(sess.info.ID)
	}
	k.sessions[sess.info.ID] = sess
	k.schedOrder = append(k.schedOrder, sess)
	if t := k.tel; t != nil {
		t.sessionsActive.Set(int64(len(k.schedOrder)))
	}
	if k.stats.Start == 0 {
		k.stats.Start = k.ep.Loop.Now()
	}
	if k.OnSessionOpen != nil {
		k.OnSessionOpen(sess.info)
	}
	k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp, Flags: wire.FlagAccept,
		Session: sess.info.ID, Seq: tok})
	if pull {
		return // no credit feed: the source advertises, we fetch
	}
	// The session is needy until its first grant; if the pool is busy
	// with other tenants, the wait is real scheduler latency.
	sess.needy = true
	sess.needySince = k.ep.Loop.Now()
	if k.cfg.CreditPolicy == CreditProactive {
		want := k.cfg.InitialCredits
		if c := k.sessionCap(sess); want > c {
			want = c
		}
		k.grantCredits(sess, want, grantInitial)
	}
}

// admitQueued drains the admission queue into freed session slots.
func (k *Sink) admitQueued() {
	for len(k.openQ) > 0 && k.failed == nil && !k.closed &&
		(k.cfg.MaxSessions == 0 || len(k.schedOrder) < k.cfg.MaxSessions) {
		req := k.openQ[0]
		k.openQ = k.openQ[1:]
		k.admitSession(req.tok, req.total, req.pull)
	}
	if t := k.tel; t != nil {
		t.sessionsQueued.Set(int64(len(k.openQ)))
	}
}

// weightFor maps a session id onto Config.TenantWeights (round-robin
// over the configured list; empty list = equal weight 1).
func (k *Sink) weightFor(id uint32) int {
	if len(k.cfg.TenantWeights) == 0 {
		return 1
	}
	return k.cfg.TenantWeights[int(id-1)%len(k.cfg.TenantWeights)]
}

// totalWeight sums the active push-path sessions' scheduler weights:
// pull sessions take no credits, so their weight must not dilute the
// window shares of the tenants the scheduler actually feeds.
func (k *Sink) totalWeight() int {
	w := 0
	for _, s := range k.schedOrder {
		if !s.finished && s.mode != ModePull {
			w += s.weight
		}
	}
	return w
}

// sessionCap is one session's share of the credit window — at least
// one block, so every admitted tenant can always make progress. The
// caps bound per-session memory (the shares sum to ~the window,
// independent of session count) and, since outstanding credits gate
// throughput exactly like a transport window, they are what makes
// per-tenant rates proportional to weights.
func (k *Sink) sessionCap(sess *sinkSession) int {
	return k.shareOf(k.targetWindow(), sess.weight, k.totalWeight())
}

func (k *Sink) shareOf(win, weight, totW int) int {
	if totW <= 0 {
		return 1
	}
	c := win * weight / totW
	if c < 1 {
		c = 1
	}
	return c
}

// schedSweep runs one deficit-round-robin sweep over the active
// sessions, granting up to budget credits from the coalescer's pending
// batch, one MR_INFO_RESPONSE per session granted. Each eligible
// session banks weight×quantum of deficit and receives up to that
// deficit, capped at its window share and the remaining budget; a
// session at its cap forfeits its deficit (classic DRR — an ineligible
// flow must not bank credit while idle). The sweep cursor rotates past
// the last session granted so a fresh batch does not always feed the
// same tenant first. Returns the credits granted; zero means the pool
// ran dry or no session is eligible, and the caller drops the rest of
// the batch exactly as the unbatched protocol dropped grants that
// found no free block.
func (k *Sink) schedSweep(budget int) int {
	n := len(k.schedOrder)
	if n == 0 || k.pool == nil || budget <= 0 {
		return 0
	}
	win := k.targetWindow()
	totW := k.totalWeight()
	if totW == 0 {
		return 0
	}
	quantum := budget / totW
	if quantum < 1 {
		quantum = 1
	}
	granted, last := 0, -1
	for i := 0; i < n && granted < budget; i++ {
		idx := (k.nextRR + i) % n
		sess := k.schedOrder[idx]
		if sess.finished || sess.mode == ModePull {
			continue
		}
		if sess.granted >= k.shareOf(win, sess.weight, totW) {
			sess.deficit = 0
			continue
		}
		sess.deficit += sess.weight * quantum
		want := sess.deficit
		if m := k.shareOf(win, sess.weight, totW) - sess.granted; want > m {
			want = m
		}
		if m := budget - granted; want > m {
			want = m
		}
		got := k.sendGrantTo(sess, want, "grant_flush")
		if got == 0 {
			break // pool dry
		}
		sess.deficit -= got
		granted += got
		last = idx
	}
	if last >= 0 {
		k.nextRR = (last + 1) % n
	}
	return granted
}

// reclaimOwned returns a retired session's granted-but-unlanded blocks
// to the pool, attributing each to the owning session's ledger. Only
// call once no WRITE can still land in them (see zombieSession).
// Returns the number of blocks reclaimed.
// dropOwned removes b from sess's grant ledger, reversing the
// grant-side accounting. Blocks normally leave the ledger at
// markArrived; this covers teardown paths that recycle a block still
// on the ledger (e.g. one parked in reassembly), so the later
// owned-reclaim pass cannot double-recycle it.
func (k *Sink) dropOwned(sess *sinkSession, b *block) {
	if _, ok := sess.owned[b]; !ok {
		return
	}
	delete(sess.owned, b)
	invariant.MRWriteEnd(k.inv, b.mr.RKey)
	invariant.GaugeAdd(k.inv, "granted", 0, -1)
	invariant.GaugeAdd(k.inv, "sess.granted", int(sess.info.ID), -1)
	k.granted--
	if sess.granted > 0 {
		sess.granted--
	}
	if t := k.tel; t != nil {
		t.granted.Set(int64(k.granted))
	}
}

func (k *Sink) reclaimOwned(id uint32, owned map[*block]struct{}) int {
	n := 0
	for b := range owned {
		invariant.MRWriteEnd(k.inv, b.mr.RKey)
		invariant.GaugeAdd(k.inv, "granted", 0, -1)
		invariant.GaugeAdd(k.inv, "sess.granted", int(id), -1)
		k.granted--
		k.stats.CreditsReclaimed++
		b.setState(BlockFree)
		k.pool.put(b)
		n++
	}
	if n > 0 {
		k.Trace.Emit(trace.Event{Cat: trace.CatCredit, Name: "credits_reclaimed",
			Session: id, V1: int64(n), V2: int64(k.granted)})
		if t := k.tel; t != nil {
			t.granted.Set(int64(k.granted))
		}
	}
	return n
}

// zombieArrival retires an arrival for a session that is already torn
// down: a WRITE that raced the teardown. The block recycles without
// delivery; an arrival no zombie expects is a protocol violation.
func (k *Sink) zombieArrival(b *block) {
	z := k.zombies[b.session]
	if z == nil {
		k.fail(fmt.Errorf("%w: block for unknown session %d", ErrProtocol, b.session))
		return
	}
	delete(z.owned, b)
	z.arrived++
	k.stats.CreditsReclaimed++
	b.setState(BlockFree)
	k.pool.put(b)
	k.maybeReapZombie(b.session, z)
}

// maybeReapZombie reclaims a zombie's remaining blocks once the
// source's confirm arrived and every WRITE it reported has landed.
// The freed blocks re-enter circulation through the coalescer so a
// teardown does not shrink the working pool for surviving tenants.
func (k *Sink) maybeReapZombie(id uint32, z *zombieSession) {
	if !z.confirmed || z.arrived < z.consumed {
		return
	}
	delete(k.zombies, id)
	n := k.reclaimOwned(id, z.owned)
	if n > 0 && len(k.sessions) > 0 &&
		k.cfg.CreditPolicy == CreditProactive && !k.cfg.NoGrantOnFree {
		k.queueGrants(n, grantOnFree)
	}
}

// handleAbort processes MsgAbort: connection-fatal when Session is 0,
// otherwise a single-session teardown. AssocData carries the source's
// successful-WRITE count for the session (its drain confirm), which
// decides whether reclaim is safe now or must wait for stragglers.
func (k *Sink) handleAbort(c *wire.Control) {
	if c.Session == 0 {
		k.fail(ErrAborted)
		return
	}
	if sess, ok := k.sessions[c.Session]; ok {
		// Source-initiated abort, sent only after the source drained its
		// in-flight WRITEs. If every write it made already landed here,
		// reclaim inline; otherwise park a zombie for the stragglers
		// still queued in the data CQs.
		consumed := int64(c.AssocData)
		if sess.arrived >= consumed {
			k.finishSession(sess, ErrAborted, true)
		} else {
			k.finishSession(sess, ErrAborted, false)
			if z := k.zombies[c.Session]; z != nil {
				z.confirmed = true
				z.consumed = consumed
				k.maybeReapZombie(c.Session, z)
			}
		}
		return
	}
	if z := k.zombies[c.Session]; z != nil && !z.confirmed {
		// The source's drain confirm for a session we aborted first.
		z.confirmed = true
		z.consumed = int64(c.AssocData)
		k.maybeReapZombie(c.Session, z)
	}
	// Otherwise: a crossed teardown already fully resolved — ignore.
}

// noteNeedy stamps the instant a live session ran out of outstanding
// credits: from here until the scheduler feeds it again, the tenant is
// waiting on a scheduling slot, not on memory, storage, or the wire.
func (k *Sink) noteNeedy(sess *sinkSession, now time.Duration) {
	if sess.needy || sess.haveLast || sess.finished || sess.mode == ModePull {
		return
	}
	sess.needy = true
	sess.needySince = now
}

// chargeSchedWait closes an open needy interval, attributing the wait
// to the session's stall_sched_wait_ns counter (picked up by
// spans.TopStall through the per-session registry subtree).
func (k *Sink) chargeSchedWait(sess *sinkSession, now time.Duration) {
	if !sess.needy {
		return
	}
	sess.needy = false
	if d := now - sess.needySince; d > 0 && sess.telSchedWait != nil {
		sess.telSchedWait.Add(int64(d))
	}
}
