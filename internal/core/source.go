package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"rftp/internal/invariant"
	"rftp/internal/spans"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// Source is the data-source side of the protocol: it negotiates
// parameters, loads blocks through a BlockSource, pairs loaded blocks
// with remote-memory credits, and streams them over the data channel
// queue pairs with RDMA WRITE, notifying the sink of each completed
// block on the control queue pair.
//
// All methods must be called from the endpoint's control loop (or
// before any fabric activity); all callbacks are delivered on that
// loop. On a sharded endpoint the WRITE posting and completion path
// runs on the reactor shards (see shard.go); everything else stays on
// the control loop.
type Source struct {
	ep  *Endpoint
	cfg Config

	pool   *pool
	shards []*srcShard
	// creditCount is the sum of per-session credit stashes (sessions own
	// their credits; the sink's scheduler targets grants by session id).
	creditCount int

	// pumping/repump collapse re-entrant pump calls (an inline shard
	// handoff can bounce an event back mid-postWrites) into one loop.
	pumping bool
	repump  bool

	ctrlWR    verbs.SendWR // reused control-post WR (PostSend copies)
	loadTasks []*loadTask  // free list of load completion carriers

	ctrlQ    [][]byte // encoded control messages awaiting queue space
	negoStep int      // 0 idle, 1 block size sent, 2 channels sent, 3 done
	onReady  func(error)
	openQ    []*srcSession // waiting to send SESSION_REQ
	// opening holds sessions whose SESSION_REQ is outstanding, up to
	// maxOpenInflight deep so thousands of Transfer calls pipeline their
	// handshakes instead of serializing one round trip each. Responses
	// are matched by the request token echoed in the Seq field, so a
	// sink that answers out of order (admission queue) still resolves.
	opening    []*srcSession
	nextTok    uint32
	sessions   map[uint32]*srcSession
	rrSessions []*srcSession // load scheduling order
	nextSess   int           // postWrites round-robin cursor into rrSessions
	loadRR     int           // issueLoads round-robin cursor into rrSessions

	chInflight  []int // per data QP
	chDead      []bool
	chSaturated []bool // PostSend hit ErrSendQueueFull; cleared on next WC
	nextCh      int

	// Pull-mode advertise pipeline (pullmode.go): total advertisements
	// outstanding across sessions, the postAdverts round-robin cursor,
	// and the advertise-window estimator — the sink's adaptive credit
	// window run in reverse (advert→READ_DONE RTT min-filtered over a
	// sliding window, READ_DONE inter-arrival gap as an epoch EWMA).
	advertCount    int
	nextAdvSess    int
	advRTT         time.Duration
	advRTTAge      int
	advGap         time.Duration
	advSamples     int
	advEpochStart  time.Duration
	advEpochBlocks int

	// inv is the debug-build invariant ledger (no-op handle otherwise).
	inv uint64

	stats  Stats
	closed bool
	failed error
	// dead is the only Source field shards read without an ownership
	// handoff: it is set exclusively by Close so late completions stop
	// touching torn-down state, exactly where the unsharded reactor
	// checked closed.
	dead atomic.Bool
	// OnError observes fatal connection-level failures.
	OnError func(error)
	// OnProgress, when set, observes cumulative payload bytes confirmed
	// per session (fires on every block completion, on the loop).
	OnProgress func(session uint32, bytes int64)
	// Trace, when set, records protocol events into a ring buffer.
	Trace *trace.Ring
	// tel holds resolved metric handles; nil when telemetry is detached
	// (see AttachTelemetry).
	tel *sourceTelemetry
	// spans/stalls hold the lifecycle span recorder and the stall
	// attributor; nil when detached (see AttachSpans).
	spans  *spans.Recorder
	stalls *spans.StallTracker
}

// srcSession is one dataset transfer in progress at the source.
type srcSession struct {
	id      uint32
	openTok uint32 // SESSION_REQ token (echoed in SESSION_RESP.Seq)
	src     BlockSource
	srcAt   BlockSourceAt // non-nil when src is offset-addressed
	total   int64         // advisory; EOF from the BlockSource is authoritative
	sent    int64
	blocks  int64
	nextSeq uint32
	// loadedQ and credits are this session's private queues: blocks
	// loaded and waiting for a credit, and credits granted by the sink's
	// scheduler to this session. Keeping them per session is what lets
	// postWrites interleave sessions — one session exhausting its credit
	// share can no longer park its blocks at the head of a shared FIFO
	// and stall every other session behind it.
	loadedQ []*block
	credits []wire.Credit
	stalled bool // session-scoped MR_INFO_REQUEST outstanding
	// aborting marks a session draining toward teardown: no new loads or
	// posts are issued, in-flight loads and WRITEs are recycled as they
	// complete, and only when the last one lands does the source send
	// MsgAbort for the session — so the sink never reclaims a granted
	// block that a straggling WRITE could still hit.
	aborting bool
	abortErr error
	// nextOffset is the byte offset of the next load. Offset-addressed
	// sessions advance it by the full payload capacity at issue time
	// (seq and offset are fixed before the load completes, so loads
	// overlap); serial sessions advance it by the actual length at
	// completion.
	nextOffset uint64
	loads      int // Loads issued, not yet completed
	eof        bool
	inflight   int // blocks sending/waiting
	queued     int // blocks in s.loaded
	completeTx bool
	onDone     func(TransferResult)

	// Pull-mode state (pullmode.go): the session's current data path,
	// blocks advertised and awaiting READ_DONE (by seq), and the
	// mode-change handshake in progress.
	mode          TransferMode
	advertised    map[uint32]*block
	switching     bool
	pendingMode   TransferMode
	switchReqSent bool
	// Hybrid-controller state: blocks completed at the last switch and
	// per-mode goodput EWMAs (blocks/sec; [0]=push, [1]=pull) fed by
	// fixed-size completion epochs.
	lastSwitchBlocks int64
	modeRate         [2]float64
	rateEpochStart   time.Duration
	rateEpochBlocks  int
}

// loadDepth is how many loads this session may keep in flight: plain
// BlockSources are strictly serial (the next load's offset depends on
// the previous load's length); offset-addressed sources pipeline up to
// Config.LoadDepth.
func (sess *srcSession) loadDepth(cfg *Config) int {
	if sess.srcAt == nil {
		return 1
	}
	return cfg.LoadDepth
}

// TransferResult reports one finished dataset transfer.
type TransferResult struct {
	Session uint32
	Bytes   int64
	Blocks  int64
	Err     error
}

// NewSource creates the source on an endpoint. Call Start to negotiate,
// then Transfer for each dataset.
func NewSource(ep *Endpoint, cfg Config) (*Source, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Channels != len(ep.Data) {
		return nil, fmt.Errorf("core: config asks %d channels, endpoint has %d", cfg.Channels, len(ep.Data))
	}
	s := &Source{
		ep:          ep,
		cfg:         cfg,
		sessions:    make(map[uint32]*srcSession),
		chInflight:  make([]int, len(ep.Data)),
		chDead:      make([]bool, len(ep.Data)),
		chSaturated: make([]bool, len(ep.Data)),
		inv:         invariant.NewConn("source"),
	}
	// RemoteRead exposure lets the pull path advertise any loaded block
	// for one-sided READs without re-registering; harmless under push.
	s.pool, err = newPool(ep.Dev, ep.PD, cfg.IODepth, cfg.BlockSize, cfg.ModelPayload, verbs.AccessLocalWrite|verbs.AccessRemoteRead, ep.MRCache)
	if err != nil {
		return nil, err
	}
	ep.CtrlCQ.SetHandler(s.onCtrlWC)
	for i := range ep.DataCQs {
		s.shards = append(s.shards, newSrcShard(s, i, cfg.IODepth+dataQueueSlack))
	}
	return s, nil
}

// onShardEvent is the control-plane entry point for shard events: the
// block in the event just changed owner, back to the control loop.
func (s *Source) onShardEvent(ev srcEvent) {
	if s.closed {
		return
	}
	switch ev.kind {
	case srcEvWriteDone:
		s.writeDone(ev.b, ev.status)
	case srcEvPostFull:
		s.postReverted(ev.b, verbs.ErrSendQueueFull)
	case srcEvPostErr:
		s.postReverted(ev.b, ev.err)
	}
}

// Stats returns a snapshot of connection-level statistics.
func (s *Source) Stats() Stats { return s.stats }

// Config returns the normalized configuration in use.
func (s *Source) Config() Config { return s.cfg }

// Start begins parameter negotiation (phase 1). onReady fires on the
// loop when both block size and channel count are accepted, or with an
// error.
func (s *Source) Start(onReady func(error)) {
	if s.negoStep != 0 {
		onReady(ErrBusy)
		return
	}
	s.Trace.Emit(trace.Event{Cat: trace.CatNego, Name: "nego_start",
		V1: int64(s.cfg.BlockSize), V2: int64(s.cfg.Channels)})
	s.onReady = onReady
	s.negoStep = 1
	if s.cfg.NegotiateTimeout > 0 {
		s.ep.Loop.After(s.cfg.NegotiateTimeout, func() {
			if s.negoStep != 3 && s.failed == nil && !s.closed {
				s.fail(fmt.Errorf("core: negotiation timed out after %v", s.cfg.NegotiateTimeout))
			}
		})
	}
	var flags uint8
	if s.cfg.NotifyViaImm {
		flags |= wire.FlagImmNotify
	}
	s.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeReq, Flags: flags, AssocData: uint64(s.cfg.BlockSize)})
}

// Transfer queues one dataset. total is advisory (sent to the sink in
// SESSION_REQ); the BlockSource's EOF decides the true length. onDone
// fires on the loop when the sink acknowledged the complete dataset.
func (s *Source) Transfer(src BlockSource, total int64, onDone func(TransferResult)) {
	if s.failed != nil || s.closed {
		onDone(TransferResult{Err: firstErr(s.failed, ErrClosed)})
		return
	}
	sess := &srcSession{src: src, total: total, onDone: onDone,
		mode: s.initialMode(), advertised: make(map[uint32]*block)}
	sess.srcAt, _ = src.(BlockSourceAt)
	s.openQ = append(s.openQ, sess)
	s.tryOpenSession()
}

// Abort cancels one in-flight transfer; the connection and its other
// sessions survive. The session's onDone fires with ErrAborted once
// its in-flight loads and WRITEs drain and the sink has been told.
func (s *Source) Abort(session uint32) {
	if sess := s.sessions[session]; sess != nil {
		s.abortSession(sess, ErrAborted)
	}
}

// Close tears the connection down. In-flight transfers fail.
func (s *Source) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.dead.Store(true)
	s.failSessions(ErrClosed)
	s.ep.Close()
	s.pool.release(s.inv)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// sendCtrl encodes and queues a control message. Sends are signaled so
// completions drain the queue when the send queue was momentarily full.
func (s *Source) sendCtrl(c *wire.Control) {
	buf, err := c.Encode(nil)
	if err != nil {
		s.fail(fmt.Errorf("core: encoding %v: %w", c.Type, err))
		return
	}
	s.stats.CtrlMsgs++
	if s.tel != nil {
		s.tel.ctrlMsgs.Inc()
	}
	s.ctrlQ = append(s.ctrlQ, buf)
	s.pumpCtrl()
}

// pumpCtrl posts queued control messages while the send queue accepts
// them; ErrSendQueueFull waits for a send completion.
func (s *Source) pumpCtrl() {
	for len(s.ctrlQ) > 0 {
		s.ctrlWR = verbs.SendWR{Op: verbs.OpSend, Data: s.ctrlQ[0]}
		err := s.ep.Ctrl.PostSend(&s.ctrlWR)
		if err == verbs.ErrSendQueueFull {
			return
		}
		if err != nil {
			s.fail(fmt.Errorf("core: posting control message: %w", err))
			return
		}
		s.ctrlQ = s.ctrlQ[1:]
	}
}

// maxOpenInflight bounds concurrent SESSION_REQs outstanding, keeping
// the control receive ring ahead of a caller queueing thousands of
// transfers at once while still pipelining the open handshakes.
const maxOpenInflight = 16

func (s *Source) tryOpenSession() {
	for len(s.opening) < maxOpenInflight && len(s.openQ) > 0 && s.negoStep == 3 && s.failed == nil {
		sess := s.openQ[0]
		s.openQ = s.openQ[1:]
		s.nextTok++
		sess.openTok = s.nextTok
		s.opening = append(s.opening, sess)
		var flags uint8
		if sess.mode == ModePull {
			flags |= wire.FlagModePull
		}
		s.sendCtrl(&wire.Control{
			Type:      wire.MsgSessionReq,
			Flags:     flags,
			Seq:       sess.openTok,
			Length:    uint32(s.cfg.BlockSize),
			AssocData: uint64(sess.total),
		})
	}
}

// popOpening resolves a SESSION_RESP to its request by the echoed
// token; responses normally arrive in request order, so the head hit
// is the common case.
func (s *Source) popOpening(tok uint32) *srcSession {
	for i, sess := range s.opening {
		if sess.openTok == tok {
			s.opening = append(s.opening[:i], s.opening[i+1:]...)
			return sess
		}
	}
	return nil
}

// onCtrlWC handles control queue completions.
func (s *Source) onCtrlWC(wc verbs.WC) {
	if s.closed {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		if wc.Status == verbs.StatusFlushed {
			return
		}
		s.fail(fmt.Errorf("core: control QP failure: %v", wc.Status))
		return
	}
	if wc.Op != verbs.OpRecv {
		s.pumpCtrl() // a send slot freed; drain queued control messages
		return
	}
	c, err := wire.DecodeControl(wc.Data)
	if err != nil {
		s.fail(fmt.Errorf("core: bad control message: %w", err))
		return
	}
	if err := s.ep.repostCtrlRecv(wc.WRID); err != nil && !s.closed {
		s.fail(fmt.Errorf("core: reposting control recv: %w", err))
		return
	}
	s.handleCtrl(c)
}

func (s *Source) handleCtrl(c *wire.Control) {
	switch c.Type {
	case wire.MsgBlockSizeResp:
		if s.negoStep != 1 {
			return
		}
		if c.Flags&wire.FlagAccept == 0 {
			s.finishNego(ErrNegotiationRejected)
			return
		}
		if s.cfg.NotifyViaImm && c.Flags&wire.FlagImmNotify == 0 {
			// The sink did not adopt immediate notification.
			s.finishNego(ErrNegotiationRejected)
			return
		}
		s.negoStep = 2
		s.sendCtrl(&wire.Control{Type: wire.MsgChannelsReq, AssocData: uint64(s.cfg.Channels)})

	case wire.MsgChannelsResp:
		if s.negoStep != 2 {
			return
		}
		if c.Flags&wire.FlagAccept == 0 {
			s.finishNego(ErrNegotiationRejected)
			return
		}
		s.negoStep = 3
		s.Trace.Emit(trace.Event{Cat: trace.CatNego, Name: "nego_complete"})
		s.finishNego(nil)
		s.tryOpenSession()

	case wire.MsgSessionResp:
		sess := s.popOpening(c.Seq)
		if sess == nil {
			return
		}
		if c.Flags&wire.FlagAccept == 0 {
			err := ErrNegotiationRejected
			if c.Flags&wire.FlagBusy != 0 {
				err = ErrSessionBusy
			}
			sess.onDone(TransferResult{Err: err})
			s.tryOpenSession()
			return
		}
		sess.id = c.Session
		s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_open",
			Session: sess.id, V1: sess.total})
		s.sessions[sess.id] = sess
		s.rrSessions = append(s.rrSessions, sess)
		if s.stats.Start == 0 {
			s.stats.Start = s.ep.Loop.Now()
		}
		s.pump()
		s.tryOpenSession()

	case wire.MsgMRInfoResponse:
		invariant.CreditGrant(s.inv, int64(len(c.Credits)))
		s.stats.CreditsGranted += int64(len(c.Credits))
		s.stats.GrantMsgs++
		sess := s.sessions[c.Session]
		if sess == nil || sess.completeTx || sess.aborting || sess.mode == ModePull {
			// Credits for a session that finished, is draining, or has
			// switched to the pull path: the grant crossed the teardown
			// (or the mode switch) on the wire. Drop them — the sink
			// reclaims the backing blocks when it processes the
			// session's completion, abort, or switch.
			invariant.CreditConsume(s.inv, int64(len(c.Credits)))
			s.pump()
			return
		}
		sess.stalled = false
		sess.credits = append(sess.credits, c.Credits...)
		s.creditCount += len(c.Credits)
		if s.tel != nil {
			s.tel.creditsRecv.Add(int64(len(c.Credits)))
			s.tel.creditStash.Set(int64(s.creditCount))
		}
		s.Trace.Emit(trace.Event{Cat: trace.CatCredit, Name: "credits_recv",
			Session: c.Session, V1: int64(len(c.Credits)), V2: int64(s.creditCount)})
		s.pump()

	case wire.MsgDatasetCompleteAck:
		sess := s.sessions[c.Session]
		if sess == nil {
			return
		}
		s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "complete_ack",
			Session: sess.id, V1: sess.sent, V2: sess.blocks})
		s.removeSession(sess)
		sess.onDone(TransferResult{Session: sess.id, Bytes: sess.sent, Blocks: sess.blocks})

	case wire.MsgAbort:
		if c.Session == 0 {
			s.fail(ErrAborted)
			return
		}
		if sess := s.sessions[c.Session]; sess != nil {
			s.abortSession(sess, ErrAborted)
			return
		}
		// Unknown session: the sink's abort crossed our own teardown on
		// the wire, and our drain confirm (carrying the write count) is
		// already ahead of it. Nothing to do — replying would just
		// duplicate that confirm.

	case wire.MsgReadDone:
		s.handleReadDone(c)

	case wire.MsgModeSwitchAck:
		s.handleModeSwitchAck(c)

	default:
		// Request-direction types (and anything a newer peer invents) are
		// not ours to handle; drop them loudly enough to show up in a
		// trace dump instead of presenting as a silent hang.
		s.Trace.Emit(trace.Event{Cat: trace.CatError, Name: "ctrl_unhandled",
			Session: c.Session, V1: int64(c.Type)})
	}
}

func (s *Source) finishNego(err error) {
	if cb := s.onReady; cb != nil {
		s.onReady = nil
		cb(err)
	}
	if err != nil {
		s.fail(err)
	}
}

func (s *Source) removeSession(sess *srcSession) {
	delete(s.sessions, sess.id)
	invariant.StreamReset(s.inv, sess.id)
	for i, r := range s.rrSessions {
		if r == sess {
			s.rrSessions = append(s.rrSessions[:i], s.rrSessions[i+1:]...)
			break
		}
	}
}

// pump advances the source state machine: issue loads, pair loaded
// blocks with credits, post WRITEs, request credits on starvation, and
// send dataset-complete when drained.
func (s *Source) pump() {
	if s.failed != nil || s.closed {
		return
	}
	// A shard event arriving inline (shard 0 shares this loop) can call
	// pump from inside postWrites; fold such calls into one outer loop
	// instead of recursing through a half-advanced state machine.
	if s.pumping {
		s.repump = true
		return
	}
	s.pumping = true
	for {
		s.repump = false
		s.pumpOnce()
		if !s.repump || s.failed != nil || s.closed {
			break
		}
	}
	s.pumping = false
}

func (s *Source) pumpOnce() {
	s.issueLoads()
	s.postWrites()
	s.postAdverts()
	// Credit starvation fallback, per session: data is ready but the
	// session holds no credits and has no outstanding request (paper: MR
	// block information request, now scoped to the starving session so
	// the sink's scheduler knows which tenant to feed). Pull and
	// mode-switching sessions don't consume credits, so they never ask.
	for _, sess := range s.rrSessions {
		if len(sess.loadedQ) == 0 || len(sess.credits) > 0 || sess.stalled || sess.aborting ||
			sess.mode == ModePull || sess.switching {
			continue
		}
		sess.stalled = true
		s.stats.CreditStalls++
		if s.tel != nil {
			s.tel.creditStalls.Inc()
		}
		s.Trace.Emit(trace.Event{Cat: trace.CatCredit, Name: "credit_stall",
			Session: sess.id, V1: s.stats.CreditStalls, V2: int64(len(sess.loadedQ))})
		s.sendCtrl(&wire.Control{Type: wire.MsgMRInfoRequest, Session: sess.id})
	}
	// Credit conservation: every granted credit is either consumed by a
	// posted WRITE, dropped at session teardown, or still in a stash.
	invariant.CreditOutstanding(s.inv, int64(s.creditCount))
	s.checkSessionCompletion()
	s.noteStall()
}

// issueLoads starts block loads (get_free_blk in the paper's FSM):
// round-robin over sessions, each allowed up to its load depth in
// flight, blocks permitting. Offset-addressed sessions fix seq and
// offset at issue time, so many loads overlap and completions may
// arrive in any order — the storage stage pipelines like the network
// stages already do.
func (s *Source) issueLoads() {
	n := len(s.rrSessions)
	if n == 0 {
		return
	}
	// Contention-time prefetch bounds: with several sessions sharing the
	// block pool, a credit-starved session must not keep loading ahead —
	// unbounded prefetch parks the whole pool in a few sessions' loaded
	// queues and the rest (credits in hand) cannot load at all. Each
	// session may stay an equal pool share ahead of its credits, and
	// prefetch beyond a session's credits may only use the pool's
	// surplus half: a load paired with an unspent credit always drains
	// (write, complete, recycle), so reserving half the pool for paired
	// loads keeps the pipeline deadlock-free even when parked sessions
	// outnumber the blocks. A lone session keeps the unbounded prefetch
	// that rides out credit dips.
	share, reserve := 0, 0
	if n > 1 {
		share = len(s.pool.blocks) / n
		if share < 1 {
			share = 1
		}
		reserve = len(s.pool.blocks) / 2
	}
	for progress := true; progress; {
		progress = false
		for i := 0; i < n; i++ {
			idx := (s.loadRR + i) % n
			sess := s.rrSessions[idx]
			if sess.eof || sess.aborting || sess.loads >= sess.loadDepth(&s.cfg) {
				continue
			}
			if share > 0 {
				ahead := sess.loads + len(sess.loadedQ)
				if ahead >= len(sess.credits)+share {
					continue
				}
				if ahead >= len(sess.credits) && len(s.pool.free) <= reserve {
					continue
				}
			}
			b := s.pool.get()
			if b == nil {
				// Dry: remember who was denied so the next freed block
				// goes to it, not back to the front of the list.
				s.loadRR = idx
				return
			}
			s.issueLoad(sess, b)
			s.loadRR = (idx + 1) % n
			progress = true
		}
	}
}

// issueLoad starts one load into b for sess.
func (s *Source) issueLoad(sess *srcSession, b *block) {
	sess.loads++
	b.setState(BlockLoading)
	if s.tel != nil {
		b.tAcq = s.ep.Loop.Now()
		s.tel.loadsInflight.Set(s.totalLoads())
	}
	b.session = sess.id
	b.seq = sess.nextSeq
	b.offset = sess.nextOffset
	b.spans.SetKey(b.spanRef, b.session, b.seq)
	invariant.SeqNext(s.inv, sess.id, b.seq)
	sess.nextSeq++
	var payload []byte
	if !s.cfg.ModelPayload {
		payload = b.mr.Buf[wire.BlockHeaderSize:]
	}
	capacity := s.cfg.PayloadCapacity()
	t := s.getLoadTask(sess, b)
	if sess.srcAt != nil {
		// Assume a full block; an EOF completion trims. Once any load
		// reports EOF no further loads are issued, so the stride error
		// never propagates into a sent block.
		sess.nextOffset += uint64(capacity)
		sess.srcAt.LoadAt(payload, capacity, b.offset, t.done)
	} else {
		sess.src.Load(payload, capacity, t.done)
	}
}

// loadTask carries one load completion from the storage backend onto
// the control loop without allocating per load: the done and run
// closures are bound once at construction and the task recycles
// through the Source's free list (control-loop only, so a plain slice
// suffices).
type loadTask struct {
	s    *Source
	sess *srcSession
	b    *block
	n    int
	eof  bool
	err  error
	done func(int, bool, error)
	run  func()
}

func (s *Source) getLoadTask(sess *srcSession, b *block) *loadTask {
	var t *loadTask
	if n := len(s.loadTasks); n > 0 {
		t = s.loadTasks[n-1]
		s.loadTasks = s.loadTasks[:n-1]
	} else {
		t = &loadTask{s: s}
		t.done = t.complete
		t.run = t.exec
	}
	t.sess, t.b = sess, b
	return t
}

// complete is handed to the BlockSource as its completion callback; it
// may run on any goroutine, so it only records the result and posts.
func (t *loadTask) complete(n int, eof bool, err error) {
	t.n, t.eof, t.err = n, eof, err
	t.s.ep.Loop.Post(0, t.run)
}

func (t *loadTask) exec() {
	s, sess, b, n, eof, err := t.s, t.sess, t.b, t.n, t.eof, t.err
	t.sess, t.b, t.err = nil, nil, nil
	s.loadTasks = append(s.loadTasks, t)
	s.loadDone(sess, b, n, eof, err)
}

func (s *Source) loadDone(sess *srcSession, b *block, n int, eof bool, err error) {
	if s.failed != nil || s.closed {
		return
	}
	sess.loads--
	if s.tel != nil {
		s.tel.loadsInflight.Set(s.totalLoads())
	}
	if s.sessions[sess.id] != sess || sess.aborting {
		// The session failed, finished, or is draining toward an abort
		// while this load was in flight; recycle the block and keep
		// other sessions moving.
		b.setState(BlockFree)
		s.pool.put(b)
		s.maybeFinishAbort(sess)
		s.pump()
		return
	}
	if err != nil {
		seq := b.seq
		b.setState(BlockFree)
		s.pool.put(b)
		s.abortSession(sess, fmt.Errorf("core: loading block %d: %w", seq, err))
		return
	}
	if n == 0 && !eof {
		b.setState(BlockFree)
		s.pool.put(b)
		s.abortSession(sess, fmt.Errorf("%w: empty load without EOF", ErrProtocol))
		return
	}
	if eof {
		sess.eof = true
	}
	if sess.srcAt != nil && n == 0 && eof && b.seq != 0 {
		// Over-issued load past the dataset end (offset-addressed
		// pipelining cannot know where EOF falls until a completion
		// reports it): discard. Seq 0 is the exception — an empty
		// dataset still sends one empty last block.
		s.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "load_overrun",
			Session: sess.id, Block: b.seq})
		b.setState(BlockFree)
		s.pool.put(b)
		s.pump()
		return
	}
	if sess.srcAt == nil {
		sess.nextOffset += uint64(n)
	}
	b.payloadLen = n
	b.last = eof
	b.setState(BlockLoaded)
	if s.tel != nil {
		b.tReady = s.ep.Loop.Now()
		s.tel.loadLatency.Observe(int64(b.tReady - b.tAcq))
	}
	sess.loadedQ = append(sess.loadedQ, b)
	sess.queued++
	s.pump()
}

// totalLoads sums in-flight loads across sessions (telemetry).
func (s *Source) totalLoads() int64 {
	var n int64
	for _, sess := range s.rrSessions {
		n += int64(sess.loads)
	}
	return n
}

// postWrites pairs loaded blocks with credits and channels, then hands
// each block to its channel's reactor shard for the actual PostSend.
// Sessions are drained round-robin, one block per turn, so blocks from
// many sessions interleave onto the shared channels: a session out of
// credits (or out of data) is skipped rather than parking its queue
// head in front of everyone else — the multiplexed replacement for the
// old global FIFO's head-of-line blocking. The accounting (credit
// consumed, inflight counters) is committed here, before the handoff;
// a shard that cannot post sends the block back and postReverted
// undoes it.
func (s *Source) postWrites() {
	for progress := true; progress && s.failed == nil; {
		progress = false
		n := len(s.rrSessions)
		for i := 0; i < n && s.failed == nil; i++ {
			// An inline shard handoff can bounce a completion back into
			// the control plane mid-loop and remove a session; index
			// against the live slice length, not the snapshot.
			m := len(s.rrSessions)
			if m == 0 {
				return
			}
			sess := s.rrSessions[(s.nextSess+i)%m]
			// Pull sessions advertise instead of writing; a switching
			// session must stop consuming credits the moment the
			// handshake starts — the sink reclaims and re-grants its
			// regions, so a late WRITE would land in another tenant's
			// memory.
			if sess.aborting || sess.mode == ModePull || sess.switching ||
				len(sess.loadedQ) == 0 || len(sess.credits) == 0 {
				continue
			}
			b := sess.loadedQ[0]
			cr := sess.credits[0]
			if int(cr.Len) < wire.BlockHeaderSize+b.payloadLen {
				// Credit too small for this block: protocol violation
				// (the block size was negotiated).
				s.fail(fmt.Errorf("%w: credit len %d < block need %d", ErrProtocol, cr.Len, wire.BlockHeaderSize+b.payloadLen))
				return
			}
			ch := s.pickChannel()
			if ch < 0 {
				s.nextSess = (s.nextSess + i) % m
				return // all channels at depth; completions will re-pump
			}
			sess.loadedQ = sess.loadedQ[1:]
			sess.credits = sess.credits[1:]
			s.creditCount--
			invariant.CreditConsume(s.inv, 1)
			b.credit = cr
			b.chIdx = ch
			b.setState(BlockSending)
			s.chInflight[ch]++
			invariant.GaugeAdd(s.inv, "ch.inflight", ch, 1)
			sess.inflight++
			sess.queued--
			if t := s.tel; t != nil {
				t.creditStash.Set(int64(s.creditCount))
				t.inflight.Set(s.totalInflight())
			}
			progress = true
			// Ownership handoff: the shard encodes, posts, and completes
			// the Sending→Waiting transition (or bounces the block back).
			s.shards[s.ep.shardIndex(ch)].inbox.send(b)
		}
		if n > 0 {
			s.nextSess = (s.nextSess + 1) % n
		}
	}
}

// postReverted undoes postWrites' accounting for a block the shard
// could not post. ErrSendQueueFull marks the channel saturated (the
// flag clears on the channel's next completion, exactly when a send
// slot frees); any other error kills the channel.
func (s *Source) postReverted(b *block, err error) {
	ch := b.chIdx
	s.chInflight[ch]--
	invariant.GaugeAdd(s.inv, "ch.inflight", ch, -1)
	sess := s.sessions[b.session]
	if sess != nil && !sess.aborting {
		sess.inflight--
		sess.queued++
		sess.loadedQ = append([]*block{b}, sess.loadedQ...)
		sess.credits = append([]wire.Credit{b.credit}, sess.credits...)
		s.creditCount++
		// The credit went back to the stash unused: re-grant so the
		// ledger keeps matching the stash totals.
		invariant.CreditGrant(s.inv, 1)
	} else {
		// The owning session died while the block was with the shard:
		// recycle it and let the credit stay consumed — the sink
		// reclaims the backing region at session teardown.
		b.setState(BlockFree)
		s.pool.put(b)
		if sess != nil {
			sess.inflight--
			s.maybeFinishAbort(sess)
		}
	}
	if err == verbs.ErrSendQueueFull {
		s.chSaturated[ch] = true
		s.pump()
		return
	}
	s.chDead[ch] = true
	if s.liveChannels() == 0 {
		s.fail(fmt.Errorf("core: all data channels failed: %w", err))
		return
	}
	s.pump()
}

func wire2remote(c wire.Credit) verbs.RemoteAddr {
	return verbs.RemoteAddr{Addr: c.Addr, RKey: c.RKey}
}

// pickChannel returns the next usable data channel (round-robin),
// or -1 when every live channel is at depth or saturated.
func (s *Source) pickChannel() int {
	depth := s.cfg.IODepth + dataQueueSlack
	for i := 0; i < len(s.ep.Data); i++ {
		ch := (s.nextCh + i) % len(s.ep.Data)
		if s.chDead[ch] || s.chSaturated[ch] || s.chInflight[ch] >= depth {
			continue
		}
		s.nextCh = (ch + 1) % len(s.ep.Data)
		return ch
	}
	return -1
}

func (s *Source) totalInflight() int64 {
	var n int64
	for _, c := range s.chInflight {
		n += int64(c)
	}
	return n
}

func (s *Source) liveChannels() int {
	n := 0
	for _, d := range s.chDead {
		if !d {
			n++
		}
	}
	return n
}

// writeDone handles a WRITE completion forwarded by the block's shard
// (the block is control-owned again).
func (s *Source) writeDone(b *block, status verbs.Status) {
	s.chInflight[b.chIdx]--
	invariant.GaugeAdd(s.inv, "ch.inflight", b.chIdx, -1)
	s.chSaturated[b.chIdx] = false // a send slot freed with this WC
	sess := s.sessions[b.session]
	switch status {
	case verbs.StatusSuccess:
		// Notify the sink which region completed (block transfer
		// completion notification) — unless the WRITE itself carried
		// the notification as an immediate value. Draining sessions
		// notify too: the abort confirm reports the successful-WRITE
		// count, and the sink reconciles arrivals against it before
		// reclaiming the session's granted blocks.
		if !s.cfg.NotifyViaImm {
			s.sendCtrl(&wire.Control{
				Type:    wire.MsgBlockComplete,
				Session: b.session,
				Seq:     b.seq,
				Addr:    b.credit.Addr,
				RKey:    b.credit.RKey,
				Length:  uint32(b.payloadLen),
			})
		}
		s.stats.Bytes += int64(b.payloadLen)
		s.stats.Blocks++
		s.stats.End = s.ep.Loop.Now()
		if t := s.tel; t != nil {
			t.postLatency.Observe(int64(s.stats.End - b.tPost))
			t.inflight.Set(s.totalInflight())
		}
		if sess != nil {
			sess.sent += int64(b.payloadLen)
			sess.blocks++
			sess.inflight--
			if s.OnProgress != nil {
				s.OnProgress(sess.id, sess.sent)
			}
		}
		b.setState(BlockFree)
		s.pool.put(b)
		if sess != nil && sess.aborting {
			s.maybeFinishAbort(sess)
		} else if sess != nil {
			s.noteModeProgress(sess)
			if sess.switching {
				// A push→pull switch waits for the last WRITE to drain.
				s.maybeSendSwitchReq(sess)
			}
		}
		s.pump()

	case verbs.StatusFlushed:
		// Teardown in progress; drop.
		b.setState(BlockFree)
		s.pool.put(b)
		if sess != nil && sess.aborting {
			sess.inflight--
			s.maybeFinishAbort(sess)
		}

	default:
		// Failed WRITE: retry with a fresh credit (the old one is
		// considered burned). The QP that failed is dead.
		s.Trace.Emit(trace.Event{Cat: trace.CatError, Name: "write_failed",
			Session: b.session, Block: b.seq, Channel: int32(b.chIdx),
			V1: int64(b.retries + 1), Text: status.String()})
		s.chDead[b.chIdx] = true
		s.stats.Retries++
		if s.tel != nil {
			s.tel.retransmits.Inc()
		}
		if sess == nil || sess.aborting {
			// The owner died or is draining toward an abort: no retry.
			b.setState(BlockFree)
			s.pool.put(b)
			if sess != nil {
				sess.inflight--
				s.maybeFinishAbort(sess)
			}
			if s.liveChannels() == 0 {
				s.fail(fmt.Errorf("core: all data channels failed: %v", status))
				return
			}
			s.pump()
			return
		}
		b.retries++
		if b.retries > s.cfg.MaxRetries {
			s.fail(fmt.Errorf("%w: block %d/%d after %v", ErrTooManyRetries, b.session, b.seq, status))
			return
		}
		if s.liveChannels() == 0 {
			s.fail(fmt.Errorf("core: all data channels failed: %v", status))
			return
		}
		sess.inflight--
		sess.queued++
		b.setState(BlockLoaded)
		sess.loadedQ = append([]*block{b}, sess.loadedQ...)
		s.pump()
	}
}

// checkSessionCompletion sends DATASET_COMPLETE for drained sessions.
func (s *Source) checkSessionCompletion() {
	for _, sess := range s.rrSessions {
		if sess.completeTx || sess.aborting || !sess.eof || sess.loads > 0 || sess.inflight > 0 ||
			sess.queued > 0 || len(sess.advertised) > 0 || sess.switching {
			continue
		}
		sess.completeTx = true
		s.dropCredits(sess)
		s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "complete_tx",
			Session: sess.id, V1: sess.sent, V2: sess.blocks})
		s.sendCtrl(&wire.Control{
			Type: wire.MsgDatasetComplete, Session: sess.id,
			Seq: sess.nextSeq, AssocData: uint64(sess.sent),
		})
	}
}

// dropCredits discards a session's unused credit stash (completion or
// teardown): the sink reclaims the backing blocks when it processes
// the session's DATASET_COMPLETE or ABORT, so our copies are dead.
func (s *Source) dropCredits(sess *srcSession) {
	n := len(sess.credits)
	if n == 0 {
		return
	}
	invariant.CreditConsume(s.inv, int64(n))
	s.creditCount -= n
	sess.credits = nil
	if s.tel != nil {
		s.tel.creditStash.Set(int64(s.creditCount))
	}
}

// abortSession starts tearing one session down; the connection
// survives. Queued blocks and credits are released immediately, but
// the session stays registered — draining — until its in-flight loads
// and WRITEs complete, and only then does maybeFinishAbort announce
// the abort to the sink. Announcing earlier would let the sink recycle
// granted blocks that a straggling WRITE could still land in.
func (s *Source) abortSession(sess *srcSession, err error) {
	if sess.aborting || s.sessions[sess.id] != sess {
		return
	}
	sess.aborting = true
	sess.abortErr = err
	sess.stalled = false
	for _, b := range sess.loadedQ {
		b.setState(BlockFree)
		s.pool.put(b)
	}
	sess.queued -= len(sess.loadedQ)
	sess.loadedQ = nil
	s.dropCredits(sess)
	s.maybeFinishAbort(sess)
	s.pump()
}

// maybeFinishAbort completes a draining session's teardown once its
// last in-flight load and WRITE have come home.
func (s *Source) maybeFinishAbort(sess *srcSession) {
	if !sess.aborting || sess.loads > 0 || sess.inflight > 0 || sess.queued > 0 ||
		len(sess.advertised) > 0 {
		return
	}
	if s.sessions[sess.id] != sess {
		return // connection-level teardown already reported it
	}
	s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_abort",
		Session: sess.id, V1: sess.sent, V2: sess.blocks})
	s.removeSession(sess)
	// AssocData reports the session's successful-WRITE count: the sink
	// reconciles its arrivals against it to decide when reclaiming the
	// session's granted blocks is safe.
	s.sendCtrl(&wire.Control{Type: wire.MsgAbort, Session: sess.id, AssocData: uint64(sess.blocks)})
	sess.onDone(TransferResult{Session: sess.id, Bytes: sess.sent, Blocks: sess.blocks, Err: sess.abortErr})
}

// fail is a fatal connection-level error: every session dies.
func (s *Source) fail(err error) {
	if s.failed != nil || s.closed {
		return
	}
	s.failed = err
	s.Trace.EmitErr(trace.CatError, "conn_failed", err)
	s.failSessions(err)
	if s.onReady != nil {
		cb := s.onReady
		s.onReady = nil
		cb(err)
	}
	if s.OnError != nil {
		s.OnError(err)
	}
}

func (s *Source) failSessions(err error) {
	sessions := append([]*srcSession(nil), s.rrSessions...)
	s.rrSessions = nil
	s.sessions = make(map[uint32]*srcSession)
	for _, sess := range sessions {
		sess.onDone(TransferResult{Session: sess.id, Bytes: sess.sent, Blocks: sess.blocks, Err: err})
	}
	for _, sess := range s.opening {
		sess.onDone(TransferResult{Err: err})
	}
	s.opening = nil
	for _, sess := range s.openQ {
		sess.onDone(TransferResult{Err: err})
	}
	s.openQ = nil
}
