package core

import (
	"fmt"
	"time"

	"rftp/internal/invariant"
	"rftp/internal/spans"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// BlockState is the FSM state of a buffer block (Figure 6).
type BlockState uint8

// Block states. The source cycle is Free → Loading → Loaded → Sending →
// Waiting → Free; the sink cycle is Free → Waiting → DataReady → Free
// (Storing is the explicit "application consuming the payload" stage).
const (
	BlockFree BlockState = iota
	BlockLoading
	BlockLoaded
	BlockSending
	BlockWaiting
	BlockDataReady
	BlockStoring
	// BlockAdvertised is the pull-mode source stage: the loaded block's
	// region has been advertised to the sink and is exposed to remote
	// READs until the READ_DONE notification recycles it.
	BlockAdvertised
	// BlockFetching is the pull-mode sink stage: a free block paired with
	// an advertisement while the RDMA READ is in flight.
	BlockFetching
)

func (s BlockState) String() string {
	switch s {
	case BlockFree:
		return "free"
	case BlockLoading:
		return "loading"
	case BlockLoaded:
		return "loaded"
	case BlockSending:
		return "sending"
	case BlockWaiting:
		return "waiting"
	case BlockDataReady:
		return "data-ready"
	case BlockStoring:
		return "storing"
	case BlockAdvertised:
		return "advertised"
	case BlockFetching:
		return "fetching"
	default:
		return fmt.Sprintf("BlockState(%d)", uint8(s))
	}
}

// validNext enumerates the legal FSM transitions. It is consulted on
// every transition; an illegal transition panics, because it is always a
// protocol-implementation bug, never a runtime condition.
var validNext = map[BlockState][]BlockState{
	BlockFree:    {BlockLoading, BlockWaiting, BlockFetching},
	BlockLoading: {BlockLoaded, BlockFree},
	// Loaded → Free is the source's abort shortcut: when a session is
	// torn down mid-transfer its queued (loaded-but-unsent) blocks are
	// recycled without ever being posted. Loaded → Advertised is the
	// pull-mode path: the block is exposed for remote READs instead of
	// being paired with a credit and written.
	BlockLoaded:  {BlockSending, BlockFree, BlockAdvertised},
	BlockSending: {BlockWaiting, BlockLoaded},
	BlockWaiting: {BlockFree, BlockLoaded, BlockDataReady},
	// DataReady → Free is the sink's abort shortcut: a finished or
	// failed session recycles blocks that never reached Storing.
	BlockDataReady: {BlockStoring, BlockFree},
	BlockStoring:   {BlockFree},
	// An advertised block recycles on READ_DONE (or on abort: a remote
	// READ only reads, so teardown may reclaim immediately).
	BlockAdvertised: {BlockFree},
	// Fetching → Free is the sink's discard path for READs that complete
	// after their session died.
	BlockFetching: {BlockDataReady, BlockFree},
}

// block is one buffer block and its registered memory region. The first
// wire.BlockHeaderSize bytes of the region hold the header; the rest is
// payload (real or modeled).
type block struct {
	idx   int
	state BlockState
	mr    *verbs.MR
	// hdrBuf carries the header for modeled payloads (real payloads
	// encode the header directly into mr.Buf).
	hdrBuf [wire.BlockHeaderSize]byte

	// Source-side bookkeeping.
	session    uint32
	seq        uint32
	offset     uint64
	payloadLen int
	last       bool
	retries    int
	credit     wire.Credit // the remote region the block was written to
	chIdx      int         // data channel the block was posted on

	// Telemetry timestamps, stamped only while telemetry is attached.
	// Source: tAcq = load start, tReady = loaded, tPost = WRITE posted.
	// Sink: tAcq = credit granted, tReady = store issued.
	tAcq, tReady, tPost time.Duration

	// Lifecycle span recording (nil/RefNone when spans are detached or
	// this lifecycle is unsampled). Stamped exclusively by setState so
	// the span table can never disagree with the FSM; rftplint's
	// spanstamp pass enforces that no other call site exists.
	spans   *spans.Recorder
	spanRef spans.Ref
}

func (b *block) setState(to BlockState) {
	for _, ok := range validNext[b.state] {
		if ok == to {
			from := b.state
			b.state = to
			if b.spans != nil {
				b.spanRef = b.spans.Transition(b.spanRef, uint8(from), uint8(to))
			}
			return
		}
	}
	panic(fmt.Sprintf("core: illegal block transition %v -> %v (block %d)", b.state, to, b.idx))
}

// pool is a set of blocks with registered MRs.
type pool struct {
	blocks  []*block
	free    []*block // LIFO free list
	cache   *verbs.MRCache
	modeled bool
}

// newPool registers nblocks regions of blockSize bytes on dev. Modeled
// pools back each block with a shadow of just the header plus slack.
// With a non-nil cache the registrations come from the pin-down cache
// (reusing idle regions from earlier pools of the same size class) and
// return to it on release.
func newPool(dev verbs.Device, pd *verbs.PD, nblocks, blockSize int, modeled bool, access verbs.Access, cache *verbs.MRCache) (*pool, error) {
	p := &pool{cache: cache, modeled: modeled}
	for i := 0; i < nblocks; i++ {
		var mr *verbs.MR
		var err error
		switch {
		case cache != nil:
			mr, err = cache.Get(pd, blockSize, wire.BlockHeaderSize, access, modeled)
		case modeled:
			mr, err = dev.RegisterModelMR(pd, blockSize, wire.BlockHeaderSize, access)
		default:
			mr, err = dev.RegisterMR(pd, make([]byte, blockSize), access)
		}
		if err != nil {
			return nil, fmt.Errorf("core: registering block %d: %w", i, err)
		}
		b := &block{idx: i, mr: mr, spanRef: spans.RefNone}
		invariant.PoisonFill(b.mr.Buf) // free blocks carry the poison pattern
		p.blocks = append(p.blocks, b)
		p.free = append(p.free, b)
	}
	return p, nil
}

// release returns the pool's registrations to the pin-down cache at
// teardown (no-op for uncached pools). Only free blocks are eligible:
// a region that may still have a WRITE in flight (granted to a remote
// source, posted on the wire) must never re-enter the cache, and the
// debug build asserts that with the connection's inflight-MR ledger.
func (p *pool) release(inv uint64) {
	if p.cache == nil {
		return
	}
	for _, b := range p.blocks {
		if b.state != BlockFree || b.mr == nil {
			continue
		}
		invariant.MRReleasable(inv, b.mr.RKey)
		p.cache.Put(b.mr, p.modeled)
		b.mr = nil
	}
	p.free = nil
}

// get pops a free block (nil when exhausted).
func (p *pool) get() *block {
	if len(p.free) == 0 {
		return nil
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	// A free block's region must be untouched since put poisoned it: a
	// write while free means a stale zero-copy reference survived.
	invariant.PoisonCheck(b.mr.Buf)
	return b
}

// put returns a block to the free list. The caller must already have
// transitioned it to BlockFree.
func (p *pool) put(b *block) {
	if b.state != BlockFree {
		panic(fmt.Sprintf("core: putting non-free block %d (%v)", b.idx, b.state))
	}
	b.session, b.seq, b.offset, b.payloadLen, b.last, b.retries = 0, 0, 0, 0, false, 0
	b.credit = wire.Credit{}
	b.chIdx = 0
	invariant.PoisonFill(b.mr.Buf)
	p.free = append(p.free, b)
}

// byIdx returns the block with the given index.
func (p *pool) byIdx(i int) *block {
	if i < 0 || i >= len(p.blocks) {
		return nil
	}
	return p.blocks[i]
}

// byRKey finds the block whose MR has the given rkey.
func (p *pool) byRKey(rkey uint32) *block {
	for _, b := range p.blocks {
		if b.mr.RKey == rkey {
			return b
		}
	}
	return nil
}

// countState returns how many blocks are in the given state.
func (p *pool) countState(s BlockState) int {
	n := 0
	for _, b := range p.blocks {
		if b.state == s {
			n++
		}
	}
	return n
}
