package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"rftp/internal/invariant"
	"rftp/internal/spans"
	"rftp/internal/telemetry"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// SessionInfo describes a session the sink accepted.
type SessionInfo struct {
	ID uint32
	// Total is the advisory dataset size from SESSION_REQ (0 = unknown).
	Total int64
	// BlockSize is the negotiated block size.
	BlockSize int
}

// Sink is the data-sink side of the protocol: it accepts negotiation,
// owns the receive block pool, pushes credits proactively, reassembles
// out-of-order blocks by (session, sequence), and delivers an in-order
// stream to a BlockSink per session.
type Sink struct {
	ep  *Endpoint
	cfg Config

	// NewWriter supplies the per-session consumer. Defaults to
	// DiscardSink.
	NewWriter func(SessionInfo) BlockSink
	// OnSessionOpen observes each admitted session, fired as the accept
	// is queued — the counterpart of OnSessionDone for admission-control
	// auditing (who got in, when, at what weight).
	OnSessionOpen func(SessionInfo)
	// OnSessionDone observes each finished session.
	OnSessionDone func(SessionInfo, TransferResult)
	// OnError observes fatal connection-level failures.
	OnError func(error)
	// Trace, when set, records protocol events into a ring buffer.
	Trace *trace.Ring
	// tel holds resolved metric handles; nil when telemetry is detached
	// (see AttachTelemetry).
	tel *sinkTelemetry
	// spans/stalls hold the lifecycle span recorder and the stall
	// attributor (see AttachSpans). The recorder is built lazily at
	// pool creation from spanReg/spanSample.
	spans      *spans.Recorder
	stalls     *spans.StallTracker
	spanReg    *telemetry.Registry
	spanSample int

	ctrlQ      []ctrlItem // encoded messages awaiting queue space
	ctrlSent   []func()   // per posted send: completion callback (may be nil)
	pool       *pool      // allocated when block size is negotiated
	shards     []*sinkShard
	ctrlWR     verbs.SendWR // reused control-post WR (PostSend copies)
	storeTasks []*storeTask // free list of store completion carriers
	flushFn    func()       // prebound flush-timer callback
	blockSize  int
	immMode    bool     // WRITE WITH IMMEDIATE notifications negotiated
	granted    int      // credits outstanding at the source, all sessions
	pendingReq []uint32 // sessions whose MR_INFO_REQUEST awaits a free block

	// Session manager (sessmgr.go): admission control and the
	// per-tenant credit scheduler. schedOrder is the DRR sweep order;
	// nextRR rotates which session a fresh batch feeds first. openQ
	// holds SESSION_REQs waiting for a slot; zombies holds aborted
	// sessions whose granted blocks cannot be reclaimed until their
	// straggling WRITEs drain.
	schedOrder []*sinkSession
	nextRR     int
	openQ      []pendingOpen
	zombies    map[uint32]*zombieSession

	// Credit coalescer: proactive grants accumulate here and flush as
	// one MR_INFO_RESPONSE when the batch reaches Config.CreditBatch,
	// the source's outstanding credits fall below the low watermark, or
	// the flush timer fires. pendingByReason keeps per-policy-leg
	// attribution for telemetry.
	pendingGrant    int
	pendingByReason [grantReasons]int
	flushArmed      bool // a flush timer is outstanding

	// Adaptive credit window estimator (BBR-style): windowed-minimum
	// credit round trip × delivery rate approximates the path BDP in
	// blocks. winGap is an EWMA of the mean inter-arrival gap (1/rate),
	// averaged over epochs of winGapEpoch arrivals so completion bursts
	// do not skew it; winRTT is the min grant→consume latency over the
	// last winRTTWindow samples.
	winRTT      time.Duration
	winRTTAge   int
	winGap      time.Duration
	winSamples  int
	epochStart  time.Duration
	epochBlocks int
	// winBoost ratchets the window up on each explicit MR_INFO_REQUEST:
	// a starving source is ground truth that the BDP estimate ran below
	// the pipeline's real depth (the credit round trip only measures
	// queueing that the current window allows to exist).
	winBoost int
	// stallDepth is the highest granted+pending level at which the
	// source has recently starved (sent an explicit MR_INFO_REQUEST).
	// Under explicit completion notification, granted includes blocks
	// whose notification is still in flight, so the source's true
	// runway is smaller than granted suggests; a stall at level g
	// proves the effective pipeline depth is at least g, and batching
	// only above that level is safe. Not sticky: each full-batch flush
	// that completes without an intervening stall decays it back
	// toward the static pipeline depth, so a stall that merely
	// coincided with a large pending batch (pool-limited WAN paths
	// starve regardless of batching) does not disable coalescing for
	// the sink's lifetime, while a path where batching itself starves
	// the source keeps re-recording it faster than it decays.
	stallDepth int

	// Pull-mode fetch pipeline (pullmode.go): outstanding READs per data
	// channel (bounded by the QP initiator depth, ep.readDepth), their
	// total, the channel and session round-robin cursors, and how many
	// sessions are currently on the push path (gates push-only credit
	// machinery such as the on-free re-grant).
	chReads       []int
	readsInflight int
	nextReadCh    int
	fetchRR       int
	pushSessions  int

	sessions map[uint32]*sinkSession
	nextID   uint32

	stats  Stats
	closed bool
	failed error
	// dead is the only Sink field shards read without an ownership
	// handoff: set exclusively by Close so late completions stop
	// touching torn-down state (mirrors Source.dead).
	dead atomic.Bool

	// inv is the debug-build invariant ledger (no-op handle otherwise).
	inv uint64
}

// sinkSession is one dataset being received.
type sinkSession struct {
	info   SessionInfo
	writer BlockSink
	// offsetSink is non-nil when writer accepts offset-addressed
	// concurrent stores: arriving blocks then go straight to storage
	// (bounded by StoreDepth) instead of waiting behind reassembly
	// holes. nextDeliver tracks the contiguous-arrival low-water mark on
	// this path rather than the delivery cursor.
	offsetSink  OffsetSink
	nextDeliver uint32
	ready       map[uint32]*block   // in-order path: data-ready blocks by seq
	ooo         map[uint32]struct{} // offset path: arrived seqs above nextDeliver
	storeQ      []*block            // offset path: arrived blocks awaiting a store slot
	storing     int                 // Stores issued, not yet done
	haveLast    bool
	lastSeq     uint32
	received    int64
	blocks      int64
	completeRx  bool
	finished    bool

	// Session-manager state (sessmgr.go): the DRR weight and running
	// deficit, credits outstanding to this session, arrivals landed,
	// and the control-owned set of granted-but-unarrived blocks — the
	// session's reclaim ledger. needy/needySince bracket intervals the
	// tenant sat with zero credits waiting on the scheduler.
	weight     int
	deficit    int
	granted    int
	arrived    int64
	owned      map[*block]struct{}
	needy      bool
	needySince time.Duration

	// Pull-mode state (pullmode.go): the session's current data path,
	// advertisements queued for fetching, and a deferred push→pull
	// switch waiting for straggling WRITE arrivals to catch up with the
	// source's reported count.
	mode                TransferMode
	fetchQ              []fetchAdvert
	pendingSwitchToPull bool
	pendingSwitchCount  int64

	// Per-session telemetry counters (nil when telemetry is detached).
	telBytes     *telemetry.Counter
	telBlocks    *telemetry.Counter
	telSchedWait *telemetry.Counter
}

// NewSink creates the sink on an endpoint. Set NewWriter /
// OnSessionDone / OnError before the fabric starts delivering messages
// (for netfabric: before BindQP; for in-process fabrics: before the
// peer's Source starts).
func NewSink(ep *Endpoint, cfg Config) (*Sink, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	k := &Sink{
		ep:        ep,
		cfg:       cfg,
		sessions:  make(map[uint32]*sinkSession),
		zombies:   make(map[uint32]*zombieSession),
		chReads:   make([]int, len(ep.Data)),
		NewWriter: func(SessionInfo) BlockSink { return DiscardSink{} },
		inv:       invariant.NewConn("sink"),
	}
	k.flushFn = k.flushTimerFired
	ep.CtrlCQ.SetHandler(k.onCtrlWC)
	for i := range ep.DataCQs {
		k.shards = append(k.shards, newSinkShard(k, i, cfg.SinkBlocks+dataQueueSlack))
	}
	return k, nil
}

// onShardEvent is the control-plane entry point for shard events: an
// arrived block changing owner back to the control loop, or a fatal
// data-path error detected on a shard.
func (k *Sink) onShardEvent(ev sinkEvent) {
	if k.closed {
		return
	}
	switch ev.kind {
	case sinkEvArrived:
		k.markArrived(ev.b)
	case sinkEvFetched:
		k.readArrived(ev.b)
	case sinkEvReadErr:
		k.readReverted(ev.b, ev.err)
	case sinkEvFail:
		k.fail(ev.err)
	}
}

// Stats returns a snapshot of connection-level statistics.
func (k *Sink) Stats() Stats { return k.stats }

// BlockSizeInUse returns the negotiated block size (0 before
// negotiation).
func (k *Sink) BlockSizeInUse() int { return k.blockSize }

// Close tears the connection down.
func (k *Sink) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.dead.Store(true)
	// A session marked finished at this point has its whole stream
	// stored and its DATASET_COMPLETE ack queued — only the ack's send
	// completion (which fires finishSession) is outstanding, and the
	// teardown may have outrun it. Retire such sessions as the
	// completions they are, so OnSessionDone fires and the scheduler
	// and gauges settle instead of stranding them in the session table.
	var ackPending []*sinkSession
	for _, sess := range k.sessions {
		if sess.finished {
			ackPending = append(ackPending, sess)
		}
	}
	for _, sess := range ackPending {
		sess.finished = false
		k.finishSession(sess, nil, true)
	}
	k.ep.Close()
	if k.pool != nil {
		// Granted-but-unwritten blocks are reclaimable now: closing the
		// QPs revoked the remote's access, so the outstanding credits
		// can never land. Without this, proactively granted blocks would
		// bypass the pin-down cache at teardown.
		for _, b := range k.pool.blocks {
			if b.state == BlockFetching {
				// An in-flight READ's completion was flushed with the QPs;
				// the block never carried a credit, so no gauges to settle.
				b.setState(BlockFree)
				k.pool.put(b)
				continue
			}
			if b.state != BlockWaiting {
				continue
			}
			invariant.MRWriteEnd(k.inv, b.mr.RKey)
			invariant.GaugeAdd(k.inv, "granted", 0, -1)
			// Multi-session reclaim invariant: every block returns
			// through its *owning* session's ledger (the per-session
			// gauge panics on a cross-session stray), so one tenant's
			// teardown can never strand or absorb another's credits.
			invariant.GaugeAdd(k.inv, "sess.granted", int(b.session), -1)
			k.granted--
			k.stats.CreditsReclaimed++
			b.setState(BlockFree)
			k.pool.put(b)
		}
		k.pool.release(k.inv)
	}
}

// ctrlItem is a control message queued for transmission, with an
// optional callback fired when its send completion arrives (i.e. the
// peer has it).
type ctrlItem struct {
	buf    []byte
	onSent func()
}

func (k *Sink) sendCtrl(c *wire.Control) { k.sendCtrlThen(c, nil) }

// sendCtrlThen queues a control message; onSent (if non-nil) fires on
// the message's send completion — after the peer acknowledged it. Used
// for ordering guarantees at teardown.
func (k *Sink) sendCtrlThen(c *wire.Control, onSent func()) {
	buf, err := c.Encode(nil)
	if err != nil {
		k.fail(fmt.Errorf("core: encoding %v: %w", c.Type, err))
		return
	}
	k.stats.CtrlMsgs++
	if k.tel != nil {
		k.tel.ctrlMsgs.Inc()
	}
	k.ctrlQ = append(k.ctrlQ, ctrlItem{buf: buf, onSent: onSent})
	k.pumpCtrl()
}

// pumpCtrl posts queued control messages while the send queue accepts
// them; ErrSendQueueFull waits for a send completion.
func (k *Sink) pumpCtrl() {
	for len(k.ctrlQ) > 0 {
		item := k.ctrlQ[0]
		k.ctrlWR = verbs.SendWR{Op: verbs.OpSend, Data: item.buf}
		err := k.ep.Ctrl.PostSend(&k.ctrlWR)
		if err == verbs.ErrSendQueueFull {
			return
		}
		if err != nil {
			k.fail(fmt.Errorf("core: posting control message: %w", err))
			return
		}
		k.ctrlQ = k.ctrlQ[1:]
		k.ctrlSent = append(k.ctrlSent, item.onSent)
	}
}

func (k *Sink) onCtrlWC(wc verbs.WC) {
	if k.closed {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		if wc.Status == verbs.StatusFlushed {
			return
		}
		k.fail(fmt.Errorf("core: control QP failure: %v", wc.Status))
		return
	}
	if wc.Op != verbs.OpRecv {
		// Control send completion: run its callback (completions arrive
		// in posting order on an RC queue pair) and drain the queue.
		if len(k.ctrlSent) > 0 {
			cb := k.ctrlSent[0]
			k.ctrlSent = k.ctrlSent[1:]
			if cb != nil {
				cb()
			}
		}
		k.pumpCtrl()
		return
	}
	c, err := wire.DecodeControl(wc.Data)
	if err != nil {
		k.fail(fmt.Errorf("core: bad control message: %w", err))
		return
	}
	if err := k.ep.repostCtrlRecv(wc.WRID); err != nil && !k.closed {
		k.fail(fmt.Errorf("core: reposting control recv: %w", err))
		return
	}
	k.handleCtrl(c)
}

func (k *Sink) handleCtrl(c *wire.Control) {
	switch c.Type {
	case wire.MsgBlockSizeReq:
		k.handleBlockSize(c)
	case wire.MsgChannelsReq:
		accept := int(c.AssocData) == len(k.ep.Data) && c.AssocData > 0
		flags := uint8(0)
		if accept {
			flags = wire.FlagAccept
		}
		k.sendCtrl(&wire.Control{Type: wire.MsgChannelsResp, Flags: flags, AssocData: c.AssocData})
	case wire.MsgSessionReq:
		k.handleSessionReq(c)
	case wire.MsgMRInfoRequest:
		k.handleMRRequest(c)
	case wire.MsgBlockComplete:
		k.handleBlockComplete(c)
	case wire.MsgDatasetComplete:
		k.handleDatasetComplete(c)
	case wire.MsgAbort:
		k.handleAbort(c)
	case wire.MsgBlockAdvert:
		k.handleAdvert(c)
	case wire.MsgModeSwitchReq:
		k.handleModeSwitch(c)

	default:
		// Response-direction types (and anything a newer peer invents)
		// are not ours to handle; drop them loudly enough to show up in
		// a trace dump instead of presenting as a silent hang.
		k.Trace.Emit(trace.Event{Cat: trace.CatError, Name: "ctrl_unhandled",
			Session: c.Session, V1: int64(c.Type)})
	}
}

// handleBlockSize accepts a proposed block size and allocates the
// receive pool (sink blocks become the credit supply).
func (k *Sink) handleBlockSize(c *wire.Control) {
	proposed := int(c.AssocData)
	const minBlock, maxBlock = wire.BlockHeaderSize + 1, 256 << 20
	if proposed < minBlock || proposed > maxBlock {
		k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, AssocData: c.AssocData})
		return
	}
	if k.pool == nil {
		var err error
		shadowAccess := verbs.AccessLocalWrite | verbs.AccessRemoteWrite
		k.pool, err = newPool(k.ep.Dev, k.ep.PD, k.cfg.SinkBlocks, proposed, k.cfg.ModelPayload, shadowAccess, k.ep.MRCache)
		if err != nil {
			k.fail(err)
			return
		}
		k.blockSize = proposed
		if k.stalls != nil {
			k.attachPoolSpans()
		}
		k.Trace.Emit(trace.Event{Cat: trace.CatNego, Name: "blocksize_accepted",
			V1: int64(proposed), V2: int64(k.cfg.SinkBlocks)})
		// Adopt the source's notification mode; immediate mode needs
		// pre-posted receives on every data channel.
		if c.Flags&wire.FlagImmNotify != 0 {
			k.immMode = true
			if err := k.ep.postDataNotifyRecvs(k.ep.dataDepth); err != nil {
				k.fail(err)
				return
			}
		}
	} else if proposed != k.blockSize {
		// Renegotiating a different size on a live pool is rejected.
		k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, AssocData: c.AssocData})
		return
	}
	flags := wire.FlagAccept
	if k.immMode {
		flags |= wire.FlagImmNotify
	}
	k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, Flags: flags, AssocData: c.AssocData})
}

// debugStallHook is a test-only observation point invoked on each
// explicit MR_INFO_REQUEST (nil outside tests).
var debugStallHook func(*Sink)

// Adaptive-window constants: warmup arrivals before the estimate is
// trusted, the sliding window (in samples) of the RTT minimum filter,
// and the BDP headroom multiplier (2× absorbs rate and RTT noise
// without letting the window collapse below the pipe's needs).
const (
	winWarmup    = 16
	winRTTWindow = 64
	winHeadroom  = 2
	// winGapEpoch is how many arrivals each delivery-rate sample spans.
	winGapEpoch = 8
)

// grantCredits advertises up to n free blocks to one session in one
// message (free → waiting in the sink FSM), bypassing the scheduler's
// sweep — the immediate legs (initial window, explicit on-demand
// requests) use it directly. reason records which policy leg issued
// the grant for telemetry and tracing. Returns the credits sent.
func (k *Sink) grantCredits(sess *sinkSession, n int, reason grantReason) int {
	got := k.sendGrantTo(sess, n, "grant_"+reason.String())
	if got > 0 {
		if t := k.tel; t != nil {
			t.grants[reason].Add(int64(got))
		}
	}
	return got
}

// sendGrantTo acquires up to n free blocks for sess and sends them as
// a single session-targeted MR_INFO_RESPONSE. Each block is stamped
// with its owner at grant time: the stamp is verified when a WRITE
// lands (a cross-session landing is a protocol violation) and keys the
// reclaim ledger at teardown.
func (k *Sink) sendGrantTo(sess *sinkSession, n int, traceName string) int {
	if n <= 0 || k.pool == nil || sess.finished {
		return 0
	}
	now := k.ep.Loop.Now()
	var credits []wire.Credit
	for len(credits) < n && len(credits) < wire.MaxCreditsPerMsg {
		b := k.pool.get()
		if b == nil {
			break
		}
		b.setState(BlockWaiting)
		b.tAcq = now
		b.session = sess.info.ID
		sess.owned[b] = struct{}{}
		invariant.MRWriteStart(k.inv, b.mr.RKey)
		invariant.GaugeAdd(k.inv, "sess.granted", int(sess.info.ID), 1)
		credits = append(credits, wire.Credit{Addr: b.mr.Addr, RKey: b.mr.RKey, Len: uint32(k.blockSize)})
	}
	if len(credits) == 0 {
		return 0
	}
	k.granted += len(credits)
	sess.granted += len(credits)
	k.chargeSchedWait(sess, now)
	invariant.GaugeAdd(k.inv, "granted", 0, int64(len(credits)))
	k.stats.CreditsGranted += int64(len(credits))
	k.stats.GrantMsgs++
	if t := k.tel; t != nil {
		t.granted.Set(int64(k.granted))
		t.creditBatchSize.Observe(int64(len(credits)))
		t.creditWindow.Set(int64(k.targetWindow()))
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatCredit, Name: traceName,
		Session: sess.info.ID, V1: int64(len(credits)), V2: int64(k.granted)})
	k.sendCtrl(&wire.Control{Type: wire.MsgMRInfoResponse, Session: sess.info.ID, Credits: credits})
	return len(credits)
}

// queueGrants adds n credits to the coalescer's pending batch under the
// proactive policy and flushes when a trigger fires: the batch reached
// Config.CreditBatch, or the source's outstanding credits fell below
// the low watermark (it could run dry within a round trip). Otherwise
// the flush timer bounds the wait. Credits beyond the target window
// are not queued at all — the window is the point of the adaptive
// sizing — and freed blocks re-enter via the on-free leg.
func (k *Sink) queueGrants(n int, reason grantReason) {
	if n <= 0 || k.pool == nil || k.closed || k.failed != nil {
		return
	}
	win := k.targetWindow()
	// Cap at the window head so granted + pending never exceeds the
	// target window; the excess is dropped exactly as the unbatched
	// protocol dropped over-window grants — freed blocks re-enter via
	// the on-free leg. In the pinned steady state each consumed block
	// opens one head slot, so pending still accumulates toward a batch.
	if head := win - k.granted - k.pendingGrant; n > head {
		n = head
	}
	if n <= 0 {
		return
	}
	k.pendingGrant += n
	k.pendingByReason[reason] += n
	if t := k.tel; t != nil {
		t.pendingGrants.Set(int64(k.pendingGrant))
	}
	if k.pendingGrant >= k.batchSize(win) || k.granted < k.lowWater(win) {
		k.flushGrants()
		return
	}
	k.armFlushTimer()
}

// pipeDepth estimates the source's effective pipeline depth as the
// sink sees it through granted: blocks the source may hold loaded or
// in flight (IODepth + InitialCredits), plus — under explicit
// completion notification — roughly one flight's worth of consumed
// blocks whose MsgBlockComplete has not yet landed. Those unnotified
// blocks inflate granted without representing source runway, so every
// watermark derived from granted must sit higher by that lag or the
// coalescer withholds credits a starving source needed.
func (k *Sink) pipeDepth() int {
	d := k.cfg.IODepth + k.cfg.InitialCredits
	if !k.immMode {
		d += k.bdpBlocks()
	}
	return d
}

// batchSize is the effective flush threshold: Config.CreditBatch capped
// at half the window slack beyond the source's pipeline depth. While a
// batch accumulates, granted dips by up to one batch below the window;
// the source rides out that dip on stash, which is at best
// win − depth, where depth is pipeDepth or the measured stallDepth
// (whichever is higher — see that field). Half the slack leaves an
// equal-size margin, so tight pools coalesce gently, deep pools reach
// the configured threshold, and a pool with no headroom at all
// degrades to unbatched granting.
func (k *Sink) batchSize(win int) int {
	depth := k.pipeDepth()
	if k.stallDepth > depth {
		depth = k.stallDepth
	}
	slack := (win - depth) / 2
	b := k.cfg.CreditBatch
	if b > slack {
		b = slack
	}
	if b < 1 {
		b = 1
	}
	return b
}

// lowWater is the outstanding-credit level below which a pending batch
// flushes immediately instead of waiting out the timer: once granted
// falls to the source's pipeline depth the stash is empty (granted
// counts blocks mid-write and, in explicit-notification mode,
// consumed blocks whose notification is still in flight) and every
// queued credit is needed now. Early in a transfer granted is always
// below it, so the exponential ramp is indistinguishable from
// unbatched granting.
func (k *Sink) lowWater(win int) int {
	lw := k.pipeDepth()
	if half := win / 2; lw > half {
		lw = half
	}
	if lw < 2 {
		lw = 2
	}
	return lw
}

// bdpBlocks estimates blocks in flight from the window estimator:
// credit round trip ÷ mean inter-arrival gap (rate × RTT). Zero before
// any samples.
func (k *Sink) bdpBlocks() int {
	if k.winGap <= 0 || k.winRTT <= 0 {
		return 0
	}
	return int(float64(k.winRTT) / float64(k.winGap))
}

// flushGrants drains the pending batch through the per-tenant
// scheduler: DRR sweeps distribute the batch across active sessions
// (one MR_INFO_RESPONSE per session granted). If the pool runs dry or
// every session is at its window share, the remainder is dropped —
// the unbatched protocol likewise dropped grants that found no free
// block; freed blocks re-advertise via the on-free leg or the
// explicit-request fallback.
func (k *Sink) flushGrants() {
	for k.pendingGrant > 0 {
		got := k.schedSweep(k.pendingGrant)
		if got == 0 {
			k.dropPending()
			break
		}
		k.attributeGrants(got, got)
	}
	if t := k.tel; t != nil {
		t.pendingGrants.Set(int64(k.pendingGrant))
	}
}

// attributeGrants retires `taken` queued credits in policy-leg order
// and credits the first `granted` of them to the per-reason telemetry
// counters, so grants_* still sum to Stats.CreditsGranted.
func (k *Sink) attributeGrants(granted, taken int) {
	k.pendingGrant -= taken
	for r := range k.pendingByReason {
		if taken == 0 {
			break
		}
		n := k.pendingByReason[r]
		if n > taken {
			n = taken
		}
		k.pendingByReason[r] -= n
		taken -= n
		g := n
		if g > granted {
			g = granted
		}
		granted -= g
		if t := k.tel; t != nil && g > 0 {
			t.grants[r].Add(int64(g))
		}
	}
}

// dropPending abandons the pending batch (transfer ended, pool dry).
func (k *Sink) dropPending() {
	k.pendingGrant = 0
	k.pendingByReason = [grantReasons]int{}
	if t := k.tel; t != nil {
		t.pendingGrants.Set(0)
	}
}

// armFlushTimer bounds how long a non-empty batch may wait. The timer
// is one-shot and never re-arms itself: if the batch flushed early the
// firing is a no-op, so an idle sink schedules nothing.
func (k *Sink) armFlushTimer() {
	if k.flushArmed || k.pendingGrant <= 0 {
		return
	}
	k.flushArmed = true
	k.ep.Loop.After(k.flushInterval(), k.flushFn)
}

// flushTimerFired is armFlushTimer's callback, prebound once at
// construction so arming a timer does not allocate a closure.
func (k *Sink) flushTimerFired() {
	k.flushArmed = false
	if k.closed || k.failed != nil {
		return
	}
	if len(k.sessions) == 0 {
		// The transfer ended while the batch was pending: nothing
		// left to feed, keep the pool whole.
		k.dropPending()
		return
	}
	if k.pendingGrant > 0 {
		k.flushGrants()
	}
}

// flushInterval is the batch-age bound: the time a full batch takes to
// form at the measured delivery rate (batch × mean inter-arrival gap —
// waiting longer than that cannot grow the batch further), clamped so
// the LAN still flushes promptly and the WAN timer does not balloon.
// Config.CreditFlushInterval overrides.
func (k *Sink) flushInterval() time.Duration {
	if k.cfg.CreditFlushInterval > 0 {
		return k.cfg.CreditFlushInterval
	}
	d := time.Duration(k.batchSize(k.targetWindow())) * k.winGap
	if d < 200*time.Microsecond {
		d = 200 * time.Microsecond
	}
	if d > 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	return d
}

// targetWindow is the sink's goal for credits outstanding at the
// source. With Config.CreditWindow set it is fixed; otherwise it is
// winHeadroom × (credit round trip ÷ mean inter-arrival gap) — delivery
// rate × RTT, a BDP estimate in blocks — plus the source's pipeline
// depth (granted credits include blocks mid-write, so a window below
// IODepth + InitialCredits would starve a source that is merely keeping
// its own pipe full), clamped to [max(4, SinkBlocks/8), SinkBlocks].
// Before warmup the window is the whole pool, the pre-adaptive
// behavior.
func (k *Sink) targetWindow() int {
	if k.cfg.CreditWindow > 0 {
		return k.cfg.CreditWindow
	}
	win := k.cfg.SinkBlocks
	if k.winSamples < winWarmup || k.winGap <= 0 || k.winRTT <= 0 {
		return win
	}
	w := winHeadroom*k.bdpBlocks() + k.cfg.IODepth + k.cfg.InitialCredits + k.winBoost
	floor := k.cfg.SinkBlocks / 8
	if floor < 4 {
		floor = 4
	}
	if w < floor {
		w = floor
	}
	if w > win {
		w = win
	}
	return w
}

// noteWindowSample feeds one arrival into the window estimator: rtt is
// the credit's grant→consume latency, now the arrival timestamp. The
// RTT minimum filter slides by resetting every winRTTWindow samples.
// The gap estimate averages over epochs of winGapEpoch arrivals before
// folding into an EWMA (gain 1/2): fabric completions arrive in bursts
// whose intra-burst gaps say nothing about delivery rate, so the epoch
// mean — total elapsed over a run of arrivals — is the robust 1/rate.
func (k *Sink) noteWindowSample(now time.Duration, rtt time.Duration) {
	k.winSamples++
	if rtt > 0 && (k.winRTT == 0 || rtt < k.winRTT || k.winRTTAge >= winRTTWindow) {
		k.winRTT, k.winRTTAge = rtt, 0
	} else {
		k.winRTTAge++
	}
	if k.epochBlocks == 0 {
		k.epochStart, k.epochBlocks = now, 1
		return
	}
	k.epochBlocks++
	if k.epochBlocks <= winGapEpoch {
		return
	}
	if elapsed := now - k.epochStart; elapsed > 0 {
		mean := elapsed / time.Duration(k.epochBlocks-1)
		if k.winGap == 0 {
			k.winGap = mean
		} else {
			k.winGap += (mean - k.winGap) / 2
		}
	}
	k.epochStart, k.epochBlocks = now, 1
	// An epoch of steady arrivals without a fresh stall recording is
	// weak evidence the recorded stall depth is stale: decay it toward
	// the estimated pipeline depth. A genuinely batching-starved path
	// re-records faster than this drains (recordings raise it in one
	// step; decay removes an eighth of the excess per epoch), while a
	// stall that merely coincided with a large pending batch stops
	// suppressing coalescing after a few epochs.
	if base := k.pipeDepth(); k.stallDepth > base {
		k.stallDepth -= (k.stallDepth - base + 7) / 8
	}
}

// handleMRRequest must answer as soon as at least one region frees
// (paper: "the responder will be delayed until one becomes available").
// The request is session-scoped: the starving tenant is named, so the
// answer is targeted at it rather than fed through the sweep.
func (k *Sink) handleMRRequest(c *wire.Control) {
	sess := k.sessions[c.Session]
	if sess == nil || sess.finished {
		return // the session tore down; reclaim returns its blocks
	}
	if sess.mode == ModePull {
		return // stale request racing a push→pull switch on the wire
	}
	if debugStallHook != nil {
		debugStallHook(k)
	}
	if len(k.sessions) > 1 {
		// Multiplexed tenants: the starvation bypass still honors the
		// requester's DRR share — without this clamp the first tenant
		// to ask would walk off with the whole pool and fairness would
		// collapse to first-come-first-served. The request is answered
		// directly only up to the share; it never captures the
		// coalescer's pending batch, which flushes through the sweep so
		// the other tenants keep their claim on it.
		batch := k.cfg.OnDemandBatch
		if m := k.sessionCap(sess) - sess.granted; batch > m {
			batch = m
		}
		if batch < 1 {
			// At its full share with a request on file. The request
			// MUST stay parked: the source sends exactly one and then
			// waits, so dropping it here is a lost wakeup — the refill
			// in storeDone answers it once an arrival opens the share.
			k.pendingReq = append(k.pendingReq, sess.info.ID)
		} else if k.winBoost < k.cfg.SinkBlocks {
			// An under-share tenant starving is evidence the shared
			// window itself ran behind the aggregate pipe.
			k.winBoost += k.cfg.OnDemandBatch
		}
		if batch >= 1 {
			if k.pool == nil || len(k.pool.free) == 0 {
				k.pendingReq = append(k.pendingReq, sess.info.ID)
			} else if k.grantCredits(sess, batch, grantOnDemand) == 0 {
				k.pendingReq = append(k.pendingReq, sess.info.ID)
			}
		}
		if k.pendingGrant > 0 {
			k.flushGrants()
		}
		return
	}
	// An explicit request means the source is starving: answer with a
	// full batch regardless of policy or window — the request is direct
	// evidence the window estimate ran behind the pipe. Any coalesced
	// batch still pending rides along instead of waiting out its timer.
	batch := k.cfg.OnDemandBatch
	if p := k.pendingGrant; p > batch {
		batch = p
	}
	// Record the starvation level only when the coalescer was actually
	// withholding a substantial batch — a request that finds little or
	// nothing pending (pool dry, pipe deeper than the pool) is not
	// batching's fault, and penalizing the batch size for it would
	// disable coalescing on every pool-limited path.
	if g := k.granted + k.pendingGrant; g > k.stallDepth &&
		2*k.pendingGrant >= k.batchSize(k.targetWindow()) && k.pendingGrant > 1 {
		k.stallDepth = g
	}
	k.dropPending()
	if k.winBoost < k.cfg.SinkBlocks {
		k.winBoost += k.cfg.OnDemandBatch
	}
	// The free list is control-owned state; counting block states would
	// race with the shards that own granted blocks.
	if k.pool == nil || len(k.pool.free) == 0 {
		k.pendingReq = append(k.pendingReq, sess.info.ID)
		return
	}
	k.grantCredits(sess, batch, grantOnDemand)
}

// popPendingReq returns the first still-live session with a starving
// request on file (paper: the delayed responder answers as soon as a
// region frees), discarding entries whose session tore down meanwhile.
func (k *Sink) popPendingReq() *sinkSession {
	for len(k.pendingReq) > 0 {
		id := k.pendingReq[0]
		k.pendingReq = k.pendingReq[1:]
		// A session that switched to the pull path since parking its
		// request no longer consumes credits; discard its entry.
		if sess := k.sessions[id]; sess != nil && !sess.finished && sess.mode != ModePull {
			return sess
		}
	}
	return nil
}

// handleBlockComplete processes a block-transfer completion
// notification: the named region now holds a block (waiting →
// data-ready), and under the proactive policy up to GrantPerConsume
// fresh credits go back immediately.
func (k *Sink) handleBlockComplete(c *wire.Control) {
	if k.pool == nil {
		k.fail(fmt.Errorf("%w: block complete before negotiation", ErrProtocol))
		return
	}
	b := k.pool.byRKey(c.RKey)
	if b == nil || b.state != BlockWaiting {
		k.fail(fmt.Errorf("%w: completion for unknown or non-waiting region rkey=%d", ErrProtocol, c.RKey))
		return
	}
	hdrBytes := b.mr.ViewLocal(0, wire.BlockHeaderSize)
	hdr, err := wire.DecodeBlockHeader(hdrBytes)
	if err != nil {
		k.fail(fmt.Errorf("%w: undecodable block header: %v", ErrProtocol, err))
		return
	}
	if hdr.Session != c.Session || hdr.Seq != c.Seq || hdr.PayloadLen != c.Length {
		k.fail(fmt.Errorf("%w: header/notification mismatch (hdr %d/%d/%d vs msg %d/%d/%d)",
			ErrProtocol, hdr.Session, hdr.Seq, hdr.PayloadLen, c.Session, c.Seq, c.Length))
		return
	}
	if hdr.Session != b.session {
		// Cross-session landing: a block for one tenant arrived in a
		// region granted to another. The owner stamp was set at grant
		// time, so this is always a source-side protocol bug.
		k.fail(fmt.Errorf("%w: session %d's block landed in session %d's region rkey=%d",
			ErrProtocol, hdr.Session, b.session, c.RKey))
		return
	}
	k.arrive(b, hdr)
	k.markArrived(b)
}

// arrive performs the data-plane half of an arrival on whichever loop
// owns the block (a reactor shard in immediate mode, the control loop
// under explicit notification): the named region holds a complete
// block, waiting → data-ready, with the header's identity stamped in.
func (k *Sink) arrive(b *block, hdr wire.BlockHeader) {
	b.setState(BlockDataReady)
	b.session, b.seq, b.payloadLen, b.last = hdr.Session, hdr.Seq, int(hdr.PayloadLen), hdr.Last
	b.offset = hdr.Offset
	b.spans.SetKey(b.spanRef, b.session, b.seq)
	k.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "arrived",
		Session: hdr.Session, Block: hdr.Seq, V1: int64(hdr.PayloadLen)})
}

// markArrived is the control-plane half of an arrival: crediting,
// reassembly, window estimation, and delivery. The block is
// control-owned again.
func (k *Sink) markArrived(b *block) {
	k.granted--
	invariant.GaugeAdd(k.inv, "granted", 0, -1)
	invariant.GaugeAdd(k.inv, "sess.granted", int(b.session), -1)
	invariant.MRWriteEnd(k.inv, b.mr.RKey)
	sess := k.sessions[b.session]
	if sess == nil || sess.finished {
		// A WRITE that raced a teardown: tolerated for sessions with a
		// zombie record, a protocol violation otherwise.
		k.zombieArrival(b)
		return
	}
	sess.granted--
	sess.arrived++
	delete(sess.owned, b)
	if dup := k.noteArrival(sess, b.seq); dup {
		k.fail(fmt.Errorf("%w: duplicate block %d/%d", ErrProtocol, b.session, b.seq))
		return
	}
	if sess.offsetSink != nil {
		sess.storeQ = append(sess.storeQ, b)
	} else {
		sess.ready[b.seq] = b
	}
	now := k.ep.Loop.Now()
	k.noteWindowSample(now, now-b.tAcq)
	if t := k.tel; t != nil {
		t.creditLatency.Observe(int64(now - b.tAcq))
		t.reassembly.Observe(int64(len(sess.ready) + len(sess.storeQ)))
		t.blocksArrived.Inc()
		t.bytesArrived.Add(int64(b.payloadLen))
		t.granted.Set(int64(k.granted))
	}
	if b.last {
		sess.haveLast = true
		sess.lastSeq = b.seq
	}
	if sess.granted == 0 {
		// The tenant's last outstanding credit just landed: until the
		// scheduler feeds it again it is waiting on a scheduling slot.
		k.noteNeedy(sess, now)
	}
	if sess.pendingSwitchToPull && sess.arrived >= sess.pendingSwitchCount {
		// The straggling WRITEs the deferred push→pull switch was
		// waiting on have all landed; complete it now.
		k.completeSwitchToPull(sess)
	}
	// Proactive feedback: queue replacement grants with the coalescer;
	// if nothing is free by flush time the notification is simply not
	// answered (paper semantics).
	if k.cfg.CreditPolicy == CreditProactive {
		k.queueGrants(k.cfg.GrantPerConsume, grantOnConsume)
	}
	if sess.offsetSink != nil {
		k.pumpStores(sess)
	} else {
		k.deliver(sess)
	}
	k.noteStall()
}

// noteArrival records seq as arrived and reports whether it is a
// duplicate. Both paths keep nextDeliver as the contiguous low-water
// mark of processed-or-arrived sequence numbers; the offset path
// additionally tracks out-of-order arrivals in sess.ooo (the in-order
// path's ready map plays that role implicitly).
func (k *Sink) noteArrival(sess *sinkSession, seq uint32) (dup bool) {
	if sess.offsetSink == nil {
		_, inReady := sess.ready[seq]
		return inReady || seq < sess.nextDeliver
	}
	if seq < sess.nextDeliver {
		return true
	}
	if _, seen := sess.ooo[seq]; seen {
		return true
	}
	if seq == sess.nextDeliver {
		sess.nextDeliver++
		for {
			if _, ok := sess.ooo[sess.nextDeliver]; !ok {
				break
			}
			delete(sess.ooo, sess.nextDeliver)
			sess.nextDeliver++
		}
	} else {
		sess.ooo[seq] = struct{}{}
	}
	return false
}

// deliver hands ready blocks to the writer in sequence order
// (get_ready_blk in the paper's FSM), keeping at most StoreDepth
// stores outstanding.
func (k *Sink) deliver(sess *sinkSession) {
	for sess.storing < k.cfg.StoreDepth {
		b, ok := sess.ready[sess.nextDeliver]
		if !ok {
			break
		}
		delete(sess.ready, sess.nextDeliver)
		// In-order delivery: blocks leave reassembly as 0,1,2,...
		invariant.SeqNext(k.inv, sess.info.ID, b.seq)
		sess.nextDeliver++
		k.issueStore(sess, b)
	}
	k.maybeFinish(sess)
}

// pumpStores is the OffsetSink fast path: arrived blocks go to storage
// in arrival order, up to StoreDepth concurrently, with no reassembly
// wait — the writer places each block by its header offset.
func (k *Sink) pumpStores(sess *sinkSession) {
	for len(sess.storeQ) > 0 && sess.storing < k.cfg.StoreDepth {
		b := sess.storeQ[0]
		sess.storeQ = sess.storeQ[1:]
		k.issueStore(sess, b)
	}
	k.maybeFinish(sess)
}

// issueStore starts one Store (data-ready → storing) and arranges for
// storeDone on the loop.
func (k *Sink) issueStore(sess *sinkSession, b *block) {
	b.setState(BlockStoring)
	if k.tel != nil {
		b.tReady = k.ep.Loop.Now()
	}
	sess.storing++
	invariant.GaugeAdd(k.inv, "storing", int(sess.info.ID), 1)
	if t := k.tel; t != nil {
		t.storesInflight.Set(k.totalStoring())
	}
	hdr := wire.BlockHeader{
		Session: b.session, Seq: b.seq,
		Offset: b.offset, PayloadLen: uint32(b.payloadLen), Last: b.last,
	}
	var payload []byte
	if !k.cfg.ModelPayload {
		payload = b.mr.ViewLocal(wire.BlockHeaderSize, b.payloadLen)
	}
	t := k.getStoreTask(sess, b)
	sess.writer.Store(hdr, payload, b.payloadLen, t.done)
}

// storeTask carries one store completion from the storage backend onto
// the control loop without allocating per store; it mirrors the
// source's loadTask (bound closures, control-loop free list).
type storeTask struct {
	k    *Sink
	sess *sinkSession
	b    *block
	err  error
	done func(error)
	run  func()
}

func (k *Sink) getStoreTask(sess *sinkSession, b *block) *storeTask {
	var t *storeTask
	if n := len(k.storeTasks); n > 0 {
		t = k.storeTasks[n-1]
		k.storeTasks = k.storeTasks[:n-1]
	} else {
		t = &storeTask{k: k}
		t.done = t.complete
		t.run = t.exec
	}
	t.sess, t.b = sess, b
	return t
}

// complete is handed to the BlockSink as its completion callback; it
// may run on any goroutine, so it only records the result and posts.
func (t *storeTask) complete(err error) {
	t.err = err
	t.k.ep.Loop.Post(0, t.run)
}

func (t *storeTask) exec() {
	k, sess, b, err := t.k, t.sess, t.b, t.err
	t.sess, t.b, t.err = nil, nil, nil
	k.storeTasks = append(k.storeTasks, t)
	k.storeDone(sess, b, err)
}

// totalStoring sums in-flight stores across sessions (telemetry).
func (k *Sink) totalStoring() int64 {
	var n int64
	for _, sess := range k.sessions {
		n += int64(sess.storing)
	}
	return n
}

// storeDone recycles a consumed block (put_free_blk) and answers any
// starved credit request.
func (k *Sink) storeDone(sess *sinkSession, b *block, err error) {
	if k.closed || k.failed != nil {
		return
	}
	sess.storing--
	invariant.GaugeAdd(k.inv, "storing", int(sess.info.ID), -1)
	if t := k.tel; t != nil {
		t.storesInflight.Set(k.totalStoring())
	}
	if err != nil {
		// Sink-initiated abort: recycle the failed block, tear the
		// session down without reclaiming its granted blocks (the
		// source may still have WRITEs in flight into them — the
		// zombie record waits for its drain confirm), and tell the
		// source to stop.
		b.setState(BlockFree)
		k.pool.put(b)
		k.stats.CreditsReclaimed++
		k.finishSession(sess, fmt.Errorf("core: storing block %d: %w", b.seq, err), false)
		k.sendCtrl(&wire.Control{Type: wire.MsgAbort, Session: sess.info.ID})
		return
	}
	sess.received += int64(b.payloadLen)
	sess.blocks++
	k.stats.Bytes += int64(b.payloadLen)
	k.stats.Blocks++
	k.stats.End = k.ep.Loop.Now()
	if t := k.tel; t != nil {
		t.storeLatency.Observe(int64(k.stats.End - b.tReady))
		sess.telBytes.Add(int64(b.payloadLen))
		sess.telBlocks.Inc()
	}
	b.setState(BlockFree)
	k.pool.put(b)
	starving := k.popPendingReq()
	if starving != nil {
		batch := k.cfg.OnDemandBatch
		if len(k.sessions) > 1 {
			// Multiplexed tenants: even the starvation path honors the
			// requester's DRR share, or FCFS refills would concentrate
			// the pool on whoever asked first.
			if m := k.sessionCap(starving) - starving.granted; batch > m {
				batch = m
			}
		}
		if batch >= 1 {
			k.grantCredits(starving, batch, grantOnDemand)
		} else {
			// Still at its full share: keep the request on file (the
			// source will not ask again) and let this freed block
			// re-advertise through the sweep instead.
			k.pendingReq = append(k.pendingReq, starving.info.ID)
			starving = nil
		}
	}
	if starving == nil && k.cfg.CreditPolicy == CreditProactive && !k.cfg.NoGrantOnFree &&
		len(k.sessions) > 0 && k.pushSessions > 0 {
		// Active feedback: once the window has ramped, consume-time
		// grants find nothing free, so re-advertise each block the
		// moment it frees. Without this the source burns its stash and
		// degenerates into explicit request round-trips. Freed blocks
		// join the coalescer's batch rather than each paying for a
		// full control message.
		k.queueGrants(1, grantOnFree)
	}
	// A freed store slot may unblock queued or ready blocks, and the
	// freed block may unblock a queued fetch.
	if sess.offsetSink != nil {
		k.pumpStores(sess)
	} else {
		k.deliver(sess)
	}
	k.pumpFetches()
	k.noteStall()
}

func (k *Sink) handleDatasetComplete(c *wire.Control) {
	sess := k.sessions[c.Session]
	if sess == nil {
		return
	}
	sess.completeRx = true
	k.maybeFinish(sess)
}

// maybeFinish acknowledges a session once the complete in-order stream
// has been stored.
func (k *Sink) maybeFinish(sess *sinkSession) {
	if sess.finished || !sess.completeRx || !sess.haveLast {
		return
	}
	// nextDeliver is the contiguous low-water mark on both paths: past
	// lastSeq means every block arrived (offset path) or was delivered
	// (in-order path); pending stores and undrained queues still block.
	if sess.nextDeliver <= sess.lastSeq || sess.storing > 0 || len(sess.ready) > 0 || len(sess.storeQ) > 0 {
		return
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_complete",
		Session: sess.info.ID, V1: sess.received, V2: sess.blocks})
	// Fire OnSessionDone only once the acknowledgment's send completion
	// arrives: a server that closes the connection on session-done must
	// not strand the ack.
	sess.finished = true // no double-finish via other paths
	k.sendCtrlThen(&wire.Control{Type: wire.MsgDatasetCompleteAck, Session: sess.info.ID}, func() {
		if k.closed {
			return // Close already retired it as complete
		}
		sess.finished = false
		// Normal completion: the source drained every WRITE before
		// DATASET_COMPLETE and dropped its unused credits, so the
		// session's leftover granted blocks are safe to reclaim now.
		k.finishSession(sess, nil, true)
	})
}

// finishSession retires a session. reclaim says the source is known
// drained (normal completion, or an abort whose reported write count
// our arrivals have matched) so granted-but-unlanded blocks return to
// the pool immediately; otherwise, if any remain, the session parks as
// a zombie until the source's drain confirm proves no straggling WRITE
// can land (see zombieSession).
func (k *Sink) finishSession(sess *sinkSession, err error, reclaim bool) {
	if sess.finished {
		return
	}
	sess.finished = true
	delete(k.sessions, sess.info.ID)
	invariant.StreamReset(k.inv, sess.info.ID)
	if sess.mode == ModePush {
		k.pushSessions--
	}
	// Un-fetched advertisements die with the session, but the source's
	// drain must not: answer each with an unaccepted READ_DONE so the
	// advertised blocks recycle.
	for _, adv := range sess.fetchQ {
		k.sendCtrl(&wire.Control{Type: wire.MsgReadDone, Session: sess.info.ID, Seq: adv.seq, RKey: adv.rkey})
	}
	sess.fetchQ = nil
	for i, r := range k.schedOrder {
		if r == sess {
			k.schedOrder = append(k.schedOrder[:i], k.schedOrder[i+1:]...)
			break
		}
	}
	if t := k.tel; t != nil {
		t.sessionsActive.Set(int64(len(k.schedOrder)))
	}
	if len(k.sessions) == 0 && k.pendingGrant > 0 {
		// No session left to feed: abandon the coalesced batch so its
		// blocks stay free instead of being advertised into the void.
		k.dropPending()
	}
	// Blocks still held by an aborted session return to the pool
	// (data-ready → free, the abort shortcut past Storing). They were
	// granted but never became stored blocks: reclaimed, for the
	// conservation ledger.
	k.stats.CreditsReclaimed += int64(len(sess.ready) + len(sess.storeQ))
	for _, b := range sess.ready {
		k.dropOwned(sess, b)
		b.setState(BlockFree)
		k.pool.put(b)
	}
	for _, b := range sess.storeQ {
		k.dropOwned(sess, b)
		b.setState(BlockFree)
		k.pool.put(b)
	}
	sess.ready = nil
	sess.storeQ = nil
	sess.ooo = nil
	if reclaim {
		n := k.reclaimOwned(sess.info.ID, sess.owned)
		if n > 0 && len(k.sessions) > 0 && k.failed == nil && !k.closed &&
			k.cfg.CreditPolicy == CreditProactive && !k.cfg.NoGrantOnFree {
			k.queueGrants(n, grantOnFree)
		}
	} else if k.failed == nil && !k.closed && len(sess.owned) > 0 {
		k.zombies[sess.info.ID] = &zombieSession{owned: sess.owned, arrived: sess.arrived}
	}
	sess.owned = nil
	if k.OnSessionDone != nil {
		k.OnSessionDone(sess.info, TransferResult{
			Session: sess.info.ID, Bytes: sess.received, Blocks: sess.blocks, Err: err,
		})
	}
	k.admitQueued()
}

func (k *Sink) fail(err error) {
	if k.failed != nil || k.closed {
		return
	}
	k.failed = err
	k.Trace.EmitErr(trace.CatError, "conn_failed", err)
	k.sendCtrl(&wire.Control{Type: wire.MsgAbort})
	for _, sess := range k.sessions {
		k.finishSession(sess, err, false)
	}
	if k.OnError != nil {
		k.OnError(err)
	}
}
